# Empty dependencies file for test_random_threads.
# This may be replaced when dependencies are built.
