file(REMOVE_RECURSE
  "CMakeFiles/test_random_threads.dir/test_random_threads.cpp.o"
  "CMakeFiles/test_random_threads.dir/test_random_threads.cpp.o.d"
  "test_random_threads"
  "test_random_threads.pdb"
  "test_random_threads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
