file(REMOVE_RECURSE
  "CMakeFiles/test_checker_soundness.dir/test_checker_soundness.cpp.o"
  "CMakeFiles/test_checker_soundness.dir/test_checker_soundness.cpp.o.d"
  "test_checker_soundness"
  "test_checker_soundness.pdb"
  "test_checker_soundness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checker_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
