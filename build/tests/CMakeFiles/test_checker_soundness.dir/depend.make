# Empty dependencies file for test_checker_soundness.
# This may be replaced when dependencies are built.
