# Empty compiler generated dependencies file for test_monotone.
# This may be replaced when dependencies are built.
