file(REMOVE_RECURSE
  "CMakeFiles/test_monotone.dir/test_monotone.cpp.o"
  "CMakeFiles/test_monotone.dir/test_monotone.cpp.o.d"
  "test_monotone"
  "test_monotone.pdb"
  "test_monotone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monotone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
