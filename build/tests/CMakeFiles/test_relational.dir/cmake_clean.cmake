file(REMOVE_RECURSE
  "CMakeFiles/test_relational.dir/test_relational.cpp.o"
  "CMakeFiles/test_relational.dir/test_relational.cpp.o.d"
  "test_relational"
  "test_relational.pdb"
  "test_relational[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
