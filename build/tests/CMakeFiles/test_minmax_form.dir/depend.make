# Empty dependencies file for test_minmax_form.
# This may be replaced when dependencies are built.
