file(REMOVE_RECURSE
  "CMakeFiles/test_minmax_form.dir/test_minmax_form.cpp.o"
  "CMakeFiles/test_minmax_form.dir/test_minmax_form.cpp.o.d"
  "test_minmax_form"
  "test_minmax_form.pdb"
  "test_minmax_form[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minmax_form.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
