# Empty dependencies file for test_powerlog.
# This may be replaced when dependencies are built.
