file(REMOVE_RECURSE
  "CMakeFiles/test_powerlog.dir/test_powerlog.cpp.o"
  "CMakeFiles/test_powerlog.dir/test_powerlog.cpp.o.d"
  "test_powerlog"
  "test_powerlog.pdb"
  "test_powerlog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_powerlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
