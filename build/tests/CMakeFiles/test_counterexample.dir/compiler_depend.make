# Empty compiler generated dependencies file for test_counterexample.
# This may be replaced when dependencies are built.
