file(REMOVE_RECURSE
  "CMakeFiles/test_strings_config.dir/test_strings_config.cpp.o"
  "CMakeFiles/test_strings_config.dir/test_strings_config.cpp.o.d"
  "test_strings_config"
  "test_strings_config.pdb"
  "test_strings_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_strings_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
