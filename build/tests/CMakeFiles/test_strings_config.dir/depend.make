# Empty dependencies file for test_strings_config.
# This may be replaced when dependencies are built.
