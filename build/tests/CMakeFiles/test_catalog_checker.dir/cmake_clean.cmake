file(REMOVE_RECURSE
  "CMakeFiles/test_catalog_checker.dir/test_catalog_checker.cpp.o"
  "CMakeFiles/test_catalog_checker.dir/test_catalog_checker.cpp.o.d"
  "test_catalog_checker"
  "test_catalog_checker.pdb"
  "test_catalog_checker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_catalog_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
