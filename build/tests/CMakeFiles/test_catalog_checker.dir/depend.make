# Empty dependencies file for test_catalog_checker.
# This may be replaced when dependencies are built.
