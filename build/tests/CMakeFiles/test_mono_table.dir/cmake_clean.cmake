file(REMOVE_RECURSE
  "CMakeFiles/test_mono_table.dir/test_mono_table.cpp.o"
  "CMakeFiles/test_mono_table.dir/test_mono_table.cpp.o.d"
  "test_mono_table"
  "test_mono_table.pdb"
  "test_mono_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mono_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
