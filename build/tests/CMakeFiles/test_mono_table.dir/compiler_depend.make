# Empty compiler generated dependencies file for test_mono_table.
# This may be replaced when dependencies are built.
