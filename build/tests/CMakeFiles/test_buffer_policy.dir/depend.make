# Empty dependencies file for test_buffer_policy.
# This may be replaced when dependencies are built.
