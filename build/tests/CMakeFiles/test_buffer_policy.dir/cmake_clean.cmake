file(REMOVE_RECURSE
  "CMakeFiles/test_buffer_policy.dir/test_buffer_policy.cpp.o"
  "CMakeFiles/test_buffer_policy.dir/test_buffer_policy.cpp.o.d"
  "test_buffer_policy"
  "test_buffer_policy.pdb"
  "test_buffer_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffer_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
