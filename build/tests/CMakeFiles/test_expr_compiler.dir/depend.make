# Empty dependencies file for test_expr_compiler.
# This may be replaced when dependencies are built.
