file(REMOVE_RECURSE
  "CMakeFiles/test_expr_compiler.dir/test_expr_compiler.cpp.o"
  "CMakeFiles/test_expr_compiler.dir/test_expr_compiler.cpp.o.d"
  "test_expr_compiler"
  "test_expr_compiler.pdb"
  "test_expr_compiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expr_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
