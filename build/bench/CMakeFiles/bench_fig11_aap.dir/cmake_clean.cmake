file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_aap.dir/bench_fig11_aap.cpp.o"
  "CMakeFiles/bench_fig11_aap.dir/bench_fig11_aap.cpp.o.d"
  "bench_fig11_aap"
  "bench_fig11_aap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_aap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
