# Empty dependencies file for bench_fig11_aap.
# This may be replaced when dependencies are built.
