file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_checker.dir/bench_table1_checker.cpp.o"
  "CMakeFiles/bench_table1_checker.dir/bench_table1_checker.cpp.o.d"
  "bench_table1_checker"
  "bench_table1_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
