
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/checker/aggregate_props.cpp" "src/CMakeFiles/powerlog.dir/checker/aggregate_props.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/checker/aggregate_props.cpp.o.d"
  "/root/repo/src/checker/initial_delta.cpp" "src/CMakeFiles/powerlog.dir/checker/initial_delta.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/checker/initial_delta.cpp.o.d"
  "/root/repo/src/checker/mra_checker.cpp" "src/CMakeFiles/powerlog.dir/checker/mra_checker.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/checker/mra_checker.cpp.o.d"
  "/root/repo/src/checker/rewrite.cpp" "src/CMakeFiles/powerlog.dir/checker/rewrite.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/checker/rewrite.cpp.o.d"
  "/root/repo/src/common/config.cpp" "src/CMakeFiles/powerlog.dir/common/config.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/common/config.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/powerlog.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/metrics.cpp" "src/CMakeFiles/powerlog.dir/common/metrics.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/common/metrics.cpp.o.d"
  "/root/repo/src/common/random.cpp" "src/CMakeFiles/powerlog.dir/common/random.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/common/random.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/powerlog.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/common/status.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/CMakeFiles/powerlog.dir/common/string_util.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/common/string_util.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/powerlog.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/aggregates.cpp" "src/CMakeFiles/powerlog.dir/core/aggregates.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/core/aggregates.cpp.o.d"
  "/root/repo/src/core/kernel.cpp" "src/CMakeFiles/powerlog.dir/core/kernel.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/core/kernel.cpp.o.d"
  "/root/repo/src/core/mono_table.cpp" "src/CMakeFiles/powerlog.dir/core/mono_table.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/core/mono_table.cpp.o.d"
  "/root/repo/src/datalog/analyzer.cpp" "src/CMakeFiles/powerlog.dir/datalog/analyzer.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/datalog/analyzer.cpp.o.d"
  "/root/repo/src/datalog/ast.cpp" "src/CMakeFiles/powerlog.dir/datalog/ast.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/datalog/ast.cpp.o.d"
  "/root/repo/src/datalog/catalog.cpp" "src/CMakeFiles/powerlog.dir/datalog/catalog.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/datalog/catalog.cpp.o.d"
  "/root/repo/src/datalog/expr_compiler.cpp" "src/CMakeFiles/powerlog.dir/datalog/expr_compiler.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/datalog/expr_compiler.cpp.o.d"
  "/root/repo/src/datalog/lexer.cpp" "src/CMakeFiles/powerlog.dir/datalog/lexer.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/datalog/lexer.cpp.o.d"
  "/root/repo/src/datalog/parser.cpp" "src/CMakeFiles/powerlog.dir/datalog/parser.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/datalog/parser.cpp.o.d"
  "/root/repo/src/eval/eval_common.cpp" "src/CMakeFiles/powerlog.dir/eval/eval_common.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/eval/eval_common.cpp.o.d"
  "/root/repo/src/eval/mra.cpp" "src/CMakeFiles/powerlog.dir/eval/mra.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/eval/mra.cpp.o.d"
  "/root/repo/src/eval/naive.cpp" "src/CMakeFiles/powerlog.dir/eval/naive.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/eval/naive.cpp.o.d"
  "/root/repo/src/eval/semi_naive.cpp" "src/CMakeFiles/powerlog.dir/eval/semi_naive.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/eval/semi_naive.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/powerlog.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/datasets.cpp" "src/CMakeFiles/powerlog.dir/graph/datasets.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/graph/datasets.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/powerlog.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/powerlog.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/powerlog.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/CMakeFiles/powerlog.dir/graph/partition.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/graph/partition.cpp.o.d"
  "/root/repo/src/graph/product.cpp" "src/CMakeFiles/powerlog.dir/graph/product.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/graph/product.cpp.o.d"
  "/root/repo/src/powerlog/powerlog.cpp" "src/CMakeFiles/powerlog.dir/powerlog/powerlog.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/powerlog/powerlog.cpp.o.d"
  "/root/repo/src/relational/rel_eval.cpp" "src/CMakeFiles/powerlog.dir/relational/rel_eval.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/relational/rel_eval.cpp.o.d"
  "/root/repo/src/relational/relation.cpp" "src/CMakeFiles/powerlog.dir/relational/relation.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/relational/relation.cpp.o.d"
  "/root/repo/src/runtime/buffer_policy.cpp" "src/CMakeFiles/powerlog.dir/runtime/buffer_policy.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/runtime/buffer_policy.cpp.o.d"
  "/root/repo/src/runtime/checkpoint.cpp" "src/CMakeFiles/powerlog.dir/runtime/checkpoint.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/runtime/checkpoint.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/CMakeFiles/powerlog.dir/runtime/engine.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/runtime/engine.cpp.o.d"
  "/root/repo/src/runtime/message.cpp" "src/CMakeFiles/powerlog.dir/runtime/message.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/runtime/message.cpp.o.d"
  "/root/repo/src/runtime/network.cpp" "src/CMakeFiles/powerlog.dir/runtime/network.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/runtime/network.cpp.o.d"
  "/root/repo/src/runtime/termination.cpp" "src/CMakeFiles/powerlog.dir/runtime/termination.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/runtime/termination.cpp.o.d"
  "/root/repo/src/runtime/worker.cpp" "src/CMakeFiles/powerlog.dir/runtime/worker.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/runtime/worker.cpp.o.d"
  "/root/repo/src/smt/counterexample.cpp" "src/CMakeFiles/powerlog.dir/smt/counterexample.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/smt/counterexample.cpp.o.d"
  "/root/repo/src/smt/minmax_form.cpp" "src/CMakeFiles/powerlog.dir/smt/minmax_form.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/smt/minmax_form.cpp.o.d"
  "/root/repo/src/smt/monotone.cpp" "src/CMakeFiles/powerlog.dir/smt/monotone.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/smt/monotone.cpp.o.d"
  "/root/repo/src/smt/polynomial.cpp" "src/CMakeFiles/powerlog.dir/smt/polynomial.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/smt/polynomial.cpp.o.d"
  "/root/repo/src/smt/printer.cpp" "src/CMakeFiles/powerlog.dir/smt/printer.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/smt/printer.cpp.o.d"
  "/root/repo/src/smt/rational.cpp" "src/CMakeFiles/powerlog.dir/smt/rational.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/smt/rational.cpp.o.d"
  "/root/repo/src/smt/simplify.cpp" "src/CMakeFiles/powerlog.dir/smt/simplify.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/smt/simplify.cpp.o.d"
  "/root/repo/src/smt/solver.cpp" "src/CMakeFiles/powerlog.dir/smt/solver.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/smt/solver.cpp.o.d"
  "/root/repo/src/smt/term.cpp" "src/CMakeFiles/powerlog.dir/smt/term.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/smt/term.cpp.o.d"
  "/root/repo/src/systems/comparators.cpp" "src/CMakeFiles/powerlog.dir/systems/comparators.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/systems/comparators.cpp.o.d"
  "/root/repo/src/systems/vertex_engines.cpp" "src/CMakeFiles/powerlog.dir/systems/vertex_engines.cpp.o" "gcc" "src/CMakeFiles/powerlog.dir/systems/vertex_engines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
