# Empty compiler generated dependencies file for powerlog.
# This may be replaced when dependencies are built.
