file(REMOVE_RECURSE
  "libpowerlog.a"
)
