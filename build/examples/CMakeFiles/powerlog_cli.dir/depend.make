# Empty dependencies file for powerlog_cli.
# This may be replaced when dependencies are built.
