file(REMOVE_RECURSE
  "CMakeFiles/powerlog_cli.dir/powerlog_cli.cpp.o"
  "CMakeFiles/powerlog_cli.dir/powerlog_cli.cpp.o.d"
  "powerlog_cli"
  "powerlog_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powerlog_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
