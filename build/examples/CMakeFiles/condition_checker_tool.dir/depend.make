# Empty dependencies file for condition_checker_tool.
# This may be replaced when dependencies are built.
