file(REMOVE_RECURSE
  "CMakeFiles/condition_checker_tool.dir/condition_checker_tool.cpp.o"
  "CMakeFiles/condition_checker_tool.dir/condition_checker_tool.cpp.o.d"
  "condition_checker_tool"
  "condition_checker_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/condition_checker_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
