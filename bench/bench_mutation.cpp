// Mutation re-convergence bench (ISSUE 7): incremental Apply vs cold
// recompute on the serving plane's hot scenario — a small batch (~0.1% of
// edges) lands on a converged (program, dataset) pair and the resident state
// must reach the new fixpoint.
//
// Incremental = patch the snapshot copy-on-write + plan (reconverge.h) +
// Engine::Resume from the converged MonoTables. Cold = Engine::Run from
// scratch on the same mutated graph, same engine configuration. The speedup
// is the work ratio the delta-seeding math buys: Resume processes the
// residual mass the batch injected, Run re-derives the whole fixpoint.
//
// Operating point for the sum family: the serving tolerance, epsilon = 1e-3
// of the converged global aggregate (the textbook PageRank regime — 1e-3 of
// the L1 mass of the rank vector). This matters: under the engine's
// epsilon-termination contract, the residual a warm start must still grind
// down is bounded below by the batch's injected mass, so the achievable
// speedup is log(M0/eps) / log(R0/eps) — at the program's research-grade
// absolute epsilon (1e-4 on a ~1e4 mass vector, i.e. 1e-8 relative) that
// ratio is ~1.4x for ANY sound warm start, while at serving tolerance the
// injected mass R0 is already near eps and re-certification is nearly free.
// Both sides of every cell run the same epsilon, and the JSONL record names
// it. Min-family programs (sssp) terminate on quiescence; their incremental
// and cold fixpoints must agree bit-exactly and epsilon plays no role.
//
// POWERLOG_BENCH_MUTATION=<file> appends one JSONL record per cell;
// scripts/bench_compare.py turns the worst cell speedup into the gated
// `mutation_speedup_vs_recompute` metric (floor 5.0, informational until a
// baseline carries it).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "datalog/ast.h"
#include "graph/mutation.h"
#include "runtime/reconverge.h"

using namespace powerlog;

namespace {

runtime::EngineOptions MutationEngineOptions() {
  runtime::EngineOptions options;
  options.num_workers = bench::BenchWorkers();
  // Instant network, no simulated barrier cost: the metric is the compute
  // work ratio, not simulated wire time — wall-clock ratios must survive
  // loaded single-core hosts, and simulated per-superstep constants would
  // flatter neither side consistently.
  options.network.instant = true;
  options.barrier_overhead_us = 0;
  // Sync mode: re-convergence is a certification task, and the sync
  // termination check (global-aggregate delta per superstep) stops the warm
  // run the moment the residual is absorbed — 3-4 supersteps for a small
  // batch. The async family's periodic cut checks add ~100 confirmation
  // sweeps of latency on both sides, which drowns the incremental win
  // (measured: sync 8.6x vs sync-async 3.7x on pagerank/livej).
  options.mode = runtime::ExecMode::kSync;
  if (const char* m = std::getenv("POWERLOG_BENCH_MUTATION_MODE")) {
    const std::string mode = m;
    if (mode == "sync-async") options.mode = runtime::ExecMode::kSyncAsync;
    if (mode == "async") options.mode = runtime::ExecMode::kAsync;
    if (mode == "aap") options.mode = runtime::ExecMode::kAap;
  }
  options.max_wall_seconds = 60.0;
  options.max_supersteps = 5000;
  return options;
}

// ~0.1% of the edge count, at least 1: the "small batch" of the acceptance
// criterion.
size_t BatchOps(const Graph& g) {
  return static_cast<size_t>(g.num_edges() / 1000) + 1;
}

// sssp: tightening reweights + shortcut inserts (the delta path's natural
// diet). pagerank: inserts, which also shift out-degrees. Sources/targets
// are drawn deterministically per (program, dataset).
MutationBatch BuildBatch(const std::string& program, const Graph& g,
                         uint64_t seed) {
  std::mt19937_64 rng(seed);
  const VertexId n = g.num_vertices();
  auto random_edge = [&]() -> std::pair<VertexId, Edge> {
    for (;;) {
      const VertexId v = static_cast<VertexId>(rng() % n);
      const uint32_t deg = g.OutDegree(v);
      if (deg == 0) continue;
      const Edge* e = g.OutEdges(v).begin() + (rng() % deg);
      return {v, *e};
    }
  };
  MutationBatch batch;
  const size_t k = BatchOps(g);
  for (size_t i = 0; i < k; ++i) {
    if (program == "sssp" && i % 2 == 0) {
      const auto [src, e] = random_edge();
      batch.ReweightEdge(src, e.dst, e.weight * 0.9);
    } else {
      batch.InsertEdge(static_cast<VertexId>(rng() % n),
                       static_cast<VertexId>(rng() % n), 1.0);
    }
  }
  return batch;
}

struct Cell {
  size_t ops = 0;
  std::string path;
  double epsilon = 0.0;  ///< 0 = kernel default (min family)
  double incremental_seconds = 0.0;
  double recompute_seconds = 0.0;
  int64_t incremental_edge_applications = 0;
  int64_t recompute_edge_applications = 0;
  int64_t incremental_supersteps = 0;
  int64_t recompute_supersteps = 0;
  bool converged = false;
  double speedup() const {
    return incremental_seconds > 0.0
               ? recompute_seconds / incremental_seconds
               : 0.0;
  }
};

// Both fixpoints are certified within the same epsilon of the true one, so
// their L1 distance is bounded by a small multiple of epsilon (the
// termination contract's own slack, amplified by the contraction tail). The
// min family gets no slack: bit-exact or bust.
bool FixpointsAgree(const std::vector<double>& inc,
                    const std::vector<double>& cold, bool ordered,
                    double epsilon) {
  if (ordered) {
    for (size_t v = 0; v < cold.size(); ++v) {
      if (inc[v] != cold[v] &&
          !(std::isinf(inc[v]) && std::isinf(cold[v]))) {
        return false;
      }
    }
    return true;
  }
  double l1 = 0.0;
  for (size_t v = 0; v < cold.size(); ++v) l1 += std::abs(inc[v] - cold[v]);
  return l1 <= 20.0 * epsilon;
}

bool RunCell(const std::string& program, const std::string& dataset,
             Cell* cell) {
  const Graph& base = bench::DatasetForProgram(program, dataset);
  const Kernel kernel = bench::MustKernel(program);
  const bool ordered = kernel.agg == datalog::AggKind::kMin ||
                       kernel.agg == datalog::AggKind::kMax;
  auto options = MutationEngineOptions();

  // Setup (untimed): the resident fixpoint the batch lands on, converged at
  // the kernel's own (tight) epsilon so the warm state is high-quality.
  runtime::Engine warm_engine(base, kernel, options);
  auto resident = warm_engine.Run();
  if (!resident.ok() || !resident->stats.converged) {
    std::fprintf(stderr, "  (setup failed on %s/%s)\n", program.c_str(),
                 dataset.c_str());
    return false;
  }

  if (!ordered) {
    double mass = 0.0;
    for (const double v : resident->values) mass += std::abs(v);
    cell->epsilon = 1e-3 * mass;
    options.epsilon_override = cell->epsilon;
  }

  const MutationBatch batch =
      BuildBatch(program, base, /*seed=*/0xB0A7 + base.num_edges());
  cell->ops = batch.size();

  // Best-of-3 on both sides: one process, back-to-back, so host load cancels
  // out of the ratio instead of polluting it.
  constexpr int kReps = 3;
  double inc_best = -1.0, cold_best = -1.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    auto applied = ApplyMutationBatch(base, batch);
    if (!applied.ok()) return false;
    auto plan = runtime::PlanReconvergence(kernel, base, applied->graph,
                                           applied->ops, resident->values);
    if (!plan.ok()) return false;
    runtime::Engine inc_engine(applied->graph, kernel, options);
    auto inc = plan->path == runtime::ReconvergePath::kRecompute
                   ? inc_engine.Run()
                   : inc_engine.Resume(plan->warm);
    const double inc_secs = timer.ElapsedSeconds();
    if (!inc.ok() || !inc->stats.converged) return false;

    timer.Reset();
    runtime::Engine cold_engine(applied->graph, kernel, options);
    auto cold = cold_engine.Run();
    const double cold_secs = timer.ElapsedSeconds();
    if (!cold.ok() || !cold->stats.converged) return false;

    if (inc_best < 0.0 || inc_secs < inc_best) {
      inc_best = inc_secs;
      cell->path = runtime::ReconvergePathName(plan->path);
      cell->incremental_edge_applications = inc->stats.edge_applications;
      cell->incremental_supersteps = inc->stats.supersteps;
    }
    if (cold_best < 0.0 || cold_secs < cold_best) {
      cold_best = cold_secs;
      cell->recompute_edge_applications = cold->stats.edge_applications;
      cell->recompute_supersteps = cold->stats.supersteps;
    }
    if (rep == 0 &&
        !FixpointsAgree(inc->values, cold->values, ordered, cell->epsilon)) {
      std::fprintf(stderr, "  (fixpoint mismatch on %s/%s)\n", program.c_str(),
                   dataset.c_str());
      return false;
    }
  }
  cell->incremental_seconds = inc_best;
  cell->recompute_seconds = cold_best;
  cell->converged = true;
  return true;
}

void DumpCell(std::FILE* out, const std::string& program,
              const std::string& dataset, const Graph& g, const Cell& cell) {
  std::fprintf(out,
               "{\"program\":\"%s\",\"dataset\":\"%s\",\"edges\":%llu,"
               "\"batch_ops\":%zu,\"path\":\"%s\",\"epsilon\":%.6g,"
               "\"incremental_seconds\":%.6f,\"recompute_seconds\":%.6f,"
               "\"speedup\":%.3f,\"converged\":%s,"
               "\"incremental_edge_applications\":%lld,"
               "\"recompute_edge_applications\":%lld}\n",
               program.c_str(), dataset.c_str(),
               static_cast<unsigned long long>(g.num_edges()), cell.ops,
               cell.path.c_str(), cell.epsilon, cell.incremental_seconds,
               cell.recompute_seconds, cell.speedup(),
               cell.converged ? "true" : "false",
               static_cast<long long>(cell.incremental_edge_applications),
               static_cast<long long>(cell.recompute_edge_applications));
}

}  // namespace

int main() {
  const std::vector<std::string> programs = {"sssp", "pagerank"};
  std::vector<std::string> datasets = {"livej", "orkut"};
  if (bench::FastMode()) datasets = {"livej"};

  std::FILE* dump = nullptr;
  if (const char* path = std::getenv("POWERLOG_BENCH_MUTATION")) {
    dump = std::fopen(path, "a");
  }

  bench::PrintHeader("Mutation re-convergence: incremental vs recompute");
  bench::PrintColumns("cell", {"incr", "cold", "speedup"});
  for (const std::string& program : programs) {
    for (const std::string& dataset : datasets) {
      Cell cell;
      if (!RunCell(program, dataset, &cell)) continue;
      bench::PrintRow(program + "/" + dataset,
                      {cell.incremental_seconds, cell.recompute_seconds,
                       cell.speedup()});
      std::printf("    %zu ops via %s path; edge applications %lld vs %lld\n",
                  cell.ops, cell.path.c_str(),
                  static_cast<long long>(cell.incremental_edge_applications),
                  static_cast<long long>(cell.recompute_edge_applications));
      std::printf("    supersteps %lld vs %lld\n",
                  static_cast<long long>(cell.incremental_supersteps),
                  static_cast<long long>(cell.recompute_supersteps));
      if (dump != nullptr) {
        DumpCell(dump, program, dataset,
                 bench::DatasetForProgram(program, dataset), cell);
      }
    }
  }
  if (dump != nullptr) std::fclose(dump);
  return 0;
}
