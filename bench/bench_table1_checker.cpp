// Table 1 reproduction: the automatic MRA condition check over the fourteen
// recursive aggregate programs, with per-program check latency.
//
// Paper: 12 programs pass ("MRA sat." = yes), CommNet and GCN-Forward fail.
#include "bench_common.h"

#include "checker/mra_checker.h"
#include "common/timer.h"

using namespace powerlog;

int main() {
  bench::PrintHeader("Table 1: MRA condition check over the program catalog");
  std::printf("%-24s %-10s %-12s %-10s %-10s %10s\n", "Program", "Aggregator",
              "MRA sat.", "expected", "match", "check(ms)");
  int pass = 0;
  int fail = 0;
  int mismatch = 0;
  double total_ms = 0.0;
  for (const auto& entry : datalog::ProgramCatalog()) {
    Timer timer;
    auto result = checker::CheckMraConditionsFromSource(entry.source);
    const double ms = timer.ElapsedSeconds() * 1e3;
    total_ms += ms;
    if (!result.ok()) {
      std::printf("%-24s ERROR: %s\n", entry.display_name.c_str(),
                  result.status().ToString().c_str());
      ++mismatch;
      continue;
    }
    const bool ok = result->satisfied == entry.expected_mra_sat;
    (result->satisfied ? pass : fail)++;
    if (!ok) ++mismatch;
    std::printf("%-24s %-10s %-12s %-10s %-10s %9.2f\n", entry.display_name.c_str(),
                datalog::AggKindName(entry.aggregate),
                result->satisfied ? "yes" : "no",
                entry.expected_mra_sat ? "yes" : "no", ok ? "OK" : "<<MISMATCH",
                ms);
  }
  std::printf("\nSummary: %d pass / %d fail (paper: 12 / 2), %d mismatches, "
              "total check time %.1f ms\n",
              pass, fail, mismatch, total_ms);

  // Show the Fig. 4-style emitted script for PageRank (provenance).
  auto pagerank = datalog::GetCatalogEntry("pagerank");
  auto result = checker::CheckMraConditionsFromSource(pagerank->source);
  std::printf("\nEmitted Property-2 script for PageRank (cf. paper Fig. 4):\n%s\n",
              result->smtlib_script.c_str());
  return mismatch == 0 ? 0 : 1;
}
