// Table 2 reproduction: the dataset registry — paper-reported sizes next to
// the scaled-down synthetic analogues actually used by the benches.
#include "bench_common.h"

#include "common/timer.h"

using namespace powerlog;

int main() {
  bench::PrintHeader("Table 2: datasets (paper sizes vs synthetic analogues)");
  std::printf("%-12s %-14s %14s %14s | %10s %12s %9s %9s %9s\n", "Name",
              "Paper name", "paper |V|", "paper |E|", "ours |V|", "ours |E|",
              "avg deg", "max deg", "gen(s)");
  for (const auto& name : DatasetNames()) {
    auto info = GetDatasetInfo(name);
    Timer timer;
    const Graph& g = bench::MustDataset(name);
    const double secs = timer.ElapsedSeconds();
    std::printf("%-12s %-14s %14llu %14llu | %10u %12llu %9.2f %9u %9.2f\n",
                name.c_str(), info->paper_name.c_str(),
                static_cast<unsigned long long>(info->paper_vertices),
                static_cast<unsigned long long>(info->paper_edges),
                g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
                g.AverageDegree(), g.MaxOutDegree(), secs);
  }
  std::printf("\n(Analogue shapes: social = moderate R-MAT skew; web/arabic = "
              "hub-dominated; wiki = flattest degrees / longest diameter.)\n");
  return 0;
}
