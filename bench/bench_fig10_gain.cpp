// Figure 10 reproduction: where PowerLog's gain comes from — MRA evaluation
// vs the unified sync-async engine, decomposed, plus the incremental graph-
// system baselines (PowerGraph for CC/SSSP, Maiter for PageRank/Adsorption/
// Katz, Prom for Belief Propagation).
//
// Paper shape: MRA >> naive (both sync); async beats sync on some datasets
// and loses on others; MRA+Sync-Async best everywhere; the graph systems sit
// between MRA+Sync and MRA+Async.
#include "bench_common.h"

using namespace powerlog;
using runtime::ExecMode;
using systems::SystemId;

namespace {

void RunPanel(const std::string& title, const std::string& program,
              SystemId graph_system) {
  bench::PrintHeader(title);
  bench::PrintColumns("dataset", {"Naive+Sync", "MRA+Sync", "MRA+Async",
                                  "MRA+SyAsy", "MRA+Stale",
                                  systems::SystemName(graph_system)});
  std::vector<std::string> datasets = {"wiki", "web", "arabic"};
  if (bench::FastMode()) datasets = {"wiki"};
  std::vector<double> ours;
  std::vector<std::vector<double>> others(5);
  for (const auto& dataset : datasets) {
    const double naive = bench::RunNaiveSeconds(program, dataset);
    const double sync = bench::RunModeSeconds(ExecMode::kSync, program, dataset);
    const double async = bench::RunModeSeconds(ExecMode::kAsync, program, dataset);
    const double unified =
        bench::RunModeSeconds(ExecMode::kSyncAsync, program, dataset);
    const double stale =
        bench::RunModeSeconds(ExecMode::kStaleSync, program, dataset);
    const double baseline = bench::RunSystemSeconds(graph_system, program, dataset);
    bench::PrintRow(dataset, {naive, sync, async, unified, stale, baseline});
    ours.push_back(unified);
    others[0].push_back(naive);
    others[1].push_back(sync);
    others[2].push_back(async);
    others[3].push_back(stale);
    others[4].push_back(baseline);
  }
  bench::PrintSpeedupSummary("MRA+Sync-Async", ours, {others[0]});
}

}  // namespace

int main() {
  RunPanel("Figure 10(a): CC", "cc", SystemId::kPowerGraph);
  RunPanel("Figure 10(b): SSSP", "sssp", SystemId::kPowerGraph);
  RunPanel("Figure 10(c): PageRank", "pagerank", SystemId::kMaiter);
  RunPanel("Figure 10(d): Adsorption", "adsorption", SystemId::kMaiter);
  RunPanel("Figure 10(e): Katz Metric", "katz", SystemId::kMaiter);
  RunPanel("Figure 10(f): Belief Propagation", "bp", SystemId::kProm);
  return 0;
}
