// Supplementary exhibit: convergence dynamics of the execution modes —
// pending delta mass over time for PageRank (sum) and SSSP (min) on the
// long-diameter wiki analogue. Shows *why* the unified engine wins: it
// drains the delta mass earlier than sync (no barrier stalls) and with far
// fewer messages than plain async.
#include "bench_common.h"

using namespace powerlog;
using runtime::ExecMode;

namespace {

void Trace(const std::string& program, const std::string& dataset, ExecMode mode) {
  const Graph& graph = bench::DatasetForProgram(program, dataset);
  Kernel kernel = bench::MustKernel(program);
  runtime::EngineOptions options;
  options.mode = mode;
  options.num_workers = bench::BenchWorkers();
  options.network = bench::BenchNetwork();
  options.max_wall_seconds = 30.0;
  options.max_supersteps = 3000;
  options.record_trace = true;
  options.adaptive_priority = mode == ExecMode::kSyncAsync;
  runtime::Engine engine(graph, kernel, options);
  auto run = engine.Run();
  if (!run.ok()) {
    std::printf("  %s: error %s\n", runtime::ExecModeName(mode),
                run.status().ToString().c_str());
    return;
  }
  std::printf("  %-11s wall=%.3fs samples=%zu | t(s), pending-mass series: ",
              runtime::ExecModeName(mode), run->stats.wall_seconds,
              run->trace.size());
  // Print ~8 evenly spaced samples.
  const size_t n = run->trace.size();
  const size_t step = n > 8 ? n / 8 : 1;
  for (size_t i = 0; i < n; i += step) {
    std::printf("(%.2f, %.3g) ", run->trace[i].seconds, run->trace[i].pending_mass);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::string dataset = bench::FastMode() ? "flickr" : "wiki";
  bench::PrintHeader("Convergence dynamics: SSSP on " + dataset);
  for (ExecMode mode : {ExecMode::kSync, ExecMode::kAsync, ExecMode::kSyncAsync}) {
    Trace("sssp", dataset, mode);
  }
  bench::PrintHeader("Convergence dynamics: PageRank on " + dataset);
  for (ExecMode mode : {ExecMode::kSync, ExecMode::kAsync, ExecMode::kSyncAsync}) {
    Trace("pagerank", dataset, mode);
  }
  return 0;
}
