// Ablation benches for the design choices DESIGN.md calls out:
//  (1) the adaptive β/τ buffer policy vs fixed buffer sizes — the §5.3 knob;
//  (2) the §5.4 priority threshold for sum programs;
//  (3) Δ-stepping width for sync SSSP (SociaLite's optimisation).
#include "bench_common.h"

using namespace powerlog;
using runtime::ExecMode;
using runtime::FlushPolicyKind;

namespace {

double RunWithBuffer(const std::string& program, const std::string& dataset,
                     FlushPolicyKind kind, double beta) {
  const Graph& graph = bench::MustDataset(dataset);
  Kernel kernel = bench::MustKernel(program);
  runtime::EngineOptions options;
  options.mode = ExecMode::kSyncAsync;
  options.num_workers = bench::BenchWorkers();
  options.network = bench::BenchNetwork();
  options.max_wall_seconds = 30.0;
  options.buffer.kind = kind;
  options.buffer.beta = beta;
  runtime::Engine engine(graph, kernel, options);
  auto run = engine.Run();
  return run.ok() ? run->stats.wall_seconds : -1.0;
}

double RunWithThreshold(const std::string& program, const std::string& dataset,
                        double threshold) {
  const Graph& graph = bench::MustDataset(dataset);
  Kernel kernel = bench::MustKernel(program);
  runtime::EngineOptions options;
  options.mode = ExecMode::kSyncAsync;
  options.num_workers = bench::BenchWorkers();
  options.network = bench::BenchNetwork();
  options.max_wall_seconds = 30.0;
  options.priority_threshold = threshold;
  runtime::Engine engine(graph, kernel, options);
  auto run = engine.Run();
  return run.ok() ? run->stats.wall_seconds : -1.0;
}

}  // namespace

int main() {
  const std::string dataset = bench::FastMode() ? "flickr" : "wiki";

  bench::PrintHeader("Ablation 1: adaptive buffer policy vs fixed sizes (" +
                     dataset + ")");
  bench::PrintColumns("program",
                      {"fixed 16", "fixed 256", "fixed 4096", "fixed 64k",
                       "adaptive"});
  for (const char* program : {"sssp", "pagerank"}) {
    std::vector<double> cells;
    for (double beta : {16.0, 256.0, 4096.0, 65536.0}) {
      cells.push_back(RunWithBuffer(program, dataset, FlushPolicyKind::kFixed, beta));
    }
    cells.push_back(RunWithBuffer(program, dataset, FlushPolicyKind::kAdaptive, 256));
    bench::PrintRow(program, cells);
  }
  std::printf("  (claim §5.3: no fixed size wins everywhere; adaptive tracks "
              "the best fixed setting)\n");

  bench::PrintHeader("Ablation 2: §5.4 priority threshold for sum programs (" +
                     dataset + ")");
  bench::PrintColumns("program", {"off", "1e-5", "1e-4", "1e-3"});
  for (const char* program : {"pagerank", "adsorption"}) {
    std::vector<double> cells;
    for (double threshold : {0.0, 1e-5, 1e-4, 1e-3}) {
      cells.push_back(RunWithThreshold(program, dataset, threshold));
    }
    bench::PrintRow(program, cells);
  }

  bench::PrintHeader("Ablation 3: Δ-stepping width, sync SSSP (web)");
  bench::PrintColumns("width", {"off", "2", "8", "32", "128"});
  {
    std::vector<double> cells;
    for (double width : {0.0, 2.0, 8.0, 32.0, 128.0}) {
      cells.push_back(
          bench::RunModeSeconds(ExecMode::kSync, "sssp", "web", width));
    }
    bench::PrintRow("sssp/web", cells);
  }
  return 0;
}
