// Figure 1 reproduction: the motivating observation that neither sync
// (SociaLite) nor async (Myria) consistently wins.
//
// Paper shape:
//   (a) LiveJournal — SociaLite beats Myria on SSSP but loses on PageRank.
//   (b) SSSP        — SociaLite beats Myria on Arabic-2005 but loses on
//                     Wiki-link.
#include "bench_common.h"

using namespace powerlog;
using systems::SystemId;

int main() {
  bench::PrintHeader("Figure 1(a): SociaLite vs Myria on LiveJournal");
  bench::PrintColumns("algorithm", {"SociaLite", "Myria"});
  {
    const double s_sssp = bench::RunSystemSeconds(SystemId::kSociaLite, "sssp", "livej");
    const double m_sssp = bench::RunSystemSeconds(SystemId::kMyria, "sssp", "livej");
    bench::PrintRow("SSSP", {s_sssp, m_sssp});
    const double s_pr =
        bench::RunSystemSeconds(SystemId::kSociaLite, "pagerank", "livej");
    const double m_pr = bench::RunSystemSeconds(SystemId::kMyria, "pagerank", "livej");
    bench::PrintRow("PageRank", {s_pr, m_pr});
    std::printf("  shape check: SociaLite wins SSSP: %s; Myria wins PageRank: %s\n",
                s_sssp < m_sssp ? "yes (paper: yes)" : "NO (paper: yes)",
                m_pr < s_pr ? "yes (paper: yes)" : "NO (paper: yes)");
  }

  bench::PrintHeader("Figure 1(b): SSSP on Wiki-link vs Arabic-2005");
  bench::PrintColumns("dataset", {"SociaLite", "Myria"});
  {
    const double s_wiki = bench::RunSystemSeconds(SystemId::kSociaLite, "sssp", "wiki");
    const double m_wiki = bench::RunSystemSeconds(SystemId::kMyria, "sssp", "wiki");
    bench::PrintRow("Wiki-link", {s_wiki, m_wiki});
    const double s_ar = bench::RunSystemSeconds(SystemId::kSociaLite, "sssp", "arabic");
    const double m_ar = bench::RunSystemSeconds(SystemId::kMyria, "sssp", "arabic");
    bench::PrintRow("Arabic-2005", {s_ar, m_ar});
    std::printf("  shape check: Myria wins Wiki: %s; SociaLite wins Arabic: %s\n",
                m_wiki < s_wiki ? "yes (paper: yes)" : "NO (paper: yes)",
                s_ar < m_ar ? "yes (paper: yes)" : "NO (paper: yes)");
  }
  return 0;
}
