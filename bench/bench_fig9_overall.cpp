// Figure 9 reproduction: PowerLog vs the comparator systems on six
// algorithms across the six datasets.
//
// Paper shape: PowerLog fastest essentially everywhere (1.1x–188.3x), with
// one exception — SSSP on ClueWeb09, where SociaLite's Δ-stepping wins.
// Adsorption / Katz / Belief Propagation compare against SociaLite only
// (unsupported by Myria / BigDatalog, §6.3).
#include "bench_common.h"

using namespace powerlog;
using systems::SystemId;

namespace {

void RunPanel(const std::string& title, const std::string& program,
              const std::vector<SystemId>& systems) {
  bench::PrintHeader(title);
  std::vector<std::string> names;
  for (SystemId s : systems) names.push_back(systems::SystemName(s));
  names.push_back("PowerLog");
  bench::PrintColumns("dataset", names);

  std::vector<std::string> datasets = DatasetNames();
  if (bench::FastMode()) datasets = {datasets.front(), datasets.back()};

  std::vector<double> ours;
  std::vector<std::vector<double>> others(systems.size());
  for (const auto& dataset : datasets) {
    std::vector<double> cells;
    for (size_t i = 0; i < systems.size(); ++i) {
      const double secs = bench::RunSystemSeconds(systems[i], program, dataset);
      cells.push_back(secs);
      others[i].push_back(secs);
    }
    const double mine = bench::RunSystemSeconds(SystemId::kPowerLog, program, dataset);
    cells.push_back(mine);
    ours.push_back(mine);
    bench::PrintRow(dataset, cells);
  }
  bench::PrintSpeedupSummary("PowerLog", ours, others);
}

}  // namespace

int main() {
  // (a)-(c): all four systems. BigDatalog stands in for GraphX on PageRank
  // exactly as the paper substitutes (§6.3).
  RunPanel("Figure 9(a): CC", "cc",
           {SystemId::kSociaLite, SystemId::kMyria, SystemId::kBigDatalog});
  RunPanel("Figure 9(b): SSSP", "sssp",
           {SystemId::kSociaLite, SystemId::kMyria, SystemId::kBigDatalog});
  RunPanel("Figure 9(c): PageRank", "pagerank",
           {SystemId::kSociaLite, SystemId::kMyria, SystemId::kBigDatalog});
  // (d)-(f): SociaLite only.
  RunPanel("Figure 9(d): Adsorption", "adsorption", {SystemId::kSociaLite});
  RunPanel("Figure 9(e): Katz Metric", "katz", {SystemId::kSociaLite});
  RunPanel("Figure 9(f): Belief Propagation", "bp", {SystemId::kSociaLite});
  return 0;
}
