#include "bench_common.h"

#include <cstdlib>

#include "common/metrics.h"

namespace powerlog::bench {

uint32_t BenchWorkers() {
  const char* env = std::getenv("POWERLOG_BENCH_WORKERS");
  if (env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= 64) return static_cast<uint32_t>(v);
  }
  return 4;
}

bool FastMode() { return std::getenv("POWERLOG_BENCH_FAST") != nullptr; }

bool MetricsDumpEnabled() {
  const char* path = std::getenv("POWERLOG_BENCH_METRICS");
  return path != nullptr && path[0] != '\0';
}

void DumpRunMetrics(const std::string& program, const std::string& dataset,
                    const std::string& mode, const runtime::EngineResult& result) {
  const char* path = std::getenv("POWERLOG_BENCH_METRICS");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) {
    std::fprintf(stderr, "  (cannot append metrics to %s)\n", path);
    return;
  }
  std::fprintf(f,
               "{\"program\":\"%s\",\"dataset\":\"%s\",\"mode\":\"%s\","
               "\"workers\":%u,\"wall_seconds\":%.6f,\"converged\":%s,"
               "\"dense_sweeps\":%lld,\"sparse_sweeps\":%lld,"
               "\"frontier_skipped\":%lld,\"specialized_edges\":%lld,"
               "\"vm_edges\":%lld,\"recoveries\":%lld,"
               "\"metrics\":%s}\n",
               metrics::JsonEscape(program).c_str(),
               metrics::JsonEscape(dataset).c_str(),
               metrics::JsonEscape(mode).c_str(), BenchWorkers(),
               result.stats.wall_seconds,
               result.stats.converged ? "true" : "false",
               static_cast<long long>(result.stats.dense_sweeps),
               static_cast<long long>(result.stats.sparse_sweeps),
               static_cast<long long>(result.stats.frontier_skipped),
               static_cast<long long>(result.stats.specialized_edges),
               static_cast<long long>(result.stats.vm_edges),
               static_cast<long long>(result.stats.recoveries),
               result.metrics.ToJson().c_str());
  std::fclose(f);
}

runtime::NetworkConfig BenchNetwork() {
  runtime::NetworkConfig network;
  network.latency_us = 150.0;    // per-message coordination/wire latency
  network.per_update_us = 0.02;  // wire cost per update (delivery delay)
  network.cpu_us_per_message = 20.0;  // receiver dispatch/deserialise per message
  network.cpu_us_per_update = 0.05;   // receiver per-update deserialise cost
  network.instant = false;
  return network;
}

systems::RunConfig BenchRunConfig() {
  systems::RunConfig config;
  config.num_workers = BenchWorkers();
  config.network = BenchNetwork();
  config.max_wall_seconds = 30.0;
  config.max_supersteps = 3000;
  config.stall_every_us = 8000;
  config.stall_mean_us = 4000;
  return config;
}

const Graph& MustDataset(const std::string& name, bool stochastic) {
  auto graph = GetDataset(name, stochastic);
  if (!graph.ok()) {
    std::fprintf(stderr, "FATAL: dataset %s: %s\n", name.c_str(),
                 graph.status().ToString().c_str());
    std::abort();
  }
  return **graph;
}

Kernel MustKernel(const std::string& name) {
  auto entry = datalog::GetCatalogEntry(name);
  if (!entry.ok()) {
    std::fprintf(stderr, "FATAL: program %s: %s\n", name.c_str(),
                 entry.status().ToString().c_str());
    std::abort();
  }
  auto kernel = BuildKernelFromSource(entry->source);
  if (!kernel.ok()) {
    std::fprintf(stderr, "FATAL: compile %s: %s\n", name.c_str(),
                 kernel.status().ToString().c_str());
    std::abort();
  }
  return std::move(kernel).ValueOrDie();
}

const Graph& DatasetForProgram(const std::string& program,
                               const std::string& dataset) {
  auto entry = datalog::GetCatalogEntry(program);
  const bool stochastic = entry.ok() && entry->stochastic_weights;
  return MustDataset(dataset, stochastic);
}

double RunSystemSeconds(systems::SystemId system, const std::string& program,
                        const std::string& dataset) {
  const Graph& graph = DatasetForProgram(program, dataset);
  Kernel kernel = MustKernel(program);
  auto entry = datalog::GetCatalogEntry(program);
  const bool mra_sat = entry.ok() && entry->expected_mra_sat;
  auto run = systems::RunSystem(system, graph, kernel, BenchRunConfig(), mra_sat);
  if (!run.ok()) {
    std::fprintf(stderr, "  (error: %s on %s/%s: %s)\n",
                 systems::SystemName(system), program.c_str(), dataset.c_str(),
                 run.status().ToString().c_str());
    return -1.0;
  }
  DumpRunMetrics(program, dataset, systems::SystemName(system), run->result);
  return run->result.stats.wall_seconds;
}

double RunModeSeconds(runtime::ExecMode mode, const std::string& program,
                      const std::string& dataset, double delta_stepping) {
  const Graph& graph = DatasetForProgram(program, dataset);
  Kernel kernel = MustKernel(program);
  runtime::EngineOptions options;
  options.mode = mode;
  options.num_workers = BenchWorkers();
  options.network = BenchNetwork();
  options.max_wall_seconds = 30.0;
  options.max_supersteps = 3000;
  options.barrier_overhead_us = 300;
  options.stall_every_us = 8000;  // cloud-VM / GC noise (see engine.h)
  options.stall_mean_us = 4000;
  options.delta_stepping = delta_stepping;
  // The shipped sync-async engine includes the §5.4 priority optimisation
  // and a longer adaptation window for the buffer policy.
  options.adaptive_priority = mode == runtime::ExecMode::kSyncAsync;
  if (mode == runtime::ExecMode::kSyncAsync) options.buffer.tau_us = 1500;
  // Stale-sync benches run the shipped configuration: the bound self-tunes
  // from timeline signals rather than relying on a hand-picked s.
  if (mode == runtime::ExecMode::kStaleSync) options.staleness_auto = true;
  options.collect_metrics = MetricsDumpEnabled();
  runtime::Engine engine(graph, kernel, options);
  auto run = engine.Run();
  if (!run.ok()) {
    std::fprintf(stderr, "  (error: %s on %s/%s: %s)\n",
                 runtime::ExecModeName(mode), program.c_str(), dataset.c_str(),
                 run.status().ToString().c_str());
    return -1.0;
  }
  DumpRunMetrics(program, dataset, runtime::ExecModeName(mode), *run);
  return run->stats.wall_seconds;
}

double RunNaiveSeconds(const std::string& program, const std::string& dataset) {
  const Graph& graph = DatasetForProgram(program, dataset);
  Kernel kernel = MustKernel(program);
  runtime::EngineOptions options;
  options.num_workers = BenchWorkers();
  options.network = BenchNetwork();
  options.max_wall_seconds = 30.0;
  options.max_supersteps = 3000;
  options.barrier_overhead_us = 300;
  options.stall_every_us = 8000;
  options.stall_mean_us = 4000;
  // Naive evaluation re-materialises the rank⋈edge⋈degree join every
  // iteration (§1); MRA replaces that with in-place MonoTable updates. The
  // factor is grounded empirically: our own relational join evaluator
  // (src/relational) measures ~44x the kernel path's per-edge cost on
  // PageRank; 30x is a conservative stand-in for a tuned engine.
  systems::NaiveEngineCosts costs;
  costs.compute_factor = 30.0;
  costs.superstep_overhead_us = 2000;
  auto run = systems::NaiveSyncRun(graph, kernel, options, costs);
  if (!run.ok()) {
    std::fprintf(stderr, "  (error: naive on %s/%s: %s)\n", program.c_str(),
                 dataset.c_str(), run.status().ToString().c_str());
    return -1.0;
  }
  return run->stats.wall_seconds;
}

void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

void PrintColumns(const std::string& label, const std::vector<std::string>& names) {
  std::printf("%-22s", label.c_str());
  for (const auto& n : names) std::printf("%12s", n.c_str());
  std::printf("\n");
}

void PrintRow(const std::string& label, const std::vector<double>& cells) {
  std::printf("%-22s", label.c_str());
  for (double c : cells) {
    if (c < 0) {
      std::printf("%12s", "-");
    } else {
      std::printf("%11.3fs", c);
    }
  }
  std::printf("\n");
}

void PrintSpeedupSummary(const std::string& who, const std::vector<double>& ours,
                         const std::vector<std::vector<double>>& others) {
  double best = 1e300;
  double worst = 0.0;
  for (size_t i = 0; i < ours.size(); ++i) {
    if (ours[i] <= 0) continue;
    for (const auto& series : others) {
      if (i >= series.size() || series[i] <= 0) continue;
      const double speedup = series[i] / ours[i];
      best = std::min(best, speedup);
      worst = std::max(worst, speedup);
    }
  }
  if (worst > 0.0) {
    std::printf("  -> %s speedups over comparators: %.1fx .. %.1fx\n", who.c_str(),
                best, worst);
  }
}

}  // namespace powerlog::bench
