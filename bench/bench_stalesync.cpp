// Stale-synchronous frontier: can a bounded superstep lead beat both pure
// disciplines at once?
//
// The simulated substrate injects cloud-VM noise (stall_every_us in
// bench_common's RunModeSeconds), and the power-law datasets hash into
// uneven shards — exactly the environment SSP targets: sync pays a full
// barrier wait for every straggler pause, async lets unapplied error pile
// up unpaced. Stale-sync (with --staleness=auto) should land at or below
// min(sync, async) on at least one skewed cell; bench_compare.py tracks the
// ratio as `stalesync_vs_best_pure` (informational until a baseline
// carries it).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace powerlog;
using runtime::ExecMode;

namespace {

void RunPanel(const std::string& program) {
  bench::PrintHeader("Stale-sync frontier: " + program);
  bench::PrintColumns(
      "dataset", {"MRA+Sync", "MRA+Async", "MRA+Stale", "best/stale"});
  std::vector<std::string> datasets = {"wiki", "web"};
  if (bench::FastMode()) datasets = {"wiki"};
  for (const auto& dataset : datasets) {
    const double sync = bench::RunModeSeconds(ExecMode::kSync, program, dataset);
    const double async =
        bench::RunModeSeconds(ExecMode::kAsync, program, dataset);
    const double stale =
        bench::RunModeSeconds(ExecMode::kStaleSync, program, dataset);
    double ratio = -1.0;  // >1 means stale-sync beat both pure modes
    if (sync > 0.0 && async > 0.0 && stale > 0.0) {
      ratio = std::min(sync, async) / stale;
    }
    // PrintRow suffixes every cell with "s"; the ratio is dimensionless,
    // so format this row by hand.
    std::printf("%-22s%11.3fs%11.3fs%11.3fs", dataset.c_str(), sync, async,
                stale);
    if (ratio > 0.0) {
      std::printf("%11.3fx\n", ratio);
    } else {
      std::printf("%12s\n", "-");
    }
  }
}

}  // namespace

int main() {
  RunPanel("pagerank");
  RunPanel("sssp");
  RunPanel("cc");
  return 0;
}
