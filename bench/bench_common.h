// Shared harness for the table/figure reproduction benches.
//
// Every bench prints the same rows/series its paper counterpart reports.
// Absolute numbers differ (the substrate is an in-process simulation, not a
// 17-node cluster); the *shape* — who wins, by roughly what factor, where
// crossovers fall — is the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/kernel.h"
#include "datalog/catalog.h"
#include "graph/datasets.h"
#include "runtime/engine.h"
#include "systems/comparators.h"

namespace powerlog::bench {

/// Workers per run. The paper uses 16 worker nodes; we default to 4 worker
/// threads so the simulation stays faithful on small hosts (override with
/// POWERLOG_BENCH_WORKERS).
uint32_t BenchWorkers();

/// True when POWERLOG_BENCH_FAST is set: benches subsample their grids
/// (first/last dataset only) to smoke-test quickly.
bool FastMode();

/// The simulated cluster network used by all benches (1.5 Gbps-ish: per-
/// message latency plus per-update serialisation cost).
runtime::NetworkConfig BenchNetwork();

/// Baseline run configuration for comparator systems.
systems::RunConfig BenchRunConfig();

/// Loads a registry dataset or aborts with a message. `stochastic` selects
/// the row-normalised view (Markov-style programs).
const Graph& MustDataset(const std::string& name, bool stochastic = false);

/// The dataset view appropriate for a catalog program.
const Graph& DatasetForProgram(const std::string& program,
                               const std::string& dataset);

/// Compiles a catalog program or aborts.
Kernel MustKernel(const std::string& name);

/// Runs `system` on (program, dataset); returns wall seconds (negative on
/// error, with the error printed).
double RunSystemSeconds(systems::SystemId system, const std::string& program,
                        const std::string& dataset);

/// Runs our engine in a specific mode with MRA evaluation; returns seconds.
double RunModeSeconds(runtime::ExecMode mode, const std::string& program,
                      const std::string& dataset, double delta_stepping = 0.0);

/// True when POWERLOG_BENCH_METRICS is set to a file path. Engine runs made
/// through RunModeSeconds then collect full metrics and append one JSON
/// record per run (JSONL) to that file — the machine-readable perf
/// trajectory future sessions diff against.
bool MetricsDumpEnabled();

/// Appends one JSON line {"program","dataset","mode","workers",
/// "wall_seconds","converged","metrics":{...}} to the POWERLOG_BENCH_METRICS
/// file. No-op when the variable is unset.
void DumpRunMetrics(const std::string& program, const std::string& dataset,
                    const std::string& mode, const runtime::EngineResult& result);

/// Runs naive evaluation on the sync substrate; returns seconds.
double RunNaiveSeconds(const std::string& program, const std::string& dataset);

// -- Output helpers ----------------------------------------------------------

/// Prints a header box: "==== Figure 9(a): CC ====".
void PrintHeader(const std::string& title);

/// Prints one row: label padded to 14, then `cells` (seconds) with 9 chars.
void PrintRow(const std::string& label, const std::vector<double>& cells);

/// Prints the column header row.
void PrintColumns(const std::string& label, const std::vector<std::string>& names);

/// Formats a speedup note, e.g. "PowerLog speedups: 1.3x .. 42.1x".
void PrintSpeedupSummary(const std::string& who,
                         const std::vector<double>& ours,
                         const std::vector<std::vector<double>>& others);

}  // namespace powerlog::bench
