// Microbenchmarks (google-benchmark) for the hot primitives: the expression
// VM, MonoTable protocol, combining buffers, aggregates, and the condition
// checker itself.
#include <benchmark/benchmark.h>

#include "checker/mra_checker.h"
#include "core/mono_table.h"
#include "datalog/catalog.h"
#include "eval/mra.h"
#include "eval/semi_naive.h"
#include "graph/generators.h"
#include "runtime/message.h"
#include "core/kernel.h"

namespace powerlog {
namespace {

void BM_CompiledExprEval(benchmark::State& state) {
  auto kernel = BuildKernelFromSource(
      datalog::GetCatalogEntry("pagerank")->source);
  double x = 1.0;
  for (auto _ : state) {
    x = kernel->EvalEdge(x, 1.0, 4.0) + 0.1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CompiledExprEval);

void BM_MonoTableCombineHarvest(benchmark::State& state) {
  auto table = MonoTable::Create(AggKind::kSum, 1024);
  size_t i = 0;
  for (auto _ : state) {
    table->CombineDelta(i & 1023, 0.5);
    benchmark::DoNotOptimize(table->HarvestDelta(i & 1023));
    ++i;
  }
}
BENCHMARK(BM_MonoTableCombineHarvest);

void BM_AtomicCombineMin(benchmark::State& state) {
  std::atomic<double> slot{1e300};
  double v = 1e300;
  for (auto _ : state) {
    AtomicCombine(&slot, v, AggKind::kMin);
    v *= 0.999999;
  }
  benchmark::DoNotOptimize(slot.load());
}
BENCHMARK(BM_AtomicCombineMin);

void BM_CombiningBufferAdd(benchmark::State& state) {
  runtime::CombiningBuffer buffer(AggKind::kSum);
  VertexId key = 0;
  for (auto _ : state) {
    buffer.Add(key++ & 4095, 1.0);
    if (buffer.size() >= 4096) benchmark::DoNotOptimize(buffer.Drain());
  }
}
BENCHMARK(BM_CombiningBufferAdd);

void BM_ConditionCheck(benchmark::State& state) {
  const auto entry = datalog::GetCatalogEntry(
      state.range(0) == 0 ? "sssp" : (state.range(0) == 1 ? "pagerank" : "gcn_forward"));
  for (auto _ : state) {
    auto result = checker::CheckMraConditionsFromSource(entry->source);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ConditionCheck)->Arg(0)->Arg(1)->Arg(2);

void BM_MraSssp(benchmark::State& state) {
  auto kernel = BuildKernelFromSource(datalog::GetCatalogEntry("sssp")->source);
  auto graph = GenerateRmat(
      {static_cast<uint32_t>(state.range(0)), 8.0, 0.57, 0.19, 0.19, 0.05, true, 1, 64, 3});
  for (auto _ : state) {
    auto r = eval::MraEvaluate(*kernel, *graph);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph->num_edges()));
}
BENCHMARK(BM_MraSssp)->Arg(10)->Arg(12);

void BM_SemiNaiveCc(benchmark::State& state) {
  auto kernel = BuildKernelFromSource(datalog::GetCatalogEntry("cc")->source);
  auto graph = GenerateRmat(
      {static_cast<uint32_t>(state.range(0)), 8.0, 0.57, 0.19, 0.19, 0.05, false, 1, 64, 5});
  for (auto _ : state) {
    auto r = eval::SemiNaiveEvaluate(*kernel, *graph);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_SemiNaiveCc)->Arg(10)->Arg(12);

}  // namespace
}  // namespace powerlog

BENCHMARK_MAIN();
