// Microbenchmarks (google-benchmark) for the hot primitives: the expression
// VM, MonoTable protocol, combining buffers, aggregates, the condition
// checker, and the message fabric (SPSC ring data plane vs the historical
// mutex+deque bus — the ISSUE 3 acceptance ratio comes from this file).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <utility>

#include "checker/mra_checker.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/mono_table.h"
#include "datalog/catalog.h"
#include "eval/mra.h"
#include "eval/semi_naive.h"
#include "graph/generators.h"
#include "powerlog/serving.h"
#include "runtime/message.h"
#include "runtime/network.h"
#include "core/kernel.h"
#include "core/kernel_simd.h"

// ---------------------------------------------------------------------------
// Allocation-counting hook: every global operator new bumps a relaxed
// counter, so a benchmark can report allocations per million processed
// updates (the harness tracks this in BENCH_*.json as `allocs_per_M`).
// Aligned variants matter: the ring fabric's cache-line-padded structures
// allocate through the align_val_t overloads.

static std::atomic<int64_t> g_allocations{0};

// GCC pairs the malloc in our operator new with the free in operator delete
// at every call site and flags it; routing through malloc/free is exactly how
// a counting global allocator works, so silence the false positive.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace powerlog {
namespace {

void BM_CompiledExprEval(benchmark::State& state) {
  auto kernel = BuildKernelFromSource(
      datalog::GetCatalogEntry("pagerank")->source);
  double x = 1.0;
  for (auto _ : state) {
    x = kernel->EvalEdge(x, 1.0, 4.0) + 0.1;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CompiledExprEval);

void BM_MonoTableCombineHarvest(benchmark::State& state) {
  auto table = MonoTable::Create(AggKind::kSum, 1024);
  size_t i = 0;
  for (auto _ : state) {
    table->CombineDelta(i & 1023, 0.5);
    benchmark::DoNotOptimize(table->HarvestDelta(i & 1023));
    ++i;
  }
}
BENCHMARK(BM_MonoTableCombineHarvest);

void BM_AtomicCombineMin(benchmark::State& state) {
  std::atomic<double> slot{1e300};
  double v = 1e300;
  for (auto _ : state) {
    AtomicCombine(&slot, v, AggKind::kMin);
    v *= 0.999999;
  }
  benchmark::DoNotOptimize(slot.load());
}
BENCHMARK(BM_AtomicCombineMin);

void BM_CombiningBufferAdd(benchmark::State& state) {
  runtime::CombiningBuffer buffer(AggKind::kSum);
  VertexId key = 0;
  for (auto _ : state) {
    buffer.Add(key++ & 4095, 1.0);
    if (buffer.size() >= 4096) benchmark::DoNotOptimize(buffer.Drain());
  }
}
BENCHMARK(BM_CombiningBufferAdd);

// ---------------------------------------------------------------------------
// Message fabric: the acceptance ratio for the SPSC data plane.
//
// `MutexDequeBus` replicates the pre-ISSUE-3 hot path faithfully: one mutex +
// std::deque per inbox, a heap-allocated envelope batch per send, in-flight
// counters taken under the same fetch_adds the old implementation used. Both
// fabrics are driven by the identical workload: one thread plays all 4
// workers in round-robin (each worker sends a small combining-buffer-sized
// batch to its successor, whose inbox is then drained + acked), with instant
// delivery. The batch is kept small (8 updates, a typical incremental-delta
// flush) so the measurement is fabric overhead, not std::vector::push_back.
//
// Single-threaded on purpose: this host runs every benchmark on one core, so
// a 4-thread variant measures scheduler quantum effects — a descheduled
// consumer's queue grows without bound while its producer spins — not fabric
// overhead. The round-robin driver keeps queues at their steady-state depth
// (≤1 per pair, the engine's own self-paced regime) and makes the measured
// difference purely data-plane cost: mutex traffic + a heap allocation per
// message vs lock-free rings + pooled batches.

constexpr int kFabricBatch = 8;
constexpr uint32_t kFabricWorkers = 4;

struct MutexDequeBus {
  struct OldEnvelope {
    int64_t sent_at_us = 0;
    int64_t deliver_at_us = 0;
    runtime::UpdateBatch batch;
  };
  struct OldInbox {
    std::mutex mutex;
    std::deque<OldEnvelope> queue;
  };

  explicit MutexDequeBus(uint32_t workers)
      : inboxes(workers),
        pair_messages(static_cast<size_t>(workers) * workers),
        pair_updates(static_cast<size_t>(workers) * workers) {}

  // Transcribed from the pre-refactor MessageBus::Send (instant mode, no
  // injector): clock read, five counter RMWs, inbox mutex, deque push.
  void Send(uint32_t from, uint32_t to, runtime::UpdateBatch batch) {
    if (batch.empty()) return;
    const int64_t now = NowMicros();  // instant: deliver_at = now
    inflight.fetch_add(static_cast<int64_t>(batch.size()),
                       std::memory_order_acq_rel);
    messages.fetch_add(1, std::memory_order_relaxed);
    updates.fetch_add(static_cast<int64_t>(batch.size()),
                      std::memory_order_relaxed);
    const size_t pair = static_cast<size_t>(from) * inboxes.size() + to;
    pair_messages[pair].fetch_add(1, std::memory_order_relaxed);
    pair_updates[pair].fetch_add(static_cast<int64_t>(batch.size()),
                                 std::memory_order_relaxed);
    OldInbox& inbox = inboxes[to];
    std::lock_guard<std::mutex> lock(inbox.mutex);
    inbox.queue.push_back(OldEnvelope{now, now, std::move(batch)});
  }

  // Transcribed from the pre-refactor MessageBus::Receive: clock read,
  // deliver_at scan under the inbox mutex, per-envelope in-flight decrement.
  size_t Receive(uint32_t worker, runtime::UpdateBatch* out) {
    OldInbox& inbox = inboxes[worker];
    const int64_t now = NowMicros();
    size_t received = 0;
    std::lock_guard<std::mutex> lock(inbox.mutex);
    for (auto it = inbox.queue.begin(); it != inbox.queue.end();) {
      if (it->deliver_at_us > now) {
        ++it;
        continue;
      }
      received += it->batch.size();
      inflight.fetch_sub(static_cast<int64_t>(it->batch.size()),
                         std::memory_order_acq_rel);
      out->insert(out->end(), it->batch.begin(), it->batch.end());
      it = inbox.queue.erase(it);
    }
    return received;
  }

  std::deque<OldInbox> inboxes;  // deque: OldInbox is not movable
  std::atomic<int64_t> inflight{0};
  std::atomic<int64_t> messages{0};
  std::atomic<int64_t> updates{0};
  std::vector<std::atomic<int64_t>> pair_messages;
  std::vector<std::atomic<int64_t>> pair_updates;
};

void FillBatch(runtime::UpdateBatch* batch, uint32_t worker) {
  for (int i = 0; i < kFabricBatch; ++i) {
    batch->push_back({static_cast<VertexId>(worker * kFabricBatch + i), 1.0});
  }
}

// Drives one send→receive→ack lap per worker through an SPSC MessageBus;
// shared by the throughput variant (no histogram → clock-free fast path)
// and the latency variant (histogram attached → timestamped path).
void RunSpscFabricLaps(benchmark::State& state, runtime::MessageBus& bus) {
  runtime::UpdateBatch in;
  // Warm the pool so the timed region is the steady state, then count
  // allocations from here on.
  for (uint32_t w = 0; w < kFabricWorkers; ++w) {
    runtime::UpdateBatch out = bus.AcquireBatch();
    FillBatch(&out, w);
    bus.Send(w, (w + 1) % kFabricWorkers, std::move(out));
  }
  for (uint32_t w = 0; w < kFabricWorkers; ++w) {
    in.clear();
    bus.AckDelivered(w, bus.Receive(w, &in));
  }
  const int64_t allocs_at_start = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    for (uint32_t w = 0; w < kFabricWorkers; ++w) {
      runtime::UpdateBatch out = bus.AcquireBatch();
      FillBatch(&out, w);
      bus.Send(w, (w + 1) % kFabricWorkers, std::move(out));
      const uint32_t receiver = (w + 1) % kFabricWorkers;
      in.clear();
      bus.AckDelivered(receiver, bus.Receive(receiver, &in));
    }
  }
  const double total_updates =
      static_cast<double>(state.iterations()) * kFabricBatch * kFabricWorkers;
  state.SetItemsProcessed(state.iterations() * kFabricBatch * kFabricWorkers);
  state.counters["allocs_per_M_updates"] =
      static_cast<double>(g_allocations.load(std::memory_order_relaxed) -
                          allocs_at_start) *
      1e6 / total_updates;
  state.counters["overflow_sends"] =
      static_cast<double>(bus.stats().overflow_sends);
}

void BM_BusFabric_SPSC(benchmark::State& state) {
  runtime::NetworkConfig config;
  config.instant = true;
  runtime::MessageBus bus(kFabricWorkers, config);
  RunSpscFabricLaps(state, bus);
}
BENCHMARK(BM_BusFabric_SPSC);

// Same workload with the delivery-latency histogram attached, which forces
// the timestamped path (two clock reads per message). Reported p50/p99 are
// the fabric's in-process delivery latency, not simulated network latency.
void BM_BusFabric_SPSC_Latency(benchmark::State& state) {
  runtime::NetworkConfig config;
  config.instant = true;
  metrics::Histogram hist(metrics::ExponentialBuckets(1.0, 2.0, 22));
  runtime::MessageBus bus(kFabricWorkers, config);
  bus.SetLatencyHistogram(&hist);
  RunSpscFabricLaps(state, bus);
  const auto snap = hist.Snapshot();
  state.counters["p50_latency_us"] = snap.Percentile(0.5);
  state.counters["p99_latency_us"] = snap.Percentile(0.99);
}
BENCHMARK(BM_BusFabric_SPSC_Latency);

void BM_BusFabric_MutexDeque(benchmark::State& state) {
  MutexDequeBus bus(kFabricWorkers);
  runtime::UpdateBatch in;
  for (uint32_t w = 0; w < kFabricWorkers; ++w) {
    runtime::UpdateBatch out;
    FillBatch(&out, w);
    bus.Send(w, (w + 1) % kFabricWorkers, std::move(out));
  }
  for (uint32_t w = 0; w < kFabricWorkers; ++w) {
    in.clear();
    bus.Receive(w, &in);
  }
  const int64_t allocs_at_start = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    for (uint32_t w = 0; w < kFabricWorkers; ++w) {
      runtime::UpdateBatch out;  // old data plane: fresh heap batch per send
      FillBatch(&out, w);
      bus.Send(w, (w + 1) % kFabricWorkers, std::move(out));
      const uint32_t receiver = (w + 1) % kFabricWorkers;
      in.clear();
      bus.Receive(receiver, &in);
    }
  }
  const double total_updates =
      static_cast<double>(state.iterations()) * kFabricBatch * kFabricWorkers;
  state.SetItemsProcessed(state.iterations() * kFabricBatch * kFabricWorkers);
  state.counters["allocs_per_M_updates"] =
      static_cast<double>(g_allocations.load(std::memory_order_relaxed) -
                          allocs_at_start) *
      1e6 / total_updates;
}
BENCHMARK(BM_BusFabric_MutexDeque);

// ---------------------------------------------------------------------------
// Compute plane (ISSUE 4): frontier sweeps, specialized edge kernels, and the
// flat combining buffer's steady-state allocation count. The three
// acceptance ratios (sweep_frontier_speedup, edge_specialized_speedup,
// combining_flat_allocs_per_M) come from this section via
// scripts/bench_compare.py.

constexpr size_t kSweepRows = 1 << 20;
constexpr size_t kSweepActive = 1024;  // 0.1% active: the sparse-frontier regime

// xorshift-free LCG; avoids <random> to keep the loop body tiny.
inline uint64_t NextSeed(uint64_t* s) {
  *s = *s * 6364136223846793005ULL + 1442695040888963407ULL;
  return *s >> 11;
}

// Replica of the pre-frontier dense sweep: every row is peeked even when
// only kSweepActive rows have pending deltas. Items = rows covered per
// sweep, so the frontier variant's items/s ratio over this one is the
// sparse-sweep speedup at equal coverage.
void BM_SweepFullScanReplica(benchmark::State& state) {
  auto table = MonoTable::Create(AggKind::kSum, kSweepRows);
  const double identity = table->identity();
  uint64_t seed = 0x5EEDu;
  double sink = 0.0;
  for (auto _ : state) {
    for (size_t i = 0; i < kSweepActive; ++i) {
      table->CombineDelta(NextSeed(&seed) % kSweepRows, 1.0);
    }
    for (size_t v = 0; v < kSweepRows; ++v) {
      if (table->intermediate(v) != identity) sink += table->HarvestDelta(v);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSweepRows));
}
BENCHMARK(BM_SweepFullScanReplica);

// The frontier's sparse word-scan sweep over the same workload: identical
// seeding, identical coverage semantics (the whole shard is accounted as
// swept — the bitmap is what lets it skip the clean 99.9%).
void BM_SweepFrontier(benchmark::State& state) {
  auto table = MonoTable::Create(AggKind::kSum, kSweepRows);
  table->SetFrontierEnabled(true);
  uint64_t seed = 0x5EEDu;
  double sink = 0.0;
  for (auto _ : state) {
    for (size_t i = 0; i < kSweepActive; ++i) {
      table->CombineDelta(NextSeed(&seed) % kSweepRows, 1.0);
    }
    const size_t words = table->num_frontier_words();
    for (size_t w = 0; w < words; ++w) {
      uint64_t bits = table->FrontierWord(w);
      while (bits != 0) {
        const int bit = __builtin_ctzll(bits);
        bits &= bits - 1;
        const size_t v = (w << 6) | static_cast<size_t>(bit);
        table->ClearDirty(v);
        sink += table->HarvestDelta(v);
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kSweepRows));
}
BENCHMARK(BM_SweepFrontier);

constexpr size_t kEdgeFanout = 4096;

std::vector<Edge> SyntheticEdges() {
  std::vector<Edge> edges(kEdgeFanout);
  for (size_t i = 0; i < edges.size(); ++i) {
    edges[i] = Edge{static_cast<VertexId>((i * 37) & 1023),
                    1.0 + static_cast<double>(i & 7)};
  }
  return edges;
}

// Per-edge F' through the stack VM — the kGeneric fallback path.
void BM_EdgeApplyVM(benchmark::State& state) {
  auto kernel =
      BuildKernelFromSource(datalog::GetCatalogEntry("pagerank")->source);
  const std::vector<Edge> edges = SyntheticEdges();
  std::vector<double> acc(1024, 0.0);
  const double x = 0.5, deg = 8.0;
  for (auto _ : state) {
    for (const Edge& e : edges) {
      acc[e.dst] += kernel->EvalEdge(x, e.weight, deg);
    }
  }
  benchmark::DoNotOptimize(acc.data());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_EdgeApplyVM);

// The specialized path the worker actually runs: pagerank's bytecode matches
// kAXOverDeg, a uniform shape, so the contribution is computed once per
// harvested delta and the loop only routes it.
void BM_EdgeApplySpecialized(benchmark::State& state) {
  auto kernel =
      BuildKernelFromSource(datalog::GetCatalogEntry("pagerank")->source);
  if (!kernel->scatter.specialized()) {
    state.SkipWithError("pagerank failed to specialize");
    return;
  }
  const EdgeKernelSpec spec = kernel->scatter;
  const std::vector<Edge> edges = SyntheticEdges();
  std::vector<double> acc(1024, 0.0);
  const double x = 0.5, deg = 8.0;
  for (auto _ : state) {
    const double contribution = ApplyEdgeKernel(spec, x, 0.0, deg);
    for (const Edge& e : edges) acc[e.dst] += contribution;
  }
  benchmark::DoNotOptimize(acc.data());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}
BENCHMARK(BM_EdgeApplySpecialized);

// ---------------------------------------------------------------------------
// Per-shape span pairs (ISSUE 9): the dispatched SIMD span kernel against a
// per-edge scalar loop over the same CSR span. The scalar reference is
// compiled with auto-vectorization off — the gate measures the hand-written
// vector kernels against the per-edge code the scalar fallback actually
// runs, not against whatever the compiler manages to vectorize here — and
// both sides write the same contribution scratch the worker's vector route
// path uses. Registered as BM_EdgeApplySpecialized/<shape> and
// BM_EdgeApplyVector/<shape>; bench_compare.py derives
// vec_edge_speedup_<shape> from each pair and hard-floors the gated shapes.

__attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize"))) void
SpanScalarReference(const EdgeKernelSpec& spec, double x, double deg,
                    const Edge* edges, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = ApplyEdgeKernel(spec, x, edges[i].weight, deg);
  }
}

EdgeKernelSpec SpanBenchSpec(KernelOp op) {
  EdgeKernelSpec spec;
  spec.op = op;
  spec.a = 0.85;
  spec.b = 0.15;
  return spec;
}

// L1-resident span for the per-shape pairs: CSR spans reach the vector
// route warm from the harvest, so the pair should measure kernel
// throughput, not L2 streaming bandwidth (kEdgeFanout's 64 KiB of AoS
// edges spills the 32 KiB L1 and flattens both sides to the same memory
// wall).
constexpr size_t kSpanFanout = 1024;

std::vector<Edge> SpanEdges() {
  std::vector<Edge> edges(SyntheticEdges());
  edges.resize(kSpanFanout);
  return edges;
}

void EdgeApplySpanScalar(benchmark::State& state, KernelOp op) {
  const EdgeKernelSpec spec = SpanBenchSpec(op);
  const std::vector<Edge> edges = SpanEdges();
  std::vector<double> out(edges.size());
  for (auto _ : state) {
    SpanScalarReference(spec, 0.5, 8.0, edges.data(), edges.size(),
                        out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}

void EdgeApplySpanVector(benchmark::State& state, KernelOp op) {
  const EdgeKernelSpec spec = SpanBenchSpec(op);
  const EdgeSpanFn fn = simd::SelectSpanFn(simd::ActiveLevel());
  const std::vector<Edge> edges = SpanEdges();
  std::vector<double> out(edges.size());
  for (auto _ : state) {
    fn(spec, 0.5, 8.0, edges.data(), edges.size(), out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(edges.size()));
}

int RegisterSpanShapeBenches() {
  // The gated shapes (kXPlusW / kAXOverDeg / kXTimesW) first; the rest of
  // the specialized family rides along as informational pairs.
  const std::pair<const char*, KernelOp> shapes[] = {
      {"kXPlusW", KernelOp::kXPlusW},     {"kAXOverDeg", KernelOp::kAXOverDeg},
      {"kXTimesW", KernelOp::kXTimesW},   {"kXPlusA", KernelOp::kXPlusA},
      {"kAXW", KernelOp::kAXW},           {"kAXWB", KernelOp::kAXWB},
  };
  for (const auto& [name, op] : shapes) {
    benchmark::RegisterBenchmark(
        (std::string("BM_EdgeApplySpecialized/") + name).c_str(),
        EdgeApplySpanScalar, op);
    benchmark::RegisterBenchmark(
        (std::string("BM_EdgeApplyVector/") + name).c_str(),
        EdgeApplySpanVector, op);
  }
  return 0;
}
const int kSpanShapeBenchesRegistered = RegisterSpanShapeBenches();

// Steady-state allocation audit of the flat combining buffer: after one
// warm-up cycle grows the slot array and the drain batch to working size,
// add/drain cycles must not allocate at all (acceptance: allocs/M == 0).
void BM_CombiningFlatSteadyState(benchmark::State& state) {
  runtime::CombiningBuffer buffer(AggKind::kSum);
  runtime::UpdateBatch batch;
  constexpr VertexId kKeys = 4096;
  for (VertexId k = 0; k < kKeys; ++k) buffer.Add(k * 7, 1.0);
  buffer.Drain(&batch);
  const int64_t allocs_at_start = g_allocations.load(std::memory_order_relaxed);
  for (auto _ : state) {
    for (VertexId k = 0; k < kKeys; ++k) buffer.Add(k * 7, 1.0);
    buffer.Drain(&batch);
  }
  benchmark::DoNotOptimize(batch.data());
  const double total =
      static_cast<double>(state.iterations()) * static_cast<double>(kKeys);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kKeys));
  state.counters["allocs_per_M_updates"] =
      static_cast<double>(g_allocations.load(std::memory_order_relaxed) -
                          allocs_at_start) *
      1e6 / total;
}
BENCHMARK(BM_CombiningFlatSteadyState);

// ---------------------------------------------------------------------------
// Tracing overhead. The disabled path is the one every production run pays
// with tracing compiled in: it must stay within a few ns (one null-pointer
// branch per SpanGuard side, no clock read). bench_compare gates on it.

void BM_TraceSpanDisabled(benchmark::State& state) {
  const trace::Tracer* tracer = nullptr;
  for (auto _ : state) {
    trace::SpanGuard span(tracer, "bench");
    benchmark::DoNotOptimize(tracer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanDisabled);

// Enabled-path cost (two ring emissions + two clock reads); informational.
void BM_TraceSpanEnabled(benchmark::State& state) {
  trace::Tracer tracer(1u << 12);
  tracer.RegisterCurrentThread("bench");
  for (auto _ : state) {
    trace::SpanGuard span(&tracer, "bench");
    benchmark::DoNotOptimize(&tracer);
  }
  trace::Tracer::UnregisterCurrentThread();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSpanEnabled);

// Serving-plane per-request tracking (StartQuery → FinishQuery round trip:
// id draw, inflight bookkeeping, RED counters + latency histogram, the
// slow-query ring). The untraced variant is what every tracked HTTP request
// pays with --trace-out off; the traced variant adds the request-span ring
// emissions. bench_compare reports the difference as
// serving_trace_overhead_ns.
void BM_ServingQueryTrack(benchmark::State& state) {
  serving::ServingCatalog catalog(serving::ServingOptions{});
  for (auto _ : state) {
    const int64_t id = catalog.StartQuery("run", "bench/bench");
    catalog.FinishQuery(id, Status::OK());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServingQueryTrack);

void BM_ServingQueryTrackTraced(benchmark::State& state) {
  serving::ServingOptions options;
  options.trace = true;
  serving::ServingCatalog catalog(std::move(options));
  for (auto _ : state) {
    const int64_t id = catalog.StartQuery("run", "bench/bench");
    catalog.FinishQuery(id, Status::OK());
  }
  trace::Tracer::UnregisterCurrentThread();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServingQueryTrackTraced);

void BM_ConditionCheck(benchmark::State& state) {
  const auto entry = datalog::GetCatalogEntry(
      state.range(0) == 0 ? "sssp" : (state.range(0) == 1 ? "pagerank" : "gcn_forward"));
  for (auto _ : state) {
    auto result = checker::CheckMraConditionsFromSource(entry->source);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ConditionCheck)->Arg(0)->Arg(1)->Arg(2);

void BM_MraSssp(benchmark::State& state) {
  auto kernel = BuildKernelFromSource(datalog::GetCatalogEntry("sssp")->source);
  auto graph = GenerateRmat(
      {static_cast<uint32_t>(state.range(0)), 8.0, 0.57, 0.19, 0.19, 0.05, true, 1, 64, 3});
  for (auto _ : state) {
    auto r = eval::MraEvaluate(*kernel, *graph);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph->num_edges()));
}
BENCHMARK(BM_MraSssp)->Arg(10)->Arg(12);

void BM_SemiNaiveCc(benchmark::State& state) {
  auto kernel = BuildKernelFromSource(datalog::GetCatalogEntry("cc")->source);
  auto graph = GenerateRmat(
      {static_cast<uint32_t>(state.range(0)), 8.0, 0.57, 0.19, 0.19, 0.05, false, 1, 64, 5});
  for (auto _ : state) {
    auto r = eval::SemiNaiveEvaluate(*kernel, *graph);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_SemiNaiveCc)->Arg(10)->Arg(12);

}  // namespace
}  // namespace powerlog

BENCHMARK_MAIN();
