// Figure 11 reproduction: the unified sync-async engine vs Grape+'s AAP
// model (implemented from its paper, as §6.5 does), plus plain sync/async.
//
// Paper shape: AAP generally beats plain sync and async but the sync-async
// engine is best on all datasets for both SSSP and PageRank.
#include "bench_common.h"

using namespace powerlog;
using runtime::ExecMode;

namespace {

void RunPanel(const std::string& title, const std::string& program) {
  bench::PrintHeader(title);
  bench::PrintColumns("dataset", {"Sync", "Async", "AAP", "Sync-Async"});
  std::vector<std::string> datasets = {"wiki", "web", "arabic"};
  if (bench::FastMode()) datasets = {"wiki"};
  int best_count = 0;
  for (const auto& dataset : datasets) {
    const double sync = bench::RunModeSeconds(ExecMode::kSync, program, dataset);
    const double async = bench::RunModeSeconds(ExecMode::kAsync, program, dataset);
    const double aap = bench::RunModeSeconds(ExecMode::kAap, program, dataset);
    const double unified =
        bench::RunModeSeconds(ExecMode::kSyncAsync, program, dataset);
    bench::PrintRow(dataset, {sync, async, aap, unified});
    if (unified > 0 && unified <= sync && unified <= async && unified <= aap) {
      ++best_count;
    }
  }
  std::printf("  shape check: Sync-Async best on %d/%zu datasets (paper: all)\n",
              best_count, datasets.size());
}

}  // namespace

int main() {
  RunPanel("Figure 11(a): SSSP — Sync vs Async vs AAP vs Sync-Async", "sssp");
  RunPanel("Figure 11(b): PageRank — Sync vs Async vs AAP vs Sync-Async",
           "pagerank");
  return 0;
}
