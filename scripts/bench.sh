#!/usr/bin/env bash
# Perf-regression harness: runs the pinned benchmark set and writes
# BENCH_<rev>.json at the repo root — the machine-readable baseline that
# scripts/bench_compare.py diffs against (see ARCHITECTURE.md, "Perf
# harness").
#
# Usage: scripts/bench.sh [--quick] [--out FILE]
#
#   --quick   shorter google-benchmark repetitions and the FAST dataset
#             subsample for fig9 — for the check.sh gate, where only the
#             deterministic metrics (fabric/sweep/edge-kernel speedups,
#             allocation counts) are compared, not absolute wall times.
#   --out     output path (default BENCH_<git short rev>.json).
#
# Pinned environment: 4 workers, fixed generator seeds (compiled into the
# benches), one benchmark process at a time. Wall-clock metrics still move
# with host load; bench_compare.py therefore gates only on relative and
# counting metrics by default and treats wall times as informational.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
OUT=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown arg: $1" >&2; exit 2 ;;
  esac
done

REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
[[ -n "$OUT" ]] || OUT="BENCH_${REV}.json"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> build (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_micro bench_fig9_overall bench_mutation bench_stalesync >/dev/null

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Pinned harness environment: every metric in BENCH_*.json is produced with
# exactly these knobs, so files from different revisions are comparable.
export POWERLOG_BENCH_WORKERS=4

MIN_TIME=0.5
[[ "$QUICK" -eq 1 ]] && MIN_TIME=0.1

echo "==> bench_micro (message fabric + compute plane + hot primitives)"
./build/bench/bench_micro \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json > "$TMP/micro.json"

echo "==> bench_fig9_overall (end-to-end engine vs comparators)"
FIG9_ENV=()
[[ "$QUICK" -eq 1 ]] && FIG9_ENV+=(POWERLOG_BENCH_FAST=1)
env "${FIG9_ENV[@]}" POWERLOG_BENCH_METRICS="$TMP/fig9_metrics.jsonl" \
  ./build/bench/bench_fig9_overall > "$TMP/fig9.txt"

echo "==> bench_stalesync (bounded-lead mode vs both pure disciplines)"
# Appends to the same fig9 JSONL: collect derives stalesync_vs_best_pure
# from the (program, dataset) cells that carry all three modes.
STALE_ENV=()
[[ "$QUICK" -eq 1 ]] && STALE_ENV+=(POWERLOG_BENCH_FAST=1)
env "${STALE_ENV[@]}" POWERLOG_BENCH_METRICS="$TMP/fig9_metrics.jsonl" \
  ./build/bench/bench_stalesync > "$TMP/stalesync.txt"

echo "==> bench_mutation (incremental re-convergence vs cold recompute)"
MUT_ENV=()
[[ "$QUICK" -eq 1 ]] && MUT_ENV+=(POWERLOG_BENCH_FAST=1)
env "${MUT_ENV[@]}" POWERLOG_BENCH_MUTATION="$TMP/mutation.jsonl" \
  ./build/bench/bench_mutation > "$TMP/mutation.txt"

echo "==> merge -> $OUT"
python3 scripts/bench_compare.py collect \
  --rev "$REV" \
  --quick "$QUICK" \
  --micro-json "$TMP/micro.json" \
  --fig9-metrics "$TMP/fig9_metrics.jsonl" \
  --mutation-metrics "$TMP/mutation.jsonl" \
  --out "$OUT"

python3 scripts/bench_compare.py show "$OUT"
