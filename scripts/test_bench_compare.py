#!/usr/bin/env python3
"""Regression tests for scripts/bench_compare.py (ISSUE 6 satellite).

The bug: a baseline BENCH_*.json missing a metric — truncated file, or one
written before a metric existed — crashed the compare gate with KeyError /
ZeroDivisionError instead of degrading that metric to informational output.
These tests drive the script as a subprocess, exactly as check.sh does.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")

GOOD_METRICS = {
    "fabric_spsc_updates_per_sec": 4.0e7,
    "fabric_mutex_updates_per_sec": 1.0e7,
    "fabric_speedup": 4.0,
    "fabric_spsc_allocs_per_M": 0.0,
    "fabric_overflow_sends": 0,
    "fabric_p50_latency_us": 1.0,
    "fabric_p99_latency_us": 4.0,
    "sweep_frontier_rows_per_sec": 6.0e8,
    "sweep_fullscan_rows_per_sec": 6.0e7,
    "sweep_frontier_speedup": 10.0,
    "edge_vm_edges_per_sec": 1.0e8,
    "edge_specialized_edges_per_sec": 2.0e8,
    "edge_specialized_speedup": 2.0,
    "combining_flat_allocs_per_M": 0.0,
    "trace_disabled_span_ns": 1.5,
    "trace_enabled_span_ns": 40.0,
}


def bench_doc(**overrides):
    doc = {"schema": 1, "rev": "test", "quick": True,
           "metrics": dict(GOOD_METRICS), "micro": {}, "fig9": {}}
    doc.update(overrides)
    return doc


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_compare(self, baseline, current):
        return subprocess.run(
            [sys.executable, SCRIPT, "compare", baseline, current],
            capture_output=True, text=True)

    def test_identical_passes(self):
        base = self.write("base.json", bench_doc())
        cur = self.write("cur.json", bench_doc())
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("all tracked metrics within tolerance", proc.stdout)

    def test_baseline_missing_one_metric_warns_not_crashes(self):
        doc = bench_doc()
        del doc["metrics"]["fabric_p99_latency_us"]
        base = self.write("base.json", doc)
        cur = self.write("cur.json", bench_doc())
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("fabric_p99_latency_us: not comparable", proc.stdout)
        self.assertIn("informational, not gated", proc.stdout)

    def test_baseline_missing_metrics_section_entirely(self):
        # The original crash: base["metrics"] raised KeyError.
        doc = bench_doc()
        del doc["metrics"]
        base = self.write("base.json", doc)
        cur = self.write("cur.json", bench_doc())
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no metrics section", proc.stdout)
        self.assertNotIn("Traceback", proc.stderr)

    def test_baseline_zero_rate_no_zero_division(self):
        doc = bench_doc()
        doc["metrics"]["fabric_spsc_updates_per_sec"] = 0.0
        base = self.write("base.json", doc)
        cur = self.write("cur.json", bench_doc())
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_baseline_garbage_metric_value(self):
        doc = bench_doc()
        doc["metrics"]["fabric_speedup"] = "not-a-number"
        base = self.write("base.json", doc)
        cur = self.write("cur.json", bench_doc())
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("fabric_speedup: not comparable", proc.stdout)

    def test_baseline_missing_schema_degrades(self):
        doc = bench_doc()
        del doc["schema"]
        base = self.write("base.json", doc)
        cur = self.write("cur.json", bench_doc())
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("unsupported schema", proc.stdout)

    def test_current_regression_still_gates(self):
        # Hardening must not weaken the gate: a real regression in the
        # current file still fails even against a partially truncated
        # baseline.
        doc = bench_doc()
        del doc["metrics"]["fabric_p99_latency_us"]
        base = self.write("base.json", doc)
        cur_doc = bench_doc()
        cur_doc["metrics"]["fabric_speedup"] = 1.0  # below the 2.0 hard floor
        cur = self.write("cur.json", cur_doc)
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("fabric_speedup", proc.stdout)

    def test_current_missing_schema_is_fatal(self):
        base = self.write("base.json", bench_doc())
        doc = bench_doc()
        doc["schema"] = 99
        cur = self.write("cur.json", doc)
        proc = self.run_compare(base, cur)
        self.assertNotEqual(proc.returncode, 0)

    def test_mutation_floor_informational_without_baseline_metric(self):
        # ISSUE 7: the mutation floor must not gate against a baseline that
        # predates the metric — first run is informational.
        base = self.write("base.json", bench_doc())
        cur_doc = bench_doc()
        cur_doc["metrics"]["mutation_speedup_vs_recompute"] = 1.2
        cur = self.write("cur.json", cur_doc)
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("informational: baseline lacks the metric", proc.stdout)

    def test_mutation_floor_gates_once_baseline_has_metric(self):
        base_doc = bench_doc()
        base_doc["metrics"]["mutation_speedup_vs_recompute"] = 8.0
        base = self.write("base.json", base_doc)
        cur_doc = bench_doc()
        cur_doc["metrics"]["mutation_speedup_vs_recompute"] = 1.2
        cur = self.write("cur.json", cur_doc)
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("mutation_speedup_vs_recompute", proc.stdout)

    def test_stalesync_floor_informational_without_baseline_metric(self):
        # ISSUE 8: same first-run contract as the mutation floor — a ratio
        # below 1.0 against a baseline that predates the metric warns only.
        base = self.write("base.json", bench_doc())
        cur_doc = bench_doc()
        cur_doc["metrics"]["stalesync_vs_best_pure"] = 0.8
        cur = self.write("cur.json", cur_doc)
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("stalesync_vs_best_pure", proc.stdout)
        self.assertIn("informational: baseline lacks the metric", proc.stdout)

    def test_stalesync_floor_gates_once_baseline_has_metric(self):
        base_doc = bench_doc()
        base_doc["metrics"]["stalesync_vs_best_pure"] = 1.4
        base = self.write("base.json", base_doc)
        cur_doc = bench_doc()
        cur_doc["metrics"]["stalesync_vs_best_pure"] = 0.8
        cur = self.write("cur.json", cur_doc)
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("stalesync_vs_best_pure", proc.stdout)

    def test_stalesync_collect_picks_best_cell(self):
        # collect derives the metric from the fig9 JSONL: only cells with
        # all three modes count, and the best ratio wins.
        micro = self.write("micro.json", {"benchmarks": []})
        jsonl = os.path.join(self.tmp.name, "runs.jsonl")
        runs = [
            # Complete cell: best pure 2.0 / stale 1.0 => ratio 2.0.
            {"program": "pagerank", "dataset": "wiki", "mode": "sync",
             "wall_seconds": 2.5, "converged": True},
            {"program": "pagerank", "dataset": "wiki", "mode": "async",
             "wall_seconds": 2.0, "converged": True},
            {"program": "pagerank", "dataset": "wiki", "mode": "stale-sync",
             "wall_seconds": 1.0, "converged": True},
            # Incomplete cell (no async run): must be ignored.
            {"program": "sssp", "dataset": "wiki", "mode": "sync",
             "wall_seconds": 1.0, "converged": True},
            {"program": "sssp", "dataset": "wiki", "mode": "stale-sync",
             "wall_seconds": 0.1, "converged": True},
        ]
        with open(jsonl, "w") as f:
            for rec in runs:
                f.write(json.dumps(rec) + "\n")
        out = os.path.join(self.tmp.name, "out.json")
        proc = subprocess.run(
            [sys.executable, SCRIPT, "collect", "--rev", "test",
             "--micro-json", micro, "--fig9-metrics", jsonl, "--out", out],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        with open(out) as f:
            doc = json.load(f)
        self.assertAlmostEqual(
            doc["metrics"]["stalesync_vs_best_pure"], 2.0)

    def test_vec_floor_informational_without_baseline_metric(self):
        # ISSUE 9: the per-shape SIMD floor must not gate against a baseline
        # that predates the metric — the host may not even have vector units.
        base = self.write("base.json", bench_doc())
        cur_doc = bench_doc()
        cur_doc["metrics"]["vec_edge_speedup_kXPlusW"] = 1.1
        cur = self.write("cur.json", cur_doc)
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("vec_edge_speedup_kXPlusW", proc.stdout)
        self.assertIn("informational: baseline lacks the metric", proc.stdout)

    def test_vec_floor_gates_once_baseline_has_metric(self):
        base_doc = bench_doc()
        base_doc["metrics"]["vec_edge_speedup_kXTimesW"] = 5.0
        base = self.write("base.json", base_doc)
        cur_doc = bench_doc()
        cur_doc["metrics"]["vec_edge_speedup_kXTimesW"] = 2.5
        cur = self.write("cur.json", cur_doc)
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("vec_edge_speedup_kXTimesW: 2.50 < floor 4.0",
                      proc.stdout)

    def test_vec_floor_missing_from_current_after_carried(self):
        # Once a baseline carries the metric, a current run that silently
        # drops it (bench pair deleted, dispatch broken) must fail.
        base_doc = bench_doc()
        base_doc["metrics"]["vec_edge_speedup_kAXOverDeg"] = 12.0
        base = self.write("base.json", base_doc)
        cur = self.write("cur.json", bench_doc())
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("vec_edge_speedup_kAXOverDeg: missing from current run",
                      proc.stdout)

    def test_vec_nongated_shape_never_fails(self):
        # kAXWB is collected but informational: a low ratio is a note even
        # when the baseline carries it.
        base_doc = bench_doc()
        base_doc["metrics"]["vec_edge_speedup_kAXWB"] = 5.0
        base = self.write("base.json", base_doc)
        cur_doc = bench_doc()
        cur_doc["metrics"]["vec_edge_speedup_kAXWB"] = 1.2
        cur = self.write("cur.json", cur_doc)
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("vec_edge_speedup_kAXWB (info)", proc.stdout)

    def test_vec_collect_derives_per_shape_ratios(self):
        # collect pairs BM_EdgeApplyVector/<shape> with
        # BM_EdgeApplySpecialized/<shape> by items_per_second.
        micro = self.write("micro.json", {"benchmarks": [
            {"name": "BM_EdgeApplySpecialized/kXPlusW", "cpu_time": 700.0,
             "real_time": 700.0, "items_per_second": 1.5e9},
            {"name": "BM_EdgeApplyVector/kXPlusW", "cpu_time": 140.0,
             "real_time": 140.0, "items_per_second": 7.5e9},
        ]})
        jsonl = os.path.join(self.tmp.name, "runs.jsonl")
        open(jsonl, "w").close()
        out = os.path.join(self.tmp.name, "out.json")
        proc = subprocess.run(
            [sys.executable, SCRIPT, "collect", "--rev", "test",
             "--micro-json", micro, "--fig9-metrics", jsonl, "--out", out],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        with open(out) as f:
            doc = json.load(f)
        self.assertAlmostEqual(doc["metrics"]["vec_edge_speedup_kXPlusW"], 5.0)
        self.assertIsNone(doc["metrics"]["vec_edge_speedup_kXTimesW"])

    def test_mutation_cell_divergence_gates(self):
        base_doc = bench_doc()
        base_doc["metrics"]["mutation_speedup_vs_recompute"] = 8.0
        base_doc["mutation"] = {"pagerank/livej": {"converged": True}}
        base = self.write("base.json", base_doc)
        cur_doc = bench_doc()
        cur_doc["metrics"]["mutation_speedup_vs_recompute"] = 8.0
        cur_doc["mutation"] = {"pagerank/livej": {"converged": False}}
        cur = self.write("cur.json", cur_doc)
        proc = self.run_compare(base, cur)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("diverged now", proc.stdout)

    def test_show_tolerates_truncated_file(self):
        doc = bench_doc()
        del doc["metrics"]
        path = self.write("b.json", doc)
        proc = subprocess.run([sys.executable, SCRIPT, "show", path],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)


if __name__ == "__main__":
    unittest.main()
