#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file produced by `powerlog_cli
--trace-out` (or the /trace HTTP endpoint).

Checks:
  * the file parses as one JSON object with a traceEvents array;
  * every B/E duration pair is well nested per (pid, tid) — the exporter
    promises it repairs wraparound-beheaded spans, so any violation here is
    an exporter bug, not a data artifact;
  * every thread row has a thread_name metadata record;
  * at least one flow arrow is complete: an "s" (send) and an "f" (receive)
    event sharing an id;
  * every span name passed via --require appears at least once.

Usage:
  check_trace.py TRACE.json [--require superstep --require sweep ...]
                            [--no-flows]

Exits non-zero (with a reason on stderr) when any check fails; prints a
one-line summary on success. check.sh runs this against a traced chaos run.
"""

import argparse
import collections
import json
import sys


def fail(msg):
    sys.stderr.write("check_trace: FAIL: {}\n".format(msg))
    sys.exit(1)


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("trace")
    p.add_argument("--require", action="append", default=[],
                   help="span name that must appear at least once (repeatable)")
    p.add_argument("--no-flows", action="store_true",
                   help="skip the matched send/receive flow check")
    args = p.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail("{}: {}".format(args.trace, e))

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("no traceEvents array")

    depth = collections.Counter()       # (pid, tid) -> open span depth
    span_names = collections.Counter()  # B-event names
    named_tids = set()                  # tids with a thread_name row
    event_tids = set()                  # tids that emitted any non-M event
    flow_sends, flow_recvs = set(), set()
    ts_beyond_depth = {}

    for i, e in enumerate(events):
        ph = e.get("ph")
        tid = (e.get("pid"), e.get("tid"))
        if ph == "M":
            if e.get("name") == "thread_name":
                named_tids.add(tid)
            continue
        event_tids.add(tid)
        if ph == "B":
            depth[tid] += 1
            span_names[e.get("name")] += 1
        elif ph == "E":
            if depth[tid] <= 0:
                fail("event {}: unmatched E on tid {}".format(i, tid))
            depth[tid] -= 1
        elif ph == "s":
            flow_sends.add(e.get("id"))
        elif ph == "f":
            flow_recvs.add(e.get("id"))
        ts = e.get("ts")
        if ts is None:
            fail("event {}: missing ts".format(i))
        ts_beyond_depth[tid] = ts

    unclosed = {tid: d for tid, d in depth.items() if d != 0}
    if unclosed:
        fail("unclosed spans at end of trace: {}".format(unclosed))

    unnamed = event_tids - named_tids
    if unnamed:
        fail("threads without a thread_name metadata row: {}".format(
            sorted(unnamed)))

    if not args.no_flows:
        matched = flow_sends & flow_recvs
        if not matched:
            fail("no matched send/receive flow pair "
                 "({} sends, {} receives)".format(
                     len(flow_sends), len(flow_recvs)))

    missing = [name for name in args.require if span_names.get(name, 0) == 0]
    if missing:
        fail("required span(s) absent: {} (present: {})".format(
            missing, sorted(span_names)))

    print("check_trace: ok — {} events, {} threads, {} span names, "
          "{} matched flows".format(
              len(events), len(event_tids), len(span_names),
              len(flow_sends & flow_recvs)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
