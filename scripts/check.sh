#!/usr/bin/env bash
# Repo verification: the tier-1 suite plus one ThreadSanitizer pass over the
# race-prone suites (ctest labels `fault` and `concurrency`).
#
# Usage: scripts/check.sh [--skip-tsan]
#
# Build trees: build/ (plain) and build-tsan/ (POWERLOG_SANITIZE=thread);
# both are created if missing and reused if present.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "==> tier-1: configure + build (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$SKIP_TSAN" -eq 1 ]]; then
  echo "==> TSan pass skipped (--skip-tsan)"
  exit 0
fi

echo "==> TSan: configure + build (build-tsan/)"
cmake -B build-tsan -S . -DPOWERLOG_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS"

# Low parallelism + retry on purpose: TSan slows every worker thread ~20x,
# which can starve async workers long enough for the epsilon-termination
# criterion (two static global-aggregate samples) to fire before convergence
# in the epsilon engine tests — a known timing artifact of the paper's
# criterion under extreme slowdown, not a race (TSan reports stay fatal).
echo "==> TSan: ctest -L 'fault|concurrency'"
ctest --test-dir build-tsan -L 'fault|concurrency' --output-on-failure -j 2 \
      --repeat until-pass:3

echo "==> all checks passed"
