#!/usr/bin/env bash
# Repo verification: the tier-1 suite, one ThreadSanitizer pass over the
# race-prone suites (ctest labels `fault` and `concurrency`), one
# AddressSanitizer pass over the data-plane and SIMD suites (labels
# `network` and `simd`), a forced-scalar rerun of the SIMD kernel-equality
# suite, and a perf-regression gate against the committed BENCH_*.json
# baseline.
#
# Usage: scripts/check.sh [--skip-tsan] [--skip-asan] [--skip-bench]
#                         [--skip-trace] [--skip-serve] [--skip-stalesync]
#                         [--skip-simd]
#
# Build trees: build/ (plain), build-tsan/ (POWERLOG_SANITIZE=thread) and
# build-asan/ (POWERLOG_SANITIZE=address); all are created if missing and
# reused if present.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_TSAN=0
SKIP_ASAN=0
SKIP_BENCH=0
SKIP_TRACE=0
SKIP_SERVE=0
SKIP_STALESYNC=0
SKIP_SIMD=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-bench) SKIP_BENCH=1 ;;
    --skip-trace) SKIP_TRACE=1 ;;
    --skip-serve) SKIP_SERVE=1 ;;
    --skip-stalesync) SKIP_STALESYNC=1 ;;
    --skip-simd) SKIP_SIMD=1 ;;
    *) echo "unknown arg: $arg" >&2; exit 2 ;;
  esac
done

echo "==> tier-1: configure + build (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$SKIP_SIMD" -eq 1 ]]; then
  echo "==> SIMD forced-scalar pass skipped (--skip-simd)"
else
  # SIMD stage (ISSUE 9): rerun the kernel-equality and steal suites with
  # the dispatch override pinning the scalar fallback. The suites already
  # ran once above under the host's native level (avx2/avx512 where
  # available), so this pass proves the scalar reference loops — the path
  # non-x86 hosts and POWERLOG_SIMD=scalar users run — satisfy the same
  # contracts, and that the engine's vector/scalar parity holds from both
  # sides of the dispatch.
  echo "==> SIMD: ctest -L simd with POWERLOG_SIMD=scalar"
  POWERLOG_SIMD=scalar ctest --test-dir build -L simd \
      --output-on-failure -j "$JOBS"
fi

if [[ "$SKIP_TSAN" -eq 1 ]]; then
  echo "==> TSan pass skipped (--skip-tsan)"
else
  echo "==> TSan: configure + build (build-tsan/)"
  cmake -B build-tsan -S . -DPOWERLOG_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$JOBS"

  # Low parallelism + retry on purpose: TSan slows every worker thread ~20x,
  # which can starve async workers long enough for the epsilon-termination
  # criterion (two static global-aggregate samples) to fire before convergence
  # in the epsilon engine tests — a known timing artifact of the paper's
  # criterion under extreme slowdown, not a race (TSan reports stay fatal).
  echo "==> TSan: ctest -L 'fault|concurrency'"
  ctest --test-dir build-tsan -L 'fault|concurrency' --output-on-failure -j 2 \
        --repeat until-pass:3
fi

if [[ "$SKIP_ASAN" -eq 1 ]]; then
  echo "==> ASan pass skipped (--skip-asan)"
else
  # The data plane recycles UpdateBatch capacity through a lock-free pool and
  # hands ring slots between threads; ASan over the `network` label catches
  # use-after-move / use-after-free bugs TSan does not look for. The `simd`
  # label rides along: the span kernels read 32/64-byte blocks out of AoS
  # edge arrays and the peel/tail logic is exactly where an out-of-bounds
  # lane read would hide.
  echo "==> ASan: configure + build (build-asan/)"
  cmake -B build-asan -S . -DPOWERLOG_SANITIZE=address >/dev/null
  cmake --build build-asan -j "$JOBS"

  echo "==> ASan: ctest -L 'network|simd'"
  ctest --test-dir build-asan -L 'network|simd' --output-on-failure -j "$JOBS"
fi

if [[ "$SKIP_SERVE" -eq 1 ]]; then
  echo "==> serving stage skipped (--skip-serve)"
else
  # Serving-plane acceptance (ISSUE 6): boot the resident query server on an
  # ephemeral port, exercise every route class from the outside, prove the
  # result cache moves, and verify SIGTERM produces a clean joined shutdown.
  echo "==> serving: boot powerlog_serve (pagerank/flickr, ephemeral port)"
  SERVE_LOG="$(mktemp)"
  SERVE_TMP="$(mktemp -d)"
  build/examples/powerlog_serve --pair pagerank:flickr --port 0 \
      --workers 4 --cache 16 \
      --trace-out "$SERVE_TMP/serve.trace.json" --slow-query-ms 5000 \
      >"$SERVE_LOG" 2>&1 &
  SERVE_PID=$!
  serve_fail() {
    echo "serving stage failed: $1" >&2
    cat "$SERVE_LOG" >&2
    kill -KILL "$SERVE_PID" 2>/dev/null || true
    rm -f "$SERVE_LOG"
    rm -rf "$SERVE_TMP"
    exit 1
  }
  PORT=""
  for _ in $(seq 1 600); do
    PORT="$(sed -n 's#^serving on http://127\.0\.0\.1:\([0-9]*\)$#\1#p' "$SERVE_LOG")"
    [[ -n "$PORT" ]] && break
    kill -0 "$SERVE_PID" 2>/dev/null || serve_fail "server exited during boot"
    sleep 0.1
  done
  [[ -n "$PORT" ]] || serve_fail "no bound-port line within 60s"
  BASE="http://127.0.0.1:$PORT"

  [[ "$(curl -sf "$BASE/healthz")" == "ok" ]] || serve_fail "/healthz"
  curl -sf "$BASE/lookup?program=pagerank&dataset=flickr&v=42" \
      | grep -q '"value":' || serve_fail "/lookup"
  curl -sf "$BASE/topk?program=pagerank&dataset=flickr&k=5" \
      | grep -q '"topk":\[{' || serve_fail "/topk"
  # First full run misses the cache, the replay hits it.
  curl -sf "$BASE/run?program=pagerank&dataset=flickr" \
      | grep -q '"cached":false' || serve_fail "/run (cold)"
  curl -sf "$BASE/run?program=pagerank&dataset=flickr" \
      | grep -q '"cached":true' || serve_fail "/run (cached replay)"
  METRICS="$(curl -sf "$BASE/metrics")"
  grep -q '^powerlog_serving_cache_hits [1-9]' <<<"$METRICS" \
      || serve_fail "cache hit counter did not move"
  grep -q '^powerlog_serving_cache_misses [1-9]' <<<"$METRICS" \
      || serve_fail "cache miss counter did not move"
  # Zero per-query graph rebuilds: builds == catalog size (1), not hit count.
  grep -q '^powerlog_serving_graph_builds 1$' <<<"$METRICS" \
      || serve_fail "graph rebuilt while serving"

  # Mutation plane (ISSUE 7): POST a batch, assert the entry re-converged to
  # a new version, the result cache dropped its pre-mutation entries, and the
  # mutation counters moved.
  echo "==> serving: POST /mutate + incremental re-convergence"
  curl -sf "$BASE/version?program=pagerank&dataset=flickr" \
      | grep -q '"version":1' || serve_fail "/version (pre-mutation)"
  MUTATE="$(curl -sf -X POST \
      --data '{"ops":[{"op":"insert","src":1,"dst":2,"weight":1.0}]}' \
      "$BASE/mutate?program=pagerank&dataset=flickr")" \
      || serve_fail "/mutate (POST)"
  grep -q '"version":2' <<<"$MUTATE" || serve_fail "/mutate did not bump version"
  grep -q '"converged":true' <<<"$MUTATE" || serve_fail "/mutate did not re-converge"
  grep -q '"path":"' <<<"$MUTATE" || serve_fail "/mutate reported no path"
  curl -sf "$BASE/version?program=pagerank&dataset=flickr" \
      | grep -q '"version":2' || serve_fail "/version (post-mutation)"
  curl -sf "$BASE/lookup?program=pagerank&dataset=flickr&v=42" \
      | grep -q '"value":' || serve_fail "/lookup (post-mutation)"
  # The pre-mutation cached /run must not survive the version bump.
  curl -sf "$BASE/run?program=pagerank&dataset=flickr" \
      | grep -q '"cached":false' || serve_fail "/run served a stale cache entry"
  METRICS="$(curl -sf "$BASE/metrics")"
  grep -q '^powerlog_serving_mutations_applied 1$' <<<"$METRICS" \
      || serve_fail "mutations_applied counter did not move"
  grep -q '^powerlog_serving_graph_builds 2$' <<<"$METRICS" \
      || serve_fail "mutation did not advance the graph build count"

  # Query-level observability (ISSUE 10): the requests above were tracked —
  # /debug/queries must show them with phase timings, and the per-route RED
  # instruments must have moved.
  echo "==> serving: /debug/queries + per-route RED metrics"
  DEBUGQ="$(curl -sf "$BASE/debug/queries")" || serve_fail "/debug/queries"
  grep -q '"slowest":\[{' <<<"$DEBUGQ" \
      || serve_fail "/debug/queries recorded no completed queries"
  grep -q '"route":"run"' <<<"$DEBUGQ" \
      || serve_fail "/debug/queries missing the /run record"
  grep -q '"exec_ms":' <<<"$DEBUGQ" \
      || serve_fail "/debug/queries missing phase timings"
  grep -q '^powerlog_serving_red_run_requests [1-9]' <<<"$METRICS" \
      || serve_fail "RED request counter did not move"
  grep -q '^powerlog_serving_latency_run_bucket{le=' <<<"$METRICS" \
      || serve_fail "RED latency histogram missing"

  echo "==> serving: SIGTERM clean shutdown"
  kill -TERM "$SERVE_PID"
  SERVE_RC=0
  wait "$SERVE_PID" || SERVE_RC=$?
  [[ "$SERVE_RC" -eq 0 ]] || serve_fail "exit code $SERVE_RC on SIGTERM"
  grep -q "clean exit: all handler threads joined" "$SERVE_LOG" \
      || serve_fail "shutdown did not join handler threads"

  # The request path above must export as one connected tree: serving-side
  # request/phase spans well nested, engine rings in the same file, and the
  # handler→worker query.run flow arrows matched.
  echo "==> serving: check_trace.py on the serve-produced trace"
  python3 scripts/check_trace.py "$SERVE_TMP/serve.trace.json" \
      --require serving.request.run --require serving.request.lookup \
      --require serving.request.topk --require serving.request.mutate \
      --require serving.queue --require serving.exec \
      --require serving.patch --require serving.certify \
      || serve_fail "serve trace failed validation"
  rm -f "$SERVE_LOG"
  rm -rf "$SERVE_TMP"
fi

if [[ "$SKIP_STALESYNC" -eq 1 ]]; then
  echo "==> stale-sync stage skipped (--skip-stalesync)"
else
  # Stale-sync acceptance (ISSUE 8): the fig9 smoke set must converge under
  # --mode=stalesync --staleness=auto, and a traced run with the tightest
  # bound (s=0, where any superstep lead gates) must emit stale.park spans —
  # proof the clock gate actually parks fast workers rather than being
  # compiled in but never taken.
  echo "==> stale-sync: fig9 smoke set (--mode=stalesync --staleness=auto)"
  for prog in sssp cc pagerank; do
    build/examples/powerlog_cli --program "$prog" --dataset flickr \
        --mode stalesync --staleness auto --workers 4 --epsilon 1e-4 \
        >/dev/null \
        || { echo "stale-sync smoke failed: $prog" >&2; exit 1; }
  done

  echo "==> stale-sync: traced skewed run + stale.park spans"
  STALE_TMP="$(mktemp -d)"
  build/examples/powerlog_cli --program pagerank --dataset flickr \
      --mode stalesync --staleness 0 --workers 4 --epsilon 1e-4 \
      --trace-out "$STALE_TMP/trace.json" >/dev/null \
      || { rm -rf "$STALE_TMP"; echo "stale-sync traced run failed" >&2; exit 1; }
  python3 scripts/check_trace.py "$STALE_TMP/trace.json" \
      --require superstep --require sweep --require stale.park
  rm -rf "$STALE_TMP"
fi

if [[ "$SKIP_TRACE" -eq 1 ]]; then
  echo "==> trace stage skipped (--skip-trace)"
else
  # Observability acceptance (ISSUE 5): a traced async chaos run — crash,
  # rollback recovery, periodic checkpoint cuts — must export Chrome trace
  # JSON that validates end to end: well-nested spans for every layer plus
  # at least one matched Send→Receive flow arrow. pagerank is sum-mode, so
  # the async supervisor writes periodic checkpoint.cut snapshots.
  echo "==> trace: chaos run (pagerank/flickr, async, crash + checkpoint)"
  TRACE_TMP="$(mktemp -d)"
  trap 'rm -rf "$TRACE_TMP"' EXIT
  build/examples/powerlog_cli --program pagerank --dataset flickr \
      --mode async --workers 4 --epsilon 1e-4 \
      --fault-plan "crash=1@200,seed=7" \
      --checkpoint "$TRACE_TMP/ckpt" --checkpoint-us 3000 \
      --trace-out "$TRACE_TMP/trace.json" >/dev/null

  echo "==> trace: scripts/check_trace.py"
  python3 scripts/check_trace.py "$TRACE_TMP/trace.json" \
      --require superstep --require sweep --require flush \
      --require checkpoint.cut --require recovery
  rm -rf "$TRACE_TMP"
fi

if [[ "$SKIP_BENCH" -eq 1 ]]; then
  echo "==> bench gate skipped (--skip-bench)"
else
  # Newest committed baseline wins — by commit time, not filename order
  # (BENCH_<rev>.json names sort lexicographically by revision hash). The
  # quick run only feeds the relative / counting metrics bench_compare gates
  # on, so it is comparable to a full baseline (wall-clock metrics are
  # informational either way).
  BASELINE=""
  BASELINE_TS=0
  while IFS= read -r f; do
    ts="$(git log -1 --format=%ct -- "$f")"
    if [[ -n "$ts" && "$ts" -gt "$BASELINE_TS" ]]; then
      BASELINE="$f"
      BASELINE_TS="$ts"
    fi
  done < <(git ls-files 'BENCH_*.json')
  if [[ -z "$BASELINE" ]]; then
    echo "==> bench gate skipped (no committed BENCH_*.json baseline)"
  else
    echo "==> bench: scripts/bench.sh --quick vs $BASELINE"
    scripts/bench.sh --quick --out /tmp/powerlog_bench_check.json
    python3 scripts/bench_compare.py compare "$BASELINE" \
            /tmp/powerlog_bench_check.json
  fi
fi

echo "==> all checks passed"
