#!/usr/bin/env python3
"""Perf-baseline collector and regression gate for BENCH_<rev>.json files.

Three modes:

  collect   Merge one bench_micro --benchmark_format=json dump and one
            bench_fig9_overall POWERLOG_BENCH_METRICS JSONL trace into a
            single BENCH_*.json (called by scripts/bench.sh).
  compare   Diff a current BENCH file against a committed baseline. Exits
            non-zero when a *tracked* metric regresses beyond its threshold.
  show      Pretty-print one BENCH file.

Tracked (gating) metrics are the relative / counting ones, which are stable
on a loaded host:

  fabric_speedup            SPSC vs mutex+deque updates/s ratio; must stay
                            >= FABRIC_SPEEDUP_FLOOR (2.0) *and* within 10%%
                            of the baseline.
  fabric_spsc_allocs_per_M  allocations per million updates through the SPSC
                            plane; near zero, gated with a small absolute
                            slack on top of the 10%%.
  fabric_overflow_sends     full-ring slow-path sends in the fabric bench;
                            must not exceed baseline + slack.
  fabric_p50/p99_latency_us in-process delivery latency percentiles.
  sweep_frontier_speedup    frontier word-scan sweep vs full-scan replica
                            rows-covered/s ratio on the sparse-frontier
                            microbench; must stay >= SWEEP_SPEEDUP_FLOOR (5.0)
                            *and* within 10%% of the baseline.
  edge_specialized_speedup  fused KernelOp scatter vs stack-VM edges/s ratio;
                            must stay >= EDGE_SPEEDUP_FLOOR (1.5) *and*
                            within 10%% of the baseline.
  combining_flat_allocs_per_M
                            steady-state allocations per million Add/Drain
                            updates through the flat combining buffer; must
                            stay < 1 (i.e. zero in practice).
  trace_disabled_span_ns    cost of one SpanGuard with tracing disabled (the
                            path every production run pays with the tracer
                            compiled in); hard ceiling 10 ns — a couple of
                            predictable branches, never a clock read.
  serving_trace_overhead_ns per-request cost the serving tracer adds to a
                            tracked StartQuery→FinishQuery round trip
                            (BM_ServingQueryTrackTraced − BM_ServingQueryTrack,
                            ISSUE 10); ceiling 2000 ns. Informational on the
                            first run (baseline predates the metric) and
                            gated thereafter, like the mutation floor.
  mutation_speedup_vs_recompute
                            worst-cell incremental-Apply vs cold-recompute
                            wall ratio from bench_mutation (ISSUE 7); must
                            stay >= MUTATION_SPEEDUP_FLOOR (5.0). The floor
                            is informational on the first run (baseline
                            predates the metric) and gated thereafter.
  stalesync_vs_best_pure    best-cell min(sync, async) / stale-sync wall
                            ratio over the (program, dataset) cells that ran
                            all three modes (ISSUE 8); >= 1 means the
                            bounded-lead mode beat both pure disciplines on
                            at least one skewed cell. Informational on the
                            first run and gated thereafter, like the
                            mutation floor.
  fig9 convergence          every engine run recorded in the baseline must
                            still converge.
  mutation convergence      every mutation cell recorded in the baseline must
                            still re-converge.

Since ISSUE 5 the fabric/sweep/edge floors double as the tracer-off overhead
gate: bench_micro is built with the tracing plane compiled in (disabled), so
a floor regression is how instrumented hot paths getting slower shows up.

Absolute wall-clock metrics (updates/s, per-benchmark cpu_time, fig9 wall
seconds) are reported as informational deltas only — this harness runs on
shared single-core hosts where they swing with load.
"""

import argparse
import json
import math
import sys

FABRIC_SPEEDUP_FLOOR = 2.0
SWEEP_SPEEDUP_FLOOR = 5.0   # frontier sweep vs full-scan replica (ISSUE 4)
EDGE_SPEEDUP_FLOOR = 1.5    # specialized scatter vs stack VM (ISSUE 4)
FLAT_ALLOCS_CEILING = 1.0   # combining-buffer steady-state allocs/M
TRACE_DISABLED_CEILING_NS = 10.0  # disabled SpanGuard cost (ISSUE 5)
SERVING_TRACE_OVERHEAD_CEILING_NS = 2000.0  # per-request tracing add (ISSUE 10)
MUTATION_SPEEDUP_FLOOR = 5.0  # incremental Apply vs cold recompute (ISSUE 7)
STALESYNC_SPEEDUP_FLOOR = 1.0  # best-cell min(sync,async)/stale-sync (ISSUE 8)
VEC_EDGE_SPEEDUP_FLOOR = 4.0  # SIMD span kernel vs scalar per-edge (ISSUE 9)
# The vectorizable shapes the floor gates; the rest of the specialized
# family is collected per shape but stays informational.
VEC_GATED_SHAPES = ("kXPlusW", "kAXOverDeg", "kXTimesW")
VEC_ALL_SHAPES = VEC_GATED_SHAPES + ("kXPlusA", "kAXW", "kAXWB")
REGRESSION_PCT = 10.0  # tracked-metric tolerance vs baseline
ALLOC_SLACK = 1.0      # absolute allocs/M slack on top of the percentage
OVERFLOW_SLACK = 0     # overflow sends allowed above baseline

SCHEMA = 1


# --------------------------------------------------------------------------
# collect

def _micro_entries(micro):
    """google-benchmark JSON -> {name: {metric: value}}."""
    out = {}
    for b in micro.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "cpu_time_ns": b.get("cpu_time"),
            "real_time_ns": b.get("real_time"),
        }
        for key in ("items_per_second", "allocs_per_M_updates",
                    "overflow_sends", "p50_latency_us", "p99_latency_us"):
            if key in b:
                entry[key] = b[key]
        out[b["name"]] = entry
    return out


def _counter(rec, name):
    counters = rec.get("metrics", {}).get("counters", {})
    return counters.get(name)


def collect(args):
    with open(args.micro_json) as f:
        micro = _micro_entries(json.load(f))

    fig9 = {}
    try:
        with open(args.fig9_metrics) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                key = "{}/{}/{}".format(rec.get("program"), rec.get("dataset"),
                                        rec.get("mode"))
                fig9[key] = {
                    "wall_seconds": rec.get("wall_seconds"),
                    "converged": rec.get("converged"),
                    "pool_hits": _counter(rec, "bus.pool.hits"),
                    "pool_misses": _counter(rec, "bus.pool.misses"),
                    "overflow_sends": _counter(rec, "bus.overflow_sends"),
                    # Compute-plane counters (ISSUE 4), top-level since ISSUE 5.
                    "dense_sweeps": rec.get("dense_sweeps"),
                    "sparse_sweeps": rec.get("sparse_sweeps"),
                    "frontier_skipped": rec.get("frontier_skipped"),
                    "specialized_edges": rec.get("specialized_edges"),
                    "vm_edges": rec.get("vm_edges"),
                    "recoveries": rec.get("recoveries"),
                }
    except FileNotFoundError:
        pass

    mutation = {}
    if getattr(args, "mutation_metrics", None):
        try:
            with open(args.mutation_metrics) as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    rec = json.loads(line)
                    key = "{}/{}".format(rec.get("program"), rec.get("dataset"))
                    mutation[key] = rec
        except FileNotFoundError:
            pass
    mutation_speedups = [
        s for s in (_num(rec.get("speedup")) for rec in mutation.values())
        if s is not None
    ]

    # Stale-sync frontier (ISSUE 8): over every (program, dataset) cell the
    # JSONL carries in all three of sync / async / stale-sync, the ratio of
    # the best pure mode's wall time to stale-sync's. The *best* cell is the
    # reported metric — the acceptance claim is "beats both pure modes on at
    # least one skewed cell", not "everywhere".
    stalesync_ratios = []
    for key, rec in fig9.items():
        cell, _, mode = key.rpartition("/")
        if mode != "stale-sync" or not rec.get("converged"):
            continue
        stale_wall = _num(rec.get("wall_seconds"))
        pure_walls = [
            _num(fig9.get("{}/{}".format(cell, m), {}).get("wall_seconds"))
            for m in ("sync", "async")
        ]
        pure_walls = [w for w in pure_walls if w is not None and w > 0]
        if stale_wall and stale_wall > 0 and len(pure_walls) == 2:
            stalesync_ratios.append(min(pure_walls) / stale_wall)

    spsc = micro.get("BM_BusFabric_SPSC", {})
    mutex = micro.get("BM_BusFabric_MutexDeque", {})
    latency = micro.get("BM_BusFabric_SPSC_Latency", {})
    spsc_rate = spsc.get("items_per_second")
    mutex_rate = mutex.get("items_per_second")
    speedup = None
    if spsc_rate and mutex_rate:
        speedup = spsc_rate / mutex_rate

    def _ratio(num_name, den_name):
        num = micro.get(num_name, {}).get("items_per_second")
        den = micro.get(den_name, {}).get("items_per_second")
        return (num / den) if num and den else None

    sweep_speedup = _ratio("BM_SweepFrontier", "BM_SweepFullScanReplica")
    edge_speedup = _ratio("BM_EdgeApplySpecialized", "BM_EdgeApplyVM")
    flat = micro.get("BM_CombiningFlatSteadyState", {})

    # Serving-plane request tracking (ISSUE 10): the traced round trip minus
    # the untraced one isolates what the request spans cost per query.
    serving_track_ns = _num(
        micro.get("BM_ServingQueryTrack", {}).get("cpu_time_ns"))
    serving_traced_ns = _num(
        micro.get("BM_ServingQueryTrackTraced", {}).get("cpu_time_ns"))
    serving_trace_overhead = None
    if serving_track_ns is not None and serving_traced_ns is not None:
        serving_trace_overhead = max(0.0, serving_traced_ns - serving_track_ns)

    # Per-shape SIMD span speedups (ISSUE 9): the dispatched vector kernel
    # against the per-edge scalar loop over the same span.
    vec_speedups = {
        "vec_edge_speedup_{}".format(shape):
            _ratio("BM_EdgeApplyVector/{}".format(shape),
                   "BM_EdgeApplySpecialized/{}".format(shape))
        for shape in VEC_ALL_SHAPES
    }

    doc = {
        "schema": SCHEMA,
        "rev": args.rev,
        "quick": bool(int(args.quick)),
        "metrics": {
            "fabric_spsc_updates_per_sec": spsc_rate,
            "fabric_mutex_updates_per_sec": mutex_rate,
            "fabric_speedup": speedup,
            "fabric_spsc_allocs_per_M": spsc.get("allocs_per_M_updates"),
            "fabric_mutex_allocs_per_M": mutex.get("allocs_per_M_updates"),
            "fabric_overflow_sends": spsc.get("overflow_sends"),
            "fabric_p50_latency_us": latency.get("p50_latency_us"),
            "fabric_p99_latency_us": latency.get("p99_latency_us"),
            "sweep_frontier_rows_per_sec":
                micro.get("BM_SweepFrontier", {}).get("items_per_second"),
            "sweep_fullscan_rows_per_sec":
                micro.get("BM_SweepFullScanReplica", {}).get("items_per_second"),
            "sweep_frontier_speedup": sweep_speedup,
            "edge_vm_edges_per_sec":
                micro.get("BM_EdgeApplyVM", {}).get("items_per_second"),
            "edge_specialized_edges_per_sec":
                micro.get("BM_EdgeApplySpecialized", {}).get("items_per_second"),
            "edge_specialized_speedup": edge_speedup,
            "combining_flat_allocs_per_M": flat.get("allocs_per_M_updates"),
            "trace_disabled_span_ns":
                micro.get("BM_TraceSpanDisabled", {}).get("cpu_time_ns"),
            "trace_enabled_span_ns":
                micro.get("BM_TraceSpanEnabled", {}).get("cpu_time_ns"),
            "serving_query_track_ns": serving_track_ns,
            "serving_trace_overhead_ns": serving_trace_overhead,
            # Worst cell gates: one slow (program, dataset) pair is a
            # regression even if the others still fly.
            "mutation_speedup_vs_recompute":
                min(mutation_speedups) if mutation_speedups else None,
            "stalesync_vs_best_pure":
                max(stalesync_ratios) if stalesync_ratios else None,
            **vec_speedups,
        },
        "micro": micro,
        "fig9": fig9,
        "mutation": mutation,
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print("wrote {}".format(args.out))
    return 0


# --------------------------------------------------------------------------
# compare

def _load(path, strict=True):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        # A baseline from an older/truncated file is a warning, not a crash:
        # the comparison degrades to informational. The *current* file is
        # produced by this very revision, so a mismatch there is a real bug.
        msg = "{}: unsupported schema {!r}".format(path, doc.get("schema"))
        if strict:
            sys.exit(msg)
        print("  warn " + msg)
    return doc


def _fmt(v):
    if v is None:
        return "-"
    if isinstance(v, float):
        return "{:.4g}".format(v)
    return str(v)


def _num(v):
    """Numeric or None — shields the gate from absent/NaN/garbage fields in a
    truncated or hand-edited baseline."""
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        return None
    if isinstance(v, float) and math.isnan(v):
        return None
    return v


def compare(args):
    base = _load(args.baseline, strict=False)
    cur = _load(args.current)
    # A baseline missing whole sections (truncated file, pre-refactor schema
    # sibling) must degrade to informational output, never crash the gate.
    bm = base.get("metrics") or {}
    cm = cur.get("metrics") or {}
    failures = []
    notes = []
    warnings = []
    if not bm:
        warnings.append(
            "baseline {} has no metrics section; baseline-relative gates "
            "are informational only".format(args.baseline))

    def tracked(name, worse_is, threshold_pct=REGRESSION_PCT, slack=0.0):
        b, c = _num(bm.get(name)), _num(cm.get(name))
        if b is None or c is None:
            warnings.append(
                "{}: not comparable ({} -> {}); informational, not gated".format(
                    name, _fmt(bm.get(name)), _fmt(cm.get(name))))
            return
        if worse_is == "lower":
            limit = b * (1 - threshold_pct / 100.0) - slack
            ok = c >= limit
        else:
            limit = b * (1 + threshold_pct / 100.0) + slack
            ok = c <= limit
        line = "{}: {} -> {} (limit {})".format(name, _fmt(b), _fmt(c), _fmt(limit))
        (notes if ok else failures).append(line)

    # Hard floor first: the ISSUE-3 acceptance ratio.
    speedup = cm.get("fabric_speedup")
    if speedup is None or math.isnan(speedup):
        failures.append("fabric_speedup: missing from current run")
    elif speedup < FABRIC_SPEEDUP_FLOOR:
        failures.append("fabric_speedup: {:.2f} < floor {:.1f}".format(
            speedup, FABRIC_SPEEDUP_FLOOR))

    # Compute-plane hard floors (ISSUE 4). Absolute gates, no baseline needed.
    def hard_floor(name, floor):
        v = cm.get(name)
        if v is None or (isinstance(v, float) and math.isnan(v)):
            failures.append("{}: missing from current run".format(name))
        elif v < floor:
            failures.append("{}: {:.2f} < floor {:.1f}".format(name, v, floor))

    hard_floor("sweep_frontier_speedup", SWEEP_SPEEDUP_FLOOR)
    hard_floor("edge_specialized_speedup", EDGE_SPEEDUP_FLOOR)
    flat_allocs = cm.get("combining_flat_allocs_per_M")
    if flat_allocs is None:
        failures.append("combining_flat_allocs_per_M: missing from current run")
    elif flat_allocs >= FLAT_ALLOCS_CEILING:
        failures.append(
            "combining_flat_allocs_per_M: {:.2f} >= ceiling {:.1f}".format(
                flat_allocs, FLAT_ALLOCS_CEILING))

    # Tracer-off overhead (ISSUE 5): absolute ceiling, not baseline-relative
    # — single-digit-ns timings jitter too much for a percentage gate, but a
    # clock read sneaking into the disabled path blows straight past 10 ns.
    span_ns = cm.get("trace_disabled_span_ns")
    if span_ns is None:
        notes.append("trace_disabled_span_ns: missing (pre-ISSUE-5 run)")
    elif span_ns >= TRACE_DISABLED_CEILING_NS:
        failures.append(
            "trace_disabled_span_ns: {:.2f} >= ceiling {:.1f}".format(
                span_ns, TRACE_DISABLED_CEILING_NS))
    else:
        notes.append("trace_disabled_span_ns: {:.2f} (ceiling {:.1f})".format(
            span_ns, TRACE_DISABLED_CEILING_NS))

    # Serving-plane tracing overhead (ISSUE 10): same informational-until-
    # carried contract as the mutation floor — a ceiling, not a floor.
    serve_ovh = _num(cm.get("serving_trace_overhead_ns"))
    base_serve_ovh = _num(bm.get("serving_trace_overhead_ns"))
    if serve_ovh is None:
        if base_serve_ovh is not None:
            failures.append("serving_trace_overhead_ns: missing from current run")
        else:
            notes.append(
                "serving_trace_overhead_ns: not present (pre-ISSUE-10 run)")
    elif serve_ovh >= SERVING_TRACE_OVERHEAD_CEILING_NS:
        line = "serving_trace_overhead_ns: {:.0f} >= ceiling {:.0f}".format(
            serve_ovh, SERVING_TRACE_OVERHEAD_CEILING_NS)
        if base_serve_ovh is None:
            warnings.append(line + " (informational: baseline lacks the metric)")
        else:
            failures.append(line)
    else:
        notes.append("serving_trace_overhead_ns: {:.0f} (ceiling {:.0f})".format(
            serve_ovh, SERVING_TRACE_OVERHEAD_CEILING_NS))

    # Mutation-plane floor (ISSUE 7). Informational on the first run — a
    # baseline that predates the metric can't vouch for the host — and a hard
    # absolute gate once any baseline has carried it.
    mut = _num(cm.get("mutation_speedup_vs_recompute"))
    base_mut = _num(bm.get("mutation_speedup_vs_recompute"))
    if mut is None:
        if base_mut is not None:
            failures.append(
                "mutation_speedup_vs_recompute: missing from current run")
        else:
            notes.append(
                "mutation_speedup_vs_recompute: not present (pre-ISSUE-7 run)")
    elif mut < MUTATION_SPEEDUP_FLOOR:
        line = "mutation_speedup_vs_recompute: {:.2f} < floor {:.1f}".format(
            mut, MUTATION_SPEEDUP_FLOOR)
        if base_mut is None:
            warnings.append(line + " (informational: baseline lacks the metric)")
        else:
            failures.append(line)
    else:
        notes.append("mutation_speedup_vs_recompute: {:.2f} (floor {:.1f})".format(
            mut, MUTATION_SPEEDUP_FLOOR))

    # Stale-sync frontier (ISSUE 8): same informational-until-carried
    # contract as the mutation floor.
    stale = _num(cm.get("stalesync_vs_best_pure"))
    base_stale = _num(bm.get("stalesync_vs_best_pure"))
    if stale is None:
        if base_stale is not None:
            failures.append("stalesync_vs_best_pure: missing from current run")
        else:
            notes.append(
                "stalesync_vs_best_pure: not present (pre-ISSUE-8 run)")
    elif stale < STALESYNC_SPEEDUP_FLOOR:
        line = "stalesync_vs_best_pure: {:.2f} < floor {:.1f}".format(
            stale, STALESYNC_SPEEDUP_FLOOR)
        if base_stale is None:
            warnings.append(line + " (informational: baseline lacks the metric)")
        else:
            failures.append(line)
    else:
        notes.append("stalesync_vs_best_pure: {:.2f} (floor {:.1f})".format(
            stale, STALESYNC_SPEEDUP_FLOOR))

    # SIMD span floor (ISSUE 9): the vector kernel must beat the per-edge
    # scalar loop by VEC_EDGE_SPEEDUP_FLOOR on every gated shape. Same
    # informational-until-carried contract as the mutation floor — the first
    # run on a host whose baseline predates the metric warns instead of
    # failing (the host may not even have vector units).
    for shape in VEC_GATED_SHAPES:
        name = "vec_edge_speedup_{}".format(shape)
        vec = _num(cm.get(name))
        base_vec = _num(bm.get(name))
        if vec is None:
            if base_vec is not None:
                failures.append("{}: missing from current run".format(name))
            else:
                notes.append("{}: not present (pre-ISSUE-9 run)".format(name))
        elif vec < VEC_EDGE_SPEEDUP_FLOOR:
            line = "{}: {:.2f} < floor {:.1f}".format(
                name, vec, VEC_EDGE_SPEEDUP_FLOOR)
            if base_vec is None:
                warnings.append(line + " (informational: baseline lacks the metric)")
            else:
                failures.append(line)
        else:
            notes.append("{}: {:.2f} (floor {:.1f})".format(
                name, vec, VEC_EDGE_SPEEDUP_FLOOR))
    for shape in VEC_ALL_SHAPES:
        if shape in VEC_GATED_SHAPES:
            continue
        name = "vec_edge_speedup_{}".format(shape)
        vec = _num(cm.get(name))
        if vec is not None:
            notes.append("{} (info): {:.2f}".format(name, vec))

    tracked("fabric_speedup", worse_is="lower")
    tracked("fabric_spsc_allocs_per_M", worse_is="higher", slack=ALLOC_SLACK)
    tracked("fabric_overflow_sends", worse_is="higher", slack=OVERFLOW_SLACK)
    tracked("fabric_p50_latency_us", worse_is="higher")
    tracked("fabric_p99_latency_us", worse_is="higher")
    tracked("sweep_frontier_speedup", worse_is="lower")
    tracked("edge_specialized_speedup", worse_is="lower")
    tracked("combining_flat_allocs_per_M", worse_is="higher", slack=ALLOC_SLACK)

    # Every engine run the baseline saw converge must still converge.
    for key, brec in sorted(base.get("fig9", {}).items()):
        crec = cur.get("fig9", {}).get(key)
        if crec is None:
            notes.append("fig9 {}: not present in current run".format(key))
            continue
        if brec.get("converged") and not crec.get("converged"):
            failures.append("fig9 {}: converged in baseline, diverged now".format(key))

    # Same contract for the mutation cells: a batch that re-converged in the
    # baseline must still re-converge.
    for key, brec in sorted(base.get("mutation", {}).items()):
        crec = cur.get("mutation", {}).get(key)
        if crec is None:
            notes.append("mutation {}: not present in current run".format(key))
            continue
        if brec.get("converged") and not crec.get("converged"):
            failures.append(
                "mutation {}: re-converged in baseline, diverged now".format(key))

    # Informational wall-clock deltas.
    for name in ("fabric_spsc_updates_per_sec", "fabric_mutex_updates_per_sec",
                 "sweep_frontier_rows_per_sec", "sweep_fullscan_rows_per_sec",
                 "edge_vm_edges_per_sec", "edge_specialized_edges_per_sec",
                 "trace_enabled_span_ns", "serving_query_track_ns"):
        b, c = _num(bm.get(name)), _num(cm.get(name))
        if b and c:
            notes.append("{} (info): {} -> {} ({:+.1f}%)".format(
                name, _fmt(b), _fmt(c), 100.0 * (c - b) / b))

    print("baseline {} ({}) vs current {} ({})".format(
        base.get("rev"), args.baseline, cur.get("rev"), args.current))
    for line in warnings:
        print("  warn " + line)
    for line in notes:
        print("  ok   " + line)
    for line in failures:
        print("  FAIL " + line)
    if failures:
        print("bench_compare: {} tracked metric(s) regressed".format(len(failures)))
        return 1
    print("bench_compare: all tracked metrics within tolerance")
    return 0


# --------------------------------------------------------------------------
# show

def show(args):
    doc = _load(args.file, strict=False)
    print("BENCH rev={} quick={}".format(doc.get("rev"), doc.get("quick")))
    for name, value in sorted((doc.get("metrics") or {}).items()):
        print("  {:32s} {}".format(name, _fmt(value)))
    fig9 = doc.get("fig9", {})
    if fig9:
        print("  fig9 runs: {} ({} converged)".format(
            len(fig9), sum(1 for r in fig9.values() if r.get("converged"))))
    mutation = doc.get("mutation", {})
    if mutation:
        print("  mutation cells: {} ({} converged)".format(
            len(mutation),
            sum(1 for r in mutation.values() if r.get("converged"))))
    return 0


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="mode", required=True)

    c = sub.add_parser("collect")
    c.add_argument("--rev", required=True)
    c.add_argument("--quick", default="0")
    c.add_argument("--micro-json", required=True)
    c.add_argument("--fig9-metrics", required=True)
    c.add_argument("--mutation-metrics", default=None)
    c.add_argument("--out", required=True)
    c.set_defaults(func=collect)

    d = sub.add_parser("compare")
    d.add_argument("baseline")
    d.add_argument("current")
    d.set_defaults(func=compare)

    s = sub.add_parser("show")
    s.add_argument("file")
    s.set_defaults(func=show)

    args = p.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
