// Mutation-plane tests (ISSUE 7): MutationBatch validation and copy-on-write
// application, incremental re-convergence vs cold recompute over the fig9
// program set, randomized mutation streams, deletion-heavy adversarial cases,
// frontier on/off parity, the POST /mutate + GET /version HTTP routes, and
// concurrent mutations racing lookups (TSan target).
//
// The correctness bar throughout: after Apply, the resident values must equal
// a cold `PowerLog::Run` on the *same* mutated snapshot — bit-exact for the
// ordered aggregates (min/max propagate identical F' compositions along
// identical paths), within epsilon for the sum family (both sides converge
// the same linear system to the same tolerance from different starts).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datalog/catalog.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/mutation.h"
#include "graph/partition.h"
#include "graph/snapshot.h"
#include "powerlog/powerlog.h"
#include "powerlog/serving.h"
#include "runtime/exposition.h"

namespace powerlog {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Shared helpers.

// A weighted path 0 -> 1 -> ... -> n-1 (unit weights): SSSP from 0 is
// exactly v, an integer-valued unique fixpoint.
Graph ChainGraph(VertexId n) {
  GraphBuilder b;
  b.EnsureVertices(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1, 1.0);
  return std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();
}

// Row-normalises out-edge weights so each source's weights sum to 1 — the
// row-stochastic view the catalog programs with stochastic_weights expect.
Graph RowNormalized(const Graph& g) {
  GraphBuilder b;
  b.EnsureVertices(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    double total = 0.0;
    for (const Edge& e : g.OutEdges(v)) total += e.weight;
    for (const Edge& e : g.OutEdges(v)) {
      b.AddEdge(v, e.dst, total > 0.0 ? e.weight / total : e.weight);
    }
  }
  return std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();
}

// Random test graph sized for fast sync convergence; row-stochastic when the
// program reads weights as probabilities (MaterializeSource adopts the graph
// verbatim, so the normalisation the dataset registry would do is on us).
Graph RandomGraph(const datalog::CatalogEntry& entry, VertexId n, EdgeIndex m,
                  uint64_t seed) {
  Graph g = GenerateErdosRenyi(n, m, seed, /*weighted=*/true,
                               /*max_weight=*/4.0)
                .ValueOrDie();
  return entry.stochastic_weights ? RowNormalized(g) : g;
}

// The nth edge of the graph in CSR order, as a (src, dst) pair.
std::pair<VertexId, VertexId> NthEdge(const Graph& g, size_t nth) {
  size_t i = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      if (i++ == nth) return {v, e.dst};
    }
  }
  ADD_FAILURE() << "graph has fewer than " << nth + 1 << " edges";
  return {0, 0};
}

serving::ServingOptions FastMutationOptions() {
  serving::ServingOptions options;
  options.engine.num_workers = 2;
  options.engine.network.instant = true;
  options.engine.mode = runtime::ExecMode::kSync;
  // Converge the sum family far past the programs' own epsilons so the warm
  // and cold fixpoints agree to ~1e-8 and the comparisons below are sharp.
  options.engine.epsilon_override = 1e-9;
  return options;
}

std::vector<double> ResidentValues(const serving::Materialization& m) {
  const VertexId n = m.graph()->num_vertices();
  std::vector<double> out(n);
  for (VertexId v = 0; v < n; ++v) out[v] = m.Lookup(v).ValueOrDie();
  return out;
}

// Cold recompute on the handle's *current* snapshot with the same engine
// configuration the serving plane used for the incremental path.
std::vector<double> ColdValues(const serving::Materialization& m,
                               const serving::ServingOptions& options) {
  RunOptions run;
  run.engine = options.engine;
  auto out = PowerLog::Run(m.kernel(), *m.graph(), run);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  if (!out.ok()) return {};
  EXPECT_TRUE(out->stats.converged) << "cold recompute did not converge";
  return out->values;
}

void ExpectSameFixpoint(const std::vector<double>& incremental,
                        const std::vector<double>& cold, bool exact,
                        const std::string& tag) {
  ASSERT_EQ(incremental.size(), cold.size()) << tag;
  for (size_t v = 0; v < cold.size(); ++v) {
    if (exact) {
      EXPECT_EQ(incremental[v], cold[v]) << tag << ": vertex " << v;
    } else {
      const double tol = 1e-6 * std::max(1.0, std::abs(cold[v]));
      EXPECT_NEAR(incremental[v], cold[v], tol) << tag << ": vertex " << v;
    }
  }
}

bool IsOrderedAggregate(datalog::AggKind agg) {
  return agg == datalog::AggKind::kMin || agg == datalog::AggKind::kMax;
}

// Minimal blocking HTTP client against 127.0.0.1:port; returns the full
// response (headers + body), or "" on connect failure.
std::string HttpRoundTrip(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t w = ::write(fd, request.data() + off, request.size() - off);
    if (w <= 0) break;
    off += static_cast<size_t>(w);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  return HttpRoundTrip(port, "GET " + path + " HTTP/1.1\r\n\r\n");
}

std::string HttpPost(int port, const std::string& path,
                     const std::string& body) {
  return HttpRoundTrip(port, "POST " + path + " HTTP/1.1\r\nContent-Length: " +
                                 std::to_string(body.size()) + "\r\n\r\n" +
                                 body);
}

std::string SsspSource() {
  auto entry = datalog::GetCatalogEntry("sssp");
  EXPECT_TRUE(entry.ok());
  return entry->source;
}

// ---------------------------------------------------------------------------
// MutationBatch: validation and copy-on-write application.

TEST(MutationBatch, ValidateRejectsBadOps) {
  const Graph g = ChainGraph(4);

  MutationBatch empty;
  EXPECT_TRUE(empty.Validate(g).ok());

  MutationBatch out_of_range;
  out_of_range.InsertEdge(0, 99);
  EXPECT_FALSE(out_of_range.Validate(g).ok());

  MutationBatch bad_src;
  bad_src.DeleteEdge(9, 0);
  EXPECT_FALSE(bad_src.Validate(g).ok());

  MutationBatch non_finite;
  non_finite.InsertEdge(0, 1, kInf);
  EXPECT_FALSE(non_finite.Validate(g).ok());

  MutationBatch nan_reweight;
  nan_reweight.ReweightEdge(0, 1, std::nan(""));
  EXPECT_FALSE(nan_reweight.Validate(g).ok());
}

TEST(MutationBatch, ApplyIsCopyOnWrite) {
  const Graph base = ChainGraph(4);  // edges (0,1) (1,2) (2,3), weight 1

  MutationBatch batch;
  batch.InsertEdge(0, 2, 5.0);
  batch.DeleteEdge(1, 2);
  batch.ReweightEdge(2, 3, 7.5);
  batch.DeleteEdge(3, 0);  // miss: resolves to applied == false
  auto result = ApplyMutationBatch(base, batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The base snapshot is untouched.
  EXPECT_EQ(base.OutDegree(0), 1u);
  EXPECT_EQ(base.OutDegree(1), 1u);
  EXPECT_EQ(base.OutEdges(2).begin()->weight, 1.0);

  // The patched CSR reflects the batch.
  const Graph& patched = result->graph;
  EXPECT_EQ(patched.num_vertices(), base.num_vertices());
  EXPECT_EQ(patched.OutDegree(0), 2u);
  EXPECT_EQ(patched.OutDegree(1), 0u);
  ASSERT_EQ(patched.OutDegree(2), 1u);
  EXPECT_EQ(patched.OutEdges(2).begin()->dst, 3u);
  EXPECT_EQ(patched.OutEdges(2).begin()->weight, 7.5);

  EXPECT_EQ(result->edges_added, 1);
  EXPECT_EQ(result->edges_removed, 1);
  EXPECT_EQ(result->edges_reweighted, 1);
  EXPECT_TRUE(result->changed());
  ASSERT_EQ(result->ops.size(), 4u);
  EXPECT_TRUE(result->ops[0].applied);
  EXPECT_TRUE(result->ops[1].applied);
  EXPECT_TRUE(result->ops[2].applied);
  EXPECT_FALSE(result->ops[3].applied);
}

TEST(MutationBatch, IntraBatchOpsSeeEarlierEffects) {
  const Graph base = ChainGraph(3);  // (0,1) (1,2)

  // Insert a parallel (1,2) edge, then delete (1,2): the delete must remove
  // both the original and the just-inserted edge.
  MutationBatch batch;
  batch.InsertEdge(1, 2, 9.0);
  batch.DeleteEdge(1, 2);
  auto result = ApplyMutationBatch(base, batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->graph.OutDegree(1), 0u);
}

TEST(MutationBatch, NoopBatchLeavesGraphIdentical) {
  const Graph base = ChainGraph(4);

  MutationBatch batch;
  batch.DeleteEdge(0, 3);        // no such edge
  batch.ReweightEdge(0, 1, 1.0);  // same weight
  auto result = ApplyMutationBatch(base, batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->changed());
  EXPECT_FALSE(result->ops[0].applied);
  EXPECT_FALSE(result->ops[1].applied);
  EXPECT_EQ(result->graph.num_edges(), base.num_edges());
}

TEST(MutationBatch, RouteByShardGroupsBySourceOwner) {
  const Graph g = ChainGraph(8);
  const Partitioner partition(Partitioner::Kind::kHash, g.num_vertices(), 3);

  MutationBatch batch;
  batch.InsertEdge(0, 1);
  batch.DeleteEdge(5, 6);
  batch.ReweightEdge(2, 3, 4.0);
  const auto routed = batch.RouteByShard(partition);
  ASSERT_EQ(routed.size(), 3u);
  size_t total = 0;
  for (uint32_t w = 0; w < 3; ++w) {
    for (const size_t idx : routed[w]) {
      ASSERT_LT(idx, batch.size());
      EXPECT_EQ(partition.WorkerOf(batch.ops()[idx].src), w);
      ++total;
    }
  }
  EXPECT_EQ(total, batch.size());
}

// ---------------------------------------------------------------------------
// Tentpole acceptance: incremental re-convergence == cold recompute on every
// fig9 program, through the full Materialization::Apply stack.

TEST(ReconvergeFig9, IncrementalMatchesColdRecompute) {
  const std::vector<std::string> programs = {"cc",         "sssp", "pagerank",
                                             "adsorption", "katz", "bp"};
  for (const std::string& name : programs) {
    SCOPED_TRACE(name);
    auto entry = datalog::GetCatalogEntry(name);
    ASSERT_TRUE(entry.ok()) << entry.status().ToString();

    const auto options = FastMutationOptions();
    serving::ServingCatalog catalog(options);
    auto made = catalog.MaterializeSource(name, "er", entry->source,
                                          RandomGraph(*entry, 120, 600, 7));
    ASSERT_TRUE(made.ok()) << made.status().ToString();
    auto handle = *made;
    EXPECT_EQ(handle->Version(), 1u);

    // Mixed batch: two inserts, one delete of an existing edge, one
    // reweight. Insert weights stay small for the row-stochastic programs so
    // the contraction that makes them converge survives the mutation.
    const double w = entry->stochastic_weights ? 0.05 : 1.5;
    const auto del = NthEdge(*handle->graph(), 0);
    const auto rew = NthEdge(*handle->graph(), handle->graph()->num_edges() / 2);
    MutationBatch batch;
    batch.InsertEdge(3, 97, w);
    batch.InsertEdge(55, 12, w);
    batch.DeleteEdge(del.first, del.second);
    batch.ReweightEdge(rew.first, rew.second, w * 0.9);

    auto stats = handle->Apply(batch);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->version, 2u);
    EXPECT_EQ(handle->Version(), 2u);
    EXPECT_NE(stats->path, "noop");
    EXPECT_GE(stats->edges_added, 2);
    EXPECT_GE(stats->edges_removed, 1);

    ExpectSameFixpoint(ResidentValues(*handle), ColdValues(*handle, options),
                       IsOrderedAggregate(entry->aggregate), name);
  }
}

// ---------------------------------------------------------------------------
// Randomized mutation streams: per-batch incremental == cold over four
// programs and two datasets each.

TEST(ReconvergeStreams, RandomizedMutationStreams) {
  const std::vector<std::string> programs = {"sssp", "pagerank", "cc",
                                             "viterbi"};
  const std::vector<uint64_t> seeds = {11, 23};
  const VertexId n = 80;

  for (const std::string& name : programs) {
    auto entry = datalog::GetCatalogEntry(name);
    ASSERT_TRUE(entry.ok());
    const bool exact = IsOrderedAggregate(entry->aggregate);

    for (const uint64_t seed : seeds) {
      SCOPED_TRACE(name + " seed " + std::to_string(seed));
      const auto options = FastMutationOptions();
      serving::ServingCatalog catalog(options);
      auto made = catalog.MaterializeSource(
          name, "er" + std::to_string(seed), entry->source,
          RandomGraph(*entry, n, 400, seed));
      ASSERT_TRUE(made.ok()) << made.status().ToString();
      auto handle = *made;

      std::mt19937 rng(static_cast<uint32_t>(seed * 7919 + name.size()));
      // Viterbi reads weights as probabilities: keep every weight in (0,1)
      // so max-product stays contractive. The others take generic weights.
      std::uniform_real_distribution<double> prob(0.1, 0.9);
      std::uniform_real_distribution<double> generic(0.5, 3.5);
      auto random_weight = [&] {
        return entry->stochastic_weights ? prob(rng) : generic(rng);
      };

      for (int round = 0; round < 5; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        auto cur = handle->graph();
        std::vector<std::pair<VertexId, VertexId>> edges;
        for (VertexId v = 0; v < cur->num_vertices(); ++v) {
          for (const Edge& e : cur->OutEdges(v)) edges.push_back({v, e.dst});
        }

        MutationBatch batch;
        for (int op = 0; op < 6; ++op) {
          const uint32_t pick = rng() % 10;
          if (pick < 4 || edges.empty()) {
            batch.InsertEdge(rng() % n, rng() % n, random_weight());
          } else if (pick < 7) {
            const auto [s, t] = edges[rng() % edges.size()];
            batch.DeleteEdge(s, t);
          } else {
            const auto [s, t] = edges[rng() % edges.size()];
            batch.ReweightEdge(s, t, random_weight());
          }
        }

        const uint64_t before = handle->Version();
        auto stats = handle->Apply(batch);
        ASSERT_TRUE(stats.ok()) << stats.status().ToString();
        EXPECT_EQ(handle->Version(),
                  stats->path == "noop" ? before : before + 1);
        ExpectSameFixpoint(ResidentValues(*handle),
                           ColdValues(*handle, options), exact, name);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deletion-heavy adversarial cases: retracting load-bearing edges must run
// the scoped re-derivation sweep and still land on the cold fixpoint.

TEST(ReconvergeAdversarial, BridgeDeletionRederivesSuffix) {
  const auto options = FastMutationOptions();
  serving::ServingCatalog catalog(options);
  auto made =
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(64));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto handle = *made;

  // Severing 10 -> 11 strands every vertex past the cut: their converged
  // distances lose support and must be re-derived back to +inf.
  MutationBatch cut;
  cut.DeleteEdge(10, 11);
  auto stats = handle->Apply(cut);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->path, "rederive");
  EXPECT_GE(stats->affected_vertices, 53);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(handle->Lookup(v).ValueOrDie(),
              v <= 10 ? static_cast<double>(v) : kInf)
        << "vertex " << v;
  }
  ExpectSameFixpoint(ResidentValues(*handle), ColdValues(*handle, options),
                     /*exact=*/true, "sssp after cut");

  // Re-inserting the bridge is a pure gain: the delta path must restore the
  // original distances without a sweep.
  MutationBatch heal;
  heal.InsertEdge(10, 11, 1.0);
  stats = handle->Apply(heal);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->path, "delta");
  EXPECT_EQ(stats->version, 3u);
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(handle->Lookup(v).ValueOrDie(), static_cast<double>(v));
  }
}

TEST(ReconvergeAdversarial, ClusterBridgeDeletionSplitsLabels) {
  // Two 4-cliques joined by a single directed bridge 3 -> 4. With the bridge,
  // CC labels everything 0; cutting it must re-derive the second cluster's
  // labels up to 4 — exactly what a cold run on the cut graph computes.
  GraphBuilder b;
  b.EnsureVertices(8);
  for (VertexId lo : {VertexId{0}, VertexId{4}}) {
    for (VertexId u = lo; u < lo + 4; ++u) {
      for (VertexId v = lo; v < lo + 4; ++v) {
        if (u != v) b.AddEdge(u, v, 1.0);
      }
    }
  }
  b.AddEdge(3, 4, 1.0);
  Graph g = std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();

  auto cc = datalog::GetCatalogEntry("cc");
  ASSERT_TRUE(cc.ok());
  const auto options = FastMutationOptions();
  serving::ServingCatalog catalog(options);
  auto made = catalog.MaterializeSource("cc", "bridged", cc->source, g);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto handle = *made;
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(handle->Lookup(v).ValueOrDie(), 0.0);
  }

  MutationBatch cut;
  cut.DeleteEdge(3, 4);
  auto stats = handle->Apply(cut);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->path, "rederive");
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(handle->Lookup(v).ValueOrDie(), v < 4 ? 0.0 : 4.0)
        << "vertex " << v;
  }
  ExpectSameFixpoint(ResidentValues(*handle), ColdValues(*handle, options),
                     /*exact=*/true, "cc after cut");
}

// ---------------------------------------------------------------------------
// Recompute fallback: a condition-checked kernel the planner cannot retract
// (min over an F' that reads degrees — any degree shift invalidates every
// derivation through the shifted vertex) must pause, cold-absorb, and match.

TEST(ReconvergeFallback, DegreeCoupledMinRecomputes) {
  const std::string source = R"(
@name mindeg.
degree(X,count[Y]) :- edge(X,Y).
m(X,v) :- X = 0, v = 0.
m(Y,min[v1]) :- m(X,v), edge(X,Y), degree(X,d), v1 = v + d.
)";
  const auto options = FastMutationOptions();
  serving::ServingCatalog catalog(options);
  auto made = catalog.MaterializeSource("mindeg", "er", source,
                                        GenerateErdosRenyi(60, 240, 3)
                                            .ValueOrDie());
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto handle = *made;

  // The insert changes its source's out-degree, so every min-derivation
  // through that vertex changes cost: no incremental seed is sound.
  MutationBatch batch;
  batch.InsertEdge(0, 17, 1.0);
  auto stats = handle->Apply(batch);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->path, "recompute");
  EXPECT_EQ(stats->version, 2u);
  ExpectSameFixpoint(ResidentValues(*handle), ColdValues(*handle, options),
                     /*exact=*/true, "mindeg");
}

// ---------------------------------------------------------------------------
// Frontier on/off parity: the frontier only skips identity-delta rows, so
// the re-converged fixpoint must be bit-identical with it disabled.

TEST(ReconvergeParity, FrontierOnOffBitIdentical) {
  auto entry = datalog::GetCatalogEntry("sssp");
  ASSERT_TRUE(entry.ok());
  const Graph g = RandomGraph(*entry, 120, 600, 13);

  auto run_stream = [&](bool frontier) {
    auto options = FastMutationOptions();
    options.engine.frontier = frontier;
    serving::ServingCatalog catalog(options);
    auto made = catalog.MaterializeSource("sssp", "er", entry->source, g);
    EXPECT_TRUE(made.ok()) << made.status().ToString();
    auto handle = *made;

    MutationBatch tighten;
    const auto rew = NthEdge(*handle->graph(), 5);
    tighten.ReweightEdge(rew.first, rew.second, 0.1);
    tighten.InsertEdge(2, 71, 0.5);
    EXPECT_TRUE(handle->Apply(tighten).ok());

    MutationBatch loosen;
    const auto del = NthEdge(*handle->graph(), 0);
    loosen.DeleteEdge(del.first, del.second);
    EXPECT_TRUE(handle->Apply(loosen).ok());
    return ResidentValues(*handle);
  };

  const auto with_frontier = run_stream(true);
  const auto without_frontier = run_stream(false);
  ExpectSameFixpoint(with_frontier, without_frontier, /*exact=*/true,
                     "frontier parity");
}

// ---------------------------------------------------------------------------
// Handle plumbing: version bumps invalidate the run cache.

TEST(ServingMutation, RunCacheInvalidatedOnVersionBump) {
  const auto options = FastMutationOptions();
  serving::ServingCatalog catalog(options);
  auto made =
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(16));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto handle = *made;

  auto cold = handle->Run();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->cached);
  auto warm = handle->Run();
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cached);
  EXPECT_EQ(warm->values[15], 15.0);

  MutationBatch batch;
  batch.ReweightEdge(0, 1, 3.0);
  ASSERT_TRUE(handle->Apply(batch).ok());

  // The stale fixpoint must not serve: same key, fresh run, new values.
  auto fresh = handle->Run();
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(fresh->cached);
  EXPECT_EQ(fresh->values[15], 17.0);
}

TEST(ServingMutation, MutationCountersRideTheMetricsPlane) {
  const auto options = FastMutationOptions();
  serving::ServingCatalog catalog(options);
  auto made =
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(8));
  ASSERT_TRUE(made.ok());
  auto handle = *made;
  ASSERT_EQ(catalog.graph_builds(), 1);

  MutationBatch tighten;  // 2.0 -> delta path is impossible; 0.5 tightens
  tighten.ReweightEdge(0, 1, 0.5);
  auto stats = handle->Apply(tighten);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(catalog.graph_builds(), 2);

  int64_t applied = -1, delta = -1, rederive = -1, fallback = -1;
  for (const auto& [name, value] : catalog.Metrics().counters) {
    if (name == "serving.mutations.applied") applied = value;
    if (name == "serving.mutations.delta_path") delta = value;
    if (name == "serving.mutations.rederive_path") rederive = value;
    if (name == "serving.mutations.fallback_path") fallback = value;
  }
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(delta + rederive + fallback, 1);
}

// ---------------------------------------------------------------------------
// HTTP routes: POST /mutate re-converges and bumps /version; malformed and
// misrouted requests map to 4xx.

TEST(ServingMutationHttp, MutateAndVersionRoutes) {
  const auto options = FastMutationOptions();
  serving::ServingCatalog catalog(options);
  ASSERT_TRUE(
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(8))
          .ok());

  ExpositionServer server;
  server.SetHandler(serving::MakeServingHandler(&catalog));
  server.SetSources([&catalog] { return catalog.Metrics(); },
                    [] { return std::string(); });
  auto port = server.Start(0, /*handler_threads=*/2);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  const std::string pair = "?program=sssp&dataset=chain";
  EXPECT_NE(HttpGet(*port, "/version" + pair).find("\"version\":1"),
            std::string::npos);

  const std::string mutate_body =
      R"({"ops":[{"op":"reweight","src":0,"dst":1,"weight":3.0}]})";
  const std::string mutated = HttpPost(*port, "/mutate" + pair, mutate_body);
  EXPECT_NE(mutated.find("200 OK"), std::string::npos) << mutated;
  EXPECT_NE(mutated.find("\"version\":2"), std::string::npos) << mutated;
  EXPECT_NE(mutated.find("\"converged\":true"), std::string::npos) << mutated;
  EXPECT_NE(mutated.find("\"path\":\""), std::string::npos) << mutated;

  // The re-converged state serves immediately: d(7) = 3 + 6.
  EXPECT_NE(HttpGet(*port, "/lookup" + pair + "&v=7").find("\"value\":9"),
            std::string::npos);
  EXPECT_NE(HttpGet(*port, "/version" + pair).find("\"version\":2"),
            std::string::npos);

  const std::string metrics = HttpGet(*port, "/metrics");
  EXPECT_NE(metrics.find("powerlog_serving_mutations_applied 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("powerlog_serving_graph_builds 2"),
            std::string::npos);

  // Error mapping: GET on /mutate, malformed JSON, unknown pair, and POST on
  // a read-only route.
  EXPECT_NE(HttpGet(*port, "/mutate" + pair).find("400"), std::string::npos);
  EXPECT_NE(HttpPost(*port, "/mutate" + pair, "{not json").find("400"),
            std::string::npos);
  EXPECT_NE(
      HttpPost(*port, "/mutate?program=nope&dataset=chain", mutate_body)
          .find("404"),
      std::string::npos);
  EXPECT_NE(HttpPost(*port, "/lookup" + pair + "&v=1", "").find("404"),
            std::string::npos);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Concurrency (TSan target): mutations racing lookups must only ever expose
// certified fixpoints — a reader sees version k's values or version k+1's,
// never a mid-re-convergence mix.

TEST(MutationConcurrency, ConcurrentMutationsAndLookups) {
  const auto options = FastMutationOptions();
  serving::ServingCatalog catalog(options);
  auto made =
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(32));
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  auto handle = *made;

  // Every version has edge (0,1) at weight 1.0 or 2.0, so d(31) is exactly
  // 31 or 32 in every certified fixpoint — anything else is a torn read.
  std::atomic<bool> done{false};
  std::atomic<int64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const double d = handle->Lookup(31).ValueOrDie();
        EXPECT_TRUE(d == 31.0 || d == 32.0) << "torn value " << d;
        const uint64_t version = handle->Version();
        EXPECT_GE(version, last_version) << "version went backwards";
        last_version = version;
        auto top = handle->TopK(4, /*ascending=*/true);
        EXPECT_TRUE(top.ok());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 0; i < 8; ++i) {
    MutationBatch batch;
    batch.ReweightEdge(0, 1, i % 2 == 0 ? 2.0 : 1.0);
    auto stats = handle->Apply(batch);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->version, static_cast<uint64_t>(i) + 2);
  }
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(handle->Version(), 9u);
  EXPECT_EQ(handle->Lookup(31).ValueOrDie(), 31.0);  // last reweight was 1.0
  EXPECT_GT(reads.load(), 0);
}

}  // namespace
}  // namespace powerlog
