#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>

#include "common/random.h"
#include "core/mono_table.h"

namespace powerlog {
namespace {

TEST(MonoTable, CreateInitialisesToIdentity) {
  auto table = MonoTable::Create(AggKind::kMin, 5);
  ASSERT_TRUE(table.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(std::isinf(table->accumulation(i)));
    EXPECT_TRUE(std::isinf(table->intermediate(i)));
  }
  EXPECT_EQ(table->num_rows(), 5u);
  EXPECT_EQ(table->agg_kind(), AggKind::kMin);
}

TEST(MonoTable, MeanIsRejected) {
  EXPECT_TRUE(MonoTable::Create(AggKind::kMean, 3).status().IsNotSupported());
}

TEST(MonoTable, InitializeValidatesSizes) {
  auto table = MonoTable::Create(AggKind::kSum, 3);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->Initialize({1, 2}, {0, 0, 0}).ok());
  EXPECT_TRUE(table->Initialize({1, 2, 3}, {0.5, 0, 0}).ok());
  EXPECT_DOUBLE_EQ(table->accumulation(0), 1.0);
  EXPECT_DOUBLE_EQ(table->intermediate(0), 0.5);
}

TEST(MonoTable, ThreeStepProtocolSum) {
  auto table = MonoTable::Create(AggKind::kSum, 2);
  ASSERT_TRUE(table.ok());
  table->CombineDelta(0, 1.5);
  table->CombineDelta(0, 2.5);
  EXPECT_DOUBLE_EQ(table->intermediate(0), 4.0);
  // Step 1+2: harvest folds into accumulation and clears the intermediate.
  const double tmp = table->HarvestDelta(0);
  EXPECT_DOUBLE_EQ(tmp, 4.0);
  EXPECT_DOUBLE_EQ(table->accumulation(0), 4.0);
  EXPECT_DOUBLE_EQ(table->intermediate(0), 0.0);
  // Harvesting again is a no-op (no double counting).
  EXPECT_DOUBLE_EQ(table->HarvestDelta(0), 0.0);
  EXPECT_DOUBLE_EQ(table->accumulation(0), 4.0);
}

TEST(MonoTable, ThreeStepProtocolMin) {
  auto table = MonoTable::Create(AggKind::kMin, 1);
  ASSERT_TRUE(table.ok());
  table->CombineDelta(0, 5.0);
  table->CombineDelta(0, 3.0);
  table->CombineDelta(0, 7.0);
  EXPECT_DOUBLE_EQ(table->HarvestDelta(0), 3.0);
  EXPECT_DOUBLE_EQ(table->accumulation(0), 3.0);
  // A worse delta later leaves the accumulation unchanged after harvest.
  table->CombineDelta(0, 4.0);
  EXPECT_TRUE(table->HasUsefulDelta(0) == false);
  table->HarvestDelta(0);
  EXPECT_DOUBLE_EQ(table->accumulation(0), 3.0);
}

TEST(MonoTable, HasUsefulDelta) {
  auto table = MonoTable::Create(AggKind::kMin, 1);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->HasUsefulDelta(0));
  table->CombineDelta(0, 9.0);
  EXPECT_TRUE(table->HasUsefulDelta(0));
  table->HarvestDelta(0);
  table->CombineDelta(0, 12.0);  // worse than accumulated 9
  EXPECT_FALSE(table->HasUsefulDelta(0));
}

TEST(MonoTable, PendingDeltaMassSum) {
  auto table = MonoTable::Create(AggKind::kSum, 3);
  ASSERT_TRUE(table.ok());
  table->CombineDelta(0, 0.5);
  table->CombineDelta(1, -0.25);
  EXPECT_DOUBLE_EQ(table->PendingDeltaMass(), 0.75);
  table->HarvestDelta(0);
  table->HarvestDelta(1);
  EXPECT_DOUBLE_EQ(table->PendingDeltaMass(), 0.0);
}

TEST(MonoTable, PendingDeltaMassMinCountsImprovements) {
  auto table = MonoTable::Create(AggKind::kMin, 3);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->Initialize({5.0, 5.0, 5.0}, {/*deltas*/
                                std::numeric_limits<double>::infinity(),
                                std::numeric_limits<double>::infinity(),
                                std::numeric_limits<double>::infinity()})
                  .ok());
  table->CombineDelta(0, 3.0);  // improving
  table->CombineDelta(1, 9.0);  // stale
  EXPECT_DOUBLE_EQ(table->PendingDeltaMass(), 1.0);
}

TEST(MonoTable, SnapshotAndRestoreRoundTrip) {
  auto table = MonoTable::Create(AggKind::kMax, 4);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->Initialize({1, 2, 3, 4}, {0, -1, 5, 2}).ok());
  auto x = table->SnapshotAccumulation();
  auto d = table->SnapshotIntermediate();
  auto other = MonoTable::Create(AggKind::kMax, 4);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(other->Restore(x, d).ok());
  EXPECT_EQ(other->SnapshotAccumulation(), x);
  EXPECT_EQ(other->SnapshotIntermediate(), d);
}

TEST(MonoTable, ConcurrentHarvestNeverDoubleCounts) {
  // Invariant (Fig. 7): with concurrent producers adding K deltas of value 1
  // and concurrent harvesters, the final accumulation equals exactly K.
  auto table = MonoTable::Create(AggKind::kSum, 1);
  ASSERT_TRUE(table.ok());
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) table->CombineDelta(0, 1.0);
    });
  }
  std::vector<std::thread> harvesters;
  for (int h = 0; h < 3; ++h) {
    harvesters.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) table->HarvestDelta(0);
    });
  }
  for (auto& t : threads) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : harvesters) t.join();
  table->HarvestDelta(0);  // fold any remainder
  EXPECT_DOUBLE_EQ(table->accumulation(0),
                   static_cast<double>(kProducers) * kPerProducer);
}

TEST(MonoTable, ConcurrentMinHarvestKeepsMinimum) {
  auto table = MonoTable::Create(AggKind::kMin, 1);
  ASSERT_TRUE(table.ok());
  Rng seed_rng(5);
  std::vector<std::thread> threads;
  std::atomic<bool> done{false};
  double true_min = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> feeds(4);
  for (int t = 0; t < 4; ++t) {
    Rng rng(100 + t);
    for (int i = 0; i < 5000; ++i) {
      feeds[t].push_back(rng.NextDouble(0, 1000));
      true_min = std::min(true_min, feeds[t].back());
    }
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (double v : feeds[t]) table->CombineDelta(0, v);
    });
  }
  std::thread harvester([&] {
    while (!done.load()) table->HarvestDelta(0);
  });
  for (auto& t : threads) t.join();
  done.store(true);
  harvester.join();
  table->HarvestDelta(0);
  EXPECT_DOUBLE_EQ(table->accumulation(0), true_min);
}

}  // namespace
}  // namespace powerlog
