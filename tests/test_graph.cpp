#include <gtest/gtest.h>

#include <filesystem>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/partition.h"

namespace powerlog {
namespace {

TEST(GraphBuilder, BuildsCsr) {
  GraphBuilder b;
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(0, 2, 3.0);
  b.AddEdge(2, 1, 1.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_EQ(g->OutDegree(0), 2u);
  EXPECT_EQ(g->OutDegree(1), 0u);
  EXPECT_EQ(g->OutDegree(2), 1u);
  EXPECT_EQ(g->OutBegin(0)[0].dst, 1u);
  EXPECT_DOUBLE_EQ(g->OutBegin(0)[0].weight, 2.0);
}

TEST(GraphBuilder, EdgesSortedByDst) {
  GraphBuilder b;
  b.AddEdge(0, 5);
  b.AddEdge(0, 2);
  b.AddEdge(0, 9);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->OutBegin(0)[0].dst, 2u);
  EXPECT_EQ(g->OutBegin(0)[1].dst, 5u);
  EXPECT_EQ(g->OutBegin(0)[2].dst, 9u);
}

TEST(GraphBuilder, DedupKeepsMinWeight) {
  GraphBuilder b;
  b.AddEdge(0, 1, 5.0);
  b.AddEdge(0, 1, 2.0);
  b.AddEdge(0, 1, 9.0);
  GraphBuilder::Options opts;
  opts.dedup = true;
  auto g = std::move(b).Build(opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g->OutBegin(0)[0].weight, 2.0);
}

TEST(GraphBuilder, RemoveSelfLoops) {
  GraphBuilder b;
  b.AddEdge(1, 1);
  b.AddEdge(1, 2);
  GraphBuilder::Options opts;
  opts.remove_self_loops = true;
  auto g = std::move(b).Build(opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(GraphBuilder, Symmetrize) {
  GraphBuilder b;
  b.AddEdge(0, 1, 4.0);
  GraphBuilder::Options opts;
  opts.symmetrize = true;
  auto g = std::move(b).Build(opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_EQ(g->OutDegree(1), 1u);
  EXPECT_EQ(g->OutBegin(1)[0].dst, 0u);
}

TEST(GraphBuilder, EnsureVerticesAddsIsolated) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.EnsureVertices(10);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 10u);
  EXPECT_EQ(g->OutDegree(9), 0u);
}

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

TEST(Graph, ReverseInvertsEdges) {
  GraphBuilder b;
  b.AddEdge(0, 1, 2.5);
  b.AddEdge(0, 2, 1.5);
  b.AddEdge(1, 2, 3.0);
  auto g = std::move(b).Build();
  ASSERT_TRUE(g.ok());
  const Graph& r = g->Reverse();
  EXPECT_EQ(r.num_edges(), 3u);
  EXPECT_EQ(r.OutDegree(2), 2u);
  EXPECT_EQ(r.OutDegree(0), 0u);
  // Weight preserved through transposition.
  bool found = false;
  for (const Edge& e : r.OutEdges(1)) {
    if (e.dst == 0) {
      EXPECT_DOUBLE_EQ(e.weight, 2.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Graph, ReverseIsCached) {
  auto g = GeneratePath(10);
  const Graph* first = &g.Reverse();
  EXPECT_TRUE(g.HasReverse());
  EXPECT_EQ(first, &g.Reverse());
}

TEST(Graph, DoubleReverseRestoresEdgeCount) {
  auto rmat = GenerateRmat({10, 4.0, 0.57, 0.19, 0.19, 0.05, false, 1, 64, 5});
  ASSERT_TRUE(rmat.ok());
  const Graph& rr = rmat->Reverse().Reverse();
  EXPECT_EQ(rr.num_edges(), rmat->num_edges());
  EXPECT_EQ(rr.num_vertices(), rmat->num_vertices());
}

TEST(Generators, PathShape) {
  auto g = GeneratePath(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(4), 0u);
}

TEST(Generators, CycleShape) {
  auto g = GenerateCycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.OutDegree(v), 1u);
}

TEST(Generators, GridShape) {
  auto g = GenerateGrid(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 2u * 4 * 3);  // 12 right + 12 down
}

TEST(Generators, StarShape) {
  auto g = GenerateStar(8);
  EXPECT_EQ(g.OutDegree(0), 7u);
  EXPECT_EQ(g.MaxOutDegree(), 7u);
}

TEST(Generators, CompleteShape) {
  auto g = GenerateComplete(5);
  EXPECT_EQ(g.num_edges(), 20u);
}

TEST(Generators, RandomTreeIsConnectedDag) {
  auto g = GenerateRandomTree(50, 3);
  EXPECT_EQ(g.num_edges(), 49u);
  // Every vertex except the root has exactly one in-edge.
  const Graph& r = g.Reverse();
  EXPECT_EQ(r.OutDegree(0), 0u);
  for (VertexId v = 1; v < 50; ++v) EXPECT_EQ(r.OutDegree(v), 1u);
}

TEST(Generators, RandomDagIsAcyclicByConstruction) {
  auto g = GenerateRandomDag(30, 2.0, 5);
  ASSERT_TRUE(g.ok());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    for (const Edge& e : g->OutEdges(v)) EXPECT_GT(e.dst, v);
  }
}

TEST(Generators, RmatDeterministicForSeed) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 4;
  p.seed = 99;
  auto a = GenerateRmat(p);
  auto b = GenerateRmat(p);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->num_edges(), b->num_edges());
  EXPECT_EQ(a->offsets(), b->offsets());
}

TEST(Generators, RmatValidatesProbabilities) {
  RmatParams p;
  p.a = 0.9;
  p.b = 0.9;
  p.c = 0.0;
  p.d = 0.0;
  EXPECT_FALSE(GenerateRmat(p).ok());
}

TEST(Generators, RmatIsSkewed) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8;
  p.seed = 4;
  auto g = GenerateRmat(p);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->MaxOutDegree(), 4 * g->AverageDegree());
}

TEST(Generators, ErdosRenyiBasics) {
  auto g = GenerateErdosRenyi(100, 500, 17);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 100u);
  EXPECT_LE(g->num_edges(), 500u);  // dedup may drop a few
  EXPECT_GT(g->num_edges(), 400u);
  EXPECT_FALSE(GenerateErdosRenyi(1, 5, 2).ok());
}

TEST(Partitioner, HashCoversAllWorkersAndIsStable) {
  Partitioner p(Partitioner::Kind::kHash, 1000, 4);
  std::vector<int> counts(4, 0);
  for (VertexId v = 0; v < 1000; ++v) {
    const uint32_t w = p.WorkerOf(v);
    ASSERT_LT(w, 4u);
    ++counts[w];
    EXPECT_EQ(p.WorkerOf(v), w);
  }
  for (int c : counts) EXPECT_GT(c, 150);  // roughly balanced
}

TEST(Partitioner, RangeIsContiguous) {
  Partitioner p(Partitioner::Kind::kRange, 100, 4);
  EXPECT_EQ(p.WorkerOf(0), 0u);
  EXPECT_EQ(p.WorkerOf(99), 3u);
  for (VertexId v = 1; v < 100; ++v) {
    EXPECT_GE(p.WorkerOf(v), p.WorkerOf(v - 1));
  }
}

TEST(Partitioner, OwnedVerticesPartitionTheSpace) {
  Partitioner p(Partitioner::Kind::kHash, 200, 3);
  size_t total = 0;
  for (uint32_t w = 0; w < 3; ++w) {
    auto owned = p.OwnedVertices(w);
    EXPECT_EQ(owned.size(), p.OwnedCount(w));
    total += owned.size();
    for (VertexId v : owned) EXPECT_EQ(p.WorkerOf(v), w);
  }
  EXPECT_EQ(total, 200u);
}

TEST(GraphIo, ParseEdgeListWithCommentsAndWeights) {
  auto g = ParseEdgeList(
      "# comment\n"
      "% another\n"
      "0 1 2.5\n"
      "1 2\n"
      "\n"
      "2 0 1.0\n");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g->OutBegin(0)[0].weight, 2.5);
  EXPECT_DOUBLE_EQ(g->OutBegin(1)[0].weight, 1.0);
}

TEST(GraphIo, ParseErrors) {
  EXPECT_FALSE(ParseEdgeList("0\n").ok());
  EXPECT_FALSE(ParseEdgeList("0 1 2 3\n").ok());
  EXPECT_FALSE(ParseEdgeList("-1 2\n").ok());
  EXPECT_FALSE(ParseEdgeList("a b\n").ok());
}

TEST(GraphIo, SaveLoadRoundTrip) {
  auto g = GenerateGrid(3, /*weighted=*/true, 5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "powerlog_io_test.el").string();
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  std::filesystem::remove(path);
}

TEST(GraphIo, LoadMissingFileFails) {
  EXPECT_TRUE(LoadEdgeList("/nonexistent/powerlog.el").status().IsIOError());
}

}  // namespace
}  // namespace powerlog
