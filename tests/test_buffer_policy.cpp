#include <gtest/gtest.h>

#include "common/timer.h"
#include "runtime/buffer_policy.h"
#include "runtime/message.h"

namespace powerlog::runtime {
namespace {

BufferPolicy::Params ParamsFor(FlushPolicyKind kind) {
  BufferPolicy::Params p;
  p.kind = kind;
  p.beta = 100;
  p.tau_us = 1000000;  // large: size-triggered flushes only
  return p;
}

TEST(BufferPolicy, EagerAlwaysFlushesNonEmpty) {
  BufferPolicy policy(ParamsFor(FlushPolicyKind::kEager));
  EXPECT_FALSE(policy.ShouldFlush(0, NowMicros()));
  EXPECT_TRUE(policy.ShouldFlush(1, NowMicros()));
}

TEST(BufferPolicy, FixedFlushesAtBeta) {
  BufferPolicy policy(ParamsFor(FlushPolicyKind::kFixed));
  const int64_t now = NowMicros();
  EXPECT_FALSE(policy.ShouldFlush(50, now));
  EXPECT_TRUE(policy.ShouldFlush(100, now));
  EXPECT_TRUE(policy.ShouldFlush(150, now));
}

TEST(BufferPolicy, IntervalTriggersFlush) {
  auto params = ParamsFor(FlushPolicyKind::kFixed);
  params.tau_us = 10;
  BufferPolicy policy(params);
  const int64_t later = NowMicros() + 1000;
  EXPECT_TRUE(policy.ShouldFlush(1, later));
}

TEST(BufferPolicy, FixedNeverAdapts) {
  BufferPolicy policy(ParamsFor(FlushPolicyKind::kFixed));
  const double before = policy.beta();
  policy.OnFlush(100000, NowMicros());
  EXPECT_DOUBLE_EQ(policy.beta(), before);
}

TEST(BufferPolicy, AdaptiveGrowsUnderFastAccumulation) {
  auto params = ParamsFor(FlushPolicyKind::kAdaptive);
  params.tau_us = 1000;
  BufferPolicy policy(params);
  // Rate = 10000 updates over ~1ms >> r·β/τ.
  const int64_t start = NowMicros();
  policy.OnFlush(10000, start + 1000);
  EXPECT_GT(policy.beta(), 100.0);
}

TEST(BufferPolicy, AdaptiveShrinksUnderSlowAccumulation) {
  auto params = ParamsFor(FlushPolicyKind::kAdaptive);
  params.tau_us = 1000;
  params.beta = 10000;
  BufferPolicy policy(params);
  const int64_t start = NowMicros();
  policy.OnFlush(10, start + 1000000);  // 10 updates over 1s: very slow
  EXPECT_LT(policy.beta(), 10000.0);
}

TEST(BufferPolicy, AdaptiveStableInsideDeadband) {
  // Rate exactly β/τ: within the r-band, no adjustment (paper's rule fires
  // only outside [β/(rτ), rβ/τ]).
  auto params = ParamsFor(FlushPolicyKind::kAdaptive);
  params.tau_us = 1000;
  params.beta = 100;
  BufferPolicy policy(params);
  const int64_t start = NowMicros();
  policy.OnFlush(100, start + 1000);
  EXPECT_DOUBLE_EQ(policy.beta(), 100.0);
}

TEST(BufferPolicy, BetaClamped) {
  auto params = ParamsFor(FlushPolicyKind::kAdaptive);
  params.tau_us = 1000;
  params.beta_min = 8;
  params.beta_max = 1000;
  BufferPolicy policy(params);
  policy.OnFlush(100000000, NowMicros() + 1);
  EXPECT_LE(policy.beta(), 1000.0);
  BufferPolicy slow(params);
  slow.OnFlush(1, NowMicros() + 100000000);
  EXPECT_GE(slow.beta(), 8.0);
}

TEST(CombiningBuffer, CombinesPerKeyMin) {
  CombiningBuffer buffer(AggKind::kMin);
  buffer.Add(7, 5.0);
  buffer.Add(7, 3.0);
  buffer.Add(7, 9.0);
  buffer.Add(8, 1.0);
  EXPECT_EQ(buffer.size(), 2u);
  auto batch = buffer.Drain();
  EXPECT_TRUE(buffer.empty());
  double v7 = -1;
  for (const Update& u : batch) {
    if (u.key == 7) v7 = u.value;
  }
  EXPECT_DOUBLE_EQ(v7, 3.0);
}

TEST(CombiningBuffer, CombinesPerKeySum) {
  CombiningBuffer buffer(AggKind::kSum);
  buffer.Add(1, 0.5);
  buffer.Add(1, 0.25);
  auto batch = buffer.Drain();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_DOUBLE_EQ(batch[0].value, 0.75);
}

TEST(CombiningBuffer, MaxKeepsLargest) {
  CombiningBuffer buffer(AggKind::kMax);
  buffer.Add(1, 0.5);
  buffer.Add(1, 2.0);
  buffer.Add(1, 1.0);
  auto batch = buffer.Drain();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_DOUBLE_EQ(batch[0].value, 2.0);
}

TEST(SerializeUpdates, RoundTrip) {
  UpdateBatch batch{{1, 0.5}, {42, -3.25}, {7, 1e9}};
  std::vector<uint8_t> buf;
  SerializeUpdates(batch, &buf);
  auto parsed = DeserializeUpdates(buf.data(), buf.size());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[1].key, 42u);
  EXPECT_DOUBLE_EQ((*parsed)[1].value, -3.25);
}

TEST(SerializeUpdates, TruncationDetected) {
  UpdateBatch batch{{1, 0.5}};
  std::vector<uint8_t> buf;
  SerializeUpdates(batch, &buf);
  EXPECT_FALSE(DeserializeUpdates(buf.data(), 4).ok());
  EXPECT_FALSE(DeserializeUpdates(buf.data(), buf.size() - 1).ok());
}

}  // namespace
}  // namespace powerlog::runtime
