// Theorem 1 property tests: MRA evaluation must produce the same result as
// naive evaluation for every catalog program that passes the condition
// check, across graph shapes; semi-naive agrees on monotonic programs.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/mra.h"
#include "eval/naive.h"
#include "eval/semi_naive.h"
#include "test_util.h"

namespace powerlog::eval {
namespace {

using powerlog::testing::MustCompile;
using powerlog::testing::SmallDag;
using powerlog::testing::SmallWeightedGraph;

Graph GraphByName(const std::string& name) {
  if (name == "dag") return SmallDag();
  if (name == "path") return GeneratePath(30, 1.0);
  if (name == "cycle") return GenerateCycle(24, 1.0);
  if (name == "grid") return GenerateGrid(7, /*weighted=*/false);
  if (name == "star") return GenerateStar(40);
  return SmallWeightedGraph();
}

struct EvalCase {
  std::string program;
  std::string graph;
  double tolerance;
};

class MraVsNaiveTest : public ::testing::TestWithParam<EvalCase> {};

TEST_P(MraVsNaiveTest, SameFixpoint) {
  const auto& param = GetParam();
  Kernel k = MustCompile(param.program);
  Graph g = GraphByName(param.graph);
  EvalOptions options;
  options.max_iterations = 2000;
  auto naive = NaiveEvaluate(k, g, options);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  auto mra = MraEvaluate(k, g, options);
  ASSERT_TRUE(mra.ok()) << mra.status().ToString();
  EXPECT_LE(MaxAbsDiff(naive->values, mra->values), param.tolerance)
      << "naive " << naive->Summary() << " vs mra " << mra->Summary();
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, MraVsNaiveTest,
    ::testing::Values(
        EvalCase{"sssp", "rand", 0.0}, EvalCase{"sssp", "grid", 0.0},
        EvalCase{"sssp", "path", 0.0}, EvalCase{"sssp", "dag", 0.0},
        EvalCase{"cc", "rand", 0.0}, EvalCase{"cc", "cycle", 0.0},
        EvalCase{"cc", "star", 0.0}, EvalCase{"pagerank", "rand", 1e-2},
        EvalCase{"pagerank", "grid", 1e-3}, EvalCase{"adsorption", "rand", 1e-2},
        EvalCase{"katz", "dag", 1e-6}, EvalCase{"bp", "rand", 1e-2},
        EvalCase{"paths_dag", "dag", 0.0}, EvalCase{"cost", "dag", 1e-9},
        EvalCase{"viterbi", "dag", 0.0}, EvalCase{"viterbi", "rand", 1e-12},
        EvalCase{"lca", "dag", 0.0}, EvalCase{"apsp", "rand", 0.0},
        EvalCase{"simrank", "rand", 1e-2}),
    [](const ::testing::TestParamInfo<EvalCase>& info) {
      return info.param.program + "_" + info.param.graph;
    });

class SemiNaiveTest : public ::testing::TestWithParam<EvalCase> {};

TEST_P(SemiNaiveTest, AgreesWithNaiveOnMonotonic) {
  const auto& param = GetParam();
  Kernel k = MustCompile(param.program);
  Graph g = GraphByName(param.graph);
  auto naive = NaiveEvaluate(k, g);
  ASSERT_TRUE(naive.ok());
  auto semi = SemiNaiveEvaluate(k, g);
  ASSERT_TRUE(semi.ok()) << semi.status().ToString();
  EXPECT_LE(MaxAbsDiff(naive->values, semi->values), param.tolerance);
  // Semi-naive must do no more edge work than naive on these graphs.
  EXPECT_LE(semi->edge_applications, naive->edge_applications);
}

INSTANTIATE_TEST_SUITE_P(
    Monotonic, SemiNaiveTest,
    ::testing::Values(EvalCase{"sssp", "rand", 0.0}, EvalCase{"sssp", "grid", 0.0},
                      EvalCase{"cc", "rand", 0.0}, EvalCase{"cc", "star", 0.0},
                      EvalCase{"viterbi", "dag", 0.0}),
    [](const ::testing::TestParamInfo<EvalCase>& info) {
      return info.param.program + "_" + info.param.graph;
    });

TEST(SemiNaive, RejectsNonMonotonic) {
  Kernel k = MustCompile("pagerank");
  auto g = GeneratePath(5);
  EXPECT_TRUE(SemiNaiveEvaluate(k, g).status().IsConditionViolated());
}

TEST(Mra, RejectsMean) {
  Kernel k = MustCompile("commnet");
  auto g = GeneratePath(5);
  EXPECT_TRUE(MraEvaluate(k, g).status().IsConditionViolated());
}

TEST(Naive, HandlesMeanPrograms) {
  Kernel k = MustCompile("commnet");
  auto g = GeneratePath(4);  // 0 -> 1 -> 2 -> 3
  auto r = NaiveEvaluate(k, g);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // mean over a single in-neighbor halves the value each step; with
  // @maxiters 20 everything attenuates from the all-ones init.
  EXPECT_EQ(r->values.size(), 4u);
}

TEST(Naive, SsspExactDistancesOnPath) {
  Kernel k = MustCompile("sssp");
  auto g = GeneratePath(6, 2.0);
  auto r = NaiveEvaluate(k, g);
  ASSERT_TRUE(r.ok());
  for (VertexId v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(r->values[v], 2.0 * v);
  EXPECT_TRUE(r->converged);
}

TEST(Naive, SsspUnreachableStaysInfinite) {
  GraphBuilder b;
  b.AddEdge(0, 1, 1.0);
  b.EnsureVertices(3);  // vertex 2 unreachable
  auto g = std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();
  Kernel k = MustCompile("sssp");
  auto r = NaiveEvaluate(k, g);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isinf(r->values[2]));
}

TEST(Naive, CcLabelsEqualMinReachableAncestor) {
  // Star: hub 0 propagates its id to every spoke.
  auto g = GenerateStar(10);
  Kernel k = MustCompile("cc");
  auto r = NaiveEvaluate(k, g);
  ASSERT_TRUE(r.ok());
  for (VertexId v = 0; v < 10; ++v) EXPECT_DOUBLE_EQ(r->values[v], 0.0);
}

TEST(Naive, PageRankMassIsConserved) {
  // On a cycle every vertex has in-degree 1 = out-degree 1, so the fixpoint
  // is exactly 1 per vertex (0.15 / (1 - 0.85)).
  auto g = GenerateCycle(10);
  Kernel k = MustCompile("pagerank");
  EvalOptions options;
  options.epsilon_override = 1e-12;
  auto r = NaiveEvaluate(k, g, options);
  ASSERT_TRUE(r.ok());
  for (VertexId v = 0; v < 10; ++v) EXPECT_NEAR(r->values[v], 1.0, 1e-9);
}

TEST(Mra, PageRankMatchesClosedFormOnCycle) {
  auto g = GenerateCycle(8);
  Kernel k = MustCompile("pagerank");
  EvalOptions options;
  options.epsilon_override = 1e-12;
  auto r = MraEvaluate(k, g, options);
  ASSERT_TRUE(r.ok());
  for (VertexId v = 0; v < 8; ++v) EXPECT_NEAR(r->values[v], 1.0, 1e-9);
}

TEST(Mra, PathsDagCountsBinomials) {
  // Diamond ladder: 0->1, 0->2, 1->3, 2->3: 2 paths into 3.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  auto g = std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();
  Kernel k = MustCompile("paths_dag");
  auto r = MraEvaluate(k, g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->values[0], 1.0);
  EXPECT_DOUBLE_EQ(r->values[1], 1.0);
  EXPECT_DOUBLE_EQ(r->values[2], 1.0);
  EXPECT_DOUBLE_EQ(r->values[3], 2.0);
}

TEST(Mra, DoesLessWorkThanNaiveOnSssp) {
  auto g = SmallWeightedGraph();
  Kernel k = MustCompile("sssp");
  auto naive = NaiveEvaluate(k, g);
  auto mra = MraEvaluate(k, g);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(mra.ok());
  EXPECT_LT(mra->edge_applications, naive->edge_applications);
}

TEST(Eval, IterationCapStopsDivergentProgram) {
  // A Katz-style program whose damping exceeds 1/λmax diverges on a dense
  // graph; the iteration cap must stop it.
  auto kernel = BuildKernelFromSource(
      "I(X,k) :- X = 0, k = 1.\n"
      "K(i+1,y,sum[k1]) :- I(y,j), k1 = j;\n"
      "                 :- K(i,x,k), edge(x,y), k1 = 0.5*k.");
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  auto g = GenerateComplete(12);
  EvalOptions options;
  options.max_iterations = 25;
  auto r = MraEvaluate(*kernel, g, options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->converged);
  EXPECT_EQ(r->iterations, 25);
}

TEST(Eval, MaxAbsDiffHelpers) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(MaxAbsDiff({1, 2}, {1, 2.5}), 0.5);
  EXPECT_DOUBLE_EQ(MaxAbsDiff({inf}, {inf}), 0.0);
  EXPECT_DOUBLE_EQ(SumAbsDiff({1, 2}, {0, 4}), 3.0);
  EXPECT_TRUE(std::isinf(SumAbsDiff({1}, {1, 2})));
}

}  // namespace
}  // namespace powerlog::eval
