#include <gtest/gtest.h>

#include "smt/printer.h"

namespace powerlog::smt {
namespace {

TEST(Printer, SmtLibBasics) {
  EXPECT_EQ(ToSmtLib(Var("x")), "x");
  EXPECT_EQ(ToSmtLib(ConstInt(3)), "3");
  EXPECT_EQ(ToSmtLib(ConstInt(-3)), "(- 3)");
  EXPECT_EQ(ToSmtLib(ConstDouble(0.85)), "(/ 17 20)");
  EXPECT_EQ(ToSmtLib(Add(Var("x"), Var("y"))), "(+ x y)");
  EXPECT_EQ(ToSmtLib(Div(Mul(Var("a"), ConstDouble(0.85)), Var("d"))),
            "(/ (* a (/ 17 20)) d)");
}

TEST(Printer, ReluLowersToIte) {
  EXPECT_EQ(ToSmtLib(Relu(Var("x"))), "(ite (> x 0) x 0)");
}

TEST(Printer, InfixPrecedence) {
  EXPECT_EQ(ToInfix(Add(Var("x"), Mul(Var("y"), Var("z")))), "x + y*z");
  EXPECT_EQ(ToInfix(Mul(Add(Var("x"), Var("y")), Var("z"))), "(x + y)*z");
  EXPECT_EQ(ToInfix(Min(Var("a"), Var("b"))), "min(a, b)");
}

TEST(Printer, ScriptMirrorsFig4) {
  // PageRank's Property-2 query: declare d with d > 0, universally quantify
  // the aggregation inputs, assert the negated equality, check-sat.
  ConstraintSet cs;
  cs.Assume("d", Sign::kPositive);
  auto f = [](TermPtr v) {
    return Div(Mul(std::move(v), ConstDouble(0.85)), Var("d"));
  };
  auto lhs = Add(f(Add(Var("x1"), Var("y1"))), f(Add(Var("x2"), Var("y2"))));
  auto rhs = Add(Add(Add(f(Var("x1")), f(Var("y1"))), f(Var("x2"))), f(Var("y2")));
  const std::string script = ToSmtLibScript(lhs, rhs, cs);
  EXPECT_NE(script.find("(declare-const d Real)"), std::string::npos);
  EXPECT_NE(script.find("(assert (> d 0))"), std::string::npos);
  EXPECT_NE(script.find("(assert (not (forall ("), std::string::npos);
  EXPECT_NE(script.find("(x1 Real)"), std::string::npos);
  EXPECT_NE(script.find("(check-sat)"), std::string::npos);
  // Constrained symbols must not be re-quantified.
  EXPECT_EQ(script.find("(d Real))"), std::string::npos);
}

TEST(Printer, ScriptEmitsAllSignKinds) {
  ConstraintSet cs;
  cs.Assume("a", Sign::kNonNegative);
  cs.Assume("b", Sign::kNegative);
  cs.Assume("c", Sign::kNonPositive);
  cs.Assume("z", Sign::kZero);
  const std::string script = ToSmtLibScript(Var("a"), Var("a"), cs);
  EXPECT_NE(script.find("(assert (>= a 0))"), std::string::npos);
  EXPECT_NE(script.find("(assert (< b 0))"), std::string::npos);
  EXPECT_NE(script.find("(assert (<= c 0))"), std::string::npos);
  EXPECT_NE(script.find("(assert (= z 0))"), std::string::npos);
}

}  // namespace
}  // namespace powerlog::smt
