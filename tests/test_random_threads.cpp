#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/random.h"
#include "common/thread_pool.h"

namespace powerlog {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBoundedInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, StateRoundTrip) {
  Rng a(77);
  a.Next();
  uint64_t saved[4];
  for (int i = 0; i < 4; ++i) saved[i] = a.state()[i];
  const uint64_t expected = a.Next();
  Rng b;
  b.set_state(saved);
  EXPECT_EQ(b.Next(), expected);
}

TEST(Rng, NextDoubleRange) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.NextDouble(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Mix64, AvalanchesAdjacentInputs) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_NE(Mix64(0), Mix64(1));
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> v{0};
  pool.Submit([&v] { v = 7; });
  pool.Wait();
  EXPECT_EQ(v.load(), 7);
}

TEST(Barrier, SynchronisesParticipants) {
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::atomic<int> phase_counts[2] = {{0}, {0}};
  std::atomic<int> serial_hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      phase_counts[0].fetch_add(1);
      if (barrier.ArriveAndWait()) serial_hits.fetch_add(1);
      // After the barrier every thread must observe all phase-0 arrivals.
      EXPECT_EQ(phase_counts[0].load(), kThreads);
      phase_counts[1].fetch_add(1);
      if (barrier.ArriveAndWait()) serial_hits.fetch_add(1);
      EXPECT_EQ(phase_counts[1].load(), kThreads);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(serial_hits.load(), 2);  // exactly one serial thread per generation
}

TEST(Barrier, ReusableManyGenerations) {
  Barrier barrier(2);
  std::atomic<int> serial{0};
  std::thread other([&] {
    for (int i = 0; i < 50; ++i) {
      if (barrier.ArriveAndWait()) serial.fetch_add(1);
    }
  });
  for (int i = 0; i < 50; ++i) {
    if (barrier.ArriveAndWait()) serial.fetch_add(1);
  }
  other.join();
  EXPECT_EQ(serial.load(), 50);
}

}  // namespace
}  // namespace powerlog
