#include <gtest/gtest.h>

#include <cmath>

#include "checker/initial_delta.h"
#include "core/kernel.h"
#include "datalog/catalog.h"
#include "test_util.h"

namespace powerlog {
namespace {

using powerlog::testing::MustCompile;
using powerlog::testing::SmallDag;
using powerlog::testing::SmallWeightedGraph;

TEST(Kernel, BuildFromCatalogSssp) {
  Kernel k = MustCompile("sssp");
  EXPECT_EQ(k.agg, AggKind::kMin);
  EXPECT_TRUE(k.uses_weights);
  EXPECT_FALSE(k.uses_degree);
  EXPECT_DOUBLE_EQ(k.EvalEdge(3.0, 2.0, 1.0), 5.0);
}

TEST(Kernel, BuildFromCatalogPageRank) {
  Kernel k = MustCompile("pagerank");
  EXPECT_EQ(k.agg, AggKind::kSum);
  EXPECT_TRUE(k.uses_degree);
  EXPECT_DOUBLE_EQ(k.EvalEdge(1.0, 0.0, 4.0), 0.85 / 4.0);
}

TEST(Kernel, BuildRejectsGarbage) {
  EXPECT_FALSE(BuildKernelFromSource("nonsense !").ok());
  EXPECT_FALSE(BuildKernelFromSource("f(X,v) :- X = 0, v = 1.").ok());
}

TEST(Kernel, ComputeX0SingleSource) {
  Kernel k = MustCompile("sssp");
  auto x0 = ComputeX0(k, 5);
  ASSERT_TRUE(x0.ok());
  EXPECT_DOUBLE_EQ((*x0)[0], 0.0);
  for (int v = 1; v < 5; ++v) EXPECT_TRUE(std::isinf((*x0)[v]));
}

TEST(Kernel, ComputeX0OwnId) {
  Kernel k = MustCompile("cc");
  auto x0 = ComputeX0(k, 4);
  ASSERT_TRUE(x0.ok());
  for (int v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ((*x0)[v], v);
}

TEST(Kernel, ComputeX0SourceOutOfRange) {
  Kernel k = MustCompile("sssp");
  k.init.source = 100;
  EXPECT_TRUE(ComputeX0(k, 5).status().IsOutOfRange());
}

TEST(Kernel, InitialStateSsspDeltaIsX1) {
  // ΔX¹ = X¹ for min programs (§3.3): the source keeps distance 0 and its
  // direct successors hold their edge weights.
  Kernel k = MustCompile("sssp");
  auto g = GeneratePath(4, 2.5);
  auto init = ComputeInitialState(k, g);
  ASSERT_TRUE(init.ok());
  EXPECT_DOUBLE_EQ(init->delta0[0], 0.0);
  EXPECT_DOUBLE_EQ(init->delta0[1], 2.5);
  EXPECT_TRUE(std::isinf(init->delta0[2]));
  EXPECT_TRUE(std::isinf(init->delta0[3]));
}

TEST(Kernel, InitialStatePageRankDeltaIsConstant) {
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph();
  auto init = ComputeInitialState(k, g);
  ASSERT_TRUE(init.ok());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(init->x0[v], 0.0);
    EXPECT_DOUBLE_EQ(init->delta0[v], 0.15);
  }
}

TEST(Kernel, InitialStateKatzSingleSeed) {
  Kernel k = MustCompile("katz");
  auto g = SmallWeightedGraph();
  auto init = ComputeInitialState(k, g);
  ASSERT_TRUE(init.ok());
  EXPECT_DOUBLE_EQ(init->delta0[0], 10000.0);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(init->delta0[v], 0.0);
  }
}

TEST(Kernel, InitialStateNonZeroX0Propagates) {
  // A sum program whose init rule is iteration-indexed with nonzero value:
  // ΔX¹ must equal F'(X⁰) + C − X⁰.
  auto kernel = BuildKernelFromSource(
      "@maxiters 50.\n"
      "r(0,X,v) :- node(X), v = 2.\n"
      "r(i+1,Y,sum[v1]) :- node(Y), v1 = 0.5;"
      "                 :- r(i,X,v), edge(X,Y), v1 = 0.25*v.");
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  auto g = GeneratePath(3);  // 0 -> 1 -> 2
  auto init = ComputeInitialState(*kernel, g);
  ASSERT_TRUE(init.ok());
  // Vertex 0: no in-edges: Δ = 0.5 - 2 = -1.5. Vertices 1,2: 0.25*2 + 0.5 - 2.
  EXPECT_DOUBLE_EQ(init->delta0[0], -1.5);
  EXPECT_DOUBLE_EQ(init->delta0[1], 0.5 + 0.5 - 2.0);
  EXPECT_DOUBLE_EQ(init->delta0[2], 0.5 + 0.5 - 2.0);
}

TEST(Kernel, InitialStateNonIndexedSumInit) {
  // A sum program whose init rule has no iteration index: the init facts are
  // re-derived every iteration (part of C), so ΔX¹ = F'(X⁰) + C with no -X⁰
  // term. Regression for a bug found by the checker-soundness fuzzer.
  auto kernel = BuildKernelFromSource(
      "p(X,v0) :- X = 0, v0 = 2.\n"
      "p(Y,sum[v1]) :- p(X,v), edge(X,Y), v1 = 0.25*v; {sum[Δv] < 0.000001}.");
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  EXPECT_FALSE(kernel->init.iteration_indexed);
  auto g = GeneratePath(3);  // 0 -> 1 -> 2
  auto init = ComputeInitialState(*kernel, g);
  ASSERT_TRUE(init.ok());
  EXPECT_DOUBLE_EQ(init->delta0[0], 0.0);        // no in-edges, no C
  EXPECT_DOUBLE_EQ(init->delta0[1], 0.25 * 2.0);  // F'(x0[0])
  EXPECT_DOUBLE_EQ(init->delta0[2], 0.0);
  auto report = checker::VerifyInitialDelta(*kernel, g);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent) << report->detail;
}

// ---------------------------------------------------------------------------
// §3.3 invariant: X¹ == G(ΔX¹ ∪ X⁰) for every runnable catalog program, on
// several graph shapes.
// ---------------------------------------------------------------------------

struct InitCase {
  std::string program;
  std::string graph;
};

class InitialDeltaTest : public ::testing::TestWithParam<InitCase> {};

TEST_P(InitialDeltaTest, X1ConsistentWithDerivedDelta) {
  const auto& param = GetParam();
  Kernel k = MustCompile(param.program);
  Graph g = param.graph == "dag" ? SmallDag() : SmallWeightedGraph();
  auto report = checker::VerifyInitialDelta(k, g, 1e-9);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->consistent) << report->detail;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, InitialDeltaTest,
    ::testing::Values(InitCase{"sssp", "rand"}, InitCase{"sssp", "dag"},
                      InitCase{"cc", "rand"}, InitCase{"pagerank", "rand"},
                      InitCase{"adsorption", "rand"}, InitCase{"katz", "dag"},
                      InitCase{"bp", "rand"}, InitCase{"paths_dag", "dag"},
                      InitCase{"cost", "dag"}, InitCase{"viterbi", "dag"},
                      InitCase{"lca", "dag"}, InitCase{"apsp", "rand"},
                      InitCase{"simrank", "rand"}),
    [](const ::testing::TestParamInfo<InitCase>& info) {
      return info.param.program + "_" + info.param.graph;
    });

}  // namespace
}  // namespace powerlog
