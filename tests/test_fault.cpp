// Chaos-injection and recovery tests: deterministic fault plans, the
// supervisor's fence-restore-respawn protocol, and the per-aggregate
// consistent-cut rules — across all five execution modes.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "eval/eval_common.h"
#include "runtime/engine.h"
#include "runtime/fault.h"
#include "test_util.h"

namespace powerlog::runtime {
namespace {

using powerlog::testing::MustCompile;
using powerlog::testing::SmallDag;
using powerlog::testing::SmallWeightedGraph;

std::string TempBase(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void RemoveStoreFiles(const std::string& base) {
  std::filesystem::remove(base + ".0");
  std::filesystem::remove(base + ".1");
  std::filesystem::remove(base + ".manifest");
}

/// Chaos runs keep the termination controller deliberately sluggish
/// (50 ms checks) so a fault scheduled by beat count always fires before
/// the run can quiesce — also under TSan's ~20x slowdown, where worker
/// beats stretch but sleeps stay real-time.
EngineOptions ChaosBase(ExecMode mode) {
  EngineOptions options;
  options.mode = mode;
  options.num_workers = 3;
  options.network.instant = true;
  options.barrier_overhead_us = 0;
  options.term_check_interval_us = 50000;
  return options;
}

/// Sync workers beat once per superstep plus once per drain pass, so a
/// 2-beat trigger fires within the first two supersteps; async-family
/// workers beat every scan, microseconds apart.
int64_t EarlyBeat(ExecMode mode) { return mode == ExecMode::kSync ? 2 : 20; }

// ---------------------------------------------------------------------------
// FaultPlan parsing.

TEST(FaultPlan, ParsesFullSpec) {
  auto plan = ParseFaultPlan(
      "crash=1@200,hang=2@50x1000,drop=0.1,dup=0.05,reorder=0.2,maxbus=50,"
      "seed=7");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->crash_worker, 1);
  EXPECT_EQ(plan->crash_at_beats, 200);
  EXPECT_EQ(plan->hang_worker, 2);
  EXPECT_EQ(plan->hang_at_beats, 50);
  EXPECT_EQ(plan->hang_duration_us, 1000);
  EXPECT_DOUBLE_EQ(plan->drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan->duplicate_prob, 0.05);
  EXPECT_DOUBLE_EQ(plan->reorder_prob, 0.2);
  EXPECT_EQ(plan->max_bus_faults, 50);
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_TRUE(plan->enabled());
  EXPECT_TRUE(plan->bus_chaos());
}

TEST(FaultPlan, EmptySpecDisablesEverything) {
  auto plan = ParseFaultPlan("");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->enabled());
  EXPECT_FALSE(plan->bus_chaos());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_TRUE(ParseFaultPlan("crash=1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFaultPlan("crash=1@0").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFaultPlan("hang=1@5").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFaultPlan("drop=1.5").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFaultPlan("drop=-0.1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFaultPlan("maxbus=-1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFaultPlan("bogus=3").status().IsInvalidArgument());
  EXPECT_TRUE(ParseFaultPlan("justakey").status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// FaultInjector semantics.

TEST(FaultInjector, BusStreamsAreDeterministicAndBudgetCapped) {
  FaultPlan plan;
  plan.drop_prob = 0.5;
  plan.duplicate_prob = 0.5;  // every draw lands on some fault class
  plan.max_bus_faults = 3;
  plan.seed = 9;
  FaultInjector a(plan, 2);
  FaultInjector b(plan, 2);
  std::vector<FaultInjector::BusFault> seq_a, seq_b;
  for (int i = 0; i < 10; ++i) {
    seq_a.push_back(a.OnSend(0));
    seq_b.push_back(b.OnSend(0));
  }
  EXPECT_EQ(seq_a, seq_b);  // same plan + seed => identical chaos
  EXPECT_EQ(a.stats().total(), 3);
  EXPECT_EQ(a.stats().crashes, 0);
}

TEST(FaultInjector, WorkerFaultsAreOneShot) {
  FaultPlan plan;
  plan.crash_worker = 0;
  plan.crash_at_beats = 5;
  plan.hang_worker = 1;
  plan.hang_at_beats = 2;
  FaultInjector injector(plan, 2);
  EXPECT_EQ(injector.OnHeartbeat(0, 4), FaultInjector::WorkerFault::kNone);
  EXPECT_EQ(injector.OnHeartbeat(1, 1), FaultInjector::WorkerFault::kNone);
  EXPECT_EQ(injector.OnHeartbeat(0, 5), FaultInjector::WorkerFault::kCrash);
  EXPECT_EQ(injector.OnHeartbeat(0, 6), FaultInjector::WorkerFault::kNone);
  EXPECT_EQ(injector.OnHeartbeat(1, 2), FaultInjector::WorkerFault::kHang);
  EXPECT_EQ(injector.OnHeartbeat(1, 3), FaultInjector::WorkerFault::kNone);
  EXPECT_EQ(injector.stats().crashes, 1);
  EXPECT_EQ(injector.stats().hangs, 1);
}

// ---------------------------------------------------------------------------
// End-to-end recovery, one instantiation per execution mode.

class ChaosModeTest : public ::testing::TestWithParam<ExecMode> {};

INSTANTIATE_TEST_SUITE_P(
    AllModes, ChaosModeTest,
    ::testing::Values(ExecMode::kSync, ExecMode::kAsync, ExecMode::kAap,
                      ExecMode::kSyncAsync, ExecMode::kStaleSync),
    [](const ::testing::TestParamInfo<ExecMode>& info) {
      switch (info.param) {
        case ExecMode::kSync: return std::string("sync");
        case ExecMode::kAsync: return std::string("async");
        case ExecMode::kAap: return std::string("aap");
        case ExecMode::kSyncAsync: return std::string("sync_async");
        case ExecMode::kStaleSync: return std::string("stale_sync");
      }
      return std::string("unknown");
    });

TEST_P(ChaosModeTest, CrashRecoveryIsDeterministicAndExact) {
  const ExecMode mode = GetParam();
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(61);
  const EngineOptions base = ChaosBase(mode);
  auto clean = Engine(g, k, base).Run();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  EngineOptions chaos = base;
  chaos.fault.crash_worker = 1;
  chaos.fault.crash_at_beats = EarlyBeat(mode);
  chaos.fault.seed = 0xC0FFEE;
  auto r1 = Engine(g, k, chaos).Run();
  auto r2 = Engine(g, k, chaos).Run();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();

  EXPECT_EQ(r1->stats.faults.crashes, 1);
  EXPECT_GE(r1->stats.recoveries, 1);
  // Same seed => same recovery count and bit-identical results.
  EXPECT_EQ(r1->stats.recoveries, r2->stats.recoveries);
  EXPECT_EQ(r1->values, r2->values);
  // min is order-independent: the healed run lands on the exact fault-free
  // fixpoint, not an approximation of it.
  EXPECT_EQ(r1->values, clean->values);
}

TEST_P(ChaosModeTest, SumRecoveryConservesMassExactly) {
  const ExecMode mode = GetParam();
  Kernel k = MustCompile("paths_dag");
  auto g = SmallDag(71);
  const EngineOptions base = ChaosBase(mode);
  auto clean = Engine(g, k, base).Run();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_TRUE(clean->stats.converged);

  EngineOptions chaos = base;
  const std::string store =
      TempBase("powerlog_fault_sum_" +
               std::to_string(static_cast<int>(mode)) + ".ckpt");
  RemoveStoreFiles(store);
  chaos.checkpoint_path = store;
  chaos.checkpoint_every = 2;          // sync: every 2 supersteps
  chaos.checkpoint_interval_us = 3000; // async family: supervisor cadence
  chaos.fault.crash_worker = 2;
  chaos.fault.crash_at_beats = EarlyBeat(mode);
  auto r = Engine(g, k, chaos).Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_GE(r->stats.recoveries, 1);
  // Path counts are integers and the rollback restores a mass-conserving
  // cut, so the healed run must reproduce every count exactly — any drift
  // means an update was double-counted or lost.
  EXPECT_EQ(r->values, clean->values);
  RemoveStoreFiles(store);
}

TEST_P(ChaosModeTest, EpsilonProgramRecoversWithinTolerance) {
  const ExecMode mode = GetParam();
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(61);
  EngineOptions base = ChaosBase(mode);
  const double eps = 1e-6;
  base.epsilon_override = eps;
  auto clean = Engine(g, k, base).Run();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  EngineOptions chaos = base;
  const std::string store =
      TempBase("powerlog_fault_eps_" +
               std::to_string(static_cast<int>(mode)) + ".ckpt");
  RemoveStoreFiles(store);
  chaos.checkpoint_path = store;
  chaos.checkpoint_every = 2;
  chaos.checkpoint_interval_us = 3000;
  chaos.fault.crash_worker = 1;
  chaos.fault.crash_at_beats = EarlyBeat(mode);
  auto r = Engine(g, k, chaos).Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_GE(r->stats.recoveries, 1);
  EXPECT_TRUE(r->stats.converged);
  EXPECT_LE(eval::MaxAbsDiff(clean->values, r->values), 10 * eps);
  RemoveStoreFiles(store);
}

TEST(EngineFault, HungWorkerIsFencedAndRecovered) {
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(61);
  const EngineOptions base = ChaosBase(ExecMode::kAsync);
  auto clean = Engine(g, k, base).Run();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  EngineOptions chaos = base;
  chaos.heartbeat_timeout_us = 20000;
  chaos.fault.hang_worker = 1;
  chaos.fault.hang_at_beats = 1;  // freeze before the first scan
  chaos.fault.hang_duration_us = 200000;  // outlasts detection by ~8x
  auto r = Engine(g, k, chaos).Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(r->stats.faults.hangs, 1);
  EXPECT_GE(r->stats.recoveries, 1);
  EXPECT_EQ(r->values, clean->values);
}

TEST(EngineFault, DroppedMessageIsHealedByRecovery) {
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(61);
  for (ExecMode mode : {ExecMode::kAsync, ExecMode::kSyncAsync}) {
    SCOPED_TRACE(ExecModeName(mode));
    const EngineOptions base = ChaosBase(mode);
    auto clean = Engine(g, k, base).Run();
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();

    // drop=1.0 with a budget of one discards exactly the first message on
    // the bus — long before the crash fires — so the recovery sweep is
    // guaranteed to run after all the damage is done and must heal it.
    EngineOptions chaos = base;
    chaos.fault.drop_prob = 1.0;
    chaos.fault.max_bus_faults = 1;
    chaos.fault.crash_worker = 1;
    chaos.fault.crash_at_beats = 200;
    auto r = Engine(g, k, chaos).Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();

    EXPECT_EQ(r->stats.faults.messages_dropped, 1);
    EXPECT_GE(r->stats.recoveries, 1);
    EXPECT_EQ(r->values, clean->values);
  }
}

TEST(EngineFault, DuplicatesAndReorderingAreHarmlessForMin) {
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(61);
  for (ExecMode mode :
       {ExecMode::kSync, ExecMode::kAsync, ExecMode::kAap,
        ExecMode::kSyncAsync}) {
    SCOPED_TRACE(ExecModeName(mode));
    const EngineOptions base = ChaosBase(mode);
    auto clean = Engine(g, k, base).Run();
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();

    // Idempotent + order-independent aggregation: double delivery and
    // delayed delivery may not change the fixpoint, and the termination
    // detector's in-flight accounting must stay sound under both.
    EngineOptions chaos = base;
    chaos.fault.duplicate_prob = 0.3;
    chaos.fault.reorder_prob = 0.3;
    chaos.fault.reorder_delay_us = 200;
    chaos.fault.seed = 0xD0D0;
    auto r = Engine(g, k, chaos).Run();
    ASSERT_TRUE(r.ok()) << r.status().ToString();

    EXPECT_GT(r->stats.faults.messages_duplicated +
                  r->stats.faults.messages_reordered,
              0);
    EXPECT_EQ(r->stats.recoveries, 0);
    EXPECT_EQ(r->values, clean->values);
  }
}

}  // namespace
}  // namespace powerlog::runtime
