// Data-plane tests: SPSC ring fabric, batch pool, delivery simulation, and
// the Send → Receive → AckDelivered in-flight accounting protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/random.h"
#include "eval/eval_common.h"
#include "eval/naive.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "runtime/engine.h"
#include "runtime/network.h"
#include "test_util.h"

namespace powerlog::runtime {
namespace {

using eval::MaxAbsDiff;
using powerlog::testing::MustCompile;

TEST(MessageBus, InstantDelivery) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(2, config);
  bus.Send(0, 1, {{5, 1.5}});
  UpdateBatch out;
  EXPECT_EQ(bus.Receive(1, &out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, 5u);
  EXPECT_DOUBLE_EQ(out[0].value, 1.5);
  bus.AckDelivered(1, 1);
}

TEST(MessageBus, EmptyBatchesDropped) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(2, config);
  bus.Send(0, 1, {});
  EXPECT_EQ(bus.stats().messages, 0);
  EXPECT_FALSE(bus.HasPending(1));
}

TEST(MessageBus, LatencyDelaysDelivery) {
  NetworkConfig config;
  config.latency_us = 20000;  // 20 ms
  MessageBus bus(2, config);
  bus.Send(0, 1, {{1, 1.0}});
  UpdateBatch out;
  EXPECT_EQ(bus.Receive(1, &out), 0u);  // not yet deliverable
  EXPECT_TRUE(bus.HasPending(1));
  EXPECT_EQ(bus.InFlightUpdates(), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(bus.Receive(1, &out), 1u);
  // Delivered but not applied: still counted in flight until the ack.
  EXPECT_EQ(bus.InFlightUpdates(), 1);
  EXPECT_TRUE(bus.HasPending(1));
  bus.AckDelivered(1, 1);
  EXPECT_EQ(bus.InFlightUpdates(), 0);
  EXPECT_FALSE(bus.HasPending(1));
}

TEST(MessageBus, PerUpdateCostScalesDelay) {
  NetworkConfig config;
  config.latency_us = 0;
  config.per_update_us = 10000;  // absurd: 10ms per update
  MessageBus bus(2, config);
  bus.Send(0, 1, {{1, 1.0}, {2, 2.0}});
  UpdateBatch out;
  EXPECT_EQ(bus.Receive(1, &out), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(bus.Receive(1, &out), 2u);
}

TEST(MessageBus, StatsCountMessagesAndUpdates) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(3, config);
  bus.Send(0, 1, {{1, 1.0}, {2, 2.0}});
  bus.Send(0, 2, {{3, 3.0}});
  const NetworkStats stats = bus.stats();
  EXPECT_EQ(stats.messages, 2);
  EXPECT_EQ(stats.updates, 3);
}

TEST(MessageBus, InFlightAccountingRequiresAck) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(3, config);
  bus.Send(0, 1, {{1, 1.0}});
  bus.Send(2, 1, {{2, 2.0}});
  bus.Send(1, 0, {{3, 3.0}});
  EXPECT_EQ(bus.InFlightUpdates(), 3);
  UpdateBatch out;
  EXPECT_EQ(bus.Receive(1, &out), 2u);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(bus.InFlightUpdates(), 3);  // delivered, not yet acked
  EXPECT_TRUE(bus.HasPending(1));
  bus.AckDelivered(1, 2);
  EXPECT_EQ(bus.InFlightUpdates(), 1);
  EXPECT_FALSE(bus.HasPending(1));
  out.clear();
  bus.AckDelivered(0, bus.Receive(0, &out));
  EXPECT_EQ(bus.InFlightUpdates(), 0);
}

TEST(MessageBus, ReceiveNowDecrementsImmediately) {
  NetworkConfig config;
  config.latency_us = 60'000'000;  // would never deliver on its own
  MessageBus bus(2, config);
  bus.Send(0, 1, {{1, 1.0}, {2, 2.0}});
  UpdateBatch out;
  EXPECT_EQ(bus.ReceiveNow(1, &out), 2u);  // cut helper ignores delivery time
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(bus.InFlightUpdates(), 0);  // no separate ack for the cut path
  EXPECT_FALSE(bus.HasPending(1));
}

TEST(MessageBus, ClearDiscardsEverything) {
  NetworkConfig config;
  config.latency_us = 60'000'000;
  MessageBus bus(3, config);
  bus.Send(0, 1, {{1, 1.0}});
  bus.Send(0, 2, {{2, 2.0}, {3, 3.0}});
  EXPECT_EQ(bus.InFlightUpdates(), 3);
  bus.Clear();
  EXPECT_EQ(bus.InFlightUpdates(), 0);
  EXPECT_FALSE(bus.HasPending(1));
  EXPECT_FALSE(bus.HasPending(2));
  UpdateBatch out;
  EXPECT_EQ(bus.ReceiveNow(1, &out), 0u);
  EXPECT_EQ(bus.ReceiveNow(2, &out), 0u);
}

TEST(MessageBus, ReceiveAppends) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(2, config);
  bus.Send(0, 1, {{1, 1.0}});
  UpdateBatch out{{99, 0.0}};
  bus.Receive(1, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, 99u);
}

// A ring with a 8-slot capacity must survive many laps of its index space
// without corrupting or reordering a single sender's FIFO stream.
TEST(MessageBus, RingWraparoundPreservesFifoOrder) {
  NetworkConfig config;
  config.instant = true;
  config.ring_slots = 8;
  MessageBus bus(2, config);
  UpdateBatch out;
  VertexId next_expected = 0;
  for (int round = 0; round < 40; ++round) {  // 40 × 4 = 20 laps of the ring
    for (int i = 0; i < 4; ++i) {
      const VertexId key = static_cast<VertexId>(round * 4 + i);
      bus.Send(0, 1, {{key, 1.0}});
    }
    out.clear();
    const size_t got = bus.Receive(1, &out);
    EXPECT_EQ(got, 4u);
    for (const Update& u : out) {
      EXPECT_EQ(u.key, next_expected);
      ++next_expected;
    }
    bus.AckDelivered(1, got);
  }
  EXPECT_EQ(next_expected, 160u);
  EXPECT_EQ(bus.InFlightUpdates(), 0);
  EXPECT_EQ(bus.stats().overflow_sends, 0);  // never outran the consumer
}

// Filling a ring past capacity must spill to the overflow slow path — never
// block, never drop — and deliver everything once the consumer catches up.
TEST(MessageBus, FullRingSpillsToOverflow) {
  NetworkConfig config;
  config.instant = true;
  config.ring_slots = 2;
  MessageBus bus(2, config);
  const int kMessages = 100;
  for (int i = 0; i < kMessages; ++i) {
    bus.Send(0, 1, {{static_cast<VertexId>(i), 1.0}});
  }
  EXPECT_GT(bus.stats().overflow_sends, 0);
  EXPECT_EQ(bus.InFlightUpdates(), kMessages);
  UpdateBatch out;
  const size_t got = bus.Receive(1, &out);
  EXPECT_EQ(got, static_cast<size_t>(kMessages));
  bus.AckDelivered(1, got);
  EXPECT_EQ(bus.InFlightUpdates(), 0);
  // Every key exactly once (ring + overflow merged losslessly).
  std::vector<bool> seen(kMessages, false);
  for (const Update& u : out) {
    ASSERT_LT(u.key, static_cast<VertexId>(kMessages));
    EXPECT_FALSE(seen[u.key]);
    seen[u.key] = true;
  }
}

// One producer, one consumer, a tiny ring: hammers the lock-free fast path,
// the wraparound arithmetic, and the overflow spill under real concurrency.
// Run under TSan via the `concurrency` label.
TEST(MessageBus, TwoThreadHammer) {
  NetworkConfig config;
  config.instant = true;
  config.ring_slots = 4;
  MessageBus bus(2, config);
  const int kMessages = 20000;
  std::thread producer([&bus] {
    for (int i = 0; i < kMessages; ++i) {
      bus.Send(0, 1, {{static_cast<VertexId>(i), static_cast<double>(i)}});
    }
  });
  int64_t received = 0;
  double value_sum = 0.0;
  UpdateBatch out;
  while (received < kMessages) {
    out.clear();
    const size_t got = bus.Receive(1, &out);
    for (const Update& u : out) value_sum += u.value;
    bus.AckDelivered(1, got);
    received += static_cast<int64_t>(got);
  }
  producer.join();
  EXPECT_EQ(received, kMessages);
  EXPECT_DOUBLE_EQ(value_sum,
                   static_cast<double>(kMessages) * (kMessages - 1) / 2.0);
  EXPECT_EQ(bus.InFlightUpdates(), 0);
  EXPECT_FALSE(bus.HasPending(1));
}

TEST(MessageBus, ConcurrentSendersAreSafe) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(4, config);
  std::vector<std::thread> senders;
  for (int t = 0; t < 3; ++t) {
    senders.emplace_back([&bus, t] {
      for (int i = 0; i < 1000; ++i) {
        bus.Send(static_cast<uint32_t>(t), 3,
                 {{static_cast<VertexId>(i), static_cast<double>(t)}});
      }
    });
  }
  size_t received = 0;
  std::thread receiver([&] {
    UpdateBatch out;
    while (received < 3000) {
      out.clear();
      const size_t got = bus.Receive(3, &out);
      bus.AckDelivered(3, got);
      received += got;
    }
  });
  for (auto& t : senders) t.join();
  receiver.join();
  EXPECT_EQ(received, 3000u);
  EXPECT_EQ(bus.InFlightUpdates(), 0);
}

TEST(BatchPool, ReusesCapacityAndCountsHitsMisses) {
  BatchPool pool(2);
  // Fresh pool: nothing to recycle.
  UpdateBatch a = pool.Acquire();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(pool.stats().misses, 1);
  a.reserve(128);
  const size_t cap = a.capacity();
  a.push_back({1, 1.0});
  pool.Release(std::move(a));
  // The recycled batch comes back empty but with its capacity intact.
  UpdateBatch b = pool.Acquire();
  EXPECT_TRUE(b.empty());
  EXPECT_GE(b.capacity(), cap);
  EXPECT_EQ(pool.stats().hits, 1);
}

TEST(BatchPool, DiscardsOversizedAndSurplusBatches) {
  BatchPool pool(2, /*max_pooled_updates=*/16);
  ASSERT_EQ(pool.capacity(), 2u);  // capacity rounds up to a power of two
  UpdateBatch big;
  big.reserve(1024);  // over the cap: must not be retained
  pool.Release(std::move(big));
  EXPECT_EQ(pool.stats().discards, 1);
  for (int i = 0; i < 3; ++i) {
    UpdateBatch small;
    small.reserve(8);
    pool.Release(std::move(small));  // first two fill the pool; third is surplus
  }
  EXPECT_EQ(pool.stats().discards, 2);
  EXPECT_GE(pool.Acquire().capacity(), 8u);
  EXPECT_EQ(pool.stats().hits, 1);
}

TEST(BatchPool, ConcurrentAcquireReleaseIsLossless) {
  BatchPool pool(8);
  constexpr int kThreads = 4;
  constexpr int kLaps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < kLaps; ++i) {
        UpdateBatch batch = pool.Acquire();
        batch.push_back({static_cast<VertexId>(i), 1.0});
        pool.Release(std::move(batch));
      }
    });
  }
  for (auto& t : threads) t.join();
  const BatchPool::Stats stats = pool.stats();
  // Every Acquire was either a hit or a miss — none lost, none duplicated.
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kLaps);
  EXPECT_GT(stats.hits, 0);
}

// After a warm-up, the send → deliver → release lap recycles batches through
// the pool and the steady state stops allocating (misses stop growing).
TEST(MessageBus, SteadyStateLapsAreAllocationFree) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(2, config);
  UpdateBatch out;
  auto lap = [&] {
    UpdateBatch batch = bus.AcquireBatch();
    for (int i = 0; i < 64; ++i) batch.push_back({static_cast<VertexId>(i), 1.0});
    bus.Send(0, 1, std::move(batch));
    out.clear();
    bus.AckDelivered(1, bus.Receive(1, &out));
  };
  for (int i = 0; i < 10; ++i) lap();
  const int64_t warm_misses = bus.pool_stats().misses;
  for (int i = 0; i < 200; ++i) lap();
  EXPECT_EQ(bus.pool_stats().misses, warm_misses);
  EXPECT_GT(bus.pool_stats().hits, 0);
}

// Stress for the counter protocol the termination sampler depends on
// (ISSUE 3 bugfix): sampled in the same order as Quiescent() — sent S, then
// in-flight F, then applied A — the invariant F + A >= S must never be
// violated. Before the ack-after-apply protocol, Receive decremented
// in-flight *before* the updates were applied, so a sampler could observe
// F + A < S: mass transiently vanished from both counters.
TEST(MessageBus, InFlightNeverUnderReportsUnderSampling) {
  NetworkConfig config;
  config.instant = true;
  config.ring_slots = 8;  // exercise overflow too
  MessageBus bus(3, config);
  constexpr int kBatches = 4000;
  constexpr int kBatchSize = 3;
  std::atomic<int64_t> sent{0};
  std::atomic<int64_t> applied{0};
  std::atomic<bool> done{false};

  auto sender = [&](uint32_t id) {
    for (int i = 0; i < kBatches; ++i) {
      UpdateBatch batch;
      for (int k = 0; k < kBatchSize; ++k) {
        batch.push_back({static_cast<VertexId>(i), 1.0});
      }
      bus.Send(id, 2, std::move(batch));
      // Published: the in-flight increment is sequenced before this add, so
      // any sampler that reads `sent` sees the increment too.
      sent.fetch_add(kBatchSize, std::memory_order_release);
    }
  };
  std::thread s0(sender, 0);
  std::thread s1(sender, 1);
  std::thread consumer([&] {
    UpdateBatch out;
    int64_t received = 0;
    while (received < 2 * kBatches * kBatchSize) {
      out.clear();
      const size_t got = bus.Receive(2, &out);
      // "Apply to the table", then ack — the protocol under test.
      applied.fetch_add(static_cast<int64_t>(got), std::memory_order_release);
      bus.AckDelivered(2, got);
      received += static_cast<int64_t>(got);
    }
  });
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      const int64_t s = sent.load(std::memory_order_acquire);
      const int64_t f = bus.InFlightUpdates();
      const int64_t a = applied.load(std::memory_order_acquire);
      // Reading order matters (S, then F, then A): an acked update's
      // applied-increment happens-before the ack's release decrement, so if
      // F misses it, A must include it.
      ASSERT_GE(f + a, s);
    }
  });
  s0.join();
  s1.join();
  consumer.join();
  done.store(true, std::memory_order_release);
  sampler.join();
  EXPECT_EQ(bus.InFlightUpdates(), 0);
  EXPECT_EQ(applied.load(), 2 * kBatches * kBatchSize);
}

// ---------------------------------------------------------------------------
// End-to-end: the data-plane swap must not move any engine result.
// Social-influence workload mix (examples/social_influence) shrunk to test
// size: CC + SSSP (min: the fixpoint is engine-invariant, so results must
// be *exactly* equal to the single-node reference) and Adsorption (sum: FP
// addition order varies across data planes, so assert run-to-run
// determinism + reference agreement instead).

Graph SocialGraph() {
  RmatParams params;
  params.scale = 9;
  params.edge_factor = 8;
  params.a = 0.55;
  params.b = params.c = 0.17;
  params.d = 0.11;
  params.weighted = true;
  auto raw = GenerateRmat(params).ValueOrDie();
  // Row-substochastic re-weighting, as in the example: keeps Adsorption
  // contractive.
  GraphBuilder builder;
  builder.EnsureVertices(raw.num_vertices());
  Rng rng(99);
  for (VertexId v = 0; v < raw.num_vertices(); ++v) {
    const double deg = static_cast<double>(raw.OutDegree(v));
    for (const Edge& e : raw.OutEdges(v)) {
      builder.AddEdge(v, e.dst, (0.5 + 0.5 * rng.NextDouble()) / deg);
    }
  }
  return std::move(builder).Build().ValueOrDie();
}

TEST(DataPlaneBitExactness, SyncMinProgramsMatchReferenceExactly) {
  const Graph g = SocialGraph();
  for (const char* program : {"cc", "sssp"}) {
    SCOPED_TRACE(program);
    Kernel k = MustCompile(program);
    auto reference = eval::NaiveEvaluate(k, g, {});
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    EngineOptions options;
    options.mode = ExecMode::kSync;
    options.num_workers = 4;
    options.network.instant = true;
    Engine engine(g, k, options);
    auto run = engine.Run();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    // Bitwise equality, not a tolerance: min-path values are the same
    // edge-weight sums in both engines, so any drift means the data plane
    // corrupted or double-delivered an update.
    EXPECT_EQ(run->values, reference->values);
  }
}

TEST(DataPlaneBitExactness, SyncSumProgramIsDeterministicAndAccurate) {
  const Graph g = SocialGraph();
  Kernel k = MustCompile("adsorption");
  eval::EvalOptions ref_options;
  ref_options.epsilon_override = 1e-9;
  auto reference = eval::NaiveEvaluate(k, g, ref_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EngineOptions options;
  options.mode = ExecMode::kSync;
  options.num_workers = 4;
  options.network.instant = true;
  options.epsilon_override = 1e-7;
  Engine engine(g, k, options);
  auto a = engine.Run();
  auto b = engine.Run();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->values, b->values);  // bit-identical across runs
  EXPECT_LE(MaxAbsDiff(reference->values, a->values), 1e-2);
}

}  // namespace
}  // namespace powerlog::runtime
