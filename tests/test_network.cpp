#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/network.h"

namespace powerlog::runtime {
namespace {

TEST(MessageBus, InstantDelivery) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(2, config);
  bus.Send(0, 1, {{5, 1.5}});
  UpdateBatch out;
  EXPECT_EQ(bus.Receive(1, &out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, 5u);
  EXPECT_DOUBLE_EQ(out[0].value, 1.5);
}

TEST(MessageBus, EmptyBatchesDropped) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(2, config);
  bus.Send(0, 1, {});
  EXPECT_EQ(bus.stats().messages, 0);
  EXPECT_FALSE(bus.HasPending(1));
}

TEST(MessageBus, LatencyDelaysDelivery) {
  NetworkConfig config;
  config.latency_us = 20000;  // 20 ms
  MessageBus bus(2, config);
  bus.Send(0, 1, {{1, 1.0}});
  UpdateBatch out;
  EXPECT_EQ(bus.Receive(1, &out), 0u);  // not yet deliverable
  EXPECT_TRUE(bus.HasPending(1));
  EXPECT_EQ(bus.InFlightUpdates(), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(bus.Receive(1, &out), 1u);
  EXPECT_EQ(bus.InFlightUpdates(), 0);
  EXPECT_FALSE(bus.HasPending(1));
}

TEST(MessageBus, PerUpdateCostScalesDelay) {
  NetworkConfig config;
  config.latency_us = 0;
  config.per_update_us = 10000;  // absurd: 10ms per update
  MessageBus bus(2, config);
  bus.Send(0, 1, {{1, 1.0}, {2, 2.0}});
  UpdateBatch out;
  EXPECT_EQ(bus.Receive(1, &out), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(bus.Receive(1, &out), 2u);
}

TEST(MessageBus, StatsCountMessagesAndUpdates) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(3, config);
  bus.Send(0, 1, {{1, 1.0}, {2, 2.0}});
  bus.Send(0, 2, {{3, 3.0}});
  const NetworkStats stats = bus.stats();
  EXPECT_EQ(stats.messages, 2);
  EXPECT_EQ(stats.updates, 3);
}

TEST(MessageBus, InFlightAccountingAcrossWorkers) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(3, config);
  bus.Send(0, 1, {{1, 1.0}});
  bus.Send(2, 1, {{2, 2.0}});
  bus.Send(1, 0, {{3, 3.0}});
  EXPECT_EQ(bus.InFlightUpdates(), 3);
  UpdateBatch out;
  bus.Receive(1, &out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(bus.InFlightUpdates(), 1);
  out.clear();
  bus.Receive(0, &out);
  EXPECT_EQ(bus.InFlightUpdates(), 0);
}

TEST(MessageBus, ReceiveAppends) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(2, config);
  bus.Send(0, 1, {{1, 1.0}});
  UpdateBatch out{{99, 0.0}};
  bus.Receive(1, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, 99u);
}

TEST(MessageBus, ConcurrentSendersAreSafe) {
  NetworkConfig config;
  config.instant = true;
  MessageBus bus(4, config);
  std::vector<std::thread> senders;
  for (int t = 0; t < 3; ++t) {
    senders.emplace_back([&bus, t] {
      for (int i = 0; i < 1000; ++i) {
        bus.Send(static_cast<uint32_t>(t), 3,
                 {{static_cast<VertexId>(i), static_cast<double>(t)}});
      }
    });
  }
  size_t received = 0;
  std::thread receiver([&] {
    UpdateBatch out;
    while (received < 3000) {
      out.clear();
      received += bus.Receive(3, &out);
    }
  });
  for (auto& t : senders) t.join();
  receiver.join();
  EXPECT_EQ(received, 3000u);
  EXPECT_EQ(bus.InFlightUpdates(), 0);
}

}  // namespace
}  // namespace powerlog::runtime
