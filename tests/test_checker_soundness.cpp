// Randomised soundness test for the automatic condition checker: whenever
// the checker declares a program MRA-satisfiable, Theorem 1 promises that
// MRA evaluation reaches the same fixpoint as naive evaluation. We generate
// random recursive aggregate programs (random aggregate, random F' drawn
// from affine / scaled / degree-normalised / piecewise templates), run the
// checker, and — for every "satisfied" verdict where both evaluators
// terminate — demand equal fixpoints on multiple graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "checker/mra_checker.h"
#include "common/random.h"
#include "common/string_util.h"
#include "eval/mra.h"
#include "eval/naive.h"
#include "test_util.h"

namespace powerlog {
namespace {

struct GeneratedProgram {
  std::string source;
  std::string description;
};

/// Builds a random single-source recursive aggregate program.
GeneratedProgram GenerateProgram(uint64_t seed) {
  Rng rng(seed);
  const char* aggs[] = {"min", "max", "sum"};
  const std::string agg = aggs[rng.NextBounded(3)];

  // Coefficients: small magnitudes keep sum programs contractive on the
  // low-degree test graphs; signs and shapes vary to hit both verdicts.
  const double a = (rng.NextBool(0.75) ? 1.0 : -1.0) *
                   (0.05 + 0.2 * rng.NextDouble());
  const double b = rng.NextDouble(-2.0, 2.0);

  std::string expr;
  std::string extra_rules;
  std::string extra_body;
  switch (rng.NextBounded(6)) {
    case 0:  // pure translation — monotone, valid for every aggregate
      expr = StringFormat("v + %.3f", std::abs(b));
      break;
    case 1:  // scaling (sign decides min/max validity)
      expr = StringFormat("%.3f*v", a);
      break;
    case 2:  // affine
      expr = StringFormat("%.3f*v + %.3f", a, b);
      break;
    case 3:  // degree-normalised (PageRank shape)
      extra_rules = "degree(X,count[Y]) :- edge(X,Y).\n";
      extra_body = ", degree(X,d)";
      expr = StringFormat("%.3f*v/d", a);
      break;
    case 4:  // piecewise: relu breaks Property 2 for sum with mixed signs
      expr = StringFormat("relu(%.3f*v - %.3f)", a, std::abs(b));
      break;
    case 5:  // absolute value — breaks monotone push for min/max
      expr = StringFormat("abs(%.3f*v)", a);
      break;
  }

  std::string source = "@name rnd.\n" + extra_rules;
  source += StringFormat("p(X,v0) :- X = 0, v0 = %.3f.\n", 1.0 + rng.NextDouble());
  source += "p(Y," + agg + "[v1]) :- p(X,v), edge(X,Y)" + extra_body +
            ", v1 = " + expr + ";\n";
  if (agg == "sum") source += "    {sum[Δv] < 0.000001};\n";
  source.back() = '.';
  source += "\n";
  return GeneratedProgram{source, agg + "[" + expr + "]"};
}

class CheckerSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CheckerSoundnessTest, SatisfiedImpliesMraEqualsNaive) {
  const GeneratedProgram program = GenerateProgram(GetParam());
  SCOPED_TRACE(program.description + "\n" + program.source);

  auto check = checker::CheckMraConditionsFromSource(program.source);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  // Decisiveness: the fragment we generate must never come back "unknown".
  EXPECT_FALSE(check->inconclusive) << check->report;
  if (!check->satisfied) {
    // Refutations must carry a concrete witness somewhere.
    const bool witnessed = check->property2.counterexample.has_value() ||
                           !check->property1.holds();
    EXPECT_TRUE(witnessed) << check->report;
    return;
  }

  auto kernel = BuildKernelFromSource(program.source);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  const Graph graphs[] = {GeneratePath(12, 1.0), GenerateGrid(4),
                          powerlog::testing::SmallDag(GetParam() * 3 + 1)};
  for (const Graph& g : graphs) {
    eval::EvalOptions options;
    options.max_iterations = 400;
    auto naive = eval::NaiveEvaluate(*kernel, g, options);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    auto mra = eval::MraEvaluate(*kernel, g, options);
    ASSERT_TRUE(mra.ok()) << mra.status().ToString();
    // Theorem 1 presumes a fixpoint is reached; skip non-terminating draws.
    if (!naive->converged || !mra->converged) continue;
    EXPECT_LE(eval::MaxAbsDiff(naive->values, mra->values), 1e-5)
        << "naive " << naive->Summary() << " vs mra " << mra->Summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, CheckerSoundnessTest,
                         ::testing::Range<uint64_t>(1, 61));

TEST(CheckerSoundness, KnownValidShapesPass) {
  // Spot anchors: each template's canonical valid instance.
  const char* valid[] = {
      "p(X,v0) :- X = 0, v0 = 0.\n"
      "p(Y,min[v1]) :- p(X,v), edge(X,Y), v1 = v + 1.",
      "p(X,v0) :- X = 0, v0 = 1.\n"
      "p(Y,max[v1]) :- p(X,v), edge(X,Y), v1 = 0.25*v.",
      "p(X,v0) :- X = 0, v0 = 1.\n"
      "p(Y,sum[v1]) :- p(X,v), edge(X,Y), v1 = 0.125*v; {sum[Δv] < 0.0001}.",
  };
  for (const char* source : valid) {
    auto check = checker::CheckMraConditionsFromSource(source);
    ASSERT_TRUE(check.ok());
    EXPECT_TRUE(check->satisfied) << source << "\n" << check->report;
  }
}

TEST(CheckerSoundness, KnownInvalidShapesFail) {
  const char* invalid[] = {
      // min with a negative multiplier: not monotone.
      "p(X,v0) :- X = 0, v0 = 0.\n"
      "p(Y,min[v1]) :- p(X,v), edge(X,Y), v1 = 0 - 0.5*v.",
      // sum with relu and an offset: Property 2 fails.
      "p(X,v0) :- X = 0, v0 = 1.\n"
      "p(Y,sum[v1]) :- p(X,v), edge(X,Y), v1 = relu(0.5*v - 1).",
      // max with abs: not monotone.
      "p(X,v0) :- X = 0, v0 = 1.\n"
      "p(Y,max[v1]) :- p(X,v), edge(X,Y), v1 = abs(0.5*v) - 1.",
  };
  for (const char* source : invalid) {
    auto check = checker::CheckMraConditionsFromSource(source);
    ASSERT_TRUE(check.ok());
    EXPECT_FALSE(check->satisfied) << source << "\n" << check->report;
  }
}

}  // namespace
}  // namespace powerlog
