#include <gtest/gtest.h>

#include "eval/eval_common.h"
#include "eval/naive.h"
#include "systems/comparators.h"
#include "test_util.h"

namespace powerlog::systems {
namespace {

using eval::MaxAbsDiff;
using powerlog::testing::MustCompile;
using powerlog::testing::SmallWeightedGraph;

RunConfig FastConfig() {
  RunConfig config;
  config.num_workers = 2;
  config.network.instant = true;
  config.max_wall_seconds = 20.0;
  return config;
}

TEST(NaiveSyncEngine, MatchesReferenceSssp) {
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(41);
  auto reference = eval::NaiveEvaluate(k, g);
  ASSERT_TRUE(reference.ok());
  runtime::EngineOptions options;
  options.num_workers = 3;
  options.network.instant = true;
  options.barrier_overhead_us = 0;
  auto run = NaiveSyncRun(g, k, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_LE(MaxAbsDiff(reference->values, run->values), 1e-12);
  EXPECT_TRUE(run->stats.converged);
}

TEST(NaiveSyncEngine, MatchesReferencePageRank) {
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(43);
  eval::EvalOptions ref_options;
  ref_options.epsilon_override = 1e-8;
  auto reference = eval::NaiveEvaluate(k, g, ref_options);
  ASSERT_TRUE(reference.ok());
  runtime::EngineOptions options;
  options.num_workers = 3;
  options.network.instant = true;
  options.barrier_overhead_us = 0;
  options.epsilon_override = 1e-8;
  auto run = NaiveSyncRun(g, k, options);
  ASSERT_TRUE(run.ok());
  EXPECT_LE(MaxAbsDiff(reference->values, run->values), 1e-4);
}

TEST(NaiveSyncEngine, DoesMoreWorkThanIncremental) {
  // The whole point of MRA: naive re-derives everything per iteration.
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(47);
  runtime::EngineOptions options;
  options.num_workers = 2;
  options.network.instant = true;
  options.barrier_overhead_us = 0;
  auto naive = NaiveSyncRun(g, k, options);
  ASSERT_TRUE(naive.ok());
  options.mode = runtime::ExecMode::kSync;
  runtime::Engine engine(g, k, options);
  auto incremental = engine.Run();
  ASSERT_TRUE(incremental.ok());
  EXPECT_GT(naive->stats.edge_applications, incremental->stats.edge_applications);
}

TEST(NaiveSyncEngine, RejectsMean) {
  Kernel k = MustCompile("commnet");
  auto g = GeneratePath(4);
  runtime::EngineOptions options;
  EXPECT_TRUE(NaiveSyncRun(g, k, options).status().IsNotSupported());
}

TEST(Systems, Names) {
  EXPECT_STREQ(SystemName(SystemId::kPowerLog), "PowerLog");
  EXPECT_STREQ(SystemName(SystemId::kSociaLite), "SociaLite");
  EXPECT_STREQ(SystemName(SystemId::kMyria), "Myria");
  EXPECT_STREQ(SystemName(SystemId::kBigDatalog), "BigDatalog");
}

TEST(Systems, MonotonicClassification) {
  EXPECT_TRUE(IsMonotonicProgram(MustCompile("sssp")));
  EXPECT_TRUE(IsMonotonicProgram(MustCompile("viterbi")));
  EXPECT_FALSE(IsMonotonicProgram(MustCompile("pagerank")));
  EXPECT_FALSE(IsMonotonicProgram(MustCompile("katz")));
}

struct SystemCase {
  SystemId system;
  std::string program;
  double tolerance;
};

class ComparatorCorrectnessTest : public ::testing::TestWithParam<SystemCase> {};

TEST_P(ComparatorCorrectnessTest, ReachesTheReferenceFixpoint) {
  const auto& param = GetParam();
  Kernel k = MustCompile(param.program);
  auto g = SmallWeightedGraph(53);
  eval::EvalOptions ref_options;
  if (!IsMonotonicProgram(k)) ref_options.epsilon_override = 1e-8;
  auto reference = eval::NaiveEvaluate(k, g, ref_options);
  ASSERT_TRUE(reference.ok());
  RunConfig config = FastConfig();
  if (!IsMonotonicProgram(k)) config.epsilon_override = 1e-7;
  auto run = RunSystem(param.system, g, k, config, /*mra_satisfied=*/true);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_LE(MaxAbsDiff(reference->values, run->result.values), param.tolerance)
      << SystemName(param.system) << " via " << run->strategy;
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ComparatorCorrectnessTest,
    ::testing::Values(
        SystemCase{SystemId::kPowerLog, "sssp", 1e-12},
        SystemCase{SystemId::kPowerLog, "pagerank", 2e-2},
        SystemCase{SystemId::kSociaLite, "sssp", 1e-12},
        SystemCase{SystemId::kSociaLite, "pagerank", 1e-3},
        SystemCase{SystemId::kMyria, "sssp", 1e-12},
        SystemCase{SystemId::kMyria, "pagerank", 1e-3},
        SystemCase{SystemId::kBigDatalog, "sssp", 1e-12},
        SystemCase{SystemId::kBigDatalog, "cc", 1e-12},
        SystemCase{SystemId::kPowerGraph, "sssp", 1e-12},
        SystemCase{SystemId::kPowerGraph, "cc", 1e-12},
        SystemCase{SystemId::kMaiter, "pagerank", 2e-2},
        SystemCase{SystemId::kProm, "pagerank", 5e-2}),
    [](const ::testing::TestParamInfo<SystemCase>& info) {
      return std::string(SystemName(info.param.system)) + "_" + info.param.program;
    });

TEST(Systems, StrategiesMatchThePaper) {
  // Δ-stepping engages only on graphs with large weight variance (the
  // comparator tunes the bucket width to the weight scale).
  GraphBuilder heavy;
  heavy.AddEdge(0, 1, 1.0);
  heavy.AddEdge(1, 2, 200.0);
  heavy.AddEdge(0, 2, 150.0);
  auto g = std::move(heavy).Build(GraphBuilder::Options{}).ValueOrDie();
  RunConfig config = FastConfig();
  config.max_supersteps = 5;  // strategy check only, don't run long

  Kernel sssp = MustCompile("sssp");
  auto socialite = RunSystem(SystemId::kSociaLite, g, sssp, config, true);
  ASSERT_TRUE(socialite.ok());
  EXPECT_NE(socialite->strategy.find("Δ-stepping"), std::string::npos);
  // Low-variance weights: plain semi-naive sync.
  auto flat = GenerateGrid(4, true, 3);
  auto socialite_flat = RunSystem(SystemId::kSociaLite, flat, sssp, config, true);
  ASSERT_TRUE(socialite_flat.ok());
  EXPECT_EQ(socialite_flat->strategy.find("Δ-stepping"), std::string::npos);

  Kernel pagerank = MustCompile("pagerank");
  auto socialite_pr = RunSystem(SystemId::kSociaLite, flat, pagerank, config, true);
  ASSERT_TRUE(socialite_pr.ok());
  EXPECT_NE(socialite_pr->strategy.find("naive"), std::string::npos);

  auto myria_sssp = RunSystem(SystemId::kMyria, flat, sssp, config, true);
  ASSERT_TRUE(myria_sssp.ok());
  EXPECT_NE(myria_sssp->strategy.find("async"), std::string::npos);

  auto powerlog_pr = RunSystem(SystemId::kPowerLog, flat, pagerank, config, true);
  ASSERT_TRUE(powerlog_pr.ok());
  EXPECT_EQ(powerlog_pr->strategy, "MRA+sync-async");

  // A program failing the check drops PowerLog to naive evaluation.
  auto powerlog_naive = RunSystem(SystemId::kPowerLog, flat, pagerank, config, false);
  ASSERT_TRUE(powerlog_naive.ok());
  EXPECT_EQ(powerlog_naive->strategy, "naive+sync");
}

}  // namespace
}  // namespace powerlog::systems
