// End-to-end façade tests: Fig. 2's pipeline routing, across the catalog.
#include <gtest/gtest.h>

#include <cmath>

#include "datalog/catalog.h"
#include "eval/eval_common.h"
#include "eval/naive.h"
#include "powerlog/powerlog.h"
#include "test_util.h"

namespace powerlog {
namespace {

using eval::MaxAbsDiff;
using powerlog::testing::MustCompile;
using powerlog::testing::SmallDag;
using powerlog::testing::SmallWeightedGraph;

RunOptions FastOptions() {
  RunOptions options;
  options.engine.num_workers = 2;
  options.engine.network.instant = true;
  return options;
}

TEST(PowerLog, CheckOnly) {
  auto sssp = datalog::GetCatalogEntry("sssp");
  ASSERT_TRUE(sssp.ok());
  auto check = PowerLog::Check(sssp->source);
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check->satisfied);
  auto gcn = datalog::GetCatalogEntry("gcn_forward");
  ASSERT_TRUE(gcn.ok());
  auto check2 = PowerLog::Check(gcn->source);
  ASSERT_TRUE(check2.ok());
  EXPECT_FALSE(check2->satisfied);
}

TEST(PowerLog, SatisfiedProgramTakesMraPath) {
  auto sssp = datalog::GetCatalogEntry("sssp");
  ASSERT_TRUE(sssp.ok());
  auto g = SmallWeightedGraph(61);
  auto run = PowerLog::Run(sssp->source, g, FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->evaluation, "MRA");
  EXPECT_EQ(run->execution, "sync-async");
  Kernel k = MustCompile("sssp");
  auto reference = eval::NaiveEvaluate(k, g);
  ASSERT_TRUE(reference.ok());
  EXPECT_LE(MaxAbsDiff(reference->values, run->values), 1e-12);
}

TEST(PowerLog, UnsatisfiedProgramFallsBackToNaive) {
  auto gcn = datalog::GetCatalogEntry("gcn_forward");
  ASSERT_TRUE(gcn.ok());
  auto g = SmallDag(5);
  auto run = PowerLog::Run(gcn->source, g, FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->evaluation, "naive");
  EXPECT_EQ(run->execution, "sync");
  // The naive fallback must still compute GCN-Forward's real semantics.
  Kernel k = MustCompile("gcn_forward");
  auto reference = eval::NaiveEvaluate(k, g);
  ASSERT_TRUE(reference.ok());
  EXPECT_LE(MaxAbsDiff(reference->values, run->values), 1e-9);
}

TEST(PowerLog, MeanProgramUsesMultisetNaive) {
  auto commnet = datalog::GetCatalogEntry("commnet");
  ASSERT_TRUE(commnet.ok());
  auto g = GeneratePath(5);
  auto run = PowerLog::Run(commnet->source, g, FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->evaluation, "naive");
  EXPECT_FALSE(run->check.satisfied);
}

TEST(PowerLog, ModeOverride) {
  auto cc = datalog::GetCatalogEntry("cc");
  ASSERT_TRUE(cc.ok());
  auto g = SmallWeightedGraph(67);
  RunOptions options = FastOptions();
  options.engine.mode = runtime::ExecMode::kSync;
  auto run = PowerLog::Run(cc->source, g, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->execution, "sync");
}

TEST(PowerLog, SourceOverride) {
  auto sssp = datalog::GetCatalogEntry("sssp");
  ASSERT_TRUE(sssp.ok());
  auto g = GeneratePath(6, 1.0);
  RunOptions options = FastOptions();
  options.source = 3;
  auto run = PowerLog::Run(sssp->source, g, options);
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run->values[3], 0.0);
  EXPECT_DOUBLE_EQ(run->values[5], 2.0);
  EXPECT_TRUE(std::isinf(run->values[0]));  // behind the source
}

TEST(PowerLog, SourceOverrideRequiresSingleSourceProgram) {
  auto cc = datalog::GetCatalogEntry("cc");
  ASSERT_TRUE(cc.ok());
  auto g = GeneratePath(4);
  RunOptions options = FastOptions();
  options.source = 1;
  EXPECT_TRUE(PowerLog::Run(cc->source, g, options).status().IsInvalidArgument());
}

TEST(PowerLog, PrecompiledKernelServingPath) {
  auto sssp = datalog::GetCatalogEntry("sssp");
  ASSERT_TRUE(sssp.ok());
  auto kernel = PowerLog::Compile(sssp->source);
  ASSERT_TRUE(kernel.ok());
  auto g = SmallWeightedGraph(61);
  auto run = PowerLog::Run(*kernel, g, FastOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->evaluation, "MRA");
  EXPECT_NE(run->check.report.find("skipped"), std::string::npos);
  // Bit-identical to the full parse+check+run pipeline (min is exact).
  auto full = PowerLog::Run(sssp->source, g, FastOptions());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->values, run->values);
  // The façade-level source override applies on the serving path too.
  RunOptions options = FastOptions();
  options.source = 3;
  auto moved = PowerLog::Run(*kernel, g, options);
  ASSERT_TRUE(moved.ok());
  EXPECT_DOUBLE_EQ(moved->values[3], 0.0);
}

TEST(PowerLog, PrecompiledMeanKernelIsRejected) {
  // The serving path skips the condition check; the engine's own aggregate
  // gate is the backstop that keeps unsound programs out.
  auto commnet = datalog::GetCatalogEntry("commnet");
  ASSERT_TRUE(commnet.ok());
  auto kernel = PowerLog::Compile(commnet->source);
  ASSERT_TRUE(kernel.ok());
  auto g = GeneratePath(5);
  EXPECT_FALSE(PowerLog::Run(*kernel, g, FastOptions()).ok());
}

TEST(PowerLog, ParseErrorsPropagate) {
  auto g = GeneratePath(3);
  EXPECT_TRUE(PowerLog::Run("这 is not datalog", g, {}).status().IsParseError());
  EXPECT_FALSE(PowerLog::Run("f(X,v) :- X = 0, v = 1.", g, {}).ok());
}

TEST(PowerLog, CompileExposesKernel) {
  auto viterbi = datalog::GetCatalogEntry("viterbi");
  ASSERT_TRUE(viterbi.ok());
  auto k = PowerLog::Compile(viterbi->source);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k->agg, AggKind::kMax);
}

TEST(PowerLog, CheckOutcomeIsAttachedToRun) {
  auto pagerank = datalog::GetCatalogEntry("pagerank");
  ASSERT_TRUE(pagerank.ok());
  auto g = GenerateCycle(8);
  RunOptions options = FastOptions();
  options.engine.epsilon_override = 1e-10;
  auto run = PowerLog::Run(pagerank->source, g, options);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->check.satisfied);
  EXPECT_NE(run->check.report.find("Property 2"), std::string::npos);
  // Cycle fixpoint: exactly 1.0 per vertex.
  for (double v : run->values) EXPECT_NEAR(v, 1.0, 1e-6);
}

class CatalogEndToEndTest
    : public ::testing::TestWithParam<datalog::CatalogEntry> {};

TEST_P(CatalogEndToEndTest, RunsWithoutError) {
  const auto& entry = GetParam();
  // LCA/APSP/paths/viterbi/cost want DAG-shaped inputs; others any graph.
  Graph g = entry.aggregate == AggKind::kMin || entry.aggregate == AggKind::kMax ||
                    entry.name == "paths_dag" || entry.name == "cost"
                ? SmallDag(71)
                : SmallWeightedGraph(71);
  RunOptions options = FastOptions();
  options.engine.max_wall_seconds = 20.0;
  auto run = PowerLog::Run(entry.source, g, options);
  ASSERT_TRUE(run.ok()) << entry.name << ": " << run.status().ToString();
  EXPECT_EQ(run->values.size(), g.num_vertices());
  EXPECT_EQ(run->evaluation, entry.expected_mra_sat ? "MRA" : "naive");
}

INSTANTIATE_TEST_SUITE_P(Catalog, CatalogEndToEndTest,
                         ::testing::ValuesIn(datalog::ProgramCatalog()),
                         [](const ::testing::TestParamInfo<datalog::CatalogEntry>&
                                info) { return info.param.name; });

}  // namespace
}  // namespace powerlog
