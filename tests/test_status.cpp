#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace powerlog {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad thing");
}

TEST(Status, AllFactoriesMapToPredicates) {
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::ConditionViolated("x").IsConditionViolated());
}

TEST(Status, CopyIsCheapAndShared) {
  Status a = Status::IOError("disk");
  Status b = a;
  EXPECT_TRUE(b.IsIOError());
  EXPECT_EQ(b.message(), "disk");
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTimeout), "Timeout");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kConditionViolated),
               "Condition violated");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(Result, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailingHelper() { return Status::Timeout("slow"); }

Status PropagationDemo() {
  POWERLOG_RETURN_NOT_OK(FailingHelper());
  return Status::Internal("should not reach");
}

TEST(Status, ReturnNotOkMacroPropagates) {
  Status s = PropagationDemo();
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
}

Result<int> ProducerOk() { return 5; }

Status AssignOrReturnDemo(int* out) {
  POWERLOG_ASSIGN_OR_RETURN(int v, ProducerOk());
  *out = v;
  return Status::OK();
}

TEST(Status, AssignOrReturnMacroBinds) {
  int out = 0;
  ASSERT_TRUE(AssignOrReturnDemo(&out).ok());
  EXPECT_EQ(out, 5);
}

}  // namespace
}  // namespace powerlog
