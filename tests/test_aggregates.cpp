#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "common/random.h"
#include "core/aggregates.h"

namespace powerlog {
namespace {

class FoldableAggregateTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(FoldableAggregateTest, IdentityIsNeutral) {
  Aggregator agg(GetParam());
  auto id = agg.Identity();
  ASSERT_TRUE(id.ok());
  for (double v : {-3.0, 0.0, 2.5, 1e9}) {
    EXPECT_DOUBLE_EQ(*agg.Combine(*id, v), v);
    EXPECT_DOUBLE_EQ(*agg.Combine(v, *id), v);
  }
  EXPECT_TRUE(agg.IsIdentity(*id));
  EXPECT_FALSE(agg.IsIdentity(1.0));
}

TEST_P(FoldableAggregateTest, CommutativeAssociativeSweep) {
  Aggregator agg(GetParam());
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.NextDouble(-10, 10);
    const double b = rng.NextDouble(-10, 10);
    const double c = rng.NextDouble(-10, 10);
    EXPECT_DOUBLE_EQ(*agg.Combine(a, b), *agg.Combine(b, a));
    EXPECT_NEAR(*agg.Combine(*agg.Combine(a, b), c),
                *agg.Combine(a, *agg.Combine(b, c)), 1e-12);
  }
}

TEST_P(FoldableAggregateTest, InverseDerivesDelta) {
  // G(X⁰ ∪ ΔX¹) == X¹ where ΔX¹ = G⁻(X¹, X⁰) (§3.3).
  Aggregator agg(GetParam());
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.NextDouble(-5, 5);
    double x1 = rng.NextDouble(-5, 5);
    if (GetParam() == AggKind::kMin) x1 = std::min(x1, x0);
    if (GetParam() == AggKind::kMax) x1 = std::max(x1, x0);
    const double delta = *agg.Inverse(x1, x0);
    EXPECT_NEAR(*agg.Combine(x0, delta), x1, 1e-12);
  }
}

TEST_P(FoldableAggregateTest, AtomicCombineMatchesSequential) {
  const AggKind kind = GetParam();
  Aggregator agg(kind);
  Rng rng(31);
  std::vector<double> values(5000);
  for (double& v : values) v = rng.NextDouble(-100, 100);

  double sequential = *agg.Identity();
  for (double v : values) sequential = *agg.Combine(sequential, v);

  std::atomic<double> slot{*agg.Identity()};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < values.size(); i += kThreads) {
        AtomicCombine(&slot, values[i], kind);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_NEAR(slot.load(), sequential, 1e-7 * (1 + std::abs(sequential)));
}

INSTANTIATE_TEST_SUITE_P(AllFoldable, FoldableAggregateTest,
                         ::testing::Values(AggKind::kMin, AggKind::kMax,
                                           AggKind::kSum, AggKind::kCount),
                         [](const ::testing::TestParamInfo<AggKind>& info) {
                           return AggKindName(info.param);
                         });

TEST(Aggregates, MeanHasNoIncrementalInterface) {
  Aggregator agg(AggKind::kMean);
  EXPECT_TRUE(agg.Identity().status().IsNotSupported());
  EXPECT_TRUE(agg.Combine(1, 2).status().IsNotSupported());
  EXPECT_TRUE(agg.Inverse(1, 2).status().IsNotSupported());
}

TEST(Aggregates, MultisetSemantics) {
  EXPECT_DOUBLE_EQ(*AggregateMultiset(AggKind::kMin, {3, 1, 2}), 1);
  EXPECT_DOUBLE_EQ(*AggregateMultiset(AggKind::kMax, {3, 1, 2}), 3);
  EXPECT_DOUBLE_EQ(*AggregateMultiset(AggKind::kSum, {3, 1, 2}), 6);
  EXPECT_DOUBLE_EQ(*AggregateMultiset(AggKind::kCount, {3, 1, 2}), 6);
  EXPECT_DOUBLE_EQ(*AggregateMultiset(AggKind::kMean, {3, 1, 2}), 2);
  EXPECT_TRUE(AggregateMultiset(AggKind::kSum, {}).status().IsInvalidArgument());
}

TEST(Aggregates, MeanViolatesPairwiseFolding) {
  // The reason mean fails Table 1: folding pairwise gives a different answer
  // than the true multiset mean.
  const std::vector<double> values{1, 2, 9};
  const double true_mean = *AggregateMultiset(AggKind::kMean, values);
  const double folded = ((1.0 + 2.0) / 2 + 9.0) / 2;
  EXPECT_NE(true_mean, folded);
}

TEST(Aggregates, ImprovesSemantics) {
  Aggregator mn(AggKind::kMin);
  EXPECT_TRUE(mn.Improves(5, 3));
  EXPECT_FALSE(mn.Improves(3, 5));
  EXPECT_FALSE(mn.Improves(3, 3));
  Aggregator mx(AggKind::kMax);
  EXPECT_TRUE(mx.Improves(3, 5));
  EXPECT_FALSE(mx.Improves(5, 3));
  Aggregator sm(AggKind::kSum);
  EXPECT_TRUE(sm.Improves(0, 0.1));
  EXPECT_TRUE(sm.Improves(0, -0.1));
  EXPECT_FALSE(sm.Improves(7, 0));
}

TEST(Aggregates, AtomicExchangeReturnsPrevious) {
  std::atomic<double> slot{2.5};
  EXPECT_DOUBLE_EQ(AtomicExchange(&slot, 7.0), 2.5);
  EXPECT_DOUBLE_EQ(slot.load(), 7.0);
}

TEST(Aggregates, MinAtomicCombineEarlyOut) {
  std::atomic<double> slot{1.0};
  AtomicCombine(&slot, 5.0, AggKind::kMin);  // no-op
  EXPECT_DOUBLE_EQ(slot.load(), 1.0);
  AtomicCombine(&slot, 0.5, AggKind::kMin);
  EXPECT_DOUBLE_EQ(slot.load(), 0.5);
}

}  // namespace
}  // namespace powerlog
