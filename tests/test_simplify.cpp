#include <gtest/gtest.h>

#include "smt/simplify.h"

namespace powerlog::smt {
namespace {

TEST(Simplify, ConstantFolding) {
  auto t = Simplify(Add(ConstInt(2), Mul(ConstInt(3), ConstInt(4))));
  ASSERT_EQ(t->op, Op::kConst);
  EXPECT_EQ(t->value, Rational(14, 1));
}

TEST(Simplify, IdentityElimination) {
  EXPECT_TRUE(Simplify(Add(Var("x"), ConstInt(0)))->Equals(*Var("x")));
  EXPECT_TRUE(Simplify(Add(ConstInt(0), Var("x")))->Equals(*Var("x")));
  EXPECT_TRUE(Simplify(Mul(Var("x"), ConstInt(1)))->Equals(*Var("x")));
  EXPECT_TRUE(Simplify(Sub(Var("x"), ConstInt(0)))->Equals(*Var("x")));
  EXPECT_TRUE(Simplify(Div(Var("x"), ConstInt(1)))->Equals(*Var("x")));
}

TEST(Simplify, MulByZeroOnlyWhenTotal) {
  // x*0 -> 0 is safe, (1/y)*0 is not (y might be 0).
  auto zeroed = Simplify(Mul(Var("x"), ConstInt(0)));
  ASSERT_EQ(zeroed->op, Op::kConst);
  EXPECT_TRUE(zeroed->value.IsZero());
  auto guarded = Simplify(Mul(Div(ConstInt(1), Var("y")), ConstInt(0)));
  EXPECT_EQ(guarded->op, Op::kMul);  // preserved
}

TEST(Simplify, DoubleNegation) {
  EXPECT_TRUE(Simplify(Neg(Neg(Var("x"))))->Equals(*Var("x")));
}

TEST(Simplify, MinMaxIdempotent) {
  EXPECT_TRUE(Simplify(Min(Var("x"), Var("x")))->Equals(*Var("x")));
  EXPECT_TRUE(Simplify(Max(Var("x"), Var("x")))->Equals(*Var("x")));
}

TEST(Simplify, ConstantLattice) {
  EXPECT_EQ(Simplify(Min(ConstInt(2), ConstInt(5)))->value, Rational(2, 1));
  EXPECT_EQ(Simplify(Max(ConstInt(2), ConstInt(5)))->value, Rational(5, 1));
  EXPECT_EQ(Simplify(Relu(ConstInt(-3)))->value, Rational(0, 1));
  EXPECT_EQ(Simplify(Relu(ConstInt(3)))->value, Rational(3, 1));
  EXPECT_EQ(Simplify(Abs(ConstInt(-3)))->value, Rational(3, 1));
}

TEST(Simplify, ComparisonFolding) {
  EXPECT_EQ(Simplify(Lt(ConstInt(1), ConstInt(2)))->value, Rational(1, 1));
  EXPECT_EQ(Simplify(Le(ConstInt(2), ConstInt(2)))->value, Rational(1, 1));
  EXPECT_EQ(Simplify(EqTerm(ConstInt(1), ConstInt(2)))->value, Rational(0, 1));
}

TEST(Simplify, IteResolution) {
  auto taken = Simplify(Ite(ConstInt(1), Var("a"), Var("b")));
  EXPECT_TRUE(taken->Equals(*Var("a")));
  auto untaken = Simplify(Ite(ConstInt(0), Var("a"), Var("b")));
  EXPECT_TRUE(untaken->Equals(*Var("b")));
  auto same = Simplify(Ite(Var("c"), Var("a"), Var("a")));
  EXPECT_TRUE(same->Equals(*Var("a")));
}

TEST(Simplify, KeepsDivisionByZeroVisible) {
  auto t = Simplify(Div(ConstInt(1), ConstInt(0)));
  EXPECT_EQ(t->op, Op::kDiv);
}

TEST(Simplify, PreservesSemantics) {
  // Random-ish compound; simplified form must evaluate identically.
  auto t = Add(Mul(Add(Var("x"), ConstInt(0)), ConstInt(1)),
               Min(Neg(Neg(Var("y"))), Var("y")));
  auto s = Simplify(t);
  std::map<std::string, double> env{{"x", 2.5}, {"y", -1.25}};
  EXPECT_DOUBLE_EQ(*Evaluate(t, env), *Evaluate(s, env));
  EXPECT_LE(s->Size(), t->Size());
}

}  // namespace
}  // namespace powerlog::smt
