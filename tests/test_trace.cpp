// Observability-plane tests: event-ring semantics (wraparound, drop
// accounting, concurrent snapshots), disabled-tracer no-ops, Chrome
// trace-export well-formedness, end-to-end engine tracing with Send→Receive
// flows, the convergence-timeline series, the Prometheus text renderer, and
// a live HTTP exposition smoke test against a running async engine.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "datalog/catalog.h"
#include "graph/builder.h"
#include "powerlog/serving.h"
#include "runtime/engine.h"
#include "runtime/exposition.h"
#include "test_util.h"

namespace powerlog {
namespace {

using powerlog::testing::MustCompile;
using powerlog::testing::SmallWeightedGraph;

// ---------------------------------------------------------------------------
// EventRing semantics.

TEST(EventRing, KeepsNewestAndCountsDropped) {
  trace::EventRing ring(64);  // minimum capacity
  ASSERT_EQ(ring.capacity(), 64u);
  for (int i = 0; i < 200; ++i) {
    ring.Emit(trace::EventType::kInstant, "e", static_cast<double>(i));
  }
  auto snap = ring.TakeSnapshot();
  // Post-wrap, the snapshot keeps capacity-1 events: the oldest slot aliases
  // the writer's next write target, so it is conservatively discarded (see
  // TakeSnapshot). The ring's own dropped() counts actual overwrites only.
  EXPECT_EQ(snap.events.size(), 63u);
  EXPECT_EQ(snap.dropped, 200 - 63);
  EXPECT_EQ(ring.dropped(), 200 - 64);
  // The surviving window is the newest 63 events, oldest-to-newest.
  for (size_t i = 0; i < snap.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(snap.events[i].value, 137.0 + static_cast<double>(i));
    EXPECT_STREQ(snap.events[i].name, "e");
    if (i > 0) {
      EXPECT_GE(snap.events[i].ts_us, snap.events[i - 1].ts_us);
    }
  }
}

TEST(EventRing, NoDropsBelowCapacity) {
  trace::EventRing ring(128);
  for (int i = 0; i < 100; ++i) {
    ring.Emit(trace::EventType::kCounter, "c", i);
  }
  auto snap = ring.TakeSnapshot();
  EXPECT_EQ(snap.events.size(), 100u);
  EXPECT_EQ(snap.dropped, 0);
}

TEST(EventRing, RoundsCapacityToPowerOfTwo) {
  trace::EventRing ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
  trace::EventRing tiny(1);
  EXPECT_EQ(tiny.capacity(), 64u);
}

// The seqlock contract: a snapshot taken while the writer is mid-wrap must
// never surface a torn event. With monotonically increasing values, any
// tear would show up as out-of-order or duplicated values inside one
// snapshot. TSan (POWERLOG_SANITIZE=thread, `ctest -L concurrency`) checks
// the relaxed-atomic discipline on the same code path.
TEST(EventRing, ConcurrentSnapshotsSeeConsistentWindow) {
  trace::EventRing ring(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    double v = 0.0;
    while (!stop.load(std::memory_order_acquire)) {
      ring.Emit(trace::EventType::kCounter, "c", v);
      v += 1.0;
    }
  });
  for (int iter = 0; iter < 2000; ++iter) {
    auto snap = ring.TakeSnapshot();
    ASSERT_LE(snap.events.size(), ring.capacity());
    for (size_t i = 1; i < snap.events.size(); ++i) {
      // Strictly increasing by exactly 1: any torn copy breaks this.
      ASSERT_DOUBLE_EQ(snap.events[i].value, snap.events[i - 1].value + 1.0);
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

// Two writer threads (one ring each — the ring itself is single-writer by
// contract) hammered by a reader snapshotting through the Tracer registry,
// the exact shape of a /trace scrape against a live run.
TEST(EventRing, TwoWritersOneReaderHammer) {
  trace::Tracer tracer(64);
  std::atomic<bool> stop{false};
  auto writer = [&](const char* ring_name) {
    tracer.RegisterCurrentThread(ring_name);
    trace::EventRing* ring = trace::Tracer::Current();
    double v = 0.0;
    while (!stop.load(std::memory_order_acquire)) {
      ring->Emit(trace::EventType::kCounter, "c", v);
      v += 1.0;
    }
    trace::Tracer::UnregisterCurrentThread();
  };
  std::thread w0(writer, "w0");
  std::thread w1(writer, "w1");
  // Collect violations and assert only after the writers are joined — a
  // mid-loop ASSERT would return with joinable threads live.
  int order_violations = 0;
  std::string bad_json;
  for (int iter = 0; iter < 1000 && bad_json.empty(); ++iter) {
    for (const auto& named : tracer.rings()) {
      auto snap = named.ring->TakeSnapshot();
      if (snap.events.size() > named.ring->capacity()) ++order_violations;
      for (size_t i = 1; i < snap.events.size(); ++i) {
        if (snap.events[i].value != snap.events[i - 1].value + 1.0) {
          ++order_violations;  // a torn copy escaped the seqlock validation
        }
      }
    }
    const std::string json = trace::ExportChromeTrace(tracer);
    if (!metrics::JsonValue::Parse(json).ok()) bad_json = json;
  }
  stop.store(true, std::memory_order_release);
  w0.join();
  w1.join();
  EXPECT_EQ(order_violations, 0);
  EXPECT_TRUE(bad_json.empty()) << bad_json.substr(0, 500);
  EXPECT_GE(tracer.TotalDropped(), 0);
}

// ---------------------------------------------------------------------------
// Tracer registry, span guards, disabled-path no-ops.

TEST(Tracer, DisabledPathIsANoOp) {
  // No tracer, no registration: every primitive must be inert.
  { trace::SpanGuard span(nullptr, "nope"); }
  trace::Instant(nullptr, "nope");
  trace::CounterSample(nullptr, "nope", 1.0);
  EXPECT_EQ(trace::Tracer::Current(), nullptr);

  // Tracer present but this thread never registered: still inert.
  trace::Tracer tracer(64);
  { trace::SpanGuard span(&tracer, "nope"); }
  trace::Instant(&tracer, "nope");
  EXPECT_TRUE(tracer.rings().empty());
  EXPECT_EQ(tracer.TotalDropped(), 0);
}

TEST(Tracer, RegistrationReusesRingsByName) {
  trace::Tracer tracer(64);
  trace::EventRing* a = tracer.RegisterCurrentThread("alpha");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(trace::Tracer::Current(), a);
  EXPECT_EQ(tracer.RegisterCurrentThread("alpha"), a);  // reuse
  trace::EventRing* b = tracer.RegisterCurrentThread("beta");
  EXPECT_NE(b, a);
  ASSERT_EQ(tracer.rings().size(), 2u);
  EXPECT_EQ(tracer.rings()[0].name, "alpha");
  EXPECT_EQ(tracer.rings()[1].name, "beta");
  trace::Tracer::UnregisterCurrentThread();
  EXPECT_EQ(trace::Tracer::Current(), nullptr);
}

TEST(Tracer, FlowIdsAreFreshAndNonZero) {
  trace::Tracer tracer(64);
  std::set<uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = tracer.NextFlowId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

// ---------------------------------------------------------------------------
// Chrome export: nesting repair and JSON well-formedness.

// Walks exported traceEvents checking B/E stack discipline per (pid, tid).
void CheckWellNested(const metrics::JsonValue& doc) {
  const auto* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind(), metrics::JsonValue::Kind::kArray);
  std::map<double, int> depth;
  for (const auto& e : events->array()) {
    const auto* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    const std::string& kind = ph->string_value();
    const auto* tid = e.Find("tid");
    ASSERT_NE(tid, nullptr);
    if (kind == "B") {
      ++depth[tid->number()];
    } else if (kind == "E") {
      ASSERT_GT(depth[tid->number()], 0)
          << "unmatched E escaped the exporter";
      --depth[tid->number()];
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
  }
}

TEST(ChromeExport, RepairsBeheadedAndUnclosedSpans) {
  trace::Tracer tracer(64);
  trace::EventRing* ring = tracer.RegisterCurrentThread("t0");
  // An orphaned end (as wraparound produces when it beheads a span), a
  // well-formed pair, and an unclosed begin.
  ring->Emit(trace::EventType::kSpanEnd, "beheaded", 0.0);
  ring->Emit(trace::EventType::kSpanBegin, "ok", 0.0);
  ring->Emit(trace::EventType::kSpanEnd, "ok", 0.0);
  ring->Emit(trace::EventType::kSpanBegin, "unclosed", 0.0);
  const std::string json = trace::ExportChromeTrace(tracer);
  trace::Tracer::UnregisterCurrentThread();

  auto doc = metrics::JsonValue::Parse(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << json;
  CheckWellNested(*doc);

  // Both spans survive; the orphaned end does not.
  EXPECT_NE(json.find("\"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"unclosed\""), std::string::npos);
  EXPECT_EQ(json.find("\"beheaded\""), std::string::npos);
}

TEST(ChromeExport, EmitsMetadataCountersFlowsAndInstants) {
  trace::Tracer tracer(64);
  trace::EventRing* ring = tracer.RegisterCurrentThread("worker0");
  ring->Emit(trace::EventType::kCounter, "beta", 0.25);
  ring->Emit(trace::EventType::kInstant, "stall", 3.0);
  ring->Emit(trace::EventType::kFlowSend, "msg", 7.0);
  ring->Emit(trace::EventType::kFlowRecv, "msg", 7.0);
  const std::string json = trace::ExportChromeTrace(tracer);
  trace::Tracer::UnregisterCurrentThread();

  auto doc = metrics::JsonValue::Parse(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString() << "\n" << json;

  bool saw_thread_name = false, saw_counter = false;
  bool saw_flow_s = false, saw_flow_f = false, saw_instant = false;
  for (const auto& e : doc->Find("traceEvents")->array()) {
    const std::string& ph = e.Find("ph")->string_value();
    if (ph == "M") {
      const auto* name = e.Find("name");
      if (name != nullptr && name->string_value() == "thread_name") {
        saw_thread_name = true;
      }
    } else if (ph == "C") {
      saw_counter = true;
      const auto* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_DOUBLE_EQ(args->Find("value")->number(), 0.25);
    } else if (ph == "s") {
      saw_flow_s = true;
      EXPECT_DOUBLE_EQ(e.Find("id")->number(), 7.0);
    } else if (ph == "f") {
      saw_flow_f = true;
      EXPECT_DOUBLE_EQ(e.Find("id")->number(), 7.0);
    } else if (ph == "i") {
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_flow_s);
  EXPECT_TRUE(saw_flow_f);
  EXPECT_TRUE(saw_instant);
}

// ---------------------------------------------------------------------------
// End-to-end: a traced engine run produces a valid, populated trace.

runtime::EngineResult TracedRun(runtime::ExecMode mode) {
  Kernel k = MustCompile("sssp");
  Graph g = SmallWeightedGraph();
  runtime::EngineOptions options;
  options.mode = mode;
  options.num_workers = 4;
  options.network.instant = true;
  options.max_wall_seconds = 30.0;
  options.trace = true;
  runtime::Engine engine(g, k, options);
  auto run = engine.Run();
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  return std::move(run).ValueOrDie();
}

TEST(EngineTrace, AsyncRunExportsSpansAndFlows) {
  auto run = TracedRun(runtime::ExecMode::kAsync);
  ASSERT_FALSE(run.chrome_trace.empty());
  auto doc = metrics::JsonValue::Parse(run.chrome_trace);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  CheckWellNested(*doc);

  std::set<std::string> span_names;
  std::set<double> flow_sends, flow_recvs;
  size_t thread_rows = 0;
  for (const auto& e : doc->Find("traceEvents")->array()) {
    const std::string& ph = e.Find("ph")->string_value();
    if (ph == "B") span_names.insert(e.Find("name")->string_value());
    if (ph == "s") flow_sends.insert(e.Find("id")->number());
    if (ph == "f") flow_recvs.insert(e.Find("id")->number());
    if (ph == "M" && e.Find("name")->string_value() == "thread_name") {
      ++thread_rows;
    }
  }
  // 4 workers + supervisor + termination controller.
  EXPECT_GE(thread_rows, 5u);
  EXPECT_TRUE(span_names.count("sweep")) << run.chrome_trace.substr(0, 400);
  EXPECT_TRUE(span_names.count("flush"));
  EXPECT_TRUE(span_names.count("superstep"));  // async: termination checks
  // At least one Send→Receive arrow with matching id on both sides.
  bool matched = false;
  for (double id : flow_sends) {
    if (flow_recvs.count(id)) matched = true;
  }
  EXPECT_TRUE(matched) << "no Send flow matched a Receive flow";
}

TEST(EngineTrace, SyncRunExportsSuperstepAndBarrierSpans) {
  auto run = TracedRun(runtime::ExecMode::kSync);
  ASSERT_FALSE(run.chrome_trace.empty());
  auto doc = metrics::JsonValue::Parse(run.chrome_trace);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  CheckWellNested(*doc);
  EXPECT_NE(run.chrome_trace.find("\"superstep\""), std::string::npos);
  EXPECT_NE(run.chrome_trace.find("\"barrier\""), std::string::npos);
}

TEST(EngineTrace, DisabledRunProducesNoTrace) {
  Kernel k = MustCompile("sssp");
  Graph g = SmallWeightedGraph();
  runtime::EngineOptions options;
  options.mode = runtime::ExecMode::kAsync;
  options.num_workers = 2;
  options.network.instant = true;
  options.max_wall_seconds = 30.0;
  runtime::Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->chrome_trace.empty());
}

// ---------------------------------------------------------------------------
// Convergence timeline.

TEST(EngineTrace, TimelineSeriesRecorded) {
  Kernel k = MustCompile("sssp");
  Graph g = SmallWeightedGraph();
  runtime::EngineOptions options;
  options.mode = runtime::ExecMode::kAsync;
  options.num_workers = 2;
  options.network.instant = true;
  options.max_wall_seconds = 30.0;
  options.record_trace = true;
  options.collect_metrics = true;
  runtime::Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_FALSE(run->trace.empty());

  // The extended sample fields are populated.
  const auto& last = run->trace.back();
  EXPECT_EQ(last.worker_beta.size(), 2u);
  EXPECT_GE(last.frontier_occupancy, 0.0);
  EXPECT_LE(last.frontier_occupancy, 1.0);

  std::set<std::string> series_names;
  for (const auto& [name, points] : run->metrics.series) {
    series_names.insert(name);
    EXPECT_FALSE(points.empty()) << name;
  }
  EXPECT_TRUE(series_names.count("timeline.global_aggregate"));
  EXPECT_TRUE(series_names.count("timeline.pending_mass"));
  EXPECT_TRUE(series_names.count("timeline.inflight_updates"));
  EXPECT_TRUE(series_names.count("timeline.frontier_occupancy"));
  EXPECT_TRUE(series_names.count("timeline.beta.w0"));
  EXPECT_TRUE(series_names.count("timeline.beta.w1"));
}

// ---------------------------------------------------------------------------
// Prometheus text renderer.

TEST(Exposition, PrometheusTextFormat) {
  metrics::MetricsSnapshot snap;
  snap.AddCounter("engine.harvests", 42);
  snap.AddGauge("engine.elapsed seconds", 1.5);  // space must sanitise to _
  metrics::HistogramSnapshot hist;
  hist.bounds = {1.0, 10.0};
  hist.counts = {3, 2, 1};  // per-bucket, last = overflow
  hist.count = 6;
  hist.sum = 25.0;
  snap.AddHistogram("bus.latency", hist);

  const std::string text = PrometheusText(snap);
  EXPECT_NE(text.find("# TYPE powerlog_engine_harvests counter\n"
                      "powerlog_engine_harvests 42\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("powerlog_engine_elapsed_seconds 1.5\n"),
            std::string::npos)
      << text;
  // Buckets are cumulative; +Inf carries the total count.
  EXPECT_NE(text.find("powerlog_bus_latency_bucket{le=\"1\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("powerlog_bus_latency_bucket{le=\"10\"} 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("powerlog_bus_latency_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("powerlog_bus_latency_sum 25\n"), std::string::npos);
  EXPECT_NE(text.find("powerlog_bus_latency_count 6\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HTTP exposition server.

// Minimal blocking HTTP GET against 127.0.0.1:port; returns the full
// response (headers + body), or "" on connect failure.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t w = ::write(fd, request.data() + off, request.size() - off);
    if (w <= 0) break;
    off += static_cast<size_t>(w);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

TEST(Exposition, ServesHealthzAndDetachedStates) {
  ExpositionServer server;
  auto port = server.Start(0);  // ephemeral
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  ASSERT_GT(*port, 0);

  EXPECT_NE(HttpGet(*port, "/healthz").find("200 OK"), std::string::npos);
  EXPECT_EQ(Body(HttpGet(*port, "/healthz")), "ok\n");
  // No run attached yet.
  EXPECT_NE(HttpGet(*port, "/metrics").find("503"), std::string::npos);
  EXPECT_NE(HttpGet(*port, "/trace").find("404"), std::string::npos);
  EXPECT_NE(HttpGet(*port, "/nope").find("404"), std::string::npos);

  metrics::MetricsSnapshot snap;
  snap.AddCounter("demo", 1);
  server.SetSources([snap] { return snap; }, nullptr);
  EXPECT_NE(Body(HttpGet(*port, "/metrics")).find("powerlog_demo 1"),
            std::string::npos);
  auto parsed = metrics::JsonValue::Parse(Body(HttpGet(*port, "/metrics.json")));
  EXPECT_TRUE(parsed.ok());
  server.ClearSources();
  EXPECT_NE(HttpGet(*port, "/metrics").find("503"), std::string::npos);

  server.Stop();
  server.Stop();  // idempotent
  EXPECT_TRUE(HttpGet(*port, "/healthz").empty());
}

// ---------------------------------------------------------------------------
// Serving-plane tracing: one HTTP /run renders as a single connected span
// tree — request span + admission/queue/exec phases on the handler thread's
// ring, the engine's worker/supervisor rings under a per-query tag, and a
// query.run flow arrow linking the two planes.

TEST(ServingTrace, HttpRunExportsConnectedSpanTree) {
  serving::ServingOptions options;
  options.engine.num_workers = 2;
  options.engine.network.instant = true;
  options.engine.mode = runtime::ExecMode::kSync;
  options.trace = true;

  serving::ServingCatalog catalog(options);
  auto sssp = datalog::GetCatalogEntry("sssp");
  ASSERT_TRUE(sssp.ok());
  GraphBuilder b;
  b.EnsureVertices(32);
  for (VertexId v = 0; v + 1 < 32; ++v) b.AddEdge(v, v + 1, 1.0);
  ASSERT_TRUE(catalog
                  .MaterializeSource(
                      "sssp", "chain", sssp->source,
                      std::move(b).Build(GraphBuilder::Options{}).ValueOrDie())
                  .ok());

  ExpositionServer server;
  server.SetHandler(serving::MakeServingHandler(&catalog));
  server.SetSources([&catalog] { return catalog.Metrics(); },
                    [&catalog] { return catalog.TraceJson(); });
  auto port = server.Start(0, /*handler_threads=*/2);
  ASSERT_TRUE(port.ok());

  // One real engine run through the HTTP front door (nocache: it must
  // execute, not answer from the result cache).
  const std::string run = Body(
      HttpGet(*port, "/run?program=sssp&dataset=chain&source=1&nocache=1"));
  EXPECT_NE(run.find("\"converged\":true"), std::string::npos) << run;

  const std::string trace = Body(HttpGet(*port, "/trace"));
  server.Stop();
  ASSERT_NE(trace.find("traceEvents"), std::string::npos);
  auto doc = metrics::JsonValue::Parse(trace);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  CheckWellNested(*doc);

  std::set<std::string> span_names, ring_names;
  std::set<double> run_flow_sends, run_flow_recvs;
  for (const auto& e : doc->Find("traceEvents")->array()) {
    const std::string& ph = e.Find("ph")->string_value();
    if (ph == "B") span_names.insert(e.Find("name")->string_value());
    if (ph == "M" && e.Find("name")->string_value() == "thread_name") {
      ring_names.insert(e.Find("args")->Find("name")->string_value());
    }
    if (ph == "s" && e.Find("name")->string_value() == "query.run") {
      run_flow_sends.insert(e.Find("id")->number());
    }
    if (ph == "f" && e.Find("name")->string_value() == "query.run") {
      run_flow_recvs.insert(e.Find("id")->number());
    }
  }
  // The serving-side request phases...
  EXPECT_TRUE(span_names.count("serving.request.run"))
      << trace.substr(0, 400);
  EXPECT_TRUE(span_names.count("serving.queue"));
  EXPECT_TRUE(span_names.count("serving.exec"));
  // ...and the engine plane in the same export, under per-query ring tags.
  bool saw_serving_ring = false, saw_tagged_worker = false;
  for (const auto& name : ring_names) {
    if (name.rfind("serving.h", 0) == 0) saw_serving_ring = true;
    if (name.rfind("worker", 0) == 0 &&
        name.find(".q") != std::string::npos) {
      saw_tagged_worker = true;
    }
  }
  EXPECT_TRUE(saw_serving_ring);
  EXPECT_TRUE(saw_tagged_worker);
  // The request arrow: a query.run send matched by a worker-side receive.
  bool matched = false;
  for (double id : run_flow_sends) {
    if (run_flow_recvs.count(id)) matched = true;
  }
  EXPECT_TRUE(matched) << "serving FlowSend never met the worker FlowRecv";
}

// End-to-end smoke: scrape a *live* async run. A hang fault keeps worker 0
// busy long enough that the scrape window is deterministic; the run then
// recovers and converges on its own.
TEST(Exposition, ServesLiveRunMetrics) {
  ExpositionServer server;
  auto port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  Kernel k = MustCompile("sssp");
  Graph g = SmallWeightedGraph();
  runtime::EngineOptions options;
  options.mode = runtime::ExecMode::kAsync;
  options.num_workers = 4;
  options.network.instant = true;
  options.max_wall_seconds = 30.0;
  options.trace = true;
  options.exposition = &server;
  options.fault.hang_worker = 0;
  options.fault.hang_at_beats = 5;
  options.fault.hang_duration_us = 1500000;  // 1.5 s scrape window

  std::atomic<bool> done{false};
  Result<runtime::EngineResult> run = Status::Internal("not started");
  std::thread runner([&] {
    runtime::Engine engine(g, k, options);
    run = engine.Run();
    done.store(true, std::memory_order_release);
  });

  // Poll until a scrape sees live engine metrics or the run ends. /healthz
  // must answer regardless.
  bool saw_live_metrics = false, saw_trace = false;
  while (!done.load(std::memory_order_acquire)) {
    EXPECT_EQ(Body(HttpGet(*port, "/healthz")), "ok\n");
    const std::string metrics_body = Body(HttpGet(*port, "/metrics"));
    if (metrics_body.find("powerlog_engine_harvests") != std::string::npos) {
      saw_live_metrics = true;
      auto json = metrics::JsonValue::Parse(Body(HttpGet(*port,
                                                         "/metrics.json")));
      EXPECT_TRUE(json.ok());
      const std::string trace_body = Body(HttpGet(*port, "/trace"));
      if (!trace_body.empty() &&
          trace_body.find("traceEvents") != std::string::npos) {
        auto trace_json = metrics::JsonValue::Parse(trace_body);
        EXPECT_TRUE(trace_json.ok());
        saw_trace = true;
      }
      if (saw_trace) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  runner.join();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(saw_live_metrics) << "run finished before a scrape landed";
  EXPECT_TRUE(saw_trace);

  // Detached after the run: sources are cleared, server still healthy.
  EXPECT_NE(HttpGet(*port, "/metrics").find("503"), std::string::npos);
  EXPECT_EQ(Body(HttpGet(*port, "/healthz")), "ok\n");
  server.Stop();
}

}  // namespace
}  // namespace powerlog
