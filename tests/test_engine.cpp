// Theorem 3 property tests: every execution mode of the unified engine must
// reach the same fixpoint as the single-node naive reference, for every
// MRA-satisfying program, under real thread interleavings.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/eval_common.h"
#include "eval/naive.h"
#include "runtime/engine.h"
#include "test_util.h"

namespace powerlog::runtime {
namespace {

using eval::MaxAbsDiff;
using powerlog::testing::MustCompile;
using powerlog::testing::SmallDag;
using powerlog::testing::SmallWeightedGraph;

struct EngineCase {
  std::string program;
  std::string graph;
  ExecMode mode;
  uint32_t workers;
  double tolerance;
};

Graph GraphByName(const std::string& name) {
  if (name == "dag") return SmallDag();
  if (name == "grid") return GenerateGrid(8, /*weighted=*/true, 9);
  if (name == "star") return GenerateStar(64);
  return SmallWeightedGraph();
}

class EngineModesTest : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineModesTest, MatchesNaiveReference) {
  const auto& param = GetParam();
  Kernel k = MustCompile(param.program);
  Graph g = GraphByName(param.graph);

  eval::EvalOptions ref_options;
  ref_options.max_iterations = 2000;
  if (k.agg == AggKind::kSum || k.agg == AggKind::kCount) {
    ref_options.epsilon_override = 1e-9;  // run the reference close to X*
  }
  auto reference = eval::NaiveEvaluate(k, g, ref_options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  EngineOptions options;
  options.mode = param.mode;
  options.num_workers = param.workers;
  options.network.instant = true;  // correctness tests: no simulated latency
  options.max_wall_seconds = 30.0;
  if (k.agg == AggKind::kSum || k.agg == AggKind::kCount) {
    options.epsilon_override = 1e-7;
  }
  Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_LE(MaxAbsDiff(reference->values, run->values), param.tolerance)
      << ExecModeName(param.mode) << " stats: " << run->stats.Summary();
  EXPECT_TRUE(run->stats.converged) << run->stats.Summary();
}

std::vector<EngineCase> AllModeCases() {
  std::vector<EngineCase> cases;
  const struct {
    const char* program;
    const char* graph;
    double tol;
  } programs[] = {
      {"sssp", "rand", 1e-12}, {"sssp", "grid", 1e-12}, {"cc", "rand", 1e-12},
      {"cc", "star", 1e-12},   {"pagerank", "rand", 2e-2}, {"adsorption", "rand", 1e-2},
      {"bp", "rand", 1e-2},    {"viterbi", "dag", 1e-12},  {"paths_dag", "dag", 1e-9},
      {"katz", "dag", 1e-4},
  };
  for (const auto& p : programs) {
    for (ExecMode mode :
         {ExecMode::kSync, ExecMode::kAsync, ExecMode::kAap,
          ExecMode::kSyncAsync, ExecMode::kStaleSync}) {
      for (uint32_t workers : {1u, 4u}) {
        cases.push_back(EngineCase{p.program, p.graph, mode, workers, p.tol});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllModes, EngineModesTest, ::testing::ValuesIn(AllModeCases()),
                         [](const ::testing::TestParamInfo<EngineCase>& info) {
                           std::string name = info.param.program + "_" +
                                              info.param.graph + "_" +
                                              ExecModeName(info.param.mode) + "_w" +
                                              std::to_string(info.param.workers);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Engine, SyncIsDeterministicForMinPrograms) {
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(11);
  EngineOptions options;
  options.mode = ExecMode::kSync;
  options.num_workers = 4;
  options.network.instant = true;
  Engine engine(g, k, options);
  auto a = engine.Run();
  auto b = engine.Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->values, b->values);
}

TEST(Engine, RejectsMeanPrograms) {
  Kernel k = MustCompile("commnet");
  auto g = GeneratePath(4);
  EngineOptions options;
  Engine engine(g, k, options);
  EXPECT_TRUE(engine.Run().status().IsConditionViolated());
}

TEST(Engine, RejectsEmptyGraphAndZeroWorkers) {
  Kernel k = MustCompile("sssp");
  Graph empty;
  EngineOptions options;
  EXPECT_FALSE(Engine(empty, k, options).Run().ok());
  auto g = GeneratePath(3);
  options.num_workers = 0;
  EXPECT_FALSE(Engine(g, k, options).Run().ok());
}

TEST(Engine, WallClockCapStopsNonConvergentProgram) {
  // A unit-gain circulating sum on a cycle: the delta mass is conserved
  // forever (no decay, no underflow), there is no epsilon clause, so only
  // the wall-clock cap can stop the async engine.
  auto kernel = BuildKernelFromSource(
      "seed(X,c) :- X = 0, c = 1.\n"
      "loop(Y,sum[c1]) :- seed(Y,c2), c1 = c2;\n"
      "              :- loop(X,c), edge(X,Y), c1 = c.");
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  auto g = GenerateCycle(16);
  EngineOptions options;
  options.mode = ExecMode::kSyncAsync;
  options.num_workers = 2;
  options.network.instant = true;
  options.max_wall_seconds = 0.3;
  Engine engine(g, *kernel, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->stats.converged);
  EXPECT_GE(run->stats.wall_seconds, 0.3);
  EXPECT_LT(run->stats.wall_seconds, 5.0);
}

TEST(Engine, SuperstepCapStopsSyncMode) {
  // Unit-gain circulating sum: never converges, so only the cap stops it.
  auto kernel = BuildKernelFromSource(
      "seed(X,c) :- X = 0, c = 1.\n"
      "loop(Y,sum[c1]) :- seed(Y,c2), c1 = c2;\n"
      "              :- loop(X,c), edge(X,Y), c1 = c.");
  ASSERT_TRUE(kernel.ok());
  Kernel k = std::move(kernel).ValueOrDie();
  auto g = GenerateCycle(12);
  EngineOptions options;
  options.mode = ExecMode::kSync;
  options.num_workers = 2;
  options.network.instant = true;
  options.max_supersteps = 7;
  options.barrier_overhead_us = 0;
  Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.supersteps, 7);
  EXPECT_FALSE(run->stats.converged);
}

TEST(Engine, StatsAreConsistent) {
  Kernel k = MustCompile("cc");
  auto g = SmallWeightedGraph(3);
  EngineOptions options;
  options.mode = ExecMode::kSyncAsync;
  options.num_workers = 3;
  options.network.instant = true;
  Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->stats.harvests, 0);
  EXPECT_GT(run->stats.edge_applications, 0);
  EXPECT_GE(run->stats.updates_sent, 0);
  EXPECT_GT(run->stats.wall_seconds, 0.0);
  EXPECT_NE(run->stats.Summary().find("harvests="), std::string::npos);
}

TEST(Engine, TraceRecordsConvergence) {
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(101);
  EngineOptions options;
  options.mode = ExecMode::kSync;
  options.num_workers = 2;
  options.network.instant = true;
  options.barrier_overhead_us = 0;
  options.record_trace = true;
  options.epsilon_override = 1e-7;
  Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  ASSERT_GT(run->trace.size(), 3u);
  // Time is monotone and the pending mass shrinks overall.
  for (size_t i = 1; i < run->trace.size(); ++i) {
    EXPECT_GE(run->trace[i].seconds, run->trace[i - 1].seconds);
  }
  EXPECT_LT(run->trace.back().pending_mass, run->trace.front().pending_mass);
  // Off by default.
  options.record_trace = false;
  Engine engine2(g, k, options);
  auto run2 = engine2.Run();
  ASSERT_TRUE(run2.ok());
  EXPECT_TRUE(run2->trace.empty());
}

TEST(Engine, SingleWorkerNeedsNoMessages) {
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(5);
  EngineOptions options;
  options.mode = ExecMode::kSyncAsync;
  options.num_workers = 1;
  options.network.instant = true;
  Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.messages, 0);
}

TEST(Engine, DeltaSteppingMatchesExactSssp) {
  Kernel k = MustCompile("sssp");
  auto g = GenerateGrid(9, /*weighted=*/true, 21);
  auto reference = eval::NaiveEvaluate(k, g);
  ASSERT_TRUE(reference.ok());
  EngineOptions options;
  options.mode = ExecMode::kSync;
  options.num_workers = 3;
  options.network.instant = true;
  options.delta_stepping = 4.0;
  Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_LE(MaxAbsDiff(reference->values, run->values), 1e-12)
      << run->stats.Summary();
  EXPECT_TRUE(run->stats.converged);
}

TEST(Engine, SyncEpsilonTerminationMatchesAsyncFamily) {
  // Regression for the sync-mode ε-termination bug: sync used to stop as
  // soon as one superstep's *pending delta mass* dropped below ε, while the
  // async family requires two consecutive global-aggregate differences
  // below ε — so the same sum kernel + ε could settle at visibly different
  // fixpoints depending on ExecMode. Both paths now implement the paper's
  // criterion; identical kernel + ε must land element-wise within 10·ε.
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(101);
  const double epsilon = 1e-7;
  std::vector<std::vector<double>> results;
  for (ExecMode mode : {ExecMode::kSync, ExecMode::kSyncAsync}) {
    EngineOptions options;
    options.mode = mode;
    options.num_workers = 4;
    options.network.instant = true;
    options.barrier_overhead_us = 0;
    options.epsilon_override = epsilon;
    Engine engine(g, k, options);
    auto run = engine.Run();
    ASSERT_TRUE(run.ok()) << ExecModeName(mode) << ": "
                          << run.status().ToString();
    EXPECT_TRUE(run->stats.converged)
        << ExecModeName(mode) << " " << run->stats.Summary();
    results.push_back(std::move(run->values));
  }
  EXPECT_LE(MaxAbsDiff(results[0], results[1]), 10.0 * epsilon);
}

TEST(Engine, SyncEpsilonNeverFiresOnDivergingSum) {
  // The hoisted GlobalAggregate NaN/divergence guard: a unit-gain
  // circulating sum keeps G_k constant (mass is conserved), but ε must not
  // declare convergence — G_k − G_{k−1} = 0 only because the program ping-
  // pongs the same mass around the cycle... except a *constant* aggregate
  // with real work is exactly the plateau the criterion measures, so what
  // pins the guard is the overflow case: once the sum overflows to ±inf,
  // GlobalAggregate reports NaN and termination must fall to the cap.
  auto kernel = BuildKernelFromSource(
      "seed(X,c) :- X = 0, c = 1.\n"
      "grow(Y,sum[c1]) :- seed(Y,c2), c1 = c2;\n"
      "              :- grow(X,c), edge(X,Y), c1 = c * 3;\n"
      "              {sum[Δc] < 0.0001}.");
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  auto g = GenerateCycle(8);
  EngineOptions options;
  options.mode = ExecMode::kSync;
  options.num_workers = 2;
  options.network.instant = true;
  options.barrier_overhead_us = 0;
  options.max_supersteps = 3000;  // enough for the gain-3 sum to overflow
  Engine engine(g, *kernel, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_FALSE(run->stats.converged) << run->stats.Summary();
  EXPECT_EQ(run->stats.supersteps, 3000);
}

TEST(Engine, AdaptivePriorityStillConverges) {
  // §5.4 adaptive priority must not change the fixpoint.
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(83);
  auto reference = eval::NaiveEvaluate(k, g);
  ASSERT_TRUE(reference.ok());
  EngineOptions options;
  options.mode = ExecMode::kSyncAsync;
  options.num_workers = 3;
  options.network.instant = true;
  options.adaptive_priority = true;
  options.epsilon_override = 1e-7;
  Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_LE(MaxAbsDiff(reference->values, run->values), 5e-2)
      << run->stats.Summary();
}

TEST(Engine, StallNoiseDoesNotChangeResults) {
  // Environment stalls slow execution but never affect the fixpoint.
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(89);
  auto reference = eval::NaiveEvaluate(k, g);
  ASSERT_TRUE(reference.ok());
  for (ExecMode mode : {ExecMode::kSync, ExecMode::kSyncAsync}) {
    EngineOptions options;
    options.mode = mode;
    options.num_workers = 3;
    options.network.instant = true;
    options.stall_every_us = 500;
    options.stall_mean_us = 200;
    Engine engine(g, k, options);
    auto run = engine.Run();
    ASSERT_TRUE(run.ok()) << ExecModeName(mode);
    EXPECT_LE(MaxAbsDiff(reference->values, run->values), 1e-12)
        << ExecModeName(mode);
  }
}

TEST(Engine, ComputeInflationSlowsButStaysCorrect) {
  Kernel k = MustCompile("cc");
  auto g = SmallWeightedGraph(97);
  auto reference = eval::NaiveEvaluate(k, g);
  ASSERT_TRUE(reference.ok());
  EngineOptions options;
  options.mode = ExecMode::kSync;
  options.num_workers = 2;
  options.network.instant = true;
  options.barrier_overhead_us = 0;
  Engine fast_engine(g, k, options);
  auto fast = fast_engine.Run();
  ASSERT_TRUE(fast.ok());
  options.compute_inflation_ns_per_edge = 5000.0;  // 5us/edge: very slow
  Engine slow_engine(g, k, options);
  auto slow = slow_engine.Run();
  ASSERT_TRUE(slow.ok());
  EXPECT_LE(MaxAbsDiff(reference->values, slow->values), 1e-12);
  // The inflated run must burn at least half its nominal sleep debt
  // (deterministic lower bound — comparing against the fast run's wall time
  // is flaky on loaded single-core hosts).
  const double debt_seconds =
      static_cast<double>(slow->stats.edge_applications) * 5000.0 * 1e-9 /
      options.num_workers;
  EXPECT_GT(slow->stats.wall_seconds, 0.5 * debt_seconds)
      << slow->stats.Summary();
}

TEST(Engine, PriorityThresholdStillConverges) {
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(13);
  auto reference = eval::NaiveEvaluate(k, g);
  ASSERT_TRUE(reference.ok());
  EngineOptions options;
  options.mode = ExecMode::kSyncAsync;
  options.num_workers = 3;
  options.network.instant = true;
  options.priority_threshold = 1e-3;
  options.epsilon_override = 1e-6;
  Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_LE(MaxAbsDiff(reference->values, run->values), 5e-2)
      << run->stats.Summary();
}

TEST(Engine, RangePartitionAlsoCorrect) {
  Kernel k = MustCompile("cc");
  auto g = SmallWeightedGraph(17);
  auto reference = eval::NaiveEvaluate(k, g);
  ASSERT_TRUE(reference.ok());
  EngineOptions options;
  options.mode = ExecMode::kAsync;
  options.num_workers = 4;
  options.network.instant = true;
  options.partition = Partitioner::Kind::kRange;
  Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_LE(MaxAbsDiff(reference->values, run->values), 1e-12);
}

TEST(Engine, SimulatedLatencyStillCorrect) {
  // With real (non-instant) delivery delays the fixpoint must not change.
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(19);
  auto reference = eval::NaiveEvaluate(k, g);
  ASSERT_TRUE(reference.ok());
  for (ExecMode mode : {ExecMode::kSync, ExecMode::kAsync, ExecMode::kSyncAsync}) {
    EngineOptions options;
    options.mode = mode;
    options.num_workers = 4;
    options.network.latency_us = 300;
    options.network.per_update_us = 0.1;
    options.barrier_overhead_us = 100;
    Engine engine(g, k, options);
    auto run = engine.Run();
    ASSERT_TRUE(run.ok()) << ExecModeName(mode);
    EXPECT_LE(MaxAbsDiff(reference->values, run->values), 1e-12)
        << ExecModeName(mode);
  }
}

}  // namespace
}  // namespace powerlog::runtime
