#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace powerlog {
namespace {

TEST(Datasets, SixEntriesInPaperOrder) {
  const auto& names = DatasetNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "flickr");
  EXPECT_EQ(names[1], "livej");
  EXPECT_EQ(names[2], "orkut");
  EXPECT_EQ(names[3], "web");
  EXPECT_EQ(names[4], "wiki");
  EXPECT_EQ(names[5], "arabic");
}

TEST(Datasets, MetadataMatchesTable2) {
  auto livej = GetDatasetInfo("livej");
  ASSERT_TRUE(livej.ok());
  EXPECT_EQ(livej->paper_name, "LiveJournal");
  EXPECT_EQ(livej->paper_vertices, 4847571u);
  EXPECT_EQ(livej->paper_edges, 68475391u);
  auto arabic = GetDatasetInfo("arabic");
  ASSERT_TRUE(arabic.ok());
  EXPECT_EQ(arabic->paper_edges, 639999458u);
}

TEST(Datasets, UnknownNameFails) {
  EXPECT_TRUE(GetDatasetInfo("twitter").status().IsNotFound());
  EXPECT_TRUE(GetDataset("twitter").status().IsNotFound());
}

TEST(Datasets, GraphsAreCachedAndWeighted) {
  auto a = GetDataset("flickr");
  ASSERT_TRUE(a.ok());
  auto b = GetDataset("flickr");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // same cached pointer
  const Graph& g = **a;
  EXPECT_GT(g.num_vertices(), 10000u);
  EXPECT_GT(g.num_edges(), g.num_vertices());
  bool weighted = false;
  for (const Edge& e : g.OutEdges(0)) {
    if (e.weight != 1.0) weighted = true;
  }
  for (VertexId v = 0; v < 100 && !weighted; ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      if (e.weight != 1.0) weighted = true;
    }
  }
  EXPECT_TRUE(weighted);
}

TEST(Datasets, RelativeSizesFollowTable2Ordering) {
  auto orkut = GetDataset("orkut");
  auto flickr = GetDataset("flickr");
  ASSERT_TRUE(orkut.ok());
  ASSERT_TRUE(flickr.ok());
  // Orkut is the densest social network in Table 2.
  EXPECT_GT((*orkut)->AverageDegree(), (*flickr)->AverageDegree());
}

TEST(Datasets, WebGraphsAreMoreSkewedThanWiki) {
  auto web = GetDataset("web");
  auto wiki = GetDataset("wiki");
  ASSERT_TRUE(web.ok());
  ASSERT_TRUE(wiki.ok());
  const double web_skew = (*web)->MaxOutDegree() / (*web)->AverageDegree();
  const double wiki_skew = (*wiki)->MaxOutDegree() / (*wiki)->AverageDegree();
  EXPECT_GT(web_skew, wiki_skew);
}

TEST(Datasets, StochasticViewIsRowNormalised) {
  auto g = GetDataset("flickr", /*stochastic=*/true);
  ASSERT_TRUE(g.ok());
  for (VertexId v = 0; v < 200; ++v) {
    double total = 0.0;
    for (const Edge& e : (*g)->OutEdges(v)) {
      EXPECT_GT(e.weight, 0.0);
      EXPECT_LE(e.weight, 1.0);
      total += e.weight;
    }
    if ((*g)->OutDegree(v) > 0) {
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST(Datasets, StochasticViewCachedSeparately) {
  auto plain = GetDataset("flickr", false);
  auto stochastic = GetDataset("flickr", true);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(stochastic.ok());
  EXPECT_NE(*plain, *stochastic);
  EXPECT_EQ((*plain)->num_edges(), (*stochastic)->num_edges());
}

TEST(Datasets, WikiHasTheLongDiameterAppendix) {
  auto wiki = GetDataset("wiki");
  ASSERT_TRUE(wiki.ok());
  // The chain: last 1500 vertices form a path with out-degree <= 1.
  const VertexId n = (*wiki)->num_vertices();
  EXPECT_EQ(n, (1u << 16) + 1500u);
  for (VertexId v = n - 1400; v + 1 < n; ++v) {
    ASSERT_EQ((*wiki)->OutDegree(v), 1u);
    EXPECT_EQ((*wiki)->OutBegin(v)[0].dst, v + 1);
  }
}

TEST(Datasets, ClearCacheRegenerates) {
  auto a = GetDataset("flickr");
  ASSERT_TRUE(a.ok());
  const auto edges = (*a)->num_edges();
  ClearDatasetCache();
  auto b = GetDataset("flickr");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->num_edges(), edges);  // deterministic regeneration
}

}  // namespace
}  // namespace powerlog
