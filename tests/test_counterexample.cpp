#include <gtest/gtest.h>

#include "smt/counterexample.h"

namespace powerlog::smt {
namespace {

TEST(Counterexample, NoneForValidIdentity) {
  // x + y == y + x
  auto cx = FindCounterexample(Add(Var("x"), Var("y")), Add(Var("y"), Var("x")), {});
  EXPECT_FALSE(cx.has_value());
}

TEST(Counterexample, FindsReluViolation) {
  // relu(x + y) != relu(x) + relu(y)   (the GCN-Forward failure, §6.1)
  auto lhs = Relu(Add(Var("x"), Var("y")));
  auto rhs = Add(Relu(Var("x")), Relu(Var("y")));
  auto cx = FindCounterexample(lhs, rhs, {});
  ASSERT_TRUE(cx.has_value());
  // The witness must actually violate the identity.
  EXPECT_GT(std::abs(cx->lhs_value - cx->rhs_value), 1e-9);
}

TEST(Counterexample, FindsMeanAssociativityViolation) {
  // mean(mean(a,b),c) != mean(a,mean(b,c))
  auto mean = [](TermPtr a, TermPtr b) {
    return Div(Add(std::move(a), std::move(b)), ConstInt(2));
  };
  auto lhs = mean(mean(Var("a"), Var("b")), Var("c"));
  auto rhs = mean(Var("a"), mean(Var("b"), Var("c")));
  auto cx = FindCounterexample(lhs, rhs, {});
  ASSERT_TRUE(cx.has_value());
}

TEST(Counterexample, RespectsSignConstraints) {
  // Under p > 0: p*x vs |p|*x are equal, so no counterexample may use p <= 0.
  ConstraintSet cs;
  cs.Assume("p", Sign::kPositive);
  auto cx = FindCounterexample(Mul(Var("p"), Var("x")),
                               Mul(Abs(Var("p")), Var("x")), cs);
  EXPECT_FALSE(cx.has_value());
  // Without the constraint the identity still holds; use min instead:
  // min(p*a, p*b) == p*min(a,b) holds iff p >= 0.
  auto lhs = Min(Mul(Var("p"), Var("a")), Mul(Var("p"), Var("b")));
  auto rhs = Mul(Var("p"), Min(Var("a"), Var("b")));
  EXPECT_TRUE(FindCounterexample(lhs, rhs, {}).has_value());
  EXPECT_FALSE(FindCounterexample(lhs, rhs, cs).has_value());
}

TEST(Counterexample, ConstantFormulas) {
  EXPECT_FALSE(FindCounterexample(ConstInt(2), ConstInt(2), {}).has_value());
  auto cx = FindCounterexample(ConstInt(2), ConstInt(3), {});
  ASSERT_TRUE(cx.has_value());
  EXPECT_DOUBLE_EQ(cx->lhs_value, 2.0);
  EXPECT_DOUBLE_EQ(cx->rhs_value, 3.0);
}

TEST(Counterexample, SkipsUndefinedPoints) {
  // 1/x == 1/x is valid wherever defined; x=0 must not produce a spurious hit.
  auto t = Div(ConstInt(1), Var("x"));
  EXPECT_FALSE(FindCounterexample(t, t, {}).has_value());
}

TEST(Counterexample, WitnessIsReproducible) {
  auto lhs = Mul(Var("x"), Var("x"));
  auto rhs = Mul(ConstInt(2), Var("x"));
  auto cx = FindCounterexample(lhs, rhs, {});
  ASSERT_TRUE(cx.has_value());
  auto lv = Evaluate(lhs, cx->assignment);
  auto rv = Evaluate(rhs, cx->assignment);
  ASSERT_TRUE(lv.ok());
  ASSERT_TRUE(rv.ok());
  EXPECT_DOUBLE_EQ(*lv, cx->lhs_value);
  EXPECT_DOUBLE_EQ(*rv, cx->rhs_value);
}

TEST(Counterexample, ToStringMentionsAssignment) {
  auto cx = FindCounterexample(Var("x"), Add(Var("x"), ConstInt(1)), {});
  ASSERT_TRUE(cx.has_value());
  EXPECT_NE(cx->ToString().find("x="), std::string::npos);
}

TEST(Counterexample, ManyVariablesFallBackToRandomSearch) {
  // 7 variables exceeds the grid limit; random phase must still refute.
  TermPtr lhs = ConstInt(0);
  TermPtr rhs = ConstInt(0);
  for (const char* v : {"a", "b", "c", "d", "e", "f", "g"}) {
    lhs = Add(lhs, Var(v));
    rhs = Add(rhs, Mul(Var(v), Var(v)));
  }
  EXPECT_TRUE(FindCounterexample(lhs, rhs, {}).has_value());
}

}  // namespace
}  // namespace powerlog::smt
