#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "eval/eval_common.h"
#include "eval/naive.h"
#include "runtime/checkpoint.h"
#include "runtime/engine.h"
#include "test_util.h"

namespace powerlog::runtime {
namespace {

using powerlog::testing::MustCompile;
using powerlog::testing::SmallWeightedGraph;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Checkpoint, RoundTrip) {
  auto table = MonoTable::Create(AggKind::kSum, 8);
  ASSERT_TRUE(table.ok());
  std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> d{0.5, 0, 0, -1, 0, 2, 0, 0};
  ASSERT_TRUE(table->Initialize(x, d).ok());
  const std::string path = TempPath("powerlog_ckpt_roundtrip.bin");
  ASSERT_TRUE(WriteCheckpoint(*table, path).ok());

  auto fresh = MonoTable::Create(AggKind::kSum, 8);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(RestoreCheckpoint(&*fresh, path).ok());
  EXPECT_EQ(fresh->SnapshotAccumulation(), x);
  EXPECT_EQ(fresh->SnapshotIntermediate(), d);
  std::filesystem::remove(path);
}

TEST(Checkpoint, DetectsCorruption) {
  auto table = MonoTable::Create(AggKind::kMin, 4);
  ASSERT_TRUE(table.ok());
  const std::string path = TempPath("powerlog_ckpt_corrupt.bin");
  ASSERT_TRUE(WriteCheckpoint(*table, path).ok());
  // Flip one byte in the payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(32);
    char byte = 0x5A;
    f.write(&byte, 1);
  }
  auto fresh = MonoTable::Create(AggKind::kMin, 4);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(RestoreCheckpoint(&*fresh, path).IsIOError());
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsKindAndSizeMismatch) {
  auto table = MonoTable::Create(AggKind::kMin, 4);
  ASSERT_TRUE(table.ok());
  const std::string path = TempPath("powerlog_ckpt_mismatch.bin");
  ASSERT_TRUE(WriteCheckpoint(*table, path).ok());
  auto wrong_kind = MonoTable::Create(AggKind::kSum, 4);
  ASSERT_TRUE(wrong_kind.ok());
  EXPECT_TRUE(RestoreCheckpoint(&*wrong_kind, path).IsInvalidArgument());
  auto wrong_rows = MonoTable::Create(AggKind::kMin, 5);
  ASSERT_TRUE(wrong_rows.ok());
  EXPECT_TRUE(RestoreCheckpoint(&*wrong_rows, path).IsInvalidArgument());
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingFileFails) {
  auto table = MonoTable::Create(AggKind::kMin, 4);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(RestoreCheckpoint(&*table, "/nonexistent/ckpt.bin").IsIOError());
}

void RemoveStoreFiles(const std::string& base) {
  std::filesystem::remove(base + ".0");
  std::filesystem::remove(base + ".1");
  std::filesystem::remove(base + ".manifest");
}

TEST(CheckpointStore, PingPongAlternatesSlotsAndReadsNewest) {
  const std::string base = TempPath("powerlog_store_pingpong");
  RemoveStoreFiles(base);
  CheckpointStore store(base);
  EXPECT_FALSE(store.HasCheckpoint());
  EXPECT_TRUE(store.ReadLatest(AggKind::kSum, 4).status().IsNotFound());

  auto table = MonoTable::Create(AggKind::kSum, 4);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->Initialize({1, 2, 3, 4}, {0, 0, 0, 0}).ok());
  ASSERT_TRUE(store.Write(*table).ok());
  EXPECT_TRUE(std::filesystem::exists(base + ".0"));
  ASSERT_TRUE(table->Initialize({5, 6, 7, 8}, {1, 0, 0, 0}).ok());
  ASSERT_TRUE(store.Write(*table).ok());
  EXPECT_TRUE(std::filesystem::exists(base + ".1"));
  EXPECT_EQ(store.writes(), 2);

  ASSERT_TRUE(store.HasCheckpoint());
  auto cp = store.ReadLatest(AggKind::kSum, 4);
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  EXPECT_EQ(cp->x, (std::vector<double>{5, 6, 7, 8}));
  EXPECT_EQ(cp->delta, (std::vector<double>{1, 0, 0, 0}));
  RemoveStoreFiles(base);
}

TEST(CheckpointStore, FallsBackToOlderSlotWhenNewestIsCorrupt) {
  const std::string base = TempPath("powerlog_store_fallback");
  RemoveStoreFiles(base);
  CheckpointStore store(base);
  auto table = MonoTable::Create(AggKind::kMin, 3);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(table->Initialize({0, 1, 2}, {0, 0, 0}).ok());
  ASSERT_TRUE(store.Write(*table).ok());  // slot 0: the survivor
  ASSERT_TRUE(table->Initialize({0, 0.5, 1}, {0, 0, 0}).ok());
  ASSERT_TRUE(store.Write(*table).ok());  // slot 1: about to be torn
  {
    std::fstream f(base + ".1", std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(32);
    char byte = 0x5A;
    f.write(&byte, 1);
  }
  auto cp = store.ReadLatest(AggKind::kMin, 3);
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  EXPECT_EQ(cp->x, (std::vector<double>{0, 1, 2}));
  RemoveStoreFiles(base);
}

TEST(Checkpoint, SyncEngineWritesPeriodicCheckpoints) {
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(31);
  const std::string path = TempPath("powerlog_ckpt_engine.bin");
  RemoveStoreFiles(path);
  EngineOptions options;
  options.mode = ExecMode::kSync;
  options.num_workers = 2;
  options.network.instant = true;
  options.barrier_overhead_us = 0;
  options.checkpoint_every = 2;
  options.checkpoint_path = path;
  Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->stats.checkpoints_written, 0);
  // The store must have published a loadable, CRC-verified snapshot.
  CheckpointStore store(path);
  ASSERT_TRUE(store.HasCheckpoint());
  auto cp = store.ReadLatest(AggKind::kSum, g.num_vertices());
  EXPECT_TRUE(cp.ok()) << cp.status().ToString();
  RemoveStoreFiles(path);
}

TEST(Checkpoint, CrashRestartResumesToSameFixpoint) {
  // Fault-tolerance drill: run pagerank to completion; then run a "crashed"
  // instance stopped after 3 supersteps, restore its checkpoint into a fresh
  // table, finish with the single-node MRA loop seeded from the checkpoint,
  // and compare.
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(37);

  EngineOptions full;
  full.mode = ExecMode::kSync;
  full.num_workers = 2;
  full.network.instant = true;
  full.barrier_overhead_us = 0;
  full.epsilon_override = 1e-8;
  auto complete = Engine(g, k, full).Run();
  ASSERT_TRUE(complete.ok());

  const std::string path = TempPath("powerlog_ckpt_crash.bin");
  RemoveStoreFiles(path);
  EngineOptions crashed = full;
  crashed.max_supersteps = 3;
  crashed.checkpoint_every = 1;
  crashed.checkpoint_path = path;
  auto partial = Engine(g, k, crashed).Run();
  ASSERT_TRUE(partial.ok());

  // Recover: load the newest snapshot and run the MRA recursion to
  // convergence.
  CheckpointStore store(path);
  ASSERT_TRUE(store.HasCheckpoint());
  auto cp = store.ReadLatest(AggKind::kSum, g.num_vertices());
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  std::vector<double> x = cp->x;
  std::vector<double> delta = cp->delta;
  for (int iter = 0; iter < 500; ++iter) {
    // Harvest semantics: fold pending deltas into x, then propagate them.
    std::vector<double> next(g.num_vertices(), 0.0);
    double mass = 0.0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (delta[v] == 0.0) continue;
      mass += std::abs(delta[v]);
      x[v] += delta[v];
      const double deg = static_cast<double>(g.OutDegree(v));
      for (const Edge& e : g.OutEdges(v)) {
        next[e.dst] += k.EvalEdge(delta[v], e.weight, deg);
      }
    }
    if (mass < 1e-9) break;
    delta = std::move(next);
  }
  EXPECT_LE(eval::MaxAbsDiff(complete->values, x), 1e-4);
  RemoveStoreFiles(path);
}

}  // namespace
}  // namespace powerlog::runtime
