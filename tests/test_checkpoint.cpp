#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "eval/eval_common.h"
#include "eval/naive.h"
#include "runtime/checkpoint.h"
#include "runtime/engine.h"
#include "test_util.h"

namespace powerlog::runtime {
namespace {

using powerlog::testing::MustCompile;
using powerlog::testing::SmallWeightedGraph;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Checkpoint, RoundTrip) {
  auto table = MonoTable::Create(AggKind::kSum, 8);
  ASSERT_TRUE(table.ok());
  std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<double> d{0.5, 0, 0, -1, 0, 2, 0, 0};
  ASSERT_TRUE(table->Initialize(x, d).ok());
  const std::string path = TempPath("powerlog_ckpt_roundtrip.bin");
  ASSERT_TRUE(WriteCheckpoint(*table, path).ok());

  auto fresh = MonoTable::Create(AggKind::kSum, 8);
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(RestoreCheckpoint(&*fresh, path).ok());
  EXPECT_EQ(fresh->SnapshotAccumulation(), x);
  EXPECT_EQ(fresh->SnapshotIntermediate(), d);
  std::filesystem::remove(path);
}

TEST(Checkpoint, DetectsCorruption) {
  auto table = MonoTable::Create(AggKind::kMin, 4);
  ASSERT_TRUE(table.ok());
  const std::string path = TempPath("powerlog_ckpt_corrupt.bin");
  ASSERT_TRUE(WriteCheckpoint(*table, path).ok());
  // Flip one byte in the payload.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(32);
    char byte = 0x5A;
    f.write(&byte, 1);
  }
  auto fresh = MonoTable::Create(AggKind::kMin, 4);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(RestoreCheckpoint(&*fresh, path).IsIOError());
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsKindAndSizeMismatch) {
  auto table = MonoTable::Create(AggKind::kMin, 4);
  ASSERT_TRUE(table.ok());
  const std::string path = TempPath("powerlog_ckpt_mismatch.bin");
  ASSERT_TRUE(WriteCheckpoint(*table, path).ok());
  auto wrong_kind = MonoTable::Create(AggKind::kSum, 4);
  ASSERT_TRUE(wrong_kind.ok());
  EXPECT_TRUE(RestoreCheckpoint(&*wrong_kind, path).IsInvalidArgument());
  auto wrong_rows = MonoTable::Create(AggKind::kMin, 5);
  ASSERT_TRUE(wrong_rows.ok());
  EXPECT_TRUE(RestoreCheckpoint(&*wrong_rows, path).IsInvalidArgument());
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingFileFails) {
  auto table = MonoTable::Create(AggKind::kMin, 4);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(RestoreCheckpoint(&*table, "/nonexistent/ckpt.bin").IsIOError());
}

TEST(Checkpoint, SyncEngineWritesPeriodicCheckpoints) {
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(31);
  const std::string path = TempPath("powerlog_ckpt_engine.bin");
  std::filesystem::remove(path);
  EngineOptions options;
  options.mode = ExecMode::kSync;
  options.num_workers = 2;
  options.network.instant = true;
  options.barrier_overhead_us = 0;
  options.checkpoint_every = 2;
  options.checkpoint_path = path;
  Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  // The checkpoint must be loadable.
  auto table = MonoTable::Create(AggKind::kSum, g.num_vertices());
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(RestoreCheckpoint(&*table, path).ok());
  std::filesystem::remove(path);
}

TEST(Checkpoint, CrashRestartResumesToSameFixpoint) {
  // Fault-tolerance drill: run pagerank to completion; then run a "crashed"
  // instance stopped after 3 supersteps, restore its checkpoint into a fresh
  // table, finish with the single-node MRA loop seeded from the checkpoint,
  // and compare.
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(37);

  EngineOptions full;
  full.mode = ExecMode::kSync;
  full.num_workers = 2;
  full.network.instant = true;
  full.barrier_overhead_us = 0;
  full.epsilon_override = 1e-8;
  auto complete = Engine(g, k, full).Run();
  ASSERT_TRUE(complete.ok());

  const std::string path = TempPath("powerlog_ckpt_crash.bin");
  std::filesystem::remove(path);
  EngineOptions crashed = full;
  crashed.max_supersteps = 3;
  crashed.checkpoint_every = 1;
  crashed.checkpoint_path = path;
  auto partial = Engine(g, k, crashed).Run();
  ASSERT_TRUE(partial.ok());
  ASSERT_TRUE(std::filesystem::exists(path));

  // Recover: load the checkpoint and run the MRA recursion to convergence.
  auto table = MonoTable::Create(AggKind::kSum, g.num_vertices());
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(RestoreCheckpoint(&*table, path).ok());
  std::vector<double> x = table->SnapshotAccumulation();
  std::vector<double> delta = table->SnapshotIntermediate();
  for (int iter = 0; iter < 500; ++iter) {
    // Harvest semantics: fold pending deltas into x, then propagate them.
    std::vector<double> next(g.num_vertices(), 0.0);
    double mass = 0.0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (delta[v] == 0.0) continue;
      mass += std::abs(delta[v]);
      x[v] += delta[v];
      const double deg = static_cast<double>(g.OutDegree(v));
      for (const Edge& e : g.OutEdges(v)) {
        next[e.dst] += k.EvalEdge(delta[v], e.weight, deg);
      }
    }
    if (mass < 1e-9) break;
    delta = std::move(next);
  }
  EXPECT_LE(eval::MaxAbsDiff(complete->values, x), 1e-4);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace powerlog::runtime
