#include <gtest/gtest.h>

#include "datalog/catalog.h"
#include "datalog/parser.h"

namespace powerlog::datalog {
namespace {

TEST(Parser, SimpleRule) {
  auto p = Parse("sssp(X,d) :- X=1, d=0.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ASSERT_EQ(p->rules.size(), 1u);
  const Rule& r = p->rules[0];
  EXPECT_EQ(r.head.predicate, "sssp");
  ASSERT_EQ(r.head.args.size(), 2u);
  EXPECT_FALSE(r.head.args[0].aggregate.has_value());
  ASSERT_EQ(r.bodies.size(), 1u);
  EXPECT_EQ(r.bodies[0].literals.size(), 2u);
  EXPECT_EQ(r.bodies[0].literals[0].kind, BodyLiteral::Kind::kComparison);
}

TEST(Parser, AggregateHead) {
  auto p = Parse("sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const Rule& r = p->rules[0];
  ASSERT_EQ(r.head.args.size(), 2u);
  ASSERT_TRUE(r.head.args[1].aggregate.has_value());
  EXPECT_EQ(*r.head.args[1].aggregate, AggKind::kMin);
  EXPECT_EQ(r.head.args[1].agg_input->var, "dy");
  ASSERT_EQ(r.bodies[0].literals.size(), 3u);
  EXPECT_EQ(r.bodies[0].literals[0].predicate, "sssp");
  EXPECT_EQ(r.bodies[0].literals[1].predicate, "edge");
}

TEST(Parser, MultipleBodies) {
  auto p = Parse(
      "rank(i+1,Y,sum[ry]) :- node(Y), ry = 0.15;"
      "                    :- rank(i,X,rx), edge(X,Y), ry = 0.85*rx.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->rules[0].bodies.size(), 2u);
}

TEST(Parser, TerminationClause) {
  auto p = Parse(
      "L(j+1,y,sum[a]) :- L(j,x,b), edge(x,y), a = 0.7*b;"
      "                {sum[Δa] < 0.001}.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const Rule& r = p->rules[0];
  ASSERT_TRUE(r.termination.has_value());
  EXPECT_EQ(r.termination->agg, AggKind::kSum);
  EXPECT_EQ(r.termination->delta_var, "Δa");
  EXPECT_DOUBLE_EQ(r.termination->epsilon, 0.001);
  EXPECT_EQ(r.bodies.size(), 1u);
}

TEST(Parser, IterationSuccessorHead) {
  auto p = Parse("rank(i+1,Y,sum[r]) :- rank(i,X,s), edge(X,Y), r = s.");
  ASSERT_TRUE(p.ok());
  const auto& arg0 = p->rules[0].head.args[0];
  EXPECT_EQ(arg0.expr->kind, ExprKind::kBinary);
}

TEST(Parser, Annotations) {
  auto p = Parse("@name sssp.\n@assume d > 0.\n@bind p = 0.5.\nfoo(X,v) :- X=0, v=1.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->annotations.count("name"), 1u);
  EXPECT_EQ(p->annotations.count("assume"), 1u);
  auto it = p->annotations.find("assume");
  EXPECT_EQ(it->second, (std::vector<std::string>{"d", ">", "0"}));
}

TEST(Parser, WildcardInPredicate) {
  auto p = Parse("cc(X,X) :- edge(X,_).");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const auto& lit = p->rules[0].bodies[0].literals[0];
  EXPECT_EQ(lit.args[1]->kind, ExprKind::kWildcard);
}

TEST(Parser, ExpressionPrecedence) {
  auto p = Parse("f(Y,sum[r]) :- f(X,s), edge(X,Y), r = 1 + 2*s - 4/2.");
  ASSERT_TRUE(p.ok());
  const auto& lits = p->rules[0].bodies[0].literals;
  const ExprPtr& e = lits[2].rhs;
  // (1 + 2*s) - (4/2): top is kSub.
  EXPECT_EQ(e->bin_op, BinOp::kSub);
  EXPECT_EQ(e->lhs->bin_op, BinOp::kAdd);
}

TEST(Parser, FunctionCalls) {
  auto p = Parse("g(Y,sum[r]) :- g(X,s), edge(X,Y,w), r = relu(s*p)*w.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  const ExprPtr& e = p->rules[0].bodies[0].literals[2].rhs;
  EXPECT_EQ(e->bin_op, BinOp::kMul);
  EXPECT_EQ(e->lhs->kind, ExprKind::kCall);
  EXPECT_EQ(e->lhs->callee, "relu");
}

TEST(Parser, UnaryMinus) {
  auto p = Parse("f(X,v) :- X = 0, v = -2.5.");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
}

TEST(Parser, ErrorMissingDot) {
  auto p = Parse("f(X,v) :- X = 0, v = 1");
  ASSERT_FALSE(p.ok());
  EXPECT_TRUE(p.status().IsParseError());
}

TEST(Parser, ErrorMissingBody) {
  EXPECT_FALSE(Parse("f(X,v).").ok());
}

TEST(Parser, ErrorBadAggregate) {
  // median is not a known aggregate name -> parsed as plain expr, then the
  // '[' is a syntax error.
  EXPECT_FALSE(Parse("f(X,median[v]) :- g(X,v).").ok());
}

TEST(Parser, ErrorGarbageLiteral) {
  EXPECT_FALSE(Parse("f(X,v) :- 3 4.").ok());
}

TEST(Parser, ErrorReportsLineColumn) {
  auto p = Parse("f(X,v) :-\n  X == 0.");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("2:"), std::string::npos);
}

TEST(Parser, RoundTripToString) {
  auto p = Parse("sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.");
  ASSERT_TRUE(p.ok());
  const std::string text = p->rules[0].ToString();
  auto p2 = Parse(text);
  ASSERT_TRUE(p2.ok()) << text << " -> " << p2.status().ToString();
  EXPECT_EQ(p2->rules[0].ToString(), text);
}

TEST(Parser, AllCatalogProgramsParse) {
  for (const auto& entry : ProgramCatalog()) {
    auto p = Parse(entry.source);
    EXPECT_TRUE(p.ok()) << entry.name << ": " << p.status().ToString();
    EXPECT_FALSE(p->rules.empty()) << entry.name;
  }
}

TEST(Parser, ProgramToStringReparses) {
  for (const auto& entry : ProgramCatalog()) {
    auto p = Parse(entry.source);
    ASSERT_TRUE(p.ok()) << entry.name;
    auto p2 = Parse(p->ToString());
    EXPECT_TRUE(p2.ok()) << entry.name << ": " << p2.status().ToString() << "\n"
                         << p->ToString();
  }
}

}  // namespace
}  // namespace powerlog::datalog
