#include <gtest/gtest.h>

#include "common/random.h"
#include "datalog/expr_compiler.h"
#include "datalog/parser.h"

namespace powerlog::datalog {
namespace {

ExprPtr ParseExprVia(const std::string& expr_text) {
  // Reuse the rule parser: wrap the expression in an assignment literal.
  auto p = Parse("f(Y,sum[r]) :- f(X,x), edge(X,Y,w), r = " + expr_text + ".");
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return p->rules[0].bodies[0].literals[2].rhs;
}

CompileEnv BasicEnv() {
  CompileEnv env;
  env.input_var = "x";
  env.weight_var = "w";
  env.degree_var = "deg";
  env.const_bindings["p"] = 0.5;
  return env;
}

TEST(CompiledExpr, Arithmetic) {
  auto c = CompileExpr(ParseExprVia("0.85*x/deg + w"), BasicEnv());
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_DOUBLE_EQ(c->Eval(2.0, 3.0, 4.0), 0.85 * 2.0 / 4.0 + 3.0);
}

TEST(CompiledExpr, ConstantsFolded) {
  auto c = CompileExpr(ParseExprVia("x*p"), BasicEnv());
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->Eval(4.0, 0.0, 0.0), 2.0);
}

TEST(CompiledExpr, ReluAbsMinMax) {
  auto env = BasicEnv();
  auto relu = CompileExpr(ParseExprVia("relu(x - w)"), env);
  ASSERT_TRUE(relu.ok());
  EXPECT_DOUBLE_EQ(relu->Eval(5.0, 2.0, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(relu->Eval(1.0, 2.0, 0.0), 0.0);
  auto abs = CompileExpr(ParseExprVia("abs(x)"), env);
  ASSERT_TRUE(abs.ok());
  EXPECT_DOUBLE_EQ(abs->Eval(-2.5, 0, 0), 2.5);
  auto mn = CompileExpr(ParseExprVia("min(x, w)"), env);
  ASSERT_TRUE(mn.ok());
  EXPECT_DOUBLE_EQ(mn->Eval(1.0, 7.0, 0), 1.0);
  auto mx = CompileExpr(ParseExprVia("max(x, w)"), env);
  ASSERT_TRUE(mx.ok());
  EXPECT_DOUBLE_EQ(mx->Eval(1.0, 7.0, 0), 7.0);
}

TEST(CompiledExpr, UnaryMinus) {
  auto c = CompileExpr(ParseExprVia("-x"), BasicEnv());
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->Eval(3.0, 0, 0), -3.0);
}

TEST(CompiledExpr, UnboundVariableFails) {
  auto c = CompileExpr(ParseExprVia("x * unknown_symbol"), BasicEnv());
  EXPECT_TRUE(c.status().IsInvalidArgument());
}

TEST(CompiledExpr, UnknownFunctionFails) {
  auto c = CompileExpr(ParseExprVia("sigmoid(x)"), BasicEnv());
  EXPECT_TRUE(c.status().IsNotSupported());
}

TEST(CompiledExpr, DisassembleListsInstructions) {
  auto c = CompileExpr(ParseExprVia("x + w"), BasicEnv());
  ASSERT_TRUE(c.ok());
  const std::string dis = c->Disassemble();
  EXPECT_NE(dis.find("push x"), std::string::npos);
  EXPECT_NE(dis.find("push w"), std::string::npos);
  EXPECT_NE(dis.find("add"), std::string::npos);
}

TEST(ExprToTerm, RenamesVariables) {
  auto t = ExprToTerm(ParseExprVia("0.85*x/deg"), {{"x", "v"}});
  ASSERT_TRUE(t.ok());
  auto vars = smt::CollectVars(*t);
  EXPECT_EQ(vars, (std::vector<std::string>{"deg", "v"}));
}

TEST(ExprToTerm, ExactRationalConstants) {
  auto t = ExprToTerm(ParseExprVia("0.85*x"), {});
  ASSERT_TRUE(t.ok());
  // 0.85 must be exactly 17/20, not a float approximation.
  const smt::Term& mul = **t;
  ASSERT_EQ(mul.op, smt::Op::kMul);
  EXPECT_EQ(mul.args[0]->value, smt::Rational(17, 20));
}

TEST(ExprToTerm, CallsMapToTermOps) {
  auto t = ExprToTerm(ParseExprVia("relu(min(x, w))"), {});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->op, smt::Op::kRelu);
  EXPECT_EQ((*t)->args[0]->op, smt::Op::kMin);
}

TEST(EvalConstExpr, FoldsWithBindings) {
  auto v = EvalConstExpr(ParseExprVia("2*p + 1"), {{"p", 0.25}});
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(*v, 1.5);
}

TEST(EvalConstExpr, ErrorsOnUnbound) {
  EXPECT_TRUE(EvalConstExpr(ParseExprVia("q + 1"), {}).status().IsNotFound());
}

TEST(EvalConstExpr, DivisionByZero) {
  EXPECT_FALSE(EvalConstExpr(ParseExprVia("1/0"), {}).ok());
}

TEST(CompiledExpr, CompiledMatchesTermEvaluation) {
  // Property: for a family of expressions, the VM and the SMT-term
  // evaluation agree on random inputs.
  const char* exprs[] = {"x + w", "0.85*x/deg", "relu(x - 1)*w", "min(x, w) + deg",
                         "x*p + w*p"};
  Rng rng(55);
  for (const char* text : exprs) {
    auto expr = ParseExprVia(text);
    auto compiled = CompileExpr(expr, BasicEnv());
    ASSERT_TRUE(compiled.ok()) << text;
    auto term = ExprToTerm(expr, {});
    ASSERT_TRUE(term.ok()) << text;
    for (int i = 0; i < 25; ++i) {
      const double x = rng.NextDouble(-4, 4);
      const double w = rng.NextDouble(0.1, 4);
      const double deg = rng.NextDouble(1, 8);
      std::map<std::string, double> env{
          {"x", x}, {"w", w}, {"deg", deg}, {"p", 0.5}};
      auto ref = smt::Evaluate(*term, env);
      ASSERT_TRUE(ref.ok()) << text;
      EXPECT_NEAR(compiled->Eval(x, w, deg), *ref, 1e-12) << text;
    }
  }
}

}  // namespace
}  // namespace powerlog::datalog
