// Serving-plane tests (ISSUE 6): the resident ServingCatalog over shared
// graph snapshots, the exposition server's restart + custom-route support,
// and the Prometheus renderer's behaviour on adversarial metric names.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "datalog/catalog.h"
#include "graph/builder.h"
#include "graph/datasets.h"
#include "graph/snapshot.h"
#include "powerlog/serving.h"
#include "runtime/exposition.h"

namespace powerlog {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers.

// Minimal blocking HTTP GET against 127.0.0.1:port; returns the full
// response (headers + body), or "" on connect failure.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t w = ::write(fd, request.data() + off, request.size() - off);
    if (w <= 0) break;
    off += static_cast<size_t>(w);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

// Writes an arbitrary byte payload to 127.0.0.1:port and returns whatever
// comes back — for requests HttpGet cannot shape (oversized headers, etc.).
std::string HttpRaw(int port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t off = 0;
  while (off < payload.size()) {
    const ssize_t w = ::write(fd, payload.data() + off, payload.size() - off);
    if (w <= 0) break;
    off += static_cast<size_t>(w);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// A weighted path 0 -> 1 -> ... -> n-1. SSSP from source s is exactly
// (v - s) for v >= s and +inf before it — an integer-valued unique fixpoint,
// so results are bit-exact across engines, modes, and runs. Sync-mode
// convergence needs one superstep per hop, which also makes run duration
// tunable through n (the admission tests rely on that).
Graph ChainGraph(VertexId n) {
  GraphBuilder b;
  b.EnsureVertices(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1, 1.0);
  return std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();
}

std::string SsspSource() {
  auto entry = datalog::GetCatalogEntry("sssp");
  EXPECT_TRUE(entry.ok());
  return entry->source;
}

serving::ServingOptions FastServingOptions() {
  serving::ServingOptions options;
  options.engine.num_workers = 2;
  options.engine.network.instant = true;
  options.engine.mode = runtime::ExecMode::kSync;
  return options;
}

// ---------------------------------------------------------------------------
// Satellite: exposition server restart (Stop() -> Start() on the same port).

TEST(ExpositionRestart, StopThenRestartOnSamePort) {
  ExpositionServer server;
  auto first = server.Start(0);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const int port = *first;
  EXPECT_NE(HttpGet(port, "/healthz").find("200 OK"), std::string::npos);
  server.Stop();
  EXPECT_TRUE(HttpGet(port, "/healthz").empty());

  // The regression: the listener socket lingers in TIME_WAIT-adjacent state
  // after Stop, so an immediate rebind of the *same fixed port* must rely on
  // SO_REUSEADDR being set before bind — and on Stop() having fully reset the
  // listener/queue/thread state.
  auto second = server.Start(port);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(*second, port);
  EXPECT_NE(HttpGet(port, "/healthz").find("200 OK"), std::string::npos);
  server.Stop();
}

TEST(ExpositionRestart, SurvivesRepeatedCycles) {
  ExpositionServer server;
  auto first = server.Start(0, /*handler_threads=*/2);
  ASSERT_TRUE(first.ok());
  const int port = *first;
  server.Stop();
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto bound = server.Start(port, /*handler_threads=*/2);
    ASSERT_TRUE(bound.ok()) << "cycle " << cycle << ": "
                            << bound.status().ToString();
    EXPECT_EQ(Body(HttpGet(port, "/healthz")), "ok\n");
    server.Stop();
  }
}

TEST(ExpositionRestart, CustomHandlerServesAcrossRestart) {
  ExpositionServer server;
  std::atomic<int> calls{0};
  server.SetHandler([&calls](const HttpRequest& req, HttpResponse* resp) {
    if (req.target.rfind("/echo", 0) != 0) return false;
    calls.fetch_add(1);
    resp->status = 200;
    resp->body = "echo:" + req.target;
    return true;
  });
  auto port = server.Start(0, /*handler_threads=*/2);
  ASSERT_TRUE(port.ok());
  EXPECT_EQ(Body(HttpGet(*port, "/echo?x=1")), "echo:/echo?x=1");
  // Unclaimed routes still fall through to the built-in 404.
  EXPECT_NE(HttpGet(*port, "/nope").find("404"), std::string::npos);
  // Built-ins keep priority over the custom handler.
  EXPECT_EQ(Body(HttpGet(*port, "/healthz")), "ok\n");
  server.Stop();
  auto again = server.Start(*port, /*handler_threads=*/2);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(Body(HttpGet(*port, "/echo")), "echo:/echo");
  server.Stop();
  EXPECT_EQ(calls.load(), 2);
}

// Oversized header sections must draw the dedicated 431, not a generic 400:
// the request line can be perfectly well-formed while the headers blow the
// 16 KiB bound, and clients should be able to tell the cases apart.
TEST(ExpositionRestart, OversizedHeadersReturn431) {
  ExpositionServer server;
  auto port = server.Start(0, /*handler_threads=*/2);
  ASSERT_TRUE(port.ok());
  std::string request = "GET /healthz HTTP/1.1\r\nX-Pad: ";
  request.append(20 * 1024, 'a');  // never reaches \r\n\r\n inside 16 KiB
  const std::string response = HttpRaw(*port, request);
  EXPECT_NE(response.find("431 Request Header Fields Too Large"),
            std::string::npos)
      << response.substr(0, 120);
  // A normal request right after is unaffected.
  EXPECT_EQ(Body(HttpGet(*port, "/healthz")), "ok\n");
  server.Stop();
}

// ---------------------------------------------------------------------------
// Satellite: Prometheus renderer vs adversarial metric names.

// Every exposition line must carry a valid Prometheus identifier:
// [a-zA-Z_:][a-zA-Z0-9_:]*. (Checked by hand — <regex> trips GCC's
// -Wmaybe-uninitialized under the sanitizer builds.)
bool ValidIdentifier(const std::string& name) {
  if (name.empty()) return false;
  const unsigned char head = static_cast<unsigned char>(name[0]);
  if (!std::isalpha(head) && name[0] != '_' && name[0] != ':') return false;
  for (size_t i = 1; i < name.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(name[i]);
    if (!std::isalnum(c) && name[i] != '_' && name[i] != ':') return false;
  }
  return true;
}

void ExpectValidIdentifiers(const std::string& text) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) line = line.substr(7);
    const std::string name = line.substr(0, line.find_first_of("{ "));
    EXPECT_TRUE(ValidIdentifier(name)) << "bad identifier in line: " << line;
  }
}

TEST(PrometheusRenderer, SanitisesAdversarialNames) {
  metrics::MetricsSnapshot snap;
  snap.AddCounter("timeline.beta.w0", 7);       // dots
  snap.AddCounter("bus-overflow-sends", 1);     // dashes
  snap.AddCounter("9lives", 2);                 // leading digit
  snap.AddGauge("weird name/with:stuff", 3.5);  // space, slash, colon
  const std::string text = PrometheusText(snap);
  ExpectValidIdentifiers(text);
  EXPECT_NE(text.find("powerlog_timeline_beta_w0 7\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("powerlog_bus_overflow_sends 1\n"), std::string::npos)
      << text;
  // The powerlog_ prefix is what makes a leading digit legal.
  EXPECT_NE(text.find("powerlog_9lives 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("powerlog_weird_name_with:stuff 3.5\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusRenderer, HistogramBucketsStrictlyCumulative) {
  // The regression: HistogramSnapshot.count is recorded separately from the
  // per-bucket counts, and a concurrent snapshot can catch it *behind* them.
  // The renderer must derive both +Inf and _count from the bucket array so
  // the series stays monotone no matter what the stale total says.
  metrics::MetricsSnapshot snap;
  metrics::HistogramSnapshot hist;
  hist.bounds = {1.0, 10.0};
  hist.counts = {3, 2, 1};  // per-bucket, last = overflow; true total 6
  hist.count = 4;           // stale aggregate, must be ignored
  hist.sum = 25.0;
  snap.AddHistogram("h.lat", hist);
  const std::string text = PrometheusText(snap);
  ExpectValidIdentifiers(text);
  EXPECT_NE(text.find("powerlog_h_lat_bucket{le=\"1\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("powerlog_h_lat_bucket{le=\"10\"} 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("powerlog_h_lat_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos)
      << text;
  // The spec requires _count == the +Inf bucket.
  EXPECT_NE(text.find("powerlog_h_lat_count 6\n"), std::string::npos) << text;
}

TEST(PrometheusRenderer, HistogramWithMissingOverflowBucket) {
  // counts shorter than bounds+1 (snapshot torn mid-resize) must not crash
  // or break monotonicity.
  metrics::MetricsSnapshot snap;
  metrics::HistogramSnapshot hist;
  hist.bounds = {1.0, 10.0, 100.0};
  hist.counts = {2, 1};  // missing the 100.0 bucket and the overflow
  hist.count = 99;
  hist.sum = 5.0;
  snap.AddHistogram("torn", hist);
  const std::string text = PrometheusText(snap);
  ExpectValidIdentifiers(text);
  EXPECT_NE(text.find("powerlog_torn_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("powerlog_torn_count 3\n"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Snapshot registry: shared immutable graphs, counted builds.

TEST(SnapshotRegistry, DatasetBuiltOnceAndShared) {
  GraphSnapshotRegistry registry;
  auto a = registry.Dataset("flickr");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = registry.Dataset("flickr");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());  // same snapshot, not a copy
  EXPECT_EQ(registry.builds(), 1);
  // The stochastic view is a distinct snapshot.
  auto c = registry.Dataset("flickr", /*stochastic=*/true);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->get(), c->get());
  EXPECT_EQ(registry.builds(), 2);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(SnapshotRegistry, PreBuildsReverseOnRequest) {
  GraphSnapshotRegistry registry;
  auto plain = registry.Dataset("flickr");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE((*plain)->HasReverse());
  auto reversed = registry.Dataset("flickr", false, /*build_reverse=*/true);
  ASSERT_TRUE(reversed.ok());
  EXPECT_EQ(plain->get(), reversed->get());
  EXPECT_TRUE((*reversed)->HasReverse());
  EXPECT_EQ(registry.builds(), 1);  // reverse is not a rebuild
}

TEST(SnapshotRegistry, AdoptAndEvict) {
  GraphSnapshotRegistry registry;
  auto snap = registry.Adopt("mine", ChainGraph(8));
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->num_vertices(), 8u);
  EXPECT_EQ(registry.builds(), 1);
  EXPECT_TRUE(registry.Evict("mine"));
  EXPECT_FALSE(registry.Evict("mine"));
  // Outstanding references stay valid after eviction.
  EXPECT_EQ(snap->num_vertices(), 8u);
}

TEST(SnapshotRegistry, SharedDatasetSurvivesCacheClear) {
  auto shared = GetDatasetShared("flickr");
  ASSERT_TRUE(shared.ok());
  const VertexId n = (*shared)->num_vertices();
  ClearDatasetCache();
  EXPECT_EQ((*shared)->num_vertices(), n);  // no dangling pointer
}

// ---------------------------------------------------------------------------
// ServingCatalog: resident state, lookups, top-k, cache, admission.

TEST(ServingCatalog, LookupAndTopKFromResidentState) {
  serving::ServingCatalog catalog(FastServingOptions());
  ASSERT_TRUE(
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(64))
          .ok());
  ASSERT_EQ(catalog.size(), 1u);

  // Cold reference for bit-exactness: same program, same topology, fresh
  // graph, straight through the batch facade.
  RunOptions cold_options;
  cold_options.engine = FastServingOptions().engine;
  Graph cold_graph = ChainGraph(64);
  auto cold = PowerLog::Run(SsspSource(), cold_graph, cold_options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();

  for (VertexId v : {0u, 1u, 17u, 63u}) {
    auto value = catalog.Lookup("sssp", "chain", v);
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_EQ(*value, cold->values[v]) << "vertex " << v;  // bit-exact
    EXPECT_EQ(*value, static_cast<double>(v));             // chain distance
  }

  // Ascending = nearest first, the natural order for distances.
  auto top = catalog.TopK("sssp", "chain", 3, /*ascending=*/true);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 3u);
  EXPECT_EQ((*top)[0].first, 0u);
  EXPECT_EQ((*top)[0].second, 0.0);
  EXPECT_EQ((*top)[1].second, 1.0);
  EXPECT_EQ((*top)[2].second, 2.0);

  auto bottom = catalog.TopK("sssp", "chain", 1, /*ascending=*/false);
  ASSERT_TRUE(bottom.ok());
  EXPECT_EQ((*bottom)[0].second, 63.0);

  EXPECT_TRUE(catalog.Lookup("nope", "chain", 0).status().IsNotFound());
  EXPECT_EQ(catalog.Lookup("sssp", "chain", 64).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(catalog.TopK("sssp", "nope", 2).status().IsNotFound());
}

TEST(ServingCatalog, MaterializeIsIdempotentAndChecked) {
  serving::ServingCatalog catalog(FastServingOptions());
  ASSERT_TRUE(
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(16))
          .ok());
  ASSERT_TRUE(
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(16))
          .ok());
  EXPECT_EQ(catalog.size(), 1u);

  // A program failing the MRA conditions is refused residency.
  auto gcn = datalog::GetCatalogEntry("gcn_forward");
  ASSERT_TRUE(gcn.ok());
  auto refused =
      catalog.MaterializeSource("gcn", "chain2", gcn->source, ChainGraph(8));
  EXPECT_EQ(refused.status().code(), StatusCode::kConditionViolated);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(ServingCatalog, ZeroGraphRebuildsAcrossQueryStorm) {
  serving::ServingCatalog catalog(FastServingOptions());
  ASSERT_TRUE(
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(48))
          .ok());
  ASSERT_EQ(catalog.graph_builds(), 1);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(catalog.Lookup("sssp", "chain", i % 48).ok());
    if (i % 10 == 0) {
      ASSERT_TRUE(catalog.TopK("sssp", "chain", 5).ok());
    }
  }
  ASSERT_TRUE(catalog.Run("sssp", "chain").ok());
  ASSERT_TRUE(catalog.Run("sssp", "chain", 7).ok());
  // The acceptance counter: builds == catalog size, never query count.
  EXPECT_EQ(catalog.graph_builds(), 1);
  EXPECT_EQ(catalog.graph_builds(), static_cast<int64_t>(catalog.size()));
}

TEST(ServingCatalog, RunCacheHitsMissesAndEvictions) {
  serving::ServingOptions options = FastServingOptions();
  options.cache_capacity = 2;
  serving::ServingCatalog catalog(options);
  ASSERT_TRUE(
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(32))
          .ok());

  auto miss = catalog.Run("sssp", "chain", 3);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_FALSE(miss->cached);
  EXPECT_TRUE(miss->converged);

  auto hit = catalog.Run("sssp", "chain", 3);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->cached);
  // A cached answer is the converged answer, bit for bit.
  ASSERT_EQ(hit->values.size(), miss->values.size());
  for (size_t v = 0; v < hit->values.size(); ++v) {
    EXPECT_EQ(hit->values[v], miss->values[v]);
  }

  // nocache bypasses the cache without disturbing it.
  auto fresh = catalog.Run("sssp", "chain", 3, 0, /*use_cache=*/false);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->cached);

  // Two more keys overflow capacity 2 and evict the oldest (source=3).
  ASSERT_TRUE(catalog.Run("sssp", "chain", 5).ok());
  ASSERT_TRUE(catalog.Run("sssp", "chain", 7).ok());
  auto evicted = catalog.Run("sssp", "chain", 3);
  ASSERT_TRUE(evicted.ok());
  EXPECT_FALSE(evicted->cached);

  auto snap = catalog.Metrics();
  int64_t hits = -1, misses = -1, evictions = -1;
  for (const auto& [name, value] : snap.counters) {
    if (name == "serving.cache.hits") hits = value;
    if (name == "serving.cache.misses") misses = value;
    if (name == "serving.cache.evictions") evictions = value;
  }
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(misses, 4);  // source=3 (x2 after eviction), 5, 7
  EXPECT_GE(evictions, 2);
}

TEST(ServingCatalog, SourceOverrideMatchesColdRun) {
  serving::ServingCatalog catalog(FastServingOptions());
  ASSERT_TRUE(
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(40))
          .ok());
  auto served = catalog.Run("sssp", "chain", 11);
  ASSERT_TRUE(served.ok());
  ASSERT_TRUE(served->converged);

  RunOptions cold_options;
  cold_options.engine = FastServingOptions().engine;
  cold_options.source = 11;
  Graph cold_graph = ChainGraph(40);
  auto cold = PowerLog::Run(SsspSource(), cold_graph, cold_options);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(served->values.size(), cold->values.size());
  for (size_t v = 0; v < served->values.size(); ++v) {
    EXPECT_EQ(served->values[v], cold->values[v]) << "vertex " << v;
  }
  EXPECT_TRUE(std::isinf(served->values[0]));  // behind the source
  EXPECT_EQ(served->values[39], 28.0);
}

// Admission control, deterministically: occupy the single run slot with a
// long sync run (one superstep per chain hop), observe the inflight gauge,
// then probe rejection and queue-deadline behaviour from the outside.
TEST(ServingCatalog, AdmissionRejectsAndTimesOutWhenSaturated) {
  serving::ServingOptions options = FastServingOptions();
  options.max_inflight_runs = 1;
  options.max_queued_runs = 1;
  options.cache_capacity = 0;  // every run must really execute
  serving::ServingCatalog catalog(options);
  ASSERT_TRUE(catalog
                  .MaterializeSource("sssp", "chain", SsspSource(),
                                     ChainGraph(8000))
                  .ok());

  std::thread occupant([&catalog] {
    auto run = catalog.Run("sssp", "chain", 1);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
  });

  auto gauge = [&catalog](const char* wanted) -> double {
    auto snap = catalog.Metrics();
    for (const auto& [name, value] : snap.gauges) {
      if (name == wanted) return value;
    }
    return -1;
  };
  const int64_t t0 = NowMicros();
  while (gauge("serving.run.inflight") < 1 &&
         NowMicros() - t0 < 30 * 1000 * 1000) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(gauge("serving.run.inflight"), 1) << "occupant never started";

  // Queue slot free: this request waits, then times out at its deadline —
  // the occupant's 8000-superstep run outlives 50 ms by a wide margin.
  auto timed_out = catalog.Run("sssp", "chain", 2, /*deadline_ms=*/50);
  EXPECT_EQ(timed_out.status().code(), StatusCode::kTimeout);

  // Saturate the queue, then the next request is rejected immediately.
  // The probe fires only once the queue occupant is *observably* enqueued —
  // probing earlier would race it for the single waiting slot.
  std::thread queued([&catalog] {
    // Either admitted after the occupant finishes, or timed out — both are
    // legal; this thread exists to hold the queue slot.
    (void)catalog.Run("sssp", "chain", 3, /*deadline_ms=*/120000);
  });
  const int64_t t1 = NowMicros();
  Status rejected = Status::OK();
  while (NowMicros() - t1 < 30 * 1000 * 1000) {
    if (gauge("serving.run.queued") < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    rejected =
        catalog.Run("sssp", "chain", 4, /*deadline_ms=*/100).status();
    if (rejected.code() == StatusCode::kOutOfRange) break;  // queue full
  }
  EXPECT_EQ(rejected.code(), StatusCode::kOutOfRange)
      << rejected.ToString();

  occupant.join();
  queued.join();

  auto snap = catalog.Metrics();
  int64_t rejections = 0, timeouts = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "serving.run.rejected") rejections = value;
    if (name == "serving.run.timeouts") timeouts = value;
  }
  EXPECT_GE(rejections, 1);
  EXPECT_GE(timeouts, 1);
}

// ---------------------------------------------------------------------------
// HTTP integration: the serving handler mounted on the exposition server.

TEST(ServingHttp, EndToEndRoutes) {
  serving::ServingCatalog catalog(FastServingOptions());
  ASSERT_TRUE(
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(32))
          .ok());

  ExpositionServer server;
  server.SetHandler(serving::MakeServingHandler(&catalog));
  server.SetSources([&catalog] { return catalog.Metrics(); },
                    [] { return std::string(); });
  auto port = server.Start(0, /*handler_threads=*/2);
  ASSERT_TRUE(port.ok());

  EXPECT_NE(Body(HttpGet(*port, "/catalog")).find("\"program\":\"sssp\""),
            std::string::npos);
  EXPECT_EQ(Body(HttpGet(*port, "/lookup?program=sssp&dataset=chain&v=5")),
            "{\"vertex\":5,\"value\":5}\n");
  const std::string topk =
      Body(HttpGet(*port, "/topk?program=sssp&dataset=chain&k=2&order=asc"));
  EXPECT_NE(topk.find("{\"vertex\":0,\"value\":0}"), std::string::npos)
      << topk;
  const std::string run =
      Body(HttpGet(*port, "/run?program=sssp&dataset=chain&source=3"));
  EXPECT_NE(run.find("\"converged\":true"), std::string::npos) << run;
  const std::string cached =
      Body(HttpGet(*port, "/run?program=sssp&dataset=chain&source=3"));
  EXPECT_NE(cached.find("\"cached\":true"), std::string::npos) << cached;

  // Error mapping: unknown pair -> 404, malformed vertex -> 400.
  EXPECT_NE(HttpGet(*port, "/lookup?program=x&dataset=chain&v=1").find("404"),
            std::string::npos);
  EXPECT_NE(
      HttpGet(*port, "/lookup?program=sssp&dataset=chain&v=zz").find("400"),
      std::string::npos);

  // The serving counters ride the metrics plane.
  const std::string metrics = Body(HttpGet(*port, "/metrics"));
  EXPECT_NE(metrics.find("powerlog_serving_cache_hits 1"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("powerlog_serving_graph_builds 1"),
            std::string::npos);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Query-level observability: request tracking, RED metrics, /debug/queries.

TEST(ServingObservability, QueryTrackingRecordsPhasesAndOutcomes) {
  serving::ServingOptions options = FastServingOptions();
  options.slow_query_capacity = 2;  // force truncation below
  serving::ServingCatalog catalog(options);
  ASSERT_TRUE(
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(32))
          .ok());

  // A real run through the tracked path fills queue/exec/version.
  const int64_t run_id = catalog.StartQuery("run", "sssp/chain source=3");
  auto run = catalog.Run("sssp", "chain", 3);
  ASSERT_TRUE(run.ok());
  catalog.FinishQuery(run_id, Status::OK());

  // An error outcome keys the RED error counter by status token.
  const int64_t bad_id = catalog.StartQuery("lookup", "nope/chain v=1");
  auto missing = catalog.Lookup("nope", "chain", 1);
  catalog.FinishQuery(bad_id, missing.status());

  const int64_t third_id = catalog.StartQuery("lookup", "sssp/chain v=1");
  ASSERT_TRUE(catalog.Lookup("sssp", "chain", 1).ok());
  catalog.FinishQuery(third_id, Status::OK());

  auto debug = catalog.DebugQueries();
  EXPECT_TRUE(debug.inflight.empty());
  // Capacity 2 keeps the two slowest of the three, descending by total_ms.
  ASSERT_EQ(debug.slowest.size(), 2u);
  EXPECT_GE(debug.slowest[0].total_ms, debug.slowest[1].total_ms);
  EXPECT_EQ(debug.slowest[0].id, run_id);  // the engine run dominates
  EXPECT_EQ(debug.slowest[0].route, "run");
  EXPECT_EQ(debug.slowest[0].status, "OK");
  EXPECT_EQ(debug.slowest[0].version, 1u);
  EXPECT_FALSE(debug.slowest[0].cached);
  EXPECT_GT(debug.slowest[0].exec_ms, 0.0);

  // An inflight query shows up in the snapshot until FinishQuery.
  const int64_t open_id = catalog.StartQuery("topk", "sssp/chain k=3");
  auto live = catalog.DebugQueries();
  ASSERT_EQ(live.inflight.size(), 1u);
  EXPECT_EQ(live.inflight[0].id, open_id);
  EXPECT_EQ(live.inflight[0].route, "topk");
  catalog.FinishQuery(open_id, Status::OK());
  EXPECT_TRUE(catalog.DebugQueries().inflight.empty());

  auto snap = catalog.Metrics();
  int64_t run_requests = -1, lookup_requests = -1, not_found = -1;
  for (const auto& [name, value] : snap.counters) {
    if (name == "serving.red.run.requests") run_requests = value;
    if (name == "serving.red.lookup.requests") lookup_requests = value;
    if (name == "serving.red.lookup.errors.not_found") not_found = value;
  }
  EXPECT_EQ(run_requests, 1);
  EXPECT_EQ(lookup_requests, 2);
  EXPECT_EQ(not_found, 1);
  bool found_histogram = false;
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "serving.latency.run") {
      found_histogram = true;
      int64_t total = 0;
      for (const int64_t c : hist.counts) total += c;
      EXPECT_EQ(total, 1);
    }
  }
  EXPECT_TRUE(found_histogram);
}

// The acceptance gate: per-route latency histograms must render strictly
// cumulative bucket series even when the snapshot races live Observe calls.
TEST(ServingObservability, RedHistogramCumulativeUnderConcurrentSnapshot) {
  serving::ServingCatalog catalog(FastServingOptions());
  // Warm-up observation on this thread so the histogram exists before the
  // first snapshot — the race under test is Observe-vs-snapshot, not lazy
  // registration.
  catalog.FinishQuery(catalog.StartQuery("run", "p/d"), Status::OK());
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&catalog, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t id = catalog.StartQuery("run", "p/d");
        catalog.FinishQuery(id, Status::OK());
      }
    });
  }

  int64_t prev_total = 0;
  for (int iter = 0; iter < 100; ++iter) {
    const std::string text = PrometheusText(catalog.Metrics());
    // Walk the rendered bucket lines in order: each must carry a
    // non-decreasing cumulative count, and _count must equal +Inf.
    int64_t prev_bucket = 0, inf_bucket = -1, count_line = -1;
    size_t pos = 0;
    while (pos < text.size()) {
      size_t end = text.find('\n', pos);
      if (end == std::string::npos) end = text.size();
      const std::string line = text.substr(pos, end - pos);
      pos = end + 1;
      if (line.rfind("powerlog_serving_latency_run_bucket{", 0) == 0) {
        const int64_t value =
            std::strtoll(line.substr(line.find("} ") + 2).c_str(), nullptr, 10);
        ASSERT_GE(value, prev_bucket) << line;
        prev_bucket = value;
        if (line.find("le=\"+Inf\"") != std::string::npos) inf_bucket = value;
      } else if (line.rfind("powerlog_serving_latency_run_count ", 0) == 0) {
        count_line = std::strtoll(
            line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
      }
    }
    if (inf_bucket >= 0) {
      EXPECT_EQ(inf_bucket, count_line);
      // The total observation count never moves backwards across snapshots.
      EXPECT_GE(inf_bucket, prev_total);
      prev_total = inf_bucket;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();
  EXPECT_GT(prev_total, 0);
}

TEST(ServingHttp, DebugQueriesAndRedMetricsOverHttp) {
  serving::ServingCatalog catalog(FastServingOptions());
  ASSERT_TRUE(
      catalog.MaterializeSource("sssp", "chain", SsspSource(), ChainGraph(32))
          .ok());
  ExpositionServer server;
  server.SetHandler(serving::MakeServingHandler(&catalog));
  server.SetSources([&catalog] { return catalog.Metrics(); },
                    [&catalog] { return catalog.TraceJson(); });
  auto port = server.Start(0, /*handler_threads=*/2);
  ASSERT_TRUE(port.ok());

  EXPECT_NE(Body(HttpGet(*port, "/run?program=sssp&dataset=chain&source=3"))
                .find("\"converged\":true"),
            std::string::npos);
  EXPECT_NE(HttpGet(*port, "/lookup?program=x&dataset=chain&v=1").find("404"),
            std::string::npos);

  const std::string debug = Body(HttpGet(*port, "/debug/queries"));
  EXPECT_NE(debug.find("\"inflight\":["), std::string::npos) << debug;
  EXPECT_NE(debug.find("\"route\":\"run\""), std::string::npos) << debug;
  EXPECT_NE(debug.find("\"status\":\"not_found\""), std::string::npos)
      << debug;
  EXPECT_NE(debug.find("\"exec_ms\":"), std::string::npos) << debug;

  const std::string metrics = Body(HttpGet(*port, "/metrics"));
  EXPECT_NE(metrics.find("powerlog_serving_red_run_requests 1"),
            std::string::npos)
      << metrics;
  EXPECT_NE(
      metrics.find("powerlog_serving_red_lookup_errors_not_found 1"),
      std::string::npos);
  EXPECT_NE(metrics.find("powerlog_serving_latency_run_bucket"),
            std::string::npos);
  EXPECT_NE(metrics.find("powerlog_serving_queries_inflight"),
            std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace powerlog
