#include <gtest/gtest.h>

#include "smt/polynomial.h"

namespace powerlog::smt {
namespace {

TEST(Polynomial, ConstantsAndVariables) {
  auto c = Polynomial::Constant(Rational(3, 2));
  EXPECT_TRUE(c.IsConstant());
  EXPECT_EQ(c.ConstantValue(), Rational(3, 2));
  auto x = Polynomial::Variable("x");
  EXPECT_FALSE(x.IsConstant());
}

TEST(Polynomial, ZeroIsEmpty) {
  Polynomial zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.ToString(), "0");
  auto x = Polynomial::Variable("x");
  EXPECT_TRUE((x - x).IsZero());
}

TEST(Polynomial, AdditionMergesMonomials) {
  auto x = Polynomial::Variable("x");
  auto p = x + x;
  ASSERT_EQ(p.terms().size(), 1u);
  EXPECT_EQ(p.terms().begin()->second, Rational(2, 1));
}

TEST(Polynomial, MultiplicationExpands) {
  auto x = Polynomial::Variable("x");
  auto y = Polynomial::Variable("y");
  auto one = Polynomial::Constant(Rational(1, 1));
  // (x+1)(y+1) = xy + x + y + 1
  auto p = (x + one) * (y + one);
  EXPECT_EQ(p.terms().size(), 4u);
}

TEST(Polynomial, CommutativeRing) {
  auto x = Polynomial::Variable("x");
  auto y = Polynomial::Variable("y");
  EXPECT_EQ(x * y, y * x);
  EXPECT_EQ(x + y, y + x);
  EXPECT_EQ((x + y) * x, x * x + y * x);
}

TEST(PolynomialFromTerm, LinearExpression) {
  // 0.85 * x / d with d symbolic -> (17/20) * x * recip[...]
  auto t = Div(Mul(ConstDouble(0.85), Var("x")), Var("d"));
  auto p = Polynomial::FromTerm(t);
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->HasReciprocal());
  EXPECT_EQ(p->terms().size(), 1u);
  EXPECT_EQ(p->terms().begin()->second, Rational(17, 20));
}

TEST(PolynomialFromTerm, ConstantDivision) {
  auto t = Div(Var("x"), ConstInt(4));
  auto p = Polynomial::FromTerm(t);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->HasReciprocal());
  EXPECT_EQ(p->terms().begin()->second, Rational(1, 4));
}

TEST(PolynomialFromTerm, DivisionByZeroConstant) {
  EXPECT_FALSE(Polynomial::FromTerm(Div(Var("x"), ConstInt(0))).ok());
}

TEST(PolynomialFromTerm, RejectsLatticeOps) {
  EXPECT_TRUE(
      Polynomial::FromTerm(Min(Var("x"), Var("y"))).status().IsNotSupported());
  EXPECT_TRUE(Polynomial::FromTerm(Relu(Var("x"))).status().IsNotSupported());
  EXPECT_TRUE(Polynomial::FromTerm(Abs(Var("x"))).status().IsNotSupported());
}

TEST(PolynomialFromTerm, SameDenominatorSameReciprocalVar) {
  auto a = Polynomial::FromTerm(Div(Var("x"), Var("d")));
  auto b = Polynomial::FromTerm(Div(Var("y"), Var("d")));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // x/d + y/d - (x+y)/d == 0 must hold with shared reciprocal naming.
  auto sum = *a + *b;
  auto combined = Polynomial::FromTerm(Div(Add(Var("x"), Var("y")), Var("d")));
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(sum, *combined);
}

TEST(PolynomialFromTerm, NormalFormDecidesIdentities) {
  // (x + y)^2 == x^2 + 2xy + y^2
  auto lhs = Mul(Add(Var("x"), Var("y")), Add(Var("x"), Var("y")));
  auto rhs = Add(Add(Mul(Var("x"), Var("x")), Mul(ConstInt(2), Mul(Var("x"), Var("y")))),
                 Mul(Var("y"), Var("y")));
  auto pl = Polynomial::FromTerm(lhs);
  auto pr = Polynomial::FromTerm(rhs);
  ASSERT_TRUE(pl.ok());
  ASSERT_TRUE(pr.ok());
  EXPECT_EQ(*pl, *pr);
}

TEST(PolynomialFromTerm, DetectsNonIdentities) {
  auto pl = Polynomial::FromTerm(Mul(Var("x"), Var("x")));
  auto pr = Polynomial::FromTerm(Mul(ConstInt(2), Var("x")));
  ASSERT_TRUE(pl.ok());
  ASSERT_TRUE(pr.ok());
  EXPECT_NE(*pl, *pr);
}

TEST(Polynomial, ScaleAndNegate) {
  auto x = Polynomial::Variable("x");
  auto p = x.Scale(Rational(3, 1));
  EXPECT_EQ(p.terms().begin()->second, Rational(3, 1));
  EXPECT_TRUE((p + (-p)).IsZero());
}

TEST(Polynomial, ToStringDeterministic) {
  auto x = Polynomial::Variable("x");
  auto y = Polynomial::Variable("y");
  EXPECT_EQ((x + y).ToString(), (y + x).ToString());
}

}  // namespace
}  // namespace powerlog::smt
