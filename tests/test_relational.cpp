#include <gtest/gtest.h>

#include <cmath>

#include "checker/rewrite.h"
#include "datalog/analyzer.h"
#include "datalog/parser.h"
#include "eval/naive.h"
#include "relational/rel_eval.h"
#include "relational/relation.h"
#include "test_util.h"

namespace powerlog::relational {
namespace {

using powerlog::testing::MustCompile;
using powerlog::testing::SmallDag;
using powerlog::testing::SmallWeightedGraph;

TEST(Relation, InsertDedupContains) {
  Relation r(2);
  EXPECT_TRUE(*r.Insert({1, 2}));
  EXPECT_FALSE(*r.Insert({1, 2}));
  EXPECT_TRUE(*r.Insert({1, 3}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({2, 1}));
}

TEST(Relation, ArityChecked) {
  Relation r(2);
  EXPECT_FALSE(r.Insert({1}).ok());
  EXPECT_FALSE(r.Insert({1, 2, 3}).ok());
}

TEST(Relation, ProbeFindsMatchingTuples) {
  Relation r(2);
  ASSERT_TRUE(r.Insert({1, 10}).ok());
  ASSERT_TRUE(r.Insert({1, 11}).ok());
  ASSERT_TRUE(r.Insert({2, 20}).ok());
  const auto& hits = r.Probe(0, 1.0);
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(r.Probe(0, 9.0).empty());
  EXPECT_EQ(r.Probe(1, 20.0).size(), 1u);
}

TEST(Relation, ProbeIndexMaintainedAcrossInserts) {
  Relation r(1);
  ASSERT_TRUE(r.Insert({5}).ok());
  EXPECT_EQ(r.Probe(0, 5.0).size(), 1u);  // builds the index
  ASSERT_TRUE(r.Insert({5.5}).ok());
  ASSERT_TRUE(r.Insert({5}).ok());  // duplicate
  EXPECT_EQ(r.Probe(0, 5.0).size(), 1u);
  EXPECT_EQ(r.Probe(0, 5.5).size(), 1u);
}

TEST(Relation, FingerprintOrderIndependent) {
  Relation a(2), b(2);
  ASSERT_TRUE(a.Insert({1, 2}).ok());
  ASSERT_TRUE(a.Insert({3, 4}).ok());
  ASSERT_TRUE(b.Insert({3, 4}).ok());
  ASSERT_TRUE(b.Insert({1, 2}).ok());
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  ASSERT_TRUE(b.Insert({5, 6}).ok());
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(Relation, HashTupleZeroSigns) {
  EXPECT_EQ(HashTuple({0.0}), HashTuple({-0.0}));
}

TEST(Database, GetOrCreateChecksArity) {
  Database db;
  auto r1 = db.GetOrCreate("edge", 3);
  ASSERT_TRUE(r1.ok());
  auto again = db.GetOrCreate("edge", 3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*r1, *again);
  EXPECT_FALSE(db.GetOrCreate("edge", 2).ok());
  EXPECT_TRUE(db.Has("edge"));
  EXPECT_EQ(db.Find("nope"), nullptr);
}

TEST(RelationalEvaluator, RejectsNonRecursivePrograms) {
  EXPECT_FALSE(RelationalEvaluator::Create("f(X,v) :- X = 0, v = 1.").ok());
}

TEST(RelationalEvaluator, SsspOnPathExact) {
  auto entry = datalog::GetCatalogEntry("sssp");
  auto ev = RelationalEvaluator::Create(entry->source);
  ASSERT_TRUE(ev.ok()) << ev.status().ToString();
  auto g = GeneratePath(5, 2.0);
  auto r = ev->Evaluate(g);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->converged);
  ASSERT_EQ(r->values.size(), 5u);
  for (int v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(r->values[v], 2.0 * v);
}

TEST(RelationalEvaluator, DegreeIsTrueTupleCount) {
  // degree(X, count[Y]) must count edge tuples, not sum Y values.
  auto ev = RelationalEvaluator::Create(
      "degree(X,count[Y]) :- edge(X,Y).\n"
      "r(X,v) :- X = 0, v = 1.\n"
      "r(Y,sum[v1]) :- r(X,v), edge(X,Y), degree(X,d), v1 = v/d.");
  ASSERT_TRUE(ev.ok()) << ev.status().ToString();
  auto g = GenerateStar(4);  // 0 -> 1,2,3
  auto r = ev->Evaluate(g);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Each spoke gets v/d = 1/3.
  EXPECT_NEAR(r->values[1], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(r->values[2], 1.0 / 3.0, 1e-12);
}

TEST(RelationalEvaluator, PathsDagCountsPaths) {
  auto entry = datalog::GetCatalogEntry("paths_dag");
  auto ev = RelationalEvaluator::Create(entry->source);
  ASSERT_TRUE(ev.ok());
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  auto g = std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();
  auto r = ev->Evaluate(g);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->values[3], 2.0);
}

// ---------------------------------------------------------------------------
// Cross-check: the relational evaluator (generic joins, no kernels, no
// MonoTable) must agree with the kernel-based naive evaluator on every
// catalog program. Two completely independent implementations of Eq. 2.
// ---------------------------------------------------------------------------

struct CrossCase {
  std::string program;
  std::string graph;
  double tolerance;
};

class RelationalCrossCheckTest : public ::testing::TestWithParam<CrossCase> {};

TEST_P(RelationalCrossCheckTest, AgreesWithKernelNaive) {
  const auto& param = GetParam();
  auto entry = datalog::GetCatalogEntry(param.program);
  ASSERT_TRUE(entry.ok());
  // Small graphs: relational join evaluation is O(|E| * iters) with maps.
  Graph g = param.graph == "dag" ? SmallDag(11) : [] {
    Rng rng(12);
    GraphBuilder b;
    b.EnsureVertices(18);
    for (VertexId v = 0; v < 18; ++v) {
      for (int k = 0; k < 2; ++k) {
        VertexId d = static_cast<VertexId>(rng.NextBounded(18));
        if (d == v) d = (d + 1) % 18;
        b.AddEdge(v, d, 0.05 + 0.4 * rng.NextDouble());
      }
    }
    GraphBuilder::Options opts;
    opts.dedup = true;
    return std::move(b).Build(opts).ValueOrDie();
  }();

  auto ev = RelationalEvaluator::Create(entry->source);
  ASSERT_TRUE(ev.ok()) << ev.status().ToString();
  RelEvalOptions rel_options;
  rel_options.max_iterations = 500;
  auto relational = ev->Evaluate(g, rel_options);
  ASSERT_TRUE(relational.ok()) << relational.status().ToString();

  Kernel kernel = MustCompile(param.program);
  eval::EvalOptions options;
  options.max_iterations = 500;
  auto reference = eval::NaiveEvaluate(kernel, g, options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  Aggregator agg(kernel.agg);
  const double absent = agg.Identity().ValueOr(std::nan(""));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double expect = reference->values[v];
    auto it = relational->values.find(static_cast<double>(v));
    if (it == relational->values.end()) {
      // No fact derived: the kernel side must hold the identity / NaN.
      if (std::isnan(absent)) {
        EXPECT_TRUE(std::isnan(expect)) << param.program << " vertex " << v;
      } else {
        EXPECT_EQ(expect, absent) << param.program << " vertex " << v;
      }
      continue;
    }
    EXPECT_NEAR(it->second, expect, param.tolerance)
        << param.program << " vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, RelationalCrossCheckTest,
    ::testing::Values(
        CrossCase{"sssp", "rand", 1e-12}, CrossCase{"cc", "rand", 1e-12},
        CrossCase{"pagerank", "rand", 1e-3}, CrossCase{"adsorption", "rand", 1e-3},
        CrossCase{"katz", "dag", 1e-4}, CrossCase{"bp", "rand", 1e-3},
        CrossCase{"paths_dag", "dag", 1e-12}, CrossCase{"cost", "dag", 1e-9},
        CrossCase{"viterbi", "dag", 1e-12}, CrossCase{"simrank", "rand", 1e-3},
        CrossCase{"lca", "dag", 1e-12}, CrossCase{"apsp", "rand", 1e-12},
        CrossCase{"commnet", "rand", 1e-9}, CrossCase{"gcn_forward", "dag", 1e-9}),
    [](const ::testing::TestParamInfo<CrossCase>& info) {
      return info.param.program;
    });

// ---------------------------------------------------------------------------
// Semi-naive (delta) relational evaluation.
// ---------------------------------------------------------------------------

class SemiNaiveRelationalTest : public ::testing::TestWithParam<CrossCase> {};

TEST_P(SemiNaiveRelationalTest, AgreesWithNaiveRelational) {
  const auto& param = GetParam();
  auto entry = datalog::GetCatalogEntry(param.program);
  ASSERT_TRUE(entry.ok());
  Graph g = param.graph == "dag" ? SmallDag(13) : GenerateGrid(5, true, 7);
  auto ev = RelationalEvaluator::Create(entry->source);
  ASSERT_TRUE(ev.ok());
  RelEvalOptions naive_options;
  naive_options.max_iterations = 400;
  auto naive = ev->Evaluate(g, naive_options);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  RelEvalOptions delta_options = naive_options;
  delta_options.semi_naive = true;
  auto delta = ev->Evaluate(g, delta_options);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  for (const auto& [key, value] : naive->values) {
    auto it = delta->values.find(key);
    ASSERT_NE(it, delta->values.end()) << param.program << " key " << key;
    EXPECT_NEAR(it->second, value, param.tolerance)
        << param.program << " key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, SemiNaiveRelationalTest,
    ::testing::Values(CrossCase{"sssp", "grid", 1e-12},
                      CrossCase{"cc", "grid", 1e-12},
                      CrossCase{"pagerank", "grid", 1e-3},
                      CrossCase{"katz", "dag", 1e-4},
                      CrossCase{"paths_dag", "dag", 1e-12},
                      CrossCase{"viterbi", "dag", 1e-12}),
    [](const ::testing::TestParamInfo<CrossCase>& info) {
      return info.param.program;
    });

TEST(SemiNaiveRelational, ExecutesTheGeneratedProgram2b) {
  // Full circle: the rewriter turns the original (non-monotonic) PageRank
  // into its incremental equivalent, which the semi-naive relational
  // evaluator executes to the same fixpoint as the original under naive
  // evaluation.
  auto entry = datalog::GetCatalogEntry("pagerank");
  ASSERT_TRUE(entry.ok());
  auto parsed = datalog::Parse(entry->source);
  ASSERT_TRUE(parsed.ok());
  auto analyzed = datalog::Analyze(*parsed);
  ASSERT_TRUE(analyzed.ok());
  auto incremental = checker::EmitIncrementalEquivalent(*analyzed);
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();

  auto g = GenerateGrid(5, false, 3);

  auto original = RelationalEvaluator::Create(entry->source);
  ASSERT_TRUE(original.ok());
  RelEvalOptions options;
  options.epsilon_override = 1e-8;
  options.max_iterations = 500;
  auto reference = original->Evaluate(g, options);
  ASSERT_TRUE(reference.ok());

  auto rewritten = RelationalEvaluator::Create(*incremental);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString() << "\n"
                              << *incremental;
  RelEvalOptions delta_options = options;
  delta_options.semi_naive = true;
  auto run = rewritten->Evaluate(g, delta_options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (const auto& [key, value] : reference->values) {
    auto it = run->values.find(key);
    ASSERT_NE(it, run->values.end()) << key;
    EXPECT_NEAR(it->second, value, 1e-4) << "key " << key;
  }
}

TEST(SemiNaiveRelational, RejectsMean) {
  auto entry = datalog::GetCatalogEntry("commnet");
  auto ev = RelationalEvaluator::Create(entry->source);
  ASSERT_TRUE(ev.ok());
  RelEvalOptions options;
  options.semi_naive = true;
  auto g = GeneratePath(4);
  EXPECT_TRUE(ev->Evaluate(g, options).status().IsConditionViolated());
}

}  // namespace
}  // namespace powerlog::relational
