// SIMD compute-plane tests (ISSUE 9): vector-vs-scalar bit-equality of the
// span kernels across every KernelOp shape — including ±inf sentinels, NaN,
// the aggregate identities, denormals, and unaligned/tail span lengths —
// the combine-tile value and dirty-mask contracts, and the runtime dispatch
// (CPUID probe ∧ POWERLOG_SIMD override).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/aggregates.h"
#include "core/kernel.h"
#include "core/kernel_simd.h"
#include "datalog/ast.h"
#include "graph/graph.h"
#include "test_util.h"

// The direct ComputeSpanAvx2/CombineTileAvx2 references below only exist on
// x86 builds (kernel_simd.h guards the declarations); elsewhere the dispatch
// can never select them, so comparing against the scalar reference is moot.
#if defined(__x86_64__) || defined(__i386__)
#define POWERLOG_TEST_HAVE_AVX2_SYMBOLS 1
#endif

namespace powerlog::simd {
namespace {

using powerlog::testing::MustCompile;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();

/// Bitwise equality, except any-NaN == any-NaN: the header contract only
/// guarantees NaN-ness, not payload/sign (operand scheduling picks which
/// input NaN x86 propagates, and scalar codegen may commute what the
/// intrinsics spell out).
bool BitEqual(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Every KernelOp, including the shapes the engine never routes through the
/// span path (uniform and kGeneric) — the span functions are defined for
/// all of them and the equality contract must hold everywhere.
const KernelOp kAllOps[] = {
    KernelOp::kGeneric,   KernelOp::kConst,    KernelOp::kX,
    KernelOp::kXPlusW,    KernelOp::kXPlusA,   KernelOp::kXTimesW,
    KernelOp::kXTimesA,   KernelOp::kXOverDeg, KernelOp::kAXOverDeg,
    KernelOp::kXOverDegA, KernelOp::kAXW,      KernelOp::kAXWB,
};

/// Interesting scalar inputs: both aggregate identities, zeros, denormals,
/// infinities, NaN, and plain magnitudes.
const double kSpecials[] = {0.0,  -0.0,    1.0,  -1.0,     0.85, 1e300,
                            1e-9, kDenorm, kInf, -kInf,    kNan, 2.5};

std::vector<Edge> MakeEdges(size_t n, Rng* rng, bool specials) {
  std::vector<Edge> edges(n);
  for (size_t i = 0; i < n; ++i) {
    edges[i].dst = static_cast<VertexId>(rng->NextBounded(1000));
    if (specials && rng->NextBounded(4) == 0) {
      edges[i].weight =
          kSpecials[rng->NextBounded(sizeof(kSpecials) / sizeof(double))];
    } else {
      edges[i].weight = rng->NextDouble() * 4.0 - 2.0;
    }
  }
  return edges;
}

#if defined(POWERLOG_TEST_HAVE_AVX2_SYMBOLS)
void CheckSpanBitExact(EdgeSpanFn vector_fn, const char* which) {
  Rng rng(0x51D0);
  // Span lengths straddling the 4- and 8-lane widths: empty, sub-vector,
  // exact multiples, and every tail remainder. Nothing here is aligned —
  // Edge spans come out of the CSR mid-array.
  const size_t lengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 11, 16, 29, 64, 67};
  for (KernelOp op : kAllOps) {
    EdgeKernelSpec spec;
    spec.op = op;
    for (int round = 0; round < 200; ++round) {
      spec.a = kSpecials[rng.NextBounded(sizeof(kSpecials) / sizeof(double))];
      spec.b = kSpecials[rng.NextBounded(sizeof(kSpecials) / sizeof(double))];
      const double x =
          kSpecials[rng.NextBounded(sizeof(kSpecials) / sizeof(double))];
      const double deg = static_cast<double>(1 + rng.NextBounded(16));
      const size_t n = lengths[rng.NextBounded(13)];
      std::vector<Edge> edges = MakeEdges(n, &rng, /*specials=*/true);
      std::vector<double> scalar(n + 1, 12345.0), vec(n + 1, 54321.0);
      ComputeSpanScalar(spec, x, deg, edges.data(), n, scalar.data());
      vector_fn(spec, x, deg, edges.data(), n, vec.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_PRED2(BitEqual, scalar[i], vec[i])
            << which << " " << KernelOpName(op) << " lane " << i << "/" << n
            << " x=" << x << " w=" << edges[i].weight << " a=" << spec.a
            << " b=" << spec.b;
      }
      // Neither implementation may write past the span.
      EXPECT_EQ(scalar[n], 12345.0);
      EXPECT_EQ(vec[n], 54321.0);
    }
  }
}

TEST(SimdSpan, AllShapesBitExactVsScalarRandomized) {
  if (DetectCpuLevel() < Level::kAvx2) {
    GTEST_SKIP() << "host CPU has no AVX2; scalar-only build";
  }
  CheckSpanBitExact(&ComputeSpanAvx2, "avx2");
}

TEST(SimdSpan, Avx512AllShapesBitExactVsScalarRandomized) {
  if (DetectCpuLevel() < Level::kAvx512) {
    GTEST_SKIP() << "host CPU has no AVX-512 F+VL";
  }
  CheckSpanBitExact(&ComputeSpanAvx512, "avx512");
}
#endif  // POWERLOG_TEST_HAVE_AVX2_SYMBOLS

TEST(SimdSpan, MatchesApplyEdgeKernelLaneWise) {
  // The scalar span function is itself only a batch form of
  // ApplyEdgeKernel; pin that equivalence so the AVX2 test above transitively
  // proves vector == ApplyEdgeKernel.
  Rng rng(0xAB5E);
  for (KernelOp op : kAllOps) {
    if (op == KernelOp::kGeneric) continue;  // VM-owned; span zero-fills
    EdgeKernelSpec spec;
    spec.op = op;
    spec.a = 0.85;
    spec.b = -1.5;
    const double x = rng.NextDouble() * 10.0;
    const double deg = 3.0;
    std::vector<Edge> edges = MakeEdges(21, &rng, /*specials=*/false);
    std::vector<double> out(21);
    ComputeSpanScalar(spec, x, deg, edges.data(), edges.size(), out.data());
    for (size_t i = 0; i < edges.size(); ++i) {
      EXPECT_PRED2(BitEqual, out[i],
                   ApplyEdgeKernel(spec, x, edges[i].weight, deg))
          << KernelOpName(op) << " lane " << i;
    }
  }
}

#if defined(POWERLOG_TEST_HAVE_AVX2_SYMBOLS)
void CheckCombineTileMatchesScalar(CombineTileFn vector_fn,
                                   const char* which) {
  Rng rng(0xC0B1);
  const AggKind kinds[] = {AggKind::kMin, AggKind::kMax, AggKind::kSum,
                           AggKind::kCount};
  const size_t lengths[] = {1, 2, 3, 4, 5, 7, 8, 13, 31, 63, 64};
  for (AggKind kind : kinds) {
    for (int round = 0; round < 300; ++round) {
      const size_t n = lengths[rng.NextBounded(11)];
      std::vector<double> vals(n), acc_s(n), acc_v(n);
      for (size_t i = 0; i < n; ++i) {
        vals[i] = rng.NextBounded(4) == 0
                      ? kSpecials[rng.NextBounded(12)]
                      : rng.NextDouble() * 8.0 - 4.0;
        acc_s[i] = rng.NextBounded(4) == 0
                       ? kSpecials[rng.NextBounded(12)]
                       : rng.NextDouble() * 8.0 - 4.0;
        acc_v[i] = acc_s[i];
      }
      uint64_t dirty_s = 0, dirty_v = 0;
      CombineTileScalar(kind, vals.data(), acc_s.data(), n, &dirty_s);
      vector_fn(kind, vals.data(), acc_v.data(), n, &dirty_v);
      EXPECT_EQ(dirty_s, dirty_v)
          << which << " " << AggKindName(kind) << " n=" << n << " round "
          << round;
      for (size_t i = 0; i < n; ++i) {
        EXPECT_PRED2(BitEqual, acc_s[i], acc_v[i])
            << which << " " << AggKindName(kind) << " slot " << i
            << " val=" << vals[i];
      }
    }
  }
}

TEST(SimdCombineTile, ValuesAndDirtyMasksMatchScalar) {
  if (DetectCpuLevel() < Level::kAvx2) {
    GTEST_SKIP() << "host CPU has no AVX2; scalar-only build";
  }
  CheckCombineTileMatchesScalar(&CombineTileAvx2, "avx2");
}

TEST(SimdCombineTile, Avx512ValuesAndDirtyMasksMatchScalar) {
  if (DetectCpuLevel() < Level::kAvx512) {
    GTEST_SKIP() << "host CPU has no AVX-512 F+VL";
  }
  CheckCombineTileMatchesScalar(&CombineTileAvx512, "avx512");
}
#endif  // POWERLOG_TEST_HAVE_AVX2_SYMBOLS

TEST(SimdCombineTile, DirtyBitSemantics) {
  // Min: only strict improvements mark. A NaN candidate never improves
  // (ordered-quiet compare) and an equal value is not an improvement.
  {
    double vals[4] = {1.0, 5.0, kNan, 3.0};
    double acc[4] = {3.0, 3.0, 3.0, 3.0};
    uint64_t dirty = 0;
    CombineTileScalar(AggKind::kMin, vals, acc, 4, &dirty);
    EXPECT_EQ(dirty, uint64_t{1} << 0);
    EXPECT_EQ(acc[0], 1.0);
    EXPECT_EQ(acc[1], 3.0);
    EXPECT_EQ(acc[2], 3.0);  // NaN rejected
    EXPECT_EQ(acc[3], 3.0);  // equal: no improvement, no mark
  }
  // Sum: nonzero contributions mark; ±0.0 is the identity and must not
  // (NEQ_UQ compare: -0.0 == 0.0), while NaN != 0.0 is true and must mark.
  {
    double vals[5] = {0.0, -0.0, 2.0, kNan, -3.5};
    double acc[5] = {1.0, 1.0, 1.0, 1.0, 1.0};
    uint64_t dirty = 0;
    CombineTileScalar(AggKind::kSum, vals, acc, 5, &dirty);
    EXPECT_EQ(dirty, (uint64_t{1} << 2) | (uint64_t{1} << 3) |
                         (uint64_t{1} << 4));
    EXPECT_EQ(acc[2], 3.0);
    EXPECT_TRUE(std::isnan(acc[3]));
  }
  // OR-accumulation: pre-set dirty bits survive.
  {
    double vals[2] = {0.0, 0.0};
    double acc[2] = {0.0, 0.0};
    uint64_t dirty = uint64_t{1} << 63;
    CombineTileScalar(AggKind::kSum, vals, acc, 2, &dirty);
    EXPECT_EQ(dirty, uint64_t{1} << 63);
  }
}

TEST(SimdDispatch, EnvOverrideForcesScalar) {
  ASSERT_EQ(setenv("POWERLOG_SIMD", "scalar", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveLevel(), Level::kScalar);
  EXPECT_EQ(SelectSpanFn(Level::kScalar), &ComputeSpanScalar);
  EXPECT_EQ(SelectCombineTileFn(Level::kScalar), &CombineTileScalar);
  ASSERT_EQ(setenv("POWERLOG_SIMD", "avx2", 1), 0);
  // An override clamps downward only: "avx2" never exceeds the CPU
  // capability, and on an AVX-512 host it pins the level at kAvx2.
  EXPECT_EQ(ResolveLevel(), DetectCpuLevel() < Level::kAvx2
                                ? DetectCpuLevel()
                                : Level::kAvx2);
  ASSERT_EQ(unsetenv("POWERLOG_SIMD"), 0);
  EXPECT_EQ(ResolveLevel(), DetectCpuLevel());
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(Level::kAvx2), "avx2");
  EXPECT_STREQ(LevelName(Level::kAvx512), "avx512");
}

TEST(SimdDispatch, BuildKernelInstallsSpanFnForSpecializedShapes) {
  // sssp compiles to kXPlusW — specialized, so the span form is installed
  // and agrees with the dispatch level's selection.
  Kernel sssp = MustCompile("sssp");
  ASSERT_TRUE(sssp.scatter.specialized());
  ASSERT_NE(sssp.scatter_span, nullptr);
  EXPECT_EQ(sssp.scatter_span, SelectSpanFn(ActiveLevel()));
}

}  // namespace
}  // namespace powerlog::simd
