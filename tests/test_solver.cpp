#include <gtest/gtest.h>

#include "smt/solver.h"

namespace powerlog::smt {
namespace {

TEST(Solver, PolynomialValid) {
  Solver solver;
  // (x+1)^2 == x^2 + 2x + 1
  auto lhs = Mul(Add(Var("x"), ConstInt(1)), Add(Var("x"), ConstInt(1)));
  auto rhs = Add(Add(Mul(Var("x"), Var("x")), Mul(ConstInt(2), Var("x"))),
                 ConstInt(1));
  auto report = solver.CheckEqualValid(lhs, rhs);
  EXPECT_EQ(report.verdict, Verdict::kValid);
  EXPECT_EQ(report.method, "polynomial");
}

TEST(Solver, PolynomialInvalidWithWitness) {
  Solver solver;
  auto report = solver.CheckEqualValid(Mul(Var("x"), Var("x")),
                                       Mul(ConstInt(2), Var("x")));
  EXPECT_EQ(report.verdict, Verdict::kInvalid);
  ASSERT_TRUE(report.counterexample.has_value());
}

TEST(Solver, SumProperty2PageRankShape) {
  // Fig. 4: g = +, f(v) = 0.85*v/d with d > 0.
  ConstraintSet cs;
  cs.Assume("d", Sign::kPositive);
  Solver solver(cs);
  auto f = [](TermPtr v) {
    return Div(Mul(std::move(v), ConstDouble(0.85)), Var("d"));
  };
  auto g = [](TermPtr a, TermPtr b) { return Add(std::move(a), std::move(b)); };
  auto lhs = g(f(g(Var("x1"), Var("y1"))), f(g(Var("x2"), Var("y2"))));
  auto rhs = g(g(g(f(Var("x1")), f(Var("y1"))), f(Var("x2"))), f(Var("y2")));
  auto report = solver.CheckEqualValid(lhs, rhs);
  EXPECT_EQ(report.verdict, Verdict::kValid) << report.explanation;
}

TEST(Solver, MinMaxValidIdentity) {
  Solver solver;
  // min(a+c, b+c) == min(a,b) + c
  auto lhs = Min(Add(Var("a"), Var("c")), Add(Var("b"), Var("c")));
  auto rhs = Add(Min(Var("a"), Var("b")), Var("c"));
  auto report = solver.CheckEqualValid(lhs, rhs);
  EXPECT_EQ(report.verdict, Verdict::kValid);
  EXPECT_EQ(report.method, "minmax");
}

TEST(Solver, MinMaxInvalid) {
  Solver solver;
  // min(a, b) != max(a, b)
  auto report = solver.CheckEqualValid(Min(Var("a"), Var("b")),
                                       Max(Var("a"), Var("b")));
  EXPECT_EQ(report.verdict, Verdict::kInvalid);
  EXPECT_TRUE(report.counterexample.has_value());
}

TEST(Solver, ReluIdentityInvalid) {
  Solver solver;
  auto report = solver.CheckEqualValid(Relu(Add(Var("x"), Var("y"))),
                                       Add(Relu(Var("x")), Relu(Var("y"))));
  EXPECT_EQ(report.verdict, Verdict::kInvalid);
  ASSERT_TRUE(report.counterexample.has_value());
}

TEST(Solver, MeanAssociativityInvalid) {
  Solver solver;
  auto mean = [](TermPtr a, TermPtr b) {
    return Div(Add(std::move(a), std::move(b)), ConstInt(2));
  };
  auto report = solver.CheckEqualValid(mean(mean(Var("a"), Var("b")), Var("c")),
                                       mean(Var("a"), mean(Var("b"), Var("c"))));
  EXPECT_EQ(report.verdict, Verdict::kInvalid);
}

TEST(Solver, MeanCommutativityValid) {
  Solver solver;
  auto mean = [](TermPtr a, TermPtr b) {
    return Div(Add(std::move(a), std::move(b)), ConstInt(2));
  };
  auto report =
      solver.CheckEqualValid(mean(Var("a"), Var("b")), mean(Var("b"), Var("a")));
  EXPECT_EQ(report.verdict, Verdict::kValid);
}

TEST(Solver, ReciprocalAwareSoundness) {
  // x/d + x/d == 2x/d: reciprocal pseudo-variables still line up.
  ConstraintSet cs;
  cs.Assume("d", Sign::kPositive);
  Solver solver(cs);
  auto lhs = Add(Div(Var("x"), Var("d")), Div(Var("x"), Var("d")));
  auto rhs = Div(Mul(ConstInt(2), Var("x")), Var("d"));
  EXPECT_EQ(solver.CheckEqualValid(lhs, rhs).verdict, Verdict::kValid);
}

TEST(Solver, ReciprocalCancellationIsUnknownNotInvalid) {
  // d * (1/d) == 1 holds, but the reciprocal-variable normal form cannot see
  // the cancellation. The solver must NOT claim invalid (soundness), and no
  // counterexample exists.
  ConstraintSet cs;
  cs.Assume("d", Sign::kPositive);
  Solver solver(cs);
  auto lhs = Mul(Var("d"), Div(ConstInt(1), Var("d")));
  auto report = solver.CheckEqualValid(lhs, ConstInt(1));
  EXPECT_NE(report.verdict, Verdict::kInvalid);
}

TEST(Solver, ViterbiMaxShapeNeedsPositivity) {
  // g = max, f(v) = p*v: Property 2 holds only under p > 0.
  auto f = [](TermPtr v) { return Mul(Var("p"), std::move(v)); };
  auto g = [](TermPtr a, TermPtr b) { return Max(std::move(a), std::move(b)); };
  auto lhs = g(f(g(Var("x1"), Var("y1"))), f(g(Var("x2"), Var("y2"))));
  auto rhs = g(g(g(f(Var("x1")), f(Var("y1"))), f(Var("x2"))), f(Var("y2")));

  ConstraintSet pos;
  pos.Assume("p", Sign::kPositive);
  EXPECT_EQ(Solver(pos).CheckEqualValid(lhs, rhs).verdict, Verdict::kValid);
  EXPECT_EQ(Solver().CheckEqualValid(lhs, rhs).verdict, Verdict::kInvalid);
}

TEST(Solver, VerdictNames) {
  EXPECT_STREQ(VerdictName(Verdict::kValid), "valid");
  EXPECT_STREQ(VerdictName(Verdict::kInvalid), "invalid");
  EXPECT_STREQ(VerdictName(Verdict::kUnknown), "unknown");
}

}  // namespace
}  // namespace powerlog::smt
