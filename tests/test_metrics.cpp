// Observability layer: registry semantics, histogram bucketing, JSON
// round-trips, concurrent updates, bus-level instrumentation, and the
// engine's end-to-end metrics export.
#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "runtime/engine.h"
#include "runtime/network.h"
#include "test_util.h"

namespace powerlog::metrics {
namespace {

using powerlog::testing::MustCompile;
using powerlog::testing::SmallWeightedGraph;

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);

  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Metrics, RegistryReturnsStableInstruments) {
  Registry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("y"));
  a->Increment(7);
  EXPECT_EQ(registry.GetCounter("x")->value(), 7);

  Histogram* h = registry.GetHistogram("h", {1.0, 2.0});
  EXPECT_EQ(h, registry.GetHistogram("h", {99.0}));  // bounds fixed by first
  EXPECT_EQ(h->bounds().size(), 2u);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.histograms.size(), 1u);
}

TEST(Metrics, HistogramBucketing) {
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 4.0, 5.0}) h.Observe(v);
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 2);      // 0.5, 1.0 (inclusive upper bound)
  EXPECT_EQ(snap.counts[1], 1);      // 1.5
  EXPECT_EQ(snap.counts[2], 1);      // 4.0
  EXPECT_EQ(snap.counts[3], 1);      // 5.0 overflows
  EXPECT_EQ(snap.count, 5);
  EXPECT_DOUBLE_EQ(snap.sum, 12.0);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 5.0);
}

TEST(Metrics, HistogramPercentiles) {
  Histogram h(ExponentialBuckets(1.0, 2.0, 10));  // 1, 2, 4, ..., 512
  HistogramSnapshot empty = h.Snapshot();
  EXPECT_TRUE(std::isnan(empty.Percentile(0.5)));
  // 100 observations uniform in (0, 100].
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  HistogramSnapshot snap = h.Snapshot();
  // Bucket resolution is coarse (powers of two); the estimate must land in
  // the right bucket, never outside the observed range.
  const double p50 = snap.Percentile(0.5);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
  const double p99 = snap.Percentile(0.99);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 100.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), snap.min);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), snap.max);  // clamped to observed max
  // Overflow observations clamp to the recorded max.
  h.Observe(1e9);
  EXPECT_DOUBLE_EQ(h.Snapshot().Percentile(1.0), 1e9);
}

TEST(Metrics, ExponentialBuckets) {
  const auto bounds = ExponentialBuckets(1.0, 2.0, 5);
  EXPECT_EQ(bounds, (std::vector<double>{1, 2, 4, 8, 16}));
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  Registry registry;
  Counter* counter = registry.GetCounter("hits");
  Histogram* hist = registry.GetHistogram("obs", ExponentialBuckets(1, 2, 10));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(static_cast<double>((t * kPerThread + i) % 600));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->value(), kThreads * kPerThread);
  HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 599.0);
}

TEST(Json, ParsesScalarsAndStructures) {
  auto v = JsonValue::Parse(R"({"a":[1,2.5,-3e2],"b":{"t":true,"n":null},"s":"x\ny"})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array()[1].number(), 2.5);
  EXPECT_DOUBLE_EQ(a->array()[2].number(), -300.0);
  const JsonValue* t = v->Find("b")->Find("t");
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->bool_value());
  EXPECT_EQ(v->Find("b")->Find("n")->kind(), JsonValue::Kind::kNull);
  EXPECT_EQ(v->Find("s")->string_value(), "x\ny");
  EXPECT_EQ(v->Find("zzz"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} extra").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("truthy").ok());
}

TEST(Json, EscapeRoundTrips) {
  const std::string nasty = "quote\" backslash\\ tab\t newline\n ctrl\x01";
  auto parsed = JsonValue::Parse("\"" + JsonEscape(nasty) + "\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string_value(), nasty);
}

TEST(Metrics, SnapshotJsonRoundTrip) {
  MetricsSnapshot snap;
  snap.AddCounter("engine.harvests", 1234);
  snap.AddCounter("weird \"name\"\\path", -5);
  snap.AddGauge("engine.wall_seconds", 0.125);
  HistogramSnapshot h;
  h.bounds = {1.0, 10.0};
  h.counts = {3, 2, 1};
  h.count = 6;
  h.sum = 40.5;
  h.min = 0.5;
  h.max = 100.0;
  snap.AddHistogram("bus.delivery_latency_us", h);
  snap.AddSeries("buffer.beta.w0_to_w1", {{0.0, 256.0}, {1500.0, 512.0}});

  const std::string json = snap.ToJson();
  auto parsed = JsonValue::Parse(json);
  ASSERT_TRUE(parsed.ok()) << json;

  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("engine.harvests")->number(), 1234.0);
  EXPECT_DOUBLE_EQ(counters->Find("weird \"name\"\\path")->number(), -5.0);

  EXPECT_DOUBLE_EQ(parsed->Find("gauges")->Find("engine.wall_seconds")->number(),
                   0.125);

  const JsonValue* hist = parsed->Find("histograms")->Find("bus.delivery_latency_us");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->Find("bounds")->array().size(), 2u);
  ASSERT_EQ(hist->Find("counts")->array().size(), 3u);
  EXPECT_DOUBLE_EQ(hist->Find("counts")->array()[0].number(), 3.0);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number(), 6.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->number(), 40.5);

  const JsonValue* series = parsed->Find("series")->Find("buffer.beta.w0_to_w1");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->array().size(), 2u);
  EXPECT_DOUBLE_EQ(series->array()[1].array()[0].number(), 1500.0);
  EXPECT_DOUBLE_EQ(series->array()[1].array()[1].number(), 512.0);
}

TEST(Metrics, BusRecordsLatencyAndPairTraffic) {
  runtime::NetworkConfig config;
  config.instant = true;
  runtime::MessageBus bus(3, config);
  Histogram latency(ExponentialBuckets(1, 2, 20));
  bus.SetLatencyHistogram(&latency);

  bus.Send(0, 1, {{1, 1.0}, {2, 2.0}});
  bus.Send(0, 1, {{3, 3.0}});
  bus.Send(2, 1, {{4, 4.0}});
  runtime::UpdateBatch out;
  EXPECT_EQ(bus.Receive(1, &out), 4u);

  EXPECT_EQ(latency.count(), 3);  // one observation per message
  EXPECT_EQ(bus.PairMessages(0, 1), 2);
  EXPECT_EQ(bus.PairUpdates(0, 1), 3);
  EXPECT_EQ(bus.PairMessages(2, 1), 1);
  EXPECT_EQ(bus.PairMessages(1, 0), 0);
}

// End-to-end: a real engine run exports per-worker counters, the bus
// latency histogram, flush sizes, and β trajectories — and the JSON the CLI
// writes parses back with all of them present (acceptance criterion).
TEST(Metrics, EngineExportsFullSnapshot) {
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(31);
  runtime::EngineOptions options;
  options.mode = runtime::ExecMode::kSyncAsync;
  options.num_workers = 3;
  options.network.latency_us = 30.0;  // real (tiny) delivery delay
  options.network.per_update_us = 0.0;
  options.epsilon_override = 1e-7;
  options.collect_metrics = true;
  runtime::Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_FALSE(run->metrics.empty());

  // Per-worker breakdown is consistent with the global stats.
  ASSERT_EQ(run->stats.workers.size(), 3u);
  int64_t harvests = 0, edges = 0, flushed = 0;
  for (const auto& w : run->stats.workers) {
    harvests += w.harvests;
    edges += w.edge_applications;
    flushed += w.flushed_updates;
  }
  EXPECT_EQ(harvests, run->stats.harvests);
  EXPECT_EQ(edges, run->stats.edge_applications);
  EXPECT_EQ(flushed, run->stats.updates_sent);

  auto parsed = JsonValue::Parse(run->metrics.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  for (const char* key : {"engine.harvests", "worker.0.harvests",
                          "worker.1.edge_applications", "worker.2.flushes",
                          "bus.messages.w0_to_w1"}) {
    EXPECT_NE(counters->Find(key), nullptr) << key;
  }
  const JsonValue* latency =
      parsed->Find("histograms")->Find("bus.delivery_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->Find("count")->number(), 0.0);
  const JsonValue* flush_hist = parsed->Find("histograms")->Find("worker.flush_size");
  ASSERT_NE(flush_hist, nullptr);
  EXPECT_GT(flush_hist->Find("count")->number(), 0.0);

  // β trajectory: one series per (worker, peer) pair, each starting at the
  // configured initial β.
  const JsonValue* series = parsed->Find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->object().size(), 6u);  // 3 workers × 2 peers
  const JsonValue* beta = series->Find("buffer.beta.w0_to_w1");
  ASSERT_NE(beta, nullptr);
  ASSERT_GE(beta->array().size(), 1u);
  EXPECT_DOUBLE_EQ(beta->array()[0].array()[1].number(), options.buffer.beta);
}

TEST(Metrics, CollectionIsOffByDefault) {
  Kernel k = MustCompile("cc");
  auto g = SmallWeightedGraph(32);
  runtime::EngineOptions options;
  options.mode = runtime::ExecMode::kSync;
  options.num_workers = 2;
  options.network.instant = true;
  options.barrier_overhead_us = 0;
  runtime::Engine engine(g, k, options);
  auto run = engine.Run();
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->metrics.empty());
  // The cheap per-worker counters are still there.
  ASSERT_EQ(run->stats.workers.size(), 2u);
  EXPECT_GT(run->stats.workers[0].harvests + run->stats.workers[1].harvests, 0);
}

}  // namespace
}  // namespace powerlog::metrics
