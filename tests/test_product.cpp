#include <gtest/gtest.h>

#include <cmath>

#include "graph/product.h"
#include "test_util.h"

namespace powerlog {
namespace {

using powerlog::testing::SmallWeightedGraph;

/// Floyd–Warshall reference for APSP.
ApspResult FloydWarshall(const Graph& g) {
  const VertexId n = g.num_vertices();
  ApspResult r;
  r.num_vertices = n;
  r.distances.assign(static_cast<size_t>(n) * n,
                     std::numeric_limits<double>::infinity());
  for (VertexId v = 0; v < n; ++v) r.distances[static_cast<size_t>(v) * n + v] = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (const Edge& e : g.OutEdges(v)) {
      auto& cell = r.distances[static_cast<size_t>(v) * n + e.dst];
      cell = std::min(cell, e.weight);
    }
  }
  for (VertexId k = 0; k < n; ++k) {
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = 0; j < n; ++j) {
        const double via = r.At(i, k) + r.At(k, j);
        if (via < r.At(i, j)) r.distances[static_cast<size_t>(i) * n + j] = via;
      }
    }
  }
  return r;
}

TEST(Apsp, MatchesFloydWarshall) {
  auto g = SmallWeightedGraph(7);
  auto apsp = SolveApsp(g);
  ASSERT_TRUE(apsp.ok()) << apsp.status().ToString();
  auto reference = FloydWarshall(g);
  for (VertexId i = 0; i < g.num_vertices(); ++i) {
    for (VertexId j = 0; j < g.num_vertices(); ++j) {
      if (std::isinf(reference.At(i, j))) {
        EXPECT_TRUE(std::isinf(apsp->At(i, j))) << i << "->" << j;
      } else {
        EXPECT_NEAR(apsp->At(i, j), reference.At(i, j), 1e-9) << i << "->" << j;
      }
    }
  }
}

TEST(Apsp, DiagonalIsZero) {
  auto g = GenerateGrid(4, true, 3);
  auto apsp = SolveApsp(g);
  ASSERT_TRUE(apsp.ok());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(apsp->At(v, v), 0.0);
  }
}

TEST(Apsp, RejectsEmptyAndHuge) {
  Graph empty;
  EXPECT_FALSE(SolveApsp(empty).ok());
}

TEST(AncestorProduct, RejectsNonForest) {
  GraphBuilder b;
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);  // vertex 2 has two parents
  auto g = std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();
  EXPECT_TRUE(AncestorProductGraph::Build(g).status().IsInvalidArgument());
}

TEST(Lca, KnownTree) {
  // Tree: 0 -> {1, 2}; 1 -> {3, 4}; 2 -> {5}; 3 -> {6}.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(1, 4);
  b.AddEdge(2, 5);
  b.AddEdge(3, 6);
  auto tree = std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();

  auto r = SolveLca(tree, 3, 4);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ancestor, 1u);
  EXPECT_DOUBLE_EQ(r->distance, 2.0);

  auto r2 = SolveLca(tree, 6, 5);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->ancestor, 0u);
  EXPECT_DOUBLE_EQ(r2->distance, 5.0);  // 3 up-moves from 6, 2 from 5

  auto r3 = SolveLca(tree, 6, 1);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->ancestor, 1u);  // ancestor of itself
  EXPECT_DOUBLE_EQ(r3->distance, 2.0);

  auto r4 = SolveLca(tree, 2, 2);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4->ancestor, 2u);
  EXPECT_DOUBLE_EQ(r4->distance, 0.0);
}

TEST(Lca, RandomTreeAgainstBruteForce) {
  auto tree = GenerateRandomTree(24, 9);
  const Graph& reversed = tree.Reverse();
  auto parent = [&](VertexId v) -> int64_t {
    const auto in_edges = reversed.OutEdges(v);
    return in_edges.size() == 1 ? static_cast<int64_t>(in_edges.begin()->dst) : -1;
  };
  auto ancestors_of = [&](VertexId v) {
    std::vector<VertexId> chain{v};
    int64_t p = parent(v);
    while (p >= 0) {
      chain.push_back(static_cast<VertexId>(p));
      p = parent(static_cast<VertexId>(p));
    }
    return chain;
  };
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const VertexId u = static_cast<VertexId>(rng.NextBounded(24));
    const VertexId v = static_cast<VertexId>(rng.NextBounded(24));
    // Brute force: deepest shared element of the two ancestor chains.
    auto cu = ancestors_of(u);
    auto cv = ancestors_of(v);
    VertexId expected = 0;
    bool found = false;
    for (VertexId a : cu) {
      for (VertexId b : cv) {
        if (a == b) {
          expected = a;
          found = true;
          break;
        }
      }
      if (found) break;
    }
    ASSERT_TRUE(found);  // rooted tree: always share the root
    auto r = SolveLca(tree, u, v);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->ancestor, expected) << "u=" << u << " v=" << v;
  }
}

TEST(Lca, DisjointForestFails) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);  // second tree
  auto forest = std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();
  EXPECT_TRUE(SolveLca(forest, 1, 3).status().IsNotFound());
}

TEST(Lca, OutOfRangeQuery) {
  auto tree = GenerateRandomTree(5, 2);
  EXPECT_TRUE(SolveLca(tree, 0, 9).status().IsOutOfRange());
}

}  // namespace
}  // namespace powerlog
