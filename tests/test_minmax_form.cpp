#include <gtest/gtest.h>

#include "smt/minmax_form.h"

namespace powerlog::smt {
namespace {

using Kind = MinMaxForm::Kind;

TEST(MinMaxForm, AtomsNormaliseToPolynomials) {
  ConstraintSet cs;
  auto f = NormalizeMinMax(Add(Var("x"), ConstInt(1)), cs);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind, Kind::kAtom);
  EXPECT_EQ(f->elems.size(), 1u);
}

TEST(MinMaxForm, MinFlattens) {
  ConstraintSet cs;
  auto f = NormalizeMinMax(Min(Min(Var("a"), Var("b")), Var("c")), cs);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind, Kind::kMin);
  EXPECT_EQ(f->elems.size(), 3u);
}

TEST(MinMaxForm, MinOfEqualCollapsesToAtom) {
  ConstraintSet cs;
  auto f = NormalizeMinMax(Min(Var("a"), Var("a")), cs);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind, Kind::kAtom);
  auto atom = NormalizeMinMax(Var("a"), cs);
  EXPECT_TRUE(*f == *atom);
}

TEST(MinMaxForm, AdditionDistributesOverMin) {
  // min(a,b) + c == min(a+c, b+c)
  ConstraintSet cs;
  auto lhs = NormalizeMinMax(Add(Min(Var("a"), Var("b")), Var("c")), cs);
  auto rhs = NormalizeMinMax(
      Min(Add(Var("a"), Var("c")), Add(Var("b"), Var("c"))), cs);
  ASSERT_TRUE(lhs.ok());
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(*lhs == *rhs);
}

TEST(MinMaxForm, MinPlusMinCrossProduct) {
  // min(a,b) + min(c,d) has 4 elements.
  ConstraintSet cs;
  auto f = NormalizeMinMax(
      Add(Min(Var("a"), Var("b")), Min(Var("c"), Var("d"))), cs);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind, Kind::kMin);
  EXPECT_EQ(f->elems.size(), 4u);
}

TEST(MinMaxForm, NegFlipsMinToMax) {
  ConstraintSet cs;
  auto lhs = NormalizeMinMax(Neg(Min(Var("a"), Var("b"))), cs);
  auto rhs = NormalizeMinMax(Max(Neg(Var("a")), Neg(Var("b"))), cs);
  ASSERT_TRUE(lhs.ok());
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(*lhs == *rhs);
}

TEST(MinMaxForm, PositiveScalePreservesKind) {
  ConstraintSet cs;
  cs.Assume("p", Sign::kPositive);
  auto lhs = NormalizeMinMax(Mul(Min(Var("a"), Var("b")), Var("p")), cs);
  auto rhs = NormalizeMinMax(
      Min(Mul(Var("a"), Var("p")), Mul(Var("b"), Var("p"))), cs);
  ASSERT_TRUE(lhs.ok()) << lhs.status().ToString();
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(*lhs == *rhs);
  EXPECT_EQ(lhs->kind, Kind::kMin);
}

TEST(MinMaxForm, NegativeScaleFlipsKind) {
  ConstraintSet cs;
  auto f = NormalizeMinMax(Mul(Min(Var("a"), Var("b")), ConstInt(-2)), cs);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind, Kind::kMax);
}

TEST(MinMaxForm, UnknownSignScaleFails) {
  ConstraintSet cs;  // u unconstrained
  auto f = NormalizeMinMax(Mul(Min(Var("a"), Var("b")), Var("u")), cs);
  EXPECT_TRUE(f.status().IsNotSupported());
}

TEST(MinMaxForm, DivisionByPositiveSymbol) {
  ConstraintSet cs;
  cs.Assume("d", Sign::kPositive);
  auto f = NormalizeMinMax(Div(Min(Var("a"), Var("b")), Var("d")), cs);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind, Kind::kMin);
  EXPECT_EQ(f->elems.size(), 2u);
}

TEST(MinMaxForm, MixedMinMaxNestingFails) {
  ConstraintSet cs;
  auto f = NormalizeMinMax(Min(Max(Var("a"), Var("b")), Var("c")), cs);
  EXPECT_TRUE(f.status().IsNotSupported());
}

TEST(MinMaxForm, ReluDistributesOverMin) {
  // relu is monotone nondecreasing, so relu(min(a,b)) == min(relu(a), relu(b)).
  ConstraintSet cs;
  auto lhs = NormalizeMinMax(Relu(Min(Var("a"), Var("b"))), cs);
  auto rhs = NormalizeMinMax(Min(Relu(Var("a")), Relu(Var("b"))), cs);
  ASSERT_TRUE(lhs.ok()) << lhs.status().ToString();
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(*lhs == *rhs);
  EXPECT_EQ(lhs->kind, Kind::kMin);
}

TEST(MinMaxForm, ReluIsIdempotent) {
  ConstraintSet cs;
  auto once = NormalizeMinMax(Relu(Var("x")), cs);
  auto twice = NormalizeMinMax(Relu(Relu(Var("x"))), cs);
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(twice.ok());
  EXPECT_TRUE(*once == *twice);
}

TEST(MinMaxForm, ReluCommutesWithPositiveScaling) {
  // c >= 0: c * relu(p) == relu(c * p).
  ConstraintSet cs;
  cs.Assume("c", Sign::kNonNegative);
  auto lhs = NormalizeMinMax(Mul(Relu(Var("x")), Var("c")), cs);
  auto rhs = NormalizeMinMax(Relu(Mul(Var("x"), Var("c"))), cs);
  ASSERT_TRUE(lhs.ok()) << lhs.status().ToString();
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(*lhs == *rhs);
}

TEST(MinMaxForm, ArithmeticOnReluElementsFails) {
  ConstraintSet cs;
  EXPECT_TRUE(NormalizeMinMax(Add(Relu(Var("x")), Var("y")), cs)
                  .status()
                  .IsNotSupported());
  EXPECT_TRUE(NormalizeMinMax(Neg(Relu(Var("x"))), cs).status().IsNotSupported());
}

TEST(MinMaxForm, AbsOfSignedElements) {
  ConstraintSet cs;
  cs.Assume("p", Sign::kNonNegative);
  cs.Assume("n", Sign::kNonPositive);
  // |p| == p.
  auto pos = NormalizeMinMax(Abs(Var("p")), cs);
  ASSERT_TRUE(pos.ok());
  EXPECT_TRUE(*pos == *NormalizeMinMax(Var("p"), cs));
  // |min(n1, n2)| == max(-n1, -n2): kind flips on the nonpositive branch.
  cs.Assume("m", Sign::kNonPositive);
  auto flipped = NormalizeMinMax(Abs(Min(Var("n"), Var("m"))), cs);
  ASSERT_TRUE(flipped.ok()) << flipped.status().ToString();
  EXPECT_EQ(flipped->kind, Kind::kMax);
  // Unknown sign: refused.
  EXPECT_TRUE(NormalizeMinMax(Abs(Var("u")), cs).status().IsNotSupported());
}

TEST(MinMaxForm, ReluOfNonNegativeIsIdentity) {
  ConstraintSet cs;
  cs.Assume("p", Sign::kNonNegative);
  auto lhs = NormalizeMinMax(Relu(Var("p")), cs);
  auto rhs = NormalizeMinMax(Var("p"), cs);
  ASSERT_TRUE(lhs.ok());
  EXPECT_TRUE(*lhs == *rhs);
}

TEST(MinMaxForm, ReluWrapsUnknownSignAtoms) {
  ConstraintSet cs;
  auto f = NormalizeMinMax(Relu(Var("x")), cs);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->kind, Kind::kAtom);
  ASSERT_EQ(f->elems.size(), 1u);
  EXPECT_EQ(f->elems[0].relu_wraps, 1);
}

TEST(MinMaxForm, SsspProperty2Shape) {
  // f(x) = x + w:  min(f(min(x1,y1)), f(min(x2,y2)))
  //             == min(min(min(f(x1),f(y1)),f(x2)),f(y2))
  ConstraintSet cs;
  auto f = [](TermPtr t) { return Add(std::move(t), Var("w")); };
  auto lhs = NormalizeMinMax(
      Min(f(Min(Var("x1"), Var("y1"))), f(Min(Var("x2"), Var("y2")))), cs);
  auto rhs = NormalizeMinMax(
      Min(Min(Min(f(Var("x1")), f(Var("y1"))), f(Var("x2"))), f(Var("y2"))), cs);
  ASSERT_TRUE(lhs.ok());
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(*lhs == *rhs);
}

TEST(MinMaxForm, ToStringIsStable) {
  ConstraintSet cs;
  auto a = NormalizeMinMax(Min(Var("b"), Var("a")), cs);
  auto b = NormalizeMinMax(Min(Var("a"), Var("b")), cs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->ToString(), b->ToString());
}

}  // namespace
}  // namespace powerlog::smt
