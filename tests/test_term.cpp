#include <gtest/gtest.h>

#include "smt/term.h"

namespace powerlog::smt {
namespace {

TEST(Term, ConstAndVar) {
  auto c = ConstDouble(0.85);
  EXPECT_EQ(c->op, Op::kConst);
  EXPECT_EQ(c->value, Rational(17, 20));
  auto v = Var("x");
  EXPECT_EQ(v->op, Op::kVar);
  EXPECT_EQ(v->var, "x");
}

TEST(Term, StructuralEquality) {
  auto a = Add(Var("x"), ConstInt(1));
  auto b = Add(Var("x"), ConstInt(1));
  auto c = Add(Var("y"), ConstInt(1));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_FALSE(a->Equals(*Var("x")));
}

TEST(Term, SizeCountsNodes) {
  auto t = Mul(Add(Var("x"), Var("y")), ConstInt(2));
  EXPECT_EQ(t->Size(), 5u);
}

TEST(Term, CollectVarsSortedDistinct) {
  auto t = Add(Mul(Var("b"), Var("a")), Var("b"));
  EXPECT_EQ(CollectVars(t), (std::vector<std::string>{"a", "b"}));
}

TEST(Term, SubstituteReplacesVars) {
  auto t = Add(Var("x"), Mul(Var("y"), Var("x")));
  auto s = Substitute(t, {{"x", ConstInt(3)}});
  std::map<std::string, double> env{{"y", 2.0}};
  EXPECT_DOUBLE_EQ(*Evaluate(s, env), 3 + 2 * 3);
}

TEST(Term, SubstituteIsSimultaneous) {
  // x -> y while y -> x must not cascade.
  auto t = Add(Var("x"), Var("y"));
  auto s = Substitute(t, {{"x", Var("y")}, {"y", Var("x")}});
  std::map<std::string, double> env{{"x", 10.0}, {"y", 1.0}};
  EXPECT_DOUBLE_EQ(*Evaluate(s, env), 11.0);
}

TEST(Term, SubstituteSharesUnchangedSubtrees) {
  auto unchanged = Mul(Var("a"), Var("b"));
  auto t = Add(unchanged, Var("x"));
  auto s = Substitute(t, {{"x", ConstInt(0)}});
  EXPECT_EQ(s->args[0].get(), unchanged.get());
}

TEST(TermEvaluate, Arithmetic) {
  std::map<std::string, double> env{{"x", 4.0}};
  EXPECT_DOUBLE_EQ(*Evaluate(Add(Var("x"), ConstInt(2)), env), 6.0);
  EXPECT_DOUBLE_EQ(*Evaluate(Sub(Var("x"), ConstInt(2)), env), 2.0);
  EXPECT_DOUBLE_EQ(*Evaluate(Mul(Var("x"), ConstInt(2)), env), 8.0);
  EXPECT_DOUBLE_EQ(*Evaluate(Div(Var("x"), ConstInt(2)), env), 2.0);
  EXPECT_DOUBLE_EQ(*Evaluate(Neg(Var("x")), env), -4.0);
}

TEST(TermEvaluate, LatticeAndPiecewise) {
  std::map<std::string, double> env{{"x", -3.0}, {"y", 5.0}};
  EXPECT_DOUBLE_EQ(*Evaluate(Min(Var("x"), Var("y")), env), -3.0);
  EXPECT_DOUBLE_EQ(*Evaluate(Max(Var("x"), Var("y")), env), 5.0);
  EXPECT_DOUBLE_EQ(*Evaluate(Relu(Var("x")), env), 0.0);
  EXPECT_DOUBLE_EQ(*Evaluate(Relu(Var("y")), env), 5.0);
  EXPECT_DOUBLE_EQ(*Evaluate(Abs(Var("x")), env), 3.0);
}

TEST(TermEvaluate, ComparisonsAndIte) {
  std::map<std::string, double> env{{"x", 2.0}};
  EXPECT_DOUBLE_EQ(*Evaluate(Lt(Var("x"), ConstInt(3)), env), 1.0);
  EXPECT_DOUBLE_EQ(*Evaluate(Le(Var("x"), ConstInt(2)), env), 1.0);
  EXPECT_DOUBLE_EQ(*Evaluate(EqTerm(Var("x"), ConstInt(2)), env), 1.0);
  auto ite = Ite(Lt(Var("x"), ConstInt(0)), ConstInt(-1), ConstInt(1));
  EXPECT_DOUBLE_EQ(*Evaluate(ite, env), 1.0);
}

TEST(TermEvaluate, IteIsLazy) {
  // The untaken branch divides by zero; laziness must avoid evaluating it.
  std::map<std::string, double> env{{"x", 1.0}};
  auto ite = Ite(Lt(ConstInt(0), Var("x")), Var("x"),
                 Div(ConstInt(1), ConstInt(0)));
  auto r = Evaluate(ite, env);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 1.0);
}

TEST(TermEvaluate, Errors) {
  EXPECT_FALSE(Evaluate(Var("missing"), {}).ok());
  std::map<std::string, double> env{{"x", 1.0}};
  EXPECT_FALSE(Evaluate(Div(Var("x"), ConstInt(0)), env).ok());
}

TEST(Term, OpNames) {
  EXPECT_STREQ(OpName(Op::kAdd), "+");
  EXPECT_STREQ(OpName(Op::kMin), "min");
  EXPECT_STREQ(OpName(Op::kRelu), "relu");
}

}  // namespace
}  // namespace powerlog::smt
