// Shared fixtures and helpers for the PowerLog test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "core/kernel.h"
#include "datalog/catalog.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace powerlog::testing {

/// Compiles a catalog program or fails the test.
inline Kernel MustCompile(const std::string& name) {
  auto entry = datalog::GetCatalogEntry(name);
  EXPECT_TRUE(entry.ok()) << entry.status().ToString();
  auto kernel = BuildKernelFromSource(entry->source);
  EXPECT_TRUE(kernel.ok()) << kernel.status().ToString();
  return std::move(kernel).ValueOrDie();
}

/// Small graph zoo shared by correctness tests. Weights in (0, 1] so that
/// max-product (viterbi) and attenuated-sum programs converge.
inline Graph SmallWeightedGraph(uint64_t seed = 42) {
  Rng rng(seed);
  GraphBuilder b;
  const VertexId n = 40;
  b.EnsureVertices(n);
  for (VertexId v = 0; v < n; ++v) {
    const int degree = 1 + static_cast<int>(rng.NextBounded(4));
    for (int k = 0; k < degree; ++k) {
      VertexId d = static_cast<VertexId>(rng.NextBounded(n));
      if (d == v) d = (d + 1) % n;
      // Weights in (0, 0.5]: keeps the attenuated sum programs (BP,
      // Adsorption) contractive on this degree distribution.
      b.AddEdge(v, d, 0.05 + 0.45 * rng.NextDouble());
    }
  }
  GraphBuilder::Options opts;
  opts.dedup = true;
  return std::move(b).Build(opts).ValueOrDie();
}

/// Deterministic DAG with probability-like weights.
inline Graph SmallDag(uint64_t seed = 7) {
  auto g = GenerateRandomDag(48, 2.5, seed, /*weighted=*/false);
  EXPECT_TRUE(g.ok());
  // Re-weight into (0, 1].
  GraphBuilder b;
  Rng rng(seed * 31 + 1);
  b.EnsureVertices(g->num_vertices());
  for (VertexId v = 0; v < g->num_vertices(); ++v) {
    for (const Edge& e : g->OutEdges(v)) {
      b.AddEdge(v, e.dst, 0.2 + 0.8 * rng.NextDouble());
    }
  }
  return std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();
}

}  // namespace powerlog::testing
