#include <gtest/gtest.h>

#include "smt/monotone.h"

namespace powerlog::smt {
namespace {

TEST(SignAlgebra, Negate) {
  EXPECT_EQ(SignNegate(Sign::kPositive), Sign::kNegative);
  EXPECT_EQ(SignNegate(Sign::kNonNegative), Sign::kNonPositive);
  EXPECT_EQ(SignNegate(Sign::kZero), Sign::kZero);
  EXPECT_EQ(SignNegate(Sign::kUnknown), Sign::kUnknown);
}

TEST(SignAlgebra, Add) {
  EXPECT_EQ(SignAdd(Sign::kPositive, Sign::kPositive), Sign::kPositive);
  EXPECT_EQ(SignAdd(Sign::kPositive, Sign::kNonNegative), Sign::kPositive);
  EXPECT_EQ(SignAdd(Sign::kNonNegative, Sign::kNonNegative), Sign::kNonNegative);
  EXPECT_EQ(SignAdd(Sign::kPositive, Sign::kNegative), Sign::kUnknown);
  EXPECT_EQ(SignAdd(Sign::kZero, Sign::kNegative), Sign::kNegative);
}

TEST(SignAlgebra, Mul) {
  EXPECT_EQ(SignMul(Sign::kPositive, Sign::kPositive), Sign::kPositive);
  EXPECT_EQ(SignMul(Sign::kPositive, Sign::kNegative), Sign::kNegative);
  EXPECT_EQ(SignMul(Sign::kNegative, Sign::kNegative), Sign::kPositive);
  EXPECT_EQ(SignMul(Sign::kZero, Sign::kUnknown), Sign::kZero);
  EXPECT_EQ(SignMul(Sign::kNonNegative, Sign::kNonPositive), Sign::kNonPositive);
  EXPECT_EQ(SignMul(Sign::kUnknown, Sign::kPositive), Sign::kUnknown);
}

TEST(TermSign, ConstantsAndVars) {
  ConstraintSet cs;
  cs.Assume("d", Sign::kPositive);
  EXPECT_EQ(TermSign(ConstInt(3), cs), Sign::kPositive);
  EXPECT_EQ(TermSign(ConstInt(-2), cs), Sign::kNegative);
  EXPECT_EQ(TermSign(ConstInt(0), cs), Sign::kZero);
  EXPECT_EQ(TermSign(Var("d"), cs), Sign::kPositive);
  EXPECT_EQ(TermSign(Var("free"), cs), Sign::kUnknown);
}

TEST(TermSign, CompositeExpressions) {
  ConstraintSet cs;
  cs.Assume("w", Sign::kNonNegative);
  cs.Assume("d", Sign::kPositive);
  // 0.85 * w is >= 0; 0.85 * w / d likewise.
  EXPECT_EQ(TermSign(Mul(ConstDouble(0.85), Var("w")), cs), Sign::kNonNegative);
  EXPECT_EQ(TermSign(Div(Mul(ConstDouble(0.85), Var("w")), Var("d")), cs),
            Sign::kNonNegative);
  EXPECT_EQ(TermSign(Neg(Var("d")), cs), Sign::kNegative);
  EXPECT_EQ(TermSign(Add(Var("d"), ConstInt(1)), cs), Sign::kPositive);
}

TEST(TermSign, LatticeOps) {
  ConstraintSet cs;
  cs.Assume("p", Sign::kPositive);
  cs.Assume("q", Sign::kPositive);
  cs.Assume("n", Sign::kNegative);
  EXPECT_EQ(TermSign(Min(Var("p"), Var("q")), cs), Sign::kPositive);
  EXPECT_EQ(TermSign(Min(Var("p"), Var("n")), cs), Sign::kNegative);
  EXPECT_EQ(TermSign(Max(Var("p"), Var("n")), cs), Sign::kPositive);
  EXPECT_EQ(TermSign(Relu(Var("n")), cs), Sign::kNonNegative);
  EXPECT_EQ(TermSign(Relu(Var("p")), cs), Sign::kPositive);
  EXPECT_EQ(TermSign(Abs(Var("n")), cs), Sign::kPositive);
}

TEST(MonotoneIn, AffinePositiveSlope) {
  ConstraintSet cs;
  // f(x) = x + c
  EXPECT_EQ(MonotoneIn(Add(Var("x"), Var("c")), "x", cs),
            Monotonicity::kNondecreasing);
  // f(x) = c (no dependence)
  EXPECT_EQ(MonotoneIn(Var("c"), "x", cs), Monotonicity::kConstant);
}

TEST(MonotoneIn, ScaledByKnownSigns) {
  ConstraintSet cs;
  cs.Assume("p", Sign::kPositive);
  cs.Assume("n", Sign::kNegative);
  EXPECT_EQ(MonotoneIn(Mul(Var("p"), Var("x")), "x", cs),
            Monotonicity::kNondecreasing);
  EXPECT_EQ(MonotoneIn(Mul(Var("n"), Var("x")), "x", cs),
            Monotonicity::kNonincreasing);
  EXPECT_EQ(MonotoneIn(Mul(Var("u"), Var("x")), "x", cs), Monotonicity::kUnknown);
}

TEST(MonotoneIn, DivisionByConstrainedSymbol) {
  ConstraintSet cs;
  cs.Assume("d", Sign::kPositive);
  EXPECT_EQ(MonotoneIn(Div(Var("x"), Var("d")), "x", cs),
            Monotonicity::kNondecreasing);
  // Dividing BY x is not handled (correctly unknown).
  EXPECT_EQ(MonotoneIn(Div(Var("d"), Var("x")), "x", cs), Monotonicity::kUnknown);
}

TEST(MonotoneIn, SubtractionFlips) {
  ConstraintSet cs;
  EXPECT_EQ(MonotoneIn(Sub(Var("c"), Var("x")), "x", cs),
            Monotonicity::kNonincreasing);
  EXPECT_EQ(MonotoneIn(Neg(Var("x")), "x", cs), Monotonicity::kNonincreasing);
}

TEST(MonotoneIn, MinMaxPreserveMonotonicity) {
  ConstraintSet cs;
  EXPECT_EQ(MonotoneIn(Min(Var("x"), Add(Var("x"), ConstInt(1))), "x", cs),
            Monotonicity::kNondecreasing);
  EXPECT_EQ(MonotoneIn(Min(Var("x"), Neg(Var("x"))), "x", cs),
            Monotonicity::kUnknown);
}

TEST(MonotoneIn, ReluComposition) {
  ConstraintSet cs;
  EXPECT_EQ(MonotoneIn(Relu(Var("x")), "x", cs), Monotonicity::kNondecreasing);
  EXPECT_EQ(MonotoneIn(Relu(Neg(Var("x"))), "x", cs), Monotonicity::kNonincreasing);
}

TEST(MonotoneIn, ProductOfNonNegNondecreasing) {
  ConstraintSet cs;
  cs.Assume("x", Sign::kNonNegative);
  EXPECT_EQ(MonotoneIn(Mul(Var("x"), Var("x")), "x", cs),
            Monotonicity::kNondecreasing);
  ConstraintSet unconstrained;
  EXPECT_EQ(MonotoneIn(Mul(Var("x"), Var("x")), "x", unconstrained),
            Monotonicity::kUnknown);
}

}  // namespace
}  // namespace powerlog::smt
