// Stale-synchronous execution (ExecMode::kStaleSync): the bounded
// superstep-clock gate under a deliberately skewed partition, bit-exactness
// against sync for min/max programs, ε-tightness for sums, the
// --staleness=auto tuner, and crash recovery with a tight bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "eval/eval_common.h"
#include "runtime/engine.h"
#include "test_util.h"

namespace powerlog::runtime {
namespace {

using eval::MaxAbsDiff;
using powerlog::testing::MustCompile;
using powerlog::testing::SmallDag;
using powerlog::testing::SmallWeightedGraph;

/// Three-shard graph with a deliberately unbalanced range partition:
/// worker 0's shard is dense (every vertex fans out inside the shard, so
/// its frontier stays hot for many supersteps) while workers 1–2 own leaf
/// vertices that touch the computation once and then idle. Under
/// kStaleSync the light workers' superstep clocks race ahead of the heavy
/// worker's until the staleness gate parks them — the 2-fast/1-slow
/// harness the bound-respected invariant needs.
Graph SkewedThreeShardGraph(uint64_t seed = 9) {
  Rng rng(seed);
  GraphBuilder b;
  const VertexId heavy = 600;  // worker 0's shard under kRange, 3 workers
  const VertexId n = 1800;
  b.EnsureVertices(n);
  for (VertexId v = 0; v < heavy; ++v) {
    for (int k = 0; k < 32; ++k) {
      VertexId d = static_cast<VertexId>(rng.NextBounded(heavy));
      if (d == v) d = (d + 1) % heavy;
      b.AddEdge(v, d, 0.05 + 0.45 * rng.NextDouble());
    }
  }
  for (VertexId v = heavy; v < n; ++v) {
    // One edge back into the dense shard: light vertices seed the heavy
    // computation, receive nothing afterwards, and sit idle bumping their
    // superstep clocks.
    b.AddEdge(v, static_cast<VertexId>(rng.NextBounded(heavy)),
              0.05 + 0.45 * rng.NextDouble());
  }
  GraphBuilder::Options opts;
  opts.dedup = true;
  return std::move(b).Build(opts).ValueOrDie();
}

/// kStaleSync over the skewed harness: 3 workers, contiguous ranges so the
/// shard imbalance lands exactly as constructed.
EngineOptions StaleBase(int64_t staleness) {
  EngineOptions options;
  options.mode = ExecMode::kStaleSync;
  options.num_workers = 3;
  options.network.instant = true;
  options.partition = Partitioner::Kind::kRange;
  options.staleness = staleness;
  return options;
}

// ---------------------------------------------------------------------------
// The SSP invariant: no worker runs more than s supersteps ahead.

TEST(StaleSync, BoundIsRespectedUnderSkew) {
  Kernel k = MustCompile("pagerank");
  auto g = SkewedThreeShardGraph();
  EngineOptions options = StaleBase(/*staleness=*/2);
  options.epsilon_override = 1e-9;
  auto run = Engine(g, k, options).Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->stats.converged) << run->stats.Summary();
  // The hard SSP invariant: the largest fast−slow clock lead any worker
  // observed on clearing the gate never exceeded the bound.
  EXPECT_LE(run->stats.staleness_max_lead, 2);
  // And the skew was real — the light shards actually hit the gate, so the
  // invariant above was load-bearing rather than vacuous.
  EXPECT_GT(run->stats.staleness_blocks, 0);
  // Fixed bound: what the run ends with is what it started with.
  EXPECT_EQ(run->stats.staleness_final_bound, 2);
}

TEST(StaleSync, SingleWorkerDegeneratesGracefully) {
  // One worker, s = 0: the gate compares the worker's clock with itself,
  // so the barrier-free-lockstep degenerate case must neither block nor
  // change the fixpoint.
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(7);
  EngineOptions sync;
  sync.mode = ExecMode::kSync;
  sync.num_workers = 1;
  sync.network.instant = true;
  sync.barrier_overhead_us = 0;
  auto want = Engine(g, k, sync).Run();
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  EngineOptions stale = StaleBase(/*staleness=*/0);
  stale.num_workers = 1;
  auto got = Engine(g, k, stale).Run();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->stats.converged);
  EXPECT_EQ(got->stats.staleness_blocks, 0);
  EXPECT_EQ(got->values, want->values);
}

TEST(StaleSync, RejectsNegativeStalenessBound) {
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph();
  EngineOptions options;
  options.mode = ExecMode::kStaleSync;
  options.staleness = -1;
  EXPECT_TRUE(Engine(g, k, options).Run().status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Result parity with sync (fig9 programs).

TEST(StaleSync, MinMaxProgramsAreBitExactVsSync) {
  // min/max aggregates are order-independent: whatever interleaving the
  // staleness gate admits, the fixpoint must be the sync one bit-for-bit.
  for (const char* program : {"sssp", "cc", "viterbi"}) {
    Kernel k = MustCompile(program);
    auto g = SmallWeightedGraph(101);
    EngineOptions sync;
    sync.mode = ExecMode::kSync;
    sync.num_workers = 4;
    sync.network.instant = true;
    sync.barrier_overhead_us = 0;
    auto want = Engine(g, k, sync).Run();
    ASSERT_TRUE(want.ok()) << program << ": " << want.status().ToString();

    EngineOptions stale = StaleBase(/*staleness=*/3);
    stale.num_workers = 4;
    auto got = Engine(g, k, stale).Run();
    ASSERT_TRUE(got.ok()) << program << ": " << got.status().ToString();
    EXPECT_TRUE(got->stats.converged) << program;
    EXPECT_EQ(got->values, want->values) << program;
  }
}

TEST(StaleSync, DagSumMatchesSyncExactly) {
  // Path counts are integers, so double addition is exact in any order:
  // the quiescence fixpoint must match sync exactly even for a sum.
  Kernel k = MustCompile("paths_dag");
  auto g = SmallDag(71);
  EngineOptions sync;
  sync.mode = ExecMode::kSync;
  sync.num_workers = 4;
  sync.network.instant = true;
  sync.barrier_overhead_us = 0;
  auto want = Engine(g, k, sync).Run();
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  EngineOptions stale = StaleBase(/*staleness=*/2);
  stale.num_workers = 4;
  auto got = Engine(g, k, stale).Run();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->stats.converged);
  EXPECT_EQ(got->values, want->values);
}

TEST(StaleSync, SumEpsilonTightVsSync) {
  // Same kernel + ε must land element-wise within 10·ε of the sync run —
  // the ε-streak is confirmed at a consistent cut (all clocks agree at the
  // pause rendezvous), so bounded staleness must not loosen the criterion.
  Kernel k = MustCompile("pagerank");
  auto g = SmallWeightedGraph(101);
  const double epsilon = 1e-7;
  std::vector<std::vector<double>> results;
  for (ExecMode mode : {ExecMode::kSync, ExecMode::kStaleSync}) {
    EngineOptions options;
    options.mode = mode;
    options.num_workers = 4;
    options.network.instant = true;
    options.barrier_overhead_us = 0;
    options.epsilon_override = epsilon;
    options.staleness = 3;
    auto run = Engine(g, k, options).Run();
    ASSERT_TRUE(run.ok()) << ExecModeName(mode) << ": "
                          << run.status().ToString();
    EXPECT_TRUE(run->stats.converged)
        << ExecModeName(mode) << " " << run->stats.Summary();
    results.push_back(std::move(run->values));
  }
  EXPECT_LE(MaxAbsDiff(results[0], results[1]), 10.0 * epsilon);
}

// ---------------------------------------------------------------------------
// The --staleness=auto controller.

TEST(StaleSync, AutoTunerWidensWhenGateBinds) {
  Kernel k = MustCompile("pagerank");
  auto g = SkewedThreeShardGraph(13);
  EngineOptions options = StaleBase(/*staleness=*/1);
  options.staleness_auto = true;
  options.epsilon_override = 1e-9;
  options.record_trace = true;
  // A fixed flush policy pins the per-worker β spread at zero, so the only
  // tuner signals in play are the gate-block counter, the clock skew, and
  // the pending-mass EMA — the widening pair.
  options.buffer.kind = FlushPolicyKind::kFixed;
  auto run = Engine(g, k, options).Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->stats.converged) << run->stats.Summary();
  ASSERT_GT(run->stats.staleness_blocks, 0);
  // With the gate binding every superstep and mass draining steadily, some
  // check must have widened the bound off its floor — visible either in
  // the final bound or in the recorded trajectory.
  ASSERT_FALSE(run->trace.empty());
  double max_bound = 0.0;
  for (const TraceSample& sample : run->trace) {
    EXPECT_GE(sample.staleness_bound, 1.0);
    EXPECT_LE(sample.staleness_bound, 256.0);
    max_bound = std::max(max_bound, sample.staleness_bound);
  }
  max_bound = std::max(
      max_bound, static_cast<double>(run->stats.staleness_final_bound));
  EXPECT_GT(max_bound, 1.0);
  EXPECT_GE(run->stats.staleness_final_bound, 1);
}

TEST(StaleSync, AutoTunerSuppressesWidensForPersistentStraggler) {
  // Straggler-identity attribution: the dense shard pins worker 0's busy
  // fraction near 1 while workers 1–2 idle at the gate, so the tuner's
  // dominance streak must converge on worker 0 — and once the straggler is
  // *persistent*, gate pressure must stop widening the bound (more
  // staleness would just let the fast peers drift from a saturated worker)
  // and count the suppression instead.
  Kernel k = MustCompile("pagerank");
  auto g = SkewedThreeShardGraph(9);
  EngineOptions options = StaleBase(/*staleness=*/1);
  options.staleness_auto = true;
  options.epsilon_override = 1e-10;  // long run: many tuner checks
  options.steal = false;  // stealing would offload the heavy shard and
                          // dilute the dominance signal under test
  options.term_check_interval_us = 200;  // frequent checks: streak confirms
  options.buffer.kind = FlushPolicyKind::kFixed;
  auto run = Engine(g, k, options).Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->stats.converged) << run->stats.Summary();
  ASSERT_GT(run->stats.staleness_blocks, 0);
  // The tuner attributed the skew to the heavy range shard's owner...
  EXPECT_EQ(run->stats.straggler_identity, 0) << run->stats.Summary();
  // ...and demonstrably branched on it: at least one gate-pressure check
  // that would have widened the bound held it instead.
  EXPECT_GT(run->stats.staleness_widens_suppressed, 0)
      << run->stats.Summary();
}

TEST(StaleSync, WorkerBetaTimelineIsPopulated) {
  // Regression: worker-β gauges used to be allocated only when tracing or
  // exposition was on, and published only from the async-family flush
  // paths — leaving the kStaleSync tuner's β-spread input silently empty.
  // Every trace sample must now carry one positive β per worker.
  Kernel k = MustCompile("pagerank");
  auto g = SkewedThreeShardGraph(21);
  EngineOptions options = StaleBase(/*staleness=*/2);
  options.epsilon_override = 1e-8;
  options.record_trace = true;
  auto run = Engine(g, k, options).Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_FALSE(run->trace.empty());
  for (const TraceSample& sample : run->trace) {
    ASSERT_EQ(sample.worker_beta.size(), 3u);
    for (double beta : sample.worker_beta) EXPECT_GT(beta, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Fault tolerance with a tight bound (the gate and the recovery rendezvous
// share the park/cv machinery — exercise them together).

TEST(StaleSync, CrashRecoveryIsDeterministicWithTightBound) {
  Kernel k = MustCompile("sssp");
  auto g = SmallWeightedGraph(61);
  EngineOptions base = StaleBase(/*staleness=*/1);
  base.partition = Partitioner::Kind::kHash;  // match the chaos-suite layout
  base.barrier_overhead_us = 0;
  base.term_check_interval_us = 50000;  // sluggish: fault fires first
  auto clean = Engine(g, k, base).Run();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  EngineOptions chaos = base;
  chaos.fault.crash_worker = 1;
  chaos.fault.crash_at_beats = 20;
  chaos.fault.seed = 0xBEEF;
  auto r1 = Engine(g, k, chaos).Run();
  auto r2 = Engine(g, k, chaos).Run();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r1->stats.faults.crashes, 1);
  EXPECT_GE(r1->stats.recoveries, 1);
  // Same seed => same recovery count and bit-identical results; min is
  // order-independent, so the healed run lands on the exact clean
  // fixpoint. A dead peer's frozen clock must not wedge the gate, and the
  // post-recovery clock re-base must not let a survivor overrun the bound.
  EXPECT_EQ(r1->stats.recoveries, r2->stats.recoveries);
  EXPECT_EQ(r1->values, r2->values);
  EXPECT_EQ(r1->values, clean->values);
  EXPECT_LE(r1->stats.staleness_max_lead, 1);
}

}  // namespace
}  // namespace powerlog::runtime
