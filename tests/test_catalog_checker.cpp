// Table 1 reproduction: the automatic condition checker's verdict for all
// fourteen catalog programs, plus provenance checks on the reports.
#include <gtest/gtest.h>

#include "checker/mra_checker.h"
#include "datalog/catalog.h"

namespace powerlog::checker {
namespace {

using datalog::CatalogEntry;
using datalog::ProgramCatalog;

class CatalogCheckerTest : public ::testing::TestWithParam<CatalogEntry> {};

TEST_P(CatalogCheckerTest, VerdictMatchesTable1) {
  const CatalogEntry& entry = GetParam();
  auto result = CheckMraConditionsFromSource(entry.source);
  ASSERT_TRUE(result.ok()) << entry.name << ": " << result.status().ToString();
  EXPECT_EQ(result->satisfied, entry.expected_mra_sat) << result->report;
  // Verdicts must be decisive for the catalog (no "unknown" hedging).
  EXPECT_FALSE(result->inconclusive) << result->report;
}

TEST_P(CatalogCheckerTest, ReportMentionsBothProperties) {
  const CatalogEntry& entry = GetParam();
  auto result = CheckMraConditionsFromSource(entry.source);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->report.find("Property 1"), std::string::npos);
  EXPECT_NE(result->report.find("Property 2"), std::string::npos);
  EXPECT_NE(result->report.find(entry.name), std::string::npos);
}

TEST_P(CatalogCheckerTest, SmtLibScriptIsEmitted) {
  const CatalogEntry& entry = GetParam();
  auto result = CheckMraConditionsFromSource(entry.source);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->smtlib_script.find("(check-sat)"), std::string::npos);
  EXPECT_NE(result->smtlib_script.find("(assert (not (forall"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Table1, CatalogCheckerTest,
                         ::testing::ValuesIn(ProgramCatalog()),
                         [](const ::testing::TestParamInfo<CatalogEntry>& info) {
                           return info.param.name;
                         });

TEST(CatalogChecker, TwelvePassTwoFail) {
  int pass = 0, fail = 0;
  for (const auto& entry : ProgramCatalog()) {
    auto result = CheckMraConditionsFromSource(entry.source);
    ASSERT_TRUE(result.ok()) << entry.name;
    (result->satisfied ? pass : fail)++;
  }
  EXPECT_EQ(pass, 12);
  EXPECT_EQ(fail, 2);
}

TEST(CatalogChecker, FailuresCarryWitnesses) {
  // GCN-Forward must fail Property 2 with a concrete relu counterexample.
  auto gcn = datalog::GetCatalogEntry("gcn_forward");
  ASSERT_TRUE(gcn.ok());
  auto result = CheckMraConditionsFromSource(gcn->source);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->property1.holds());
  EXPECT_EQ(result->property2.verdict, smt::Verdict::kInvalid);
  EXPECT_TRUE(result->property2.counterexample.has_value());

  // CommNet must fail Property 1 (mean is not associative).
  auto commnet = datalog::GetCatalogEntry("commnet");
  ASSERT_TRUE(commnet.ok());
  auto result2 = CheckMraConditionsFromSource(commnet->source);
  ASSERT_TRUE(result2.ok());
  EXPECT_FALSE(result2->property1.holds());
  EXPECT_EQ(result2->property1.associativity.verdict, smt::Verdict::kInvalid);
  EXPECT_EQ(result2->property1.commutativity.verdict, smt::Verdict::kValid);
}

TEST(CatalogChecker, Property1PerAggregate) {
  using datalog::AggKind;
  for (AggKind kind : {AggKind::kMin, AggKind::kMax, AggKind::kSum, AggKind::kCount}) {
    auto p1 = CheckProperty1(kind);
    EXPECT_TRUE(p1.holds()) << datalog::AggKindName(kind);
  }
  EXPECT_FALSE(CheckProperty1(AggKind::kMean).holds());
}

TEST(CatalogChecker, CheckerErrorsOnBadSource) {
  EXPECT_FALSE(CheckMraConditionsFromSource("not datalog").ok());
  EXPECT_FALSE(CheckMraConditionsFromSource("f(X,v) :- X = 0, v = 1.").ok());
}

}  // namespace
}  // namespace powerlog::checker
