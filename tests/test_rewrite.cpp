#include <gtest/gtest.h>

#include "checker/rewrite.h"
#include "datalog/catalog.h"
#include "datalog/parser.h"

namespace powerlog::checker {
namespace {

datalog::AnalyzedProgram MustAnalyze(const std::string& name) {
  auto entry = datalog::GetCatalogEntry(name);
  EXPECT_TRUE(entry.ok());
  auto parsed = datalog::Parse(entry->source);
  EXPECT_TRUE(parsed.ok());
  auto analyzed = datalog::Analyze(*parsed);
  EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  return std::move(analyzed).ValueOrDie();
}

TEST(Rewrite, PageRankBecomesProgram2b) {
  auto text = EmitIncrementalEquivalent(MustAnalyze("pagerank"));
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Program 2.b structure: iteration-0 facts carry the constant 0.15, the
  // recursive rule has the accumulating self body and no constant body.
  EXPECT_NE(text->find("rank(0,Y,r0) :- node(Y), r0 = 0.15"), std::string::npos)
      << *text;
  EXPECT_NE(text->find("rank(i,Y,rprev)"), std::string::npos) << *text;
  EXPECT_NE(text->find("degree(X,count[N])"), std::string::npos) << *text;
  EXPECT_EQ(text->find("ry = 0.15;"), std::string::npos) << *text;  // no C body
  // The emitted text must parse.
  auto parsed = datalog::Parse(*text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << *text;
}

TEST(Rewrite, KatzSeedsTheSingleKeyConstant) {
  auto text = EmitIncrementalEquivalent(MustAnalyze("katz"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("K(0,Y,r0) :- Y = 0, r0 = 10000"), std::string::npos)
      << *text;
  EXPECT_TRUE(datalog::Parse(*text).ok()) << *text;
}

TEST(Rewrite, OrderedProgramsRoundTripThroughTheAnalyzer) {
  for (const char* name : {"sssp", "cc", "viterbi"}) {
    auto text = EmitIncrementalEquivalent(MustAnalyze(name));
    ASSERT_TRUE(text.ok()) << name << ": " << text.status().ToString();
    auto parsed = datalog::Parse(*text);
    ASSERT_TRUE(parsed.ok()) << name << ": " << parsed.status().ToString();
    // min/max emissions stay inside the analyzable fragment.
    auto analyzed = datalog::Analyze(*parsed);
    EXPECT_TRUE(analyzed.ok()) << name << ": " << analyzed.status().ToString();
    if (analyzed.ok()) {
      EXPECT_EQ(analyzed->aggregate, MustAnalyze(name).aggregate);
    }
  }
}

TEST(Rewrite, SumEmissionsParseForWholeCatalog) {
  for (const auto& entry : datalog::ProgramCatalog()) {
    if (!entry.expected_mra_sat) continue;
    auto parsed = datalog::Parse(entry.source);
    ASSERT_TRUE(parsed.ok());
    auto analyzed = datalog::Analyze(*parsed);
    ASSERT_TRUE(analyzed.ok()) << entry.name;
    auto text = EmitIncrementalEquivalent(*analyzed);
    ASSERT_TRUE(text.ok()) << entry.name << ": " << text.status().ToString();
    EXPECT_TRUE(datalog::Parse(*text).ok())
        << entry.name << ":\n" << *text;
  }
}

TEST(Rewrite, MeanIsRejected) {
  auto entry = datalog::GetCatalogEntry("commnet");
  auto parsed = datalog::Parse(entry->source);
  auto analyzed = datalog::Analyze(*parsed);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_TRUE(EmitIncrementalEquivalent(*analyzed).status().IsConditionViolated());
}

}  // namespace
}  // namespace powerlog::checker
