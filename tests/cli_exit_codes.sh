#!/bin/sh
# Exit-code audit for powerlog_cli (ISSUE 6 satellite): every failure path
# must exit nonzero with a diagnostic on stderr. The regression was runs
# that "failed politely" — unwritable artifact paths, garbage numeric flags
# — while still exiting 0, which silently greenlights broken CI pipelines.
#
# Usage: cli_exit_codes.sh <path-to-powerlog_cli>
set -u

CLI="${1:?usage: cli_exit_codes.sh <powerlog_cli>}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
failures=0

# expect <expected-exit> <description> -- <args...>
expect() {
    want="$1"; desc="$2"; shift 3
    out="$TMP/stdout"; err="$TMP/stderr"
    "$CLI" "$@" >"$out" 2>"$err"
    got=$?
    if [ "$got" -ne "$want" ]; then
        echo "FAIL: $desc: exit $got, want $want" >&2
        sed 's/^/  stderr: /' "$err" >&2
        failures=$((failures + 1))
        return
    fi
    # Exit 3 is check-only's documented "conditions unsatisfied" verdict —
    # the report goes to stdout; only real errors (1, 2) owe a stderr line.
    if [ "$want" -ne 0 ] && [ "$want" -ne 3 ] && [ ! -s "$err" ]; then
        echo "FAIL: $desc: nonzero exit but empty stderr diagnostic" >&2
        failures=$((failures + 1))
        return
    fi
    echo "ok: $desc (exit $got)"
}

# Healthy baseline: a tiny run must still succeed.
printf '0 1 1\n1 2 1\n' > "$TMP/edges.txt"
expect 0 "successful run" -- \
    --program sssp --graph "$TMP/edges.txt" --workers 2
expect 0 "--list" -- --list

# Usage errors: exit 2.
expect 2 "no arguments" --
expect 2 "unknown flag" -- --program sssp --bogus-flag
expect 2 "missing graph and dataset" -- --program sssp
expect 2 "both graph and dataset" -- \
    --program sssp --dataset flickr --graph "$TMP/edges.txt"
expect 2 "bad mode" -- \
    --program sssp --graph "$TMP/edges.txt" --mode warp
expect 2 "garbage --workers" -- \
    --program sssp --graph "$TMP/edges.txt" --workers 4x
expect 2 "garbage --source" -- \
    --program sssp --graph "$TMP/edges.txt" --source abc
expect 2 "garbage --epsilon" -- \
    --program sssp --graph "$TMP/edges.txt" --epsilon 1e-
expect 2 "garbage --top" -- \
    --program sssp --graph "$TMP/edges.txt" --top ten
expect 2 "garbage --serve-metrics" -- \
    --program sssp --graph "$TMP/edges.txt" --serve-metrics http

# Input errors: exit 1.
expect 1 "unknown program" -- \
    --program no_such_program --graph "$TMP/edges.txt"
expect 1 "unknown dataset" -- --program sssp --dataset no_such_dataset
expect 1 "unreadable graph file" -- \
    --program sssp --graph "$TMP/does_not_exist.txt"
printf 'this is not datalog' > "$TMP/bad.dl"
expect 1 "datalog parse failure" -- \
    --program "$TMP/bad.dl" --graph "$TMP/edges.txt"

# Artifact-write failures: exit 1 even though the run itself succeeded.
expect 1 "unwritable --metrics-json directory" -- \
    --program sssp --graph "$TMP/edges.txt" --workers 2 \
    --metrics-json "$TMP/no_such_dir/metrics.json"
expect 1 "unwritable --trace-out directory" -- \
    --program sssp --graph "$TMP/edges.txt" --workers 2 \
    --trace-out "$TMP/no_such_dir/trace.json"
if [ -w /dev/full ] 2>/dev/null; then
    # ENOSPC at write(2) time, after a perfectly successful open(2): the
    # original bug exited 0 here.
    expect 1 "metrics write hits ENOSPC (/dev/full)" -- \
        --program sssp --graph "$TMP/edges.txt" --workers 2 \
        --metrics-json /dev/full
    expect 1 "trace write hits ENOSPC (/dev/full)" -- \
        --program sssp --graph "$TMP/edges.txt" --workers 2 \
        --trace-out /dev/full
fi

# Check-only keeps its documented tri-state: 0 satisfied, 3 unsatisfied.
expect 0 "check-only satisfied (sssp)" -- --program sssp --check-only
expect 3 "check-only unsatisfied (gcn_forward)" -- \
    --program gcn_forward --check-only

if [ "$failures" -ne 0 ]; then
    echo "cli_exit_codes: $failures case(s) failed" >&2
    exit 1
fi
echo "cli_exit_codes: all cases passed"
