// Concurrent-serving chaos test (ISSUE 6 satellite, TSan-gated): reader
// threads hammer point lookups and top-k scans while full runs converge on
// the *same* shared Graph snapshot. Uses sssp — a min aggregate with a
// unique fixpoint — so every answer is bit-exact against a cold run, and any
// torn read, lock misuse, or accidental mutation of the shared snapshot
// shows up as either a TSan report or a value mismatch.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "datalog/catalog.h"
#include "graph/builder.h"
#include "powerlog/serving.h"

namespace powerlog {
namespace {

Graph ChainGraph(VertexId n) {
  GraphBuilder b;
  b.EnsureVertices(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1, 1.0);
  return std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();
}

TEST(ServingChaos, LookupsStayBitExactWhileRunsConverge) {
  auto sssp = datalog::GetCatalogEntry("sssp");
  ASSERT_TRUE(sssp.ok());

  constexpr VertexId kN = 1500;  // sync sssp: one superstep per hop
  serving::ServingOptions options;
  options.engine.num_workers = 2;
  options.engine.network.instant = true;
  options.engine.mode = runtime::ExecMode::kSync;
  options.max_inflight_runs = 2;
  options.max_queued_runs = 4;
  options.cache_capacity = 0;  // force every run through the engine
  serving::ServingCatalog catalog(options);
  ASSERT_TRUE(
      catalog.MaterializeSource("sssp", "chain", sssp->source, ChainGraph(kN))
          .ok());

  // Cold references, computed before any concurrency starts.
  RunOptions cold_options;
  cold_options.engine = options.engine;
  Graph cold_graph = ChainGraph(kN);
  auto cold_default = PowerLog::Run(sssp->source, cold_graph, cold_options);
  ASSERT_TRUE(cold_default.ok());
  cold_options.source = 100;
  auto cold_src100 = PowerLog::Run(sssp->source, cold_graph, cold_options);
  ASSERT_TRUE(cold_src100.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};

  // Reader fleet: point lookups + top-k scans against resident state.
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint32_t x = 0x9e3779b9u * static_cast<uint32_t>(r + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        x = x * 1664525u + 1013904223u;  // cheap LCG, no shared state
        const VertexId v = x % kN;
        auto value = catalog.Lookup("sssp", "chain", v);
        if (!value.ok() || *value != cold_default->values[v]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (v % 16 == 0) {
          auto top = catalog.TopK("sssp", "chain", 4, /*ascending=*/true);
          if (!top.ok() || top->size() != 4 || (*top)[0].second != 0.0 ||
              (*top)[3].second != 3.0) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // Writer-shaped traffic: full convergences multiplexed over the same
  // shared snapshot (they write their own private state, never the graph or
  // the resident values). Results must be bit-exact against the cold run.
  std::vector<std::thread> runners;
  for (int t = 0; t < 2; ++t) {
    runners.emplace_back([&] {
      for (int i = 0; i < 2; ++i) {
        auto run = catalog.Run("sssp", "chain", 100, /*deadline_ms=*/120000);
        if (!run.ok()) {
          // Admission pushback is legal under chaos; wrong answers are not.
          continue;
        }
        if (!run->converged ||
            run->values.size() != cold_src100->values.size()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (size_t v = 0; v < run->values.size(); ++v) {
          if (run->values[v] != cold_src100->values[v] &&
              !(std::isinf(run->values[v]) &&
                std::isinf(cold_src100->values[v]))) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
    });
  }

  for (auto& t : runners) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  // The whole storm shared one snapshot: no per-query graph rebuilds.
  EXPECT_EQ(catalog.graph_builds(), 1);
}

}  // namespace
}  // namespace powerlog
