#include <gtest/gtest.h>

#include "common/config.h"
#include "common/string_util.h"

namespace powerlog {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(SplitWhitespace, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("recip[d]", "recip["));
  EXPECT_FALSE(StartsWith("re", "recip["));
  EXPECT_TRUE(EndsWith("file.cpp", ".cpp"));
  EXPECT_FALSE(EndsWith("cpp", "file.cpp"));
}

TEST(ToLower, AsciiOnly) { EXPECT_EQ(ToLower("MiN[X]"), "min[x]"); }

TEST(ParseInt64, Valid) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64(" -7 "), -7);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64, Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDouble, Valid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("0.85"), 0.85);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e-3"), 0.001);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2.5"), -2.5);
}

TEST(ParseDouble, Invalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(Join, Basics) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringFormat, Formats) {
  EXPECT_EQ(StringFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StringFormat("%.2f", 1.239), "1.24");
}

TEST(Config, ParseRoundTrip) {
  auto cfg = Config::FromString("a=1, b = 2.5 ,name=powerlog");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->GetInt("a", -1), 1);
  EXPECT_DOUBLE_EQ(cfg->GetDouble("b", -1), 2.5);
  EXPECT_EQ(cfg->GetString("name", ""), "powerlog");
  EXPECT_EQ(cfg->GetInt("missing", 9), 9);
}

TEST(Config, EmptyAndErrors) {
  EXPECT_TRUE(Config::FromString("").ok());
  EXPECT_TRUE(Config::FromString("  ").ok());
  EXPECT_FALSE(Config::FromString("novalue").ok());
  EXPECT_FALSE(Config::FromString("=5").ok());
}

TEST(Config, BoolParsing) {
  auto cfg = Config::FromString("t=true,f=off,y=1,n=no,junk=maybe");
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->GetBool("t", false));
  EXPECT_FALSE(cfg->GetBool("f", true));
  EXPECT_TRUE(cfg->GetBool("y", false));
  EXPECT_FALSE(cfg->GetBool("n", true));
  EXPECT_TRUE(cfg->GetBool("junk", true));  // unparsable -> default
}

TEST(Config, SettersAndToString) {
  Config cfg;
  cfg.SetInt("workers", 4);
  cfg.SetBool("sync", false);
  cfg.SetDouble("eps", 0.5);
  EXPECT_TRUE(cfg.Has("workers"));
  EXPECT_EQ(cfg.GetInt("workers", 0), 4);
  EXPECT_FALSE(cfg.GetBool("sync", true));
  EXPECT_DOUBLE_EQ(cfg.GetDouble("eps", 0), 0.5);
  auto round = Config::FromString(cfg.ToString());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->GetInt("workers", 0), 4);
}

}  // namespace
}  // namespace powerlog
