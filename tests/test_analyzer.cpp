#include <gtest/gtest.h>

#include "datalog/analyzer.h"
#include "datalog/catalog.h"
#include "datalog/parser.h"
#include "smt/printer.h"

namespace powerlog::datalog {
namespace {

AnalyzedProgram MustAnalyze(const std::string& src) {
  auto p = Parse(src);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  auto a = Analyze(*p);
  EXPECT_TRUE(a.ok()) << a.status().ToString();
  return std::move(a).ValueOrDie();
}

TEST(Analyzer, SsspExtraction) {
  auto entry = GetCatalogEntry("sssp");
  ASSERT_TRUE(entry.ok());
  auto a = MustAnalyze(entry->source);
  EXPECT_EQ(a.name, "sssp");
  EXPECT_EQ(a.head_predicate, "sssp");
  EXPECT_EQ(a.aggregate, AggKind::kMin);
  EXPECT_EQ(a.edge_fn.input_var, "dx");
  EXPECT_EQ(a.edge_fn.weight_var, "dxy");
  EXPECT_EQ(a.edge_fn.degree_var, "");
  EXPECT_EQ(a.init.kind, InitKind::kSingleSource);
  EXPECT_EQ(a.init.source, 0u);
  EXPECT_DOUBLE_EQ(a.init.value, 0.0);
  EXPECT_FALSE(a.init.iteration_indexed);
  EXPECT_EQ(a.constant.kind, ConstKind::kNone);
  EXPECT_EQ(smt::ToInfix(a.f_term), "x + dxy");
}

TEST(Analyzer, CcExtraction) {
  auto entry = GetCatalogEntry("cc");
  ASSERT_TRUE(entry.ok());
  auto a = MustAnalyze(entry->source);
  EXPECT_EQ(a.aggregate, AggKind::kMin);
  EXPECT_EQ(a.init.kind, InitKind::kAllVerticesOwnId);
  // F' is the identity on the recursive value.
  EXPECT_EQ(smt::ToInfix(a.f_term), "x");
  EXPECT_FALSE(a.uses_in_edges);
}

TEST(Analyzer, PageRankExtraction) {
  auto entry = GetCatalogEntry("pagerank");
  ASSERT_TRUE(entry.ok());
  auto a = MustAnalyze(entry->source);
  EXPECT_EQ(a.aggregate, AggKind::kSum);
  EXPECT_EQ(a.edge_fn.degree_var, "d");
  EXPECT_EQ(a.constant.kind, ConstKind::kAllVertices);
  EXPECT_DOUBLE_EQ(a.constant.value, 0.15);
  EXPECT_EQ(a.init.kind, InitKind::kAllVerticesConst);
  EXPECT_DOUBLE_EQ(a.init.value, 0.0);
  EXPECT_TRUE(a.init.iteration_indexed);
  EXPECT_TRUE(a.termination.has_epsilon);
  EXPECT_DOUBLE_EQ(a.termination.epsilon, 0.0001);
  EXPECT_EQ(a.termination.max_iterations, 200);
  // The auto d > 0 constraint for the checker.
  EXPECT_EQ(a.constraints.SignOf("d"), smt::Sign::kPositive);
}

TEST(Analyzer, KatzConstantIsSingleKey) {
  auto entry = GetCatalogEntry("katz");
  ASSERT_TRUE(entry.ok());
  auto a = MustAnalyze(entry->source);
  EXPECT_EQ(a.constant.kind, ConstKind::kSingleKey);
  EXPECT_EQ(a.constant.key, 0u);
  EXPECT_DOUBLE_EQ(a.constant.value, 10000.0);
  EXPECT_EQ(a.init.kind, InitKind::kNone);
}

TEST(Analyzer, AdsorptionAuxTablesBecomeBindings) {
  auto entry = GetCatalogEntry("adsorption");
  ASSERT_TRUE(entry.ok());
  auto a = MustAnalyze(entry->source);
  EXPECT_EQ(a.edges_predicate, "A");
  EXPECT_EQ(a.edge_fn.weight_var, "w");
  ASSERT_TRUE(a.edge_fn.const_bindings.count("p"));
  EXPECT_DOUBLE_EQ(a.edge_fn.const_bindings.at("p"), 0.9);
  EXPECT_EQ(a.constant.kind, ConstKind::kAllVertices);
  EXPECT_NEAR(a.constant.value, 0.2, 1e-12);  // i * p2 = 1 * 0.2
}

TEST(Analyzer, ViterbiWeightConstraint) {
  auto entry = GetCatalogEntry("viterbi");
  ASSERT_TRUE(entry.ok());
  auto a = MustAnalyze(entry->source);
  EXPECT_EQ(a.aggregate, AggKind::kMax);
  EXPECT_EQ(a.edge_fn.weight_var, "p");
  EXPECT_EQ(a.constraints.SignOf("p"), smt::Sign::kPositive);
}

TEST(Analyzer, GcnKeepsReluInFTerm) {
  auto entry = GetCatalogEntry("gcn_forward");
  ASSERT_TRUE(entry.ok());
  auto a = MustAnalyze(entry->source);
  EXPECT_EQ(smt::ToInfix(a.f_term), "relu(x*p)*w");
}

TEST(Analyzer, InEdgePropagationDetected) {
  auto a = MustAnalyze(
      "p(Y,min[v1]) :- p(X,v), edge(Y,X), v1 = v + 1.\n"
      "p(X,d) :- X = 0, d = 0.");
  EXPECT_TRUE(a.uses_in_edges);
}

TEST(Analyzer, ErrorNoRecursiveRule) {
  auto p = Parse("f(X,v) :- X = 0, v = 1.");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(Analyze(*p).status().IsInvalidArgument());
}

TEST(Analyzer, ErrorNoAggregate) {
  // Two plain head variables and no aggregate: rejected (either as a
  // missing aggregate or as multi-key group-by — both outside the fragment).
  auto p = Parse("f(Y,v) :- f(X,v), edge(X,Y).");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(Analyze(*p).ok());
  // Single head variable, still no aggregate: specifically InvalidArgument.
  auto p2 = Parse("f(Y) :- f(Y), edge(Y,_).");
  ASSERT_TRUE(p2.ok());
  EXPECT_TRUE(Analyze(*p2).status().IsInvalidArgument());
}

TEST(Analyzer, ErrorMultipleRecursiveRules) {
  auto p = Parse(
      "f(Y,sum[v]) :- f(X,v), edge(X,Y).\n"
      "g(Y,sum[v]) :- g(X,v), edge(X,Y).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(Analyze(*p).status().IsNotSupported());
}

TEST(Analyzer, ErrorMutualRecursion) {
  auto p = Parse(
      "f(Y,sum[v]) :- f(X,v), edge(X,Y).\n"
      "h(Y,v) :- f(Y,v).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(Analyze(*p).status().IsNotSupported());
}

TEST(Analyzer, ErrorNonLinearRecursion) {
  auto p = Parse(
      "f(Y,sum[v]) :- f(X,v), edge(X,Y);"
      "            :- f(Z,v), edge(Z,Y).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(Analyze(*p).status().IsNotSupported());
}

TEST(Analyzer, ErrorMultiKeyGroupBy) {
  auto p = Parse("f(A,B,sum[v]) :- f(A,X,v), edge(X,B).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(Analyze(*p).status().IsNotSupported());
}

TEST(Analyzer, ErrorUnassignedAggregateInput) {
  auto p = Parse("f(Y,sum[q]) :- f(X,v), edge(X,Y).");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(Analyze(*p).ok());
}

TEST(Analyzer, ErrorUnknownAnnotation) {
  auto p = Parse("@frobnicate yes.\nf(Y,sum[v]) :- f(X,v), edge(X,Y).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(Analyze(*p).status().IsInvalidArgument());
}

TEST(Analyzer, ErrorMalformedAssume) {
  auto p = Parse("@assume d.\nf(Y,sum[v]) :- f(X,v), edge(X,Y).");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(Analyze(*p).status().IsInvalidArgument());
}

TEST(Analyzer, SourceAnnotationOverridesInitKey) {
  auto a = MustAnalyze(
      "@source 5.\n"
      "p(X,d) :- X = 0, d = 0.\n"
      "p(Y,min[v1]) :- p(X,v), edge(X,Y), v1 = v + 1.");
  EXPECT_EQ(a.init.source, 5u);
}

TEST(Analyzer, ChainedAssignmentsSubstitute) {
  auto a = MustAnalyze(
      "p(X,d) :- X = 0, d = 0.\n"
      "p(Y,min[v2]) :- p(X,v), edge(X,Y,w), v1 = v + w, v2 = v1 + 1.");
  EXPECT_EQ(smt::ToInfix(a.f_term), "x + w + 1");
}

TEST(Analyzer, CyclicAssignmentRejected) {
  auto p = Parse("p(Y,min[a]) :- p(X,v), edge(X,Y), a = b + 1, b = a + 1.");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(Analyze(*p).ok());
}

TEST(Analyzer, AllSatisfiableCatalogProgramsAnalyze) {
  for (const auto& entry : ProgramCatalog()) {
    auto p = Parse(entry.source);
    ASSERT_TRUE(p.ok()) << entry.name;
    auto a = Analyze(*p);
    EXPECT_TRUE(a.ok()) << entry.name << ": " << a.status().ToString();
    if (a.ok()) {
      EXPECT_EQ(a->aggregate, entry.aggregate) << entry.name;
      EXPECT_EQ(a->name, entry.name);
      EXPECT_FALSE(a->summary.empty());
    }
  }
}

}  // namespace
}  // namespace powerlog::datalog
