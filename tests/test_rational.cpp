#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "smt/rational.h"

namespace powerlog::smt {
namespace {

TEST(Rational, NormalisesOnConstruction) {
  Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 2);
}

TEST(Rational, ZeroDenominatorPoisons) {
  Rational r(1, 0);
  EXPECT_TRUE(r.overflow());
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ((a + b), Rational(5, 6));
  EXPECT_EQ((a - b), Rational(1, 6));
  EXPECT_EQ((a * b), Rational(1, 6));
  EXPECT_EQ((a / b), Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, DivisionByZeroPoisons) {
  Rational a(1, 2);
  EXPECT_TRUE((a / Rational(0, 1)).overflow());
}

TEST(Rational, PoisonPropagates) {
  Rational bad(1, 0);
  EXPECT_TRUE((bad + Rational(1, 1)).overflow());
  EXPECT_TRUE((Rational(1, 1) * bad).overflow());
  EXPECT_FALSE(bad == bad);  // NaN-like semantics
}

TEST(Rational, Ordering) {
  EXPECT_TRUE(Rational(1, 3) < Rational(1, 2));
  EXPECT_TRUE(Rational(-1, 2) < Rational(0, 1));
  EXPECT_FALSE(Rational(2, 4) < Rational(1, 2));
}

TEST(Rational, FromDoubleExactDecimals) {
  EXPECT_EQ(Rational::FromDouble(0.85), Rational(17, 20));
  EXPECT_EQ(Rational::FromDouble(0.15), Rational(3, 20));
  EXPECT_EQ(Rational::FromDouble(0.5), Rational(1, 2));
  EXPECT_EQ(Rational::FromDouble(-2.0), Rational(-2, 1));
  EXPECT_EQ(Rational::FromDouble(0.0), Rational(0, 1));
}

TEST(Rational, FromDoubleNonFinitePoisons) {
  EXPECT_TRUE(Rational::FromDouble(std::numeric_limits<double>::infinity()).overflow());
  EXPECT_TRUE(Rational::FromDouble(std::nan("")).overflow());
}

TEST(Rational, FromDecimalString) {
  auto r = Rational::FromDecimalString("0.85");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Rational(17, 20));
  EXPECT_EQ(*Rational::FromDecimalString("-3"), Rational(-3, 1));
  EXPECT_EQ(*Rational::FromDecimalString("10000"), Rational(10000, 1));
  EXPECT_EQ(*Rational::FromDecimalString("0.0001"), Rational(1, 10000));
}

TEST(Rational, FromDecimalStringErrors) {
  EXPECT_FALSE(Rational::FromDecimalString("").ok());
  EXPECT_FALSE(Rational::FromDecimalString("1.2.3").ok());
  EXPECT_FALSE(Rational::FromDecimalString("abc").ok());
  EXPECT_FALSE(Rational::FromDecimalString(".").ok());
}

TEST(Rational, Predicates) {
  EXPECT_TRUE(Rational(0, 5).IsZero());
  EXPECT_TRUE(Rational(3, 3).IsOne());
  EXPECT_TRUE(Rational(-1, 7).IsNegative());
  EXPECT_FALSE(Rational(1, 7).IsNegative());
}

TEST(Rational, ToStringAndToDouble) {
  EXPECT_EQ(Rational(17, 20).ToString(), "17/20");
  EXPECT_EQ(Rational(5, 1).ToString(), "5");
  EXPECT_DOUBLE_EQ(Rational(17, 20).ToDouble(), 0.85);
}

TEST(Rational, OverflowDetectedOnHugeProducts) {
  Rational huge(INT64_MAX, 1);
  EXPECT_TRUE((huge * huge).overflow());
  EXPECT_TRUE((huge + huge).overflow());
  // Half-max sums still fit.
  Rational half(INT64_MAX / 2, 1);
  EXPECT_FALSE((half + half).overflow());
}

TEST(Rational, AssociativityPropertySweep) {
  // Exactness sanity: (a+b)+c == a+(b+c) for a grid of small rationals.
  for (int an = -3; an <= 3; ++an) {
    for (int bn = -2; bn <= 2; ++bn) {
      for (int cn = 1; cn <= 3; ++cn) {
        Rational a(an, 4), b(bn, 3), c(cn, 5);
        EXPECT_EQ((a + b) + c, a + (b + c));
        EXPECT_EQ((a * b) * c, a * (b * c));
      }
    }
  }
}

}  // namespace
}  // namespace powerlog::smt
