// Frontier compute-plane tests (ISSUE 4): the MonoTable dirty bitmap,
// edge-kernel specialization (bit-identical to the stack VM), the flat
// combining buffer vs an unordered_map reference, frontier-on vs frontier-off
// bit-exactness across every execution mode, chaos determinism with the
// frontier enabled, and Graph::Reverse thread safety.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/kernel.h"
#include "core/mono_table.h"
#include "datalog/catalog.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "runtime/engine.h"
#include "runtime/message.h"
#include "test_util.h"

namespace powerlog::runtime {
namespace {

using powerlog::testing::MustCompile;
using powerlog::testing::SmallDag;
using powerlog::testing::SmallWeightedGraph;

// ---------------------------------------------------------------------------
// MonoTable frontier bitmap.

TEST(MonoTableFrontier, EnableSeedsFromIntermediateColumn) {
  auto table = MonoTable::Create(AggKind::kSum, 130);
  ASSERT_TRUE(table.ok());
  std::vector<double> x0(130, 0.0), delta0(130, 0.0);
  delta0[0] = 1.0;
  delta0[64] = -2.5;
  delta0[129] = 0.25;
  ASSERT_TRUE(table->Initialize(x0, delta0).ok());
  EXPECT_FALSE(table->frontier_enabled());

  table->SetFrontierEnabled(true);
  EXPECT_TRUE(table->frontier_enabled());
  EXPECT_EQ(table->num_frontier_words(), 3u);
  for (size_t row = 0; row < 130; ++row) {
    EXPECT_EQ(table->IsDirty(row), row == 0 || row == 64 || row == 129)
        << "row " << row;
  }
  EXPECT_NEAR(table->FrontierOccupancy(), 3.0 / 130.0, 1e-12);

  table->SetFrontierEnabled(false);
  EXPECT_FALSE(table->frontier_enabled());
  EXPECT_EQ(table->num_frontier_words(), 0u);
}

TEST(MonoTableFrontier, CombineMarksOnlyNonIdentity) {
  auto table = MonoTable::Create(AggKind::kMin, 64);
  ASSERT_TRUE(table.ok());
  table->SetFrontierEnabled(true);
  EXPECT_FALSE(table->IsDirty(7));
  table->CombineDelta(7, table->identity());  // no-op contribution
  EXPECT_FALSE(table->IsDirty(7));
  table->CombineDelta(7, 3.0);
  EXPECT_TRUE(table->IsDirty(7));
  table->ClearDirty(7);
  EXPECT_FALSE(table->IsDirty(7));
  // The delta itself is untouched by bitmap traffic.
  EXPECT_EQ(table->intermediate(7), 3.0);
  table->MarkDirty(7);
  EXPECT_TRUE(table->IsDirty(7));
}

TEST(MonoTableFrontier, SetRowAndWipeAlwaysMark) {
  auto table = MonoTable::Create(AggKind::kSum, 64);
  ASSERT_TRUE(table.ok());
  table->SetFrontierEnabled(true);
  // SetRow marks even when the restored delta is the identity: the new
  // owner's sweep must revisit the row (and lazily clear the bit).
  table->SetRow(9, 5.0, table->identity());
  EXPECT_TRUE(table->IsDirty(9));
  table->ClearDirty(9);
  table->WipeRow(9);
  EXPECT_TRUE(table->IsDirty(9));
}

TEST(MonoTableFrontier, RestoreRebuildsBitmap) {
  auto table = MonoTable::Create(AggKind::kSum, 70);
  ASSERT_TRUE(table.ok());
  table->SetFrontierEnabled(true);
  table->MarkDirty(3);  // stale bit that Restore must wipe
  std::vector<double> x(70, 1.0), delta(70, 0.0);
  delta[42] = 0.5;
  ASSERT_TRUE(table->Restore(x, delta).ok());
  for (size_t row = 0; row < 70; ++row) {
    EXPECT_EQ(table->IsDirty(row), row == 42) << "row " << row;
  }
}

// ---------------------------------------------------------------------------
// Edge-kernel specialization.

TEST(KernelSpecialization, CatalogShapes) {
  EXPECT_EQ(MustCompile("sssp").scatter.op, KernelOp::kXPlusW);
  EXPECT_EQ(MustCompile("cc").scatter.op, KernelOp::kX);
  const Kernel pagerank = MustCompile("pagerank");
  EXPECT_EQ(pagerank.scatter.op, KernelOp::kAXOverDeg);
  EXPECT_DOUBLE_EQ(pagerank.scatter.a, 0.85);
  EXPECT_TRUE(pagerank.scatter.uniform());
  const Kernel viterbi = MustCompile("viterbi");
  EXPECT_EQ(viterbi.scatter.op, KernelOp::kXTimesW);
  EXPECT_FALSE(viterbi.scatter.uniform());
}

TEST(KernelSpecialization, OpNamesAreDistinct) {
  EXPECT_STREQ(KernelOpName(KernelOp::kGeneric), "generic");
  EXPECT_STREQ(KernelOpName(KernelOp::kXPlusW), "x+w");
  EXPECT_STREQ(KernelOpName(KernelOp::kAXOverDeg), "(a*x)/deg");
}

// Bit-identical contract: on every catalog program whose edge function
// specializes, ApplyEdgeKernel must reproduce the stack VM exactly — same
// association, same rounding — across randomized inputs.
TEST(KernelSpecialization, SpecializedMatchesVmBitExactly) {
  Rng rng(0xF0F0);
  size_t specialized_programs = 0;
  for (const auto& entry : datalog::ProgramCatalog()) {
    auto kernel = BuildKernelFromSource(entry.source);
    if (!kernel.ok()) continue;  // mean programs etc.
    if (!kernel->scatter.specialized()) continue;
    ++specialized_programs;
    for (int trial = 0; trial < 2000; ++trial) {
      const double x = -5.0 + 10.0 * rng.NextDouble();
      const double w = 0.01 + rng.NextDouble();
      const double deg = static_cast<double>(1 + rng.NextBounded(16));
      const double vm = kernel->EvalEdge(x, w, deg);
      const double fused = ApplyEdgeKernel(kernel->scatter, x, w, deg);
      // EXPECT_EQ, not NEAR: the contract is bitwise equality.
      EXPECT_EQ(vm, fused) << entry.name << " x=" << x << " w=" << w
                           << " deg=" << deg;
    }
  }
  // The catalog must keep exercising the specializer (sssp, cc, pagerank,
  // viterbi, adsorption at minimum).
  EXPECT_GE(specialized_programs, 5u);
}

// ---------------------------------------------------------------------------
// Flat combining buffer.

void CheckAgainstReference(AggKind kind, uint64_t seed) {
  CombiningBuffer buffer(kind);
  std::unordered_map<VertexId, double> reference;
  Rng rng(seed);
  for (int round = 0; round < 5; ++round) {
    reference.clear();
    const int adds = 1000 + static_cast<int>(rng.NextBounded(2000));
    for (int i = 0; i < adds; ++i) {
      const VertexId key = static_cast<VertexId>(rng.NextBounded(300));
      const double value = -1.0 + 2.0 * rng.NextDouble();
      buffer.Add(key, value);
      auto [it, inserted] = reference.emplace(key, value);
      if (!inserted) {
        switch (kind) {
          case AggKind::kMin: it->second = std::min(it->second, value); break;
          case AggKind::kMax: it->second = std::max(it->second, value); break;
          case AggKind::kSum:
          case AggKind::kCount: it->second += value; break;
          case AggKind::kMean: break;
        }
      }
    }
    EXPECT_EQ(buffer.size(), reference.size());
    UpdateBatch batch = buffer.Drain();
    EXPECT_TRUE(buffer.empty());
    ASSERT_EQ(batch.size(), reference.size());
    for (const Update& u : batch) {
      auto it = reference.find(u.key);
      ASSERT_NE(it, reference.end()) << "unexpected key " << u.key;
      EXPECT_EQ(it->second, u.value) << "key " << u.key;
    }
  }
}

TEST(FlatCombiningBuffer, MatchesUnorderedMapReference) {
  CheckAgainstReference(AggKind::kMin, 11);
  CheckAgainstReference(AggKind::kMax, 22);
  CheckAgainstReference(AggKind::kSum, 33);
  CheckAgainstReference(AggKind::kCount, 44);
}

TEST(FlatCombiningBuffer, DrainsInFirstInsertionOrder) {
  CombiningBuffer buffer(AggKind::kSum);
  for (VertexId key : {5u, 3u, 5u, 9u, 3u, 1u}) buffer.Add(key, 1.0);
  const UpdateBatch batch = buffer.Drain();
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].key, 5u);
  EXPECT_EQ(batch[0].value, 2.0);
  EXPECT_EQ(batch[1].key, 3u);
  EXPECT_EQ(batch[1].value, 2.0);
  EXPECT_EQ(batch[2].key, 9u);
  EXPECT_EQ(batch[3].key, 1u);
}

TEST(FlatCombiningBuffer, CapacityIsRetainedAcrossDrains) {
  CombiningBuffer buffer(AggKind::kSum);
  UpdateBatch batch;
  auto fill = [&] {
    for (VertexId k = 0; k < 3000; ++k) buffer.Add(k * 13, 1.0);
  };
  fill();
  buffer.Drain(&batch);
  const size_t warm_capacity = buffer.capacity();
  EXPECT_GE(warm_capacity, 2 * 3000u);  // load factor <= 0.5
  for (int round = 0; round < 10; ++round) {
    fill();
    EXPECT_EQ(buffer.size(), 3000u);
    buffer.Drain(&batch);
    EXPECT_EQ(batch.size(), 3000u);
    EXPECT_EQ(buffer.capacity(), warm_capacity);
  }
  fill();
  buffer.Clear();
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.capacity(), warm_capacity);
  // The table really is empty after Clear, not just size-masked.
  buffer.Add(7, 4.0);
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.Drain()[0].value, 4.0);
}

TEST(FlatCombiningBuffer, GrowPreservesCombinedValues) {
  CombiningBuffer buffer(AggKind::kSum);
  // Interleave re-hits with fresh keys so growth happens mid-stream.
  for (VertexId k = 0; k < 5000; ++k) {
    buffer.Add(k, 1.0);
    buffer.Add(k / 2, 0.5);
  }
  const UpdateBatch batch = buffer.Drain();
  std::unordered_map<VertexId, double> got;
  for (const Update& u : batch) got[u.key] = u.value;
  ASSERT_EQ(got.size(), 5000u);
  // Key k receives 1.0 plus 0.5 for every j in [0,5000) with j/2 == k.
  for (VertexId k = 0; k < 5000; ++k) {
    double expected = 1.0;
    const VertexId j0 = 2 * k, j1 = 2 * k + 1;
    if (j0 < 5000) expected += 0.5;
    if (j1 < 5000) expected += 0.5;
    EXPECT_EQ(got[k], expected) << "key " << k;
  }
}

// ---------------------------------------------------------------------------
// Frontier on vs off: bit-exact across modes and aggregate kinds.
//
// The matrix uses programs with exact arithmetic only (min/max/count, and a
// dyadic-rational sum), because async-family sum programs with rounding are
// not bit-reproducible run-to-run in the first place — arrival order changes
// the rounding. For exact programs the frontier must change *nothing*.

constexpr const char* kDagSumSource = R"(
@name dagsum.
seed(X,v) :- X = 0, v = 1.
dagsum(Y,sum[v1]) :- seed(Y,v2), v1 = v2;
                  :- dagsum(X,v), edge(X,Y,w), v1 = v*w.
)";

/// DAG with power-of-two weights: every path mass is a dyadic rational, so
/// sums are exact in binary floating point and the fixpoint is reached
/// exactly (termination by zero pending mass, no epsilon involved).
Graph DyadicDag() {
  GraphBuilder b;
  const VertexId n = 48;
  b.EnsureVertices(n);
  Rng rng(0xDA6);
  for (VertexId v = 0; v + 1 < n; ++v) {
    b.AddEdge(v, v + 1, 0.5);
    for (VertexId step = 2; step <= 3; ++step) {
      if (v + step < n && rng.NextBounded(2) == 0) {
        b.AddEdge(v, v + step, 0.25);
      }
    }
  }
  GraphBuilder::Options opts;
  opts.dedup = true;
  return std::move(b).Build(opts).ValueOrDie();
}

struct ExactCase {
  const char* label;
  Kernel kernel;
  Graph graph;
};

std::vector<ExactCase> ExactPrograms() {
  std::vector<ExactCase> cases;
  cases.push_back({"sssp/min", MustCompile("sssp"), SmallWeightedGraph(17)});
  cases.push_back({"viterbi/max", MustCompile("viterbi"), SmallDag(19)});
  cases.push_back({"paths_dag/count", MustCompile("paths_dag"), SmallDag(23)});
  auto dagsum = BuildKernelFromSource(kDagSumSource);
  EXPECT_TRUE(dagsum.ok()) << dagsum.status().ToString();
  cases.push_back({"dagsum/sum", std::move(dagsum).ValueOrDie(), DyadicDag()});
  return cases;
}

TEST(FrontierEquivalence, OnVsOffIsBitExactInEveryMode) {
  for (ExactCase& c : ExactPrograms()) {
    for (ExecMode mode : {ExecMode::kSync, ExecMode::kAsync, ExecMode::kAap,
                          ExecMode::kSyncAsync, ExecMode::kStaleSync}) {
      EngineOptions options;
      options.mode = mode;
      options.num_workers = 3;
      options.network.instant = true;
      options.max_wall_seconds = 30.0;
      options.frontier = true;
      auto on = Engine(c.graph, c.kernel, options).Run();
      options.frontier = false;  // the escape hatch
      auto off = Engine(c.graph, c.kernel, options).Run();
      ASSERT_TRUE(on.ok()) << c.label << ": " << on.status().ToString();
      ASSERT_TRUE(off.ok()) << c.label << ": " << off.status().ToString();
      EXPECT_TRUE(on->stats.converged) << c.label << " " << ExecModeName(mode);
      EXPECT_TRUE(off->stats.converged) << c.label << " " << ExecModeName(mode);
      // operator== on the vectors: element-wise bitwise-equal doubles.
      EXPECT_EQ(on->values, off->values)
          << c.label << " diverged under " << ExecModeName(mode);
      // The frontier runs actually used the bitmap sweeps...
      int64_t sweeps = on->stats.dense_sweeps + on->stats.sparse_sweeps;
      EXPECT_GT(sweeps, 0) << c.label << " " << ExecModeName(mode);
      // ...and the escape hatch really disabled them.
      EXPECT_EQ(off->stats.dense_sweeps + off->stats.sparse_sweeps, 0)
          << c.label << " " << ExecModeName(mode);
    }
  }
}

TEST(FrontierEquivalence, SparseSweepsEngageNearConvergence) {
  // Single async worker on a path-heavy graph: after the initial wave the
  // active fraction collapses below 1/16, so the worker must switch to
  // sparse word-scan sweeps before the termination controller fires.
  Kernel k = MustCompile("sssp");
  Graph g = GenerateGrid(16, /*weighted=*/true, 5);
  EngineOptions options;
  options.mode = ExecMode::kAsync;
  options.num_workers = 1;
  options.network.instant = true;
  options.max_wall_seconds = 30.0;
  auto run = Engine(g, k, options).Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->stats.converged);
  EXPECT_GT(run->stats.sparse_sweeps, 0) << run->stats.Summary();
  EXPECT_GT(run->stats.frontier_skipped, 0);
}

TEST(FrontierEquivalence, StatsSeparateSpecializedFromVmEdges) {
  Kernel k = MustCompile("sssp");  // kXPlusW: fully specialized
  Graph g = SmallWeightedGraph(29);
  EngineOptions options;
  options.num_workers = 2;
  options.network.instant = true;
  options.max_wall_seconds = 30.0;
  auto run = Engine(g, k, options).Run();
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->stats.specialized_edges, 0);
  EXPECT_EQ(run->stats.vm_edges, 0);
  EXPECT_EQ(run->stats.specialized_edges, run->stats.edge_applications);
}

TEST(FrontierEquivalence, MetricsExportIncludesComputePlane) {
  Kernel k = MustCompile("sssp");
  Graph g = SmallWeightedGraph(31);
  EngineOptions options;
  options.num_workers = 2;
  options.network.instant = true;
  options.max_wall_seconds = 30.0;
  options.collect_metrics = true;
  auto run = Engine(g, k, options).Run();
  ASSERT_TRUE(run.ok());
  auto has_counter = [&](const std::string& name) {
    for (const auto& [n, v] : run->metrics.counters) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_counter("engine.dense_sweeps"));
  EXPECT_TRUE(has_counter("engine.sparse_sweeps"));
  EXPECT_TRUE(has_counter("engine.frontier_skipped"));
  EXPECT_TRUE(has_counter("engine.specialized_edges"));
  EXPECT_TRUE(has_counter("engine.vm_edges"));
  EXPECT_TRUE(has_counter("worker.0.frontier_skipped"));
  bool has_occupancy = false;
  for (const auto& [n, v] : run->metrics.gauges) {
    if (n == "frontier.occupancy") has_occupancy = true;
  }
  EXPECT_TRUE(has_occupancy);
}

// ---------------------------------------------------------------------------
// Chaos determinism with the frontier enabled (recovery paths re-mark
// restored rows through SetRow/Restore, so healed runs must stay exact).

TEST(FrontierChaos, CrashRecoveryStaysDeterministicAndExact) {
  Kernel k = MustCompile("sssp");
  Graph g = SmallWeightedGraph(61);
  for (ExecMode mode : {ExecMode::kSync, ExecMode::kAsync, ExecMode::kAap,
                        ExecMode::kSyncAsync, ExecMode::kStaleSync}) {
    EngineOptions base;
    base.mode = mode;
    base.num_workers = 3;
    base.network.instant = true;
    base.barrier_overhead_us = 0;
    base.term_check_interval_us = 50000;
    auto clean = Engine(g, k, base).Run();
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();

    EngineOptions chaos = base;
    chaos.fault.crash_worker = 1;
    chaos.fault.crash_at_beats = mode == ExecMode::kSync ? 2 : 20;
    chaos.fault.seed = 0xF40;
    auto r1 = Engine(g, k, chaos).Run();
    auto r2 = Engine(g, k, chaos).Run();
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    EXPECT_EQ(r1->stats.faults.crashes, 1) << ExecModeName(mode);
    EXPECT_GE(r1->stats.recoveries, 1) << ExecModeName(mode);
    // Same seed: bit-identical healed results. And min-exactness: the healed
    // fixpoint is the clean fixpoint, frontier or not.
    EXPECT_EQ(r1->values, r2->values) << ExecModeName(mode);
    EXPECT_EQ(r1->values, clean->values) << ExecModeName(mode);

    chaos.frontier = false;
    auto off = Engine(g, k, chaos).Run();
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    EXPECT_EQ(off->values, clean->values) << ExecModeName(mode);
  }
}

// ---------------------------------------------------------------------------
// Graph::Reverse thread safety.

TEST(GraphReverse, ConcurrentFirstCallIsSafe) {
  for (int round = 0; round < 8; ++round) {
    Graph g = SmallWeightedGraph(100 + round);
    constexpr int kThreads = 8;
    std::vector<const Graph*> results(kThreads, nullptr);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] { results[t] = &g.Reverse(); });
    }
    for (auto& thread : threads) thread.join();
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(results[t], results[0]);
    EXPECT_EQ(g.Reverse().num_edges(), g.num_edges());
    EXPECT_TRUE(g.HasReverse());
  }
}

TEST(GraphReverse, CopiesAndReassignmentRebuildSafely) {
  Graph g = SmallDag(5);
  const Graph* r1 = &g.Reverse();
  Graph copy = g;  // shares the built transpose, gets a fresh once-flag
  EXPECT_EQ(&copy.Reverse(), r1);

  Graph fresh = SmallDag(6);
  g = fresh;  // overwrites a graph whose flag was already consumed
  EXPECT_FALSE(g.HasReverse());
  EXPECT_EQ(g.Reverse().num_edges(), fresh.num_edges());

  Graph moved = std::move(copy);
  EXPECT_EQ(&moved.Reverse(), r1);
}

}  // namespace
}  // namespace powerlog::runtime
