#include <gtest/gtest.h>

#include "datalog/lexer.h"

namespace powerlog::datalog {
namespace {

std::vector<TokenKind> Kinds(const std::string& src) {
  auto toks = Tokenize(src);
  EXPECT_TRUE(toks.ok()) << toks.status().ToString();
  std::vector<TokenKind> out;
  for (const auto& t : *toks) out.push_back(t.kind);
  return out;
}

TEST(Lexer, RuleTokens) {
  auto kinds = Kinds("sssp(X,d) :- X=1,d=0.");
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdent, TokenKind::kLParen, TokenKind::kIdent,
                TokenKind::kComma, TokenKind::kIdent, TokenKind::kRParen,
                TokenKind::kImplies, TokenKind::kIdent, TokenKind::kEquals,
                TokenKind::kNumber, TokenKind::kComma, TokenKind::kIdent,
                TokenKind::kEquals, TokenKind::kNumber, TokenKind::kDot,
                TokenKind::kEof}));
}

TEST(Lexer, Numbers) {
  auto toks = Tokenize("0.85 1e-3 10000 0.0001");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "0.85");
  EXPECT_EQ((*toks)[1].text, "1e-3");
  EXPECT_EQ((*toks)[2].text, "10000");
  EXPECT_EQ((*toks)[3].text, "0.0001");
}

TEST(Lexer, MiddleDotIsMultiplication) {
  auto toks = Tokenize("0.85 · rx");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].kind, TokenKind::kStar);
}

TEST(Lexer, GreekDeltaInIdentifiers) {
  auto toks = Tokenize("{sum[Δa] < 0.001}");
  ASSERT_TRUE(toks.ok());
  // tokens: { sum [ Δa ] < 0.001 }
  EXPECT_EQ((*toks)[3].kind, TokenKind::kIdent);
  EXPECT_EQ((*toks)[3].text, "Δa");
}

TEST(Lexer, Comments) {
  auto toks = Tokenize("a // comment here\n% also comment\nb");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);  // a, b, EOF
  EXPECT_EQ((*toks)[0].text, "a");
  EXPECT_EQ((*toks)[1].text, "b");
}

TEST(Lexer, ComparisonOperators) {
  auto kinds = Kinds("< <= > >=");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kLess, TokenKind::kLessEq,
                                           TokenKind::kGreater,
                                           TokenKind::kGreaterEq, TokenKind::kEof}));
}

TEST(Lexer, UnderscoreIsWildcard) {
  auto toks = Tokenize("edge(X,_)");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[4].kind, TokenKind::kUnderscore);
}

TEST(Lexer, UnderscorePrefixedIdentIsIdent) {
  auto toks = Tokenize("_x1");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*toks)[0].text, "_x1");
}

TEST(Lexer, LineColumnTracking) {
  auto toks = Tokenize("a\n  b");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[1].line, 2);
  EXPECT_EQ((*toks)[1].column, 3);
}

TEST(Lexer, RejectsLoneColon) {
  auto r = Tokenize("a : b");
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(Lexer, RejectsUnknownPunct) {
  EXPECT_TRUE(Tokenize("a ? b").status().IsParseError());
}

TEST(Lexer, AnnotationTokens) {
  auto kinds = Kinds("@assume d > 0.");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kAt, TokenKind::kIdent,
                                           TokenKind::kIdent, TokenKind::kGreater,
                                           TokenKind::kNumber, TokenKind::kDot,
                                           TokenKind::kEof}));
}

TEST(Lexer, EmptyInputJustEof) {
  auto toks = Tokenize("");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 1u);
  EXPECT_EQ((*toks)[0].kind, TokenKind::kEof);
}

}  // namespace
}  // namespace powerlog::datalog
