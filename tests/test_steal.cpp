// Engine-level SIMD + work-stealing tests (ISSUE 9): vector-vs-scalar
// bit-equality of full engine runs across every execution mode (crossed with
// the frontier escape hatch), dispatch/counter surfacing, and intra-shard
// work-stealing determinism under deliberate 2-fast/1-slow skew.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/kernel.h"
#include "core/kernel_simd.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "runtime/engine.h"
#include "test_util.h"

namespace powerlog::runtime {
namespace {

using powerlog::testing::MustCompile;

// Exact programs only (min/max/count, plus a dyadic sum): their fixpoints
// are bit-reproducible regardless of arrival order, so any vector-vs-scalar
// or steal-vs-no-steal difference is a real defect, not rounding noise.
// Degrees are kept >= 10 so spans clear the worker's kSimdMinSpan and the
// vector path actually executes (SmallWeightedGraph's degree 1-4 would
// silently fall back to the scalar loops).

constexpr const char* kDagSumSource = R"(
@name dagsum.
seed(X,v) :- X = 0, v = 1.
dagsum(Y,sum[v1]) :- seed(Y,v2), v1 = v2;
                  :- dagsum(X,v), edge(X,Y,w), v1 = v*w.
)";

/// Weighted digraph with out-degree 10..13 (weights in (0, 0.5]).
Graph DenseWeightedGraph(uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b;
  const VertexId n = 60;
  b.EnsureVertices(n);
  for (VertexId v = 0; v < n; ++v) {
    const int degree = 10 + static_cast<int>(rng.NextBounded(4));
    for (int k = 0; k < degree; ++k) {
      VertexId d = static_cast<VertexId>(rng.NextBounded(n));
      if (d == v) d = (d + 1) % n;
      b.AddEdge(v, d, 0.05 + 0.45 * rng.NextDouble());
    }
  }
  GraphBuilder::Options opts;
  opts.dedup = true;
  return std::move(b).Build(opts).ValueOrDie();
}

/// Dense DAG where the edge v -> v+step carries weight 2^-step, so every
/// path into vertex v has mass exactly 2^-v and any partial sum at v is an
/// integer multiple of 2^-v. With n = 48 the path counts stay below 2^53,
/// so every partial sum is exactly representable and the dagsum fixpoint is
/// bit-identical in ANY combine order — while degree 10 keeps spans over
/// the worker's vector threshold so the kXTimesW span path engages.
Graph DenseDyadicDag() {
  GraphBuilder b;
  const VertexId n = 48;
  b.EnsureVertices(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId step = 1; step <= 10; ++step) {
      if (v + step < n) b.AddEdge(v, v + step, std::ldexp(1.0, -int(step)));
    }
  }
  GraphBuilder::Options opts;
  opts.dedup = true;
  return std::move(b).Build(opts).ValueOrDie();
}

struct ExactCase {
  const char* label;
  Kernel kernel;
  Graph graph;
};

std::vector<ExactCase> ExactPrograms() {
  std::vector<ExactCase> cases;
  cases.push_back({"sssp/min", MustCompile("sssp"), DenseWeightedGraph(17)});
  cases.push_back({"viterbi/max", MustCompile("viterbi"), DenseDyadicDag()});
  auto dagsum = BuildKernelFromSource(kDagSumSource);
  EXPECT_TRUE(dagsum.ok()) << dagsum.status().ToString();
  cases.push_back({"dagsum/sum", std::move(dagsum).ValueOrDie(),
                   DenseDyadicDag()});
  return cases;
}

const ExecMode kAllModes[] = {ExecMode::kSync, ExecMode::kAsync,
                              ExecMode::kAap, ExecMode::kSyncAsync,
                              ExecMode::kStaleSync};

// ---------------------------------------------------------------------------
// SIMD engine parity.

TEST(SimdEngineParity, OnVsOffBitExactInEveryModeAndFrontierCombo) {
  for (ExactCase& c : ExactPrograms()) {
    for (ExecMode mode : kAllModes) {
      for (bool frontier : {true, false}) {
        EngineOptions options;
        options.mode = mode;
        options.num_workers = 3;
        options.network.instant = true;
        options.max_wall_seconds = 30.0;
        options.frontier = frontier;
        options.simd = true;
        auto vec = Engine(c.graph, c.kernel, options).Run();
        options.simd = false;  // the --no-simd escape hatch
        auto scal = Engine(c.graph, c.kernel, options).Run();
        ASSERT_TRUE(vec.ok()) << c.label << ": " << vec.status().ToString();
        ASSERT_TRUE(scal.ok()) << c.label << ": " << scal.status().ToString();
        EXPECT_TRUE(vec->stats.converged) << c.label << " " << ExecModeName(mode);
        EXPECT_TRUE(scal->stats.converged) << c.label << " " << ExecModeName(mode);
        // operator== on the vectors: element-wise bitwise-equal doubles.
        EXPECT_EQ(vec->values, scal->values)
            << c.label << " diverged under " << ExecModeName(mode)
            << " frontier=" << frontier;
        EXPECT_EQ(scal->stats.simd_dispatch, "off");
        EXPECT_EQ(scal->stats.vector_edges, 0) << c.label;
        // The weighted specialized shapes really took the span path (their
        // spans clear kSimdMinSpan on these dense graphs).
        EXPECT_GT(vec->stats.vector_edges, 0)
            << c.label << " " << ExecModeName(mode);
      }
    }
  }
}

TEST(SimdEngineParity, DispatchLevelAndCountersSurfaceInMetrics) {
  Kernel k = MustCompile("sssp");
  Graph g = DenseWeightedGraph(23);
  EngineOptions options;
  options.num_workers = 2;
  options.network.instant = true;
  options.collect_metrics = true;
  auto run = Engine(g, k, options).Run();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->stats.simd_dispatch, simd::LevelName(simd::ActiveLevel()));
  auto counter = [&](const std::string& name) -> int64_t {
    for (const auto& [n, v] : run->metrics.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return -1;
  };
  EXPECT_EQ(counter("simd.vector_edges"), run->stats.vector_edges);
  EXPECT_EQ(counter("simd.scalar_edges"), run->stats.scalar_edges);
  EXPECT_EQ(counter("steal.attempts"), run->stats.steal_attempts);
  EXPECT_EQ(counter("steal.words"), run->stats.steal_words);
  // Short spans (< kSimdMinSpan) and the VM fallback are the only scalar
  // residue; on this degree-10+ graph the span path carries the bulk.
  EXPECT_GT(run->stats.vector_edges, run->stats.scalar_edges);
}

// ---------------------------------------------------------------------------
// Work stealing.

/// All reachable work lives in worker 0's range-partition shard; workers 1
/// and 2 own only isolated vertices, so every harvest they make must have
/// come through the steal plane. The reachable part is 8 layers of 16
/// vertices with complete bipartite edges between consecutive layers,
/// arranged to defeat two single-host accidents:
///
///  - Sweeps visit bitmap words in ascending order, so edges pointing at
///    *higher* ids cascade inside one sweep (a destination marked dirty is
///    reached later in the same scan) and the whole graph would collapse
///    into one dense sweep. The seed therefore feeds the TOP word and each
///    layer feeds the word BELOW it: layer j lives in word 7-j, and a
///    sweep can never advance the wave by more than one layer.
///  - 16-17 active of 512 owned keeps every sweep under kSparseThreshold,
///    so the owner publishes its shard, and with per-edge compute
///    inflation each layer sweep grinds ~128ms in a low-indexed word while
///    the words above it stay unclaimed — a steal window wide enough to
///    survive single-CPU scheduling, where a thief only observes the
///    victim mid-sweep across a preemption.
Graph SkewLayers(VertexId n_total) {
  GraphBuilder b;
  b.EnsureVertices(n_total);
  auto base = [](int layer) { return static_cast<VertexId>((7 - layer) * 64); };
  for (VertexId d = 0; d < 16; ++d) {
    b.AddEdge(0, base(0) + d, 1.0 + 0.25 * (d % 5));
  }
  for (int layer = 0; layer + 1 < 8; ++layer) {
    for (VertexId s = 0; s < 16; ++s) {
      for (VertexId d = 0; d < 16; ++d) {
        const double w = 1.0 + 0.25 * ((s * 7 + d) % 5);
        b.AddEdge(base(layer) + s, base(layer + 1) + d, w);
      }
    }
  }
  return std::move(b).Build(GraphBuilder::Options{}).ValueOrDie();
}

EngineOptions SkewOptions(ExecMode mode, bool steal) {
  EngineOptions options;
  options.mode = mode;
  options.num_workers = 3;
  options.partition = Partitioner::Kind::kRange;
  options.network.instant = true;
  options.max_wall_seconds = 60.0;
  options.steal = steal;
  // 0.5ms per edge application -> 8ms per vertex, ~128ms per 16-vertex
  // layer sweep: the owner is the deliberate straggler.
  options.compute_inflation_ns_per_edge = 500000.0;
  return options;
}

TEST(StealDeterminism, TwoFastOneSlowBitExactAcrossModes) {
  Kernel k = MustCompile("sssp");
  // 1536 vertices / 3 range shards: worker 0 owns [0, 512) = 8 frontier
  // words; the descending wave grinds words 7, 6, ..., 0 one superstep at
  // a time, so from word 5 down at least two words stay claimable.
  Graph g = SkewLayers(1536);
  // The single-threaded no-steal sync run is the ground truth.
  EngineOptions ref_options = SkewOptions(ExecMode::kSync, /*steal=*/false);
  ref_options.num_workers = 1;
  ref_options.compute_inflation_ns_per_edge = 0.0;
  auto ref = Engine(g, k, ref_options).Run();
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (ExecMode mode :
       {ExecMode::kSync, ExecMode::kSyncAsync, ExecMode::kStaleSync}) {
    auto stolen = Engine(g, k, SkewOptions(mode, /*steal=*/true)).Run();
    auto honest = Engine(g, k, SkewOptions(mode, /*steal=*/false)).Run();
    ASSERT_TRUE(stolen.ok()) << stolen.status().ToString();
    ASSERT_TRUE(honest.ok()) << honest.status().ToString();
    EXPECT_TRUE(stolen->stats.converged) << ExecModeName(mode);
    // Min aggregation is order-independent, so stealing must change
    // nothing — bit-exact against both the no-steal run and the
    // single-threaded reference.
    EXPECT_EQ(stolen->values, honest->values) << ExecModeName(mode);
    EXPECT_EQ(stolen->values, ref->values) << ExecModeName(mode);
    EXPECT_EQ(honest->stats.steal_attempts, 0) << ExecModeName(mode);
    EXPECT_EQ(honest->stats.steal_words, 0) << ExecModeName(mode);
    // The skew is extreme and sustained (each layer superstep grinds for
    // ~128ms with idle peers), so the fast workers must actually have
    // stolen at least once.
    EXPECT_GT(stolen->stats.steal_words, 0) << ExecModeName(mode);
    EXPECT_GE(stolen->stats.steal_words, stolen->stats.steal_attempts)
        << ExecModeName(mode);
  }
}

TEST(StealDeterminism, StealOffAndSingleWorkerNeverSteal) {
  Kernel k = MustCompile("sssp");
  Graph g = SkewLayers(256);
  for (uint32_t workers : {1u, 3u}) {
    EngineOptions options;
    options.num_workers = workers;
    options.network.instant = true;
    options.steal = workers == 1;  // single worker: plane never allocated
    auto run = Engine(g, k, options).Run();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->stats.steal_attempts, 0);
    EXPECT_EQ(run->stats.steal_words, 0);
  }
}

TEST(StealDeterminism, PinnedRunMatchesUnpinned) {
  // Pinning is advisory placement only — it must never change results.
  // (On this container it degenerates to sched_setaffinity on one CPU and
  // hugepage advice; the test asserts the degradation is value-silent.)
  Kernel k = MustCompile("sssp");
  Graph g = DenseWeightedGraph(31);
  EngineOptions options;
  options.num_workers = 3;
  options.network.instant = true;
  options.pin = true;
  auto pinned = Engine(g, k, options).Run();
  options.pin = false;
  auto unpinned = Engine(g, k, options).Run();
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  ASSERT_TRUE(unpinned.ok()) << unpinned.status().ToString();
  EXPECT_EQ(pinned->values, unpinned->values);
}

}  // namespace
}  // namespace powerlog::runtime
