// Domain scenario: ranking a web-graph analogue with the original
// (non-monotonic!) PageRank program — the paper's flagship example of a
// program existing systems relegate to naive evaluation but PowerLog's
// checker proves convertible, then executes incrementally.
//
// Also demonstrates the execution-mode override to compare sync vs async vs
// the unified engine on the same query.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "datalog/catalog.h"
#include "graph/generators.h"
#include "powerlog/powerlog.h"

using namespace powerlog;

int main() {
  RmatParams params;
  params.scale = 13;
  params.edge_factor = 10;
  params.a = 0.65;  // hub-dominated, web-like
  params.b = params.c = 0.14;
  params.d = 0.07;
  auto graph = GenerateRmat(params).ValueOrDie();
  std::printf("web graph: %s\n\n", graph.Summary().c_str());

  const auto entry = datalog::GetCatalogEntry("pagerank");

  // First: what does the checker say about the original PageRank?
  auto check = PowerLog::Check(entry->source);
  if (!check.ok()) {
    std::fprintf(stderr, "check failed: %s\n", check.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", check->report.c_str());

  // Then run it under each execution mode.
  std::vector<double> reference;
  for (auto mode : {runtime::ExecMode::kSync, runtime::ExecMode::kAsync,
                    runtime::ExecMode::kSyncAsync}) {
    RunOptions options;
    options.engine.num_workers = 4;
    options.engine.mode = mode;
    options.engine.epsilon_override = 1e-6;
    auto run = PowerLog::Run(entry->source, graph, options);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", runtime::ExecModeName(mode),
                   run.status().ToString().c_str());
      return 1;
    }
    if (reference.empty()) reference = run->values;
    double max_diff = 0;
    for (size_t i = 0; i < reference.size(); ++i) {
      max_diff = std::max(max_diff, std::abs(reference[i] - run->values[i]));
    }
    std::printf("%-11s %s   (max diff vs sync: %.2e)\n",
                runtime::ExecModeName(mode), run->stats.Summary().c_str(),
                max_diff);
  }

  // Report the top pages under the unified engine.
  RunOptions options;
  options.engine.num_workers = 4;
  auto run = PowerLog::Run(entry->source, graph, options);
  if (!run.ok()) return 1;
  std::vector<std::pair<double, VertexId>> ranked;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ranked.emplace_back(run->values[v], v);
  }
  std::partial_sort(ranked.begin(), ranked.begin() + 10, ranked.end(),
                    std::greater<>());
  std::printf("\ntop-10 pages by rank:\n");
  for (int i = 0; i < 10; ++i) {
    std::printf("  page %-8u rank %.3f\n", ranked[i].second, ranked[i].first);
  }
  return 0;
}
