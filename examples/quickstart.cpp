// Quickstart: write a recursive aggregate Datalog program, let PowerLog
// check it, and run it on a graph — the full Fig. 2 pipeline in ~40 lines.
//
//   ./examples/quickstart [edge_list_file]
//
// Without an argument a small weighted R-MAT graph is generated.
#include <cstdio>

#include "graph/generators.h"
#include "graph/io.h"
#include "powerlog/powerlog.h"

using namespace powerlog;

int main(int argc, char** argv) {
  // 1. A Datalog program: single-source shortest paths (paper's Program 1).
  const std::string program = R"(
    @name sssp.
    @source 0.
    sssp(X,d) :- X = 0, d = 0.
    sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.
  )";

  // 2. A graph: from file, or generated.
  Graph graph;
  if (argc > 1) {
    auto loaded = LoadEdgeList(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).ValueOrDie();
  } else {
    RmatParams params;
    params.scale = 12;
    params.edge_factor = 8;
    params.weighted = true;
    graph = GenerateRmat(params).ValueOrDie();
  }
  std::printf("graph: %s\n", graph.Summary().c_str());

  // 3. Run: parse -> automatic MRA condition check -> MRA evaluation on the
  //    unified sync-async engine (or naive fallback if the check fails).
  RunOptions options;
  options.engine.num_workers = 4;
  auto run = PowerLog::Run(program, graph, options);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }

  std::printf("condition check: %s\n",
              run->check.satisfied ? "MRA conditions satisfied" : "not satisfied");
  std::printf("evaluation: %s on %s engine\n", run->evaluation.c_str(),
              run->execution.c_str());
  std::printf("stats: %s\n", run->stats.Summary().c_str());

  // 4. Results: shortest distances from vertex 0.
  int reached = 0;
  for (double v : run->values) {
    if (v < std::numeric_limits<double>::infinity()) ++reached;
  }
  std::printf("reached %d of %u vertices; first ten distances:\n", reached,
              graph.num_vertices());
  for (VertexId v = 0; v < 10 && v < graph.num_vertices(); ++v) {
    std::printf("  sssp(%u) = %g\n", v, run->values[v]);
  }
  return 0;
}
