// powerlog_cli — run any catalog program or .dl file against a registry
// dataset or an edge-list file, under any execution mode.
//
//   powerlog_cli --program sssp --dataset livej
//   powerlog_cli --program my_query.dl --graph edges.txt --mode sync
//   powerlog_cli --list
//
// Flags:
//   --program <name|file>   catalog program name or Datalog source file
//   --dataset <name>        Table-2 registry dataset (see --list)
//   --graph <file>          edge-list file ("src dst [weight]" per line)
//   --mode <m>              sync | async | aap | sync-async (default) |
//                           stale-sync (alias: stalesync)
//   --staleness <s|auto>    stale-sync only: max supersteps a worker may run
//                           ahead of the slowest (default 4); "auto" lets the
//                           termination controller tune the bound online
//   --workers <n>           worker threads (default 4)
//   --source <v>            source vertex override (single-source programs)
//   --epsilon <e>           termination epsilon override
//   --top <k>               print the k best keys (default 10)
//   --check-only            run the condition checker and exit
//   --metrics-json <path>   collect engine metrics and write them as JSON
//                           (per-worker counters, latency/flush histograms,
//                           β trajectories; see DESIGN.md "Observability")
//   --fault-plan <spec>     chaos injection, e.g. "crash=1@200,drop=0.02,
//                           maxbus=50,seed=7" (see DESIGN.md "Fault
//                           tolerance" for the grammar)
//   --checkpoint <base>     checkpoint store base path (<base>.0/.1 +
//                           <base>.manifest)
//   --checkpoint-us <n>     async-family snapshot interval in microseconds
//                           (sync mode snapshots every 16 supersteps)
//   --heartbeat-us <n>      hang-detection timeout: a worker whose beat is
//                           this stale (and not legitimately waiting) is
//                           fenced and recovered; 0 (default) disables
//   --trace-out <path>      record per-thread event rings and write the run
//                           as Chrome trace-event JSON (open in Perfetto or
//                           chrome://tracing)
//   --serve-metrics <port>  embedded HTTP exposition server on
//                           127.0.0.1:<port> for the duration of the run:
//                           /metrics (Prometheus text), /metrics.json,
//                           /healthz, /trace
//
// Both "--flag value" and "--flag=value" spellings are accepted.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "datalog/catalog.h"
#include "graph/datasets.h"
#include "graph/io.h"
#include "powerlog/powerlog.h"
#include "runtime/exposition.h"

using namespace powerlog;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --program <name|file> (--dataset <name> | --graph "
               "<file>) [--mode m] [--staleness s|auto] [--workers n] "
               "[--source v] [--epsilon e] "
               "[--top k] [--check-only] [--metrics-json path] "
               "[--fault-plan spec] [--checkpoint base] [--checkpoint-us n] "
               "[--heartbeat-us n] [--no-frontier] [--no-simd] [--no-steal] "
               "[--pin|--no-pin] [--trace-out path] "
               "[--serve-metrics port] | --list\n",
               argv0);
  return 2;
}

Result<std::string> LoadProgram(const std::string& spec) {
  auto entry = datalog::GetCatalogEntry(spec);
  if (entry.ok()) return entry->source;
  std::ifstream in(spec);
  if (!in) {
    return Status::NotFound("'" + spec +
                            "' is neither a catalog program nor a readable file");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// Strict numeric flag parsing: "--workers 4x" or "--epsilon 1e-" is a usage
// error, not a silently truncated value.
bool ParseIntFlag(const char* flag, const char* value, int64_t* out) {
  auto parsed = ParseInt64(value);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: expected an integer, got '%s'\n", flag, value);
    return false;
  }
  *out = *parsed;
  return true;
}

bool ParseDoubleFlag(const char* flag, const char* value, double* out) {
  auto parsed = ParseDouble(value);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: expected a number, got '%s'\n", flag, value);
    return false;
  }
  *out = *parsed;
  return true;
}

// Writes `body` to `path`, diagnosing both open failures and write failures
// (ENOSPC, /dev/full, a path on a read-only mount that opens via O_TRUNC...).
// An artifact the user asked for that was not actually written is a failed
// run and must exit nonzero.
bool WriteArtifact(const char* what, const std::string& path,
                   const std::string& body) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s output '%s' for writing\n", what,
                 path.c_str());
    return false;
  }
  out << body << '\n';
  out.flush();
  if (!out) {
    std::fprintf(stderr, "write to %s output '%s' failed\n", what,
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string program_spec, dataset, graph_file, mode_name = "sync-async";
  std::string metrics_path, trace_path;
  int serve_port = -1;
  RunOptions options;
  int top = 10;
  bool check_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept "--flag=value" alongside "--flag value".
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      std::printf("catalog programs:\n");
      for (const auto& entry : datalog::ProgramCatalog()) {
        std::printf("  %-14s %s (%s, MRA sat.: %s)\n", entry.name.c_str(),
                    entry.display_name.c_str(),
                    datalog::AggKindName(entry.aggregate),
                    entry.expected_mra_sat ? "yes" : "no");
      }
      std::printf("datasets:\n");
      for (const auto& name : DatasetNames()) {
        auto info = GetDatasetInfo(name);
        std::printf("  %-14s analogue of %s\n", name.c_str(),
                    info->paper_name.c_str());
      }
      return 0;
    }
    const char* value = nullptr;
    int64_t int_value = 0;
    double double_value = 0.0;
    if (arg == "--program" && (value = next())) {
      program_spec = value;
    } else if (arg == "--dataset" && (value = next())) {
      dataset = value;
    } else if (arg == "--graph" && (value = next())) {
      graph_file = value;
    } else if (arg == "--mode" && (value = next())) {
      mode_name = value;
    } else if (arg == "--staleness" && (value = next())) {
      if (std::strcmp(value, "auto") == 0) {
        options.engine.staleness_auto = true;
      } else {
        if (!ParseIntFlag("--staleness", value, &int_value)) return 2;
        options.engine.staleness = int_value;
      }
    } else if (arg == "--workers" && (value = next())) {
      if (!ParseIntFlag("--workers", value, &int_value)) return 2;
      options.engine.num_workers = static_cast<uint32_t>(int_value);
    } else if (arg == "--source" && (value = next())) {
      if (!ParseIntFlag("--source", value, &int_value)) return 2;
      options.source = static_cast<uint32_t>(int_value);
    } else if (arg == "--epsilon" && (value = next())) {
      if (!ParseDoubleFlag("--epsilon", value, &double_value)) return 2;
      options.engine.epsilon_override = double_value;
    } else if (arg == "--top" && (value = next())) {
      if (!ParseIntFlag("--top", value, &int_value)) return 2;
      top = static_cast<int>(int_value);
    } else if (arg == "--check-only") {
      check_only = true;
    } else if (arg == "--metrics-json" && (value = next())) {
      metrics_path = value;
      options.engine.collect_metrics = true;
    } else if (arg == "--fault-plan" && (value = next())) {
      auto plan = runtime::ParseFaultPlan(value);
      if (!plan.ok()) {
        std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
        return 2;
      }
      options.engine.fault = *plan;
    } else if (arg == "--checkpoint" && (value = next())) {
      options.engine.checkpoint_path = value;
      if (options.engine.checkpoint_every == 0) {
        options.engine.checkpoint_every = 16;  // sync-mode superstep cadence
      }
      if (options.engine.checkpoint_interval_us == 0) {
        options.engine.checkpoint_interval_us = 100000;
      }
    } else if (arg == "--checkpoint-us" && (value = next())) {
      if (!ParseIntFlag("--checkpoint-us", value, &int_value)) return 2;
      options.engine.checkpoint_interval_us = int_value;
    } else if (arg == "--heartbeat-us" && (value = next())) {
      if (!ParseIntFlag("--heartbeat-us", value, &int_value)) return 2;
      options.engine.heartbeat_timeout_us = int_value;
    } else if (arg == "--no-frontier") {
      // Escape hatch: full-scan sweeps instead of the active-set bitmap.
      options.engine.frontier = false;
    } else if (arg == "--no-simd") {
      // Escape hatch: scalar fused edge loops instead of the vector span
      // kernels (results are bit-identical; this exists for debugging and
      // A/B timing).
      options.engine.simd = false;
    } else if (arg == "--pin") {
      options.engine.pin = true;
    } else if (arg == "--no-pin") {
      options.engine.pin = false;
    } else if (arg == "--no-steal") {
      options.engine.steal = false;
    } else if (arg == "--trace-out" && (value = next())) {
      trace_path = value;
      options.engine.trace = true;
      // A traced run also records the convergence timeline, so --metrics-json
      // carries the timeline.* series alongside the counter tracks in the
      // trace itself.
      options.engine.record_trace = true;
    } else if (arg == "--serve-metrics" && (value = next())) {
      if (!ParseIntFlag("--serve-metrics", value, &int_value)) return 2;
      serve_port = static_cast<int>(int_value);
    } else {
      return Usage(argv[0]);
    }
  }
  if (program_spec.empty()) return Usage(argv[0]);

  auto program = LoadProgram(program_spec);
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }

  if (check_only) {
    auto check = PowerLog::Check(*program);
    if (!check.ok()) {
      std::fprintf(stderr, "%s\n", check.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", check->report.c_str());
    return check->satisfied ? 0 : 3;
  }

  if (dataset.empty() == graph_file.empty()) return Usage(argv[0]);
  const Graph* graph = nullptr;
  Graph loaded;
  if (!dataset.empty()) {
    auto entry = datalog::GetCatalogEntry(program_spec);
    const bool stochastic = entry.ok() && entry->stochastic_weights;
    auto g = GetDataset(dataset, stochastic);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    graph = *g;
  } else {
    auto g = LoadEdgeList(graph_file);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    loaded = std::move(g).ValueOrDie();
    graph = &loaded;
  }
  std::printf("graph: %s\n", graph->Summary().c_str());

  if (mode_name == "sync") {
    options.engine.mode = runtime::ExecMode::kSync;
  } else if (mode_name == "async") {
    options.engine.mode = runtime::ExecMode::kAsync;
  } else if (mode_name == "aap") {
    options.engine.mode = runtime::ExecMode::kAap;
  } else if (mode_name == "sync-async") {
    options.engine.mode = runtime::ExecMode::kSyncAsync;
  } else if (mode_name == "stale-sync" || mode_name == "stalesync") {
    options.engine.mode = runtime::ExecMode::kStaleSync;
  } else {
    return Usage(argv[0]);
  }

  // The server outlives the run: it answers /healthz immediately and serves
  // live /metrics snapshots while the engine executes (the engine attaches
  // its sources for the duration of Run via ExpositionAttachment).
  ExpositionServer server;
  if (serve_port >= 0) {
    auto bound = server.Start(serve_port);
    if (!bound.ok()) {
      std::fprintf(stderr, "cannot start exposition server: %s\n",
                   bound.status().ToString().c_str());
      return 1;
    }
    std::printf("serving metrics on http://127.0.0.1:%d/metrics\n", *bound);
    options.engine.exposition = &server;
  }

  auto run = PowerLog::Run(*program, *graph, options);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  server.Stop();
  std::printf("condition check: %s | evaluation: %s on %s engine\n",
              run->check.satisfied ? "satisfied" : "NOT satisfied",
              run->evaluation.c_str(), run->execution.c_str());
  std::printf("stats: %s\n", run->stats.Summary().c_str());

  if (!metrics_path.empty()) {
    if (!WriteArtifact("metrics", metrics_path, run->metrics.ToJson())) {
      return 1;
    }
    std::printf("metrics: wrote %s (%zu counters, %zu histograms, %zu series)\n",
                metrics_path.c_str(), run->metrics.counters.size(),
                run->metrics.histograms.size(), run->metrics.series.size());
  }

  if (!trace_path.empty()) {
    if (!WriteArtifact("trace", trace_path, run->chrome_trace)) {
      return 1;
    }
    std::printf("trace: wrote %s (%zu bytes)\n", trace_path.c_str(),
                run->chrome_trace.size());
  }

  std::vector<std::pair<double, VertexId>> ranked;
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    if (!std::isfinite(run->values[v])) continue;
    ranked.emplace_back(run->values[v], v);
  }
  const size_t k = std::min<size_t>(static_cast<size_t>(std::max(top, 0)),
                                    ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                    ranked.end(), std::greater<>());
  std::printf("top-%zu keys by value (%zu finite of %u):\n", k, ranked.size(),
              graph->num_vertices());
  for (size_t i = 0; i < k; ++i) {
    std::printf("  %-10u %g\n", ranked[i].second, ranked[i].first);
  }
  return 0;
}
