// Domain scenario: social-network analytics over one graph with three
// recursive aggregate queries — the workload mix the paper's introduction
// motivates (community structure, distances, influence).
//
//   1. CC          — who belongs to which community (min label propagation)
//   2. SSSP        — degrees of separation from a seed user
//   3. Adsorption  — label/interest propagation from every user
//
// Each query goes through the full pipeline: condition check, then MRA
// evaluation on the unified sync-async engine.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "datalog/catalog.h"
#include "common/random.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "powerlog/powerlog.h"

using namespace powerlog;

namespace {

Result<RunOutcome> RunCatalog(const std::string& name, const Graph& graph,
                              RunOptions options) {
  auto entry = datalog::GetCatalogEntry(name);
  if (!entry.ok()) return entry.status();
  return PowerLog::Run(entry->source, graph, options);
}

}  // namespace

int main() {
  // A social-network analogue: moderately skewed R-MAT, friendship weights.
  RmatParams params;
  params.scale = 13;
  params.edge_factor = 12;
  params.a = 0.55;
  params.b = params.c = 0.17;
  params.d = 0.11;
  params.weighted = true;
  auto raw = GenerateRmat(params).ValueOrDie();
  // Re-weight edges as shares of each user's attention (row-substochastic):
  // this is what keeps interest propagation (Adsorption) convergent.
  GraphBuilder builder;
  builder.EnsureVertices(raw.num_vertices());
  Rng rng(99);
  for (VertexId v = 0; v < raw.num_vertices(); ++v) {
    const double deg = static_cast<double>(raw.OutDegree(v));
    for (const Edge& e : raw.OutEdges(v)) {
      builder.AddEdge(v, e.dst, (0.5 + 0.5 * rng.NextDouble()) / deg);
    }
  }
  auto graph = std::move(builder).Build().ValueOrDie();
  std::printf("social graph: %s\n\n", graph.Summary().c_str());

  RunOptions options;
  options.engine.num_workers = 4;

  // --- 1. Communities --------------------------------------------------
  auto cc = RunCatalog("cc", graph, options);
  if (!cc.ok()) {
    std::fprintf(stderr, "cc failed: %s\n", cc.status().ToString().c_str());
    return 1;
  }
  std::map<double, int> sizes;
  for (double label : cc->values) ++sizes[label];
  int giant = 0;
  for (const auto& [label, count] : sizes) giant = std::max(giant, count);
  std::printf("communities: %zu distinct, giant component holds %d of %u "
              "vertices (%s)\n",
              sizes.size(), giant, graph.num_vertices(),
              cc->stats.Summary().c_str());

  // --- 2. Degrees of separation ----------------------------------------
  options.source = 1;  // seed user
  auto sssp = RunCatalog("sssp", graph, options);
  if (!sssp.ok()) {
    std::fprintf(stderr, "sssp failed: %s\n", sssp.status().ToString().c_str());
    return 1;
  }
  double max_dist = 0;
  int reachable = 0;
  for (double d : sssp->values) {
    if (std::isinf(d)) continue;
    ++reachable;
    max_dist = std::max(max_dist, d);
  }
  std::printf("separation from user 1: %d reachable, max weighted distance "
              "%.1f (%s)\n",
              reachable, max_dist, sssp->stats.Summary().c_str());
  options.source.reset();

  // --- 3. Interest propagation (Adsorption) ----------------------------
  auto adsorption = RunCatalog("adsorption", graph, options);
  if (!adsorption.ok()) {
    std::fprintf(stderr, "adsorption failed: %s\n",
                 adsorption.status().ToString().c_str());
    return 1;
  }
  // Top influence scores.
  std::vector<std::pair<double, VertexId>> ranked;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ranked.emplace_back(adsorption->values[v], v);
  }
  std::partial_sort(ranked.begin(), ranked.begin() + 5, ranked.end(),
                    std::greater<>());
  std::printf("top-5 interest mass after propagation:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  user %u: %.4f\n", ranked[i].second, ranked[i].first);
  }
  std::printf("(%s)\n", adsorption->stats.Summary().c_str());
  return 0;
}
