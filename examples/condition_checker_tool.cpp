// The standalone automatic condition verification tool (§3.3, §5.1):
// checks whether a recursive aggregate program can be executed with
// incremental and asynchronous (MRA) evaluation, and shows its work —
// including the generated Fig. 4-style SMT script and any counterexample.
//
//   ./examples/condition_checker_tool              # check the whole catalog
//   ./examples/condition_checker_tool pagerank     # one catalog program
//   ./examples/condition_checker_tool file.dl      # your own program
#include <cstdio>
#include <fstream>
#include <sstream>

#include "checker/mra_checker.h"
#include "checker/rewrite.h"
#include "datalog/analyzer.h"
#include "datalog/parser.h"
#include "datalog/catalog.h"

using namespace powerlog;

namespace {

int CheckOne(const std::string& name, const std::string& source, bool verbose) {
  auto result = checker::CheckMraConditionsFromSource(source);
  if (!result.ok()) {
    std::printf("%-24s ERROR: %s\n", name.c_str(),
                result.status().ToString().c_str());
    return 1;
  }
  if (!verbose) {
    std::printf("%-24s MRA sat.: %s\n", name.c_str(),
                result->satisfied ? "yes" : "no");
    return 0;
  }
  std::printf("%s\n", result->report.c_str());
  if (result->property2.counterexample) {
    std::printf("counterexample (the \"sat\" witness):\n  %s\n\n",
                result->property2.counterexample->ToString().c_str());
  }
  std::printf("generated SMT-LIB script (cf. paper Fig. 4):\n%s\n",
              result->smtlib_script.c_str());
  if (result->satisfied) {
    auto parsed = datalog::Parse(source);
    if (parsed.ok()) {
      auto analyzed = datalog::Analyze(*parsed);
      if (analyzed.ok()) {
        auto incremental = checker::EmitIncrementalEquivalent(*analyzed);
        if (incremental.ok()) {
          std::printf("incremental equivalent (cf. paper Program 2.b):\n%s\n",
                      incremental->c_str());
        }
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("checking the full Table-1 catalog "
                "(pass a program name or .dl file for detail):\n\n");
    for (const auto& entry : datalog::ProgramCatalog()) {
      CheckOne(entry.display_name, entry.source, /*verbose=*/false);
    }
    return 0;
  }
  const std::string arg = argv[1];
  auto entry = datalog::GetCatalogEntry(arg);
  if (entry.ok()) {
    return CheckOne(entry->display_name, entry->source, /*verbose=*/true);
  }
  std::ifstream in(arg);
  if (!in) {
    std::fprintf(stderr,
                 "'%s' is neither a catalog program nor a readable file\n",
                 arg.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return CheckOne(arg, text.str(), /*verbose=*/true);
}
