// powerlog_serve — the resident serving plane as a long-lived process.
//
// Materialises each requested (program, dataset) pair once at boot — parse,
// condition-check, converge — then keeps the converged state resident behind
// shared immutable graph snapshots and answers queries over HTTP until told
// to stop:
//
//   powerlog_serve --pair pagerank:flickr --pair sssp:flickr --port 9900
//   curl http://127.0.0.1:9900/lookup?program=pagerank&dataset=flickr&v=42
//   curl http://127.0.0.1:9900/topk?program=pagerank&dataset=flickr&k=5
//   curl http://127.0.0.1:9900/run?program=sssp&dataset=flickr&source=7
//   curl -X POST --data '{"ops":[{"op":"insert","src":1,"dst":2,"weight":1}]}'
//     'http://127.0.0.1:9900/mutate?program=pagerank&dataset=flickr'
//   curl http://127.0.0.1:9900/version?program=pagerank&dataset=flickr
//
// Flags:
//   --pair <program>:<dataset>  pair to materialise; repeatable
//   --port <n>                  listen port on 127.0.0.1 (default 0 =
//                               ephemeral; the bound port is printed)
//   --mode <m>                  engine mode: sync | async | aap | sync-async
//                               | stale-sync (alias: stalesync)
//   --staleness <s|auto>        stale-sync only: superstep-lead bound, or
//                               "auto" for the online tuner
//   --workers <n>               engine worker threads (default 4)
//   --handler-threads <n>       HTTP handler threads (default 4)
//   --max-inflight <n>          concurrent full runs admitted (default 2)
//   --max-queue <n>             runs allowed to wait for a slot (default 8)
//   --deadline-ms <n>           default per-query deadline (default 30000)
//   --cache <n>                 result-cache capacity, 0 disables (default 64)
//   --trace-out <file>          enable query-level tracing; write the merged
//                               Chrome/Perfetto trace there on shutdown
//   --metrics-json <file>       rewrite the metrics snapshot there every
//                               second (and once more on shutdown)
//   --slow-query-ms <n>         log queries slower than n ms end-to-end
//
// Routes: /catalog /lookup /topk /run /version /mutate /debug/queries plus
// the exposition built-ins /metrics /metrics.json /healthz /trace. The
// serving.* counters (cache hits, admissions, graph builds, mutation paths)
// and the per-route RED instruments ride along on /metrics.
//
// SIGINT/SIGTERM shut down cleanly: stop accepting, drain in-flight
// handlers, join every thread, exit 0. Both "--flag value" and
// "--flag=value" spellings are accepted.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include <unistd.h>

#include "common/string_util.h"
#include "powerlog/serving.h"
#include "runtime/exposition.h"

using namespace powerlog;

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --pair <program>:<dataset> [--pair ...] [--port n] "
               "[--mode m] [--staleness s|auto] [--workers n] "
               "[--handler-threads n] "
               "[--max-inflight n] [--max-queue n] [--deadline-ms n] "
               "[--cache n] [--trace-out file] [--metrics-json file] "
               "[--slow-query-ms n] [--no-simd] [--no-steal] "
               "[--pin|--no-pin]\n",
               argv0);
  return 2;
}

volatile std::sig_atomic_t g_shutdown = 0;

void OnSignal(int) { g_shutdown = 1; }

// Strict integer flag parsing: "--workers 4x" is an error, not 4.
bool ParseIntFlag(const char* flag, const char* value, int64_t min_value,
                  int64_t* out) {
  auto parsed = ParseInt64(value);
  if (!parsed.ok() || *parsed < min_value) {
    std::fprintf(stderr, "%s: expected integer >= %lld, got '%s'\n", flag,
                 static_cast<long long>(min_value), value);
    return false;
  }
  *out = *parsed;
  return true;
}

// Artifact writing with exit-code discipline: a requested artifact that
// cannot be produced is a failed run, not a warning.
bool WriteArtifact(const char* what, const std::string& path,
                   const std::string& body) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s output '%s' for writing\n", what,
                 path.c_str());
    return false;
  }
  out << body << '\n';
  out.flush();
  if (!out) {
    std::fprintf(stderr, "write to %s output '%s' failed\n", what,
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> pairs;
  serving::ServingOptions options;
  int64_t port = 0;
  int64_t handler_threads = 4;
  std::string mode_name = "sync-async";
  std::string trace_out;
  std::string metrics_json;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    int64_t n = 0;
    if (arg == "--pair" && (value = next())) {
      auto parts = Split(value, ':');
      if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
        std::fprintf(stderr, "--pair: expected <program>:<dataset>, got '%s'\n",
                     value);
        return 2;
      }
      pairs.emplace_back(parts[0], parts[1]);
    } else if (arg == "--port" && (value = next())) {
      if (!ParseIntFlag("--port", value, 0, &port)) return 2;
    } else if (arg == "--mode" && (value = next())) {
      mode_name = value;
    } else if (arg == "--staleness" && (value = next())) {
      if (std::string(value) == "auto") {
        options.engine.staleness_auto = true;
      } else {
        if (!ParseIntFlag("--staleness", value, 0, &n)) return 2;
        options.engine.staleness = n;
      }
    } else if (arg == "--workers" && (value = next())) {
      if (!ParseIntFlag("--workers", value, 1, &n)) return 2;
      options.engine.num_workers = static_cast<uint32_t>(n);
    } else if (arg == "--handler-threads" && (value = next())) {
      if (!ParseIntFlag("--handler-threads", value, 1, &handler_threads))
        return 2;
    } else if (arg == "--max-inflight" && (value = next())) {
      if (!ParseIntFlag("--max-inflight", value, 1, &n)) return 2;
      options.max_inflight_runs = static_cast<int>(n);
    } else if (arg == "--max-queue" && (value = next())) {
      if (!ParseIntFlag("--max-queue", value, 0, &n)) return 2;
      options.max_queued_runs = static_cast<int>(n);
    } else if (arg == "--deadline-ms" && (value = next())) {
      if (!ParseIntFlag("--deadline-ms", value, 1, &n)) return 2;
      options.default_deadline_ms = n;
    } else if (arg == "--cache" && (value = next())) {
      if (!ParseIntFlag("--cache", value, 0, &n)) return 2;
      options.cache_capacity = static_cast<size_t>(n);
    } else if (arg == "--trace-out" && (value = next())) {
      trace_out = value;
      options.trace = true;
    } else if (arg == "--metrics-json" && (value = next())) {
      metrics_json = value;
    } else if (arg == "--slow-query-ms" && (value = next())) {
      if (!ParseIntFlag("--slow-query-ms", value, 1, &n)) return 2;
      options.slow_query_ms = n;
    } else if (arg == "--no-simd") {
      options.engine.simd = false;
    } else if (arg == "--no-steal") {
      options.engine.steal = false;
    } else if (arg == "--pin") {
      options.engine.pin = true;
    } else if (arg == "--no-pin") {
      options.engine.pin = false;
    } else {
      return Usage(argv[0]);
    }
  }
  if (pairs.empty()) return Usage(argv[0]);

  if (mode_name == "sync") {
    options.engine.mode = runtime::ExecMode::kSync;
  } else if (mode_name == "async") {
    options.engine.mode = runtime::ExecMode::kAsync;
  } else if (mode_name == "aap") {
    options.engine.mode = runtime::ExecMode::kAap;
  } else if (mode_name == "sync-async") {
    options.engine.mode = runtime::ExecMode::kSyncAsync;
  } else if (mode_name == "stale-sync" || mode_name == "stalesync") {
    options.engine.mode = runtime::ExecMode::kStaleSync;
  } else {
    return Usage(argv[0]);
  }

  serving::ServingCatalog catalog(options);
  for (const auto& [program, dataset] : pairs) {
    std::printf("materializing %s over %s ...\n", program.c_str(),
                dataset.c_str());
    std::fflush(stdout);
    auto entry = catalog.Materialize(program, dataset);
    if (!entry.ok()) {
      std::fprintf(stderr, "materialize %s:%s failed: %s\n", program.c_str(),
                   dataset.c_str(), entry.status().ToString().c_str());
      return 1;
    }
    std::printf("  resident: %u vertices, converged in %.3fs (v%llu)\n",
                (*entry)->graph()->num_vertices(),
                (*entry)->materialize_seconds(),
                static_cast<unsigned long long>((*entry)->Version()));
  }
  std::printf("catalog: %zu entries, %lld graph builds\n", catalog.size(),
              static_cast<long long>(catalog.graph_builds()));

  ExpositionServer server;
  server.SetHandler(serving::MakeServingHandler(&catalog));
  server.SetSources([&catalog] { return catalog.Metrics(); },
                    [&catalog] { return catalog.TraceJson(); });
  auto bound = server.Start(static_cast<int>(port),
                            static_cast<int>(handler_threads));
  if (!bound.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 bound.status().ToString().c_str());
    return 1;
  }
  // check.sh greps this exact line for the ephemeral port.
  std::printf("serving on http://127.0.0.1:%d\n", *bound);
  std::fflush(stdout);

  struct sigaction sa = {};
  sa.sa_handler = OnSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  int ticks = 0;
  while (g_shutdown == 0) {
    usleep(50 * 1000);
    // Periodic metrics snapshot for offline collectors (one rewrite per
    // second keeps the file fresh without hammering the registry).
    if (!metrics_json.empty() && ++ticks % 20 == 0) {
      if (!WriteArtifact("metrics", metrics_json,
                         catalog.Metrics().ToJson())) {
        return 1;
      }
    }
  }

  // Clean shutdown: detach the metrics source (blocks on in-flight scrapes),
  // then stop the server — which drains the connection queue and joins the
  // listener plus every handler thread, so any engine run started by /run
  // finishes before we return.
  std::printf("shutting down\n");
  std::fflush(stdout);
  server.ClearSources();
  server.Stop();
  // Export artifacts after the drain so every finished request's spans and
  // counters are in the files.
  bool artifacts_ok = true;
  if (!trace_out.empty()) {
    artifacts_ok &= WriteArtifact("trace", trace_out, catalog.TraceJson());
  }
  if (!metrics_json.empty()) {
    artifacts_ok &=
        WriteArtifact("metrics", metrics_json, catalog.Metrics().ToJson());
  }
  if (!artifacts_ok) return 1;
  std::printf("clean exit: all handler threads joined\n");
  return 0;
}
