#include "eval/naive.h"

#include <cmath>
#include <limits>

namespace powerlog::eval {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// "No fact derived" marker: aggregate identity where one exists, NaN for
/// mean (which has no identity).
double AbsentMarker(const Kernel& kernel) {
  Aggregator agg(kernel.agg);
  auto id = agg.Identity();
  return id.ok() ? *id : kNan;
}

bool IsAbsent(const Kernel& kernel, double absent, double v) {
  if (kernel.agg == AggKind::kMean) return std::isnan(v);
  return v == absent;
}

}  // namespace

Result<std::vector<double>> NaiveStep(const Kernel& kernel, const Graph& graph,
                                      const std::vector<double>& x,
                                      int64_t* edge_applications) {
  const VertexId n = graph.num_vertices();
  if (x.size() != n) return Status::InvalidArgument("NaiveStep: size mismatch");
  const double absent = AbsentMarker(kernel);
  Aggregator agg(kernel.agg);

  // Fold state: accumulated combine + contribution count (count drives mean
  // and distinguishes "no fact" from "identity-valued fact").
  std::vector<double> acc(n, 0.0);
  std::vector<uint32_t> cnt(n, 0);
  auto contribute = [&](VertexId y, double v) {
    if (cnt[y] == 0) {
      acc[y] = v;
    } else if (kernel.agg == AggKind::kMean) {
      acc[y] += v;
    } else {
      acc[y] = *agg.Combine(acc[y], v);  // min/max/sum/count always combine OK
    }
    ++cnt[y];
  };

  // Non-recursive bodies of F: the constant part C ...
  switch (kernel.constant.kind) {
    case datalog::ConstKind::kNone:
      break;
    case datalog::ConstKind::kAllVertices:
      for (VertexId v = 0; v < n; ++v) contribute(v, kernel.constant.value);
      break;
    case datalog::ConstKind::kSingleKey:
      if (kernel.constant.key >= n) {
        return Status::OutOfRange("constant key out of range");
      }
      contribute(kernel.constant.key, kernel.constant.value);
      break;
  }
  // ... and init facts that are re-derived every iteration.
  if (!kernel.init.iteration_indexed) {
    switch (kernel.init.kind) {
      case datalog::InitKind::kNone:
        break;
      case datalog::InitKind::kAllVerticesConst:
        for (VertexId v = 0; v < n; ++v) contribute(v, kernel.init.value);
        break;
      case datalog::InitKind::kAllVerticesOwnId:
        for (VertexId v = 0; v < n; ++v) contribute(v, static_cast<double>(v));
        break;
      case datalog::InitKind::kSingleSource:
        if (kernel.init.source >= n) {
          return Status::OutOfRange("init source out of range");
        }
        contribute(kernel.init.source, kernel.init.value);
        break;
    }
  }

  // Recursive body: apply F' along every edge from a vertex holding a fact.
  const Graph& prop = kernel.uses_in_edges ? graph.Reverse() : graph;
  int64_t applications = 0;
  for (VertexId src = 0; src < n; ++src) {
    const double value = x[src];
    if (IsAbsent(kernel, absent, value)) continue;
    const double deg = static_cast<double>(graph.OutDegree(src));
    for (const Edge& e : prop.OutEdges(src)) {
      contribute(e.dst, kernel.EvalEdge(value, e.weight, deg));
      ++applications;
    }
  }
  if (edge_applications != nullptr) *edge_applications += applications;

  std::vector<double> next(n, absent);
  for (VertexId v = 0; v < n; ++v) {
    if (cnt[v] == 0) continue;
    next[v] = kernel.agg == AggKind::kMean ? acc[v] / cnt[v] : acc[v];
  }
  return next;
}

Result<EvalResult> NaiveEvaluate(const Kernel& kernel, const Graph& graph,
                                 const EvalOptions& options) {
  const VertexId n = graph.num_vertices();
  auto x0 = ComputeX0(kernel, n);
  if (!x0.ok()) {
    // mean programs have no identity: start from "no facts" (NaN markers)
    // plus the init rule's facts.
    if (kernel.agg != AggKind::kMean) return x0.status();
    std::vector<double> init(n, kNan);
    switch (kernel.init.kind) {
      case datalog::InitKind::kNone:
        break;
      case datalog::InitKind::kAllVerticesConst:
        std::fill(init.begin(), init.end(), kernel.init.value);
        break;
      case datalog::InitKind::kAllVerticesOwnId:
        for (VertexId v = 0; v < n; ++v) init[v] = static_cast<double>(v);
        break;
      case datalog::InitKind::kSingleSource:
        if (kernel.init.source >= n) {
          return Status::OutOfRange("init source out of range");
        }
        init[kernel.init.source] = kernel.init.value;
        break;
    }
    x0 = std::move(init);
  }

  const TerminationParams term = ResolveTermination(kernel, options);
  EvalResult result;
  std::vector<double> x = std::move(x0).ValueOrDie();
  for (int64_t k = 0; k < term.max_iterations; ++k) {
    auto next = NaiveStep(kernel, graph, x, &result.edge_applications);
    if (!next.ok()) return next.status();
    ++result.iterations;
    const double diff = SumAbsDiff(*next, x);
    x = std::move(next).ValueOrDie();
    if (diff == 0.0 || (term.epsilon > 0.0 && diff < term.epsilon)) {
      result.converged = true;
      break;
    }
  }
  result.values = std::move(x);
  return result;
}

}  // namespace powerlog::eval
