// Naive evaluation (Eq. 2): X_k = G∘F(X_{k-1}), recomputing every fact each
// iteration. The correctness oracle for everything else, and the execution
// strategy comparator systems fall back to for non-monotonic programs.
#pragma once

#include "eval/eval_common.h"

namespace powerlog::eval {

/// One naive step: X' = G∘F(X). Exposed for the ΔX¹ verification (§3.3).
/// F includes the non-recursive bodies: re-derived init facts (when the init
/// rule is not iteration-indexed) and the constant part C.
Result<std::vector<double>> NaiveStep(const Kernel& kernel, const Graph& graph,
                                      const std::vector<double>& x,
                                      int64_t* edge_applications = nullptr);

/// Runs naive evaluation to fixpoint / epsilon / iteration cap.
Result<EvalResult> NaiveEvaluate(const Kernel& kernel, const Graph& graph,
                                 const EvalOptions& options = {});

}  // namespace powerlog::eval
