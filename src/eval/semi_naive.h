// Semi-naive evaluation (Eq. 3): propagates only the per-iteration frontier
// of changed keys. Sound for monotonic (min/max) programs only — exactly the
// scope existing systems support (§2.3); sum/count programs are rejected,
// which is what MRA evaluation (mra.h) lifts.
#pragma once

#include "eval/eval_common.h"

namespace powerlog::eval {

/// Runs semi-naive evaluation. Fails with ConditionViolated for aggregates
/// other than min/max.
Result<EvalResult> SemiNaiveEvaluate(const Kernel& kernel, const Graph& graph,
                                     const EvalOptions& options = {});

}  // namespace powerlog::eval
