#include "eval/eval_common.h"

#include <cmath>

#include "common/string_util.h"

namespace powerlog::eval {

std::string EvalResult::Summary() const {
  return StringFormat("iterations=%lld, edge_applications=%lld, converged=%s",
                      static_cast<long long>(iterations),
                      static_cast<long long>(edge_applications),
                      converged ? "true" : "false");
}

TerminationParams ResolveTermination(const Kernel& kernel, const EvalOptions& options) {
  TerminationParams params;
  params.epsilon = options.epsilon_override >= 0
                       ? options.epsilon_override
                       : (kernel.termination.has_epsilon ? kernel.termination.epsilon
                                                         : 0.0);
  params.max_iterations = options.max_iterations;
  if (kernel.termination.max_iterations > 0 &&
      kernel.termination.max_iterations < params.max_iterations) {
    params.max_iterations = kernel.termination.max_iterations;
  }
  return params;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = a.size() == b.size() ? 0.0 : std::numeric_limits<double>::infinity();
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (std::isinf(a[i]) && std::isinf(b[i]) && a[i] == b[i]) continue;
    if (std::isnan(a[i]) || std::isnan(b[i])) {
      // NaN marks "no fact" (mean programs): same-absent is equal,
      // absent-vs-present counts as a unit difference.
      if (std::isnan(a[i]) && std::isnan(b[i])) continue;
      worst = std::max(worst, 1.0);
      continue;
    }
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

double SumAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isinf(a[i]) && std::isinf(b[i]) && a[i] == b[i]) continue;
    if (std::isnan(a[i]) || std::isnan(b[i])) {
      if (std::isnan(a[i]) && std::isnan(b[i])) continue;
      total += 1.0;
      continue;
    }
    total += std::abs(a[i] - b[i]);
  }
  return total;
}

}  // namespace powerlog::eval
