// Shared types for the single-node reference evaluators.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/kernel.h"
#include "graph/graph.h"

namespace powerlog::eval {

/// \brief Common knobs for all evaluators. Program-specified termination
/// (epsilon / max iterations from the kernel) applies on top.
struct EvalOptions {
  int64_t max_iterations = 100000;  ///< hard system-level cap (§2.2)
  double epsilon_override = -1.0;   ///< <0: use the kernel's epsilon
};

/// \brief Evaluation outcome: final per-key values plus statistics.
struct EvalResult {
  std::vector<double> values;
  int64_t iterations = 0;
  int64_t edge_applications = 0;  ///< number of F' applications (work metric)
  bool converged = false;         ///< reached fixpoint / epsilon (vs. cap)

  std::string Summary() const;
};

/// Resolved termination parameters for a kernel + options pair.
struct TerminationParams {
  double epsilon;        ///< <= 0 means exact-fixpoint only
  int64_t max_iterations;
};
TerminationParams ResolveTermination(const Kernel& kernel, const EvalOptions& options);

/// L∞ distance between two value vectors (result comparison in tests).
double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b);

/// L1 distance, treating matching infinities as zero difference.
double SumAbsDiff(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace powerlog::eval
