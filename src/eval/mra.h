// MRA evaluation (Eq. 4) — the paper's contribution, single-node reference:
//   ΔX_k = G∘F'(ΔX_{k-1});   X_k = G(X_{k-1} ∪ ΔX_k).
// Valid for every program passing the MRA condition check, including
// convertible non-monotonic ones (PageRank et al.).
#pragma once

#include "eval/eval_common.h"

namespace powerlog::eval {

/// Runs synchronous MRA evaluation to fixpoint / epsilon / cap.
/// Fails with ConditionViolated for mean programs (no identity).
Result<EvalResult> MraEvaluate(const Kernel& kernel, const Graph& graph,
                               const EvalOptions& options = {});

}  // namespace powerlog::eval
