#include "eval/semi_naive.h"

namespace powerlog::eval {

Result<EvalResult> SemiNaiveEvaluate(const Kernel& kernel, const Graph& graph,
                                     const EvalOptions& options) {
  if (kernel.agg != AggKind::kMin && kernel.agg != AggKind::kMax) {
    return Status::ConditionViolated(
        "semi-naive evaluation supports only monotonic (min/max) programs; use MRA "
        "evaluation for convertible programs");
  }
  const VertexId n = graph.num_vertices();
  auto x0 = ComputeX0(kernel, n);
  if (!x0.ok()) return x0.status();
  Aggregator agg(kernel.agg);
  const double identity = *agg.Identity();

  std::vector<double> x = std::move(x0).ValueOrDie();
  // ΔX⁰ = X⁰: every initial fact is in the first frontier.
  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < n; ++v) {
    if (x[v] != identity) frontier.push_back(v);
  }

  const Graph& prop = kernel.uses_in_edges ? graph.Reverse() : graph;
  const TerminationParams term = ResolveTermination(kernel, options);
  EvalResult result;
  std::vector<double> candidate(n, identity);
  std::vector<bool> in_next(n, false);

  while (!frontier.empty() && result.iterations < term.max_iterations) {
    ++result.iterations;
    std::vector<VertexId> next;
    for (VertexId src : frontier) {
      const double value = x[src];
      const double deg = static_cast<double>(graph.OutDegree(src));
      for (const Edge& e : prop.OutEdges(src)) {
        const double contribution = kernel.EvalEdge(value, e.weight, deg);
        ++result.edge_applications;
        if (!agg.Improves(candidate[e.dst], contribution)) continue;
        candidate[e.dst] = contribution;
      }
    }
    // Merge candidates into X; changed keys form the next frontier.
    for (VertexId src : frontier) {
      for (const Edge& e : prop.OutEdges(src)) {
        const VertexId y = e.dst;
        if (candidate[y] == identity) continue;
        if (agg.Improves(x[y], candidate[y])) {
          x[y] = candidate[y];
          if (!in_next[y]) {
            in_next[y] = true;
            next.push_back(y);
          }
        }
        candidate[y] = identity;
      }
    }
    for (VertexId v : next) in_next[v] = false;
    frontier = std::move(next);
  }
  result.converged = frontier.empty();
  result.values = std::move(x);
  return result;
}

}  // namespace powerlog::eval
