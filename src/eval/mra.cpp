#include "eval/mra.h"

#include <cmath>

namespace powerlog::eval {

Result<EvalResult> MraEvaluate(const Kernel& kernel, const Graph& graph,
                               const EvalOptions& options) {
  if (kernel.agg == AggKind::kMean) {
    return Status::ConditionViolated("mean programs fail the MRA conditions");
  }
  const VertexId n = graph.num_vertices();
  auto init = ComputeInitialState(kernel, graph);
  if (!init.ok()) return init.status();
  Aggregator agg(kernel.agg);
  const double identity = *agg.Identity();
  const bool ordered = kernel.agg == AggKind::kMin || kernel.agg == AggKind::kMax;

  // Mirrors the MonoTable protocol: `x` is the accumulation column, `delta`
  // the intermediate column, initialised to (X⁰, ΔX¹).
  std::vector<double> x = init->x0;
  std::vector<double> delta = init->delta0;
  const Graph& prop = kernel.uses_in_edges ? graph.Reverse() : graph;
  const TerminationParams term = ResolveTermination(kernel, options);
  EvalResult result;
  std::vector<double> next(n, identity);

  while (result.iterations < term.max_iterations) {
    ++result.iterations;
    bool any = false;
    for (VertexId src = 0; src < n; ++src) {
      const double d = delta[src];
      if (d == identity) continue;
      if (ordered && !agg.Improves(x[src], d)) continue;  // stale delta
      // Harvest: fold into the accumulation, then propagate F'(d).
      x[src] = x[src] == identity ? d : *agg.Combine(x[src], d);
      any = true;
      const double deg = static_cast<double>(graph.OutDegree(src));
      for (const Edge& e : prop.OutEdges(src)) {
        const double contribution = kernel.EvalEdge(d, e.weight, deg);
        ++result.edge_applications;
        next[e.dst] = next[e.dst] == identity ? contribution
                                              : *agg.Combine(next[e.dst], contribution);
      }
    }
    if (!any) {
      result.converged = true;
      break;
    }
    double new_mass = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      delta[v] = next[v];
      next[v] = identity;
      if (delta[v] == identity) continue;
      if (ordered) {
        if (agg.Improves(x[v], delta[v])) new_mass += 1.0;
      } else {
        new_mass += std::abs(delta[v]);
      }
    }
    if (new_mass == 0.0) {
      result.converged = true;
      break;
    }
    if (!ordered && term.epsilon > 0.0 && new_mass < term.epsilon) {
      // Fold the remaining sub-epsilon deltas so X is a proper prefix sum.
      for (VertexId v = 0; v < n; ++v) {
        if (delta[v] != identity) x[v] = *agg.Combine(x[v], delta[v]);
      }
      result.converged = true;
      break;
    }
  }
  result.values = std::move(x);
  return result;
}

}  // namespace powerlog::eval
