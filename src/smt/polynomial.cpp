#include "smt/polynomial.h"

#include "common/string_util.h"

namespace powerlog::smt {

Polynomial Polynomial::Constant(const Rational& c) {
  Polynomial p;
  p.AddTerm(Monomial{}, c);
  return p;
}

Polynomial Polynomial::Variable(const std::string& name) {
  Polynomial p;
  p.AddTerm(Monomial{{name, 1}}, Rational::FromInt(1));
  return p;
}

void Polynomial::AddTerm(const Monomial& m, const Rational& c) {
  if (c.overflow()) {
    overflowed_ = true;
    return;
  }
  if (c.IsZero()) return;
  auto [it, inserted] = terms_.emplace(m, c);
  if (!inserted) {
    it->second = it->second + c;
    if (it->second.overflow()) overflowed_ = true;
    if (it->second.IsZero()) terms_.erase(it);
  }
}

Result<Polynomial> Polynomial::FromTerm(const TermPtr& t) {
  switch (t->op) {
    case Op::kConst:
      if (t->value.overflow()) return Status::OutOfRange("constant overflow");
      return Constant(t->value);
    case Op::kVar:
      return Variable(t->var);
    case Op::kAdd:
    case Op::kSub: {
      auto a = FromTerm(t->args[0]);
      if (!a.ok()) return a;
      auto b = FromTerm(t->args[1]);
      if (!b.ok()) return b;
      Polynomial r = t->op == Op::kAdd ? *a + *b : *a - *b;
      if (r.overflowed()) return Status::OutOfRange("polynomial overflow");
      return r;
    }
    case Op::kMul: {
      auto a = FromTerm(t->args[0]);
      if (!a.ok()) return a;
      auto b = FromTerm(t->args[1]);
      if (!b.ok()) return b;
      Polynomial r = *a * *b;
      if (r.overflowed()) return Status::OutOfRange("polynomial overflow");
      return r;
    }
    case Op::kDiv: {
      auto a = FromTerm(t->args[0]);
      if (!a.ok()) return a;
      auto b = FromTerm(t->args[1]);
      if (!b.ok()) return b;
      if (b->IsConstant()) {
        const Rational c = b->ConstantValue();
        if (c.IsZero()) return Status::InvalidArgument("division by constant zero");
        Polynomial r = a->Scale(Rational::FromInt(1) / c);
        if (r.overflowed()) return Status::OutOfRange("polynomial overflow");
        return r;
      }
      // Non-constant denominator: multiply by a reciprocal pseudo-variable
      // keyed by the denominator's canonical form.
      const std::string recip = "recip[" + b->ToString() + "]";
      Polynomial r = *a * Variable(recip);
      if (r.overflowed()) return Status::OutOfRange("polynomial overflow");
      return r;
    }
    case Op::kNeg: {
      auto a = FromTerm(t->args[0]);
      if (!a.ok()) return a;
      return -*a;
    }
    default:
      return Status::NotSupported(std::string("non-polynomial op: ") + OpName(t->op));
  }
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
  Polynomial r = *this;
  r.overflowed_ = overflowed_ || o.overflowed_;
  for (const auto& [m, c] : o.terms_) r.AddTerm(m, c);
  return r;
}

Polynomial Polynomial::operator-(const Polynomial& o) const { return *this + (-o); }

Polynomial Polynomial::operator*(const Polynomial& o) const {
  Polynomial r;
  r.overflowed_ = overflowed_ || o.overflowed_;
  for (const auto& [m1, c1] : terms_) {
    for (const auto& [m2, c2] : o.terms_) {
      Monomial m = m1;
      for (const auto& [v, p] : m2) m[v] += p;
      r.AddTerm(m, c1 * c2);
    }
  }
  return r;
}

Polynomial Polynomial::operator-() const { return Scale(Rational::FromInt(-1)); }

Polynomial Polynomial::Scale(const Rational& c) const {
  Polynomial r;
  r.overflowed_ = overflowed_;
  for (const auto& [m, coeff] : terms_) r.AddTerm(m, coeff * c);
  return r;
}

bool Polynomial::IsConstant() const {
  return terms_.empty() || (terms_.size() == 1 && terms_.begin()->first.empty());
}

Rational Polynomial::ConstantValue() const {
  if (terms_.empty()) return Rational::FromInt(0);
  return terms_.begin()->second;
}

bool Polynomial::HasReciprocal() const {
  for (const auto& [m, c] : terms_) {
    (void)c;
    for (const auto& [v, p] : m) {
      (void)p;
      if (StartsWith(v, "recip[")) return true;
    }
  }
  return false;
}

std::string Polynomial::ToString() const {
  if (terms_.empty()) return "0";
  std::string out;
  bool first = true;
  for (const auto& [m, c] : terms_) {
    if (!first) out += " + ";
    first = false;
    out += c.ToString();
    for (const auto& [v, p] : m) {
      for (int i = 0; i < p; ++i) {
        out += "*";
        out += v;
      }
    }
  }
  return out;
}

}  // namespace powerlog::smt
