// Term DAG for the mini-SMT validity checker.
//
// The fragment is exactly what recursive aggregate Datalog bodies produce:
// real arithmetic {+,-,*,/,neg}, the aggregate combiners {min,max}, the
// piecewise primitives {relu, abs, ite} and comparisons for ite guards.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "smt/rational.h"

namespace powerlog::smt {

enum class Op {
  kConst,  // rational constant
  kVar,    // named real variable
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  kMin,
  kMax,
  kRelu,  // max(x, 0)
  kAbs,
  kIte,  // ite(cond, then, else) — cond is a comparison term
  kLt,
  kLe,
  kEq,  // comparison; evaluates to a boolean (1/0 numerically)
};

const char* OpName(Op op);

struct Term;
using TermPtr = std::shared_ptr<const Term>;

/// \brief Immutable term node. Construct via the factory functions below.
struct Term {
  Op op;
  Rational value;              ///< kConst only.
  std::string var;             ///< kVar only.
  std::vector<TermPtr> args;   ///< operands

  /// Structural equality.
  bool Equals(const Term& other) const;

  /// Number of nodes in the tree (diagnostics / complexity guards).
  size_t Size() const;
};

// -- Factories ---------------------------------------------------------------
TermPtr Const(const Rational& value);
TermPtr ConstInt(int64_t v);
TermPtr ConstDouble(double v);
TermPtr Var(const std::string& name);
TermPtr Add(TermPtr a, TermPtr b);
TermPtr Sub(TermPtr a, TermPtr b);
TermPtr Mul(TermPtr a, TermPtr b);
TermPtr Div(TermPtr a, TermPtr b);
TermPtr Neg(TermPtr a);
TermPtr Min(TermPtr a, TermPtr b);
TermPtr Max(TermPtr a, TermPtr b);
TermPtr Relu(TermPtr a);
TermPtr Abs(TermPtr a);
TermPtr Ite(TermPtr cond, TermPtr t, TermPtr f);
TermPtr Lt(TermPtr a, TermPtr b);
TermPtr Le(TermPtr a, TermPtr b);
TermPtr EqTerm(TermPtr a, TermPtr b);

/// Collects the distinct variable names in `t`, sorted.
std::vector<std::string> CollectVars(const TermPtr& t);

/// Substitutes vars by terms (simultaneous). Missing vars stay symbolic.
TermPtr Substitute(const TermPtr& t, const std::map<std::string, TermPtr>& subst);

/// Numeric evaluation under `env`; comparison terms yield 1.0/0.0.
/// Returns an error if a variable is unbound or a division by ~0 occurs.
Result<double> Evaluate(const TermPtr& t, const std::map<std::string, double>& env);

}  // namespace powerlog::smt
