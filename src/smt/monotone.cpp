#include "smt/monotone.h"

#include <algorithm>

namespace powerlog::smt {

Sign SignNegate(Sign s) {
  switch (s) {
    case Sign::kPositive: return Sign::kNegative;
    case Sign::kNegative: return Sign::kPositive;
    case Sign::kNonNegative: return Sign::kNonPositive;
    case Sign::kNonPositive: return Sign::kNonNegative;
    case Sign::kZero: return Sign::kZero;
    case Sign::kUnknown: return Sign::kUnknown;
  }
  return Sign::kUnknown;
}

bool SignIsNonNegative(Sign s) {
  return s == Sign::kZero || s == Sign::kPositive || s == Sign::kNonNegative;
}

bool SignIsNonPositive(Sign s) {
  return s == Sign::kZero || s == Sign::kNegative || s == Sign::kNonPositive;
}

bool SignIsStrictlyPositive(Sign s) { return s == Sign::kPositive; }
bool SignIsStrictlyNegative(Sign s) { return s == Sign::kNegative; }

Sign SignAdd(Sign a, Sign b) {
  if (a == Sign::kZero) return b;
  if (b == Sign::kZero) return a;
  if (SignIsNonNegative(a) && SignIsNonNegative(b)) {
    return (a == Sign::kPositive || b == Sign::kPositive) ? Sign::kPositive
                                                          : Sign::kNonNegative;
  }
  if (SignIsNonPositive(a) && SignIsNonPositive(b)) {
    return (a == Sign::kNegative || b == Sign::kNegative) ? Sign::kNegative
                                                          : Sign::kNonPositive;
  }
  return Sign::kUnknown;
}

Sign SignMul(Sign a, Sign b) {
  if (a == Sign::kZero || b == Sign::kZero) return Sign::kZero;
  if (a == Sign::kUnknown || b == Sign::kUnknown) return Sign::kUnknown;
  const bool a_nn = SignIsNonNegative(a);
  const bool b_nn = SignIsNonNegative(b);
  const bool strict = (a == Sign::kPositive || a == Sign::kNegative) &&
                      (b == Sign::kPositive || b == Sign::kNegative);
  if (a_nn == b_nn) return strict ? Sign::kPositive : Sign::kNonNegative;
  return strict ? Sign::kNegative : Sign::kNonPositive;
}

Sign TermSign(const TermPtr& t, const ConstraintSet& cs) {
  switch (t->op) {
    case Op::kConst: {
      if (t->value.overflow()) return Sign::kUnknown;
      if (t->value.IsZero()) return Sign::kZero;
      return t->value.IsNegative() ? Sign::kNegative : Sign::kPositive;
    }
    case Op::kVar:
      return cs.SignOf(t->var);
    case Op::kAdd:
      return SignAdd(TermSign(t->args[0], cs), TermSign(t->args[1], cs));
    case Op::kSub:
      return SignAdd(TermSign(t->args[0], cs), SignNegate(TermSign(t->args[1], cs)));
    case Op::kMul:
      return SignMul(TermSign(t->args[0], cs), TermSign(t->args[1], cs));
    case Op::kDiv: {
      const Sign num = TermSign(t->args[0], cs);
      const Sign den = TermSign(t->args[1], cs);
      if (den == Sign::kZero) return Sign::kUnknown;
      return SignMul(num, den);  // sign of 1/x equals sign of x
    }
    case Op::kNeg:
      return SignNegate(TermSign(t->args[0], cs));
    case Op::kMin: {
      const Sign a = TermSign(t->args[0], cs);
      const Sign b = TermSign(t->args[1], cs);
      if (SignIsNonNegative(a) && SignIsNonNegative(b)) {
        return (a == Sign::kPositive && b == Sign::kPositive) ? Sign::kPositive
                                                              : Sign::kNonNegative;
      }
      if (SignIsNonPositive(a) || SignIsNonPositive(b)) {
        return (a == Sign::kNegative || b == Sign::kNegative) ? Sign::kNegative
                                                              : Sign::kNonPositive;
      }
      return Sign::kUnknown;
    }
    case Op::kMax: {
      const Sign a = TermSign(t->args[0], cs);
      const Sign b = TermSign(t->args[1], cs);
      if (SignIsNonNegative(a) || SignIsNonNegative(b)) {
        return (a == Sign::kPositive || b == Sign::kPositive) ? Sign::kPositive
                                                              : Sign::kNonNegative;
      }
      if (SignIsNonPositive(a) && SignIsNonPositive(b)) {
        return (a == Sign::kNegative && b == Sign::kNegative) ? Sign::kNegative
                                                              : Sign::kNonPositive;
      }
      return Sign::kUnknown;
    }
    case Op::kRelu:
      return SignIsStrictlyPositive(TermSign(t->args[0], cs)) ? Sign::kPositive
                                                              : Sign::kNonNegative;
    case Op::kAbs: {
      const Sign a = TermSign(t->args[0], cs);
      if (a == Sign::kZero) return Sign::kZero;
      if (a == Sign::kPositive || a == Sign::kNegative) return Sign::kPositive;
      return Sign::kNonNegative;
    }
    default:
      return Sign::kUnknown;
  }
}

namespace {

bool DependsOn(const TermPtr& t, const std::string& var) {
  if (t->op == Op::kVar) return t->var == var;
  for (const auto& a : t->args) {
    if (DependsOn(a, var)) return true;
  }
  return false;
}

Monotonicity Flip(Monotonicity m) {
  if (m == Monotonicity::kNondecreasing) return Monotonicity::kNonincreasing;
  if (m == Monotonicity::kNonincreasing) return Monotonicity::kNondecreasing;
  return m;
}

Monotonicity Combine(Monotonicity a, Monotonicity b) {
  if (a == Monotonicity::kConstant) return b;
  if (b == Monotonicity::kConstant) return a;
  if (a == b) return a;
  return Monotonicity::kUnknown;
}

}  // namespace

Monotonicity MonotoneIn(const TermPtr& t, const std::string& var,
                        const ConstraintSet& cs) {
  if (!DependsOn(t, var)) return Monotonicity::kConstant;
  switch (t->op) {
    case Op::kVar:
      return Monotonicity::kNondecreasing;
    case Op::kAdd:
      return Combine(MonotoneIn(t->args[0], var, cs), MonotoneIn(t->args[1], var, cs));
    case Op::kSub:
      return Combine(MonotoneIn(t->args[0], var, cs),
                     Flip(MonotoneIn(t->args[1], var, cs)));
    case Op::kNeg:
      return Flip(MonotoneIn(t->args[0], var, cs));
    case Op::kMul: {
      // t = a * b. Handle the cases where one side is var-free with known sign.
      const TermPtr& a = t->args[0];
      const TermPtr& b = t->args[1];
      if (!DependsOn(a, var)) {
        const Sign sa = TermSign(a, cs);
        const Monotonicity mb = MonotoneIn(b, var, cs);
        if (SignIsNonNegative(sa)) return mb;
        if (SignIsNonPositive(sa)) return Flip(mb);
        return Monotonicity::kUnknown;
      }
      if (!DependsOn(b, var)) {
        const Sign sb = TermSign(b, cs);
        const Monotonicity ma = MonotoneIn(a, var, cs);
        if (SignIsNonNegative(sb)) return ma;
        if (SignIsNonPositive(sb)) return Flip(ma);
        return Monotonicity::kUnknown;
      }
      // Both sides depend on var: nondecreasing * nondecreasing is monotone
      // only with sign knowledge of both sides.
      const Sign sa = TermSign(a, cs);
      const Sign sb = TermSign(b, cs);
      const Monotonicity ma = MonotoneIn(a, var, cs);
      const Monotonicity mb = MonotoneIn(b, var, cs);
      if (SignIsNonNegative(sa) && SignIsNonNegative(sb) &&
          ma == Monotonicity::kNondecreasing && mb == Monotonicity::kNondecreasing) {
        return Monotonicity::kNondecreasing;
      }
      return Monotonicity::kUnknown;
    }
    case Op::kDiv: {
      const TermPtr& a = t->args[0];
      const TermPtr& b = t->args[1];
      if (DependsOn(b, var)) return Monotonicity::kUnknown;
      const Sign sb = TermSign(b, cs);
      const Monotonicity ma = MonotoneIn(a, var, cs);
      if (SignIsStrictlyPositive(sb)) return ma;
      if (SignIsStrictlyNegative(sb)) return Flip(ma);
      return Monotonicity::kUnknown;
    }
    case Op::kMin:
    case Op::kMax:
      return Combine(MonotoneIn(t->args[0], var, cs), MonotoneIn(t->args[1], var, cs));
    case Op::kRelu: {
      // relu is a nondecreasing function of its input.
      return MonotoneIn(t->args[0], var, cs);
    }
    case Op::kAbs:
    default:
      return Monotonicity::kUnknown;
  }
}

}  // namespace powerlog::smt
