// Min/max normal form: flattens a term into "min{e1,...,ek}" (or max) where
// each element is relu^r(p) for a polynomial p (r = 0 for plain atoms).
//
// This decides Property 2 for min/max aggregates: both sides of
// G∘F'∘G(X) = G∘F'(X) flatten to the same element set exactly when the
// identity holds, provided every operation pushed through the lattice op is
// monotone (enforced via sign analysis: multiplying a min-set by a factor of
// unknown sign aborts normalisation and defers to counterexample search).
// relu — monotone nondecreasing — distributes over min/max, hence the
// relu-wrapped elements; this widens the checker beyond the paper's Z3
// encoding to piecewise-monotone F' like relu(a·x + b) with a >= 0.
#pragma once

#include <vector>

#include "common/result.h"
#include "smt/monotone.h"
#include "smt/polynomial.h"
#include "smt/term.h"

namespace powerlog::smt {

/// \brief One element of a lattice normal form: relu^r(poly).
struct LatticeElem {
  Polynomial poly;
  int relu_wraps = 0;  ///< 0 or 1 (relu is idempotent)

  bool operator==(const LatticeElem& o) const {
    return relu_wraps == o.relu_wraps && poly == o.poly;
  }
  std::string ToString() const;
};

/// \brief A term in lattice normal form.
struct MinMaxForm {
  enum class Kind { kAtom, kMin, kMax };
  Kind kind = Kind::kAtom;
  /// For kAtom: exactly one element. For kMin/kMax: >= 1 elements,
  /// deduplicated and sorted canonically.
  std::vector<LatticeElem> elems;

  /// Canonicalises: sorts elements, removes duplicates, demotes singleton
  /// min/max to atoms.
  void Canonicalize();

  bool operator==(const MinMaxForm& o) const;

  std::string ToString() const;
};

/// Normalises `t` under sign constraints `cs`. Fails with NotSupported when
/// a transformation cannot be justified (e.g. arithmetic on relu-wrapped
/// elements, multiplier of unknown sign, min-set divided by min-set).
Result<MinMaxForm> NormalizeMinMax(const TermPtr& t, const ConstraintSet& cs);

}  // namespace powerlog::smt
