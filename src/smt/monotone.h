// Sign and monotonicity analysis over the term fragment.
//
// The min/max normal form needs to know (a) the sign of multipliers to push
// them through min/max, and (b) whether F' is monotone in its recursive
// input. Side constraints ("d > 0" for a degree column, "w >= 0" for a
// probability) are carried in a ConstraintSet.
#pragma once

#include <map>
#include <string>

#include "smt/term.h"

namespace powerlog::smt {

/// Best-effort sign knowledge for a variable or term.
enum class Sign {
  kUnknown,
  kZero,
  kPositive,     // > 0
  kNonNegative,  // >= 0
  kNegative,     // < 0
  kNonPositive,  // <= 0
};

/// \brief Variable sign assumptions ("d" -> kPositive, etc.).
struct ConstraintSet {
  std::map<std::string, Sign> var_signs;

  void Assume(const std::string& var, Sign sign) { var_signs[var] = sign; }
  Sign SignOf(const std::string& var) const {
    auto it = var_signs.find(var);
    return it == var_signs.end() ? Sign::kUnknown : it->second;
  }
};

/// Structural sign inference for `t` under `cs`.
Sign TermSign(const TermPtr& t, const ConstraintSet& cs);

/// Derivative-sign classification of `t` as a function of `var`.
enum class Monotonicity {
  kConstant,       // does not depend on var
  kNondecreasing,
  kNonincreasing,
  kUnknown,
};

Monotonicity MonotoneIn(const TermPtr& t, const std::string& var,
                        const ConstraintSet& cs);

/// Sign algebra helpers (exposed for tests).
Sign SignNegate(Sign s);
Sign SignAdd(Sign a, Sign b);
Sign SignMul(Sign a, Sign b);
bool SignIsNonNegative(Sign s);  // kZero/kPositive/kNonNegative
bool SignIsNonPositive(Sign s);  // kZero/kNegative/kNonPositive
bool SignIsStrictlyPositive(Sign s);
bool SignIsStrictlyNegative(Sign s);

}  // namespace powerlog::smt
