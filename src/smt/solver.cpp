#include "smt/solver.h"

namespace powerlog::smt {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kValid:
      return "valid";
    case Verdict::kInvalid:
      return "invalid";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "?";
}

CheckReport Solver::CheckEqualValid(const TermPtr& lhs, const TermPtr& rhs) const {
  CheckReport report;

  // 1. Polynomial normal forms.
  auto pl = Polynomial::FromTerm(lhs);
  auto pr = Polynomial::FromTerm(rhs);
  if (pl.ok() && pr.ok() && !pl->overflowed() && !pr->overflowed()) {
    if (*pl == *pr) {
      report.verdict = Verdict::kValid;
      report.method = "polynomial";
      report.explanation = "identical polynomial normal form: " + pl->ToString();
      return report;
    }
    // Normal forms differ. With reciprocal pseudo-variables this may be a
    // false negative, so confirm by witness; without them the difference is a
    // genuinely nonzero polynomial.
    auto cx = FindCounterexample(lhs, rhs, constraints_, search_);
    if (cx) {
      report.verdict = Verdict::kInvalid;
      report.method = "polynomial+counterexample";
      report.explanation = "counterexample: " + cx->ToString();
      report.counterexample = cx;
      return report;
    }
    if (!pl->HasReciprocal() && !pr->HasReciprocal()) {
      report.verdict = Verdict::kInvalid;
      report.method = "polynomial";
      report.explanation = "differing polynomial normal forms: " + pl->ToString() +
                           "  vs  " + pr->ToString();
      return report;
    }
    report.verdict = Verdict::kUnknown;
    report.method = "polynomial";
    report.explanation =
        "normal forms differ but involve reciprocals and no witness was found";
    return report;
  }

  // 2. Min/max lattice normal forms.
  auto ml = NormalizeMinMax(lhs, constraints_);
  auto mr = NormalizeMinMax(rhs, constraints_);
  if (ml.ok() && mr.ok()) {
    if (*ml == *mr) {
      report.verdict = Verdict::kValid;
      report.method = "minmax";
      report.explanation = "identical lattice normal form: " + ml->ToString();
      return report;
    }
    auto cx = FindCounterexample(lhs, rhs, constraints_, search_);
    if (cx) {
      report.verdict = Verdict::kInvalid;
      report.method = "minmax+counterexample";
      report.explanation = "counterexample: " + cx->ToString();
      report.counterexample = cx;
      return report;
    }
    // Differing lattice forms without a witness can arise from ordered
    // elements (min{x, x+1} == min{x}); stay conservative.
    report.verdict = Verdict::kUnknown;
    report.method = "minmax";
    report.explanation = "lattice forms differ (" + ml->ToString() + " vs " +
                         mr->ToString() + ") but no witness was found";
    return report;
  }

  // 3. Pure refutation search.
  auto cx = FindCounterexample(lhs, rhs, constraints_, search_);
  if (cx) {
    report.verdict = Verdict::kInvalid;
    report.method = "counterexample";
    report.explanation = "counterexample: " + cx->ToString();
    report.counterexample = cx;
    return report;
  }
  report.verdict = Verdict::kUnknown;
  report.method = "exhausted";
  report.explanation = "no normal form applies and no counterexample was found";
  return report;
}

}  // namespace powerlog::smt
