// Multivariate polynomial normal form over exact rationals.
//
// Deciding Property 2 for `sum`/`count` aggregates reduces to equality of
// polynomial normal forms. Division by a non-constant subterm `b` is handled
// by introducing a reciprocal pseudo-variable "recip[b]" — sound for the
// VALID direction (equal normal forms imply equal terms wherever defined);
// when normal forms differ and reciprocals are involved the solver falls
// back to counterexample search instead of declaring invalidity.
#pragma once

#include <map>
#include <string>

#include "common/result.h"
#include "smt/term.h"

namespace powerlog::smt {

/// Monomial: variable name -> positive integer power. Empty map == 1.
using Monomial = std::map<std::string, int>;

/// \brief Canonical sum of monomials with rational coefficients.
class Polynomial {
 public:
  Polynomial() = default;

  static Polynomial Constant(const Rational& c);
  static Polynomial Variable(const std::string& name);

  /// Converts a term; fails with NotSupported on min/max/relu/abs/ite and
  /// with OutOfRange if rational arithmetic overflows.
  static Result<Polynomial> FromTerm(const TermPtr& t);

  Polynomial operator+(const Polynomial& o) const;
  Polynomial operator-(const Polynomial& o) const;
  Polynomial operator*(const Polynomial& o) const;
  Polynomial operator-() const;
  Polynomial Scale(const Rational& c) const;

  bool IsZero() const { return terms_.empty(); }
  bool IsConstant() const;
  /// Constant value if IsConstant() (zero polynomial -> 0).
  Rational ConstantValue() const;

  bool operator==(const Polynomial& o) const { return terms_ == o.terms_; }
  bool operator!=(const Polynomial& o) const { return !(*this == o); }

  /// True if any coefficient overflowed during construction.
  bool overflowed() const { return overflowed_; }

  /// True if any monomial mentions a reciprocal pseudo-variable.
  bool HasReciprocal() const;

  /// Deterministic text form, e.g. "17/20*x*y + -1*z + 3".
  std::string ToString() const;

  const std::map<Monomial, Rational>& terms() const { return terms_; }

 private:
  void AddTerm(const Monomial& m, const Rational& c);

  std::map<Monomial, Rational> terms_;
  bool overflowed_ = false;
};

}  // namespace powerlog::smt
