#include "smt/printer.h"

#include "common/string_util.h"

namespace powerlog::smt {
namespace {

int Precedence(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
      return 1;
    case Op::kMul:
    case Op::kDiv:
      return 2;
    case Op::kNeg:
      return 3;
    default:
      return 4;
  }
}

std::string InfixImpl(const TermPtr& t, int parent_prec) {
  const int prec = Precedence(t->op);
  std::string out;
  switch (t->op) {
    case Op::kConst:
      out = t->value.ToString();
      break;
    case Op::kVar:
      out = t->var;
      break;
    case Op::kAdd:
      out = InfixImpl(t->args[0], prec) + " + " + InfixImpl(t->args[1], prec + 1);
      break;
    case Op::kSub:
      out = InfixImpl(t->args[0], prec) + " - " + InfixImpl(t->args[1], prec + 1);
      break;
    case Op::kMul:
      out = InfixImpl(t->args[0], prec) + "*" + InfixImpl(t->args[1], prec + 1);
      break;
    case Op::kDiv:
      out = InfixImpl(t->args[0], prec) + "/" + InfixImpl(t->args[1], prec + 1);
      break;
    case Op::kNeg:
      out = "-" + InfixImpl(t->args[0], prec);
      break;
    case Op::kLt:
      out = InfixImpl(t->args[0], 0) + " < " + InfixImpl(t->args[1], 0);
      break;
    case Op::kLe:
      out = InfixImpl(t->args[0], 0) + " <= " + InfixImpl(t->args[1], 0);
      break;
    case Op::kEq:
      out = InfixImpl(t->args[0], 0) + " = " + InfixImpl(t->args[1], 0);
      break;
    default: {
      out = OpName(t->op);
      out += "(";
      for (size_t i = 0; i < t->args.size(); ++i) {
        if (i) out += ", ";
        out += InfixImpl(t->args[i], 0);
      }
      out += ")";
      return out;  // function syntax needs no parens
    }
  }
  if (prec < parent_prec) return "(" + out + ")";
  return out;
}

}  // namespace

std::string ToSmtLib(const TermPtr& t) {
  switch (t->op) {
    case Op::kConst: {
      if (t->value.den() == 1) {
        if (t->value.num() < 0) {
          return StringFormat("(- %lld)",
                              static_cast<long long>(-t->value.num()));
        }
        return std::to_string(t->value.num());
      }
      return StringFormat("(/ %lld %lld)", static_cast<long long>(t->value.num()),
                          static_cast<long long>(t->value.den()));
    }
    case Op::kVar:
      return t->var;
    case Op::kRelu:
      return "(ite (> " + ToSmtLib(t->args[0]) + " 0) " + ToSmtLib(t->args[0]) + " 0)";
    default:
      break;
  }
  std::string head;
  switch (t->op) {
    case Op::kAdd: head = "+"; break;
    case Op::kSub: head = "-"; break;
    case Op::kMul: head = "*"; break;
    case Op::kDiv: head = "/"; break;
    case Op::kNeg: head = "-"; break;
    case Op::kMin: head = "min"; break;
    case Op::kMax: head = "max"; break;
    case Op::kAbs: head = "abs"; break;
    case Op::kIte: head = "ite"; break;
    case Op::kLt: head = "<"; break;
    case Op::kLe: head = "<="; break;
    case Op::kEq: head = "="; break;
    default: head = OpName(t->op); break;
  }
  std::string out = "(" + head;
  for (const auto& a : t->args) {
    out += " ";
    out += ToSmtLib(a);
  }
  out += ")";
  return out;
}

std::string ToInfix(const TermPtr& t) { return InfixImpl(t, 0); }

std::string ToSmtLibScript(const TermPtr& lhs, const TermPtr& rhs,
                           const ConstraintSet& cs) {
  std::string out;
  // Declare constrained symbols as constants (as Fig. 4 declares d).
  for (const auto& [var, sign] : cs.var_signs) {
    out += "(declare-const " + var + " Real)\n";
    switch (sign) {
      case Sign::kPositive: out += "(assert (> " + var + " 0))\n"; break;
      case Sign::kNonNegative: out += "(assert (>= " + var + " 0))\n"; break;
      case Sign::kNegative: out += "(assert (< " + var + " 0))\n"; break;
      case Sign::kNonPositive: out += "(assert (<= " + var + " 0))\n"; break;
      case Sign::kZero: out += "(assert (= " + var + " 0))\n"; break;
      case Sign::kUnknown: break;
    }
  }
  // Universally quantified variables: those not constrained.
  std::vector<std::string> qvars;
  for (const auto& v : CollectVars(EqTerm(lhs, rhs))) {
    if (cs.var_signs.count(v) == 0) qvars.push_back(v);
  }
  out += "(assert (not (forall (";
  for (size_t i = 0; i < qvars.size(); ++i) {
    if (i) out += " ";
    out += "(" + qvars[i] + " Real)";
  }
  out += ")\n  (= " + ToSmtLib(lhs) + "\n     " + ToSmtLib(rhs) + "))))\n";
  out += "(check-sat)\n";
  return out;
}

}  // namespace powerlog::smt
