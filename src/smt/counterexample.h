// Counterexample search: the "sat" half of the checker.
//
// To refute "lhs == rhs always", we search for a variable assignment (a
// model) where the two sides differ, honoring sign constraints. The search
// combines a structured grid over adversarial values (0, ±1, small, large,
// sign boundaries — the values that expose relu/abs/mean failures) with
// random sampling.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "smt/monotone.h"
#include "smt/term.h"

namespace powerlog::smt {

struct SearchOptions {
  int grid_vars_limit = 5;     ///< full grid only up to this many variables
  int random_samples = 20000;
  uint64_t seed = 0xC0FFEE;
  double tolerance = 1e-7;     ///< relative tolerance for "differs"
};

/// \brief A falsifying assignment plus the two observed values.
struct Counterexample {
  std::map<std::string, double> assignment;
  double lhs_value;
  double rhs_value;

  std::string ToString() const;
};

/// Searches for env with |lhs(env) - rhs(env)| > tol*(1+|lhs|+|rhs|), where
/// every variable respects its constraint sign. Returns nullopt if none found.
std::optional<Counterexample> FindCounterexample(const TermPtr& lhs, const TermPtr& rhs,
                                                 const ConstraintSet& cs,
                                                 const SearchOptions& options = {});

}  // namespace powerlog::smt
