// Term pretty-printers: SMT-LIB s-expressions (mirroring the paper's Fig. 4
// Z3 encoding) and infix for diagnostics.
#pragma once

#include <string>

#include "smt/monotone.h"
#include "smt/term.h"

namespace powerlog::smt {

/// "(+ (* x (/ 17 20)) y)" — SMT-LIB 2 style.
std::string ToSmtLib(const TermPtr& t);

/// "x*17/20 + y" — conventional infix with minimal parens.
std::string ToInfix(const TermPtr& t);

/// Renders a full (assert (not (forall ...))) script for the equality
/// lhs == rhs under `cs`, as the paper's Fig. 4 shows for PageRank.
std::string ToSmtLibScript(const TermPtr& lhs, const TermPtr& rhs,
                           const ConstraintSet& cs);

}  // namespace powerlog::smt
