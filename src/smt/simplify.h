// Structural simplification: constant folding and identity elimination.
// Keeps checker inputs small and printer output readable; never changes
// semantics (division by a symbolic zero is left untouched).
#pragma once

#include "smt/term.h"

namespace powerlog::smt {

/// Returns an equivalent, usually smaller, term:
///  * folds constant subterms with exact rational arithmetic,
///  * removes +0, *1, *0 (only when the other operand is total), neg(neg x),
///  * collapses min(x,x)/max(x,x), relu(c) for constants.
TermPtr Simplify(const TermPtr& t);

}  // namespace powerlog::smt
