#include "smt/counterexample.h"

#include <cmath>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace powerlog::smt {
namespace {

/// Candidate grid values per sign class. Includes the boundary-crossing
/// values that break piecewise-linear identities (relu) and the asymmetric
/// values that break mean-style averaging.
std::vector<double> GridValues(Sign sign) {
  switch (sign) {
    case Sign::kPositive:
      return {0.25, 0.5, 1.0, 2.0, 3.0, 10.0};
    case Sign::kNonNegative:
      return {0.0, 0.5, 1.0, 2.0, 5.0};
    case Sign::kNegative:
      return {-0.25, -1.0, -2.0, -10.0};
    case Sign::kNonPositive:
      return {0.0, -0.5, -1.0, -3.0};
    case Sign::kZero:
      return {0.0};
    case Sign::kUnknown:
      return {-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 3.0};
  }
  return {0.0, 1.0};
}

double RandomValue(Rng& rng, Sign sign) {
  const double magnitude = std::exp(rng.NextDouble(-2.0, 4.0));  // ~[0.13, 54]
  switch (sign) {
    case Sign::kPositive:
      return magnitude;
    case Sign::kNonNegative:
      return rng.NextBool(0.1) ? 0.0 : magnitude;
    case Sign::kNegative:
      return -magnitude;
    case Sign::kNonPositive:
      return rng.NextBool(0.1) ? 0.0 : -magnitude;
    case Sign::kZero:
      return 0.0;
    case Sign::kUnknown:
      return rng.NextBool(0.5) ? magnitude : -magnitude;
  }
  return 0.0;
}

bool Differs(double a, double b, double tol) {
  if (std::isnan(a) || std::isnan(b)) return false;  // undefined point: skip
  return std::abs(a - b) > tol * (1.0 + std::abs(a) + std::abs(b));
}

}  // namespace

std::string Counterexample::ToString() const {
  std::vector<std::string> parts;
  for (const auto& [var, val] : assignment) {
    parts.push_back(StringFormat("%s=%g", var.c_str(), val));
  }
  return StringFormat("{%s} -> lhs=%g, rhs=%g", Join(parts, ", ").c_str(), lhs_value,
                      rhs_value);
}

std::optional<Counterexample> FindCounterexample(const TermPtr& lhs, const TermPtr& rhs,
                                                 const ConstraintSet& cs,
                                                 const SearchOptions& options) {
  // Merge the variable sets of both sides.
  std::set<std::string> var_set;
  for (const auto& v : CollectVars(lhs)) var_set.insert(v);
  for (const auto& v : CollectVars(rhs)) var_set.insert(v);
  const std::vector<std::string> vars(var_set.begin(), var_set.end());

  auto test = [&](const std::map<std::string, double>& env)
      -> std::optional<Counterexample> {
    auto lv = Evaluate(lhs, env);
    auto rv = Evaluate(rhs, env);
    if (!lv.ok() || !rv.ok()) return std::nullopt;  // undefined point
    if (Differs(*lv, *rv, options.tolerance)) {
      return Counterexample{env, *lv, *rv};
    }
    return std::nullopt;
  };

  if (vars.empty()) {
    return test({});
  }

  // Phase 1: exhaustive grid when the cross product is tractable.
  if (static_cast<int>(vars.size()) <= options.grid_vars_limit) {
    std::vector<std::vector<double>> values;
    size_t total = 1;
    for (const auto& v : vars) {
      values.push_back(GridValues(cs.SignOf(v)));
      total *= values.back().size();
      if (total > 2000000) break;
    }
    if (values.size() == vars.size() && total <= 2000000) {
      std::vector<size_t> idx(vars.size(), 0);
      while (true) {
        std::map<std::string, double> env;
        for (size_t i = 0; i < vars.size(); ++i) env[vars[i]] = values[i][idx[i]];
        if (auto cx = test(env)) return cx;
        // Advance the mixed-radix counter.
        size_t i = 0;
        while (i < idx.size()) {
          if (++idx[i] < values[i].size()) break;
          idx[i] = 0;
          ++i;
        }
        if (i == idx.size()) break;
      }
    }
  }

  // Phase 2: random sampling.
  Rng rng(options.seed);
  for (int s = 0; s < options.random_samples; ++s) {
    std::map<std::string, double> env;
    for (const auto& v : vars) env[v] = RandomValue(rng, cs.SignOf(v));
    if (auto cx = test(env)) return cx;
  }
  return std::nullopt;
}

}  // namespace powerlog::smt
