// Exact rational arithmetic for the polynomial normal form.
//
// The checker must decide term equalities *exactly*; floating point would
// turn "G∘F'∘G == G∘F'" into a tolerance judgement. Numerator/denominator
// are int64 with overflow detection: an overflowing operation poisons the
// value, and the solver degrades to "unknown" rather than mis-deciding.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace powerlog::smt {

/// \brief Normalised rational p/q (q > 0, gcd(p,q)=1) with an overflow flag.
class Rational {
 public:
  constexpr Rational() : num_(0), den_(1), overflow_(false) {}
  Rational(int64_t num, int64_t den);

  static Rational FromInt(int64_t v) { return Rational(v, 1); }

  /// Best rational approximation of `v` by continued fractions; exact for the
  /// decimal literals appearing in Datalog programs (0.85 -> 17/20).
  static Rational FromDouble(double v);

  /// Parses a decimal literal exactly ("0.85" -> 17/20, "-3" -> -3/1).
  static Result<Rational> FromDecimalString(const std::string& text);

  bool overflow() const { return overflow_; }
  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool IsZero() const { return !overflow_ && num_ == 0; }
  bool IsOne() const { return !overflow_ && num_ == 1 && den_ == 1; }
  bool IsNegative() const { return !overflow_ && num_ < 0; }

  double ToDouble() const;
  std::string ToString() const;

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Division by zero yields an overflow-poisoned value.
  Rational operator/(const Rational& o) const;
  Rational operator-() const;

  bool operator==(const Rational& o) const {
    // Poisoned values never compare equal (mirrors NaN).
    if (overflow_ || o.overflow_) return false;
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }

  /// Total order (overflow sorts last); used for canonical term ordering.
  bool operator<(const Rational& o) const;

 private:
  static Rational Poisoned() {
    Rational r;
    r.overflow_ = true;
    return r;
  }

  int64_t num_;
  int64_t den_;
  bool overflow_;
};

}  // namespace powerlog::smt
