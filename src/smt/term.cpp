#include "smt/term.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace powerlog::smt {

const char* OpName(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kVar: return "var";
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kNeg: return "neg";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kRelu: return "relu";
    case Op::kAbs: return "abs";
    case Op::kIte: return "ite";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kEq: return "=";
  }
  return "?";
}

bool Term::Equals(const Term& other) const {
  if (op != other.op) return false;
  if (op == Op::kConst) return value == other.value;
  if (op == Op::kVar) return var == other.var;
  if (args.size() != other.args.size()) return false;
  for (size_t i = 0; i < args.size(); ++i) {
    if (!args[i]->Equals(*other.args[i])) return false;
  }
  return true;
}

size_t Term::Size() const {
  size_t n = 1;
  for (const auto& a : args) n += a->Size();
  return n;
}

namespace {
TermPtr Make(Op op, std::vector<TermPtr> args) {
  auto t = std::make_shared<Term>();
  t->op = op;
  t->args = std::move(args);
  return t;
}
}  // namespace

TermPtr Const(const Rational& value) {
  auto t = std::make_shared<Term>();
  t->op = Op::kConst;
  t->value = value;
  return t;
}

TermPtr ConstInt(int64_t v) { return Const(Rational::FromInt(v)); }
TermPtr ConstDouble(double v) { return Const(Rational::FromDouble(v)); }

TermPtr Var(const std::string& name) {
  auto t = std::make_shared<Term>();
  t->op = Op::kVar;
  t->var = name;
  return t;
}

TermPtr Add(TermPtr a, TermPtr b) { return Make(Op::kAdd, {std::move(a), std::move(b)}); }
TermPtr Sub(TermPtr a, TermPtr b) { return Make(Op::kSub, {std::move(a), std::move(b)}); }
TermPtr Mul(TermPtr a, TermPtr b) { return Make(Op::kMul, {std::move(a), std::move(b)}); }
TermPtr Div(TermPtr a, TermPtr b) { return Make(Op::kDiv, {std::move(a), std::move(b)}); }
TermPtr Neg(TermPtr a) { return Make(Op::kNeg, {std::move(a)}); }
TermPtr Min(TermPtr a, TermPtr b) { return Make(Op::kMin, {std::move(a), std::move(b)}); }
TermPtr Max(TermPtr a, TermPtr b) { return Make(Op::kMax, {std::move(a), std::move(b)}); }
TermPtr Relu(TermPtr a) { return Make(Op::kRelu, {std::move(a)}); }
TermPtr Abs(TermPtr a) { return Make(Op::kAbs, {std::move(a)}); }
TermPtr Ite(TermPtr cond, TermPtr t, TermPtr f) {
  return Make(Op::kIte, {std::move(cond), std::move(t), std::move(f)});
}
TermPtr Lt(TermPtr a, TermPtr b) { return Make(Op::kLt, {std::move(a), std::move(b)}); }
TermPtr Le(TermPtr a, TermPtr b) { return Make(Op::kLe, {std::move(a), std::move(b)}); }
TermPtr EqTerm(TermPtr a, TermPtr b) { return Make(Op::kEq, {std::move(a), std::move(b)}); }

namespace {
void CollectVarsInto(const TermPtr& t, std::set<std::string>& out) {
  if (t->op == Op::kVar) {
    out.insert(t->var);
    return;
  }
  for (const auto& a : t->args) CollectVarsInto(a, out);
}
}  // namespace

std::vector<std::string> CollectVars(const TermPtr& t) {
  std::set<std::string> vars;
  CollectVarsInto(t, vars);
  return {vars.begin(), vars.end()};
}

TermPtr Substitute(const TermPtr& t, const std::map<std::string, TermPtr>& subst) {
  if (t->op == Op::kVar) {
    auto it = subst.find(t->var);
    return it == subst.end() ? t : it->second;
  }
  if (t->args.empty()) return t;
  std::vector<TermPtr> args;
  args.reserve(t->args.size());
  bool changed = false;
  for (const auto& a : t->args) {
    TermPtr na = Substitute(a, subst);
    changed = changed || na.get() != a.get();
    args.push_back(std::move(na));
  }
  if (!changed) return t;
  auto nt = std::make_shared<Term>();
  nt->op = t->op;
  nt->value = t->value;
  nt->var = t->var;
  nt->args = std::move(args);
  return nt;
}

Result<double> Evaluate(const TermPtr& t, const std::map<std::string, double>& env) {
  switch (t->op) {
    case Op::kConst:
      if (t->value.overflow()) return Status::Internal("overflowed constant");
      return t->value.ToDouble();
    case Op::kVar: {
      auto it = env.find(t->var);
      if (it == env.end()) return Status::NotFound("unbound variable: " + t->var);
      return it->second;
    }
    default:
      break;
  }
  std::vector<double> vals;
  vals.reserve(t->args.size());
  // kIte evaluates lazily below; others evaluate all operands.
  if (t->op != Op::kIte) {
    for (const auto& a : t->args) {
      auto v = Evaluate(a, env);
      if (!v.ok()) return v;
      vals.push_back(*v);
    }
  }
  switch (t->op) {
    case Op::kAdd: return vals[0] + vals[1];
    case Op::kSub: return vals[0] - vals[1];
    case Op::kMul: return vals[0] * vals[1];
    case Op::kDiv:
      if (std::abs(vals[1]) < 1e-12) return Status::InvalidArgument("division by ~0");
      return vals[0] / vals[1];
    case Op::kNeg: return -vals[0];
    case Op::kMin: return std::min(vals[0], vals[1]);
    case Op::kMax: return std::max(vals[0], vals[1]);
    case Op::kRelu: return vals[0] > 0 ? vals[0] : 0.0;
    case Op::kAbs: return std::abs(vals[0]);
    case Op::kLt: return vals[0] < vals[1] ? 1.0 : 0.0;
    case Op::kLe: return vals[0] <= vals[1] ? 1.0 : 0.0;
    case Op::kEq: return vals[0] == vals[1] ? 1.0 : 0.0;
    case Op::kIte: {
      auto c = Evaluate(t->args[0], env);
      if (!c.ok()) return c;
      return Evaluate(*c != 0.0 ? t->args[1] : t->args[2], env);
    }
    default:
      return Status::Internal("unexpected op in Evaluate");
  }
}

}  // namespace powerlog::smt
