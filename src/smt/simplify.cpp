#include "smt/simplify.h"

#include <algorithm>

namespace powerlog::smt {
namespace {

bool IsConst(const TermPtr& t) { return t->op == Op::kConst && !t->value.overflow(); }

bool IsZero(const TermPtr& t) { return IsConst(t) && t->value.IsZero(); }
bool IsOne(const TermPtr& t) { return IsConst(t) && t->value.IsOne(); }

/// True if evaluating t cannot fault (no division).
bool IsTotal(const TermPtr& t) {
  if (t->op == Op::kDiv) return false;
  return std::all_of(t->args.begin(), t->args.end(),
                     [](const TermPtr& a) { return IsTotal(a); });
}

}  // namespace

TermPtr Simplify(const TermPtr& t) {
  if (t->args.empty()) return t;
  std::vector<TermPtr> args;
  args.reserve(t->args.size());
  for (const auto& a : t->args) args.push_back(Simplify(a));

  auto rebuilt = [&]() -> TermPtr {
    auto nt = std::make_shared<Term>();
    nt->op = t->op;
    nt->value = t->value;
    nt->var = t->var;
    nt->args = args;
    return nt;
  };

  // Constant folding for fully-constant operands.
  const bool all_const =
      std::all_of(args.begin(), args.end(), [](const TermPtr& a) { return IsConst(a); });
  if (all_const && t->op != Op::kIte) {
    const Rational& a = args[0]->value;
    switch (t->op) {
      case Op::kAdd: return Const(a + args[1]->value);
      case Op::kSub: return Const(a - args[1]->value);
      case Op::kMul: return Const(a * args[1]->value);
      case Op::kDiv: {
        if (args[1]->value.IsZero()) return rebuilt();  // keep fault visible
        Rational r = a / args[1]->value;
        if (r.overflow()) return rebuilt();
        return Const(r);
      }
      case Op::kNeg: return Const(-a);
      case Op::kMin: return Const(a < args[1]->value ? a : args[1]->value);
      case Op::kMax: return Const(a < args[1]->value ? args[1]->value : a);
      case Op::kRelu: return Const(a.IsNegative() ? Rational() : a);
      case Op::kAbs: return Const(a.IsNegative() ? -a : a);
      case Op::kLt: return ConstInt(a < args[1]->value ? 1 : 0);
      case Op::kLe: return ConstInt(!(args[1]->value < a) ? 1 : 0);
      case Op::kEq: return ConstInt(a == args[1]->value ? 1 : 0);
      default: break;
    }
  }

  switch (t->op) {
    case Op::kAdd:
      if (IsZero(args[0])) return args[1];
      if (IsZero(args[1])) return args[0];
      break;
    case Op::kSub:
      if (IsZero(args[1])) return args[0];
      break;
    case Op::kMul:
      if (IsOne(args[0])) return args[1];
      if (IsOne(args[1])) return args[0];
      // x*0 == 0 only when x cannot fault.
      if (IsZero(args[0]) && IsTotal(args[1])) return args[0];
      if (IsZero(args[1]) && IsTotal(args[0])) return args[1];
      break;
    case Op::kDiv:
      if (IsOne(args[1])) return args[0];
      break;
    case Op::kNeg:
      if (args[0]->op == Op::kNeg) return args[0]->args[0];
      break;
    case Op::kMin:
    case Op::kMax:
      if (args[0]->Equals(*args[1])) return args[0];
      break;
    case Op::kIte:
      if (IsConst(args[0])) {
        return args[0]->value.IsZero() ? args[2] : args[1];
      }
      if (args[1]->Equals(*args[2])) return args[1];
      break;
    default:
      break;
  }
  return rebuilt();
}

}  // namespace powerlog::smt
