#include "smt/rational.h"

#include <cmath>
#include <cstdlib>
#include <numeric>

#include "common/string_util.h"

namespace powerlog::smt {
namespace {

using int128 = __int128;

bool FitsInt64(int128 v) {
  return v >= static_cast<int128>(INT64_MIN) && v <= static_cast<int128>(INT64_MAX);
}

int64_t Gcd64(int64_t a, int64_t b) {
  a = std::llabs(a);
  b = std::llabs(b);
  while (b) {
    int64_t t = a % b;
    a = b;
    b = t;
  }
  return a == 0 ? 1 : a;
}

int128 Gcd128(int128 a, int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b) {
    int128 t = a % b;
    a = b;
    b = t;
  }
  return a == 0 ? 1 : a;
}

}  // namespace

Rational::Rational(int64_t num, int64_t den) : num_(num), den_(den), overflow_(false) {
  if (den_ == 0) {
    overflow_ = true;
    num_ = 0;
    den_ = 1;
    return;
  }
  if (den_ < 0) {
    // Avoid overflow on INT64_MIN negation.
    if (num_ == INT64_MIN || den_ == INT64_MIN) {
      overflow_ = true;
      num_ = 0;
      den_ = 1;
      return;
    }
    num_ = -num_;
    den_ = -den_;
  }
  const int64_t g = Gcd64(num_, den_);
  num_ /= g;
  den_ /= g;
}

Rational Rational::FromDouble(double v) {
  if (!std::isfinite(v)) return Poisoned();
  // Continued-fraction expansion with denominator bound 1e12.
  const double kEps = 1e-12;
  const int64_t kMaxDen = 1000000000000LL;
  double x = v;
  int64_t p0 = 0, q0 = 1, p1 = 1, q1 = 0;
  for (int iter = 0; iter < 64; ++iter) {
    const double fa = std::floor(x);
    if (fa > 9e17 || fa < -9e17) return Poisoned();
    const int64_t a = static_cast<int64_t>(fa);
    const int128 p2 = static_cast<int128>(a) * p1 + p0;
    const int128 q2 = static_cast<int128>(a) * q1 + q0;
    if (!FitsInt64(p2) || !FitsInt64(q2) || q2 > kMaxDen) break;
    p0 = p1;
    q0 = q1;
    p1 = static_cast<int64_t>(p2);
    q1 = static_cast<int64_t>(q2);
    if (q1 != 0 && std::abs(static_cast<double>(p1) / q1 - v) < kEps * (1 + std::abs(v))) {
      return Rational(p1, q1);
    }
    const double frac = x - fa;
    if (frac < 1e-15) break;
    x = 1.0 / frac;
  }
  if (q1 != 0 && std::abs(static_cast<double>(p1) / q1 - v) < 1e-9 * (1 + std::abs(v))) {
    return Rational(p1, q1);
  }
  return Poisoned();
}

Result<Rational> Rational::FromDecimalString(const std::string& text) {
  std::string_view s = Trim(text);
  if (s.empty()) return Status::ParseError("empty rational literal");
  bool negative = false;
  if (s[0] == '+' || s[0] == '-') {
    negative = s[0] == '-';
    s.remove_prefix(1);
  }
  size_t dot = s.find('.');
  std::string_view int_part = dot == std::string_view::npos ? s : s.substr(0, dot);
  std::string_view frac_part = dot == std::string_view::npos ? "" : s.substr(dot + 1);
  if (int_part.empty() && frac_part.empty()) {
    return Status::ParseError("malformed rational: " + text);
  }
  int128 num = 0;
  int128 den = 1;
  for (char c : int_part) {
    if (c < '0' || c > '9') return Status::ParseError("malformed rational: " + text);
    num = num * 10 + (c - '0');
    if (!FitsInt64(num)) return Status::OutOfRange("rational too large: " + text);
  }
  for (char c : frac_part) {
    if (c < '0' || c > '9') return Status::ParseError("malformed rational: " + text);
    num = num * 10 + (c - '0');
    den *= 10;
    if (!FitsInt64(num) || !FitsInt64(den)) {
      return Status::OutOfRange("rational too precise: " + text);
    }
  }
  if (negative) num = -num;
  return Rational(static_cast<int64_t>(num), static_cast<int64_t>(den));
}

double Rational::ToDouble() const {
  if (overflow_) return std::nan("");
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::ToString() const {
  if (overflow_) return "<overflow>";
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator+(const Rational& o) const {
  if (overflow_ || o.overflow_) return Poisoned();
  const int128 n =
      static_cast<int128>(num_) * o.den_ + static_cast<int128>(o.num_) * den_;
  const int128 d = static_cast<int128>(den_) * o.den_;
  const int128 g = Gcd128(n, d);
  if (!FitsInt64(n / g) || !FitsInt64(d / g)) return Poisoned();
  return Rational(static_cast<int64_t>(n / g), static_cast<int64_t>(d / g));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  if (overflow_ || o.overflow_) return Poisoned();
  const int128 n = static_cast<int128>(num_) * o.num_;
  const int128 d = static_cast<int128>(den_) * o.den_;
  const int128 g = Gcd128(n, d);
  if (!FitsInt64(n / g) || !FitsInt64(d / g)) return Poisoned();
  return Rational(static_cast<int64_t>(n / g), static_cast<int64_t>(d / g));
}

Rational Rational::operator/(const Rational& o) const {
  if (overflow_ || o.overflow_ || o.num_ == 0) return Poisoned();
  return *this * Rational(o.den_, o.num_);
}

Rational Rational::operator-() const {
  if (overflow_ || num_ == INT64_MIN) return Poisoned();
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  r.overflow_ = false;
  return r;
}

bool Rational::operator<(const Rational& o) const {
  if (overflow_) return false;
  if (o.overflow_) return true;
  return static_cast<int128>(num_) * o.den_ < static_cast<int128>(o.num_) * den_;
}

}  // namespace powerlog::smt
