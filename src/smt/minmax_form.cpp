#include "smt/minmax_form.h"

#include <algorithm>

namespace powerlog::smt {
namespace {

using Kind = MinMaxForm::Kind;

Kind FlipKind(Kind k) {
  if (k == Kind::kMin) return Kind::kMax;
  if (k == Kind::kMax) return Kind::kMin;
  return k;
}

MinMaxForm MakeAtom(Polynomial p) {
  MinMaxForm f;
  f.kind = Kind::kAtom;
  f.elems.push_back(LatticeElem{std::move(p), 0});
  return f;
}

/// Sign of a polynomial under constraints, via its term structure: we only
/// need constants and single-variable monomials with known-sign coefficients.
Sign PolySign(const Polynomial& p, const ConstraintSet& cs) {
  if (p.IsZero()) return Sign::kZero;
  Sign acc = Sign::kZero;
  for (const auto& [mono, coeff] : p.terms()) {
    Sign term_sign = coeff.IsNegative() ? Sign::kNegative : Sign::kPositive;
    for (const auto& [v, pow] : mono) {
      Sign vs = cs.SignOf(v);
      if (pow % 2 == 0) {
        // Even power: v^2k is >= 0 always, > 0 iff v is strictly signed.
        if (vs == Sign::kZero) {
          // keep kZero
        } else if (vs == Sign::kPositive || vs == Sign::kNegative) {
          vs = Sign::kPositive;
        } else {
          vs = Sign::kNonNegative;
        }
      }
      term_sign = SignMul(term_sign, vs);
    }
    acc = SignAdd(acc, term_sign);
    if (acc == Sign::kUnknown) return Sign::kUnknown;
  }
  return acc;
}

Sign ElemSign(const LatticeElem& e, const ConstraintSet& cs) {
  const Sign inner = PolySign(e.poly, cs);
  if (e.relu_wraps == 0) return inner;
  return SignIsStrictlyPositive(inner) ? Sign::kPositive : Sign::kNonNegative;
}

}  // namespace

std::string LatticeElem::ToString() const {
  std::string inner = poly.ToString();
  for (int i = 0; i < relu_wraps; ++i) inner = "relu(" + inner + ")";
  return inner;
}

void MinMaxForm::Canonicalize() {
  std::sort(elems.begin(), elems.end(),
            [](const LatticeElem& a, const LatticeElem& b) {
              if (a.relu_wraps != b.relu_wraps) return a.relu_wraps < b.relu_wraps;
              return a.poly.ToString() < b.poly.ToString();
            });
  elems.erase(std::unique(elems.begin(), elems.end()), elems.end());
  if (elems.size() == 1) kind = Kind::kAtom;
}

bool MinMaxForm::operator==(const MinMaxForm& o) const {
  return kind == o.kind && elems == o.elems;
}

std::string MinMaxForm::ToString() const {
  std::string out = kind == Kind::kAtom ? "" : (kind == Kind::kMin ? "min" : "max");
  out += "{";
  for (size_t i = 0; i < elems.size(); ++i) {
    if (i) out += ", ";
    out += elems[i].ToString();
  }
  out += "}";
  return out;
}

Result<MinMaxForm> NormalizeMinMax(const TermPtr& t, const ConstraintSet& cs) {
  switch (t->op) {
    case Op::kConst:
      if (t->value.overflow()) return Status::OutOfRange("constant overflow");
      return MakeAtom(Polynomial::Constant(t->value));
    case Op::kVar:
      return MakeAtom(Polynomial::Variable(t->var));
    case Op::kMin:
    case Op::kMax: {
      const Kind want = t->op == Op::kMin ? Kind::kMin : Kind::kMax;
      auto a = NormalizeMinMax(t->args[0], cs);
      if (!a.ok()) return a;
      auto b = NormalizeMinMax(t->args[1], cs);
      if (!b.ok()) return b;
      if ((a->kind != Kind::kAtom && a->kind != want) ||
          (b->kind != Kind::kAtom && b->kind != want)) {
        return Status::NotSupported("mixed min/max nesting");
      }
      MinMaxForm f;
      f.kind = want;
      f.elems = a->elems;
      f.elems.insert(f.elems.end(), b->elems.begin(), b->elems.end());
      f.Canonicalize();
      // Canonicalize() demotes singletons to atoms so min(x, x) == x.
      return f;
    }
    case Op::kAdd: {
      auto a = NormalizeMinMax(t->args[0], cs);
      if (!a.ok()) return a;
      auto b = NormalizeMinMax(t->args[1], cs);
      if (!b.ok()) return b;
      // Addition is monotone in both operands: min-sets combine pairwise —
      // but only plain polynomial elements support arithmetic.
      if (a->kind != Kind::kAtom && b->kind != Kind::kAtom && a->kind != b->kind) {
        return Status::NotSupported("min-set + max-set");
      }
      MinMaxForm f;
      f.kind = a->kind == Kind::kAtom ? b->kind : a->kind;
      for (const LatticeElem& x : a->elems) {
        for (const LatticeElem& y : b->elems) {
          if (x.relu_wraps != 0 || y.relu_wraps != 0) {
            return Status::NotSupported("arithmetic on relu-wrapped elements");
          }
          f.elems.push_back(LatticeElem{x.poly + y.poly, 0});
        }
      }
      f.Canonicalize();
      return f;
    }
    case Op::kSub: {
      // a - b == a + neg(b); reuse those cases.
      return NormalizeMinMax(Add(t->args[0], Neg(t->args[1])), cs);
    }
    case Op::kNeg: {
      auto a = NormalizeMinMax(t->args[0], cs);
      if (!a.ok()) return a;
      MinMaxForm f;
      f.kind = FlipKind(a->kind);
      for (const LatticeElem& e : a->elems) {
        if (e.relu_wraps != 0) {
          return Status::NotSupported("negation of relu-wrapped element");
        }
        f.elems.push_back(LatticeElem{-e.poly, 0});
      }
      f.Canonicalize();
      return f;
    }
    case Op::kMul: {
      auto a = NormalizeMinMax(t->args[0], cs);
      if (!a.ok()) return a;
      auto b = NormalizeMinMax(t->args[1], cs);
      if (!b.ok()) return b;
      // Atom * Atom on plain polynomials is plain arithmetic.
      if (a->kind == Kind::kAtom && b->kind == Kind::kAtom &&
          a->elems[0].relu_wraps == 0 && b->elems[0].relu_wraps == 0) {
        return MakeAtom(a->elems[0].poly * b->elems[0].poly);
      }
      // Set (or relu atom) * plain atom: push through with known sign.
      const MinMaxForm* set = &*a;
      const MinMaxForm* atom = &*b;
      if (atom->kind != Kind::kAtom || atom->elems[0].relu_wraps != 0) {
        std::swap(set, atom);
      }
      if (atom->kind != Kind::kAtom || atom->elems[0].relu_wraps != 0) {
        return Status::NotSupported("product of two lattice sets");
      }
      const Polynomial& factor = atom->elems[0].poly;
      const Sign s = PolySign(factor, cs);
      MinMaxForm f;
      if (SignIsNonNegative(s)) {
        f.kind = set->kind;
      } else if (SignIsNonPositive(s)) {
        f.kind = FlipKind(set->kind);
      } else {
        return Status::NotSupported("min/max scaled by factor of unknown sign");
      }
      for (const LatticeElem& e : set->elems) {
        if (e.relu_wraps == 0) {
          f.elems.push_back(LatticeElem{e.poly * factor, 0});
        } else if (SignIsNonNegative(s)) {
          // c >= 0: c * relu(p) == relu(c * p).
          f.elems.push_back(LatticeElem{e.poly * factor, e.relu_wraps});
        } else {
          return Status::NotSupported(
              "relu-wrapped element scaled by non-positive factor");
        }
      }
      f.Canonicalize();
      return f;
    }
    case Op::kDiv: {
      auto a = NormalizeMinMax(t->args[0], cs);
      if (!a.ok()) return a;
      auto b = NormalizeMinMax(t->args[1], cs);
      if (!b.ok()) return b;
      if (b->kind != Kind::kAtom || b->elems[0].relu_wraps != 0) {
        return Status::NotSupported("division by lattice set");
      }
      const Polynomial& den = b->elems[0].poly;
      const Sign s = PolySign(den, cs);
      MinMaxForm f;
      if (SignIsStrictlyPositive(s)) {
        f.kind = a->kind;
      } else if (SignIsStrictlyNegative(s)) {
        f.kind = FlipKind(a->kind);
      } else if (a->kind == Kind::kAtom && a->elems[0].relu_wraps == 0) {
        f.kind = Kind::kAtom;  // no ordering to preserve
      } else {
        return Status::NotSupported("min/max divided by denominator of unknown sign");
      }
      for (const LatticeElem& e : a->elems) {
        if (e.relu_wraps != 0 && !SignIsStrictlyPositive(s)) {
          return Status::NotSupported(
              "relu-wrapped element divided by non-positive denominator");
        }
        Polynomial scaled;
        if (den.IsConstant()) {
          const Rational c = den.ConstantValue();
          if (c.IsZero()) return Status::InvalidArgument("division by zero");
          scaled = e.poly.Scale(Rational::FromInt(1) / c);
        } else {
          scaled = e.poly * Polynomial::Variable("recip[" + den.ToString() + "]");
        }
        f.elems.push_back(LatticeElem{std::move(scaled), e.relu_wraps});
      }
      f.Canonicalize();
      return f;
    }
    case Op::kRelu: {
      // relu is monotone nondecreasing: it distributes over min and max, so
      // wrap every element (idempotently).
      auto a = NormalizeMinMax(t->args[0], cs);
      if (!a.ok()) return a;
      MinMaxForm f;
      f.kind = a->kind;
      for (const LatticeElem& e : a->elems) {
        if (SignIsNonNegative(ElemSign(e, cs))) {
          f.elems.push_back(e);  // relu is the identity on >= 0
        } else {
          f.elems.push_back(LatticeElem{e.poly, 1});
        }
      }
      f.Canonicalize();
      return f;
    }
    case Op::kAbs: {
      // abs is not monotone; only uniformly sign-known arguments normalise:
      // |x| == x on x >= 0 (kind preserved), |x| == -x on x <= 0 (abs is
      // decreasing there, so the lattice kind flips).
      auto a = NormalizeMinMax(t->args[0], cs);
      if (!a.ok()) return a;
      const bool all_nonneg =
          std::all_of(a->elems.begin(), a->elems.end(), [&](const LatticeElem& e) {
            return SignIsNonNegative(ElemSign(e, cs));
          });
      if (all_nonneg) return a;
      const bool all_nonpos =
          std::all_of(a->elems.begin(), a->elems.end(), [&](const LatticeElem& e) {
            return e.relu_wraps == 0 && SignIsNonPositive(ElemSign(e, cs));
          });
      if (all_nonpos) {
        MinMaxForm f;
        f.kind = FlipKind(a->kind);
        for (const LatticeElem& e : a->elems) {
          f.elems.push_back(LatticeElem{-e.poly, 0});
        }
        f.Canonicalize();
        return f;
      }
      return Status::NotSupported("abs of element with unknown sign");
    }
    default:
      return Status::NotSupported(std::string("op not in lattice fragment: ") +
                                  OpName(t->op));
  }
}

}  // namespace powerlog::smt
