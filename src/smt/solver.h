// Validity checker façade: the Z3 stand-in.
//
// Decides "∀ vars. lhs == rhs" over the term fragment, mirroring the paper's
// double-negation Z3 encoding ("NOT (forall ... =)" is unsat  ⇔  valid):
//   1. polynomial normal forms (complete for {+,-,*,/const} / sum-like G),
//   2. min/max lattice normal forms (complete for monotone-pushed min/max),
//   3. counterexample search (the refutation half).
// Verdicts are sound: kValid only from a normal-form proof; kInvalid only
// with a concrete witness or a reciprocal-free polynomial disagreement.
#pragma once

#include <string>

#include "smt/counterexample.h"
#include "smt/minmax_form.h"
#include "smt/monotone.h"
#include "smt/term.h"

namespace powerlog::smt {

enum class Verdict { kValid, kInvalid, kUnknown };

const char* VerdictName(Verdict v);

/// \brief Outcome of a validity check with provenance.
struct CheckReport {
  Verdict verdict = Verdict::kUnknown;
  std::string method;       ///< "polynomial", "minmax", "counterexample", ...
  std::string explanation;  ///< human-readable proof sketch / witness
  std::optional<Counterexample> counterexample;
};

/// \brief Checker for universally quantified equalities under sign constraints.
class Solver {
 public:
  explicit Solver(ConstraintSet constraints = {}, SearchOptions search = {})
      : constraints_(std::move(constraints)), search_(search) {}

  /// Is `lhs == rhs` valid (true for all assignments satisfying constraints)?
  CheckReport CheckEqualValid(const TermPtr& lhs, const TermPtr& rhs) const;

  const ConstraintSet& constraints() const { return constraints_; }

 private:
  ConstraintSet constraints_;
  SearchOptions search_;
};

}  // namespace powerlog::smt
