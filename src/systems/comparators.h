// Simulated comparator systems (§6.2–§6.4).
//
// The paper compares PowerLog against external systems. Those systems are
// JVM/Spark stacks we cannot run offline, so each is encoded as a
// configuration of our own runtime that reproduces its published
// *evaluation strategy* and *execution mode* — the two variables the paper's
// comparison isolates — plus cost knobs for its documented constant factors:
//
//   SociaLite  — sync BSP; semi-naive for monotonic programs, naive
//                evaluation (full per-iteration join) for non-monotonic;
//                Δ-stepping for SSSP; interpreted-Java join costs.
//   Myria      — async; semi-naive for monotonic, naive for non-monotonic;
//                eager per-update message passing.
//   BigDatalog — sync Spark dataflow; semi-naive for monotonic with heavy
//                per-superstep RDD materialisation; PageRank et al. run as
//                GraphX-style sync dataflow (the paper substitutes GraphX).
//   PowerGraph — incremental vertex engine, best of sync/async (Fig. 10).
//   Maiter     — delta-based accumulative async engine (Fig. 10).
//   Prom       — prioritised async engine (Fig. 10).
//   PowerLog   — MRA evaluation on the unified sync-async engine.
#pragma once

#include <string>

#include "common/result.h"
#include "core/kernel.h"
#include "graph/graph.h"
#include "systems/vertex_engines.h"

namespace powerlog::systems {

enum class SystemId {
  kPowerLog,
  kSociaLite,
  kMyria,
  kBigDatalog,
  kPowerGraph,
  kMaiter,
  kProm,
};

const char* SystemName(SystemId id);

/// \brief Shared run parameters for a comparison.
struct RunConfig {
  uint32_t num_workers = 4;
  runtime::NetworkConfig network;
  double max_wall_seconds = 60.0;
  int64_t max_supersteps = 100000;
  double epsilon_override = -1.0;
  /// Environment-noise stalls (see EngineOptions); 0 disables.
  int64_t stall_every_us = 0;
  int64_t stall_mean_us = 2000;
};

/// \brief One comparator execution.
struct SystemRunResult {
  SystemId system;
  std::string strategy;  ///< e.g. "naive+sync", "MRA+async"
  EngineResult result;
};

/// Runs `kernel` the way `system` would. `program_is_monotonic` selects the
/// comparator's strategy (semi-naive vs naive fallback) exactly as §6.3
/// describes; PowerLog instead consults the MRA check outcome
/// (`mra_satisfied`).
Result<SystemRunResult> RunSystem(SystemId system, const Graph& graph,
                                  const Kernel& kernel, const RunConfig& config,
                                  bool mra_satisfied);

/// True for programs whose value sequences are monotonic without conversion
/// (min/max aggregates) — the scope comparators support incrementally.
bool IsMonotonicProgram(const Kernel& kernel);

}  // namespace powerlog::systems
