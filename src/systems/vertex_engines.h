// Naive-evaluation BSP engine and incremental vertex-centric baseline
// configurations.
//
// NaiveSyncEngine executes Eq. 2 on the distributed runtime substrate:
// every superstep, *every* vertex holding a fact re-derives and re-sends all
// of its contributions, and receivers rebuild X_{k+1} from scratch — the
// per-iteration full join that makes naive evaluation expensive (§1). This
// is what SociaLite/Myria fall back to for non-monotonic programs.
#pragma once

#include "common/result.h"
#include "core/kernel.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "runtime/engine.h"

namespace powerlog::systems {

using runtime::EngineOptions;
using runtime::EngineResult;

/// \brief Extra cost knobs that differentiate the simulated comparator
/// engines (documented per system in comparators.cpp).
struct NaiveEngineCosts {
  /// Per-superstep dataflow overhead (job scheduling, table materialisation).
  int64_t superstep_overhead_us = 0;
  /// Per-edge compute inflation factor (interpreted join machinery); 1.0 is
  /// our native speed.
  double compute_factor = 1.0;
};

/// Runs naive evaluation (Eq. 2) on the BSP substrate.
Result<EngineResult> NaiveSyncRun(const Graph& graph, const Kernel& kernel,
                                  const EngineOptions& options,
                                  const NaiveEngineCosts& costs = {});

}  // namespace powerlog::systems
