#include "systems/vertex_engines.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "runtime/message.h"
#include "runtime/network.h"

namespace powerlog::systems {
namespace {

using runtime::CombiningBuffer;
using runtime::MessageBus;
using runtime::Update;
using runtime::UpdateBatch;

void SpinSleep(int64_t micros) {
  if (micros <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

}  // namespace

Result<EngineResult> NaiveSyncRun(const Graph& graph, const Kernel& kernel,
                                  const EngineOptions& options,
                                  const NaiveEngineCosts& costs) {
  if (kernel.agg == AggKind::kMean) {
    return Status::NotSupported(
        "the distributed naive engine folds aggregates pairwise; mean programs use "
        "the single-node reference evaluator");
  }
  const VertexId n = graph.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  const uint32_t num_workers = options.num_workers == 0 ? 1 : options.num_workers;

  Aggregator agg(kernel.agg);
  auto idr = agg.Identity();
  if (!idr.ok()) return idr.status();
  const double identity = *idr;

  auto x0 = ComputeX0(kernel, n);
  if (!x0.ok()) return x0.status();
  std::vector<double> x = std::move(x0).ValueOrDie();

  std::vector<std::atomic<double>> next(n);
  for (auto& slot : next) slot.store(identity, std::memory_order_relaxed);

  Partitioner partition(options.partition, n, num_workers);
  MessageBus bus(num_workers, options.network);
  Barrier barrier(num_workers);
  const Graph& prop = kernel.uses_in_edges ? graph.Reverse() : graph;

  std::atomic<bool> stop{false};
  std::atomic<bool> converged{false};
  std::atomic<int64_t> supersteps{0};
  std::atomic<int64_t> edge_applications{0};
  std::atomic<int64_t> superstep_edges{0};
  const double epsilon =
      options.epsilon_override >= 0
          ? options.epsilon_override
          : (kernel.termination.has_epsilon ? kernel.termination.epsilon : 0.0);
  int64_t cap = options.max_supersteps;
  if (kernel.termination.max_iterations > 0 &&
      kernel.termination.max_iterations < cap) {
    cap = kernel.termination.max_iterations;
  }

  Timer timer;
  auto worker_fn = [&](uint32_t id) {
    std::vector<VertexId> owned = partition.OwnedVertices(id);
    std::vector<CombiningBuffer> buffers;
    for (uint32_t w = 0; w < num_workers; ++w) buffers.emplace_back(kernel.agg);
    UpdateBatch scratch;

    auto route = [&](VertexId dst, double contribution) {
      const uint32_t owner = partition.WorkerOf(dst);
      if (owner == id) {
        AtomicCombine(&next[dst], contribution, kernel.agg);
      } else {
        buffers[owner].Add(dst, contribution);
      }
    };

    while (!stop.load(std::memory_order_acquire)) {
      // --- compute phase: re-derive every fact from the full X (Eq. 2) ---
      int64_t local_edges = 0;
      for (VertexId v : owned) {
        // Non-recursive bodies, derived by the key's owner.
        if (kernel.constant.kind == datalog::ConstKind::kAllVertices) {
          AtomicCombine(&next[v], kernel.constant.value, kernel.agg);
        } else if (kernel.constant.kind == datalog::ConstKind::kSingleKey &&
                   kernel.constant.key == v) {
          AtomicCombine(&next[v], kernel.constant.value, kernel.agg);
        }
        if (!kernel.init.iteration_indexed) {
          switch (kernel.init.kind) {
            case datalog::InitKind::kAllVerticesConst:
              AtomicCombine(&next[v], kernel.init.value, kernel.agg);
              break;
            case datalog::InitKind::kAllVerticesOwnId:
              AtomicCombine(&next[v], static_cast<double>(v), kernel.agg);
              break;
            case datalog::InitKind::kSingleSource:
              if (kernel.init.source == v) {
                AtomicCombine(&next[v], kernel.init.value, kernel.agg);
              }
              break;
            case datalog::InitKind::kNone:
              break;
          }
        }
        const double value = x[v];
        if (value == identity) continue;
        const double deg = static_cast<double>(graph.OutDegree(v));
        for (const Edge& e : prop.OutEdges(v)) {
          route(e.dst, kernel.EvalEdge(value, e.weight, deg));
          ++local_edges;
        }
      }
      edge_applications.fetch_add(local_edges, std::memory_order_relaxed);
      superstep_edges.fetch_add(local_edges, std::memory_order_relaxed);
      for (uint32_t w = 0; w < num_workers; ++w) {
        if (w == id || buffers[w].empty()) continue;
        UpdateBatch batch = bus.AcquireBatch();
        buffers[w].Drain(&batch);
        bus.Send(id, w, std::move(batch));
      }
      SpinSleep(options.barrier_overhead_us);
      barrier.ArriveAndWait();

      // --- communication phase ---
      while (bus.HasPending(id)) {
        scratch.clear();
        const size_t received = bus.Receive(id, &scratch);
        for (const Update& u : scratch) AtomicCombine(&next[u.key], u.value, kernel.agg);
        bus.AckDelivered(id, received);
        SpinSleep(20);
      }
      const bool serial = barrier.ArriveAndWait();

      // --- fold + termination (serial) ---
      if (serial) {
        SpinSleep(costs.superstep_overhead_us);
        // The comparator's join machinery costs compute_factor x our native
        // ~12ns/edge. Burned serially (everyone is parked at the barrier),
        // matching how real compute serialises on this time-shared host.
        const int64_t edges_this_step = superstep_edges.exchange(0);
        if (costs.compute_factor > 1.0) {
          SpinSleep(static_cast<int64_t>(static_cast<double>(edges_this_step) *
                                         0.012 * (costs.compute_factor - 1.0)));
        }
        double diff = 0.0;
        for (VertexId v = 0; v < n; ++v) {
          const double fresh = next[v].exchange(identity, std::memory_order_relaxed);
          const double old = x[v];
          if (std::isinf(fresh) && std::isinf(old) && fresh == old) {
            // unchanged unreached key
          } else if (std::isinf(fresh) || std::isinf(old)) {
            diff = std::numeric_limits<double>::infinity();
          } else {
            diff += std::abs(fresh - old);
          }
          x[v] = fresh;
        }
        const int64_t step = supersteps.fetch_add(1) + 1;
        bool done = false;
        if (diff == 0.0) done = true;
        if (epsilon > 0.0 && diff < epsilon) done = true;
        if (done) converged.store(true, std::memory_order_release);
        if (step >= cap) done = true;
        if (timer.ElapsedSeconds() > options.max_wall_seconds) done = true;
        if (done) stop.store(true, std::memory_order_release);
      }
      barrier.ArriveAndWait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) threads.emplace_back(worker_fn, w);
  for (auto& t : threads) t.join();

  EngineResult result;
  result.values = std::move(x);
  result.stats.wall_seconds = timer.ElapsedSeconds();
  result.stats.supersteps = supersteps.load();
  result.stats.edge_applications = edge_applications.load();
  const runtime::NetworkStats net = bus.stats();
  result.stats.messages = net.messages;
  result.stats.updates_sent = net.updates;
  result.stats.converged = converged.load();
  return result;
}

}  // namespace powerlog::systems
