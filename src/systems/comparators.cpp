#include "systems/comparators.h"

#include <algorithm>

#include "runtime/engine.h"

namespace powerlog::systems {

using runtime::Engine;
using runtime::ExecMode;
using runtime::FlushPolicyKind;

const char* SystemName(SystemId id) {
  switch (id) {
    case SystemId::kPowerLog: return "PowerLog";
    case SystemId::kSociaLite: return "SociaLite";
    case SystemId::kMyria: return "Myria";
    case SystemId::kBigDatalog: return "BigDatalog";
    case SystemId::kPowerGraph: return "PowerGraph";
    case SystemId::kMaiter: return "Maiter";
    case SystemId::kProm: return "Prom";
  }
  return "?";
}

bool IsMonotonicProgram(const Kernel& kernel) {
  return kernel.agg == AggKind::kMin || kernel.agg == AggKind::kMax;
}

namespace {

EngineOptions BaseOptions(const RunConfig& config) {
  EngineOptions options;
  options.num_workers = config.num_workers;
  options.network = config.network;
  options.max_wall_seconds = config.max_wall_seconds;
  options.max_supersteps = config.max_supersteps;
  options.epsilon_override = config.epsilon_override;
  options.stall_every_us = config.stall_every_us;
  options.stall_mean_us = config.stall_mean_us;
  return options;
}

Result<SystemRunResult> RunIncremental(SystemId system, const Graph& graph,
                                       const Kernel& kernel,
                                       const EngineOptions& options,
                                       std::string strategy) {
  Engine engine(graph, kernel, options);
  auto result = engine.Run();
  if (!result.ok()) return result.status();
  SystemRunResult out;
  out.system = system;
  out.strategy = std::move(strategy);
  out.result = std::move(result).ValueOrDie();
  return out;
}

Result<SystemRunResult> RunNaive(SystemId system, const Graph& graph,
                                 const Kernel& kernel, const EngineOptions& options,
                                 const NaiveEngineCosts& costs, std::string strategy) {
  auto result = NaiveSyncRun(graph, kernel, options, costs);
  if (!result.ok()) return result.status();
  SystemRunResult out;
  out.system = system;
  out.strategy = std::move(strategy);
  out.result = std::move(result).ValueOrDie();
  return out;
}

}  // namespace

Result<SystemRunResult> RunSystem(SystemId system, const Graph& graph,
                                  const Kernel& kernel, const RunConfig& config,
                                  bool mra_satisfied) {
  const bool monotonic = IsMonotonicProgram(kernel);
  EngineOptions options = BaseOptions(config);

  switch (system) {
    case SystemId::kPowerLog: {
      // Fig. 2: MRA evaluation on the unified sync-async engine when the
      // conditions hold; naive evaluation on the sync engine otherwise.
      if (mra_satisfied) {
        options.mode = ExecMode::kSyncAsync;
        options.barrier_overhead_us = 300;
        options.adaptive_priority = true;  // §5.4 sum-program optimisation
        options.buffer.tau_us = 1500;      // wider adaptation window
        return RunIncremental(system, graph, kernel, options, "MRA+sync-async");
      }
      options.mode = ExecMode::kSync;
      return RunNaive(system, graph, kernel, options, NaiveEngineCosts{},
                      "naive+sync");
    }

    case SystemId::kSociaLite: {
      // Sync BSP. Semi-naive for monotonic programs (with Δ-stepping on
      // weighted min programs — its SSSP optimisation, §6.3); naive
      // evaluation with the per-iteration rank-table join otherwise.
      // Cost knobs: interpreted-Java join (~6x our native edge cost) and a
      // modest distributed-barrier overhead.
      if (monotonic) {
        options.mode = ExecMode::kSync;
        options.barrier_overhead_us = 800;
        options.compute_inflation_ns_per_edge = 30.0;  // interpreted-Java joins
        if (kernel.agg == AggKind::kMin && kernel.uses_weights) {
          // Δ-stepping with the bucket width tuned to the dataset's weight
          // scale (as its users would); only worthwhile when the weight
          // variance is large enough that plain label-correcting wastes work.
          double max_weight = 1.0;
          for (VertexId v = 0; v < graph.num_vertices(); ++v) {
            for (const Edge& e : graph.OutEdges(v)) {
              max_weight = std::max(max_weight, e.weight);
            }
          }
          if (max_weight >= 128.0) {
            options.delta_stepping = max_weight / 2.0;
            return RunIncremental(system, graph, kernel, options,
                                  "semi-naive+sync (Δ-stepping)");
          }
        }
        return RunIncremental(system, graph, kernel, options, "semi-naive+sync");
      }
      options.mode = ExecMode::kSync;
      options.barrier_overhead_us = 800;
      // Grounded on the measured ~44x relational-join/kernel cost ratio
      // (see src/relational); SociaLite's interpreted join sits at the
      // high end.
      NaiveEngineCosts costs;
      costs.compute_factor = 40.0;
      costs.superstep_overhead_us = 3000;
      return RunNaive(system, graph, kernel, options, costs, "naive+sync");
    }

    case SystemId::kMyria: {
      // Async shared-nothing engine: semi-naive async for monotonic
      // programs with eager per-update message passing; naive evaluation
      // for non-monotonic ones (pipelined, so cheaper per edge than
      // SociaLite's join but still a full recompute per round).
      if (monotonic) {
        options.mode = ExecMode::kAsync;
        options.compute_inflation_ns_per_edge = 30.0;  // Java pipeline operators
        return RunIncremental(system, graph, kernel, options, "semi-naive+async");
      }
      options.mode = ExecMode::kSync;
      options.barrier_overhead_us = 500;
      // Pipelined operators avoid full re-materialisation: low end of the
      // measured naive-cost range.
      NaiveEngineCosts costs;
      costs.compute_factor = 10.0;
      costs.superstep_overhead_us = 500;
      return RunNaive(system, graph, kernel, options, costs, "naive (pipelined)");
    }

    case SystemId::kBigDatalog: {
      // Spark dataflow: semi-naive sync for monotonic programs with heavy
      // per-stage scheduling/materialisation; non-monotonic programs run as
      // GraphX-style sync dataflow (the paper's substitution, §6.3).
      if (monotonic) {
        options.mode = ExecMode::kSync;
        options.barrier_overhead_us = 5000;
        options.compute_inflation_ns_per_edge = 25.0;  // RDD tuple processing
        return RunIncremental(system, graph, kernel, options,
                              "semi-naive+sync (Spark stages)");
      }
      options.mode = ExecMode::kSync;
      options.barrier_overhead_us = 4000;
      NaiveEngineCosts costs;
      costs.compute_factor = 8.0;  // compiled dataflow, but per-stage RDD costs
      costs.superstep_overhead_us = 4000;
      return RunNaive(system, graph, kernel, options, costs, "GraphX sync dataflow");
    }

    case SystemId::kPowerGraph: {
      // Incremental vertex engine; the paper uses its best of sync/async.
      EngineOptions sync_options = options;
      sync_options.mode = ExecMode::kSync;
      sync_options.barrier_overhead_us = 500;
      sync_options.compute_inflation_ns_per_edge = 5.0;
      auto sync_run = RunIncremental(system, graph, kernel, sync_options,
                                     "incremental+sync");
      EngineOptions async_options = options;
      async_options.mode = ExecMode::kAsync;
      async_options.compute_inflation_ns_per_edge = 5.0;
      auto async_run =
          RunIncremental(system, graph, kernel, async_options, "incremental+async");
      if (!sync_run.ok()) return async_run;
      if (!async_run.ok()) return sync_run;
      return sync_run->result.stats.wall_seconds <=
                     async_run->result.stats.wall_seconds
                 ? sync_run
                 : async_run;
    }

    case SystemId::kMaiter: {
      // Delta-based accumulative async engine with fixed-size buffers
      // (PowerLog's engine minus the adaptive β/τ control).
      options.mode = ExecMode::kSyncAsync;
      options.buffer.kind = FlushPolicyKind::kFixed;
      options.buffer.beta = 512;
      options.buffer.tau_us = 800;
      options.compute_inflation_ns_per_edge = 5.0;
      return RunIncremental(system, graph, kernel, options,
                            "delta-accumulative+async");
    }

    case SystemId::kProm: {
      // Prioritised block updates: async with a priority threshold that
      // defers low-impact deltas (§5.4's ancestor).
      options.mode = ExecMode::kSyncAsync;
      options.buffer.kind = FlushPolicyKind::kFixed;
      options.buffer.beta = 512;
      options.buffer.tau_us = 800;
      options.compute_inflation_ns_per_edge = 5.0;
      options.priority_threshold = 1e-3;
      return RunIncremental(system, graph, kernel, options, "prioritised+async");
    }
  }
  return Status::InvalidArgument("unknown system");
}

}  // namespace powerlog::systems
