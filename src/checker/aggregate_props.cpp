#include "checker/aggregate_props.h"

namespace powerlog::checker {

smt::TermPtr AggCombineTerm(AggKind kind, smt::TermPtr a, smt::TermPtr b) {
  switch (kind) {
    case AggKind::kMin:
      return smt::Min(std::move(a), std::move(b));
    case AggKind::kMax:
      return smt::Max(std::move(a), std::move(b));
    case AggKind::kSum:
    case AggKind::kCount:
      return smt::Add(std::move(a), std::move(b));
    case AggKind::kMean:
      return smt::Div(smt::Add(std::move(a), std::move(b)), smt::ConstInt(2));
  }
  return nullptr;
}

Property1Result CheckProperty1(AggKind kind) {
  const smt::TermPtr a = smt::Var("a");
  const smt::TermPtr b = smt::Var("b");
  const smt::TermPtr c = smt::Var("c");
  smt::Solver solver;
  Property1Result result;
  result.commutativity =
      solver.CheckEqualValid(AggCombineTerm(kind, a, b), AggCombineTerm(kind, b, a));
  result.associativity = solver.CheckEqualValid(
      AggCombineTerm(kind, AggCombineTerm(kind, a, b), c),
      AggCombineTerm(kind, a, AggCombineTerm(kind, b, c)));
  return result;
}

}  // namespace powerlog::checker
