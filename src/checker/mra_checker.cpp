#include "checker/mra_checker.h"

#include <set>

#include "common/string_util.h"
#include "datalog/parser.h"
#include "smt/printer.h"

namespace powerlog::checker {
namespace {

/// Applies f (a term over "x" plus shared symbols) to an argument term.
smt::TermPtr ApplyF(const smt::TermPtr& f, const smt::TermPtr& arg) {
  return smt::Substitute(f, {{"x", arg}});
}

/// Picks four fresh aggregation-input variable names that do not collide
/// with the symbols of f.
std::vector<std::string> FreshVars(const smt::TermPtr& f) {
  std::set<std::string> used;
  for (const auto& v : smt::CollectVars(f)) used.insert(v);
  std::vector<std::string> out;
  const char* base[] = {"x1", "y1", "x2", "y2"};
  for (const char* name : base) {
    std::string candidate = name;
    while (used.count(candidate)) candidate = "_" + candidate;
    used.insert(candidate);
    out.push_back(candidate);
  }
  return out;
}

}  // namespace

Result<MraCheckResult> CheckMraConditions(const datalog::AnalyzedProgram& program) {
  MraCheckResult result;
  std::string report =
      StringFormat("MRA condition check for '%s' (G=%s):\n", program.name.c_str(),
                   datalog::AggKindName(program.aggregate));

  // Decomposability: the analyzer already split F into F' plus constant
  // bodies; reaching this point with a valid f_term establishes it.
  result.decomposable = program.f_term != nullptr;
  report += "  decomposability G∘F(X) = G(F'(X) ∪ C): established by extraction\n";

  // Property 1.
  result.property1 = CheckProperty1(program.aggregate);
  report += StringFormat("  Property 1 (commutativity):  %s — %s\n",
                         smt::VerdictName(result.property1.commutativity.verdict),
                         result.property1.commutativity.explanation.c_str());
  report += StringFormat("  Property 1 (associativity):  %s — %s\n",
                         smt::VerdictName(result.property1.associativity.verdict),
                         result.property1.associativity.explanation.c_str());

  // Property 2: g(f(g(x1,y1)), f(g(x2,y2))) == g(g(g(f(x1),f(y1)),f(x2)),f(y2)).
  const auto vars = FreshVars(program.f_term);
  const smt::TermPtr x1 = smt::Var(vars[0]);
  const smt::TermPtr y1 = smt::Var(vars[1]);
  const smt::TermPtr x2 = smt::Var(vars[2]);
  const smt::TermPtr y2 = smt::Var(vars[3]);
  const AggKind g = program.aggregate;
  const smt::TermPtr& f = program.f_term;

  const smt::TermPtr lhs =
      AggCombineTerm(g, ApplyF(f, AggCombineTerm(g, x1, y1)),
                     ApplyF(f, AggCombineTerm(g, x2, y2)));
  const smt::TermPtr rhs = AggCombineTerm(
      g,
      AggCombineTerm(g, AggCombineTerm(g, ApplyF(f, x1), ApplyF(f, y1)),
                     ApplyF(f, x2)),
      ApplyF(f, y2));

  smt::Solver solver(program.constraints);
  result.property2 = solver.CheckEqualValid(lhs, rhs);
  result.smtlib_script = smt::ToSmtLibScript(lhs, rhs, program.constraints);
  report += StringFormat("  Property 2 (G∘F'∘G = G∘F'):  %s [%s] — %s\n",
                         smt::VerdictName(result.property2.verdict),
                         result.property2.method.c_str(),
                         result.property2.explanation.c_str());

  result.inconclusive =
      result.property1.commutativity.verdict == smt::Verdict::kUnknown ||
      result.property1.associativity.verdict == smt::Verdict::kUnknown ||
      result.property2.verdict == smt::Verdict::kUnknown;
  result.satisfied = result.decomposable && result.property1.holds() &&
                     result.property2.verdict == smt::Verdict::kValid;
  report += StringFormat("  => MRA sat.: %s%s\n", result.satisfied ? "yes" : "no",
                         result.inconclusive ? " (inconclusive sub-check)" : "");
  result.report = std::move(report);
  return result;
}

Result<MraCheckResult> CheckMraConditionsFromSource(const std::string& source) {
  auto parsed = datalog::Parse(source);
  if (!parsed.ok()) return parsed.status();
  auto analyzed = datalog::Analyze(*parsed);
  if (!analyzed.ok()) return analyzed.status();
  return CheckMraConditions(*analyzed);
}

}  // namespace powerlog::checker
