// Automatic conversion of a convertible non-monotonic program into its
// incremental (delta) equivalent — what §3.3 shows manually as Program 2.b
// for PageRank ("Our system can convert it to its equivalent incremental
// program automatically and transparently to users").
//
// Given an analyzed program that passes the MRA conditions, emits Datalog
// source whose recursive rule accumulates: the head value is the sum of the
// key's previous value and the freshly derived contributions, which is the
// monotonic formulation semi-naive engines can execute.
#pragma once

#include <string>

#include "common/result.h"
#include "datalog/analyzer.h"

namespace powerlog::checker {

/// Emits the incremental equivalent of a sum/count program (min/max programs
/// are already monotonic and are returned unchanged in spirit: their
/// original text is regenerated). Fails for programs that do not satisfy the
/// MRA conditions structure (no f_term) or use the mean aggregate.
Result<std::string> EmitIncrementalEquivalent(const datalog::AnalyzedProgram& program);

}  // namespace powerlog::checker
