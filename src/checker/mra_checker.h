// The automatic MRA condition checker (§3.3, §5.1): given an analyzed
// program, verifies Theorem 1's conditions:
//   * decomposability G∘F(X) = G(F'(X) ∪ C)  — established structurally by
//     the analyzer's separation of constant bodies;
//   * Property 1: G commutative + associative;
//   * Property 2: G∘F'∘G(X) = G∘F'(X), encoded exactly as the paper's Fig. 4
//     Z3 query: g(f(g(x1,y1)), f(g(x2,y2))) == g(g(g(f(x1),f(y1)),f(x2)),f(y2)).
#pragma once

#include <string>

#include "checker/aggregate_props.h"
#include "common/result.h"
#include "datalog/analyzer.h"

namespace powerlog::checker {

/// \brief Full condition-check outcome for one program.
struct MraCheckResult {
  bool satisfied = false;       ///< the Table-1 "MRA sat." verdict
  bool decomposable = true;     ///< F = F' ∪ C extraction succeeded
  Property1Result property1;
  smt::CheckReport property2;
  std::string smtlib_script;    ///< Fig. 4-style script for Property 2
  std::string report;           ///< multi-line human-readable summary

  /// True when any sub-verdict was "unknown" (treated as unsatisfied,
  /// conservatively, but flagged so callers can distinguish).
  bool inconclusive = false;
};

/// Runs the full check on an analyzed program.
Result<MraCheckResult> CheckMraConditions(const datalog::AnalyzedProgram& program);

/// Parses + analyzes + checks source text in one call.
Result<MraCheckResult> CheckMraConditionsFromSource(const std::string& source);

}  // namespace powerlog::checker
