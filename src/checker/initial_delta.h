// Verification of the ΔX¹ derivation (§3.3): checks numerically that the
// initial state produced by ComputeInitialState satisfies
//   X¹ = G(ΔX¹ ∪ X⁰)   where   X¹ = G∘F(X⁰).
#pragma once

#include "common/result.h"
#include "core/kernel.h"
#include "graph/graph.h"

namespace powerlog::checker {

/// \brief Outcome of the initial-delta verification.
struct InitialDeltaReport {
  bool consistent = false;
  double max_abs_error = 0.0;
  VertexId worst_vertex = 0;
  std::string detail;
};

/// Recomputes X¹ by one naive step and compares against G(ΔX¹ ∪ X⁰).
/// `tolerance` absorbs float rounding in sum programs.
Result<InitialDeltaReport> VerifyInitialDelta(const Kernel& kernel, const Graph& graph,
                                              double tolerance = 1e-9);

}  // namespace powerlog::checker
