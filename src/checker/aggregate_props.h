// Property 1 of Theorem 1: the aggregate G must be commutative and
// associative (G(X∪Y)=G(Y∪X), G(X∪Y)=G(G(X)∪Y)).
#pragma once

#include "datalog/ast.h"
#include "smt/solver.h"
#include "smt/term.h"

namespace powerlog::checker {

using datalog::AggKind;

/// Builds the binary combiner term g(a, b) for an aggregate:
/// min/max -> min/max, sum/count -> a+b, mean -> (a+b)/2.
smt::TermPtr AggCombineTerm(AggKind kind, smt::TermPtr a, smt::TermPtr b);

/// \brief Outcome of the Property-1 check.
struct Property1Result {
  smt::CheckReport commutativity;  ///< g(a,b) == g(b,a)
  smt::CheckReport associativity;  ///< g(g(a,b),c) == g(a,g(b,c))
  bool holds() const {
    return commutativity.verdict == smt::Verdict::kValid &&
           associativity.verdict == smt::Verdict::kValid;
  }
};

/// Checks Property 1 for an aggregate via the validity solver.
Property1Result CheckProperty1(AggKind kind);

}  // namespace powerlog::checker
