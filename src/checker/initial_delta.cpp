#include "checker/initial_delta.h"

#include <cmath>

#include "common/string_util.h"
#include "eval/naive.h"

namespace powerlog::checker {

Result<InitialDeltaReport> VerifyInitialDelta(const Kernel& kernel, const Graph& graph,
                                              double tolerance) {
  const VertexId n = graph.num_vertices();
  auto state = ComputeInitialState(kernel, graph);
  if (!state.ok()) return state.status();
  Aggregator agg(kernel.agg);
  auto idr = agg.Identity();
  if (!idr.ok()) return idr.status();
  const double identity = *idr;

  // Reference: X¹ = G∘F(X⁰) by one naive step.
  auto x1 = eval::NaiveStep(kernel, graph, state->x0);
  if (!x1.ok()) return x1.status();

  InitialDeltaReport report;
  report.consistent = true;
  for (VertexId v = 0; v < n; ++v) {
    // Candidate: X¹ = G(ΔX¹ ∪ X⁰).
    double candidate;
    if (state->delta0[v] == identity) {
      candidate = state->x0[v];
    } else if (state->x0[v] == identity) {
      candidate = state->delta0[v];
    } else {
      candidate = *agg.Combine(state->x0[v], state->delta0[v]);
    }
    const double expected = (*x1)[v];
    double err;
    if (std::isinf(candidate) && std::isinf(expected) && candidate == expected) {
      err = 0.0;
    } else if (std::isinf(candidate) || std::isinf(expected)) {
      // min/max: a vertex reached at iteration 1 only through F' — the delta
      // init covers it lazily via propagation, not in ΔX¹ itself. That is
      // the paper's "initialisation enforced after calculating X¹" (§3.3):
      // treat as consistent only for ordered aggregates where the candidate
      // is the (not yet reached) identity and propagation will supply it.
      const bool ordered =
          kernel.agg == AggKind::kMin || kernel.agg == AggKind::kMax;
      err = (ordered && candidate == identity) ? 0.0
                                               : std::numeric_limits<double>::infinity();
    } else {
      err = std::abs(candidate - expected);
    }
    if (err > report.max_abs_error) {
      report.max_abs_error = err;
      report.worst_vertex = v;
    }
  }
  if (report.max_abs_error > tolerance) {
    report.consistent = false;
    report.detail = StringFormat(
        "X¹ != G(ΔX¹ ∪ X⁰): max |err| = %g at vertex %u", report.max_abs_error,
        report.worst_vertex);
  } else {
    report.detail = StringFormat("consistent (max |err| = %g)", report.max_abs_error);
  }
  return report;
}

}  // namespace powerlog::checker
