// Compiles body expressions into a tiny stack VM evaluable per edge, and
// converts expression ASTs into SMT terms for the condition checker.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "datalog/ast.h"
#include "smt/term.h"

namespace powerlog::datalog {

/// \brief A compiled arithmetic expression over the runtime inputs
/// (x = recursive value, w = edge weight, deg = source out-degree).
///
/// All named constants are folded at compile time, so evaluation is a tight
/// loop over a handful of instructions — this runs once per edge per delta.
class CompiledExpr {
 public:
  /// Evaluates with the given runtime inputs. No allocation.
  double Eval(double x, double w, double deg) const;

  size_t num_instructions() const { return code_.size(); }

  std::string Disassemble() const;

  // Implementation details, public for the compiler in expr_compiler.cpp.
  enum class OpCode : uint8_t {
    kPushConst,
    kPushX,
    kPushW,
    kPushDeg,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kNeg,
    kMin,
    kMax,
    kRelu,
    kAbs,
  };
  struct Instr {
    OpCode op;
    double imm;  // kPushConst only
  };

  /// Raw instruction stream — read by the edge-kernel specializer
  /// (core/kernel.h), which pattern-matches common shapes into fused loops.
  const std::vector<Instr>& code() const { return code_; }

  /// Assembles a compiled expression from raw instructions (compiler only).
  static CompiledExpr FromCode(std::vector<Instr> code, size_t max_stack) {
    CompiledExpr e;
    e.code_ = std::move(code);
    e.max_stack_ = max_stack;
    return e;
  }

 private:
  std::vector<Instr> code_;
  size_t max_stack_ = 0;
};

/// \brief Compiler context: which variable plays which runtime role, and
/// constant bindings for all remaining symbols.
struct CompileEnv {
  std::string input_var;   ///< maps to x
  std::string weight_var;  ///< maps to w ("" if unused)
  std::string degree_var;  ///< maps to deg ("" if unused)
  std::map<std::string, double> const_bindings;
};

/// Compiles `expr` under `env`. Unknown variables are an error.
Result<CompiledExpr> CompileExpr(const ExprPtr& expr, const CompileEnv& env);

/// Converts an expression AST to an SMT term. Variables stay symbolic except
/// `rename` entries (e.g. the recursive value var -> "x"). Calls supported:
/// relu, abs, min, max.
Result<smt::TermPtr> ExprToTerm(const ExprPtr& expr,
                                const std::map<std::string, std::string>& rename);

/// Numeric constant folding of an expression under bindings; error if any
/// unbound variable or unsupported call remains.
Result<double> EvalConstExpr(const ExprPtr& expr,
                             const std::map<std::string, double>& bindings);

}  // namespace powerlog::datalog
