// Semantic analysis: identifies the recursive aggregate rule and extracts
// the aggregate G, non-aggregate F', constant part C, initialisation X⁰ and
// termination criteria (paper §5.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/result.h"
#include "datalog/ast.h"
#include "datalog/expr_compiler.h"
#include "smt/monotone.h"
#include "smt/term.h"

namespace powerlog::datalog {

/// How X⁰ is populated from the non-recursive initialisation rules.
enum class InitKind {
  kNone,              ///< empty X⁰ (aggregate identity everywhere)
  kAllVerticesConst,  ///< rank(0,X,r) :- node(X), r = c.
  kAllVerticesOwnId,  ///< cc(X,X) :- edge(X,_).
  kSingleSource,      ///< sssp(X,d) :- X = s, d = c.
};

struct InitSpec {
  InitKind kind = InitKind::kNone;
  double value = 0.0;
  uint32_t source = 0;  ///< kSingleSource only
  /// True if the init rule is iteration-indexed (rank(0,X,r) :- ...), i.e.
  /// derives facts only at iteration 0; false if the init facts are
  /// re-derived every iteration (sssp(X,d) :- X=s, d=0).
  bool iteration_indexed = false;
};

/// The constant part C of the decomposition G∘F(X) = G(F'(X) ∪ C).
enum class ConstKind {
  kNone,
  kAllVertices,  ///< e.g. PageRank's 0.15 per vertex
  kSingleKey,    ///< e.g. Katz's 10000 at the source
};

struct ConstSpec {
  ConstKind kind = ConstKind::kNone;
  double value = 0.0;
  uint32_t key = 0;  ///< kSingleKey only
};

/// Two-level termination (§2.2): user-level epsilon + system-level cap.
struct TerminationSpec {
  bool has_epsilon = false;
  double epsilon = 0.0;
  int64_t max_iterations = 0;  ///< 0 = unlimited
};

/// F' as the runtime sees it: an expression of the recursive value plus the
/// edge weight / source degree, with every remaining symbol bound to a
/// constant (from @bind, defaulting per-aux-table to 1.0).
struct EdgeFunction {
  ExprPtr expr;
  std::string input_var;
  std::string weight_var;   ///< "" if the program ignores edge weights
  std::string degree_var;   ///< "" if no degree() predicate is joined
  std::map<std::string, double> const_bindings;
};

/// \brief Everything later stages need, extracted from one parsed program.
struct AnalyzedProgram {
  std::string name;
  std::string head_predicate;
  std::string edges_predicate;
  AggKind aggregate = AggKind::kSum;

  EdgeFunction edge_fn;       // F'
  ConstSpec constant;         // C
  InitSpec init;              // X⁰
  TerminationSpec termination;

  /// F' as an SMT term with the recursive value renamed to "x"; all other
  /// symbols stay symbolic under `constraints` (from @assume + auto d>0).
  smt::TermPtr f_term;
  smt::ConstraintSet constraints;

  /// True if the program propagates along reversed edges (CC-style
  /// "value from in-neighbors" formulations are normalised to push-style).
  bool uses_in_edges = false;

  std::string summary;  ///< human-readable extraction report
};

/// Analyzes a parsed program. Fails with descriptive errors for programs
/// outside the supported fragment (multi-key group-by, mutual recursion,
/// non-linear rules) — mirroring the paper's §2.1 restrictions.
Result<AnalyzedProgram> Analyze(const Program& program);

}  // namespace powerlog::datalog
