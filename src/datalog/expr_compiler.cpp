#include "datalog/expr_compiler.h"

#include <cmath>

#include "common/string_util.h"

namespace powerlog::datalog {

double CompiledExpr::Eval(double x, double w, double deg) const {
  double stack[16];
  size_t sp = 0;
  for (const Instr& ins : code_) {
    switch (ins.op) {
      case OpCode::kPushConst: stack[sp++] = ins.imm; break;
      case OpCode::kPushX: stack[sp++] = x; break;
      case OpCode::kPushW: stack[sp++] = w; break;
      case OpCode::kPushDeg: stack[sp++] = deg; break;
      case OpCode::kAdd: --sp; stack[sp - 1] += stack[sp]; break;
      case OpCode::kSub: --sp; stack[sp - 1] -= stack[sp]; break;
      case OpCode::kMul: --sp; stack[sp - 1] *= stack[sp]; break;
      case OpCode::kDiv: --sp; stack[sp - 1] /= stack[sp]; break;
      case OpCode::kNeg: stack[sp - 1] = -stack[sp - 1]; break;
      case OpCode::kMin: --sp; stack[sp - 1] = std::min(stack[sp - 1], stack[sp]); break;
      case OpCode::kMax: --sp; stack[sp - 1] = std::max(stack[sp - 1], stack[sp]); break;
      case OpCode::kRelu: stack[sp - 1] = stack[sp - 1] > 0 ? stack[sp - 1] : 0.0; break;
      case OpCode::kAbs: stack[sp - 1] = std::abs(stack[sp - 1]); break;
    }
  }
  return sp > 0 ? stack[sp - 1] : 0.0;
}

std::string CompiledExpr::Disassemble() const {
  std::string out;
  for (const Instr& ins : code_) {
    switch (ins.op) {
      case OpCode::kPushConst: out += StringFormat("push %g; ", ins.imm); break;
      case OpCode::kPushX: out += "push x; "; break;
      case OpCode::kPushW: out += "push w; "; break;
      case OpCode::kPushDeg: out += "push deg; "; break;
      case OpCode::kAdd: out += "add; "; break;
      case OpCode::kSub: out += "sub; "; break;
      case OpCode::kMul: out += "mul; "; break;
      case OpCode::kDiv: out += "div; "; break;
      case OpCode::kNeg: out += "neg; "; break;
      case OpCode::kMin: out += "min; "; break;
      case OpCode::kMax: out += "max; "; break;
      case OpCode::kRelu: out += "relu; "; break;
      case OpCode::kAbs: out += "abs; "; break;
    }
  }
  return out;
}

namespace {

class ExprCompilerImpl {
 public:
  explicit ExprCompilerImpl(const CompileEnv& env) : env_(env) {}

  Result<CompiledExpr> Compile(const ExprPtr& e) {
    POWERLOG_RETURN_NOT_OK(Emit(e));
    if (depth_max_ > 15) {
      return Status::NotSupported("expression too deep (> 15 stack slots)");
    }
    return CompiledExpr::FromCode(std::move(code_), static_cast<size_t>(depth_max_));
  }

 private:
  using OpCode = CompiledExpr::OpCode;

  void Push(OpCode op, double imm = 0.0) {
    code_.push_back(CompiledExpr::Instr{op, imm});
  }

  Status Emit(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kNumber:
        Track(+1);
        Push(OpCode::kPushConst, e->number_value);
        return Status::OK();
      case ExprKind::kVar: {
        Track(+1);
        if (e->var == env_.input_var) {
          Push(OpCode::kPushX);
        } else if (!env_.weight_var.empty() && e->var == env_.weight_var) {
          Push(OpCode::kPushW);
        } else if (!env_.degree_var.empty() && e->var == env_.degree_var) {
          Push(OpCode::kPushDeg);
        } else {
          auto it = env_.const_bindings.find(e->var);
          if (it == env_.const_bindings.end()) {
            return Status::InvalidArgument("unbound variable in edge expression: " +
                                           e->var);
          }
          Push(OpCode::kPushConst, it->second);
        }
        return Status::OK();
      }
      case ExprKind::kBinary: {
        POWERLOG_RETURN_NOT_OK(Emit(e->lhs));
        POWERLOG_RETURN_NOT_OK(Emit(e->rhs));
        Track(-1);
        switch (e->bin_op) {
          case BinOp::kAdd: Push(OpCode::kAdd); break;
          case BinOp::kSub: Push(OpCode::kSub); break;
          case BinOp::kMul: Push(OpCode::kMul); break;
          case BinOp::kDiv: Push(OpCode::kDiv); break;
        }
        return Status::OK();
      }
      case ExprKind::kCall: {
        const std::string name = ToLower(e->callee);
        if (name == "relu" || name == "abs") {
          if (e->call_args.size() != 1) {
            return Status::InvalidArgument(name + " takes one argument");
          }
          POWERLOG_RETURN_NOT_OK(Emit(e->call_args[0]));
          Push(name == "relu" ? OpCode::kRelu : OpCode::kAbs);
          return Status::OK();
        }
        if (name == "min" || name == "max") {
          if (e->call_args.size() != 2) {
            return Status::InvalidArgument(name + " takes two arguments");
          }
          POWERLOG_RETURN_NOT_OK(Emit(e->call_args[0]));
          POWERLOG_RETURN_NOT_OK(Emit(e->call_args[1]));
          Track(-1);
          Push(name == "min" ? OpCode::kMin : OpCode::kMax);
          return Status::OK();
        }
        return Status::NotSupported("unknown function: " + e->callee);
      }
      case ExprKind::kWildcard:
        return Status::InvalidArgument("wildcard in arithmetic expression");
    }
    return Status::Internal("unreachable expression kind");
  }

  void Track(int delta) {
    depth_ += delta;
    if (depth_ > depth_max_) depth_max_ = depth_;
  }

  const CompileEnv& env_;
  std::vector<CompiledExpr::Instr> code_;
  int depth_ = 0;
  int depth_max_ = 0;
};

}  // namespace

Result<CompiledExpr> CompileExpr(const ExprPtr& expr, const CompileEnv& env) {
  ExprCompilerImpl impl(env);
  return impl.Compile(expr);
}

Result<smt::TermPtr> ExprToTerm(const ExprPtr& expr,
                                const std::map<std::string, std::string>& rename) {
  switch (expr->kind) {
    case ExprKind::kNumber: {
      if (!expr->number_text.empty()) {
        auto r = smt::Rational::FromDecimalString(expr->number_text);
        if (r.ok()) return smt::Const(*r);
      }
      return smt::ConstDouble(expr->number_value);
    }
    case ExprKind::kVar: {
      auto it = rename.find(expr->var);
      return smt::Var(it == rename.end() ? expr->var : it->second);
    }
    case ExprKind::kBinary: {
      auto l = ExprToTerm(expr->lhs, rename);
      if (!l.ok()) return l;
      auto r = ExprToTerm(expr->rhs, rename);
      if (!r.ok()) return r;
      switch (expr->bin_op) {
        case BinOp::kAdd: return smt::Add(*l, *r);
        case BinOp::kSub: return smt::Sub(*l, *r);
        case BinOp::kMul: return smt::Mul(*l, *r);
        case BinOp::kDiv: return smt::Div(*l, *r);
      }
      return Status::Internal("unreachable binop");
    }
    case ExprKind::kCall: {
      const std::string name = ToLower(expr->callee);
      std::vector<smt::TermPtr> args;
      for (const auto& a : expr->call_args) {
        auto t = ExprToTerm(a, rename);
        if (!t.ok()) return t;
        args.push_back(*t);
      }
      if (name == "relu" && args.size() == 1) return smt::Relu(args[0]);
      if (name == "abs" && args.size() == 1) return smt::Abs(args[0]);
      if (name == "min" && args.size() == 2) return smt::Min(args[0], args[1]);
      if (name == "max" && args.size() == 2) return smt::Max(args[0], args[1]);
      return Status::NotSupported("unknown function in term conversion: " +
                                  expr->callee);
    }
    case ExprKind::kWildcard:
      return Status::InvalidArgument("wildcard cannot be converted to a term");
  }
  return Status::Internal("unreachable expression kind");
}

Result<double> EvalConstExpr(const ExprPtr& expr,
                             const std::map<std::string, double>& bindings) {
  switch (expr->kind) {
    case ExprKind::kNumber:
      return expr->number_value;
    case ExprKind::kVar: {
      auto it = bindings.find(expr->var);
      if (it == bindings.end()) {
        return Status::NotFound("unbound variable in constant expression: " + expr->var);
      }
      return it->second;
    }
    case ExprKind::kBinary: {
      auto l = EvalConstExpr(expr->lhs, bindings);
      if (!l.ok()) return l;
      auto r = EvalConstExpr(expr->rhs, bindings);
      if (!r.ok()) return r;
      switch (expr->bin_op) {
        case BinOp::kAdd: return *l + *r;
        case BinOp::kSub: return *l - *r;
        case BinOp::kMul: return *l * *r;
        case BinOp::kDiv:
          if (*r == 0.0) return Status::InvalidArgument("constant division by zero");
          return *l / *r;
      }
      return Status::Internal("unreachable binop");
    }
    case ExprKind::kCall: {
      const std::string name = ToLower(expr->callee);
      if (expr->call_args.size() == 1) {
        auto a = EvalConstExpr(expr->call_args[0], bindings);
        if (!a.ok()) return a;
        if (name == "relu") return *a > 0 ? *a : 0.0;
        if (name == "abs") return std::abs(*a);
      }
      if (expr->call_args.size() == 2) {
        auto a = EvalConstExpr(expr->call_args[0], bindings);
        if (!a.ok()) return a;
        auto b = EvalConstExpr(expr->call_args[1], bindings);
        if (!b.ok()) return b;
        if (name == "min") return std::min(*a, *b);
        if (name == "max") return std::max(*a, *b);
      }
      return Status::NotSupported("unknown function in constant expression: " +
                                  expr->callee);
    }
    case ExprKind::kWildcard:
      return Status::InvalidArgument("wildcard in constant expression");
  }
  return Status::Internal("unreachable expression kind");
}

}  // namespace powerlog::datalog
