// The fourteen recursive aggregate programs of Table 1, as Datalog source.
//
// Twelve pass the MRA condition check; CommNet (mean aggregate, fails
// Property 1) and GCN-Forward (relu inside F', fails Property 2) do not.
// Pair-keyed programs (LCA, APSP) are expressed in their per-source /
// product-graph form, and Belief Propagation / SimRank use the paper's own
// simplification (footnote 4: "abstracting vertex-pairs into vertices").
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "datalog/ast.h"

namespace powerlog::datalog {

struct CatalogEntry {
  std::string name;          ///< machine name ("sssp")
  std::string display_name;  ///< Table-1 name ("SSSP")
  std::string citation;      ///< Table-1 provenance ("[24]")
  std::string source;        ///< Datalog text
  AggKind aggregate;         ///< Table-1 "Aggregator" column
  bool expected_mra_sat;     ///< Table-1 "MRA sat." column
  bool needs_weights;        ///< uses the edge weight column
  /// True if the program reads edge weights as transition/coupling
  /// probabilities (Adsorption's Markov matrix A, BP's E, Cost, Viterbi):
  /// such programs run on the row-stochastic view of a dataset.
  bool stochastic_weights = false;
};

/// All fourteen programs in Table-1 order.
const std::vector<CatalogEntry>& ProgramCatalog();

/// Lookup by machine name.
Result<CatalogEntry> GetCatalogEntry(const std::string& name);

}  // namespace powerlog::datalog
