#include "datalog/ast.h"

#include <algorithm>
#include <set>

namespace powerlog::datalog {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kSum: return "sum";
    case AggKind::kCount: return "count";
    case AggKind::kMean: return "mean";
  }
  return "?";
}

std::optional<AggKind> AggKindFromName(const std::string& name) {
  if (name == "min") return AggKind::kMin;
  if (name == "max") return AggKind::kMax;
  if (name == "sum") return AggKind::kSum;
  if (name == "count") return AggKind::kCount;
  if (name == "mean" || name == "avg") return AggKind::kMean;
  return std::nullopt;
}

namespace {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kNumber:
      return number_text.empty() ? std::to_string(number_value) : number_text;
    case ExprKind::kVar:
      return var;
    case ExprKind::kWildcard:
      return "_";
    case ExprKind::kBinary:
      return "(" + lhs->ToString() + " " + BinOpName(bin_op) + " " + rhs->ToString() +
             ")";
    case ExprKind::kCall: {
      std::string out = callee + "(";
      for (size_t i = 0; i < call_args.size(); ++i) {
        if (i) out += ", ";
        out += call_args[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

ExprPtr MakeNumber(double value, std::string text) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNumber;
  e->number_value = value;
  e->number_text = std::move(text);
  return e;
}

ExprPtr MakeVar(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kVar;
  e->var = std::move(name);
  return e;
}

ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeCall(std::string callee, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCall;
  e->callee = std::move(callee);
  e->call_args = std::move(args);
  return e;
}

ExprPtr MakeWildcard() {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kWildcard;
  return e;
}

namespace {
void CollectExprVars(const ExprPtr& e, std::set<std::string>& out) {
  switch (e->kind) {
    case ExprKind::kVar:
      out.insert(e->var);
      break;
    case ExprKind::kBinary:
      CollectExprVars(e->lhs, out);
      CollectExprVars(e->rhs, out);
      break;
    case ExprKind::kCall:
      for (const auto& a : e->call_args) CollectExprVars(a, out);
      break;
    default:
      break;
  }
}
}  // namespace

std::vector<std::string> ExprVars(const ExprPtr& e) {
  std::set<std::string> vars;
  CollectExprVars(e, vars);
  return {vars.begin(), vars.end()};
}

std::string Rule::ToString() const {
  std::string out = head.predicate + "(";
  for (size_t i = 0; i < head.args.size(); ++i) {
    if (i) out += ",";
    const HeadArg& a = head.args[i];
    if (a.aggregate) {
      out += AggKindName(*a.aggregate);
      out += "[" + a.agg_input->ToString() + "]";
    } else {
      out += a.expr->ToString();
    }
  }
  out += ") :- ";
  for (size_t b = 0; b < bodies.size(); ++b) {
    if (b) out += "; :- ";
    const RuleBody& body = bodies[b];
    for (size_t i = 0; i < body.literals.size(); ++i) {
      if (i) out += ", ";
      const BodyLiteral& lit = body.literals[i];
      if (lit.kind == BodyLiteral::Kind::kPredicate) {
        out += lit.predicate + "(";
        for (size_t j = 0; j < lit.args.size(); ++j) {
          if (j) out += ",";
          out += lit.args[j]->ToString();
        }
        out += ")";
      } else {
        out += lit.lhs->ToString();
        out += " ";
        out += CmpOpName(lit.cmp_op);
        out += " ";
        out += lit.rhs->ToString();
      }
    }
  }
  if (termination) {
    out += "; {";
    out += AggKindName(termination->agg);
    out += "[" + termination->delta_var + "] < " + std::to_string(termination->epsilon) +
           "}";
  }
  out += ".";
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const auto& [key, toks] : annotations) {
    out += "@" + key;
    for (const auto& t : toks) out += " " + t;
    out += ".\n";
  }
  for (const Rule& r : rules) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace powerlog::datalog
