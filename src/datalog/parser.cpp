#include "datalog/parser.h"

#include "common/string_util.h"
#include "datalog/lexer.h"

namespace powerlog::datalog {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program program;
    while (!Check(TokenKind::kEof)) {
      if (Check(TokenKind::kAt)) {
        POWERLOG_RETURN_NOT_OK(ParseAnnotation(&program));
      } else {
        auto rule = ParseRule();
        if (!rule.ok()) return rule.status();
        program.rules.push_back(std::move(rule).ValueOrDie());
      }
    }
    return program;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  Status ErrorHere(const std::string& what) const {
    const Token& t = Peek();
    return Status::ParseError(StringFormat("%d:%d: %s (found %s '%s')", t.line, t.column,
                                           what.c_str(), TokenKindName(t.kind),
                                           t.text.c_str()));
  }

  Status Expect(TokenKind kind, const char* context) {
    if (Match(kind)) return Status::OK();
    return ErrorHere(StringFormat("expected %s in %s", TokenKindName(kind), context));
  }

  Status ParseAnnotation(Program* program) {
    POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kAt, "annotation"));
    if (!Check(TokenKind::kIdent)) return ErrorHere("expected annotation name");
    std::string key = Advance().text;
    std::vector<std::string> values;
    while (!Check(TokenKind::kDot) && !Check(TokenKind::kEof)) {
      values.push_back(Advance().text);
    }
    POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kDot, "annotation"));
    program->annotations.emplace(std::move(key), std::move(values));
    return Status::OK();
  }

  Result<Rule> ParseRule() {
    Rule rule;
    rule.line = Peek().line;
    auto head = ParseHead();
    if (!head.ok()) return head.status();
    rule.head = std::move(head).ValueOrDie();
    POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kImplies, "rule"));
    while (true) {
      if (Check(TokenKind::kLBrace)) {
        auto tc = ParseTermination();
        if (!tc.ok()) return tc.status();
        rule.termination = std::move(tc).ValueOrDie();
      } else {
        auto body = ParseBody();
        if (!body.ok()) return body.status();
        rule.bodies.push_back(std::move(body).ValueOrDie());
      }
      if (Match(TokenKind::kSemicolon)) {
        Match(TokenKind::kImplies);  // optional ':-' before each extra body
        if (Check(TokenKind::kDot)) break;  // trailing ';' before '.'
        continue;
      }
      break;
    }
    POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kDot, "rule"));
    if (rule.bodies.empty()) {
      return Status::ParseError(
          StringFormat("%d: rule has no body", rule.line));
    }
    return rule;
  }

  Result<HeadAtom> ParseHead() {
    if (!Check(TokenKind::kIdent)) return ErrorHere("expected head predicate");
    HeadAtom head;
    head.predicate = Advance().text;
    POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kLParen, "rule head"));
    if (!Check(TokenKind::kRParen)) {
      do {
        auto arg = ParseHeadArg();
        if (!arg.ok()) return arg.status();
        head.args.push_back(std::move(arg).ValueOrDie());
      } while (Match(TokenKind::kComma));
    }
    POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen, "rule head"));
    return head;
  }

  Result<HeadArg> ParseHeadArg() {
    // `agg[expr]` if an aggregate name is directly followed by '['.
    if (Check(TokenKind::kIdent) && Peek(1).kind == TokenKind::kLBracket) {
      auto agg = AggKindFromName(Peek().text);
      if (agg) {
        Advance();  // agg name
        Advance();  // '['
        auto inner = ParseExpr();
        if (!inner.ok()) return inner.status();
        POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "aggregate"));
        HeadArg arg;
        arg.aggregate = *agg;
        arg.agg_input = std::move(inner).ValueOrDie();
        return arg;
      }
    }
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    HeadArg arg;
    arg.expr = std::move(e).ValueOrDie();
    return arg;
  }

  Result<TerminationClause> ParseTermination() {
    POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kLBrace, "termination clause"));
    if (!Check(TokenKind::kIdent)) return ErrorHere("expected aggregate name");
    auto agg = AggKindFromName(Peek().text);
    if (!agg) return ErrorHere("unknown aggregate in termination clause");
    Advance();
    POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kLBracket, "termination clause"));
    if (!Check(TokenKind::kIdent)) return ErrorHere("expected delta variable");
    std::string var = Advance().text;
    POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kRBracket, "termination clause"));
    POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kLess, "termination clause"));
    if (!Check(TokenKind::kNumber)) return ErrorHere("expected epsilon");
    auto eps = ParseDouble(Peek().text);
    if (!eps.ok()) return eps.status();
    Advance();
    POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kRBrace, "termination clause"));
    TerminationClause tc;
    tc.agg = *agg;
    tc.delta_var = std::move(var);
    tc.epsilon = *eps;
    return tc;
  }

  Result<RuleBody> ParseBody() {
    RuleBody body;
    do {
      auto lit = ParseLiteral();
      if (!lit.ok()) return lit.status();
      body.literals.push_back(std::move(lit).ValueOrDie());
    } while (Match(TokenKind::kComma));
    return body;
  }

  Result<BodyLiteral> ParseLiteral() {
    auto lhs = ParseExpr();
    if (!lhs.ok()) return lhs.status();
    ExprPtr lhs_e = std::move(lhs).ValueOrDie();

    CmpOp op;
    bool has_cmp = true;
    if (Match(TokenKind::kEquals)) {
      op = CmpOp::kEq;
    } else if (Match(TokenKind::kLess)) {
      op = CmpOp::kLt;
    } else if (Match(TokenKind::kLessEq)) {
      op = CmpOp::kLe;
    } else if (Match(TokenKind::kGreater)) {
      op = CmpOp::kGt;
    } else if (Match(TokenKind::kGreaterEq)) {
      op = CmpOp::kGe;
    } else {
      has_cmp = false;
    }

    BodyLiteral lit;
    if (has_cmp) {
      auto rhs = ParseExpr();
      if (!rhs.ok()) return rhs.status();
      lit.kind = BodyLiteral::Kind::kComparison;
      lit.cmp_op = op;
      lit.lhs = std::move(lhs_e);
      lit.rhs = std::move(rhs).ValueOrDie();
      return lit;
    }
    // No comparison: the expression must be a bare predicate atom.
    if (lhs_e->kind != ExprKind::kCall) {
      return ErrorHere("expected predicate atom or comparison");
    }
    lit.kind = BodyLiteral::Kind::kPredicate;
    lit.predicate = lhs_e->callee;
    lit.args = lhs_e->call_args;
    return lit;
  }

  Result<ExprPtr> ParseExpr() {
    auto lhs = ParseTerm();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).ValueOrDie();
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      const BinOp op = Check(TokenKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
      Advance();
      auto rhs = ParseTerm();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(op, std::move(e), std::move(rhs).ValueOrDie());
    }
    return e;
  }

  Result<ExprPtr> ParseTerm() {
    auto lhs = ParseFactor();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).ValueOrDie();
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
      const BinOp op = Check(TokenKind::kStar) ? BinOp::kMul : BinOp::kDiv;
      Advance();
      auto rhs = ParseFactor();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(op, std::move(e), std::move(rhs).ValueOrDie());
    }
    return e;
  }

  Result<ExprPtr> ParseFactor() {
    if (Check(TokenKind::kNumber)) {
      const std::string text = Advance().text;
      auto v = ParseDouble(text);
      if (!v.ok()) return v.status();
      return MakeNumber(*v, text);
    }
    if (Match(TokenKind::kMinus)) {
      auto inner = ParseFactor();
      if (!inner.ok()) return inner;
      return MakeBinary(BinOp::kSub, MakeNumber(0.0, "0"),
                        std::move(inner).ValueOrDie());
    }
    if (Match(TokenKind::kUnderscore)) {
      return MakeWildcard();
    }
    if (Check(TokenKind::kIdent)) {
      std::string name = Advance().text;
      if (Match(TokenKind::kLParen)) {
        std::vector<ExprPtr> args;
        if (!Check(TokenKind::kRParen)) {
          do {
            auto a = ParseExpr();
            if (!a.ok()) return a;
            args.push_back(std::move(a).ValueOrDie());
          } while (Match(TokenKind::kComma));
        }
        POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen, "call"));
        return MakeCall(std::move(name), std::move(args));
      }
      return MakeVar(std::move(name));
    }
    if (Match(TokenKind::kLParen)) {
      auto e = ParseExpr();
      if (!e.ok()) return e;
      POWERLOG_RETURN_NOT_OK(Expect(TokenKind::kRParen, "parenthesised expression"));
      return e;
    }
    return ErrorHere("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(const std::string& source) {
  auto tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).ValueOrDie());
  return parser.ParseProgram();
}

}  // namespace powerlog::datalog
