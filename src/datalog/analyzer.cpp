#include "datalog/analyzer.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/string_util.h"

namespace powerlog::datalog {
namespace {

/// Interpretation of a non-recursive predicate definition rule. The analyzer
/// recognises the three shapes the paper's programs use (§5.1):
///   p(X, c)        :- node(X) [, c = const].   -> kAllVerticesConst
///   p(X, c)        :- X = k, c = const.        -> kSingleKey
///   p(X, count[Y]) :- edge(X, Y).              -> kDegree
struct PredDef {
  enum class Kind { kAllVerticesConst, kSingleKey, kDegree };
  Kind kind;
  double value = 0.0;
  uint32_t key = 0;
};

bool IsPlainVar(const ExprPtr& e) { return e && e->kind == ExprKind::kVar; }

bool IsNumber(const ExprPtr& e) { return e && e->kind == ExprKind::kNumber; }

/// Matches `v + 1` / `1 + v`; returns the var name.
std::optional<std::string> MatchIterationSuccessor(const ExprPtr& e) {
  if (!e || e->kind != ExprKind::kBinary || e->bin_op != BinOp::kAdd) {
    return std::nullopt;
  }
  if (IsPlainVar(e->lhs) && IsNumber(e->rhs) && e->rhs->number_value == 1.0) {
    return e->lhs->var;
  }
  if (IsPlainVar(e->rhs) && IsNumber(e->lhs) && e->lhs->number_value == 1.0) {
    return e->rhs->var;
  }
  return std::nullopt;
}

/// Returns true if any body of `rule` references predicate `name`.
bool BodyReferences(const Rule& rule, const std::string& name) {
  for (const RuleBody& body : rule.bodies) {
    for (const BodyLiteral& lit : body.literals) {
      if (lit.kind == BodyLiteral::Kind::kPredicate && lit.predicate == name) {
        return true;
      }
    }
  }
  return false;
}

struct Annotations {
  std::string name;
  std::string edges = "edge";
  std::optional<uint32_t> source;
  int64_t max_iterations = 0;
  smt::ConstraintSet assumes;
  std::map<std::string, double> binds;
};

Result<Annotations> ParseAnnotations(const Program& program) {
  Annotations ann;
  for (const auto& [key, toks] : program.annotations) {
    if (key == "name") {
      if (toks.empty()) return Status::InvalidArgument("@name needs a value");
      ann.name = toks[0];
    } else if (key == "edges") {
      if (toks.empty()) return Status::InvalidArgument("@edges needs a predicate name");
      ann.edges = toks[0];
    } else if (key == "source") {
      if (toks.empty()) return Status::InvalidArgument("@source needs a vertex id");
      auto v = ParseInt64(toks[0]);
      if (!v.ok() || *v < 0) return Status::InvalidArgument("@source: bad vertex id");
      ann.source = static_cast<uint32_t>(*v);
    } else if (key == "maxiters") {
      if (toks.empty()) return Status::InvalidArgument("@maxiters needs a value");
      auto v = ParseInt64(toks[0]);
      if (!v.ok() || *v < 0) return Status::InvalidArgument("@maxiters: bad value");
      ann.max_iterations = *v;
    } else if (key == "assume") {
      // @assume d > 0.   tokens: ["d", ">", "0"]
      if (toks.size() != 3 || toks[2] != "0") {
        return Status::InvalidArgument(
            "@assume must have the form '@assume <var> <op> 0.'");
      }
      smt::Sign sign;
      if (toks[1] == ">") {
        sign = smt::Sign::kPositive;
      } else if (toks[1] == ">=") {
        sign = smt::Sign::kNonNegative;
      } else if (toks[1] == "<") {
        sign = smt::Sign::kNegative;
      } else if (toks[1] == "<=") {
        sign = smt::Sign::kNonPositive;
      } else {
        return Status::InvalidArgument("@assume: unknown comparison " + toks[1]);
      }
      ann.assumes.Assume(toks[0], sign);
    } else if (key == "bind") {
      // @bind p = 0.5.   tokens: ["p", "=", "0.5"]
      if (toks.size() != 3 || toks[1] != "=") {
        return Status::InvalidArgument("@bind must have the form '@bind <var> = <c>.'");
      }
      auto v = ParseDouble(toks[2]);
      if (!v.ok()) return Status::InvalidArgument("@bind: bad constant " + toks[2]);
      ann.binds[toks[0]] = *v;
    } else {
      return Status::InvalidArgument("unknown annotation @" + key);
    }
  }
  return ann;
}

/// Recognises non-recursive predicate definition rules into PredDefs.
Result<PredDef> InterpretPredDef(const Rule& rule, const Annotations& ann) {
  const HeadAtom& head = rule.head;
  if (rule.bodies.size() != 1) {
    return Status::NotSupported("aux predicate " + head.predicate +
                                " has multiple bodies");
  }
  const RuleBody& body = rule.bodies[0];

  // degree(X, count[Y]) :- edge(X, Y).
  if (head.args.size() == 2 && head.args[1].aggregate == AggKind::kCount) {
    for (const BodyLiteral& lit : body.literals) {
      if (lit.kind == BodyLiteral::Kind::kPredicate && lit.predicate == ann.edges) {
        PredDef def;
        def.kind = PredDef::Kind::kDegree;
        return def;
      }
    }
    return Status::NotSupported("count aggregate in aux predicate " + head.predicate +
                                " is not a degree definition");
  }

  if (head.args.size() != 2 || head.args[0].aggregate || head.args[1].aggregate) {
    return Status::NotSupported("aux predicate " + head.predicate +
                                " is not of the form p(Key, Value)");
  }
  if (!IsPlainVar(head.args[0].expr)) {
    return Status::NotSupported("aux predicate " + head.predicate +
                                " must have a variable key");
  }
  const std::string key_var = head.args[0].expr->var;

  // Gather assignments / key constraints / node() from the body.
  bool all_vertices = false;
  std::optional<uint32_t> fixed_key;
  std::map<std::string, double> env = ann.binds;
  for (const BodyLiteral& lit : body.literals) {
    if (lit.kind == BodyLiteral::Kind::kPredicate) {
      if (lit.predicate == "node" || lit.predicate == ann.edges) {
        all_vertices = true;
        continue;
      }
      return Status::NotSupported("aux predicate " + head.predicate +
                                  " references predicate " + lit.predicate);
    }
    if (lit.cmp_op != CmpOp::kEq || !IsPlainVar(lit.lhs)) {
      return Status::NotSupported("unsupported constraint in aux predicate " +
                                  head.predicate);
    }
    if (lit.lhs->var == key_var) {
      auto v = EvalConstExpr(lit.rhs, env);
      if (!v.ok()) return v.status();
      fixed_key = static_cast<uint32_t>(*v);
    } else {
      auto v = EvalConstExpr(lit.rhs, env);
      if (!v.ok()) return v.status();
      env[lit.lhs->var] = *v;
    }
  }

  // Resolve the head value.
  double value = 0.0;
  if (IsNumber(head.args[1].expr)) {
    value = head.args[1].expr->number_value;
  } else if (IsPlainVar(head.args[1].expr)) {
    auto it = env.find(head.args[1].expr->var);
    if (it == env.end()) {
      return Status::NotSupported("aux predicate " + head.predicate +
                                  ": value variable " + head.args[1].expr->var +
                                  " is not assigned a constant");
    }
    value = it->second;
  } else {
    auto v = EvalConstExpr(head.args[1].expr, env);
    if (!v.ok()) return v.status();
    value = *v;
  }

  PredDef def;
  def.value = value;
  if (fixed_key) {
    def.kind = PredDef::Kind::kSingleKey;
    def.key = *fixed_key;
  } else if (all_vertices) {
    def.kind = PredDef::Kind::kAllVerticesConst;
  } else {
    return Status::NotSupported("aux predicate " + head.predicate +
                                " has neither a key constraint nor node()/edge()");
  }
  return def;
}

}  // namespace

Result<AnalyzedProgram> Analyze(const Program& program) {
  AnalyzedProgram out;
  auto ann_r = ParseAnnotations(program);
  if (!ann_r.ok()) return ann_r.status();
  Annotations ann = std::move(ann_r).ValueOrDie();
  out.name = ann.name;
  out.edges_predicate = ann.edges;
  out.constraints = ann.assumes;
  out.termination.max_iterations = ann.max_iterations;

  // ---- Locate the unique recursive rule. ----
  const Rule* recursive_rule = nullptr;
  for (const Rule& rule : program.rules) {
    if (BodyReferences(rule, rule.head.predicate)) {
      if (recursive_rule != nullptr) {
        return Status::NotSupported(
            "multiple recursive rules (mutual/non-linear recursion is outside the "
            "supported fragment, §2.1)");
      }
      recursive_rule = &rule;
    }
  }
  if (recursive_rule == nullptr) {
    return Status::InvalidArgument("program has no recursive rule");
  }
  out.head_predicate = recursive_rule->head.predicate;

  // Reject indirect mutual recursion: another rule must not reference the
  // recursive head unless it *is* an init rule for the head predicate.
  for (const Rule& rule : program.rules) {
    if (&rule == recursive_rule) continue;
    if (BodyReferences(rule, out.head_predicate)) {
      return Status::NotSupported("predicate " + rule.head.predicate +
                                  " depends on the recursive predicate (mutual "
                                  "recursion is outside the supported fragment)");
    }
  }

  // ---- Head analysis: iteration arg, key var, aggregate. ----
  const HeadAtom& head = recursive_rule->head;
  int agg_pos = -1;
  int iter_pos = -1;
  int key_pos = -1;
  std::string iter_var;
  std::string head_key_var;
  for (size_t i = 0; i < head.args.size(); ++i) {
    const HeadArg& arg = head.args[i];
    if (arg.aggregate) {
      if (agg_pos >= 0) {
        return Status::NotSupported("multiple aggregates in the rule head");
      }
      agg_pos = static_cast<int>(i);
      out.aggregate = *arg.aggregate;
      continue;
    }
    if (auto iv = MatchIterationSuccessor(arg.expr)) {
      if (iter_pos >= 0) return Status::NotSupported("multiple iteration arguments");
      iter_pos = static_cast<int>(i);
      iter_var = *iv;
      continue;
    }
    if (IsPlainVar(arg.expr)) {
      if (key_pos >= 0) {
        return Status::NotSupported(
            "multiple group-by keys in the rule head (multi-key group-by is outside "
            "the supported fragment)");
      }
      key_pos = static_cast<int>(i);
      head_key_var = arg.expr->var;
      continue;
    }
    return Status::NotSupported("unsupported head argument: " + arg.expr->ToString());
  }
  if (agg_pos < 0) {
    return Status::InvalidArgument(
        "recursive rule head has no aggregate: not a recursive aggregate program");
  }
  if (key_pos < 0) {
    return Status::NotSupported("recursive rule head has no group-by key variable");
  }
  const HeadArg& agg_arg = head.args[static_cast<size_t>(agg_pos)];
  if (!IsPlainVar(agg_arg.agg_input)) {
    return Status::NotSupported("aggregate input must be a single variable, got " +
                                agg_arg.agg_input->ToString());
  }
  const std::string agg_var = agg_arg.agg_input->var;

  // ---- Interpret non-recursive rules. ----
  std::map<std::string, PredDef> pred_defs;
  for (const Rule& rule : program.rules) {
    if (&rule == recursive_rule) continue;
    if (rule.head.predicate == out.head_predicate) {
      // Initialisation rule for the recursive predicate.
      auto interpret_init = [&]() -> Status {
        const HeadAtom& ihead = rule.head;
        if (rule.bodies.size() != 1) {
          return Status::NotSupported("init rule with multiple bodies");
        }
        const RuleBody& body = rule.bodies[0];
        // Positional view: iteration literal (number 0) may lead.
        std::vector<const HeadArg*> args;
        for (const HeadArg& a : ihead.args) {
          if (IsNumber(a.expr) && a.expr->number_value == 0.0 &&
              ihead.args.size() == head.args.size() && iter_pos >= 0) {
            out.init.iteration_indexed = true;
            continue;  // iteration index 0
          }
          args.push_back(&a);
        }
        if (args.size() != 2) {
          return Status::NotSupported("init rule must bind (key, value)");
        }
        const HeadArg* key_arg = args[0];
        const HeadArg* val_arg = args[1];
        if (!IsPlainVar(key_arg->expr)) {
          return Status::NotSupported("init rule key must be a variable");
        }
        const std::string ikey = key_arg->expr->var;
        // cc(X, X) :- edge(X, _).
        if (IsPlainVar(val_arg->expr) && val_arg->expr->var == ikey) {
          out.init.kind = InitKind::kAllVerticesOwnId;
          return Status::OK();
        }
        bool all_vertices = false;
        std::optional<uint32_t> fixed_key;
        std::map<std::string, double> env = ann.binds;
        for (const BodyLiteral& lit : body.literals) {
          if (lit.kind == BodyLiteral::Kind::kPredicate) {
            if (lit.predicate == "node" || lit.predicate == ann.edges) {
              all_vertices = true;
              continue;
            }
            return Status::NotSupported("init rule references predicate " +
                                        lit.predicate);
          }
          if (lit.cmp_op != CmpOp::kEq || !IsPlainVar(lit.lhs)) {
            return Status::NotSupported("unsupported constraint in init rule");
          }
          auto v = EvalConstExpr(lit.rhs, env);
          if (!v.ok()) return v.status();
          if (lit.lhs->var == ikey) {
            fixed_key = static_cast<uint32_t>(*v);
          } else {
            env[lit.lhs->var] = *v;
          }
        }
        double value = 0.0;
        if (IsNumber(val_arg->expr)) {
          value = val_arg->expr->number_value;
        } else if (IsPlainVar(val_arg->expr)) {
          auto it = env.find(val_arg->expr->var);
          if (it == env.end()) {
            return Status::NotSupported("init rule value variable " +
                                        val_arg->expr->var + " is unbound");
          }
          value = it->second;
        } else {
          auto v = EvalConstExpr(val_arg->expr, env);
          if (!v.ok()) return v.status();
          value = *v;
        }
        if (fixed_key) {
          out.init.kind = InitKind::kSingleSource;
          out.init.source = ann.source.value_or(*fixed_key);
          out.init.value = value;
        } else if (all_vertices) {
          out.init.kind = InitKind::kAllVerticesConst;
          out.init.value = value;
        } else {
          return Status::NotSupported("init rule binds neither a key nor node()");
        }
        return Status::OK();
      };
      POWERLOG_RETURN_NOT_OK(interpret_init());
      continue;
    }
    auto def = InterpretPredDef(rule, ann);
    if (!def.ok()) return def.status();
    pred_defs[rule.head.predicate] = std::move(def).ValueOrDie();
  }

  // ---- Recursive rule bodies: one recursive, the rest constant. ----
  const RuleBody* recursive_body = nullptr;
  std::vector<const RuleBody*> constant_bodies;
  for (const RuleBody& body : recursive_rule->bodies) {
    const bool is_recursive = std::any_of(
        body.literals.begin(), body.literals.end(), [&](const BodyLiteral& lit) {
          return lit.kind == BodyLiteral::Kind::kPredicate &&
                 lit.predicate == out.head_predicate;
        });
    if (is_recursive) {
      if (recursive_body != nullptr) {
        return Status::NotSupported(
            "more than one recursive body (non-linear recursion)");
      }
      recursive_body = &body;
    } else {
      constant_bodies.push_back(&body);
    }
  }
  if (recursive_body == nullptr) {
    return Status::Internal("recursive rule lost its recursive body");
  }

  // ---- Extract from the recursive body. ----
  std::string source_var;
  std::string value_var;
  std::string weight_var;
  std::string degree_var;
  std::map<std::string, ExprPtr> assignments;
  std::map<std::string, double> const_bindings = ann.binds;
  std::vector<std::string> default_bound;

  for (const BodyLiteral& lit : recursive_body->literals) {
    if (lit.kind == BodyLiteral::Kind::kComparison) {
      if (lit.cmp_op != CmpOp::kEq || !IsPlainVar(lit.lhs)) {
        return Status::NotSupported(
            "recursive body supports only '<var> = <expr>' constraints");
      }
      assignments[lit.lhs->var] = lit.rhs;
      continue;
    }
    if (lit.predicate == out.head_predicate) {
      // Positional match against the head: key position -> source var,
      // aggregate position -> value var, iteration position -> iter var.
      if (lit.args.size() != head.args.size()) {
        return Status::InvalidArgument("recursive literal arity mismatch");
      }
      for (size_t i = 0; i < lit.args.size(); ++i) {
        const int pos = static_cast<int>(i);
        if (pos == iter_pos) {
          if (!IsPlainVar(lit.args[i]) || lit.args[i]->var != iter_var) {
            return Status::NotSupported("iteration argument of recursive literal must "
                                        "match the head's iteration variable");
          }
        } else if (pos == key_pos) {
          if (!IsPlainVar(lit.args[i])) {
            return Status::NotSupported("recursive literal key must be a variable");
          }
          source_var = lit.args[i]->var;
        } else if (pos == agg_pos) {
          if (!IsPlainVar(lit.args[i])) {
            return Status::NotSupported("recursive literal value must be a variable");
          }
          value_var = lit.args[i]->var;
        }
      }
      continue;
    }
    if (lit.predicate == ann.edges) {
      if (lit.args.size() < 2 || lit.args.size() > 3) {
        return Status::NotSupported("edges predicate must have 2 or 3 arguments");
      }
      if (!IsPlainVar(lit.args[0]) || !IsPlainVar(lit.args[1])) {
        return Status::NotSupported("edges predicate arguments must be variables");
      }
      if (lit.args.size() == 3) {
        if (!IsPlainVar(lit.args[2])) {
          return Status::NotSupported("edge weight must be a variable");
        }
        weight_var = lit.args[2]->var;
      }
      // Direction: edge(src, headkey) is push-style; edge(headkey, src) pulls
      // along in-edges.
      if (lit.args[1]->var == head_key_var) {
        out.uses_in_edges = false;
      } else if (lit.args[0]->var == head_key_var) {
        out.uses_in_edges = true;
      } else {
        return Status::NotSupported(
            "edges predicate does not connect the recursive key to the head key");
      }
      continue;
    }
    // degree() or aux predicate.
    auto it = pred_defs.find(lit.predicate);
    if (it != pred_defs.end() && it->second.kind == PredDef::Kind::kDegree) {
      if (lit.args.size() != 2 || !IsPlainVar(lit.args[1])) {
        return Status::NotSupported("degree predicate must bind a variable");
      }
      degree_var = lit.args[1]->var;
      continue;
    }
    // Aux table: bind its value variable(s) to constants.
    for (size_t i = 1; i < lit.args.size(); ++i) {
      if (!IsPlainVar(lit.args[i])) continue;
      const std::string& v = lit.args[i]->var;
      if (const_bindings.count(v)) continue;
      if (it != pred_defs.end() && it->second.kind == PredDef::Kind::kAllVerticesConst) {
        const_bindings[v] = it->second.value;
      } else {
        const_bindings[v] = 1.0;  // default; recorded in the summary
        default_bound.push_back(v);
      }
    }
  }
  if (source_var.empty() || value_var.empty()) {
    return Status::Internal("failed to locate recursive key/value variables");
  }
  (void)source_var;

  // Resolve the aggregate-input expression with assignment substitution.
  auto resolve = [&](const std::string& var) -> Result<ExprPtr> {
    std::set<std::string> visiting;
    std::function<Result<ExprPtr>(const ExprPtr&)> subst =
        [&](const ExprPtr& e) -> Result<ExprPtr> {
      switch (e->kind) {
        case ExprKind::kVar: {
          auto it = assignments.find(e->var);
          if (it == assignments.end()) return e;
          if (!visiting.insert(e->var).second) {
            return Status::InvalidArgument("cyclic assignment involving " + e->var);
          }
          auto r = subst(it->second);
          visiting.erase(e->var);
          return r;
        }
        case ExprKind::kBinary: {
          auto l = subst(e->lhs);
          if (!l.ok()) return l;
          auto r = subst(e->rhs);
          if (!r.ok()) return r;
          return MakeBinary(e->bin_op, *l, *r);
        }
        case ExprKind::kCall: {
          std::vector<ExprPtr> args;
          for (const auto& a : e->call_args) {
            auto s = subst(a);
            if (!s.ok()) return s;
            args.push_back(*s);
          }
          return MakeCall(e->callee, std::move(args));
        }
        default:
          return e;
      }
    };
    auto it = assignments.find(var);
    if (it == assignments.end()) {
      // `cc(Y,min[v]) :- cc(X,v), edge(X,Y)` — the aggregate input *is* the
      // recursive value (identity F').
      if (var == value_var) return MakeVar(var);
      return Status::InvalidArgument("aggregate input variable " + var +
                                     " is never assigned in the recursive body");
    }
    visiting.insert(var);
    return subst(it->second);
  };
  auto fexpr = resolve(agg_var);
  if (!fexpr.ok()) return fexpr.status();

  out.edge_fn.expr = *fexpr;
  out.edge_fn.input_var = value_var;
  out.edge_fn.weight_var = weight_var;
  out.edge_fn.degree_var = degree_var;
  out.edge_fn.const_bindings = const_bindings;

  // The checker sees F' over canonical "x"; degree vars are positive.
  auto f_term = ExprToTerm(*fexpr, {{value_var, "x"}});
  if (!f_term.ok()) return f_term.status();
  out.f_term = *f_term;
  if (!degree_var.empty()) out.constraints.Assume(degree_var, smt::Sign::kPositive);

  // ---- Constant bodies -> ConstSpec. ----
  for (const RuleBody* body : constant_bodies) {
    if (out.constant.kind != ConstKind::kNone) {
      return Status::NotSupported("multiple constant bodies");
    }
    std::map<std::string, double> env = ann.binds;
    std::optional<uint32_t> fixed_key;
    std::map<std::string, ExprPtr> local_assignments;
    for (const BodyLiteral& lit : body->literals) {
      if (lit.kind == BodyLiteral::Kind::kPredicate) {
        if (lit.predicate == "node" || lit.predicate == ann.edges) continue;
        auto it = pred_defs.find(lit.predicate);
        if (it == pred_defs.end()) {
          return Status::NotSupported("constant body references unknown predicate " +
                                      lit.predicate);
        }
        const PredDef& def = it->second;
        if (lit.args.size() >= 2 && IsPlainVar(lit.args[1])) {
          if (def.kind == PredDef::Kind::kDegree) {
            return Status::NotSupported("degree() in a constant body");
          }
          env[lit.args[1]->var] = def.value;
          if (def.kind == PredDef::Kind::kSingleKey) fixed_key = def.key;
        }
        continue;
      }
      if (lit.cmp_op != CmpOp::kEq || !IsPlainVar(lit.lhs)) {
        return Status::NotSupported("unsupported constraint in constant body");
      }
      local_assignments[lit.lhs->var] = lit.rhs;
    }
    auto it = local_assignments.find(agg_var);
    if (it == local_assignments.end()) {
      return Status::NotSupported(
          "constant body does not assign the aggregate input variable");
    }
    // Fold nested assignments then the final expression.
    std::function<Result<double>(const ExprPtr&)> fold =
        [&](const ExprPtr& e) -> Result<double> {
      if (e->kind == ExprKind::kVar) {
        auto ev = env.find(e->var);
        if (ev != env.end()) return ev->second;
        auto as = local_assignments.find(e->var);
        if (as != local_assignments.end()) return fold(as->second);
        return Status::NotSupported("unbound variable in constant body: " + e->var);
      }
      if (e->kind == ExprKind::kBinary) {
        auto l = fold(e->lhs);
        if (!l.ok()) return l;
        auto r = fold(e->rhs);
        if (!r.ok()) return r;
        switch (e->bin_op) {
          case BinOp::kAdd: return *l + *r;
          case BinOp::kSub: return *l - *r;
          case BinOp::kMul: return *l * *r;
          case BinOp::kDiv:
            if (*r == 0) return Status::InvalidArgument("division by zero");
            return *l / *r;
        }
      }
      return EvalConstExpr(e, env);
    };
    auto value = fold(it->second);
    if (!value.ok()) return value.status();
    if (fixed_key) {
      out.constant.kind = ConstKind::kSingleKey;
      out.constant.key = *fixed_key;
    } else {
      out.constant.kind = ConstKind::kAllVertices;
    }
    out.constant.value = *value;
  }

  // ---- Termination. ----
  if (recursive_rule->termination) {
    out.termination.has_epsilon = true;
    out.termination.epsilon = recursive_rule->termination->epsilon;
  }

  // ---- Source override & summary. ----
  if (ann.source && out.init.kind == InitKind::kSingleSource) {
    out.init.source = *ann.source;
  }
  std::string summary =
      StringFormat("program '%s': G=%s, F'(x)=%s", out.name.c_str(),
                   AggKindName(out.aggregate), out.edge_fn.expr->ToString().c_str());
  if (out.constant.kind == ConstKind::kAllVertices) {
    summary += StringFormat(", C=%g per vertex", out.constant.value);
  } else if (out.constant.kind == ConstKind::kSingleKey) {
    summary += StringFormat(", C=%g at key %u", out.constant.value, out.constant.key);
  }
  if (!default_bound.empty()) {
    summary += " (defaulted aux bindings: " + Join(default_bound, ", ") + " = 1)";
  }
  out.summary = std::move(summary);
  return out;
}

}  // namespace powerlog::datalog
