// Recursive-descent parser producing the Program AST.
//
// (The paper uses an ANTLR-generated parser; a hand-written one covers the
// same grammar with better error messages and no codegen dependency.)
#pragma once

#include <string>

#include "common/result.h"
#include "datalog/ast.h"

namespace powerlog::datalog {

/// Parses Datalog source text into a Program. Errors carry line:column.
Result<Program> Parse(const std::string& source);

}  // namespace powerlog::datalog
