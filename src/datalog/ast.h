// Abstract syntax tree for recursive aggregate Datalog programs (§2.1).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace powerlog::datalog {

/// Aggregate operators the system knows (Table 1 uses all five; `mean` is
/// the non-associative negative control).
enum class AggKind { kMin, kMax, kSum, kCount, kMean };

const char* AggKindName(AggKind kind);
std::optional<AggKind> AggKindFromName(const std::string& name);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind { kNumber, kVar, kBinary, kCall, kWildcard };
enum class BinOp { kAdd, kSub, kMul, kDiv };

struct Expr {
  ExprKind kind;
  // kNumber
  double number_value = 0.0;
  std::string number_text;  ///< original literal text, for exact rationals
  // kVar
  std::string var;
  // kBinary
  BinOp bin_op = BinOp::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;
  // kCall: relu(x), abs(x), ...
  std::string callee;
  std::vector<ExprPtr> call_args;

  /// Round-trippable text form for diagnostics.
  std::string ToString() const;
};

ExprPtr MakeNumber(double value, std::string text);
ExprPtr MakeVar(std::string name);
ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeCall(std::string callee, std::vector<ExprPtr> args);
ExprPtr MakeWildcard();

/// Collects variable names appearing in `e` (sorted, distinct).
std::vector<std::string> ExprVars(const ExprPtr& e);

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// One argument of a rule head: either a plain expression or an aggregate
/// spec `agg[expr]`.
struct HeadArg {
  ExprPtr expr;                      // null if aggregate
  std::optional<AggKind> aggregate;  // set if `agg[...]`
  ExprPtr agg_input;                 // expression inside the brackets
};

struct HeadAtom {
  std::string predicate;
  std::vector<HeadArg> args;
};

/// Comparison operators usable in body literals.
enum class CmpOp { kEq, kLt, kLe, kGt, kGe };

/// A body literal: a predicate atom, or a comparison/assignment between
/// expressions (`dy = dx + dxy`, `X = 1`).
struct BodyLiteral {
  enum class Kind { kPredicate, kComparison };
  Kind kind;
  // kPredicate
  std::string predicate;
  std::vector<ExprPtr> args;
  // kComparison
  CmpOp cmp_op = CmpOp::kEq;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// One alternative body (bodies are ';'-separated per §2.1).
struct RuleBody {
  std::vector<BodyLiteral> literals;
};

/// User-level termination clause `{sum[Δa] < 0.001}` (§3.1).
struct TerminationClause {
  AggKind agg = AggKind::kSum;
  std::string delta_var;
  double epsilon = 0.0;
};

struct Rule {
  HeadAtom head;
  std::vector<RuleBody> bodies;
  std::optional<TerminationClause> termination;
  int line = 0;

  std::string ToString() const;
};

/// Parsed program: rules plus '@' annotations.
///
/// Annotations steer analysis without changing Datalog semantics:
///   @name sssp.            — program name
///   @edges edge.           — which predicate is the graph's edge relation
///   @assume d > 0.         — sign constraint for the condition checker
///   @bind p = 1.0.         — constant binding for an auxiliary symbol
///   @source 0.             — source vertex for single-source programs
///   @maxiters 100.         — system-level iteration cap (§2.2)
struct Program {
  std::vector<Rule> rules;
  /// annotation key -> list of raw token texts after the key.
  std::multimap<std::string, std::vector<std::string>> annotations;

  std::string ToString() const;
};

}  // namespace powerlog::datalog
