// Tokenizer for the paper's Datalog dialect.
//
// Extensions over textbook Datalog, following the paper:
//  * aggregates in rule heads:            sssp(Y, min[dy])
//  * arithmetic in bodies:                dy = dx + dxy
//  * termination clauses:                 {sum[Δa] < 0.001}
//  * '·' (U+00B7) as multiplication, 'Δ' (U+0394) as an identifier char
//  * '@' annotation lines:                @assume d > 0.
// Comments: '//' and '%' to end of line.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace powerlog::datalog {

enum class TokenKind {
  kIdent,
  kNumber,
  kImplies,   // :-
  kDot,
  kComma,
  kSemicolon,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kEquals,
  kLess,
  kGreater,
  kLessEq,
  kGreaterEq,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kUnderscore,
  kAt,
  kEof,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;  // identifier or number text
  int line;
  int column;
};

/// Tokenizes `source`; the resulting stream always ends with kEof.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace powerlog::datalog
