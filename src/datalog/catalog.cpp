#include "datalog/catalog.h"

namespace powerlog::datalog {

const std::vector<CatalogEntry>& ProgramCatalog() {
  static const std::vector<CatalogEntry> kCatalog = {
      {"sssp", "SSSP", "[24]",
       R"(
@name sssp.
@source 0.
// Program 1 of the paper.
sssp(X,d) :- X = 0, d = 0.
sssp(Y,min[dy]) :- sssp(X,dx), edge(X,Y,dxy), dy = dx + dxy.
)",
       AggKind::kMin, true, true},

      {"cc", "CC", "[24]",
       R"(
@name cc.
// Program 3: label propagation, min component id.
cc(X,X) :- edge(X,_).
cc(Y,min[v]) :- cc(X,v), edge(X,Y).
)",
       AggKind::kMin, true, false},

      {"pagerank", "PageRank", "[39]",
       R"(
@name pagerank.
@maxiters 200.
// Program 2: original (non-monotonic) PageRank.
degree(X,count[Y]) :- edge(X,Y).
rank(0,X,r) :- node(X), r = 0.
rank(i+1,Y,sum[ry]) :- node(Y), ry = 0.15;
                    :- rank(i,X,rx), edge(X,Y), degree(X,d), ry = 0.85*rx/d;
                    {sum[Δr] < 0.0001}.
)",
       AggKind::kSum, true, false},

      {"adsorption", "Adsorption", "[7]",
       R"(
@name adsorption.
@edges A.
@maxiters 200.
// Program 4: Markov-process label propagation.
pi(x,p2) :- node(x), p2 = 0.2.
pc(x,p)  :- node(x), p = 0.9.
I(x,i)   :- node(x), i = 1.
L(0,x,l) :- node(x), l = 0.
L(j+1,y,sum[a1]) :- I(y,i), pi(y,p2), a1 = i*p2;
                 :- L(j,x,a), A(x,y,w), pc(x,p), a1 = 0.7*a*w*p;
                 {sum[Δa] < 0.0001}.
)",
       AggKind::kSum, true, true, /*stochastic_weights=*/true},

      {"katz", "Katz metric", "[21]",
       R"(
@name katz.
@maxiters 200.
// Program 5: Katz proximity from a source. The paper writes β = 0.1; Katz
// convergence requires β < 1/λmax, and the skewed analogue datasets have
// λmax ≈ 150-230, so we use β = 0.003 (same program shape, convergent).
I(X,k) :- X = 0, k = 10000.
K(i+1,y,sum[k1]) :- I(y,j), k1 = j;
                 :- K(i,x,k), edge(x,y), k1 = 0.003*k;
                 {sum[Δk] < 0.001}.
)",
       AggKind::kSum, true, false},

      {"bp", "Belief Propagation", "[40]",
       R"(
@name bp.
@edges E.
@maxiters 200.
@bind h = 0.9.
@assume h >= 0.
@assume w >= 0.
// Program 6, simplified per the paper's footnote 4 (vertex-pairs abstracted
// into vertices; the coupling score h becomes a bound constant).
I(v,b) :- node(v), b = 1.
B(j+1,t,sum[b1]) :- I(t,b2), b1 = b2;
                 :- B(j,s,b), E(s,t,w), b1 = 0.8*w*b*h;
                 {sum[Δb] < 0.0001}.
)",
       AggKind::kSum, true, true, /*stochastic_weights=*/true},

      {"paths_dag", "Computing Paths in DAG", "[50]",
       R"(
@name paths_dag.
// Counts distinct paths from the source in a DAG; count accumulates as a
// sum of path counts (§2.3 runtime semantics of count).
seed(X,c) :- X = 0, c = 1.
paths(Y,count[c1]) :- seed(Y,c2), c1 = c2;
                   :- paths(X,c), edge(X,Y), c1 = c.
)",
       AggKind::kCount, true, false},

      {"cost", "Cost", "[50]",
       R"(
@name cost.
@maxiters 100.
@assume w >= 0.
// Attenuated cost accumulation over weighted paths.
seed(X,c) :- X = 0, c = 1.
cost(Y,sum[c1]) :- seed(Y,s), c1 = s;
                :- cost(X,c), edge(X,Y,w), c1 = 0.5*c*w;
                {sum[Δc] < 0.0001}.
)",
       AggKind::kSum, true, true, /*stochastic_weights=*/true},

      {"viterbi", "Viterbi Algorithm", "[50]",
       R"(
@name viterbi.
@assume p > 0.
// Max-product most-probable-path; edge weights are transition probabilities.
vit(X,v) :- X = 0, v = 1.
vit(Y,max[v1]) :- vit(X,v), edge(X,Y,p), v1 = v*p.
)",
       AggKind::kMax, true, true, /*stochastic_weights=*/true},

      {"simrank", "SimRank", "[20]",
       R"(
@name simrank.
@maxiters 100.
// Vertex-abstracted SimRank (paper footnote 4): decayed similarity mass
// spread over out-neighbors.
degree(X,count[Y]) :- edge(X,Y).
seed(x,s) :- node(x), s = 1.
sim(Y,sum[s1]) :- seed(Y,s2), s1 = 0.2*s2;
               :- sim(X,s), edge(X,Y), degree(X,d), s1 = 0.8*s/d;
               {sum[Δs] < 0.0001}.
)",
       AggKind::kSum, true, false},

      {"lca", "Lowest Common Ancestor", "[44]",
       R"(
@name lca.
// Runs on the ancestor product graph (pair keys encoded as vertices):
// minimum number of upward moves until the two walks meet.
lca(X,v) :- X = 0, v = 0.
lca(Y,min[v1]) :- lca(X,v), edge(X,Y), v1 = v + 1.
)",
       AggKind::kMin, true, false},

      {"apsp", "APSP", "[50]",
       R"(
@name apsp.
// All-pairs shortest paths: product-form, one SSSP instance per source
// (pair keys (s,v) are encoded as vertices of the product graph).
apsp(X,d) :- X = 0, d = 0.
apsp(Y,min[d1]) :- apsp(X,d), edge(X,Y,w), d1 = d + w.
)",
       AggKind::kMin, true, true},

      {"commnet", "CommNet", "[52]",
       R"(
@name commnet.
@maxiters 20.
// Multi-agent communication averaging step: the mean aggregate is not
// associative, so Property 1 fails.
comm(0,x,h) :- node(x), h = 1.
comm(j+1,y,mean[h1]) :- comm(j,x,h), edge(x,y), h1 = 0.5*h.
)",
       AggKind::kMean, false, false},

      {"gcn_forward", "GCN-Forward", "[22]",
       R"(
@name gcn_forward.
@edges A.
@maxiters 20.
@bind p = 1.0.
// Program 7: graph convolution forward pass; relu breaks Property 2
// (sum(relu(sum(-1,2)), relu(sum(1,-2))) = 1 but the flattened form gives 3).
gcn(0,x,g) :- node(x), g = 1.
gcn(j+1,Y,sum[g1]) :- gcn(j,X,g), A(X,Y,w), g1 = relu(g*p)*w.
)",
       AggKind::kSum, false, true},
  };
  return kCatalog;
}

Result<CatalogEntry> GetCatalogEntry(const std::string& name) {
  for (const CatalogEntry& entry : ProgramCatalog()) {
    if (entry.name == name) return entry;
  }
  return Status::NotFound("no catalog program named '" + name + "'");
}

}  // namespace powerlog::datalog
