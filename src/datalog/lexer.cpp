#include "datalog/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace powerlog::datalog {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kImplies: return "':-'";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kLessEq: return "'<='";
    case TokenKind::kGreaterEq: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kUnderscore: return "'_'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kEof: return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentStart(unsigned char c) {
  return std::isalpha(c) || c == '_' || c >= 0x80;  // UTF-8 continuation ok
}

bool IsIdentChar(unsigned char c) {
  return std::isalnum(c) || c == '_' || c >= 0x80;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  int col = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto push = [&](TokenKind kind, std::string text, int tline, int tcol) {
    tokens.push_back(Token{kind, std::move(text), tline, tcol});
  };

  while (i < n) {
    const unsigned char c = static_cast<unsigned char>(source[i]);
    const int tline = line;
    const int tcol = col;

    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (std::isspace(c)) {
      ++col;
      ++i;
      continue;
    }
    // Comments.
    if (c == '%' || (c == '/' && i + 1 < n && source[i + 1] == '/')) {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    // '·' multiplication (UTF-8 0xC2 0xB7).
    if (c == 0xC2 && i + 1 < n && static_cast<unsigned char>(source[i + 1]) == 0xB7) {
      push(TokenKind::kStar, "*", tline, tcol);
      i += 2;
      col += 1;
      continue;
    }
    if (c == ':') {
      if (i + 1 < n && source[i + 1] == '-') {
        push(TokenKind::kImplies, ":-", tline, tcol);
        i += 2;
        col += 2;
        continue;
      }
      return Status::ParseError(
          StringFormat("%d:%d: expected ':-' after ':'", tline, tcol));
    }
    if (std::isdigit(c) || (c == '.' && i + 1 < n && std::isdigit(
                                static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      bool seen_dot = false;
      while (i < n) {
        const char d = source[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.' && !seen_dot && i + 1 < n &&
                   std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
          seen_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && i + 1 < n &&
                   (std::isdigit(static_cast<unsigned char>(source[i + 1])) ||
                    ((source[i + 1] == '+' || source[i + 1] == '-') && i + 2 < n &&
                     std::isdigit(static_cast<unsigned char>(source[i + 2]))))) {
          i += 2;
          while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
          break;
        } else {
          break;
        }
      }
      std::string text = source.substr(start, i - start);
      col += static_cast<int>(i - start);
      push(TokenKind::kNumber, std::move(text), tline, tcol);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(static_cast<unsigned char>(source[i]))) ++i;
      std::string text = source.substr(start, i - start);
      col += static_cast<int>(i - start);
      if (text == "_") {
        push(TokenKind::kUnderscore, "_", tline, tcol);
      } else {
        push(TokenKind::kIdent, std::move(text), tline, tcol);
      }
      continue;
    }

    TokenKind kind;
    std::string text(1, static_cast<char>(c));
    size_t len = 1;
    switch (c) {
      case '.': kind = TokenKind::kDot; break;
      case ',': kind = TokenKind::kComma; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '[': kind = TokenKind::kLBracket; break;
      case ']': kind = TokenKind::kRBracket; break;
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '=': kind = TokenKind::kEquals; break;
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          kind = TokenKind::kLessEq;
          text = "<=";
          len = 2;
        } else {
          kind = TokenKind::kLess;
        }
        break;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          kind = TokenKind::kGreaterEq;
          text = ">=";
          len = 2;
        } else {
          kind = TokenKind::kGreater;
        }
        break;
      case '+': kind = TokenKind::kPlus; break;
      case '-': kind = TokenKind::kMinus; break;
      case '*': kind = TokenKind::kStar; break;
      case '/': kind = TokenKind::kSlash; break;
      case '@': kind = TokenKind::kAt; break;
      default:
        return Status::ParseError(
            StringFormat("%d:%d: unexpected character '%c' (0x%02x)", tline, tcol,
                         std::isprint(c) ? static_cast<char>(c) : '?', c));
    }
    push(kind, std::move(text), tline, tcol);
    i += len;
    col += static_cast<int>(len);
  }
  push(TokenKind::kEof, "", line, col);
  return tokens;
}

}  // namespace powerlog::datalog
