// Deterministic synthetic graph generators.
//
// These stand in for the paper's real datasets (Table 2): the sync/async
// behaviour the paper studies is driven by degree skew and effective
// diameter, both of which R-MAT parameterisation controls.
#pragma once

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"

namespace powerlog {

/// \brief Parameters for the R-MAT recursive-matrix generator (Chakrabarti
/// et al.). a+b+c+d must equal 1; larger `a` means more skew.
struct RmatParams {
  uint32_t scale = 14;        ///< num_vertices = 2^scale.
  double edge_factor = 16.0;  ///< num_edges = edge_factor * num_vertices.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  bool weighted = false;      ///< Uniform weights in [min_weight, max_weight).
  double min_weight = 1.0;
  double max_weight = 64.0;
  uint64_t seed = 7;
};

/// Generates an R-MAT graph; self-loops removed, duplicates deduped.
Result<Graph> GenerateRmat(const RmatParams& params);

/// Erdős–Rényi G(n, m) digraph with m distinct non-loop edges.
Result<Graph> GenerateErdosRenyi(VertexId n, EdgeIndex m, uint64_t seed,
                                 bool weighted = false, double max_weight = 64.0);

/// Directed path 0 -> 1 -> ... -> n-1 (worst-case diameter; async stressor).
Graph GeneratePath(VertexId n, double weight = 1.0);

/// Directed cycle over n vertices.
Graph GenerateCycle(VertexId n, double weight = 1.0);

/// 2-D grid with edges to right/down neighbors; n = side*side vertices.
Graph GenerateGrid(VertexId side, bool weighted = false, uint64_t seed = 11);

/// Star: hub 0 -> spokes 1..n-1 (extreme skew).
Graph GenerateStar(VertexId n);

/// Complete digraph over n vertices (no self-loops). Keep n small.
Graph GenerateComplete(VertexId n);

/// Random rooted tree over n vertices, edges parent -> child (DAG; used by
/// the Paths-in-DAG / LCA programs).
Graph GenerateRandomTree(VertexId n, uint64_t seed);

/// Random DAG: edges only from lower to higher ids, expected out-degree deg.
Result<Graph> GenerateRandomDag(VertexId n, double deg, uint64_t seed,
                                bool weighted = false);

}  // namespace powerlog
