#include "graph/generators.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "graph/builder.h"

namespace powerlog {

Result<Graph> GenerateRmat(const RmatParams& params) {
  const double total = params.a + params.b + params.c + params.d;
  if (std::abs(total - 1.0) > 1e-9) {
    return Status::InvalidArgument("RMAT probabilities must sum to 1");
  }
  if (params.scale == 0 || params.scale > 28) {
    return Status::InvalidArgument("RMAT scale must be in [1, 28]");
  }
  const VertexId n = static_cast<VertexId>(1u) << params.scale;
  const EdgeIndex m = static_cast<EdgeIndex>(params.edge_factor * n);
  Rng rng(params.seed);
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (EdgeIndex i = 0; i < m; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (uint32_t bit = 0; bit < params.scale; ++bit) {
      const double r = rng.NextDouble();
      // Quadrant selection with light noise to avoid exact self-similarity.
      if (r < params.a) {
        // top-left: no bits set
      } else if (r < params.a + params.b) {
        dst |= (1u << bit);
      } else if (r < params.a + params.b + params.c) {
        src |= (1u << bit);
      } else {
        src |= (1u << bit);
        dst |= (1u << bit);
      }
    }
    const double w =
        params.weighted ? rng.NextDouble(params.min_weight, params.max_weight) : 1.0;
    builder.AddEdge(src, dst, w);
  }
  GraphBuilder::Options opts;
  opts.dedup = true;
  opts.remove_self_loops = true;
  return std::move(builder).Build(opts);
}

Result<Graph> GenerateErdosRenyi(VertexId n, EdgeIndex m, uint64_t seed, bool weighted,
                                 double max_weight) {
  if (n < 2) return Status::InvalidArgument("ER graph needs >= 2 vertices");
  Rng rng(seed);
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (EdgeIndex i = 0; i < m; ++i) {
    VertexId src = static_cast<VertexId>(rng.NextBounded(n));
    VertexId dst = static_cast<VertexId>(rng.NextBounded(n));
    if (src == dst) dst = (dst + 1) % n;
    const double w = weighted ? rng.NextDouble(1.0, max_weight) : 1.0;
    builder.AddEdge(src, dst, w);
  }
  GraphBuilder::Options opts;
  opts.dedup = true;
  opts.remove_self_loops = true;
  return std::move(builder).Build(opts);
}

Graph GeneratePath(VertexId n, double weight) {
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (VertexId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1, weight);
  return std::move(builder).Build().ValueOrDie();
}

Graph GenerateCycle(VertexId n, double weight) {
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (VertexId v = 0; v < n; ++v) builder.AddEdge(v, (v + 1) % n, weight);
  return std::move(builder).Build().ValueOrDie();
}

Graph GenerateGrid(VertexId side, bool weighted, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder;
  const VertexId n = side * side;
  builder.EnsureVertices(n);
  auto id = [side](VertexId r, VertexId c) { return r * side + c; };
  for (VertexId r = 0; r < side; ++r) {
    for (VertexId c = 0; c < side; ++c) {
      const double w1 = weighted ? rng.NextDouble(1.0, 8.0) : 1.0;
      const double w2 = weighted ? rng.NextDouble(1.0, 8.0) : 1.0;
      if (c + 1 < side) builder.AddEdge(id(r, c), id(r, c + 1), w1);
      if (r + 1 < side) builder.AddEdge(id(r, c), id(r + 1, c), w2);
    }
  }
  return std::move(builder).Build().ValueOrDie();
}

Graph GenerateStar(VertexId n) {
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (VertexId v = 1; v < n; ++v) builder.AddEdge(0, v, 1.0);
  return std::move(builder).Build().ValueOrDie();
}

Graph GenerateComplete(VertexId n) {
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId d = 0; d < n; ++d) {
      if (s != d) builder.AddEdge(s, d, 1.0);
    }
  }
  return std::move(builder).Build().ValueOrDie();
}

Graph GenerateRandomTree(VertexId n, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder builder;
  builder.EnsureVertices(n);
  for (VertexId v = 1; v < n; ++v) {
    const VertexId parent = static_cast<VertexId>(rng.NextBounded(v));
    builder.AddEdge(parent, v, 1.0);
  }
  return std::move(builder).Build().ValueOrDie();
}

Result<Graph> GenerateRandomDag(VertexId n, double deg, uint64_t seed, bool weighted) {
  if (n < 2) return Status::InvalidArgument("DAG needs >= 2 vertices");
  Rng rng(seed);
  GraphBuilder builder;
  builder.EnsureVertices(n);
  const EdgeIndex m = static_cast<EdgeIndex>(deg * n);
  for (EdgeIndex i = 0; i < m; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(n));
    VertexId b = static_cast<VertexId>(rng.NextBounded(n));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    const double w = weighted ? rng.NextDouble(1.0, 16.0) : 1.0;
    builder.AddEdge(a, b, w);
  }
  GraphBuilder::Options opts;
  opts.dedup = true;
  return std::move(builder).Build(opts);
}

}  // namespace powerlog
