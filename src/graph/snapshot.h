// Refcounted immutable graph snapshots: the sharing substrate of the
// serving plane (ISSUE 6, ROADMAP item 1).
//
// A snapshot is a `shared_ptr<const Graph>` whose CSR arrays — and, when
// requested, transpose — are materialised exactly once and then shared by
// every engine, query thread, and resident catalog entry that needs them.
// `Engine` already executes over a `const Graph&`; the registry is what
// lets N concurrent engines point at one snapshot with zero per-run graph
// rebuilds (the acceptance counter: builds() == number of distinct
// snapshots, never query count). Writing into a served graph is deliberately
// impossible — streaming mutations (ROADMAP item 2, mutation.h) patch a
// *new* snapshot copy-on-write and advance a per-key head-version chain
// (AdvanceHead/Head below); readers of earlier versions are never disturbed
// and drop their references at their own pace.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace powerlog {

/// \brief One version of an evolving graph: what a serving-plane catalog
/// entry holds while mutation batches advance its head (ROADMAP item 2).
/// Versions start at 1 and increment per AdvanceHead; the graph pointer is
/// an ordinary immutable snapshot.
struct VersionedSnapshot {
  uint64_t version = 0;
  std::shared_ptr<const Graph> graph;
};

/// \brief Process-wide registry of immutable, refcounted graph snapshots.
///
/// Thread-safe: concurrent Get calls for the same key build once and share
/// (the build happens under the registry mutex — serving-plane catalogs
/// materialise at startup, so serialising builds is the simple and correct
/// choice). Snapshots outlive the registry: dropping the registry or calling
/// Evict only releases the registry's reference.
class GraphSnapshotRegistry {
 public:
  /// Snapshot of registry dataset `name` (Table-2 analogue; `stochastic`
  /// selects the row-normalised view). `build_reverse` pre-materialises the
  /// transpose so pull-style kernels never pay the build on a query path.
  Result<std::shared_ptr<const Graph>> Dataset(const std::string& name,
                                               bool stochastic = false,
                                               bool build_reverse = false);

  /// Snapshot loaded from an edge-list file ("src dst [weight]" per line).
  Result<std::shared_ptr<const Graph>> FromFile(const std::string& path,
                                                bool build_reverse = false);

  /// Registers an externally built graph under `key` (tests, generators).
  /// Replaces any existing snapshot with that key.
  std::shared_ptr<const Graph> Adopt(const std::string& key, Graph graph,
                                     bool build_reverse = false);

  /// Number of graph materialisations this registry performed. The serving
  /// plane's zero-rebuild guarantee is `builds() == catalog size`, however
  /// many queries have been answered.
  int64_t builds() const { return builds_.load(std::memory_order_relaxed); }

  /// Number of resident snapshots.
  size_t size() const;

  /// Releases the registry's reference to `key` (outstanding holders keep
  /// the snapshot alive). Returns true if present.
  bool Evict(const std::string& key);

  /// Installs `graph` as the head of `key`'s version chain. The first
  /// install is version 1 and does not count as a build (the snapshot was
  /// built — and counted — by Dataset/FromFile/Adopt); every later advance
  /// installs a genuinely new CSR (a copy-on-write mutation patch) and
  /// increments builds(). Superseded versions stay alive for as long as
  /// their holders keep them.
  VersionedSnapshot AdvanceHead(const std::string& key,
                                std::shared_ptr<const Graph> graph);

  /// Current head of `key`'s version chain; NotFound before any install.
  Result<VersionedSnapshot> Head(const std::string& key) const;

 private:
  Result<std::shared_ptr<const Graph>> GetOrBuild(
      const std::string& key, bool build_reverse,
      const std::function<Result<std::shared_ptr<const Graph>>()>& build);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const Graph>> snapshots_;
  std::map<std::string, VersionedSnapshot> heads_;
  std::atomic<int64_t> builds_{0};
};

}  // namespace powerlog
