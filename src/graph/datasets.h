// Registry of the paper's six datasets (Table 2), reproduced as deterministic
// scaled-down synthetic analogues.
//
// The real graphs (Flickr, LiveJournal, Orkut, ClueWeb09, Wiki-link,
// Arabic-2005) are multi-hundred-MB downloads unavailable offline. Each entry
// here is an R-MAT instance whose skew and effective diameter are tuned to
// the published shape of its namesake:
//   * social networks (flickr/livej/orkut): moderate skew, low diameter;
//   * web graphs (web/arabic): heavy skew, hub-dominated;
//   * wiki: lower skew and a long-tail diameter (the async-friendly case in
//     Fig. 1(b)).
// Sizes are scaled down ~100x so every bench finishes in seconds.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace powerlog {

/// \brief Metadata for one registry entry.
struct DatasetInfo {
  std::string name;          ///< Short name used by benches ("flickr", ...).
  std::string paper_name;    ///< Name in the paper ("Flickr", "LiveJournal", ...).
  uint64_t paper_vertices;   ///< |V| reported in Table 2.
  uint64_t paper_edges;      ///< |E| reported in Table 2.
  std::string family;        ///< "social", "web", or "wiki".
};

/// Names of the six Table-2 datasets in paper order.
const std::vector<std::string>& DatasetNames();

/// Metadata for `name`; error if unknown.
Result<DatasetInfo> GetDatasetInfo(const std::string& name);

/// Returns the synthetic analogue of dataset `name` (weighted edges; SSSP
/// simply uses the weights, others ignore them). Graphs are generated once
/// and cached for the lifetime of the process.
///
/// With `stochastic = true`, weights are row-normalised into transition
/// probabilities (each vertex's out-weights sum to ~1) — the reading the
/// Markov-style programs (Adsorption, BP, Cost, Viterbi) give their weight
/// tables. Cached separately.
Result<const Graph*> GetDataset(const std::string& name, bool stochastic = false);

/// Shared-ownership variant: the returned pointer keeps the graph alive even
/// across ClearDatasetCache, so long-lived holders (the serving plane's
/// snapshot registry) never dangle while tests bound the cache's memory.
Result<std::shared_ptr<const Graph>> GetDatasetShared(const std::string& name,
                                                      bool stochastic = false);

/// Drops the cache's own references (tests use this to bound memory).
/// Outstanding shared_ptrs from GetDatasetShared stay valid.
void ClearDatasetCache();

}  // namespace powerlog
