// Product-graph constructions for pair-keyed recursive aggregate programs.
//
// The runtime is keyed by single vertices (§2.1's group-by key); APSP and
// LCA group by vertex *pairs*. Both reduce to single-key programs over a
// derived graph:
//   * APSP   — n independent SSSP instances ("product form"): apsp(s,v)
//              is sssp from s evaluated at v.
//   * LCA    — the ancestor product graph: state (a,b) steps to
//              (parent(a), b) or (a, parent(b)); the minimum number of steps
//              from (u,v) to any diagonal state (w,w) is attained at the
//              lowest common ancestor.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/kernel.h"
#include "graph/graph.h"

namespace powerlog {

/// \brief Dense all-pairs distances (row = source).
struct ApspResult {
  VertexId num_vertices = 0;
  std::vector<double> distances;  ///< row-major n*n; +inf = unreachable

  double At(VertexId src, VertexId dst) const {
    return distances[static_cast<size_t>(src) * num_vertices + dst];
  }
};

/// Evaluates the catalog `apsp` program as n per-source MRA runs.
/// Intended for small graphs (n^2 output).
Result<ApspResult> SolveApsp(const Graph& graph);

/// \brief The ancestor product graph of a forest.
///
/// Vertices encode pairs: Encode(a, b) = a * n + b. Edges: (a,b)->(pa,b) and
/// (a,b)->(a,pb), each weight 1, where pa/pb are the (unique) parents.
/// Diagonal states (w,w) are absorbing.
class AncestorProductGraph {
 public:
  /// Builds from a forest given as child->parent edges in `tree` (i.e. the
  /// tree's edges go parent -> child; parents are derived from the reverse).
  /// Fails if any vertex has more than one parent.
  static Result<AncestorProductGraph> Build(const Graph& tree);

  VertexId Encode(VertexId a, VertexId b) const { return a * n_ + b; }
  const Graph& graph() const { return product_; }
  VertexId base_vertices() const { return n_; }

 private:
  VertexId n_ = 0;
  Graph product_;
};

/// \brief LCA query result.
struct LcaResult {
  VertexId ancestor;  ///< the lowest common ancestor
  double distance;    ///< minimal total up-moves from (u, v) to meet
};

/// Runs the catalog `lca` min-program on the ancestor product graph from
/// (u, v). Fails if u and v share no ancestor (different trees).
Result<LcaResult> SolveLca(const Graph& tree, VertexId u, VertexId v);

}  // namespace powerlog
