#include "graph/partition.h"

#include "common/random.h"

namespace powerlog {

Partitioner::Partitioner(Kind kind, VertexId num_vertices, uint32_t num_workers)
    : kind_(kind),
      num_vertices_(num_vertices),
      num_workers_(num_workers == 0 ? 1 : num_workers),
      range_size_((num_vertices + num_workers_ - 1) / num_workers_) {
  if (range_size_ == 0) range_size_ = 1;
}

uint32_t Partitioner::WorkerOf(VertexId v) const {
  if (kind_ == Kind::kHash) {
    return static_cast<uint32_t>(Mix64(v) % num_workers_);
  }
  uint32_t w = v / range_size_;
  return w >= num_workers_ ? num_workers_ - 1 : w;
}

std::vector<VertexId> Partitioner::OwnedVertices(uint32_t worker) const {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (WorkerOf(v) == worker) out.push_back(v);
  }
  return out;
}

VertexId Partitioner::OwnedCount(uint32_t worker) const {
  VertexId count = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (WorkerOf(v) == worker) ++count;
  }
  return count;
}

}  // namespace powerlog
