#include "graph/builder.h"

#include <algorithm>
#include <numeric>

namespace powerlog {

void GraphBuilder::AddEdge(VertexId src, VertexId dst, double weight) {
  srcs_.push_back(src);
  dsts_.push_back(dst);
  weights_.push_back(weight);
  min_vertices_ = std::max(min_vertices_, std::max(src, dst) + 1);
}

void GraphBuilder::EnsureVertices(VertexId n) {
  min_vertices_ = std::max(min_vertices_, n);
}

Result<Graph> GraphBuilder::Build(const Options& options) && {
  if (options.symmetrize) {
    const size_t m = srcs_.size();
    srcs_.reserve(2 * m);
    dsts_.reserve(2 * m);
    weights_.reserve(2 * m);
    for (size_t i = 0; i < m; ++i) {
      srcs_.push_back(dsts_[i]);
      dsts_.push_back(srcs_[i]);
      weights_.push_back(weights_[i]);
    }
  }

  const VertexId n = min_vertices_;
  const size_t m = srcs_.size();

  // Sort edge triples by (src, dst) via an index permutation.
  std::vector<uint64_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](uint64_t a, uint64_t b) {
    if (srcs_[a] != srcs_[b]) return srcs_[a] < srcs_[b];
    return dsts_[a] < dsts_[b];
  });

  std::vector<EdgeIndex> offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<Edge> edges;
  edges.reserve(m);

  VertexId prev_src = 0;
  VertexId prev_dst = 0;
  bool have_prev = false;
  for (uint64_t idx : order) {
    const VertexId s = srcs_[idx];
    const VertexId d = dsts_[idx];
    const double w = weights_[idx];
    if (options.remove_self_loops && s == d) continue;
    if (options.dedup && have_prev && s == prev_src && d == prev_dst) {
      // Keep the minimum weight among duplicates (shortest-path friendly).
      Edge& last = edges.back();
      last.weight = std::min(last.weight, w);
      continue;
    }
    edges.push_back(Edge{d, w});
    ++offsets[s + 1];
    prev_src = s;
    prev_dst = d;
    have_prev = true;
  }
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  return Graph(std::move(offsets), std::move(edges));
}

}  // namespace powerlog
