// Vertex partitioning for the distributed runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace powerlog {

/// \brief Maps vertices to workers. Hash partitioning mirrors the paper's
/// shared-nothing key partitioning; Range is kept for locality experiments.
class Partitioner {
 public:
  enum class Kind { kHash, kRange };

  Partitioner(Kind kind, VertexId num_vertices, uint32_t num_workers);

  uint32_t WorkerOf(VertexId v) const;
  uint32_t num_workers() const { return num_workers_; }

  /// All vertices owned by `worker`, ascending.
  std::vector<VertexId> OwnedVertices(uint32_t worker) const;

  /// Number of vertices owned by `worker`.
  VertexId OwnedCount(uint32_t worker) const;

 private:
  Kind kind_;
  VertexId num_vertices_;
  uint32_t num_workers_;
  VertexId range_size_;  // for kRange
};

}  // namespace powerlog
