// Edge-list text IO: "src dst [weight]" per line, '#'/'%' comments.
#pragma once

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace powerlog {

/// Loads a graph from an edge-list file. Lines beginning with '#' or '%' are
/// skipped. Two-column lines get weight 1.0.
Result<Graph> LoadEdgeList(const std::string& path);

/// Parses the same format from an in-memory string (used by tests/examples).
Result<Graph> ParseEdgeList(const std::string& text);

/// Writes a graph as an edge-list file (weights included).
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace powerlog
