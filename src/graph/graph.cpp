#include "graph/graph.h"

#include <algorithm>
#include <memory>

#include "common/numa_arena.h"
#include "common/string_util.h"

namespace powerlog {

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<Edge> edges)
    : offsets_(std::move(offsets)), edges_(std::move(edges)) {
  if (offsets_.empty()) offsets_.push_back(0);
}

const Graph& Graph::Reverse() const {
  // call_once makes concurrent first calls safe (the old bare check-then-
  // build raced when worker threads pulled the transpose lazily). A copy of
  // a graph gets a fresh flag but may share an already-built reverse_, hence
  // the inner null check.
  std::call_once(*reverse_once_, [this] {
    if (reverse_) return;
    const VertexId n = num_vertices();
    std::vector<EdgeIndex> roffsets(n + 1, 0);
    for (const Edge& e : edges_) ++roffsets[e.dst + 1];
    for (VertexId v = 0; v < n; ++v) roffsets[v + 1] += roffsets[v];
    std::vector<Edge> redges(edges_.size());
    std::vector<EdgeIndex> cursor(roffsets.begin(), roffsets.end() - 1);
    for (VertexId src = 0; src < n; ++src) {
      for (const Edge* e = OutBegin(src); e != OutEnd(src); ++e) {
        redges[cursor[e->dst]++] = Edge{src, e->weight};
      }
    }
    reverse_ = std::make_shared<Graph>(std::move(roffsets), std::move(redges));
  });
  return *reverse_;
}

void Graph::AdvisePlacement() const {
  // const_cast is confined to kernel page advice: madvise/mbind change
  // where pages live, never what they contain.
  auto* offsets = const_cast<EdgeIndex*>(offsets_.data());
  auto* edges = const_cast<Edge*>(edges_.data());
  numa::AdviseHuge(offsets, offsets_.size() * sizeof(EdgeIndex));
  numa::AdviseHuge(edges, edges_.size() * sizeof(Edge));
  if (numa::NumNodes() > 1) {
    numa::Interleave(offsets, offsets_.size() * sizeof(EdgeIndex));
    numa::Interleave(edges, edges_.size() * sizeof(Edge));
  }
}

double Graph::AverageDegree() const {
  const VertexId n = num_vertices();
  return n == 0 ? 0.0 : static_cast<double>(num_edges()) / n;
}

uint32_t Graph::MaxOutDegree() const {
  uint32_t best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) best = std::max(best, OutDegree(v));
  return best;
}

std::string Graph::Summary() const {
  return StringFormat("|V|=%u, |E|=%llu, avg_deg=%.2f", num_vertices(),
                      static_cast<unsigned long long>(num_edges()), AverageDegree());
}

}  // namespace powerlog
