// Streaming graph mutations (ROADMAP item 2): validated batches of edge
// operations and their application to an immutable CSR snapshot.
//
// Snapshots never change — `ApplyMutationBatch` materialises a *new* CSR by
// patching the adjacency of touched source vertices copy-on-write (untouched
// edge ranges are copied wholesale, touched ranges are rebuilt from a
// per-source scratch list), so readers of the base snapshot are never
// disturbed and the serving plane can keep both versions alive side by side.
// Vertex ids are fixed for a snapshot chain: mutations add and remove edges
// between existing vertices only (the MonoTable rows backing a converged
// fixpoint are sized once).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/partition.h"

namespace powerlog {

enum class MutationOp : uint8_t {
  kInsertEdge,    ///< add (src, dst, weight); parallel edges are allowed
  kDeleteEdge,    ///< remove every (src, dst) edge; a miss is a no-op
  kReweightEdge,  ///< set the weight of every (src, dst) edge
};

const char* MutationOpName(MutationOp op);

/// \brief One edge operation. `weight` is ignored for kDeleteEdge.
struct EdgeMutation {
  MutationOp kind = MutationOp::kInsertEdge;
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 1.0;
};

/// \brief An ordered batch of edge operations, applied atomically: the whole
/// batch becomes one new graph version (and one re-convergence), never a
/// partially applied state. Ops within a batch see the effect of earlier ops
/// on the same edge.
class MutationBatch {
 public:
  void InsertEdge(VertexId src, VertexId dst, double weight = 1.0) {
    ops_.push_back({MutationOp::kInsertEdge, src, dst, weight});
  }
  void DeleteEdge(VertexId src, VertexId dst) {
    ops_.push_back({MutationOp::kDeleteEdge, src, dst, 0.0});
  }
  void ReweightEdge(VertexId src, VertexId dst, double weight) {
    ops_.push_back({MutationOp::kReweightEdge, src, dst, weight});
  }
  void Add(const EdgeMutation& op) { ops_.push_back(op); }

  const std::vector<EdgeMutation>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  void clear() { ops_.clear(); }

  /// Every op must name vertices inside `graph` and a finite weight
  /// (insert/reweight). Reports the first offending op by index.
  Status Validate(const Graph& graph) const;

  /// Groups op indices by the shard that owns each op's source vertex — the
  /// worker whose MonoTable rows the op's seeded deltas touch first. The
  /// returned vector has one (possibly empty) index list per worker.
  std::vector<std::vector<size_t>> RouteByShard(
      const Partitioner& partition) const;

 private:
  std::vector<EdgeMutation> ops_;
};

/// \brief One op's resolution against the base graph. Deletes of absent
/// edges and reweights that change nothing resolve to `applied == false`.
struct AppliedMutation {
  EdgeMutation op;
  bool applied = false;
  double old_weight = 0.0;  ///< first matched weight (delete/reweight)
};

/// \brief A patched CSR plus the resolved op list the re-convergence planner
/// consumes (reconverge.h).
struct MutationApplyResult {
  Graph graph;
  std::vector<AppliedMutation> ops;
  int64_t edges_added = 0;
  int64_t edges_removed = 0;
  int64_t edges_reweighted = 0;

  /// True if the batch changed the graph at all; false means `graph` is an
  /// identical copy of the base and no re-convergence is needed.
  bool changed() const {
    return edges_added + edges_removed + edges_reweighted > 0;
  }
};

/// Validates and applies `batch` to `base`, returning the patched graph.
/// `base` itself is untouched.
Result<MutationApplyResult> ApplyMutationBatch(const Graph& base,
                                               const MutationBatch& batch);

}  // namespace powerlog
