#include "graph/io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "graph/builder.h"

namespace powerlog {
namespace {

Result<Graph> ParseFromStream(std::istream& in, const std::string& origin) {
  GraphBuilder builder;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    std::vector<std::string> fields = SplitWhitespace(trimmed);
    if (fields.size() != 2 && fields.size() != 3) {
      return Status::ParseError(StringFormat("%s:%zu: expected 2 or 3 fields, got %zu",
                                             origin.c_str(), lineno, fields.size()));
    }
    auto src = ParseInt64(fields[0]);
    auto dst = ParseInt64(fields[1]);
    if (!src.ok()) return src.status();
    if (!dst.ok()) return dst.status();
    if (*src < 0 || *dst < 0) {
      return Status::ParseError(
          StringFormat("%s:%zu: negative vertex id", origin.c_str(), lineno));
    }
    double w = 1.0;
    if (fields.size() == 3) {
      auto wr = ParseDouble(fields[2]);
      if (!wr.ok()) return wr.status();
      w = *wr;
    }
    builder.AddEdge(static_cast<VertexId>(*src), static_cast<VertexId>(*dst), w);
  }
  return std::move(builder).Build();
}

}  // namespace

Result<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ParseFromStream(in, path);
}

Result<Graph> ParseEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseFromStream(in, "<string>");
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const Edge& e : graph.OutEdges(v)) {
      out << v << ' ' << e.dst << ' ' << e.weight << '\n';
    }
  }
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace powerlog
