// Mutable edge-list accumulator that finalises into a CSR Graph.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace powerlog {

/// \brief Accumulates (src, dst, weight) triples and builds a Graph.
///
/// The builder tracks the maximum vertex id seen; Build() produces a dense
/// graph over [0, max_id]. Options allow deduplication, self-loop removal,
/// and symmetrisation (adding the reverse of every edge).
class GraphBuilder {
 public:
  struct Options {
    bool dedup = false;            ///< Drop duplicate (src,dst), keeping min weight.
    bool remove_self_loops = false;
    bool symmetrize = false;       ///< Add (dst,src,w) for every (src,dst,w).
  };

  GraphBuilder() = default;

  void AddEdge(VertexId src, VertexId dst, double weight = 1.0);

  /// Ensures the graph has at least `n` vertices even if isolated.
  void EnsureVertices(VertexId n);

  size_t num_edges() const { return srcs_.size(); }

  /// Sorts, applies options, and produces the CSR graph.
  Result<Graph> Build(const Options& options) &&;
  Result<Graph> Build() && { return std::move(*this).Build(Options{}); }

 private:
  std::vector<VertexId> srcs_;
  std::vector<VertexId> dsts_;
  std::vector<double> weights_;
  VertexId min_vertices_ = 0;
};

}  // namespace powerlog
