#include "graph/datasets.h"

#include <map>
#include <memory>
#include <mutex>

#include "graph/builder.h"
#include "graph/generators.h"

namespace powerlog {
namespace {

struct Recipe {
  DatasetInfo info;
  RmatParams params;
  /// Appended directed chain (fresh vertices, entered only from vertex 0):
  /// gives the analogue a controllably long effective diameter. Real
  /// Wiki-link is the long-diameter outlier among the six datasets — this is
  /// what makes async win SSSP on Wiki in Fig. 1(b).
  VertexId chain_length = 0;
};

// Skew (`a` parameter) and scale are chosen so that:
//  * web/arabic have hub-dominated topology (high skew, short paths);
//  * wiki has the flattest degree distribution and the longest effective
//    diameter (this is what makes async win SSSP on Wiki in Fig. 1(b));
//  * social graphs sit in between, with orkut densest (mirrors Table 2).
const std::vector<Recipe>& Recipes() {
  static const std::vector<Recipe> kRecipes = [] {
    std::vector<Recipe> r;
    auto add = [&r](const char* name, const char* paper, uint64_t pv, uint64_t pe,
                    const char* family, uint32_t scale, double ef, double a,
                    uint64_t seed, double max_weight, VertexId chain) {
      RmatParams p;
      p.scale = scale;
      p.edge_factor = ef;
      p.a = a;
      const double rest = (1.0 - a) / 3.0;
      p.b = rest + 0.02;
      p.c = rest + 0.02;
      p.d = rest - 0.04;
      p.weighted = true;
      p.min_weight = 1.0;
      p.max_weight = max_weight;
      p.seed = seed;
      r.push_back(Recipe{DatasetInfo{name, paper, pv, pe, family}, p, chain});
    };
    //   name      paper name      |V| (paper)  |E| (paper)  family  scale ef   a    seed wmax chain
    add("flickr", "Flickr", 2302925ULL, 33140017ULL, "social", 14, 14.0, 0.55, 101, 64.0, 0);
    add("livej", "LiveJournal", 4847571ULL, 68475391ULL, "social", 15, 14.0, 0.57, 102, 64.0, 0);
    add("orkut", "Orkut", 3072441ULL, 117184899ULL, "social", 14, 30.0, 0.52, 103, 64.0, 0);
    // ClueWeb09: hub topology with heavy weight variance — the small-
    // diameter, Δ-stepping-friendly dataset of §6.3.
    add("web", "ClueWeb09", 20000000ULL, 243063334ULL, "web", 15, 12.0, 0.68, 104, 512.0, 0);
    // Wiki-link: flattest degrees plus a 1500-hop appendix chain for the
    // long effective diameter that favours async execution (Fig. 1(b)).
    add("wiki", "Wiki-link", 12150976ULL, 378142420ULL, "wiki", 16, 10.0, 0.45, 105, 64.0, 1500);
    add("arabic", "Arabic-2005", 22744080ULL, 639999458ULL, "web", 15, 22.0, 0.66, 106, 64.0, 0);
    return r;
  }();
  return kRecipes;
}

std::mutex g_cache_mutex;
std::map<std::string, std::shared_ptr<Graph>>& Cache() {
  static std::map<std::string, std::shared_ptr<Graph>> cache;
  return cache;
}

/// Builds the analogue for `name` (chain appendix + optional row
/// normalisation applied). Caller holds g_cache_mutex.
Result<std::shared_ptr<Graph>> BuildDataset(const std::string& name,
                                            bool stochastic) {
  for (const Recipe& r : Recipes()) {
    if (r.info.name != name) continue;
    auto graph = GenerateRmat(r.params);
    if (!graph.ok()) return graph.status();
    if (r.chain_length > 0) {
      // Append a directed chain of fresh vertices entered from vertex 0:
      // they are reachable only along the chain, which pins the hop
      // diameter at chain_length.
      GraphBuilder builder;
      const Graph& base = *graph;
      const VertexId n = base.num_vertices();
      builder.EnsureVertices(n + r.chain_length);
      for (VertexId v = 0; v < n; ++v) {
        for (const Edge& e : base.OutEdges(v)) builder.AddEdge(v, e.dst, e.weight);
      }
      builder.AddEdge(0, n, 1.0);
      for (VertexId i = 0; i + 1 < r.chain_length; ++i) {
        builder.AddEdge(n + i, n + i + 1, 1.0);
      }
      auto extended = std::move(builder).Build();
      if (!extended.ok()) return extended.status();
      graph = std::move(extended);
    }
    if (stochastic) {
      // Row-normalise: w'_{uv} = w_{uv} / Σ_v w_{uv}.
      const Graph& base = *graph;
      GraphBuilder builder;
      builder.EnsureVertices(base.num_vertices());
      for (VertexId v = 0; v < base.num_vertices(); ++v) {
        double total = 0.0;
        for (const Edge& e : base.OutEdges(v)) total += e.weight;
        if (total <= 0.0) continue;
        for (const Edge& e : base.OutEdges(v)) {
          builder.AddEdge(v, e.dst, e.weight / total);
        }
      }
      auto normalised = std::move(builder).Build();
      if (!normalised.ok()) return normalised.status();
      graph = std::move(normalised);
    }
    return std::make_shared<Graph>(std::move(graph).ValueOrDie());
  }
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const Recipe& r : Recipes()) names.push_back(r.info.name);
    return names;
  }();
  return kNames;
}

Result<DatasetInfo> GetDatasetInfo(const std::string& name) {
  for (const Recipe& r : Recipes()) {
    if (r.info.name == name) return r.info;
  }
  return Status::NotFound("unknown dataset: " + name);
}

Result<const Graph*> GetDataset(const std::string& name, bool stochastic) {
  auto shared = GetDatasetShared(name, stochastic);
  if (!shared.ok()) return shared.status();
  // The raw pointer stays valid because the cache retains a reference until
  // ClearDatasetCache — exactly the pre-shared_ptr contract.
  return shared->get();
}

Result<std::shared_ptr<const Graph>> GetDatasetShared(const std::string& name,
                                                      bool stochastic) {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  const std::string key = stochastic ? name + "#stochastic" : name;
  auto it = Cache().find(key);
  if (it != Cache().end()) {
    return std::shared_ptr<const Graph>(it->second);
  }
  auto built = BuildDataset(name, stochastic);
  if (!built.ok()) return built.status();
  Cache()[key] = *built;
  return std::shared_ptr<const Graph>(*built);
}

void ClearDatasetCache() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  Cache().clear();
}

}  // namespace powerlog
