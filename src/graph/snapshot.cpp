#include "graph/snapshot.h"

#include "graph/datasets.h"
#include "graph/io.h"

namespace powerlog {

Result<std::shared_ptr<const Graph>> GraphSnapshotRegistry::GetOrBuild(
    const std::string& key, bool build_reverse,
    const std::function<Result<std::shared_ptr<const Graph>>()>& build) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = snapshots_.find(key);
  if (it == snapshots_.end()) {
    auto built = build();
    if (!built.ok()) return built.status();
    builds_.fetch_add(1, std::memory_order_relaxed);
    it = snapshots_.emplace(key, std::move(built).ValueOrDie()).first;
  }
  if (build_reverse && !it->second->HasReverse()) {
    // Materialise the transpose now, on the caller's thread, so no engine or
    // query ever triggers the build mid-request. Reverse() is call_once
    // guarded, so racing callers that skipped the registry stay safe too.
    (void)it->second->Reverse();
  }
  return it->second;
}

Result<std::shared_ptr<const Graph>> GraphSnapshotRegistry::Dataset(
    const std::string& name, bool stochastic, bool build_reverse) {
  const std::string key =
      "dataset:" + name + (stochastic ? "#stochastic" : "");
  return GetOrBuild(key, build_reverse,
                    [&] { return GetDatasetShared(name, stochastic); });
}

Result<std::shared_ptr<const Graph>> GraphSnapshotRegistry::FromFile(
    const std::string& path, bool build_reverse) {
  const std::string key = "file:" + path;
  return GetOrBuild(key, build_reverse,
                    [&]() -> Result<std::shared_ptr<const Graph>> {
                      auto graph = LoadEdgeList(path);
                      if (!graph.ok()) return graph.status();
                      return std::shared_ptr<const Graph>(
                          std::make_shared<Graph>(std::move(graph).ValueOrDie()));
                    });
}

std::shared_ptr<const Graph> GraphSnapshotRegistry::Adopt(
    const std::string& key, Graph graph, bool build_reverse) {
  auto snapshot = std::make_shared<const Graph>(std::move(graph));
  if (build_reverse) (void)snapshot->Reverse();
  std::lock_guard<std::mutex> lock(mutex_);
  builds_.fetch_add(1, std::memory_order_relaxed);
  snapshots_[key] = snapshot;
  return snapshot;
}

VersionedSnapshot GraphSnapshotRegistry::AdvanceHead(
    const std::string& key, std::shared_ptr<const Graph> graph) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = heads_.find(key);
  if (it == heads_.end()) {
    it = heads_.emplace(key, VersionedSnapshot{0, nullptr}).first;
  } else {
    // A version advance materialised a new CSR; the initial install reuses
    // a snapshot some other entry point already built and counted.
    builds_.fetch_add(1, std::memory_order_relaxed);
  }
  ++it->second.version;
  it->second.graph = std::move(graph);
  return it->second;
}

Result<VersionedSnapshot> GraphSnapshotRegistry::Head(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = heads_.find(key);
  if (it == heads_.end()) {
    return Status::NotFound("no head version for '" + key + "'");
  }
  return it->second;
}

size_t GraphSnapshotRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshots_.size();
}

bool GraphSnapshotRegistry::Evict(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshots_.erase(key) > 0;
}

}  // namespace powerlog
