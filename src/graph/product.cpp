#include "graph/product.h"

#include <cmath>
#include <limits>

#include "datalog/catalog.h"
#include "eval/mra.h"
#include "graph/builder.h"

namespace powerlog {

Result<ApspResult> SolveApsp(const Graph& graph) {
  const VertexId n = graph.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty graph");
  if (static_cast<uint64_t>(n) * n > (1ULL << 26)) {
    return Status::InvalidArgument(
        "APSP product form is intended for small graphs (n^2 output)");
  }
  auto entry = datalog::GetCatalogEntry("apsp");
  if (!entry.ok()) return entry.status();
  auto kernel = BuildKernelFromSource(entry->source);
  if (!kernel.ok()) return kernel.status();

  ApspResult result;
  result.num_vertices = n;
  result.distances.resize(static_cast<size_t>(n) * n);
  for (VertexId src = 0; src < n; ++src) {
    kernel->init.source = src;
    auto run = eval::MraEvaluate(*kernel, graph);
    if (!run.ok()) return run.status();
    std::copy(run->values.begin(), run->values.end(),
              result.distances.begin() + static_cast<size_t>(src) * n);
  }
  return result;
}

Result<AncestorProductGraph> AncestorProductGraph::Build(const Graph& tree) {
  const VertexId n = tree.num_vertices();
  if (n == 0) return Status::InvalidArgument("empty tree");
  if (static_cast<uint64_t>(n) * n > (1ULL << 24)) {
    return Status::InvalidArgument("ancestor product graph: tree too large");
  }
  // Parent of each vertex from the reversed tree; forests allowed.
  constexpr VertexId kNoParent = std::numeric_limits<VertexId>::max();
  std::vector<VertexId> parent(n, kNoParent);
  const Graph& reversed = tree.Reverse();
  for (VertexId v = 0; v < n; ++v) {
    const auto in_edges = reversed.OutEdges(v);
    if (in_edges.size() > 1) {
      return Status::InvalidArgument("vertex " + std::to_string(v) +
                                     " has multiple parents (not a forest)");
    }
    if (in_edges.size() == 1) parent[v] = in_edges.begin()->dst;
  }

  GraphBuilder builder;
  builder.EnsureVertices(n * n);
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = 0; b < n; ++b) {
      if (a == b) continue;  // diagonal states are absorbing
      const VertexId from = a * n + b;
      if (parent[a] != kNoParent) builder.AddEdge(from, parent[a] * n + b, 1.0);
      if (parent[b] != kNoParent) builder.AddEdge(from, a * n + parent[b], 1.0);
    }
  }
  auto product = std::move(builder).Build(GraphBuilder::Options{});
  if (!product.ok()) return product.status();
  AncestorProductGraph out;
  out.n_ = n;
  out.product_ = std::move(product).ValueOrDie();
  return out;
}

Result<LcaResult> SolveLca(const Graph& tree, VertexId u, VertexId v) {
  const VertexId n = tree.num_vertices();
  if (u >= n || v >= n) return Status::OutOfRange("query vertex out of range");
  auto product = AncestorProductGraph::Build(tree);
  if (!product.ok()) return product.status();

  auto entry = datalog::GetCatalogEntry("lca");
  if (!entry.ok()) return entry.status();
  auto kernel = BuildKernelFromSource(entry->source);
  if (!kernel.ok()) return kernel.status();
  kernel->init.source = product->Encode(u, v);

  auto run = eval::MraEvaluate(*kernel, product->graph());
  if (!run.ok()) return run.status();

  LcaResult best{0, std::numeric_limits<double>::infinity()};
  for (VertexId w = 0; w < n; ++w) {
    const double d = run->values[product->Encode(w, w)];
    if (d < best.distance) {
      best.distance = d;
      best.ancestor = w;
    }
  }
  if (std::isinf(best.distance)) {
    return Status::NotFound("vertices share no common ancestor");
  }
  return best;
}

}  // namespace powerlog
