#include "graph/mutation.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace powerlog {

const char* MutationOpName(MutationOp op) {
  switch (op) {
    case MutationOp::kInsertEdge: return "insert";
    case MutationOp::kDeleteEdge: return "delete";
    case MutationOp::kReweightEdge: return "reweight";
  }
  return "?";
}

Status MutationBatch::Validate(const Graph& graph) const {
  const VertexId n = graph.num_vertices();
  for (size_t i = 0; i < ops_.size(); ++i) {
    const EdgeMutation& op = ops_[i];
    if (op.src >= n || op.dst >= n) {
      return Status::OutOfRange(StringFormat(
          "op %zu (%s %u->%u): vertex out of range (|V|=%u); mutations "
          "connect existing vertices only",
          i, MutationOpName(op.kind), op.src, op.dst, n));
    }
    if (op.kind != MutationOp::kDeleteEdge && !std::isfinite(op.weight)) {
      return Status::InvalidArgument(StringFormat(
          "op %zu (%s %u->%u): weight must be finite", i,
          MutationOpName(op.kind), op.src, op.dst));
    }
  }
  return Status::OK();
}

std::vector<std::vector<size_t>> MutationBatch::RouteByShard(
    const Partitioner& partition) const {
  std::vector<std::vector<size_t>> routed(partition.num_workers());
  for (size_t i = 0; i < ops_.size(); ++i) {
    routed[partition.WorkerOf(ops_[i].src)].push_back(i);
  }
  return routed;
}

Result<MutationApplyResult> ApplyMutationBatch(const Graph& base,
                                               const MutationBatch& batch) {
  POWERLOG_RETURN_NOT_OK(batch.Validate(base));
  const VertexId n = base.num_vertices();
  MutationApplyResult out;
  out.ops.reserve(batch.size());

  // Copy-on-write at vertex granularity: only sources an op touches get
  // their adjacency copied into a mutable scratch list.
  std::map<VertexId, std::vector<Edge>> patched;
  auto adjacency = [&](VertexId src) -> std::vector<Edge>& {
    auto it = patched.find(src);
    if (it == patched.end()) {
      it = patched
               .emplace(src,
                        std::vector<Edge>(base.OutBegin(src), base.OutEnd(src)))
               .first;
    }
    return it->second;
  };

  for (const EdgeMutation& op : batch.ops()) {
    AppliedMutation rec;
    rec.op = op;
    std::vector<Edge>& adj = adjacency(op.src);
    switch (op.kind) {
      case MutationOp::kInsertEdge:
        adj.push_back(Edge{op.dst, op.weight});
        rec.applied = true;
        ++out.edges_added;
        break;
      case MutationOp::kDeleteEdge: {
        int64_t removed = 0;
        auto keep = adj.begin();
        for (const Edge& e : adj) {
          if (e.dst == op.dst) {
            if (removed == 0) rec.old_weight = e.weight;
            ++removed;
          } else {
            *keep++ = e;
          }
        }
        adj.erase(keep, adj.end());
        if (removed > 0) {
          rec.applied = true;
          out.edges_removed += removed;
        }
        break;
      }
      case MutationOp::kReweightEdge: {
        bool found = false;
        int64_t changed = 0;
        for (Edge& e : adj) {
          if (e.dst != op.dst) continue;
          if (!found) {
            rec.old_weight = e.weight;
            found = true;
          }
          if (e.weight != op.weight) {
            e.weight = op.weight;
            ++changed;
          }
        }
        if (changed > 0) {
          rec.applied = true;
          out.edges_reweighted += changed;
        }
        break;
      }
    }
    out.ops.push_back(rec);
  }

  // Rebuild the CSR: untouched edge ranges copy straight from the base
  // arrays, patched sources splice their scratch lists in.
  std::vector<EdgeIndex> offsets(n + 1, 0);
  EdgeIndex total = 0;
  for (VertexId v = 0; v < n; ++v) {
    offsets[v] = total;
    auto it = patched.find(v);
    total += it != patched.end() ? it->second.size() : base.OutDegree(v);
  }
  offsets[n] = total;
  std::vector<Edge> edges;
  edges.reserve(total);
  for (VertexId v = 0; v < n; ++v) {
    auto it = patched.find(v);
    if (it != patched.end()) {
      edges.insert(edges.end(), it->second.begin(), it->second.end());
    } else {
      edges.insert(edges.end(), base.OutBegin(v), base.OutEnd(v));
    }
  }
  out.graph = Graph(std::move(offsets), std::move(edges));
  return out;
}

}  // namespace powerlog
