// Compressed-sparse-row graph: the storage substrate every engine runs on.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace powerlog {

using VertexId = uint32_t;
using EdgeIndex = uint64_t;

/// \brief One outgoing edge (destination + weight).
struct Edge {
  VertexId dst;
  double weight;
};

/// \brief Immutable directed graph in CSR form, with optional reverse index.
///
/// Edge weights default to 1.0 for unweighted inputs. Vertices are dense
/// [0, num_vertices). Built via GraphBuilder (builder.h) or generators.
class Graph {
 public:
  Graph() = default;
  Graph(std::vector<EdgeIndex> offsets, std::vector<Edge> edges);

  // std::once_flag is neither copyable nor movable (and a consumed flag must
  // not survive an assignment that swaps the edge data out from under it),
  // so copies, moves, and assignments all get a fresh flag. A copy may carry
  // an already-built reverse_ — shared is fine, Reverse()'s builder
  // re-checks for it under the fresh flag.
  Graph(const Graph& other)
      : offsets_(other.offsets_), edges_(other.edges_), reverse_(other.reverse_) {}
  Graph(Graph&& other) noexcept
      : offsets_(std::move(other.offsets_)),
        edges_(std::move(other.edges_)),
        reverse_(std::move(other.reverse_)) {}
  Graph& operator=(const Graph& other) {
    if (this != &other) {
      offsets_ = other.offsets_;
      edges_ = other.edges_;
      reverse_ = other.reverse_;
      reverse_once_ = std::make_unique<std::once_flag>();
    }
    return *this;
  }
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) {
      offsets_ = std::move(other.offsets_);
      edges_ = std::move(other.edges_);
      reverse_ = std::move(other.reverse_);
      reverse_once_ = std::make_unique<std::once_flag>();
    }
    return *this;
  }

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeIndex num_edges() const { return edges_.size(); }

  /// Out-degree of v.
  uint32_t OutDegree(VertexId v) const {
    return static_cast<uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Span of outgoing edges of v.
  const Edge* OutBegin(VertexId v) const { return edges_.data() + offsets_[v]; }
  const Edge* OutEnd(VertexId v) const { return edges_.data() + offsets_[v + 1]; }

  /// Iterates out-edges: for (const Edge& e : g.OutEdges(v)) ...
  struct EdgeRange {
    const Edge* begin_;
    const Edge* end_;
    const Edge* begin() const { return begin_; }
    const Edge* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
  };
  EdgeRange OutEdges(VertexId v) const { return {OutBegin(v), OutEnd(v)}; }

  /// Builds (lazily, on first call) and returns the transposed graph.
  /// Used by pull-style kernels and in-neighbor programs (CC over in-edges).
  const Graph& Reverse() const;

  /// True if the reverse index is already materialised.
  bool HasReverse() const { return reverse_ != nullptr; }

  /// Best-effort memory placement for the CSR arrays (EngineOptions::pin):
  /// transparent-hugepage advice on the offset and adjacency arrays, plus a
  /// page interleave across NUMA nodes when more than one is online (every
  /// worker scans every span, so no single node should own the adjacency).
  /// Kernel page advice only — logical state is untouched, hence const.
  void AdvisePlacement() const;

  /// Sum of all out-degrees divided by |V| (0 for empty graphs).
  double AverageDegree() const;

  /// Maximum out-degree.
  uint32_t MaxOutDegree() const;

  /// Short human-readable summary: "|V|=..., |E|=..., avg_deg=...".
  std::string Summary() const;

  const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  const std::vector<Edge>& edges() const { return edges_; }

 private:
  std::vector<EdgeIndex> offsets_;  // size num_vertices()+1
  std::vector<Edge> edges_;
  mutable std::shared_ptr<Graph> reverse_;
  /// Guards the lazy transpose build; behind unique_ptr so assignments can
  /// re-arm it (see the copy/move members above).
  mutable std::unique_ptr<std::once_flag> reverse_once_ =
      std::make_unique<std::once_flag>();
};

}  // namespace powerlog
