// Status: lightweight error model in the Arrow/RocksDB idiom.
//
// Functions that can fail return Status (or Result<T>, see result.h) instead
// of throwing. A Status is cheap to copy in the OK case (single pointer).
#pragma once

#include <memory>
#include <string>
#include <utility>

namespace powerlog {

/// \brief Machine-readable error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kNotSupported = 3,
  kNotFound = 4,
  kOutOfRange = 5,
  kIOError = 6,
  kInternal = 7,
  kConditionViolated = 8,  // MRA condition check failed
  kTimeout = 9,
};

/// \brief Returns a human-readable name for a status code ("Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Operation outcome: OK, or an error code plus message.
///
/// Usage follows the RocksDB/Arrow convention:
/// \code
///   Status s = DoThing();
///   if (!s.ok()) return s;
/// \endcode
/// or with the convenience macro: `POWERLOG_RETURN_NOT_OK(DoThing());`
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ConditionViolated(std::string msg) {
    return Status(StatusCode::kConditionViolated, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsConditionViolated() const { return code() == StatusCode::kConditionViolated; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // null == OK
};

}  // namespace powerlog

/// Propagates a non-OK Status to the caller.
#define POWERLOG_RETURN_NOT_OK(expr)              \
  do {                                            \
    ::powerlog::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (false)

#define POWERLOG_CONCAT_IMPL(a, b) a##b
#define POWERLOG_CONCAT(a, b) POWERLOG_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error propagates the Status,
/// otherwise binds the value to `lhs`.
#define POWERLOG_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  auto POWERLOG_CONCAT(_res_, __LINE__) = (rexpr);                     \
  if (!POWERLOG_CONCAT(_res_, __LINE__).ok())                          \
    return POWERLOG_CONCAT(_res_, __LINE__).status();                  \
  lhs = std::move(POWERLOG_CONCAT(_res_, __LINE__)).ValueOrDie()
