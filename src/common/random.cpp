#include "common/random.h"

// Header-only; this TU exists to give the module a home in the library and
// to catch ODR issues early.
namespace powerlog {}
