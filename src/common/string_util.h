// Small string helpers shared by the lexer, config parsing, and IO.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace powerlog {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// Parses a decimal integer / floating-point number with full-string match.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace powerlog
