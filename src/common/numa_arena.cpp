#include "common/numa_arena.h"

#include <cstdio>
#include <new>

#if defined(__linux__)
#include <sched.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace powerlog::numa {

namespace {

constexpr size_t kPage = 4096;
constexpr size_t kHugeThreshold = 2ull << 20;

#if defined(__linux__)
// mbind policy constants (numaif.h is part of libnuma-dev, which we do not
// depend on; the ABI values are stable kernel UAPI).
constexpr int kMpolPreferred = 1;
constexpr int kMpolInterleave = 3;
constexpr unsigned kMpolMfMove = 1u << 1;

long Mbind(void* addr, unsigned long len, int mode, const unsigned long* mask,
           unsigned long maxnode, unsigned flags) {
#if defined(SYS_mbind)
  return syscall(SYS_mbind, addr, len, mode, mask, maxnode, flags);
#else
  (void)addr; (void)len; (void)mode; (void)mask; (void)maxnode; (void)flags;
  return -1;
#endif
}

/// Counts entries under /sys/devices/system/node (node0, node1, ...).
int ProbeNodes() {
  int nodes = 0;
  char path[64];
  for (int n = 0; n < 1024; ++n) {
    std::snprintf(path, sizeof(path), "/sys/devices/system/node/node%d", n);
    if (access(path, F_OK) != 0) break;
    ++nodes;
  }
  return nodes > 0 ? nodes : 1;
}

int ProbeNodeOfCpu(int cpu) {
  char path[96];
  for (int n = 0; n < NumNodes(); ++n) {
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/node/node%d/cpu%d", n, cpu);
    if (access(path, F_OK) == 0) return n;
  }
  return 0;
}
#endif  // __linux__

/// Rounds [p, p+bytes) outward to page boundaries (mbind/madvise operate on
/// whole pages; over-covering neighbouring objects is harmless advice).
std::pair<void*, size_t> PageSpan(void* p, size_t bytes) {
  const uintptr_t lo = reinterpret_cast<uintptr_t>(p) & ~(kPage - 1);
  const uintptr_t hi =
      (reinterpret_cast<uintptr_t>(p) + bytes + kPage - 1) & ~(kPage - 1);
  return {reinterpret_cast<void*>(lo), hi - lo};
}

}  // namespace

int NumNodes() {
#if defined(__linux__)
  static const int nodes = ProbeNodes();
  return nodes;
#else
  return 1;
#endif
}

int NumCpus() {
#if defined(__linux__)
  static const int cpus = [] {
    const long n = sysconf(_SC_NPROCESSORS_ONLN);
    return n > 0 ? static_cast<int>(n) : 1;
  }();
  return cpus;
#else
  return 1;
#endif
}

int NodeOfCpu(int cpu) {
#if defined(__linux__)
  if (NumNodes() <= 1 || cpu < 0) return 0;
  return ProbeNodeOfCpu(cpu);
#else
  (void)cpu;
  return 0;
#endif
}

bool PinThreadToCpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu % NumCpus()), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

int CpuForWorker(uint32_t worker) {
  return static_cast<int>(worker) % NumCpus();
}

void AdviseHuge(void* p, size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  if (bytes < kHugeThreshold) return;
  auto [base, len] = PageSpan(p, bytes);
  (void)madvise(base, len, MADV_HUGEPAGE);  // best effort
#else
  (void)p;
  (void)bytes;
#endif
}

void BindPreferred(void* p, size_t bytes, int node) {
#if defined(__linux__)
  if (NumNodes() <= 1 || bytes == 0 || node < 0 || node >= NumNodes()) return;
  auto [base, len] = PageSpan(p, bytes);
  unsigned long mask = 1ul << node;
  (void)Mbind(base, len, kMpolPreferred, &mask, sizeof(mask) * 8, kMpolMfMove);
#else
  (void)p;
  (void)bytes;
  (void)node;
#endif
}

void Interleave(void* p, size_t bytes) {
#if defined(__linux__)
  const int nodes = NumNodes();
  if (nodes <= 1 || bytes == 0) return;
  auto [base, len] = PageSpan(p, bytes);
  unsigned long mask = (nodes >= 64) ? ~0ul : ((1ul << nodes) - 1);
  (void)Mbind(base, len, kMpolInterleave, &mask, sizeof(mask) * 8, kMpolMfMove);
#else
  (void)p;
  (void)bytes;
#endif
}

namespace detail {

void* ArenaAlloc(size_t bytes) {
#if defined(__linux__)
  void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc();  // genuine OOM
  AdviseHuge(p, bytes);
  return p;
#else
  return ::operator new(bytes, std::align_val_t{64});
#endif
}

void ArenaFree(void* p, size_t bytes) {
#if defined(__linux__)
  munmap(p, bytes);
#else
  ::operator delete(p, bytes, std::align_val_t{64});
#endif
}

}  // namespace detail

}  // namespace powerlog::numa
