// Simple fixed-size thread pool plus a reusable spin/condvar barrier.
//
// The distributed runtime spawns dedicated worker threads itself; this pool
// serves parallel helpers (graph generation, per-shard scans).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace powerlog {

/// \brief Fixed-size pool executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// `pin` binds pool thread i to CPU i mod NumCpus() (numa_arena.h) so
  /// first-touch allocations made from pool tasks land on the toucher's
  /// node. Advisory: pinning failures are ignored.
  explicit ThreadPool(size_t num_threads, bool pin = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

/// \brief Reusable barrier for N participants (the BSP superstep boundary).
///
/// Supports fault-tolerant interruption: Break() wakes every waiter and
/// makes all subsequent arrivals return immediately (never serial) until
/// Reset() restores normal operation — the runtime's supervisor uses this to
/// unwedge sync-mode workers parked on a crashed peer.
class Barrier {
 public:
  explicit Barrier(size_t count) : threshold_(count), count_(count) {}

  /// Blocks until all participants arrive. Returns true for exactly one
  /// participant per generation (the "serial" thread, mirroring
  /// std::barrier's completion step). While broken, returns false
  /// immediately without waiting.
  bool ArriveAndWait();

  /// Wakes all current waiters and disables the barrier (arrivals fall
  /// through). Safe to call from a non-participant thread.
  void Break();

  /// Re-arms a broken barrier for a full complement of participants. Only
  /// call once every participant has stopped arriving (e.g. all parked at a
  /// recovery rendezvous).
  void Reset();

  bool broken() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  size_t threshold_;
  size_t count_;
  size_t generation_ = 0;
  bool broken_ = false;
};

}  // namespace powerlog
