// Wall-clock timing utilities for benches and the runtime's adaptive policy.
#pragma once

#include <chrono>
#include <cstdint>

namespace powerlog {

/// \brief Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic time in microseconds since an arbitrary epoch.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace powerlog
