// Result<T>: value-or-Status, the Arrow idiom for fallible producers.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace powerlog {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// A Result constructed from an OK status is a programming error and is
/// converted into an Internal error so it is never silently treated as a
/// value.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, mirrors arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without value");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value access; requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value or `alternative` if this holds an error.
  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;  // OK iff value_ present
  std::optional<T> value_;
};

}  // namespace powerlog
