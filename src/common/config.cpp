#include "common/config.h"

#include "common/string_util.h"

namespace powerlog {

Result<Config> Config::FromString(const std::string& spec) {
  Config cfg;
  if (Trim(spec).empty()) return cfg;
  for (const std::string& part : Split(spec, ',')) {
    std::string_view entry = Trim(part);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("config entry missing '=': " + std::string(entry));
    }
    std::string key(Trim(entry.substr(0, eq)));
    std::string value(Trim(entry.substr(eq + 1)));
    if (key.empty()) return Status::ParseError("empty config key in: " + spec);
    cfg.entries_[key] = value;
  }
  return cfg;
}

void Config::Set(const std::string& key, std::string value) {
  entries_[key] = std::move(value);
}

void Config::SetInt(const std::string& key, int64_t value) {
  entries_[key] = std::to_string(value);
}

void Config::SetDouble(const std::string& key, double value) {
  entries_[key] = StringFormat("%.17g", value);
}

void Config::SetBool(const std::string& key, bool value) {
  entries_[key] = value ? "true" : "false";
}

bool Config::Has(const std::string& key) const { return entries_.count(key) > 0; }

std::string Config::GetString(const std::string& key, const std::string& def) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? def : it->second;
}

int64_t Config::GetInt(const std::string& key, int64_t def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  auto r = ParseInt64(it->second);
  return r.ok() ? *r : def;
}

double Config::GetDouble(const std::string& key, double def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  auto r = ParseDouble(it->second);
  return r.ok() ? *r : def;
}

bool Config::GetBool(const std::string& key, bool def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return def;
  std::string v = ToLower(it->second);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return def;
}

std::string Config::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(entries_.size());
  for (const auto& [k, v] : entries_) parts.push_back(k + "=" + v);
  return Join(parts, ",");
}

}  // namespace powerlog
