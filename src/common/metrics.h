// Lightweight metrics registry for the runtime's observability layer.
//
// Hot-path instruments are wait-free: counters and gauges are single relaxed
// atomics, histograms are fixed-bucket arrays of relaxed atomics (no locking,
// no allocation on Observe). Registration hands out stable pointers, so a
// worker resolves each instrument by name once and then increments through
// the pointer. Snapshots are taken after (or concurrently with) a run and
// serialise to JSON for the CLI (`--metrics-json`) and the bench harness
// (`POWERLOG_BENCH_METRICS`); a matching minimal JSON parser supports
// round-trip tests and downstream tooling.
//
// Concurrent snapshot caveat: counts/sums are read individually with relaxed
// loads, so a snapshot taken mid-run is not a linearisable cut — fine for
// run-level statistics, which are harvested after the worker threads join.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace powerlog::metrics {

/// \brief Monotonically increasing relaxed-atomic counter.
class Counter {
 public:
  void Increment(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Point-in-time copy of a histogram's state.
struct HistogramSnapshot {
  std::vector<double> bounds;   ///< ascending upper bounds (inclusive)
  std::vector<int64_t> counts;  ///< bounds.size()+1 entries; last = overflow
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< valid iff count > 0
  double max = 0.0;  ///< valid iff count > 0

  /// Estimated value at quantile `q` in [0, 1] (e.g. 0.5 = p50, 0.99 = p99),
  /// by linear interpolation inside the bucket containing the target rank.
  /// Bucket-resolution accuracy only; observations in the overflow bucket
  /// clamp to `max`. NaN if the histogram is empty.
  double Percentile(double q) const;
};

/// \brief Fixed-bucket histogram. Bucket i counts observations
/// `v <= bounds[i]` (first match); one extra overflow bucket catches the
/// rest. Observe is lock-free (bucket search + relaxed atomic updates).
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> counts_;  ///< bounds_.size()+1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// `count` ascending bucket bounds: start, start·factor, start·factor², …
/// Requires start > 0, factor > 1, count >= 1.
std::vector<double> ExponentialBuckets(double start, double factor, int count);

/// \brief Everything a registry (plus ad-hoc additions) knows, as plain
/// data. Serialises to one JSON object with four sections:
///   {"counters":{name:int,...}, "gauges":{name:double,...},
///    "histograms":{name:{"bounds":[...],"counts":[...],"count":n,
///                        "sum":s,"min":m,"max":M},...},
///    "series":{name:[[x,y],...],...}}
/// Keys are emitted in sorted order so output is stable across runs.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  using Series = std::vector<std::pair<double, double>>;
  std::vector<std::pair<std::string, Series>> series;

  void AddCounter(const std::string& name, int64_t value);
  void AddGauge(const std::string& name, double value);
  void AddHistogram(const std::string& name, HistogramSnapshot snapshot);
  void AddSeries(const std::string& name, Series points);

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           series.empty();
  }

  std::string ToJson() const;
};

/// \brief Named instrument registry. Get* registers on first use and returns
/// a stable pointer; subsequent calls with the same name return the same
/// instrument (histogram bounds are fixed by the first registration).
/// Registration takes a mutex; instrument updates do not.
class Registry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  /// Copies every instrument's current state.
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Escapes `s` for use inside a JSON string literal (no surrounding quotes).
std::string JsonEscape(const std::string& s);

/// \brief Minimal immutable JSON document — just enough to round-trip
/// MetricsSnapshot::ToJson() in tests and tooling.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one JSON document (trailing whitespace allowed, nothing else).
  static Result<JsonValue> Parse(const std::string& text);

  Kind kind() const { return kind_; }
  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object() const {
    return object_;
  }

  /// Object member lookup; nullptr if not an object or key absent.
  const JsonValue* Find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend class JsonParser;
};

}  // namespace powerlog::metrics
