#include "common/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/metrics.h"  // JsonEscape
#include "common/timer.h"

namespace powerlog::trace {

namespace {

thread_local EventRing* t_current_ring = nullptr;

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t cap = 64;
  while (cap < v) cap <<= 1;
  return cap;
}

}  // namespace

EventRing::EventRing(uint32_t capacity)
    : slots_(RoundUpPow2(capacity)), mask_(slots_.size() - 1) {}

void EventRing::Emit(EventType type, const char* name, double value) {
  const uint64_t h = head_.load(std::memory_order_relaxed);
  Slot& slot = slots_[h & mask_];
  slot.ts_us.store(NowMicros(), std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  slot.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  // Release-publish: a reader that acquire-loads head >= h+1 sees the slot
  // stores above.
  head_.store(h + 1, std::memory_order_release);
}

EventRing::Snapshot EventRing::TakeSnapshot() const {
  const uint64_t cap = slots_.size();
  const uint64_t h1 = head_.load(std::memory_order_acquire);
  const uint64_t begin1 = h1 > cap ? h1 - cap : 0;

  std::vector<Event> copied;
  copied.reserve(h1 - begin1);
  for (uint64_t i = begin1; i < h1; ++i) {
    const Slot& slot = slots_[i & mask_];
    Event ev;
    ev.ts_us = slot.ts_us.load(std::memory_order_relaxed);
    ev.name = slot.name.load(std::memory_order_relaxed);
    ev.value = slot.value.load(std::memory_order_relaxed);
    ev.type = static_cast<EventType>(slot.type.load(std::memory_order_relaxed));
    copied.push_back(ev);
  }

  // Seqlock validation: the writer overwrites slot `j & mask` *before*
  // publishing head `j + 1`, so after re-reading the head, index `h2 - cap`
  // (and anything older) may hold a torn mixture of old and new fields.
  // Keep only indices >= h2 + 1 - cap — those slots cannot have been touched
  // while we copied.
  const uint64_t h2 = head_.load(std::memory_order_acquire);
  const uint64_t begin2 = h2 + 1 > cap ? h2 + 1 - cap : 0;

  Snapshot snap;
  if (begin2 > begin1) {
    const uint64_t discard = std::min(begin2 - begin1, h1 - begin1);
    snap.events.assign(copied.begin() + static_cast<ptrdiff_t>(discard),
                       copied.end());
  } else {
    snap.events = std::move(copied);
  }
  snap.dropped = h2 > static_cast<uint64_t>(snap.events.size())
                     ? static_cast<int64_t>(h2 - snap.events.size())
                     : 0;
  return snap;
}

Tracer::Tracer(uint32_t ring_capacity)
    : start_us_(NowMicros()), ring_capacity_(ring_capacity) {}

Tracer::~Tracer() { t_current_ring = nullptr; }

EventRing* Tracer::RegisterCurrentThread(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [ring_name, ring] : rings_) {
    if (ring_name == name) {
      t_current_ring = ring.get();
      return ring.get();
    }
  }
  rings_.emplace_back(name, std::make_unique<EventRing>(ring_capacity_));
  t_current_ring = rings_.back().second.get();
  return t_current_ring;
}

void Tracer::UnregisterCurrentThread() { t_current_ring = nullptr; }

EventRing* Tracer::Current() { return t_current_ring; }

std::vector<Tracer::NamedRing> Tracer::rings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<NamedRing> out;
  out.reserve(rings_.size());
  for (const auto& [name, ring] : rings_) {
    out.push_back(NamedRing{name, ring.get()});
  }
  return out;
}

int64_t Tracer::TotalDropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t total = 0;
  for (const auto& [name, ring] : rings_) {
    (void)name;
    total += ring->dropped();
  }
  return total;
}

namespace {

void AppendEvent(std::string& out, bool& first, const char* ph, int tid,
                 int64_t ts_us, const char* name, const char* extra) {
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf),
                        "%s{\"ph\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%" PRId64
                        ",\"name\":\"%s\"%s}",
                        first ? "" : ",\n", ph, tid, ts_us, name,
                        extra != nullptr ? extra : "");
  if (n > 0 && n < static_cast<int>(sizeof(buf))) out.append(buf, n);
  first = false;
}

}  // namespace

std::string ExportChromeTrace(const Tracer& tracer) {
  const int64_t epoch = tracer.start_us();
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;

  const auto rings = tracer.rings();
  for (size_t tid = 0; tid < rings.size(); ++tid) {
    char meta[160];
    std::snprintf(meta, sizeof(meta),
                  "%s{\"ph\":\"M\",\"pid\":0,\"tid\":%zu,\"ts\":0,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",\n", tid,
                  metrics::JsonEscape(rings[tid].name).c_str());
    out += meta;
    first = false;
  }
  // One process row so Perfetto shows a sensible group title.
  out += first ? "" : ",\n";
  out +=
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,"
      "\"name\":\"process_name\",\"args\":{\"name\":\"powerlog\"}}";
  first = false;

  for (size_t tid = 0; tid < rings.size(); ++tid) {
    const auto snap = rings[tid].ring->TakeSnapshot();
    const int64_t last_ts =
        snap.events.empty() ? 0 : snap.events.back().ts_us - epoch;

    // Wraparound can behead a span (drop its "B" but keep its "E") or
    // truncate one (keep its "B", the "E" never recorded). Track open-span
    // depth per ring: an "E" with no open "B" is skipped, and every "B" left
    // open at the end is closed at the ring's final timestamp, so the
    // exported stream always nests.
    std::vector<const char*> open;
    for (const Event& ev : snap.events) {
      const int64_t ts = ev.ts_us - epoch;
      char extra[96];
      switch (ev.type) {
        case EventType::kSpanBegin:
          open.push_back(ev.name);
          AppendEvent(out, first, "B", static_cast<int>(tid), ts, ev.name,
                      nullptr);
          break;
        case EventType::kSpanEnd:
          if (open.empty()) break;  // beheaded by wraparound
          open.pop_back();
          AppendEvent(out, first, "E", static_cast<int>(tid), ts, ev.name,
                      nullptr);
          break;
        case EventType::kInstant:
          AppendEvent(out, first, "i", static_cast<int>(tid), ts, ev.name,
                      ",\"s\":\"t\"");
          break;
        case EventType::kCounter:
          std::snprintf(extra, sizeof(extra), ",\"args\":{\"value\":%.17g}",
                        ev.value);
          AppendEvent(out, first, "C", static_cast<int>(tid), ts, ev.name,
                      extra);
          break;
        case EventType::kFlowSend:
          std::snprintf(extra, sizeof(extra),
                        ",\"cat\":\"flow\",\"id\":%" PRIu64,
                        static_cast<uint64_t>(ev.value));
          AppendEvent(out, first, "s", static_cast<int>(tid), ts, ev.name,
                      extra);
          break;
        case EventType::kFlowRecv:
          std::snprintf(extra, sizeof(extra),
                        ",\"cat\":\"flow\",\"id\":%" PRIu64 ",\"bp\":\"e\"",
                        static_cast<uint64_t>(ev.value));
          AppendEvent(out, first, "f", static_cast<int>(tid), ts, ev.name,
                      extra);
          break;
      }
    }
    while (!open.empty()) {
      AppendEvent(out, first, "E", static_cast<int>(tid), last_ts, open.back(),
                  nullptr);
      open.pop_back();
    }
  }

  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "\n],\"displayTimeUnit\":\"ms\",\"powerlog\":{\"dropped\":%" PRId64
                "}}\n",
                tracer.TotalDropped());
  out += tail;
  return out;
}

}  // namespace powerlog::trace
