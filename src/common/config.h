// Typed key-value configuration used by engines, benches, and examples.
#pragma once

#include <map>
#include <string>

#include "common/result.h"

namespace powerlog {

/// \brief Flat string->string option map with typed getters and
/// "key=value,key=value" parsing (for CLI flags).
class Config {
 public:
  Config() = default;

  /// Parses "a=1,b=2.5,c=hello". Empty string yields an empty config.
  static Result<Config> FromString(const std::string& spec);

  void Set(const std::string& key, std::string value);
  void SetInt(const std::string& key, int64_t value);
  void SetDouble(const std::string& key, double value);
  void SetBool(const std::string& key, bool value);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key, const std::string& def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

  std::string ToString() const;

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace powerlog
