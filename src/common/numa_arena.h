// NUMA-aware arena for the hot shard-partitioned columns (ROADMAP item 4).
//
// Placement model: ArenaArray allocations are anonymous mmap regions, so
// physical pages materialise on *first touch* and land on the NUMA node of
// the touching thread (the kernel's default local policy). With worker
// pinning on (EngineOptions::pin), the engine then overrides the master
// thread's initialising touches explicitly: contiguous shard ranges are
// mbind()-ed (MPOL_PREFERRED + MPOL_MF_MOVE) to their owner's node, and
// hash-partitioned columns are interleaved across the worker nodes. Regions
// of 2 MiB and up get transparent-hugepage advice (MADV_HUGEPAGE).
//
// Everything here is best-effort and degrades gracefully: on a single-node
// box (or where mbind/madvise are unavailable or refused — containers often
// deny them) every placement call is a no-op and ArenaArray behaves like an
// aligned heap allocation. No libnuma dependency — topology comes from
// /sys/devices/system/node and the syscalls are invoked directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace powerlog::numa {

/// Number of online NUMA nodes (cached; ≥1).
int NumNodes();

/// Number of online CPUs (cached; ≥1).
int NumCpus();

/// NUMA node of `cpu` (0 when unknown / single-node).
int NodeOfCpu(int cpu);

/// Pins the calling thread to `cpu`. Returns false when the kernel refuses
/// (cpu offline, cpuset-restricted) — callers treat pinning as advisory.
bool PinThreadToCpu(int cpu);

/// Round-robin worker→CPU map used by EngineOptions::pin and the pinned
/// ThreadPool: worker w gets CPU w mod NumCpus().
int CpuForWorker(uint32_t worker);

/// Transparent-hugepage advice for [p, p+bytes) (no-op below 2 MiB).
void AdviseHuge(void* p, size_t bytes);

/// Best-effort mbind of [p, p+bytes) to `node` (MPOL_PREFERRED,
/// MPOL_MF_MOVE migrates already-touched pages). No-op on single-node
/// systems or when the range is empty. Page-granular: callers may pass
/// unaligned subranges, the arena rounds outward.
void BindPreferred(void* p, size_t bytes, int node);

/// Best-effort page interleave of [p, p+bytes) across all nodes
/// (MPOL_INTERLEAVE + MPOL_MF_MOVE) — the placement for hash-partitioned
/// columns where no node owns a contiguous range. No-op on single node.
void Interleave(void* p, size_t bytes);

namespace detail {
void* ArenaAlloc(size_t bytes);                // mmap (fallback: ::operator new)
void ArenaFree(void* p, size_t bytes);
}  // namespace detail

/// \brief Move-only typed array backed by the arena: page-aligned anonymous
/// mapping, value-initialised elements, hugepage-advised when large. Holds
/// the MonoTable value/delta columns and frontier bitmap words so shard
/// placement advice applies at page granularity.
template <typename T>
class ArenaArray {
 public:
  ArenaArray() = default;
  explicit ArenaArray(size_t n) : size_(n) {
    if (n == 0) return;
    data_ = static_cast<T*>(detail::ArenaAlloc(n * sizeof(T)));
    // mmap memory is already zero-filled; the placement news value-
    // initialise for the heap fallback and keep object lifetimes defined.
    for (size_t i = 0; i < n; ++i) new (data_ + i) T();
  }
  ~ArenaArray() { Reset(); }

  ArenaArray(ArenaArray&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  ArenaArray& operator=(ArenaArray&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  ArenaArray(const ArenaArray&) = delete;
  ArenaArray& operator=(const ArenaArray&) = delete;

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  void Reset() {
    if (data_ == nullptr) return;
    for (size_t i = 0; i < size_; ++i) data_[i].~T();
    detail::ArenaFree(data_, size_ * sizeof(T));
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace powerlog::numa
