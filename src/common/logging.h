// Minimal leveled logger with compile-time-cheap macros.
#pragma once

#include <sstream>
#include <string>

namespace powerlog {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// \brief Process-wide logging controls. Thread-safe.
class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel level();
  /// Emits one formatted line to stderr if `level` is enabled.
  static void Log(LogLevel level, const char* file, int line, const std::string& msg);
};

namespace internal {

/// Stream-style collector used by the POWERLOG_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Log(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace powerlog

#define POWERLOG_LOG(severity)                                           \
  if (::powerlog::LogLevel::severity >= ::powerlog::Logger::level())     \
  ::powerlog::internal::LogMessage(::powerlog::LogLevel::severity,       \
                                   __FILE__, __LINE__)

#define POWERLOG_DEBUG POWERLOG_LOG(kDebug)
#define POWERLOG_INFO POWERLOG_LOG(kInfo)
#define POWERLOG_WARN POWERLOG_LOG(kWarning)
#define POWERLOG_ERROR POWERLOG_LOG(kError)
