// Minimal leveled logger with compile-time-cheap macros.
//
// Each record is emitted with a single `write(2)` of the fully formatted
// line, so records from concurrent workers never interleave mid-line (POSIX
// guarantees atomicity of a single write to the same open file description
// for pipe-sized payloads, and stderr is unbuffered by construction here).
// Lines carry a monotonic timestamp (seconds since the first log call) and
// the calling thread's tag:
//
//   [INFO 1.024531 w2 worker.cpp:310] recovered incarnation 2
#pragma once

#include <sstream>
#include <string>

namespace powerlog {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// \brief Process-wide logging controls. Thread-safe.
class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel level();

  /// Tags the calling thread's log lines (e.g. "w3", "sup", "ctl"). Copied
  /// into thread-local storage; truncated to 15 characters. Untagged threads
  /// log as "-".
  static void SetThreadTag(const char* tag);

  /// Emits one formatted line to stderr with a single atomic write if
  /// `level` is enabled.
  static void Log(LogLevel level, const char* file, int line, const std::string& msg);
};

namespace internal {

/// Stream-style collector used by the POWERLOG_LOG macro. The stream only
/// assembles the message body; Logger::Log formats the complete line
/// (prefix + body) into one buffer and writes it with one syscall.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logger::Log(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace powerlog

#define POWERLOG_LOG(severity)                                           \
  if (::powerlog::LogLevel::severity >= ::powerlog::Logger::level())     \
  ::powerlog::internal::LogMessage(::powerlog::LogLevel::severity,       \
                                   __FILE__, __LINE__)

#define POWERLOG_DEBUG POWERLOG_LOG(kDebug)
#define POWERLOG_INFO POWERLOG_LOG(kInfo)
#define POWERLOG_WARN POWERLOG_LOG(kWarning)
#define POWERLOG_ERROR POWERLOG_LOG(kError)
