#include "common/status.h"

namespace powerlog {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kConditionViolated:
      return "Condition violated";
    case StatusCode::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace powerlog
