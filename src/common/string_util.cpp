#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace powerlog {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::ParseError("empty integer literal");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::ParseError("empty float literal");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("float out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("trailing characters in float: " + buf);
  }
  return v;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace powerlog
