#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace powerlog::metrics {
namespace {

// libstdc++ does not ship the C++20 std::atomic<double>::fetch_add on every
// toolchain we target; a CAS loop is portable and the paths using it are not
// hot enough to care.
void AtomicAdd(std::atomic<double>* slot, double v) {
  double cur = slot->load(std::memory_order_relaxed);
  while (!slot->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* slot, double v) {
  double cur = slot->load(std::memory_order_relaxed);
  while (v < cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* slot, double v) {
  double cur = slot->load(std::memory_order_relaxed);
  while (v > cur &&
         !slot->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN literals
    out->append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

void AppendKey(std::string* out, const std::string& name) {
  out->push_back('"');
  out->append(JsonEscape(name));
  out->append("\":");
}

/// Appends {"name":value,...} with keys sorted; Emit writes one value.
template <typename T, typename Emit>
void AppendSection(std::string* out, const char* section,
                   std::vector<std::pair<std::string, T>> entries, Emit emit,
                   bool* first_section) {
  if (!*first_section) out->push_back(',');
  *first_section = false;
  out->push_back('"');
  out->append(section);
  out->append("\":{");
  std::stable_sort(entries.begin(), entries.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  bool first = true;
  for (const auto& [name, value] : entries) {
    if (!first) out->push_back(',');
    first = false;
    AppendKey(out, name);
    emit(out, value);
  }
  out->push_back('}');
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (snap.count > 0) {
    snap.min = min_.load(std::memory_order_relaxed);
    snap.max = max_.load(std::memory_order_relaxed);
  }
  return snap;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count <= 0 || counts.empty()) return std::nan("");
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const int64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) return max;  // overflow bucket: clamp
    // Interpolate the target rank's position within [lo, hi], clamped to
    // the observed extrema so tiny histograms don't extrapolate.
    const double lo = i == 0 ? std::min(min, bounds[0]) : bounds[i - 1];
    const double hi = bounds[i];
    const double frac =
        (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    const double v = lo + (hi - lo) * frac;
    return std::max(min, std::min(v, max));
  }
  return max;
}

std::vector<double> ExponentialBuckets(double start, double factor, int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(count, 0)));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

void MetricsSnapshot::AddCounter(const std::string& name, int64_t value) {
  counters.emplace_back(name, value);
}

void MetricsSnapshot::AddGauge(const std::string& name, double value) {
  gauges.emplace_back(name, value);
}

void MetricsSnapshot::AddHistogram(const std::string& name,
                                   HistogramSnapshot snapshot) {
  histograms.emplace_back(name, std::move(snapshot));
}

void MetricsSnapshot::AddSeries(const std::string& name, Series points) {
  series.emplace_back(name, std::move(points));
}

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out.push_back('{');
  bool first_section = true;
  AppendSection(
      &out, "counters", counters,
      [](std::string* o, int64_t v) { AppendInt(o, v); }, &first_section);
  AppendSection(
      &out, "gauges", gauges,
      [](std::string* o, double v) { AppendDouble(o, v); }, &first_section);
  AppendSection(
      &out, "histograms", histograms,
      [](std::string* o, const HistogramSnapshot& h) {
        o->append("{\"bounds\":[");
        for (size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) o->push_back(',');
          AppendDouble(o, h.bounds[i]);
        }
        o->append("],\"counts\":[");
        for (size_t i = 0; i < h.counts.size(); ++i) {
          if (i > 0) o->push_back(',');
          AppendInt(o, h.counts[i]);
        }
        o->append("],\"count\":");
        AppendInt(o, h.count);
        o->append(",\"sum\":");
        AppendDouble(o, h.sum);
        o->append(",\"min\":");
        AppendDouble(o, h.min);
        o->append(",\"max\":");
        AppendDouble(o, h.max);
        o->push_back('}');
      },
      &first_section);
  AppendSection(
      &out, "series", series,
      [](std::string* o, const Series& s) {
        o->push_back('[');
        for (size_t i = 0; i < s.size(); ++i) {
          if (i > 0) o->push_back(',');
          o->push_back('[');
          AppendDouble(o, s[i].first);
          o->push_back(',');
          AppendDouble(o, s[i].second);
          o->push_back(']');
        }
        o->push_back(']');
      },
      &first_section);
  out.push_back('}');
  return out;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.AddCounter(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.AddGauge(name, gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    snap.AddHistogram(name, hist->Snapshot());
  }
  return snap;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON parsing.

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    auto value = ParseValue();
    if (!value.ok()) return value.status();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    JsonValue v;
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = std::move(*s);
        return v;
      }
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        v.kind_ = JsonValue::Kind::kNull;
        return v;
      default: return ParseNumber();
    }
  }

  Result<JsonValue> ParseNumber() {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) return Error("expected a value");
    pos_ += static_cast<size_t>(end - begin);
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;
    return v;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // Our serialiser only emits \u00xx control escapes; decode the
          // low byte and let anything else pass through as UTF-8 bytes.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    if (Consume(']')) return v;
    while (true) {
      auto item = ParseValue();
      if (!item.ok()) return item.status();
      v.array_.push_back(std::move(*item));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    if (Consume('}')) return v;
    while (true) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (!Consume(':')) return Error("expected ':'");
      auto value = ParseValue();
      if (!value.ok()) return value.status();
      v.object_.emplace_back(std::move(*key), std::move(*value));
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace powerlog::metrics
