#include "common/thread_pool.h"

#include <atomic>

#include "common/numa_arena.h"

namespace powerlog {

ThreadPool::ThreadPool(size_t num_threads, bool pin) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i, pin] {
      if (pin) numa::PinThreadToCpu(numa::CpuForWorker(static_cast<uint32_t>(i)));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t chunks = std::min(n, threads_.size() * 4);
  std::atomic<size_t> next{0};
  for (size_t c = 0; c < chunks; ++c) {
    Submit([&next, n, chunks, &fn] {
      const size_t step = (n + chunks - 1) / chunks;
      while (true) {
        size_t begin = next.fetch_add(step);
        if (begin >= n) break;
        size_t end = std::min(begin + step, n);
        for (size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

bool Barrier::ArriveAndWait() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (broken_) return false;
  size_t gen = generation_;
  if (--count_ == 0) {
    ++generation_;
    count_ = threshold_;
    cv_.notify_all();
    return true;
  }
  cv_.wait(lock, [this, gen] { return gen != generation_ || broken_; });
  return false;
}

void Barrier::Break() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    broken_ = true;
  }
  cv_.notify_all();
}

void Barrier::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  broken_ = false;
  count_ = threshold_;
  // The generation bump flips every pending waiter's predicate, so they
  // must be woken here: Reset on a barrier that still has waiters would
  // otherwise leave them asleep forever (no notify, no spurious-wakeup
  // guarantee).
  ++generation_;
  cv_.notify_all();
}

bool Barrier::broken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return broken_;
}

}  // namespace powerlog
