// The tracing plane: per-thread bounded event rings and a Chrome
// trace-event exporter.
//
// Design (mirrors the data plane's lock-free discipline, ARCHITECTURE.md §5):
//  * One EventRing per instrumented thread (workers, supervisor, termination
//    controller). The owning thread is the ring's only writer; emission is a
//    pair of relaxed field stores plus one release store of the head — no
//    locks, no allocation, no CAS.
//  * Events are fixed-size PODs referencing *static-storage* name strings
//    (string literals), so recording never copies or allocates.
//  * The ring is bounded and drops the *oldest* events on wrap: the writer
//    always overwrites, and `dropped()` reports how many events fell off the
//    back. A trace therefore always holds the most recent window of a run —
//    the tail where convergence, recovery, and termination live.
//  * Snapshots may be taken concurrently with the writer (the `/trace` HTTP
//    endpoint does): TakeSnapshot copies the newest events and then re-reads
//    the head, discarding any entry the writer could have overwritten
//    mid-copy (a seqlock-style validation; slot fields are relaxed atomics so
//    the racing reads are defined, and every possibly-torn event is
//    discarded before it escapes).
//  * When tracing is off (EngineOptions::trace = false, the default), every
//    instrumentation site is guarded by a null Tracer pointer: a SpanGuard
//    costs one predictable branch in its constructor and one in its
//    destructor, and — crucially — no clock read ever happens (the PR-3
//    lazy-clock discipline: the clock-free bus fast path survives with
//    tracing compiled in).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace powerlog::trace {

enum class EventType : uint8_t {
  kSpanBegin = 0,  ///< start of a nested duration ("B" in Chrome format)
  kSpanEnd = 1,    ///< end of the innermost open span ("E")
  kInstant = 2,    ///< point event ("i")
  kCounter = 3,    ///< sampled counter value ("C"); value = the sample
  kFlowSend = 4,   ///< flow start ("s"); value = flow id
  kFlowRecv = 5,   ///< flow finish ("f"); value = flow id
};

/// \brief One recorded event, as plain data. `name` must point to a string
/// with static storage duration (a literal): the ring stores the pointer.
struct Event {
  int64_t ts_us = 0;
  const char* name = nullptr;
  double value = 0.0;
  EventType type = EventType::kInstant;
};

/// \brief Bounded single-writer event ring with drop-oldest semantics.
///
/// Memory-ordering contract: the writer stores the slot fields with relaxed
/// ordering and then publishes with a release store of `head_`; a reader's
/// acquire load of `head_` makes every slot with index < head visible. A
/// slot the writer may be concurrently overwriting is detected by re-reading
/// the head after the copy (any copied index older than `head2 + 1 - cap`
/// is discarded — the writer mutates slot `j & mask` before publishing
/// `j + 1`, so index `head2 - cap` is the oldest possibly-torn entry).
class EventRing {
 public:
  /// `capacity` is rounded up to a power of two, minimum 64.
  explicit EventRing(uint32_t capacity);

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Records one event, timestamping it now. Single writer only.
  void Emit(EventType type, const char* name, double value);

  /// Events overwritten so far (head past capacity).
  int64_t dropped() const {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    return h > slots_.size() ? static_cast<int64_t>(h - slots_.size()) : 0;
  }

  size_t capacity() const { return slots_.size(); }

  struct Snapshot {
    std::vector<Event> events;  ///< oldest to newest
    int64_t dropped = 0;        ///< events lost to wraparound
  };

  /// Copies the newest events. Safe concurrently with the writer; events the
  /// writer might have been overwriting mid-copy are discarded (they count
  /// as dropped). Once the ring has wrapped this discards one extra event
  /// unconditionally — the oldest copied slot aliases the writer's next
  /// write target, and without a per-slot sequence there is no way to prove
  /// it was not mid-overwrite — so a post-wrap snapshot holds capacity-1
  /// events even from a quiescent ring.
  Snapshot TakeSnapshot() const;

 private:
  /// Relaxed-atomic mirror of Event so the seqlock-style concurrent snapshot
  /// read is defined behaviour (possibly-torn entries are discarded, never
  /// surfaced).
  struct Slot {
    std::atomic<int64_t> ts_us{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<double> value{0.0};
    std::atomic<uint8_t> type{0};
  };

  std::vector<Slot> slots_;
  uint64_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  ///< next write index
};

/// \brief One run's tracing context: a registry of named per-thread rings,
/// the flow-id source linking a message's Send span to its Receive span, and
/// the run's epoch for relative timestamps.
///
/// Threads register themselves (RegisterCurrentThread installs a
/// thread-local current-ring pointer so deeply nested code — the message
/// bus, the checkpoint store — can emit without plumbing a ring through
/// every call). Rings live as long as the Tracer; registered threads must
/// unregister (or exit) before it is destroyed.
class Tracer {
 public:
  /// `ring_capacity` = events retained per registered thread.
  explicit Tracer(uint32_t ring_capacity = 1u << 16);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Creates (or reuses, by name) this thread's ring and installs it as the
  /// thread-local current ring. Thread-safe.
  EventRing* RegisterCurrentThread(const std::string& name);

  /// Clears the calling thread's current-ring pointer. The ring itself stays
  /// in the registry for export.
  static void UnregisterCurrentThread();

  /// The calling thread's ring, or nullptr if it never registered.
  static EventRing* Current();

  /// Fresh nonzero flow id (Send→Receive linkage).
  uint64_t NextFlowId() {
    return next_flow_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  int64_t start_us() const { return start_us_; }

  struct NamedRing {
    std::string name;
    const EventRing* ring;
  };
  /// Registered rings, in registration order. Pointers are stable.
  std::vector<NamedRing> rings() const;

  /// Total events lost to wraparound across all rings.
  int64_t TotalDropped() const;

 private:
  int64_t start_us_;
  uint32_t ring_capacity_;
  std::atomic<uint64_t> next_flow_{0};
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::unique_ptr<EventRing>>> rings_;
};

/// \brief RAII span: Begin on construction, End on destruction, emitted to
/// the calling thread's ring. With `tracer == nullptr` (tracing disabled)
/// both sides reduce to a single branch and no clock read.
class SpanGuard {
 public:
  SpanGuard(const Tracer* tracer, const char* name) {
    if (tracer != nullptr) Begin(name);
  }
  ~SpanGuard() {
    if (ring_ != nullptr) ring_->Emit(EventType::kSpanEnd, name_, 0.0);
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  void Begin(const char* name) {
    ring_ = Tracer::Current();
    if (ring_ == nullptr) return;
    name_ = name;
    ring_->Emit(EventType::kSpanBegin, name, 0.0);
  }

  EventRing* ring_ = nullptr;
  const char* name_ = nullptr;
};

/// Point event on the calling thread's ring; single branch when disabled.
inline void Instant(const Tracer* tracer, const char* name, double value = 0.0) {
  if (tracer == nullptr) return;
  if (EventRing* ring = Tracer::Current()) {
    ring->Emit(EventType::kInstant, name, value);
  }
}

/// Counter sample on the calling thread's ring.
inline void CounterSample(const Tracer* tracer, const char* name, double value) {
  if (tracer == nullptr) return;
  if (EventRing* ring = Tracer::Current()) {
    ring->Emit(EventType::kCounter, name, value);
  }
}

/// \brief Serialises every ring into Chrome trace-event JSON
/// (`{"traceEvents":[...]}`), loadable in Perfetto / chrome://tracing.
/// Each ring becomes one thread row (pid 0, tid = registration order) with a
/// thread_name metadata record; timestamps are microseconds relative to the
/// tracer's start. Span begin/end pairs export as "B"/"E"; wraparound can
/// behead a span, so unmatched "E" events are dropped and unclosed "B"
/// events are closed at the ring's final timestamp — the exported stream is
/// always well nested. Flow events export as "s"/"f" with the flow id.
std::string ExportChromeTrace(const Tracer& tracer);

}  // namespace powerlog::trace
