#include "common/logging.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/timer.h"

namespace powerlog {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

thread_local char t_tag[16] = {'-', '\0'};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Monotonic epoch anchored at the first log call, so timestamps read as
// seconds into the run and match trace timestamps (both use NowMicros).
int64_t EpochMicros() {
  static const int64_t epoch = NowMicros();
  return epoch;
}

}  // namespace

void Logger::SetLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Logger::level() { return static_cast<LogLevel>(g_level.load()); }

void Logger::SetThreadTag(const char* tag) {
  std::snprintf(t_tag, sizeof(t_tag), "%s", tag != nullptr ? tag : "-");
}

void Logger::Log(LogLevel level, const char* file, int line, const std::string& msg) {
  if (level < Logger::level()) return;
  // Strip directories from __FILE__ for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  const int64_t us = NowMicros() - EpochMicros();

  // One buffer, one write(2): concurrent workers' records cannot interleave
  // mid-line. Oversized messages are truncated (snprintf) rather than split
  // across writes; PIPE_BUF (>= 4096) bounds the atomicity guarantee anyway.
  char buf[1024];
  int n = std::snprintf(buf, sizeof(buf), "[%s %lld.%06lld %s %s:%d] %s\n",
                        LevelName(level), static_cast<long long>(us / 1000000),
                        static_cast<long long>(us % 1000000), t_tag, base, line,
                        msg.c_str());
  if (n < 0) return;
  if (n >= static_cast<int>(sizeof(buf))) {
    n = static_cast<int>(sizeof(buf));
    buf[n - 1] = '\n';
  }
  ssize_t written = ::write(2, buf, static_cast<size_t>(n));
  (void)written;
}

}  // namespace powerlog
