#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace powerlog {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void Logger::SetLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel Logger::level() { return static_cast<LogLevel>(g_level.load()); }

void Logger::Log(LogLevel level, const char* file, int line, const std::string& msg) {
  if (level < Logger::level()) return;
  // Strip directories from __FILE__ for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
}

}  // namespace powerlog
