// Deterministic, seedable PRNG used across generators, engines, and tests.
//
// We avoid std::mt19937 for the hot paths: xoshiro256** is faster and its
// state is trivially checkpointable (the runtime snapshots RNG state).
#pragma once

#include <cstdint>

namespace powerlog {

/// \brief SplitMix64; used to seed xoshiro and as a cheap avalanche hash.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Stateless 64-bit mix of a value (for hash partitioning).
inline uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

/// \brief xoshiro256** generator: fast, high-quality, 256-bit state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Raw state access for checkpointing.
  const uint64_t* state() const { return s_; }
  void set_state(const uint64_t* state) {
    for (int i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace powerlog
