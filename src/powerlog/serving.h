// The resident serving plane (ISSUE 6, ROADMAP item 1): converged
// recursive-aggregate state as a long-lived, queryable asset.
//
// `PowerLog::Run` is the batch shape — parse, check, build a graph,
// converge, discard. A ServingCatalog is the serving shape: it materialises
// each (program, dataset) pair exactly once — compile + condition-check +
// converge on a shared immutable Graph snapshot — and keeps the converged
// accumulation column resident. Queries then cost what they should:
//
//   * point lookups (SSSP distance, PageRank score by vertex id) and top-k
//     scans read straight from the resident values — no engine, no graph,
//     no parse;
//   * full re-runs (fresh convergence, e.g. with a different source vertex)
//     multiplex concurrently over the *same* snapshot through the
//     PR-2 `Run(const Kernel&, ...)` serving overload, behind admission
//     control (bounded in-flight runs + a bounded wait queue), per-query
//     deadlines, and a keyed LRU result cache with hit/miss/eviction
//     counters.
//
// The zero-rebuild guarantee is a counter, not a promise:
// `graph_builds() == catalog size` after any number of queries.
//
// Thread model: Materialize* is serialised and must complete before query
// traffic starts (the serve binary materialises at boot). Every query entry
// point — Lookup, TopK, Run, Metrics — is safe to call concurrently from
// any number of threads; entries are immutable once materialised, and the
// admission/cache state is internally synchronised.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "core/kernel.h"
#include "graph/snapshot.h"
#include "powerlog/powerlog.h"
#include "runtime/engine.h"
#include "runtime/exposition.h"

namespace powerlog::serving {

struct ServingOptions {
  /// Engine configuration used both to materialise entries and as the
  /// template for on-demand full runs. `exposition` must stay null here —
  /// the serving plane owns the HTTP server.
  runtime::EngineOptions engine;

  /// Admission control: full runs executing concurrently. Each run spins up
  /// `engine.num_workers` threads, so this bounds total engine threads at
  /// `max_inflight_runs * num_workers`.
  int max_inflight_runs = 2;

  /// Runs allowed to wait for a slot; beyond this the request is rejected
  /// immediately (HTTP 503). 0 = no waiting room, reject when saturated.
  int max_queued_runs = 8;

  /// Deadline applied when a query does not carry its own. A run that
  /// cannot be admitted and finished inside its deadline returns
  /// Status::Timeout (HTTP 503). Covers queue wait + execution; in the
  /// async modes it also caps the engine's wall clock mid-run.
  int64_t default_deadline_ms = 30000;

  /// Keyed full-run result cache entries (LRU). 0 disables caching.
  size_t cache_capacity = 64;
};

/// \brief One resident (program, dataset) pair: compiled kernel, shared
/// graph snapshot, and the converged accumulation column. Immutable after
/// materialisation — streaming mutation is ROADMAP item 2, and it will
/// re-converge a *new* snapshot rather than write into a served one.
struct ServingEntry {
  std::string program;
  std::string dataset;
  Kernel kernel;
  std::shared_ptr<const Graph> graph;
  std::vector<double> values;   ///< converged per-vertex results
  runtime::EngineStats stats;   ///< from the materialising convergence run
  double materialize_seconds = 0.0;
};

/// \brief Result of one full-run query.
struct RunSummary {
  bool converged = false;
  double wall_seconds = 0.0;
  int64_t supersteps = 0;
  int64_t edge_applications = 0;
  bool cached = false;  ///< answered from the result cache
  std::vector<double> values;
};

class ServingCatalog {
 public:
  explicit ServingCatalog(ServingOptions options);

  /// Materialises catalog program `program` over registry dataset `dataset`
  /// (row-stochastic view chosen per the program's catalog entry, exactly as
  /// powerlog_cli does): parse + mra_checker + converge, then retain.
  /// Programs that fail the MRA check are rejected — the serving plane runs
  /// the incremental engine only. Idempotent per pair.
  Status Materialize(const std::string& program, const std::string& dataset);

  /// Materialises from explicit Datalog source over an adopted graph, under
  /// the given labels (tests and custom deployments).
  Status MaterializeSource(const std::string& program_label,
                           const std::string& dataset_label,
                           const std::string& source, Graph graph);

  /// Resident entry, or nullptr. Entries are immutable; the pointer stays
  /// valid for the catalog's lifetime.
  const ServingEntry* Find(const std::string& program,
                           const std::string& dataset) const;

  /// Point lookup from resident state: the converged value of vertex `v`.
  Result<double> Lookup(const std::string& program, const std::string& dataset,
                        VertexId v) const;

  /// Top-k scan from resident state: the k best (vertex, value) pairs,
  /// descending by value (`ascending` flips it — the natural order for
  /// distance-like min aggregates). Non-finite values are skipped.
  Result<std::vector<std::pair<VertexId, double>>> TopK(
      const std::string& program, const std::string& dataset, size_t k,
      bool ascending = false) const;

  /// Full-run multiplexing: a fresh convergence over the entry's shared
  /// snapshot (`source_override` re-seeds single-source programs — the
  /// query shape that actually needs a new fixpoint). Admission-controlled
  /// and deadline-bounded; `deadline_ms <= 0` uses the default. Cached by
  /// (program, dataset, source) unless `use_cache` is false.
  Result<RunSummary> Run(const std::string& program, const std::string& dataset,
                         std::optional<uint32_t> source_override = {},
                         int64_t deadline_ms = 0, bool use_cache = true);

  /// Names of resident entries, in materialisation order.
  std::vector<std::pair<std::string, std::string>> Entries() const;

  size_t size() const;

  /// Graph materialisations performed — the zero-rebuild acceptance
  /// counter: equals the number of distinct snapshots, never query count.
  int64_t graph_builds() const { return registry_.builds(); }

  /// Serving-plane counters (serving.* namespace), suitable for merging
  /// into the exposition server's /metrics via SetSources.
  metrics::MetricsSnapshot Metrics() const;

  const ServingOptions& options() const { return options_; }

 private:
  Status MaterializeEntry(const std::string& program,
                          const std::string& dataset, Kernel kernel,
                          std::shared_ptr<const Graph> graph);
  const ServingEntry* FindLocked(const std::string& program,
                                 const std::string& dataset) const;

  /// Blocks until a run slot is free or the deadline passes. Returns OK on
  /// admission (caller must call ReleaseRunSlot), Timeout/OutOfRange on
  /// rejection.
  Status AcquireRunSlot(int64_t deadline_us);
  void ReleaseRunSlot();

  ServingOptions options_;
  GraphSnapshotRegistry registry_;

  mutable std::mutex entries_mutex_;  ///< guards materialisation only
  std::vector<std::unique_ptr<ServingEntry>> entries_;

  // Admission control (mutable: Metrics() reads the gauges under the lock).
  mutable std::mutex run_mutex_;
  std::condition_variable run_cv_;
  int inflight_runs_ = 0;
  int queued_runs_ = 0;

  // Keyed LRU result cache.
  struct CacheSlot {
    std::string key;
    RunSummary summary;
  };
  mutable std::mutex cache_mutex_;
  std::list<CacheSlot> cache_lru_;  ///< front = most recent
  std::map<std::string, std::list<CacheSlot>::iterator> cache_index_;

  // Counters (relaxed atomics; snapshot via Metrics()).
  mutable std::atomic<int64_t> lookups_{0};
  mutable std::atomic<int64_t> topk_scans_{0};
  std::atomic<int64_t> run_requests_{0};
  std::atomic<int64_t> runs_executed_{0};
  std::atomic<int64_t> runs_rejected_{0};
  std::atomic<int64_t> run_timeouts_{0};
  mutable std::atomic<int64_t> cache_hits_{0};
  mutable std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> cache_evictions_{0};
};

/// \brief Builds the HTTP route handler exposing `catalog` through an
/// ExpositionServer (install with SetHandler before Start). Routes:
///
///   /catalog                         resident entries + convergence stats
///   /lookup?program=P&dataset=D&v=N  point lookup from resident state
///   /topk?program=P&dataset=D&k=K[&order=asc]
///                                    top-k scan from resident state
///   /run?program=P&dataset=D[&source=V][&deadline_ms=M][&nocache=1]
///                                    admission-controlled full run
///
/// All responses are JSON. Errors map NotFound→404, InvalidArgument→400,
/// Timeout and queue-full→503. The catalog must outlive the server.
ExpositionServer::Handler MakeServingHandler(ServingCatalog* catalog);

}  // namespace powerlog::serving
