// The resident serving plane (ISSUE 6 + 7, ROADMAP items 1-2): converged
// recursive-aggregate state as a long-lived, queryable, *mutable* asset.
//
// `PowerLog::Run` is the batch shape — parse, check, build a graph,
// converge, discard. A ServingCatalog is the serving shape: it materialises
// each (program, dataset) pair exactly once — compile + condition-check +
// converge on a shared immutable Graph snapshot — and hands back a
// `Materialization` handle over the resident state. Queries then cost what
// they should:
//
//   * point lookups (SSSP distance, PageRank score by vertex id) and top-k
//     scans read straight from the resident values — no engine, no graph,
//     no parse;
//   * full re-runs (fresh convergence, e.g. with a different source vertex)
//     multiplex concurrently over the *same* snapshot through the
//     PR-2 `Run(const Kernel&, ...)` serving overload, behind admission
//     control (bounded in-flight runs + a bounded wait queue), per-query
//     deadlines, and a keyed LRU result cache with hit/miss/eviction
//     counters;
//   * streaming mutations (`Apply`) patch a *new* snapshot copy-on-write,
//     re-converge it incrementally (reconverge.h plans delta seeding /
//     scoped re-derivation / recompute fallback; Engine::Resume drains it),
//     and atomically advance the handle's head version. Snapshots are never
//     written in place: readers of the previous version finish undisturbed,
//     and the version only advances once the new fixpoint is certified.
//
// The zero-rebuild guarantee is a counter, not a promise:
// `graph_builds() == catalog size + mutation batches applied` after any
// number of queries.
//
// Thread model: Materialize* is serialised and must complete before query
// traffic starts (the serve binary materialises at boot). Every query entry
// point — Lookup, TopK, Run, Version, Stats, Metrics — is safe to call
// concurrently from any number of threads, including concurrently with
// Apply: queries read an immutable per-version state block behind one
// mutex-guarded pointer swap. Apply itself is serialised per handle.
// Handles share ownership with the catalog; they remain safe to *hold*
// after the catalog is destroyed, but Run/Apply must not outlive it (they
// use the catalog's admission control and registry).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/trace.h"
#include "core/kernel.h"
#include "graph/mutation.h"
#include "graph/snapshot.h"
#include "powerlog/powerlog.h"
#include "runtime/engine.h"
#include "runtime/exposition.h"

namespace powerlog::serving {

struct ServingOptions {
  /// Engine configuration used to materialise entries, as the template for
  /// on-demand full runs, and for mutation re-convergence. `exposition`
  /// must stay null here — the serving plane owns the HTTP server. This is
  /// the single engine-tuning escape hatch: the serving plane never writes
  /// engine fields behind the caller's back except that one null-out.
  runtime::EngineOptions engine;

  /// Admission control: full runs executing concurrently. Each run spins up
  /// `engine.num_workers` threads, so this bounds total engine threads at
  /// `max_inflight_runs * num_workers`.
  int max_inflight_runs = 2;

  /// Runs allowed to wait for a slot; beyond this the request is rejected
  /// immediately (HTTP 503). 0 = no waiting room, reject when saturated.
  int max_queued_runs = 8;

  /// Deadline applied when a query does not carry its own. A run that
  /// cannot be admitted and finished inside its deadline returns
  /// Status::Timeout (HTTP 503). Covers queue wait + execution; in the
  /// async modes it also caps the engine's wall clock mid-run.
  int64_t default_deadline_ms = 30000;

  /// Keyed full-run result cache entries (LRU). 0 disables caching.
  size_t cache_capacity = 64;

  /// Query-level tracing: the catalog owns one trace::Tracer shared by every
  /// request thread and every engine run it launches (the runs register
  /// their worker/supervisor/controller rings on it with a per-query tag),
  /// so one request exports as a single connected Perfetto span tree —
  /// serving.request.* → admission/cache/exec phases → engine worker spans,
  /// linked by a flow arrow. Off (the default) every request-path trace site
  /// costs one branch.
  bool trace = false;

  /// Events retained per registered thread ring when `trace` is on.
  uint32_t trace_ring_events = 1u << 16;

  /// Queries slower than this (end-to-end) are logged via POWERLOG_WARN.
  /// <= 0 disables the log line; the slow-query ring captures regardless.
  int64_t slow_query_ms = 0;

  /// Bounded ring of the N slowest recent queries kept for /debug/queries.
  size_t slow_query_capacity = 32;
};

/// \brief One captured query for the slow-query ring and the inflight
/// snapshot (`GET /debug/queries`): identity, phase breakdown, outcome.
struct QueryRecord {
  int64_t id = 0;          ///< catalog-unique query id (trace ring tag ".qN")
  std::string route;       ///< "lookup" | "topk" | "run" | "mutate" | ...
  std::string key;         ///< program/dataset plus the salient parameters
  uint64_t version = 0;    ///< snapshot version the query ran against
  std::string status;      ///< "OK" or the Status code name
  bool cached = false;     ///< answered from the run cache
  double queue_ms = 0.0;   ///< admission queue wait
  double exec_ms = 0.0;    ///< engine execution (0 for resident reads)
  double total_ms = 0.0;   ///< end-to-end, request entry to response build
  int64_t start_us = 0;    ///< wall-clock start (NowMicros)
};

/// \brief Point-in-time view served at /debug/queries.
struct QueryDebugSnapshot {
  std::vector<QueryRecord> inflight;  ///< currently executing (phases tbd)
  std::vector<QueryRecord> slowest;   ///< descending by total_ms, bounded
};

/// \brief Result of one full-run query.
struct RunSummary {
  bool converged = false;
  double wall_seconds = 0.0;
  int64_t supersteps = 0;
  int64_t edge_applications = 0;
  bool cached = false;  ///< answered from the result cache
  std::vector<double> values;
};

/// \brief What one `Materialization::Apply` did: how the batch resolved,
/// which re-convergence path ran, and the new head version.
struct MutationStats {
  uint64_t version = 0;        ///< head version after the batch
  std::string path;            ///< "delta" | "rederive" | "recompute" | "noop"
  size_t ops_requested = 0;
  int64_t ops_applied = 0;     ///< ops that changed at least one edge
  int64_t edges_added = 0;
  int64_t edges_removed = 0;
  int64_t edges_reweighted = 0;
  int64_t affected_vertices = 0;  ///< rederive path: rows reset + re-derived
  double apply_seconds = 0.0;     ///< patch + plan + re-convergence wall time
  runtime::EngineStats engine;    ///< the re-convergence run ("noop": empty)
};

class ServingCatalog;

/// \brief Handle over one resident (program, dataset) pair. Queries read
/// the current version's immutable state; `Apply` advances it. Obtained
/// from `ServingCatalog::Materialize*` / `Find`.
class Materialization {
 public:
  const std::string& program() const { return program_; }
  const std::string& dataset() const { return dataset_; }
  const Kernel& kernel() const { return kernel_; }
  double materialize_seconds() const { return materialize_seconds_; }

  /// Point lookup from resident state: the converged value of vertex `v`.
  Result<double> Lookup(VertexId v) const;

  /// Top-k scan from resident state: the k best (vertex, value) pairs,
  /// descending by value (`ascending` flips it — the natural order for
  /// distance-like min aggregates). Non-finite values are skipped.
  Result<std::vector<std::pair<VertexId, double>>> TopK(
      size_t k, bool ascending = false) const;

  /// Full-run multiplexing over the current snapshot (`source_override`
  /// re-seeds single-source programs). Admission-controlled and
  /// deadline-bounded via the owning catalog; `deadline_ms <= 0` uses the
  /// catalog default. Cached by (program, dataset, source) unless
  /// `use_cache` is false; the cache is invalidated on every version bump.
  Result<RunSummary> Run(std::optional<uint32_t> source_override = {},
                         int64_t deadline_ms = 0, bool use_cache = true);

  /// Applies one mutation batch: patches a new snapshot copy-on-write,
  /// plans re-convergence (reconverge.h), runs it (Engine::Resume on the
  /// delta/rederive paths, a cold run on the recompute fallback), and —
  /// only once the new fixpoint is certified — advances the head version
  /// and invalidates the catalog's run cache for this pair. On any error
  /// (including non-convergence) the current version keeps serving
  /// untouched. Serialised per handle; concurrent queries stay safe.
  Result<MutationStats> Apply(const MutationBatch& batch);

  /// Current head version. Starts at 1; +1 per graph-changing Apply.
  uint64_t Version() const;

  /// Engine statistics of the run that produced the current version (the
  /// materialising convergence for version 1, the last re-convergence
  /// after mutations).
  runtime::EngineStats Stats() const;

  /// The current version's graph snapshot.
  std::shared_ptr<const Graph> graph() const;

 private:
  friend class ServingCatalog;

  /// One immutable version of the resident state. Swapped wholesale under
  /// `state_mutex_`; readers hold a shared_ptr and never see a mix of two
  /// versions.
  struct Resident {
    uint64_t version = 1;
    std::shared_ptr<const Graph> graph;
    std::vector<double> values;
    runtime::EngineStats stats;
  };

  Materialization(ServingCatalog* catalog, std::string program,
                  std::string dataset, Kernel kernel)
      : catalog_(catalog),
        program_(std::move(program)),
        dataset_(std::move(dataset)),
        kernel_(std::move(kernel)) {}

  std::shared_ptr<const Resident> Current() const;

  ServingCatalog* catalog_;
  const std::string program_;
  const std::string dataset_;
  const Kernel kernel_;
  double materialize_seconds_ = 0.0;

  mutable std::mutex state_mutex_;          ///< guards the pointer swap only
  std::shared_ptr<const Resident> resident_;
  std::mutex apply_mutex_;                  ///< serialises Apply per handle
};

class ServingCatalog {
 public:
  explicit ServingCatalog(ServingOptions options);

  /// Materialises catalog program `program` over registry dataset `dataset`
  /// (row-stochastic view chosen per the program's catalog entry, exactly as
  /// powerlog_cli does): parse + mra_checker + converge, then retain.
  /// Programs that fail the MRA check are rejected — the serving plane runs
  /// the incremental engine only. Idempotent per pair: re-materialising
  /// returns the existing handle.
  Result<std::shared_ptr<Materialization>> Materialize(
      const std::string& program, const std::string& dataset);

  /// Materialises from explicit Datalog source over an adopted graph, under
  /// the given labels (tests and custom deployments).
  Result<std::shared_ptr<Materialization>> MaterializeSource(
      const std::string& program_label, const std::string& dataset_label,
      const std::string& source, Graph graph);

  /// Resident handle, or nullptr. Handles share ownership with the catalog.
  std::shared_ptr<Materialization> Find(const std::string& program,
                                        const std::string& dataset) const;

  /// DEPRECATED string-keyed query wrappers — prefer holding the
  /// Materialization handle from Materialize*/Find and querying it
  /// directly; each of these pays a catalog lookup per call. Kept (and kept
  /// working) for existing call sites; not marked [[deprecated]] only
  /// because the tree builds with -Werror.
  Result<double> Lookup(const std::string& program, const std::string& dataset,
                        VertexId v) const;
  Result<std::vector<std::pair<VertexId, double>>> TopK(
      const std::string& program, const std::string& dataset, size_t k,
      bool ascending = false) const;
  Result<RunSummary> Run(const std::string& program, const std::string& dataset,
                         std::optional<uint32_t> source_override = {},
                         int64_t deadline_ms = 0, bool use_cache = true);

  /// Names of resident entries, in materialisation order.
  std::vector<std::pair<std::string, std::string>> Entries() const;

  size_t size() const;

  /// Graph materialisations performed — the rebuild acceptance counter:
  /// one per distinct snapshot plus one per graph-changing mutation batch,
  /// never query count.
  int64_t graph_builds() const { return registry_.builds(); }

  /// Serving-plane counters (serving.* namespace) plus the per-route RED
  /// instruments (serving.red.*, serving.latency.*), suitable for merging
  /// into the exposition server's /metrics via SetSources.
  metrics::MetricsSnapshot Metrics() const;

  /// The catalog-owned query tracer, or null when `options.trace` is off.
  /// Engine runs launched by this catalog register their rings on it.
  trace::Tracer* tracer() const { return tracer_.get(); }

  /// Chrome trace JSON across every serving-request and engine ring — the
  /// merged query-level trace. Empty string when tracing is off. Safe to
  /// call concurrently with traffic (ring snapshots are seqlock-validated).
  std::string TraceJson() const;

  /// /debug/queries data: currently-inflight queries plus the slowest-N
  /// completed ones (descending by total_ms).
  QueryDebugSnapshot DebugQueries() const;

  /// Begins tracking one request on the calling thread: assigns a query id,
  /// registers this thread's trace ring (first call per thread), opens the
  /// request span, records the query as inflight, and arms the thread-local
  /// phase sink that RunImpl/Apply feed. Returns the query id; pass it to
  /// FinishQuery on the *same thread*. `route` must be a string literal.
  int64_t StartQuery(const char* route, std::string key);

  /// Completes tracking: closes the request span, moves the record from
  /// inflight to the slow-query ring, bumps the per-route RED instruments,
  /// and logs above the slow-query threshold.
  void FinishQuery(int64_t id, const Status& status);

  const ServingOptions& options() const { return options_; }

 private:
  friend class Materialization;

  Result<std::shared_ptr<Materialization>> MaterializeEntry(
      const std::string& program, const std::string& dataset, Kernel kernel,
      std::shared_ptr<const Graph> graph);
  std::shared_ptr<Materialization> FindLocked(const std::string& program,
                                              const std::string& dataset) const;

  /// The shared implementation behind Materialization::Run and the
  /// deprecated string-keyed Run.
  Result<RunSummary> RunImpl(Materialization* entry,
                             std::optional<uint32_t> source_override,
                             int64_t deadline_ms, bool use_cache);

  /// Drops every cached run result for one (program, dataset) pair — called
  /// on version advance so stale fixpoints never serve.
  void InvalidateCache(const std::string& pair_key);

  /// Blocks until a run slot is free or the deadline passes. Returns OK on
  /// admission (caller must call ReleaseRunSlot), Timeout/OutOfRange on
  /// rejection.
  Status AcquireRunSlot(int64_t deadline_us);
  void ReleaseRunSlot();

  /// Stamps query-level trace fields (external tracer, per-run ring tag,
  /// flow id) onto one engine-run's options and emits the FlowSend side of
  /// the request arrow on the calling thread's ring. No-op when tracing is
  /// off. `flow_name` must be a string literal.
  void StampRunTrace(runtime::EngineOptions* engine, const char* flow_name);

  ServingOptions options_;
  GraphSnapshotRegistry registry_;

  // Query-level observability plane.
  std::unique_ptr<trace::Tracer> tracer_;   ///< null when options_.trace off
  std::atomic<int64_t> next_query_id_{0};
  std::atomic<int64_t> serving_rings_{0};   ///< request-thread ring names
  metrics::Registry red_;                   ///< per-route RED instruments
  mutable std::mutex debug_mutex_;          ///< guards inflight_ + slow_
  std::map<int64_t, QueryRecord> inflight_;
  std::vector<QueryRecord> slow_;           ///< descending by total_ms

  mutable std::mutex entries_mutex_;  ///< guards materialisation only
  std::vector<std::shared_ptr<Materialization>> entries_;

  // Admission control (mutable: Metrics() reads the gauges under the lock).
  mutable std::mutex run_mutex_;
  std::condition_variable run_cv_;
  int inflight_runs_ = 0;
  int queued_runs_ = 0;

  // Keyed LRU result cache.
  struct CacheSlot {
    std::string key;
    RunSummary summary;
  };
  mutable std::mutex cache_mutex_;
  std::list<CacheSlot> cache_lru_;  ///< front = most recent
  std::map<std::string, std::list<CacheSlot>::iterator> cache_index_;

  // Counters (relaxed atomics; snapshot via Metrics()).
  mutable std::atomic<int64_t> lookups_{0};
  mutable std::atomic<int64_t> topk_scans_{0};
  std::atomic<int64_t> run_requests_{0};
  std::atomic<int64_t> runs_executed_{0};
  std::atomic<int64_t> runs_rejected_{0};
  std::atomic<int64_t> run_timeouts_{0};
  mutable std::atomic<int64_t> cache_hits_{0};
  mutable std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> cache_evictions_{0};
  std::atomic<int64_t> mutations_applied_{0};
  std::atomic<int64_t> mutation_delta_path_{0};
  std::atomic<int64_t> mutation_rederive_path_{0};
  std::atomic<int64_t> mutation_fallback_path_{0};
};

/// \brief Builds the HTTP route handler exposing `catalog` through an
/// ExpositionServer (install with SetHandler before Start). Routes:
///
///   GET  /catalog                    resident entries + convergence stats
///   GET  /lookup?program=P&dataset=D&v=N
///                                    point lookup from resident state
///   GET  /topk?program=P&dataset=D&k=K[&order=asc]
///                                    top-k scan from resident state
///   GET  /run?program=P&dataset=D[&source=V][&deadline_ms=M][&nocache=1]
///                                    admission-controlled full run
///   GET  /version?program=P&dataset=D
///                                    current head version of the pair
///   POST /mutate?program=P&dataset=D
///                                    body {"ops":[{"op":"insert","src":S,
///                                    "dst":T,"weight":W}, ...]} with op in
///                                    insert|delete|reweight; applies the
///                                    batch and re-converges incrementally
///   GET  /debug/queries              live introspection: inflight queries +
///                                    the slowest-N recent ones with phase
///                                    breakdown (queue/exec/total ms)
///
/// All responses are JSON. Errors map NotFound→404, InvalidArgument→400,
/// Timeout and queue-full→503. Every request is tracked through
/// ServingCatalog::StartQuery/FinishQuery (query ids, RED metrics, request
/// spans when tracing is on). The catalog must outlive the server.
ExpositionServer::Handler MakeServingHandler(ServingCatalog* catalog);

}  // namespace powerlog::serving
