#include "powerlog/powerlog.h"

#include "datalog/parser.h"
#include "eval/naive.h"
#include "systems/vertex_engines.h"

namespace powerlog {

Result<checker::MraCheckResult> PowerLog::Check(const std::string& source) {
  return checker::CheckMraConditionsFromSource(source);
}

Result<Kernel> PowerLog::Compile(const std::string& source) {
  return BuildKernelFromSource(source);
}

namespace {

/// Applies the façade-level source override to a compiled kernel.
Status ApplySourceOverride(Kernel* kernel, const RunOptions& options) {
  if (!options.source) return Status::OK();
  if (kernel->init.kind != datalog::InitKind::kSingleSource) {
    return Status::InvalidArgument(
        "source override requires a single-source program");
  }
  kernel->init.source = *options.source;
  return Status::OK();
}

}  // namespace

Result<RunOutcome> PowerLog::Run(const std::string& source, const Graph& graph,
                                 const RunOptions& options) {
  auto parsed = datalog::Parse(source);
  if (!parsed.ok()) return parsed.status();
  auto analyzed = datalog::Analyze(*parsed);
  if (!analyzed.ok()) return analyzed.status();

  auto check = checker::CheckMraConditions(*analyzed);
  if (!check.ok()) return check.status();

  auto kernel = BuildKernel(*analyzed);
  if (!kernel.ok()) return kernel.status();
  POWERLOG_RETURN_NOT_OK(ApplySourceOverride(&*kernel, options));

  RunOutcome outcome;
  outcome.check = std::move(check).ValueOrDie();

  if (outcome.check.satisfied) {
    runtime::Engine engine(graph, *kernel, options.engine);
    auto run = engine.Run();
    if (!run.ok()) return run.status();
    outcome.evaluation = "MRA";
    outcome.execution = runtime::ExecModeName(options.engine.mode);
    outcome.values = std::move(run->values);
    outcome.stats = std::move(run->stats);
    outcome.metrics = std::move(run->metrics);
    outcome.chrome_trace = std::move(run->chrome_trace);
    return outcome;
  }

  // Failed the check: naive evaluation. mean programs need the multiset
  // reference evaluator; others use the distributed naive sync engine.
  outcome.evaluation = "naive";
  outcome.execution = "sync";
  if (kernel->agg == AggKind::kMean) {
    eval::EvalOptions eval_options;
    eval_options.epsilon_override = options.engine.epsilon_override;
    auto run = eval::NaiveEvaluate(*kernel, graph, eval_options);
    if (!run.ok()) return run.status();
    outcome.values = std::move(run->values);
    outcome.stats.edge_applications = run->edge_applications;
    outcome.stats.supersteps = run->iterations;
    outcome.stats.converged = run->converged;
    return outcome;
  }
  runtime::EngineOptions engine_options = options.engine;
  engine_options.mode = runtime::ExecMode::kSync;
  auto run = systems::NaiveSyncRun(graph, *kernel, engine_options);
  if (!run.ok()) return run.status();
  outcome.values = std::move(run->values);
  outcome.stats = run->stats;
  return outcome;
}

Result<RunOutcome> PowerLog::Run(const Kernel& kernel, const Graph& graph,
                                 const RunOptions& options) {
  Kernel prepared = kernel;
  POWERLOG_RETURN_NOT_OK(ApplySourceOverride(&prepared, options));

  RunOutcome outcome;
  // No source text, no check stage: record the provenance honestly instead
  // of fabricating a verdict. Compile() only emits kernels for programs
  // that parse and analyze; the engine itself rejects non-MRA aggregates
  // (mean), so nothing unsound slips through the skip.
  outcome.check.satisfied = true;
  outcome.check.report =
      "condition check skipped: precompiled kernel (serving path)";

  runtime::Engine engine(graph, prepared, options.engine);
  auto run = engine.Run();
  if (!run.ok()) return run.status();
  outcome.evaluation = "MRA";
  outcome.execution = runtime::ExecModeName(options.engine.mode);
  outcome.values = std::move(run->values);
  outcome.stats = std::move(run->stats);
  outcome.metrics = std::move(run->metrics);
  outcome.chrome_trace = std::move(run->chrome_trace);
  return outcome;
}

}  // namespace powerlog
