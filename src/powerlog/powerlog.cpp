#include "powerlog/powerlog.h"

#include "datalog/parser.h"
#include "eval/naive.h"
#include "systems/vertex_engines.h"

namespace powerlog {

Result<checker::MraCheckResult> PowerLog::Check(const std::string& source) {
  return checker::CheckMraConditionsFromSource(source);
}

Result<Kernel> PowerLog::Compile(const std::string& source) {
  return BuildKernelFromSource(source);
}

Result<RunOutcome> PowerLog::Run(const std::string& source, const Graph& graph,
                                 const RunOptions& options) {
  auto parsed = datalog::Parse(source);
  if (!parsed.ok()) return parsed.status();
  auto analyzed = datalog::Analyze(*parsed);
  if (!analyzed.ok()) return analyzed.status();

  auto check = checker::CheckMraConditions(*analyzed);
  if (!check.ok()) return check.status();

  auto kernel = BuildKernel(*analyzed);
  if (!kernel.ok()) return kernel.status();
  if (options.source) {
    if (kernel->init.kind != datalog::InitKind::kSingleSource) {
      return Status::InvalidArgument(
          "source override requires a single-source program");
    }
    kernel->init.source = *options.source;
  }

  RunOutcome outcome;
  outcome.check = std::move(check).ValueOrDie();

  if (outcome.check.satisfied) {
    runtime::EngineOptions engine_options;
    engine_options.num_workers = options.num_workers;
    engine_options.network = options.network;
    engine_options.mode = options.mode.value_or(runtime::ExecMode::kSyncAsync);
    engine_options.max_wall_seconds = options.max_wall_seconds;
    engine_options.max_supersteps = options.max_supersteps;
    engine_options.epsilon_override = options.epsilon_override;
    engine_options.priority_threshold = options.priority_threshold;
    engine_options.collect_metrics = options.collect_metrics;
    runtime::Engine engine(graph, *kernel, engine_options);
    auto run = engine.Run();
    if (!run.ok()) return run.status();
    outcome.evaluation = "MRA";
    outcome.execution = runtime::ExecModeName(engine_options.mode);
    outcome.values = std::move(run->values);
    outcome.stats = std::move(run->stats);
    outcome.metrics = std::move(run->metrics);
    return outcome;
  }

  // Failed the check: naive evaluation. mean programs need the multiset
  // reference evaluator; others use the distributed naive sync engine.
  outcome.evaluation = "naive";
  outcome.execution = "sync";
  if (kernel->agg == AggKind::kMean) {
    eval::EvalOptions eval_options;
    eval_options.epsilon_override = options.epsilon_override;
    auto run = eval::NaiveEvaluate(*kernel, graph, eval_options);
    if (!run.ok()) return run.status();
    outcome.values = std::move(run->values);
    outcome.stats.edge_applications = run->edge_applications;
    outcome.stats.supersteps = run->iterations;
    outcome.stats.converged = run->converged;
    return outcome;
  }
  runtime::EngineOptions engine_options;
  engine_options.num_workers = options.num_workers;
  engine_options.network = options.network;
  engine_options.mode = runtime::ExecMode::kSync;
  engine_options.max_wall_seconds = options.max_wall_seconds;
  engine_options.max_supersteps = options.max_supersteps;
  engine_options.epsilon_override = options.epsilon_override;
  auto run = systems::NaiveSyncRun(graph, *kernel, engine_options);
  if (!run.ok()) return run.status();
  outcome.values = std::move(run->values);
  outcome.stats = run->stats;
  return outcome;
}

}  // namespace powerlog
