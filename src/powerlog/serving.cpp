#include "powerlog/serving.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "datalog/catalog.h"
#include "runtime/reconverge.h"

namespace powerlog::serving {

namespace {

std::string PairKey(const std::string& program, const std::string& dataset) {
  return program + "\x1f" + dataset;
}

std::string HeadKey(const std::string& program, const std::string& dataset) {
  return "head:" + PairKey(program, dataset);
}

void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  out->append(StringFormat("%.17g", v));
}

/// Thread-local phase sink for the query being served on this thread.
/// StartQuery arms it; RunImpl/Apply write phase timings into it lock-free
/// (the request thread owns both ends); FinishQuery merges it into the
/// debug record under the mutex. JsonError stamps the failing StatusCode
/// here so the HTTP handler does not have to thread a Status out of every
/// route arm.
struct QueryPhaseSink {
  int64_t id = 0;  ///< 0 = no query tracked on this thread
  double queue_ms = 0.0;
  double exec_ms = 0.0;
  uint64_t version = 0;
  bool cached = false;
  const char* span = nullptr;  ///< open request-span name (static storage)
  StatusCode status = StatusCode::kOk;
};
thread_local QueryPhaseSink t_query;

/// Event rings store the name *pointer*, so span names must have static
/// storage — map the route token onto a literal.
const char* RouteSpanName(const char* route) {
  if (std::strcmp(route, "run") == 0) return "serving.request.run";
  if (std::strcmp(route, "lookup") == 0) return "serving.request.lookup";
  if (std::strcmp(route, "topk") == 0) return "serving.request.topk";
  if (std::strcmp(route, "mutate") == 0) return "serving.request.mutate";
  return "serving.request";
}

/// Metric-name-safe status token (StatusCodeToString has spaces).
const char* StatusCodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kNotSupported: return "not_supported";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kIOError: return "io_error";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kConditionViolated: return "condition_violated";
    case StatusCode::kTimeout: return "timeout";
  }
  return "unknown";
}

}  // namespace

// ---------------------------------------------------------------------------
// Materialization handle.

std::shared_ptr<const Materialization::Resident> Materialization::Current()
    const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return resident_;
}

uint64_t Materialization::Version() const { return Current()->version; }

runtime::EngineStats Materialization::Stats() const { return Current()->stats; }

std::shared_ptr<const Graph> Materialization::graph() const {
  return Current()->graph;
}

Result<double> Materialization::Lookup(VertexId v) const {
  catalog_->lookups_.fetch_add(1, std::memory_order_relaxed);
  auto resident = Current();
  if (v >= resident->values.size()) {
    return Status::OutOfRange(StringFormat(
        "vertex %u out of range (|V|=%zu)", v, resident->values.size()));
  }
  return resident->values[v];
}

Result<std::vector<std::pair<VertexId, double>>> Materialization::TopK(
    size_t k, bool ascending) const {
  catalog_->topk_scans_.fetch_add(1, std::memory_order_relaxed);
  auto resident = Current();
  std::vector<std::pair<double, VertexId>> ranked;
  ranked.reserve(resident->values.size());
  for (VertexId v = 0; v < resident->values.size(); ++v) {
    if (!std::isfinite(resident->values[v])) continue;
    ranked.emplace_back(resident->values[v], v);
  }
  k = std::min(k, ranked.size());
  if (ascending) {
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                      ranked.end(), std::less<>());
  } else {
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                      ranked.end(), std::greater<>());
  }
  std::vector<std::pair<VertexId, double>> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.emplace_back(ranked[i].second, ranked[i].first);
  }
  return out;
}

Result<RunSummary> Materialization::Run(std::optional<uint32_t> source_override,
                                        int64_t deadline_ms, bool use_cache) {
  return catalog_->RunImpl(this, source_override, deadline_ms, use_cache);
}

Result<MutationStats> Materialization::Apply(const MutationBatch& batch) {
  // One batch at a time per handle: the plan is computed against the version
  // it will supersede. Queries keep flowing off the current version.
  std::lock_guard<std::mutex> apply_lock(apply_mutex_);
  const int64_t t0 = NowMicros();
  auto resident = Current();

  MutationStats out;
  out.ops_requested = batch.size();
  out.version = resident->version;

  auto applied = [&] {
    trace::SpanGuard patch_span(catalog_->tracer_.get(), "serving.patch");
    return ApplyMutationBatch(*resident->graph, batch);
  }();
  if (!applied.ok()) return applied.status();
  out.edges_added = applied->edges_added;
  out.edges_removed = applied->edges_removed;
  out.edges_reweighted = applied->edges_reweighted;
  for (const AppliedMutation& rec : applied->ops) {
    if (rec.applied) ++out.ops_applied;
  }
  if (!applied->changed()) {
    // Deleting absent edges / reweighting to the same weight: the patched
    // graph is identical, so neither the version nor the fixpoint moves.
    out.path = "noop";
    out.apply_seconds = static_cast<double>(NowMicros() - t0) / 1e6;
    return out;
  }

  auto new_graph = std::make_shared<const Graph>(std::move(applied->graph));
  if (kernel_.uses_in_edges) (void)new_graph->Reverse();

  auto plan = [&] {
    trace::SpanGuard plan_span(catalog_->tracer_.get(), "serving.plan");
    return runtime::PlanReconvergence(kernel_, *resident->graph, *new_graph,
                                      applied->ops, resident->values);
  }();
  if (!plan.ok()) return plan.status();
  out.path = runtime::ReconvergePathName(plan->path);
  out.affected_vertices = plan->affected_vertices;

  runtime::EngineResult reconverged;
  const int64_t exec_t0 = NowMicros();
  {
    trace::SpanGuard exec_span(catalog_->tracer_.get(), "serving.exec");
    if (plan->path == runtime::ReconvergePath::kRecompute) {
      // Pause-and-absorb: a cold fixpoint on the new snapshot, while the old
      // version keeps serving until the swap below.
      RunOptions run_options;
      run_options.engine = catalog_->options_.engine;
      catalog_->StampRunTrace(&run_options.engine, "query.run");
      auto cold = PowerLog::Run(kernel_, *new_graph, run_options);
      if (!cold.ok()) return cold.status();
      reconverged.values = std::move(cold->values);
      reconverged.stats = std::move(cold->stats);
    } else {
      runtime::EngineOptions engine_options = catalog_->options_.engine;
      catalog_->StampRunTrace(&engine_options, "query.run");
      runtime::Engine engine(*new_graph, kernel_, engine_options);
      auto warm = engine.Resume(plan->warm);
      if (!warm.ok()) return warm.status();
      reconverged = std::move(warm).ValueOrDie();
    }
  }
  if (t_query.id != 0) {
    t_query.exec_ms = static_cast<double>(NowMicros() - exec_t0) / 1e3;
  }
  trace::SpanGuard certify_span(catalog_->tracer_.get(), "serving.certify");
  if (!reconverged.stats.converged) {
    return Status::Timeout(StringFormat(
        "mutation re-convergence on '%s'/'%s' missed the engine caps; "
        "version %llu keeps serving",
        program_.c_str(), dataset_.c_str(),
        static_cast<unsigned long long>(resident->version)));
  }

  const VersionedSnapshot head =
      catalog_->registry_.AdvanceHead(HeadKey(program_, dataset_), new_graph);
  auto next = std::make_shared<Resident>();
  next->version = head.version;
  next->graph = std::move(new_graph);
  next->values = std::move(reconverged.values);
  next->stats = reconverged.stats;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    resident_ = std::move(next);
  }
  // Cached full-run results were computed against the superseded snapshot.
  catalog_->InvalidateCache(PairKey(program_, dataset_));
  catalog_->mutations_applied_.fetch_add(1, std::memory_order_relaxed);
  switch (plan->path) {
    case runtime::ReconvergePath::kDelta:
      catalog_->mutation_delta_path_.fetch_add(1, std::memory_order_relaxed);
      break;
    case runtime::ReconvergePath::kRederive:
      catalog_->mutation_rederive_path_.fetch_add(1,
                                                  std::memory_order_relaxed);
      break;
    case runtime::ReconvergePath::kRecompute:
      catalog_->mutation_fallback_path_.fetch_add(1,
                                                  std::memory_order_relaxed);
      break;
  }

  if (t_query.id != 0) t_query.version = head.version;
  out.version = head.version;
  out.engine = reconverged.stats;
  out.apply_seconds = static_cast<double>(NowMicros() - t0) / 1e6;
  POWERLOG_INFO << "serving: " << program_ << "/" << dataset_ << " -> v"
                << head.version << " via " << out.path << " ("
                << out.ops_applied << "/" << out.ops_requested << " ops, "
                << out.apply_seconds << "s)";
  return out;
}

// ---------------------------------------------------------------------------
// Catalog.

ServingCatalog::ServingCatalog(ServingOptions options)
    : options_(std::move(options)) {
  // The serving plane owns exposition wiring; a per-run attachment would
  // detach the server's sources after the first materialisation.
  options_.engine.exposition = nullptr;
  if (options_.trace) {
    tracer_ = std::make_unique<trace::Tracer>(options_.trace_ring_events);
  }
}

int64_t ServingCatalog::StartQuery(const char* route, std::string key) {
  const int64_t id = next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  t_query = QueryPhaseSink{};
  t_query.id = id;
  if (tracer_ != nullptr) {
    if (trace::Tracer::Current() == nullptr) {
      // First query on this handler thread: give it a ring. Rings are
      // reused by name, so the count only grows with the thread pool.
      const int64_t ring = serving_rings_.fetch_add(1, std::memory_order_relaxed);
      tracer_->RegisterCurrentThread(
          StringFormat("serving.h%lld", static_cast<long long>(ring)));
    }
    t_query.span = RouteSpanName(route);
    trace::Tracer::Current()->Emit(trace::EventType::kSpanBegin, t_query.span,
                                   static_cast<double>(id));
  }
  QueryRecord rec;
  rec.id = id;
  rec.route = route;
  rec.key = std::move(key);
  rec.start_us = NowMicros();
  {
    std::lock_guard<std::mutex> lock(debug_mutex_);
    inflight_.emplace(id, std::move(rec));
  }
  return id;
}

void ServingCatalog::FinishQuery(int64_t id, const Status& status) {
  const int64_t now = NowMicros();
  if (t_query.span != nullptr && trace::Tracer::Current() != nullptr) {
    trace::Tracer::Current()->Emit(trace::EventType::kSpanEnd, t_query.span,
                                   static_cast<double>(id));
  }
  QueryRecord rec;
  {
    std::lock_guard<std::mutex> lock(debug_mutex_);
    auto it = inflight_.find(id);
    if (it != inflight_.end()) {
      rec = std::move(it->second);
      inflight_.erase(it);
    } else {
      rec.id = id;  // FinishQuery without StartQuery: record what we can
    }
  }
  // An explicit error Status wins; otherwise take whatever JsonError (or
  // nobody) stamped into the sink on this thread.
  StatusCode code = status.code();
  if (code == StatusCode::kOk && t_query.id == id) code = t_query.status;
  if (t_query.id == id) {
    rec.queue_ms = t_query.queue_ms;
    rec.exec_ms = t_query.exec_ms;
    rec.version = t_query.version;
    rec.cached = t_query.cached;
  }
  rec.total_ms = static_cast<double>(now - rec.start_us) / 1e3;
  rec.status = code == StatusCode::kOk ? "OK" : StatusCodeToken(code);

  // Per-route RED: rate, errors (keyed by status code), duration histogram
  // plus last-observed phase gauges.
  const std::string& route = rec.route;
  red_.GetCounter("serving.red." + route + ".requests")->Increment();
  if (code != StatusCode::kOk) {
    red_.GetCounter("serving.red." + route + ".errors." + rec.status)
        ->Increment();
  }
  red_.GetHistogram("serving.latency." + route,
                    metrics::ExponentialBuckets(0.05, 2.0, 20))
      ->Observe(rec.total_ms);
  red_.GetGauge("serving.latency." + route + ".queue")->Set(rec.queue_ms);
  red_.GetGauge("serving.latency." + route + ".exec")->Set(rec.exec_ms);
  red_.GetGauge("serving.latency." + route + ".total")->Set(rec.total_ms);

  if (options_.slow_query_ms > 0 &&
      rec.total_ms >= static_cast<double>(options_.slow_query_ms)) {
    POWERLOG_WARN << "slow query #" << rec.id << " " << rec.route << " '"
                  << rec.key << "': " << rec.total_ms << " ms (queue "
                  << rec.queue_ms << " ms, exec " << rec.exec_ms << " ms, "
                  << rec.status << ")";
  }
  {
    std::lock_guard<std::mutex> lock(debug_mutex_);
    slow_.push_back(std::move(rec));
    std::sort(slow_.begin(), slow_.end(),
              [](const QueryRecord& a, const QueryRecord& b) {
                return a.total_ms > b.total_ms;
              });
    if (slow_.size() > options_.slow_query_capacity) {
      slow_.resize(options_.slow_query_capacity);
    }
  }
  t_query = QueryPhaseSink{};
}

QueryDebugSnapshot ServingCatalog::DebugQueries() const {
  QueryDebugSnapshot snap;
  const int64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(debug_mutex_);
  snap.inflight.reserve(inflight_.size());
  for (const auto& [id, rec] : inflight_) {
    (void)id;
    QueryRecord live = rec;
    // Phases are still accumulating in the owning thread's sink; the only
    // trustworthy live number is elapsed wall time.
    live.total_ms = static_cast<double>(now - rec.start_us) / 1e3;
    snap.inflight.push_back(std::move(live));
  }
  snap.slowest = slow_;
  return snap;
}

std::string ServingCatalog::TraceJson() const {
  if (tracer_ == nullptr) return std::string();
  return trace::ExportChromeTrace(*tracer_);
}

void ServingCatalog::StampRunTrace(runtime::EngineOptions* engine,
                                   const char* flow_name) {
  if (tracer_ == nullptr) return;
  // The engine's worker/supervisor/controller rings register on the
  // catalog's tracer under a per-query tag, so two concurrent runs never
  // share a single-writer ring and the engine skips its per-run export.
  engine->trace = true;
  engine->external_tracer = tracer_.get();
  const int64_t tag =
      t_query.id != 0
          ? t_query.id
          : next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  engine->trace_run_tag = StringFormat(".q%lld", static_cast<long long>(tag));
  trace::EventRing* ring = trace::Tracer::Current();
  if (ring != nullptr) {
    // The request side of the arrow; the run's worker 0 emits the matching
    // FlowRecv right after it registers. Only stamp the id when the send
    // actually went out, so the trace never carries a half-open arrow.
    const uint64_t flow = tracer_->NextFlowId();
    ring->Emit(trace::EventType::kFlowSend, flow_name,
               static_cast<double>(flow));
    engine->trace_flow_id = flow;
  }
}

Result<std::shared_ptr<Materialization>> ServingCatalog::Materialize(
    const std::string& program, const std::string& dataset) {
  auto entry = datalog::GetCatalogEntry(program);
  if (!entry.ok()) return entry.status();

  // Full front door once per pair: parse + automatic condition check. The
  // resident engine serves MRA programs only — a program that fails the
  // check would need the naive evaluator per query, the opposite of
  // serving from converged state.
  auto check = PowerLog::Check(entry->source);
  if (!check.ok()) return check.status();
  if (!check->satisfied) {
    return Status::ConditionViolated(
        "'" + program + "' fails the MRA conditions; the serving plane only "
        "materialises incremental-engine programs");
  }
  auto kernel = PowerLog::Compile(entry->source);
  if (!kernel.ok()) return kernel.status();

  auto graph = registry_.Dataset(dataset, entry->stochastic_weights,
                                 kernel->uses_in_edges);
  if (!graph.ok()) return graph.status();
  return MaterializeEntry(program, dataset, std::move(kernel).ValueOrDie(),
                          std::move(graph).ValueOrDie());
}

Result<std::shared_ptr<Materialization>> ServingCatalog::MaterializeSource(
    const std::string& program_label, const std::string& dataset_label,
    const std::string& source, Graph graph) {
  auto check = PowerLog::Check(source);
  if (!check.ok()) return check.status();
  if (!check->satisfied) {
    return Status::ConditionViolated(
        "'" + program_label + "' fails the MRA conditions; the serving plane "
        "only materialises incremental-engine programs");
  }
  auto kernel = PowerLog::Compile(source);
  if (!kernel.ok()) return kernel.status();
  auto snapshot =
      registry_.Adopt("adopted:" + dataset_label, std::move(graph),
                      kernel->uses_in_edges);
  return MaterializeEntry(program_label, dataset_label,
                          std::move(kernel).ValueOrDie(), std::move(snapshot));
}

Result<std::shared_ptr<Materialization>> ServingCatalog::MaterializeEntry(
    const std::string& program, const std::string& dataset, Kernel kernel,
    std::shared_ptr<const Graph> graph) {
  {
    std::lock_guard<std::mutex> lock(entries_mutex_);
    auto existing = FindLocked(program, dataset);
    if (existing != nullptr) return existing;
  }

  // Converge outside the lock: materialisation is the expensive step and
  // queries against already-resident entries must not stall behind it.
  RunOptions run_options;
  run_options.engine = options_.engine;
  StampRunTrace(&run_options.engine, "query.run");
  const int64_t t0 = NowMicros();
  auto run = PowerLog::Run(kernel, *graph, run_options);
  if (!run.ok()) return run.status();
  if (!run->stats.converged) {
    return Status::Timeout("'" + program + "' on '" + dataset +
                           "' did not converge within the engine caps; "
                           "refusing to serve a non-fixpoint");
  }

  std::shared_ptr<Materialization> handle(
      new Materialization(this, program, dataset, std::move(kernel)));
  handle->materialize_seconds_ = static_cast<double>(NowMicros() - t0) / 1e6;

  std::lock_guard<std::mutex> lock(entries_mutex_);
  auto raced = FindLocked(program, dataset);
  if (raced != nullptr) return raced;
  // Install the head chain before the handle is visible: Version() == 1
  // from the first query on. The initial install reuses the snapshot the
  // registry already built, so builds() stays at catalog size until the
  // first mutation.
  const VersionedSnapshot head =
      registry_.AdvanceHead(HeadKey(program, dataset), graph);
  auto resident = std::make_shared<Materialization::Resident>();
  resident->version = head.version;
  resident->graph = std::move(graph);
  resident->values = std::move(run->values);
  resident->stats = std::move(run->stats);
  handle->resident_ = std::move(resident);
  POWERLOG_INFO << "serving: materialised " << program << "/" << dataset
                << " (" << handle->resident_->graph->Summary() << ") in "
                << handle->materialize_seconds_ << "s";
  entries_.push_back(handle);
  return handle;
}

std::shared_ptr<Materialization> ServingCatalog::FindLocked(
    const std::string& program, const std::string& dataset) const {
  for (const auto& e : entries_) {
    if (e->program_ == program && e->dataset_ == dataset) return e;
  }
  return nullptr;
}

std::shared_ptr<Materialization> ServingCatalog::Find(
    const std::string& program, const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(entries_mutex_);
  return FindLocked(program, dataset);
}

Result<double> ServingCatalog::Lookup(const std::string& program,
                                      const std::string& dataset,
                                      VertexId v) const {
  auto entry = Find(program, dataset);
  if (entry == nullptr) {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("not materialised: " + program + "/" + dataset);
  }
  return entry->Lookup(v);
}

Result<std::vector<std::pair<VertexId, double>>> ServingCatalog::TopK(
    const std::string& program, const std::string& dataset, size_t k,
    bool ascending) const {
  auto entry = Find(program, dataset);
  if (entry == nullptr) {
    topk_scans_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("not materialised: " + program + "/" + dataset);
  }
  return entry->TopK(k, ascending);
}

Status ServingCatalog::AcquireRunSlot(int64_t deadline_us) {
  std::unique_lock<std::mutex> lock(run_mutex_);
  if (inflight_runs_ < options_.max_inflight_runs) {
    ++inflight_runs_;
    return Status::OK();
  }
  if (queued_runs_ >= options_.max_queued_runs) {
    return Status::OutOfRange(StringFormat(
        "admission queue full (%d in flight, %d queued)", inflight_runs_,
        queued_runs_));
  }
  ++queued_runs_;
  const auto wait = std::chrono::microseconds(
      std::max<int64_t>(0, deadline_us - NowMicros()));
  const bool admitted = run_cv_.wait_for(lock, wait, [this] {
    return inflight_runs_ < options_.max_inflight_runs;
  });
  --queued_runs_;
  if (!admitted) {
    return Status::Timeout("deadline exceeded waiting for a run slot");
  }
  ++inflight_runs_;
  return Status::OK();
}

void ServingCatalog::ReleaseRunSlot() {
  {
    std::lock_guard<std::mutex> lock(run_mutex_);
    --inflight_runs_;
  }
  run_cv_.notify_one();
}

Result<RunSummary> ServingCatalog::Run(const std::string& program,
                                       const std::string& dataset,
                                       std::optional<uint32_t> source_override,
                                       int64_t deadline_ms, bool use_cache) {
  auto entry = Find(program, dataset);
  if (entry == nullptr) {
    run_requests_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("not materialised: " + program + "/" + dataset);
  }
  return RunImpl(entry.get(), source_override, deadline_ms, use_cache);
}

Result<RunSummary> ServingCatalog::RunImpl(
    Materialization* entry, std::optional<uint32_t> source_override,
    int64_t deadline_ms, bool use_cache) {
  run_requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string cache_key =
      PairKey(entry->program_, entry->dataset_) + "\x1f" +
      (source_override ? std::to_string(*source_override) : std::string("-"));

  use_cache = use_cache && options_.cache_capacity > 0;
  if (use_cache) {
    trace::SpanGuard cache_span(tracer_.get(), "serving.cache");
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_index_.find(cache_key);
    if (it != cache_index_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      RunSummary summary = it->second->summary;
      summary.cached = true;
      if (t_query.id != 0) t_query.cached = true;
      return summary;
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  // Pin the version this run computes against; a concurrent Apply can swap
  // the head without pulling the snapshot out from under us.
  auto resident = [&] {
    trace::SpanGuard resolve_span(tracer_.get(), "serving.resolve");
    return entry->Current();
  }();
  if (t_query.id != 0) t_query.version = resident->version;

  if (deadline_ms <= 0) deadline_ms = options_.default_deadline_ms;
  const int64_t deadline_us = NowMicros() + deadline_ms * 1000;

  const int64_t queue_t0 = NowMicros();
  Status admitted;
  {
    trace::SpanGuard queue_span(tracer_.get(), "serving.queue");
    admitted = AcquireRunSlot(deadline_us);
  }
  if (t_query.id != 0) {
    t_query.queue_ms = static_cast<double>(NowMicros() - queue_t0) / 1e3;
  }
  if (!admitted.ok()) {
    if (admitted.code() == StatusCode::kTimeout) {
      run_timeouts_.fetch_add(1, std::memory_order_relaxed);
    } else {
      runs_rejected_.fetch_add(1, std::memory_order_relaxed);
    }
    return admitted;
  }

  // The engine's wall cap doubles as the in-run deadline for the async
  // family (sync mode is bounded by max_supersteps; its deadline is
  // enforced on queue wait and checked post-run).
  RunOptions run_options;
  run_options.engine = options_.engine;
  run_options.source = source_override;
  const double remaining_s =
      static_cast<double>(deadline_us - NowMicros()) / 1e6;
  run_options.engine.max_wall_seconds =
      std::min(run_options.engine.max_wall_seconds, std::max(0.01, remaining_s));

  StampRunTrace(&run_options.engine, "query.run");
  const int64_t exec_t0 = NowMicros();
  auto run = [&] {
    trace::SpanGuard exec_span(tracer_.get(), "serving.exec");
    return PowerLog::Run(entry->kernel_, *resident->graph, run_options);
  }();
  ReleaseRunSlot();
  if (t_query.id != 0) {
    t_query.exec_ms = static_cast<double>(NowMicros() - exec_t0) / 1e3;
  }
  if (!run.ok()) return run.status();
  runs_executed_.fetch_add(1, std::memory_order_relaxed);

  if (!run->stats.converged && NowMicros() >= deadline_us) {
    run_timeouts_.fetch_add(1, std::memory_order_relaxed);
    return Status::Timeout(StringFormat(
        "deadline (%lld ms) exceeded before convergence",
        static_cast<long long>(deadline_ms)));
  }

  RunSummary summary;
  summary.converged = run->stats.converged;
  summary.wall_seconds = run->stats.wall_seconds;
  summary.supersteps = run->stats.supersteps;
  summary.edge_applications = run->stats.edge_applications;
  summary.values = std::move(run->values);

  if (use_cache && summary.converged) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_index_.find(cache_key) == cache_index_.end()) {
      cache_lru_.push_front(CacheSlot{cache_key, summary});
      cache_index_[cache_key] = cache_lru_.begin();
      while (cache_lru_.size() > options_.cache_capacity) {
        cache_index_.erase(cache_lru_.back().key);
        cache_lru_.pop_back();
        cache_evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return summary;
}

void ServingCatalog::InvalidateCache(const std::string& pair_key) {
  const std::string prefix = pair_key + "\x1f";
  std::lock_guard<std::mutex> lock(cache_mutex_);
  for (auto it = cache_lru_.begin(); it != cache_lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      cache_index_.erase(it->key);
      it = cache_lru_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::pair<std::string, std::string>> ServingCatalog::Entries()
    const {
  std::lock_guard<std::mutex> lock(entries_mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.emplace_back(e->program_, e->dataset_);
  return out;
}

size_t ServingCatalog::size() const {
  std::lock_guard<std::mutex> lock(entries_mutex_);
  return entries_.size();
}

metrics::MetricsSnapshot ServingCatalog::Metrics() const {
  // Per-route RED instruments first (serving.red.*, serving.latency.*
  // histograms stay strictly cumulative under concurrent snapshot), then
  // the plain serving counters on top.
  metrics::MetricsSnapshot snap = red_.Snapshot();
  {
    std::lock_guard<std::mutex> lock(debug_mutex_);
    snap.AddGauge("serving.queries.inflight",
                  static_cast<double>(inflight_.size()));
  }
  snap.AddCounter("serving.lookups",
                  lookups_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.topk_scans",
                  topk_scans_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.run.requests",
                  run_requests_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.run.executed",
                  runs_executed_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.run.rejected",
                  runs_rejected_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.run.timeouts",
                  run_timeouts_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.cache.hits",
                  cache_hits_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.cache.misses",
                  cache_misses_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.cache.evictions",
                  cache_evictions_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.mutations.applied",
                  mutations_applied_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.mutations.delta_path",
                  mutation_delta_path_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.mutations.rederive_path",
                  mutation_rederive_path_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.mutations.fallback_path",
                  mutation_fallback_path_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.graph_builds", graph_builds());
  snap.AddCounter("serving.catalog_size", static_cast<int64_t>(size()));
  {
    std::lock_guard<std::mutex> lock(run_mutex_);
    snap.AddGauge("serving.run.inflight", inflight_runs_);
    snap.AddGauge("serving.run.queued", queued_runs_);
  }
  return snap;
}

// ---------------------------------------------------------------------------
// HTTP routing glue.

namespace {

/// Splits "/route?a=1&b=2" into the route and a flat key→value map. No
/// percent-decoding: every parameter this plane accepts is [a-z0-9_-].
void SplitTarget(const std::string& target, std::string* route,
                 std::map<std::string, std::string>* params) {
  const size_t q = target.find('?');
  *route = target.substr(0, q);
  if (q == std::string::npos) return;
  for (const std::string& pair : Split(target.substr(q + 1), '&')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      (*params)[pair] = "";
    } else {
      (*params)[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
  }
}

void JsonError(const Status& status, HttpResponse* resp) {
  // Record the outcome for the query being tracked on this thread, so
  // FinishQuery keys the RED error counter without the handler having to
  // hand the Status back out of every route arm.
  if (t_query.id != 0) t_query.status = status.code();
  switch (status.code()) {
    case StatusCode::kNotFound: resp->status = 404; break;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError: resp->status = 400; break;
    case StatusCode::kTimeout:
    case StatusCode::kOutOfRange: resp->status = 503; break;  // overload/deadline
    default: resp->status = 500; break;
  }
  resp->content_type = "application/json";
  resp->body =
      "{\"error\":\"" + metrics::JsonEscape(status.ToString()) + "\"}\n";
}

void JsonOk(std::string body, HttpResponse* resp) {
  resp->status = 200;
  resp->content_type = "application/json";
  resp->body = std::move(body);
}

// Minimal scanner for the /mutate body — the one JSON shape this plane
// accepts: {"ops":[{"op":"insert","src":1,"dst":2,"weight":1.5}, ...]}.
struct JsonCursor {
  const std::string& s;
  size_t i = 0;

  void SkipWs() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool Consume(char c) {
    SkipWs();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
};

Status ParseJsonString(JsonCursor* c, std::string* out) {
  c->SkipWs();
  if (c->i >= c->s.size() || c->s[c->i] != '"') {
    return Status::InvalidArgument("expected a JSON string");
  }
  ++c->i;
  out->clear();
  while (c->i < c->s.size() && c->s[c->i] != '"') {
    if (c->s[c->i] == '\\') {
      return Status::InvalidArgument(
          "escape sequences are not accepted in mutation JSON");
    }
    out->push_back(c->s[c->i++]);
  }
  if (c->i >= c->s.size()) {
    return Status::InvalidArgument("unterminated JSON string");
  }
  ++c->i;
  return Status::OK();
}

Status ParseJsonNumber(JsonCursor* c, double* out) {
  c->SkipWs();
  const char* begin = c->s.c_str() + c->i;
  char* end = nullptr;
  *out = std::strtod(begin, &end);
  if (end == begin) return Status::InvalidArgument("expected a JSON number");
  c->i += static_cast<size_t>(end - begin);
  return Status::OK();
}

Result<MutationBatch> ParseMutationBody(const std::string& body) {
  MutationBatch batch;
  JsonCursor c{body};
  if (!c.Consume('{')) {
    return Status::InvalidArgument(
        "mutation body must be a JSON object: {\"ops\":[...]}");
  }
  std::string key;
  POWERLOG_RETURN_NOT_OK(ParseJsonString(&c, &key));
  if (key != "ops" || !c.Consume(':') || !c.Consume('[')) {
    return Status::InvalidArgument("mutation body must be {\"ops\":[...]}");
  }
  if (!c.Consume(']')) {
    do {
      if (!c.Consume('{')) {
        return Status::InvalidArgument("each op must be a JSON object");
      }
      std::string op_name;
      double src = -1.0, dst = -1.0, weight = 1.0;
      bool have_src = false, have_dst = false;
      do {
        std::string field;
        POWERLOG_RETURN_NOT_OK(ParseJsonString(&c, &field));
        if (!c.Consume(':')) {
          return Status::InvalidArgument("expected ':' after \"" + field +
                                         "\"");
        }
        if (field == "op") {
          POWERLOG_RETURN_NOT_OK(ParseJsonString(&c, &op_name));
        } else if (field == "src") {
          POWERLOG_RETURN_NOT_OK(ParseJsonNumber(&c, &src));
          have_src = true;
        } else if (field == "dst") {
          POWERLOG_RETURN_NOT_OK(ParseJsonNumber(&c, &dst));
          have_dst = true;
        } else if (field == "weight") {
          POWERLOG_RETURN_NOT_OK(ParseJsonNumber(&c, &weight));
        } else {
          return Status::InvalidArgument("unknown op field \"" + field +
                                         "\" (op, src, dst, weight)");
        }
      } while (c.Consume(','));
      if (!c.Consume('}')) {
        return Status::InvalidArgument("expected '}' closing an op");
      }
      EdgeMutation op;
      if (op_name == "insert") {
        op.kind = MutationOp::kInsertEdge;
      } else if (op_name == "delete") {
        op.kind = MutationOp::kDeleteEdge;
      } else if (op_name == "reweight") {
        op.kind = MutationOp::kReweightEdge;
      } else {
        return Status::InvalidArgument(
            "\"op\" must be insert, delete, or reweight");
      }
      if (!have_src || !have_dst) {
        return Status::InvalidArgument("each op needs src and dst");
      }
      if (src < 0.0 || src > static_cast<double>(UINT32_MAX) ||
          src != std::floor(src) || dst < 0.0 ||
          dst > static_cast<double>(UINT32_MAX) || dst != std::floor(dst)) {
        return Status::InvalidArgument("src/dst must be vertex ids");
      }
      op.src = static_cast<VertexId>(src);
      op.dst = static_cast<VertexId>(dst);
      op.weight = weight;
      batch.Add(op);
    } while (c.Consume(','));
    if (!c.Consume(']')) {
      return Status::InvalidArgument("expected ']' closing \"ops\"");
    }
  }
  if (!c.Consume('}')) {
    return Status::InvalidArgument("expected '}' closing the mutation body");
  }
  return batch;
}

void AppendQueryRecords(std::string* out,
                        const std::vector<QueryRecord>& records) {
  bool first = true;
  for (const QueryRecord& r : records) {
    if (!first) out->append(",");
    first = false;
    out->append(StringFormat(
        "{\"id\":%lld,\"route\":\"%s\",\"key\":\"%s\",\"status\":\"%s\","
        "\"version\":%llu,\"cached\":%s,\"queue_ms\":",
        static_cast<long long>(r.id), metrics::JsonEscape(r.route).c_str(),
        metrics::JsonEscape(r.key).c_str(),
        metrics::JsonEscape(r.status).c_str(),
        static_cast<unsigned long long>(r.version),
        r.cached ? "true" : "false"));
    AppendJsonNumber(out, r.queue_ms);
    out->append(",\"exec_ms\":");
    AppendJsonNumber(out, r.exec_ms);
    out->append(",\"total_ms\":");
    AppendJsonNumber(out, r.total_ms);
    out->append("}");
  }
}

/// Closes request tracking on every handler exit path. JsonError stamps the
/// failing Status into the thread-local sink, so passing OK here still
/// records the real outcome.
class QueryScope {
 public:
  QueryScope() = default;
  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;
  void Arm(ServingCatalog* catalog, int64_t id) {
    catalog_ = catalog;
    id_ = id;
  }
  ~QueryScope() {
    if (catalog_ != nullptr) catalog_->FinishQuery(id_, Status::OK());
  }

 private:
  ServingCatalog* catalog_ = nullptr;
  int64_t id_ = 0;
};

}  // namespace

ExpositionServer::Handler MakeServingHandler(ServingCatalog* catalog) {
  return [catalog](const HttpRequest& req, HttpResponse* resp) -> bool {
    std::string route;
    std::map<std::string, std::string> params;
    SplitTarget(req.target, &route, &params);

    if (req.method == "POST" && route != "/mutate") {
      return false;  // only /mutate accepts a POST — fall through to 404
    }

    if (route == "/catalog") {
      std::string body = "{\"entries\":[";
      bool first = true;
      for (const auto& [program, dataset] : catalog->Entries()) {
        auto e = catalog->Find(program, dataset);
        if (e == nullptr) continue;
        if (!first) body += ",";
        first = false;
        const auto graph = e->graph();
        body += "{\"program\":\"" + metrics::JsonEscape(program) +
                "\",\"dataset\":\"" + metrics::JsonEscape(dataset) + "\"";
        body += StringFormat(
            ",\"version\":%llu,\"vertices\":%u,\"edges\":%llu,"
            "\"converged\":%s",
            static_cast<unsigned long long>(e->Version()),
            graph->num_vertices(),
            static_cast<unsigned long long>(graph->num_edges()),
            e->Stats().converged ? "true" : "false");
        body += ",\"materialize_seconds\":";
        AppendJsonNumber(&body, e->materialize_seconds());
        body += "}";
      }
      body += StringFormat("],\"graph_builds\":%lld}\n",
                           static_cast<long long>(catalog->graph_builds()));
      JsonOk(std::move(body), resp);
      return true;
    }

    if (route == "/debug/queries") {
      const QueryDebugSnapshot snap = catalog->DebugQueries();
      std::string body = "{\"inflight\":[";
      AppendQueryRecords(&body, snap.inflight);
      body += "],\"slowest\":[";
      AppendQueryRecords(&body, snap.slowest);
      body += "]}\n";
      JsonOk(std::move(body), resp);
      return true;
    }

    if (route != "/lookup" && route != "/topk" && route != "/run" &&
        route != "/version" && route != "/mutate") {
      return false;  // not ours — fall through to 404
    }

    // Track the query routes (query id, request span, RED instruments,
    // /debug/queries). /version stays untracked: a metadata read with no
    // phase structure. The scope closes tracking on every exit path.
    QueryScope scope;
    if (route != "/version") {
      const char* tracked = route == "/lookup" ? "lookup"
                            : route == "/topk" ? "topk"
                            : route == "/run"  ? "run"
                                               : "mutate";
      std::string key = params["program"] + "/" + params["dataset"];
      if (params.count("v")) key += " v=" + params["v"];
      if (params.count("k")) key += " k=" + params["k"];
      if (params.count("source")) key += " source=" + params["source"];
      scope.Arm(catalog, catalog->StartQuery(tracked, std::move(key)));
    }

    const std::string program = params.count("program") ? params["program"] : "";
    const std::string dataset = params.count("dataset") ? params["dataset"] : "";
    if (program.empty() || dataset.empty()) {
      JsonError(Status::InvalidArgument("program= and dataset= are required"),
                resp);
      return true;
    }

    if (route == "/version" || route == "/mutate") {
      auto entry = catalog->Find(program, dataset);
      if (entry == nullptr) {
        JsonError(
            Status::NotFound("not materialised: " + program + "/" + dataset),
            resp);
        return true;
      }
      if (route == "/version") {
        JsonOk(StringFormat("{\"program\":\"%s\",\"dataset\":\"%s\","
                            "\"version\":%llu}\n",
                            metrics::JsonEscape(program).c_str(),
                            metrics::JsonEscape(dataset).c_str(),
                            static_cast<unsigned long long>(entry->Version())),
               resp);
        return true;
      }
      // /mutate
      if (req.method != "POST") {
        JsonError(Status::InvalidArgument("/mutate requires a POST body"),
                  resp);
        return true;
      }
      auto batch = ParseMutationBody(req.body);
      if (!batch.ok()) {
        JsonError(batch.status(), resp);
        return true;
      }
      auto stats = entry->Apply(*batch);
      if (!stats.ok()) {
        JsonError(stats.status(), resp);
        return true;
      }
      std::string body = StringFormat(
          "{\"version\":%llu,\"path\":\"%s\",\"ops_requested\":%zu,"
          "\"ops_applied\":%lld,\"edges_added\":%lld,\"edges_removed\":%lld,"
          "\"edges_reweighted\":%lld,\"affected_vertices\":%lld,"
          "\"converged\":%s,\"supersteps\":%lld,\"wall_seconds\":",
          static_cast<unsigned long long>(stats->version),
          stats->path.c_str(), stats->ops_requested,
          static_cast<long long>(stats->ops_applied),
          static_cast<long long>(stats->edges_added),
          static_cast<long long>(stats->edges_removed),
          static_cast<long long>(stats->edges_reweighted),
          static_cast<long long>(stats->affected_vertices),
          (stats->path == "noop" || stats->engine.converged) ? "true"
                                                             : "false",
          static_cast<long long>(stats->engine.supersteps));
      AppendJsonNumber(&body, stats->engine.wall_seconds);
      body += ",\"apply_seconds\":";
      AppendJsonNumber(&body, stats->apply_seconds);
      body += "}\n";
      JsonOk(std::move(body), resp);
      return true;
    }

    if (route == "/lookup") {
      if (!params.count("v")) {
        JsonError(Status::InvalidArgument("v= (vertex id) is required"), resp);
        return true;
      }
      auto v = ParseInt64(params["v"]);
      if (!v.ok() || *v < 0 || *v > UINT32_MAX) {
        JsonError(Status::InvalidArgument("v= must be a vertex id"), resp);
        return true;
      }
      auto value = catalog->Lookup(program, dataset,
                                   static_cast<VertexId>(*v));
      if (!value.ok()) {
        JsonError(value.status(), resp);
        return true;
      }
      std::string body = StringFormat("{\"vertex\":%lld,\"value\":",
                                      static_cast<long long>(*v));
      AppendJsonNumber(&body, *value);
      body += "}\n";
      JsonOk(std::move(body), resp);
      return true;
    }

    if (route == "/topk") {
      int64_t k = 10;
      if (params.count("k")) {
        auto parsed = ParseInt64(params["k"]);
        if (!parsed.ok() || *parsed < 0) {
          JsonError(Status::InvalidArgument("k= must be a non-negative integer"),
                    resp);
          return true;
        }
        k = *parsed;
      }
      const bool ascending =
          params.count("order") && params["order"] == "asc";
      auto top = catalog->TopK(program, dataset, static_cast<size_t>(k),
                               ascending);
      if (!top.ok()) {
        JsonError(top.status(), resp);
        return true;
      }
      std::string body = "{\"topk\":[";
      for (size_t i = 0; i < top->size(); ++i) {
        if (i > 0) body += ",";
        body += StringFormat("{\"vertex\":%u,\"value\":", (*top)[i].first);
        AppendJsonNumber(&body, (*top)[i].second);
        body += "}";
      }
      body += "]}\n";
      JsonOk(std::move(body), resp);
      return true;
    }

    // /run
    std::optional<uint32_t> source;
    if (params.count("source")) {
      auto parsed = ParseInt64(params["source"]);
      if (!parsed.ok() || *parsed < 0 || *parsed > UINT32_MAX) {
        JsonError(Status::InvalidArgument("source= must be a vertex id"), resp);
        return true;
      }
      source = static_cast<uint32_t>(*parsed);
    }
    int64_t deadline_ms = 0;
    if (params.count("deadline_ms")) {
      auto parsed = ParseInt64(params["deadline_ms"]);
      if (!parsed.ok() || *parsed <= 0) {
        JsonError(Status::InvalidArgument("deadline_ms= must be positive"),
                  resp);
        return true;
      }
      deadline_ms = *parsed;
    }
    const bool use_cache = params.count("nocache") == 0;
    auto run = catalog->Run(program, dataset, source, deadline_ms, use_cache);
    if (!run.ok()) {
      JsonError(run.status(), resp);
      return true;
    }
    std::string body = StringFormat(
        "{\"converged\":%s,\"cached\":%s,\"wall_seconds\":",
        run->converged ? "true" : "false", run->cached ? "true" : "false");
    AppendJsonNumber(&body, run->wall_seconds);
    body += StringFormat(
        ",\"supersteps\":%lld,\"edge_applications\":%lld}\n",
        static_cast<long long>(run->supersteps),
        static_cast<long long>(run->edge_applications));
    JsonOk(std::move(body), resp);
    return true;
  };
}

}  // namespace powerlog::serving
