#include "powerlog/serving.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "datalog/catalog.h"

namespace powerlog::serving {

namespace {

std::string PairKey(const std::string& program, const std::string& dataset) {
  return program + "\x1f" + dataset;
}

void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  out->append(StringFormat("%.17g", v));
}

}  // namespace

ServingCatalog::ServingCatalog(ServingOptions options)
    : options_(std::move(options)) {
  // The serving plane owns exposition wiring; a per-run attachment would
  // detach the server's sources after the first materialisation.
  options_.engine.exposition = nullptr;
}

Status ServingCatalog::Materialize(const std::string& program,
                                   const std::string& dataset) {
  auto entry = datalog::GetCatalogEntry(program);
  if (!entry.ok()) return entry.status();

  // Full front door once per pair: parse + automatic condition check. The
  // resident engine serves MRA programs only — a program that fails the
  // check would need the naive evaluator per query, the opposite of
  // serving from converged state.
  auto check = PowerLog::Check(entry->source);
  if (!check.ok()) return check.status();
  if (!check->satisfied) {
    return Status::ConditionViolated(
        "'" + program + "' fails the MRA conditions; the serving plane only "
        "materialises incremental-engine programs");
  }
  auto kernel = PowerLog::Compile(entry->source);
  if (!kernel.ok()) return kernel.status();

  auto graph = registry_.Dataset(dataset, entry->stochastic_weights,
                                 kernel->uses_in_edges);
  if (!graph.ok()) return graph.status();
  return MaterializeEntry(program, dataset, std::move(kernel).ValueOrDie(),
                          std::move(graph).ValueOrDie());
}

Status ServingCatalog::MaterializeSource(const std::string& program_label,
                                         const std::string& dataset_label,
                                         const std::string& source,
                                         Graph graph) {
  auto check = PowerLog::Check(source);
  if (!check.ok()) return check.status();
  if (!check->satisfied) {
    return Status::ConditionViolated(
        "'" + program_label + "' fails the MRA conditions; the serving plane "
        "only materialises incremental-engine programs");
  }
  auto kernel = PowerLog::Compile(source);
  if (!kernel.ok()) return kernel.status();
  auto snapshot =
      registry_.Adopt("adopted:" + dataset_label, std::move(graph),
                      kernel->uses_in_edges);
  return MaterializeEntry(program_label, dataset_label,
                          std::move(kernel).ValueOrDie(), std::move(snapshot));
}

Status ServingCatalog::MaterializeEntry(const std::string& program,
                                        const std::string& dataset,
                                        Kernel kernel,
                                        std::shared_ptr<const Graph> graph) {
  {
    std::lock_guard<std::mutex> lock(entries_mutex_);
    if (FindLocked(program, dataset) != nullptr) return Status::OK();
  }

  // Converge outside the lock: materialisation is the expensive step and
  // queries against already-resident entries must not stall behind it.
  RunOptions run_options;
  run_options.engine = options_.engine;
  const int64_t t0 = NowMicros();
  auto run = PowerLog::Run(kernel, *graph, run_options);
  if (!run.ok()) return run.status();
  if (!run->stats.converged) {
    return Status::Timeout("'" + program + "' on '" + dataset +
                           "' did not converge within the engine caps; "
                           "refusing to serve a non-fixpoint");
  }

  auto entry = std::make_unique<ServingEntry>();
  entry->program = program;
  entry->dataset = dataset;
  entry->kernel = std::move(kernel);
  entry->graph = std::move(graph);
  entry->values = std::move(run->values);
  entry->stats = std::move(run->stats);
  entry->materialize_seconds =
      static_cast<double>(NowMicros() - t0) / 1e6;

  std::lock_guard<std::mutex> lock(entries_mutex_);
  if (FindLocked(program, dataset) != nullptr) return Status::OK();  // raced
  POWERLOG_INFO << "serving: materialised " << program << "/" << dataset
                << " (" << entry->graph->Summary() << ") in "
                << entry->materialize_seconds << "s";
  entries_.push_back(std::move(entry));
  return Status::OK();
}

const ServingEntry* ServingCatalog::FindLocked(
    const std::string& program, const std::string& dataset) const {
  for (const auto& e : entries_) {
    if (e->program == program && e->dataset == dataset) return e.get();
  }
  return nullptr;
}

const ServingEntry* ServingCatalog::Find(const std::string& program,
                                         const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(entries_mutex_);
  return FindLocked(program, dataset);
}

Result<double> ServingCatalog::Lookup(const std::string& program,
                                      const std::string& dataset,
                                      VertexId v) const {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const ServingEntry* entry = Find(program, dataset);
  if (entry == nullptr) {
    return Status::NotFound("not materialised: " + program + "/" + dataset);
  }
  if (v >= entry->values.size()) {
    return Status::OutOfRange(StringFormat(
        "vertex %u out of range (|V|=%zu)", v, entry->values.size()));
  }
  return entry->values[v];
}

Result<std::vector<std::pair<VertexId, double>>> ServingCatalog::TopK(
    const std::string& program, const std::string& dataset, size_t k,
    bool ascending) const {
  topk_scans_.fetch_add(1, std::memory_order_relaxed);
  const ServingEntry* entry = Find(program, dataset);
  if (entry == nullptr) {
    return Status::NotFound("not materialised: " + program + "/" + dataset);
  }
  std::vector<std::pair<double, VertexId>> ranked;
  ranked.reserve(entry->values.size());
  for (VertexId v = 0; v < entry->values.size(); ++v) {
    if (!std::isfinite(entry->values[v])) continue;
    ranked.emplace_back(entry->values[v], v);
  }
  k = std::min(k, ranked.size());
  if (ascending) {
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                      ranked.end(), std::less<>());
  } else {
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<long>(k),
                      ranked.end(), std::greater<>());
  }
  std::vector<std::pair<VertexId, double>> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.emplace_back(ranked[i].second, ranked[i].first);
  }
  return out;
}

Status ServingCatalog::AcquireRunSlot(int64_t deadline_us) {
  std::unique_lock<std::mutex> lock(run_mutex_);
  if (inflight_runs_ < options_.max_inflight_runs) {
    ++inflight_runs_;
    return Status::OK();
  }
  if (queued_runs_ >= options_.max_queued_runs) {
    return Status::OutOfRange(StringFormat(
        "admission queue full (%d in flight, %d queued)", inflight_runs_,
        queued_runs_));
  }
  ++queued_runs_;
  const auto wait = std::chrono::microseconds(
      std::max<int64_t>(0, deadline_us - NowMicros()));
  const bool admitted = run_cv_.wait_for(lock, wait, [this] {
    return inflight_runs_ < options_.max_inflight_runs;
  });
  --queued_runs_;
  if (!admitted) {
    return Status::Timeout("deadline exceeded waiting for a run slot");
  }
  ++inflight_runs_;
  return Status::OK();
}

void ServingCatalog::ReleaseRunSlot() {
  {
    std::lock_guard<std::mutex> lock(run_mutex_);
    --inflight_runs_;
  }
  run_cv_.notify_one();
}

Result<RunSummary> ServingCatalog::Run(const std::string& program,
                                       const std::string& dataset,
                                       std::optional<uint32_t> source_override,
                                       int64_t deadline_ms, bool use_cache) {
  run_requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string cache_key =
      PairKey(program, dataset) + "\x1f" +
      (source_override ? std::to_string(*source_override) : std::string("-"));

  use_cache = use_cache && options_.cache_capacity > 0;
  if (use_cache) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_index_.find(cache_key);
    if (it != cache_index_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      RunSummary summary = it->second->summary;
      summary.cached = true;
      return summary;
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  const ServingEntry* entry = Find(program, dataset);
  if (entry == nullptr) {
    return Status::NotFound("not materialised: " + program + "/" + dataset);
  }

  if (deadline_ms <= 0) deadline_ms = options_.default_deadline_ms;
  const int64_t deadline_us = NowMicros() + deadline_ms * 1000;

  Status admitted = AcquireRunSlot(deadline_us);
  if (!admitted.ok()) {
    if (admitted.code() == StatusCode::kTimeout) {
      run_timeouts_.fetch_add(1, std::memory_order_relaxed);
    } else {
      runs_rejected_.fetch_add(1, std::memory_order_relaxed);
    }
    return admitted;
  }

  // The engine's wall cap doubles as the in-run deadline for the async
  // family (sync mode is bounded by max_supersteps; its deadline is
  // enforced on queue wait and checked post-run).
  RunOptions run_options;
  run_options.engine = options_.engine;
  run_options.source = source_override;
  const double remaining_s =
      static_cast<double>(deadline_us - NowMicros()) / 1e6;
  run_options.engine.max_wall_seconds =
      std::min(run_options.engine.max_wall_seconds, std::max(0.01, remaining_s));

  auto run = PowerLog::Run(entry->kernel, *entry->graph, run_options);
  ReleaseRunSlot();
  if (!run.ok()) return run.status();
  runs_executed_.fetch_add(1, std::memory_order_relaxed);

  if (!run->stats.converged && NowMicros() >= deadline_us) {
    run_timeouts_.fetch_add(1, std::memory_order_relaxed);
    return Status::Timeout(StringFormat(
        "deadline (%lld ms) exceeded before convergence",
        static_cast<long long>(deadline_ms)));
  }

  RunSummary summary;
  summary.converged = run->stats.converged;
  summary.wall_seconds = run->stats.wall_seconds;
  summary.supersteps = run->stats.supersteps;
  summary.edge_applications = run->stats.edge_applications;
  summary.values = std::move(run->values);

  if (use_cache && summary.converged) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_index_.find(cache_key) == cache_index_.end()) {
      cache_lru_.push_front(CacheSlot{cache_key, summary});
      cache_index_[cache_key] = cache_lru_.begin();
      while (cache_lru_.size() > options_.cache_capacity) {
        cache_index_.erase(cache_lru_.back().key);
        cache_lru_.pop_back();
        cache_evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return summary;
}

std::vector<std::pair<std::string, std::string>> ServingCatalog::Entries()
    const {
  std::lock_guard<std::mutex> lock(entries_mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.emplace_back(e->program, e->dataset);
  return out;
}

size_t ServingCatalog::size() const {
  std::lock_guard<std::mutex> lock(entries_mutex_);
  return entries_.size();
}

metrics::MetricsSnapshot ServingCatalog::Metrics() const {
  metrics::MetricsSnapshot snap;
  snap.AddCounter("serving.lookups",
                  lookups_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.topk_scans",
                  topk_scans_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.run.requests",
                  run_requests_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.run.executed",
                  runs_executed_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.run.rejected",
                  runs_rejected_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.run.timeouts",
                  run_timeouts_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.cache.hits",
                  cache_hits_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.cache.misses",
                  cache_misses_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.cache.evictions",
                  cache_evictions_.load(std::memory_order_relaxed));
  snap.AddCounter("serving.graph_builds", graph_builds());
  snap.AddCounter("serving.catalog_size", static_cast<int64_t>(size()));
  {
    std::lock_guard<std::mutex> lock(run_mutex_);
    snap.AddGauge("serving.run.inflight", inflight_runs_);
    snap.AddGauge("serving.run.queued", queued_runs_);
  }
  return snap;
}

// ---------------------------------------------------------------------------
// HTTP routing glue.

namespace {

/// Splits "/route?a=1&b=2" into the route and a flat key→value map. No
/// percent-decoding: every parameter this plane accepts is [a-z0-9_-].
void SplitTarget(const std::string& target, std::string* route,
                 std::map<std::string, std::string>* params) {
  const size_t q = target.find('?');
  *route = target.substr(0, q);
  if (q == std::string::npos) return;
  for (const std::string& pair : Split(target.substr(q + 1), '&')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      (*params)[pair] = "";
    } else {
      (*params)[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
  }
}

void JsonError(const Status& status, HttpResponse* resp) {
  switch (status.code()) {
    case StatusCode::kNotFound: resp->status = 404; break;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError: resp->status = 400; break;
    case StatusCode::kTimeout:
    case StatusCode::kOutOfRange: resp->status = 503; break;  // overload/deadline
    default: resp->status = 500; break;
  }
  resp->content_type = "application/json";
  resp->body =
      "{\"error\":\"" + metrics::JsonEscape(status.ToString()) + "\"}\n";
}

void JsonOk(std::string body, HttpResponse* resp) {
  resp->status = 200;
  resp->content_type = "application/json";
  resp->body = std::move(body);
}

}  // namespace

ExpositionServer::Handler MakeServingHandler(ServingCatalog* catalog) {
  return [catalog](const std::string& target, HttpResponse* resp) -> bool {
    std::string route;
    std::map<std::string, std::string> params;
    SplitTarget(target, &route, &params);

    if (route == "/catalog") {
      std::string body = "{\"entries\":[";
      bool first = true;
      for (const auto& [program, dataset] : catalog->Entries()) {
        const ServingEntry* e = catalog->Find(program, dataset);
        if (e == nullptr) continue;
        if (!first) body += ",";
        first = false;
        body += "{\"program\":\"" + metrics::JsonEscape(program) +
                "\",\"dataset\":\"" + metrics::JsonEscape(dataset) + "\"";
        body += StringFormat(
            ",\"vertices\":%u,\"edges\":%llu,\"converged\":%s",
            e->graph->num_vertices(),
            static_cast<unsigned long long>(e->graph->num_edges()),
            e->stats.converged ? "true" : "false");
        body += ",\"materialize_seconds\":";
        AppendJsonNumber(&body, e->materialize_seconds);
        body += "}";
      }
      body += StringFormat("],\"graph_builds\":%lld}\n",
                           static_cast<long long>(catalog->graph_builds()));
      JsonOk(std::move(body), resp);
      return true;
    }

    if (route != "/lookup" && route != "/topk" && route != "/run") {
      return false;  // not ours — fall through to 404
    }

    const std::string program = params.count("program") ? params["program"] : "";
    const std::string dataset = params.count("dataset") ? params["dataset"] : "";
    if (program.empty() || dataset.empty()) {
      JsonError(Status::InvalidArgument("program= and dataset= are required"),
                resp);
      return true;
    }

    if (route == "/lookup") {
      if (!params.count("v")) {
        JsonError(Status::InvalidArgument("v= (vertex id) is required"), resp);
        return true;
      }
      auto v = ParseInt64(params["v"]);
      if (!v.ok() || *v < 0 || *v > UINT32_MAX) {
        JsonError(Status::InvalidArgument("v= must be a vertex id"), resp);
        return true;
      }
      auto value = catalog->Lookup(program, dataset,
                                   static_cast<VertexId>(*v));
      if (!value.ok()) {
        JsonError(value.status(), resp);
        return true;
      }
      std::string body = StringFormat("{\"vertex\":%lld,\"value\":",
                                      static_cast<long long>(*v));
      AppendJsonNumber(&body, *value);
      body += "}\n";
      JsonOk(std::move(body), resp);
      return true;
    }

    if (route == "/topk") {
      int64_t k = 10;
      if (params.count("k")) {
        auto parsed = ParseInt64(params["k"]);
        if (!parsed.ok() || *parsed < 0) {
          JsonError(Status::InvalidArgument("k= must be a non-negative integer"),
                    resp);
          return true;
        }
        k = *parsed;
      }
      const bool ascending =
          params.count("order") && params["order"] == "asc";
      auto top = catalog->TopK(program, dataset, static_cast<size_t>(k),
                               ascending);
      if (!top.ok()) {
        JsonError(top.status(), resp);
        return true;
      }
      std::string body = "{\"topk\":[";
      for (size_t i = 0; i < top->size(); ++i) {
        if (i > 0) body += ",";
        body += StringFormat("{\"vertex\":%u,\"value\":", (*top)[i].first);
        AppendJsonNumber(&body, (*top)[i].second);
        body += "}";
      }
      body += "]}\n";
      JsonOk(std::move(body), resp);
      return true;
    }

    // /run
    std::optional<uint32_t> source;
    if (params.count("source")) {
      auto parsed = ParseInt64(params["source"]);
      if (!parsed.ok() || *parsed < 0 || *parsed > UINT32_MAX) {
        JsonError(Status::InvalidArgument("source= must be a vertex id"), resp);
        return true;
      }
      source = static_cast<uint32_t>(*parsed);
    }
    int64_t deadline_ms = 0;
    if (params.count("deadline_ms")) {
      auto parsed = ParseInt64(params["deadline_ms"]);
      if (!parsed.ok() || *parsed <= 0) {
        JsonError(Status::InvalidArgument("deadline_ms= must be positive"),
                  resp);
        return true;
      }
      deadline_ms = *parsed;
    }
    const bool use_cache = params.count("nocache") == 0;
    auto run = catalog->Run(program, dataset, source, deadline_ms, use_cache);
    if (!run.ok()) {
      JsonError(run.status(), resp);
      return true;
    }
    std::string body = StringFormat(
        "{\"converged\":%s,\"cached\":%s,\"wall_seconds\":",
        run->converged ? "true" : "false", run->cached ? "true" : "false");
    AppendJsonNumber(&body, run->wall_seconds);
    body += StringFormat(
        ",\"supersteps\":%lld,\"edge_applications\":%lld}\n",
        static_cast<long long>(run->supersteps),
        static_cast<long long>(run->edge_applications));
    JsonOk(std::move(body), resp);
    return true;
  };
}

}  // namespace powerlog::serving
