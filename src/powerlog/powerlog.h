// PowerLog public API — the end-to-end pipeline of Fig. 2:
//
//   Datalog source ─▶ parser/analyzer ─▶ automatic condition checker
//        ├─ MRA conditions hold  ─▶ MRA evaluation on the unified
//        │                          sync-async engine
//        └─ otherwise            ─▶ naive evaluation on the sync engine
//
// Quickstart:
//   #include "powerlog/powerlog.h"
//   auto graph = powerlog::GenerateRmat({...});
//   auto run = powerlog::PowerLog::Run(source_text, *graph, {});
//   if (run.ok()) { use run->values ... }
#pragma once

#include <string>
#include <vector>

#include "checker/mra_checker.h"
#include "common/result.h"
#include "core/kernel.h"
#include "graph/graph.h"
#include "runtime/engine.h"

namespace powerlog {

/// \brief End-to-end run options.
struct RunOptions {
  uint32_t num_workers = 4;
  runtime::NetworkConfig network;
  /// Force an execution mode instead of the default sync-async engine
  /// (experiments/ablations). Ignored for programs failing the MRA check.
  std::optional<runtime::ExecMode> mode;
  double max_wall_seconds = 60.0;
  int64_t max_supersteps = 100000;
  double epsilon_override = -1.0;
  double priority_threshold = 0.0;
  /// Overrides the @source annotation (single-source programs).
  std::optional<uint32_t> source;
  /// Collect the engine's observability payload (per-worker breakdown,
  /// latency/flush histograms, β trajectories) into RunOutcome::metrics.
  bool collect_metrics = false;
};

/// \brief Everything a run produces.
struct RunOutcome {
  checker::MraCheckResult check;       ///< condition-check provenance
  std::string evaluation;              ///< "MRA" or "naive"
  std::string execution;               ///< engine mode used
  std::vector<double> values;          ///< final per-key results
  runtime::EngineStats stats;
  /// Observability snapshot (options.collect_metrics); empty for naive-eval
  /// fallbacks, which bypass the instrumented engine.
  metrics::MetricsSnapshot metrics;
};

/// \brief The system façade.
class PowerLog {
 public:
  /// Parses, checks, and executes `source` against `graph`.
  static Result<RunOutcome> Run(const std::string& source, const Graph& graph,
                                const RunOptions& options = {});

  /// Condition check only (the standalone verification tool).
  static Result<checker::MraCheckResult> Check(const std::string& source);

  /// Parse + analyze + compile without executing.
  static Result<Kernel> Compile(const std::string& source);
};

}  // namespace powerlog
