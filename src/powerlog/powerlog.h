// PowerLog public API — the end-to-end pipeline of Fig. 2:
//
//   Datalog source ─▶ parser/analyzer ─▶ automatic condition checker
//        ├─ MRA conditions hold  ─▶ MRA evaluation on the unified
//        │                          sync-async engine
//        └─ otherwise            ─▶ naive evaluation on the sync engine
//
// Quickstart:
//   #include "powerlog/powerlog.h"
//   auto graph = powerlog::GenerateRmat({...});
//   auto run = powerlog::PowerLog::Run(source_text, *graph, {});
//   if (run.ok()) { use run->values ... }
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "checker/mra_checker.h"
#include "common/result.h"
#include "core/kernel.h"
#include "graph/graph.h"
#include "runtime/engine.h"

namespace powerlog {

/// \brief End-to-end run options: a thin façade over the engine
/// configuration. `engine` is the single documented escape hatch to
/// runtime tuning — every engine parameter (mode, workers, network,
/// termination caps, checkpointing, fault plan, metrics, ...) lives there
/// exactly once, so a field added to EngineOptions is immediately
/// reachable here without a mirror, and no façade field shadows an engine
/// field. Flag plumbing (powerlog_cli, powerlog_serve) follows the same
/// rule: each flag writes exactly one layer — `--source` writes the
/// façade, every tuning flag writes `engine.*` — never both.
/// Programs that fail the MRA check fall back to the naive sync engine;
/// the relevant engine fields (workers, network, caps) still apply there,
/// while the mode is forced to sync.
struct RunOptions {
  runtime::EngineOptions engine;
  /// Overrides the @source annotation (single-source programs).
  std::optional<uint32_t> source;
};

/// \brief Everything a run produces.
struct RunOutcome {
  checker::MraCheckResult check;       ///< condition-check provenance
  std::string evaluation;              ///< "MRA" or "naive"
  std::string execution;               ///< engine mode used
  std::vector<double> values;          ///< final per-key results
  runtime::EngineStats stats;
  /// Observability snapshot (options.collect_metrics); empty for naive-eval
  /// fallbacks, which bypass the instrumented engine.
  metrics::MetricsSnapshot metrics;
  /// Chrome trace-event JSON (options.engine.trace); empty otherwise and for
  /// naive-eval fallbacks. Written by `powerlog_cli --trace-out`.
  std::string chrome_trace;
};

/// \brief The system façade.
class PowerLog {
 public:
  /// Parses, checks, and executes `source` against `graph`.
  static Result<RunOutcome> Run(const std::string& source, const Graph& graph,
                                const RunOptions& options = {});

  /// Serving path: executes an already-compiled kernel (from Compile),
  /// skipping the parse and condition-check stages — the shape of a
  /// deployment that verifies a program once and then evaluates it against
  /// many graphs. The kernel must satisfy the MRA conditions (Compile on a
  /// checked program guarantees it); mean programs are rejected by the
  /// engine. `outcome.check` reports the skip in its provenance.
  static Result<RunOutcome> Run(const Kernel& kernel, const Graph& graph,
                                const RunOptions& options = {});

  /// Condition check only (the standalone verification tool).
  static Result<checker::MraCheckResult> Check(const std::string& source);

  /// Parse + analyze + compile without executing.
  static Result<Kernel> Compile(const std::string& source);
};

}  // namespace powerlog
